package ltp_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"ltp"
	"ltp/internal/cache"
	"ltp/internal/pipeline"
)

// batchSweep is a model-backend sweep whose cells all share one
// functional stream (same scenario/seed/budgets), so the engine
// coalesces them into a single batched evaluation: an IQ-size axis
// crossed with the parking unit on/off.
func batchSweep() (ltp.SweepSpec, []ltp.RunSpec) {
	base := ltp.RunSpec{
		Scenario:  "hashjoin",
		Backend:   ltp.BackendModel,
		Scale:     0.05,
		WarmInsts: 8_000,
		MaxInsts:  20_000,
	}
	iqs := []int{24, 32, 48, 64}
	onOff := []bool{false, true}

	var iqPts []ltp.SweepPoint
	for i := range iqs {
		iq := iqs[i]
		iqPts = append(iqPts, ltp.SweepPoint{
			Name:  fmt.Sprintf("IQ%d", iq),
			Patch: ltp.RunPatch{IQSize: &iq},
		})
	}
	var ltpPts []ltp.SweepPoint
	for i := range onOff {
		on := onOff[i]
		name := "base"
		if on {
			name = "ltp"
		}
		ltpPts = append(ltpPts, ltp.SweepPoint{
			Name:  name,
			Patch: ltp.RunPatch{UseLTP: &on},
		})
	}
	sweep := ltp.SweepSpec{
		Base: base,
		Axes: []ltp.SweepAxis{
			{Name: "iq", Points: iqPts},
			{Name: "park", Points: ltpPts},
		},
	}

	// The same cells spelled as standalone RunSpecs (row-major, last
	// axis fastest — the sweep's enumeration order).
	var singles []ltp.RunSpec
	for _, iq := range iqs {
		for _, on := range onOff {
			s := base
			cfg := pipeline.DefaultConfig()
			cfg.IQSize = iq
			s.Pipeline = &cfg
			s.UseLTP = on
			singles = append(singles, s)
		}
	}
	return sweep, singles
}

// collectCells drains a finished job's cell stream keyed by content
// address.
func collectCells(t *testing.T, job *ltp.Job) map[string]ltp.CellResult {
	t.Helper()
	cells := make(map[string]ltp.CellResult)
	for c := range job.Cells() {
		if c.Err != nil {
			t.Fatalf("cell %v failed: %v", c.Coords, c.Err)
		}
		cells[c.Hash] = c
	}
	return cells
}

// TestBatchMatchesSingle is the tentpole's differential fence: a model
// sweep executed through the engine's batched path must produce, per
// cell, results bit-identical to standalone RunContext calls, under
// the same content addresses, with cache entries interchangeable in
// both directions (batch-populated cache serves single runs as hits,
// single-populated cache serves the batch as hits).
func TestBatchMatchesSingle(t *testing.T) {
	sweep, singles := batchSweep()
	ctx := context.Background()

	// Reference: every cell standalone, no engine, no cache.
	refs := make([]ltp.RunResult, len(singles))
	hashes := make([]string, len(singles))
	for i, s := range singles {
		res, err := ltp.RunContext(ctx, s)
		if err != nil {
			t.Fatalf("single run %d: %v", i, err)
		}
		refs[i] = res
		h, err := s.Hash()
		if err != nil {
			t.Fatal(err)
		}
		hashes[i] = h
	}

	// Batched: the sweep through a fresh engine.
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 4})
	defer e.Close()
	job, err := e.Submit(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	cells := collectCells(t, job)
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(singles) {
		t.Fatalf("sweep resolved %d distinct cells; want %d", len(cells), len(singles))
	}
	for i := range singles {
		c, ok := cells[hashes[i]]
		if !ok {
			t.Fatalf("sweep produced no cell for single spec %d (hash %s): the batch and single paths disagree on content addresses", i, hashes[i])
		}
		if !reflect.DeepEqual(c.Result, refs[i]) {
			t.Fatalf("cell %d (%v) diverged from its standalone run:\nbatch:  %+v\nsingle: %+v",
				i, c.Coords, c.Result, refs[i])
		}
	}

	// Batch-populated cache must serve single submissions as hits.
	for i, s := range singles {
		res, out, h, err := e.RunCached(ctx, s)
		if err != nil {
			t.Fatalf("RunCached %d: %v", i, err)
		}
		if out != cache.Hit {
			t.Fatalf("RunCached %d outcome = %v; want hit from the batch-populated cache", i, out)
		}
		if h != hashes[i] {
			t.Fatalf("RunCached %d hash = %s; want %s", i, h, hashes[i])
		}
		if !reflect.DeepEqual(res, refs[i]) {
			t.Fatalf("RunCached %d served a different result than the standalone run", i)
		}
	}

	// And the reverse: a cache populated by single runs serves the
	// whole batch as hits.
	e2 := newTestEngine(t, ltp.EngineConfig{Parallelism: 4})
	defer e2.Close()
	for i, s := range singles {
		if _, _, _, err := e2.RunCached(ctx, s); err != nil {
			t.Fatalf("priming RunCached %d: %v", i, err)
		}
	}
	job2, err := e2.Submit(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	cells2 := collectCells(t, job2)
	if _, err := job2.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range singles {
		c, ok := cells2[hashes[i]]
		if !ok {
			t.Fatalf("primed sweep missing cell for single spec %d", i)
		}
		if c.Outcome != "hit" {
			t.Fatalf("primed sweep cell %d outcome = %s; want hit", i, c.Outcome)
		}
		if !reflect.DeepEqual(c.Result, refs[i]) {
			t.Fatalf("primed sweep cell %d result diverged", i)
		}
	}
}
