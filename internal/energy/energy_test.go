package energy

import (
	"testing"
	"testing/quick"
)

func baseActivity() Activity {
	return Activity{Cycles: 1000, Issues: 5000, RFReads: 8000, RFWrites: 4000}
}

func TestIQScalesWithEntries(t *testing.T) {
	p := DefaultParams()
	small := Compute(p, Design{IQEntries: 32, IssueWidth: 6, IntRegs: 128, FPRegs: 128}, baseActivity())
	big := Compute(p, Design{IQEntries: 64, IssueWidth: 6, IntRegs: 128, FPRegs: 128}, baseActivity())
	if big.IQ <= small.IQ {
		t.Error("IQ energy must grow with entries")
	}
	if big.IQ/small.IQ != 2.0 {
		t.Errorf("IQ energy ratio %v, want 2 (linear in entries)", big.IQ/small.IQ)
	}
}

func TestRFScalesWithSizeAndAccesses(t *testing.T) {
	p := DefaultParams()
	d := Design{IQEntries: 64, IssueWidth: 6, IntRegs: 128, FPRegs: 128}
	a1 := baseActivity()
	a2 := baseActivity()
	a2.RFReads *= 2
	if Compute(p, d, a2).RF <= Compute(p, d, a1).RF {
		t.Error("RF energy must grow with accesses")
	}
	d2 := d
	d2.IntRegs = 96
	d2.FPRegs = 96
	if Compute(p, d2, a1).RF >= Compute(p, d, a1).RF {
		t.Error("RF energy must shrink with a smaller file")
	}
}

func TestLTPMuchCheaperThanIQ(t *testing.T) {
	p := DefaultParams()
	a := baseActivity()
	a.LTPEnqueues = 500
	a.LTPDequeues = 500
	a.LTPEnabledCyc = 1000
	withLTP := Compute(p, Design{IQEntries: 32, IssueWidth: 6, IntRegs: 96, FPRegs: 96,
		LTPEntries: 128, LTPPorts: 4}, a)
	baseline := Compute(p, Design{IQEntries: 64, IssueWidth: 6, IntRegs: 128, FPRegs: 128}, baseActivity())
	// The 128-entry LTP must cost far less than the 32 IQ entries it
	// replaces (the paper's core energy argument).
	if withLTP.LTP >= withLTP.IQ {
		t.Errorf("LTP energy %v not cheaper than 32-entry IQ %v", withLTP.LTP, withLTP.IQ)
	}
	if withLTP.IQRF >= baseline.IQRF {
		t.Errorf("LTP design IQRF %v not below baseline %v", withLTP.IQRF, baseline.IQRF)
	}
}

func TestLTPGatedOffCostsLittle(t *testing.T) {
	p := DefaultParams()
	a := baseActivity()
	a.LTPEnabledCyc = 0 // power-gated the whole run
	d := Design{IQEntries: 32, IssueWidth: 6, IntRegs: 96, FPRegs: 96, LTPEntries: 128, LTPPorts: 4}
	if got := Compute(p, d, a).LTP; got != 0 {
		t.Errorf("gated-off LTP consumed %v", got)
	}
}

func TestED2P(t *testing.T) {
	if ED2P(10, 100) != 10*100*100 {
		t.Error("ED2P arithmetic wrong")
	}
	// Same energy, 2x delay: ED2P 4x: relative = +300%.
	if got := RelativeED2P(10, 200, 10, 100); got != 300 {
		t.Errorf("relative ED2P %v, want 300", got)
	}
	if RelativeED2P(10, 100, 0, 100) != 0 {
		t.Error("zero baseline must yield 0")
	}
}

func TestRelativePerf(t *testing.T) {
	if got := RelativePerf(100, 100); got != 0 {
		t.Errorf("equal cycles perf %v", got)
	}
	if got := RelativePerf(200, 100); got != -50 {
		t.Errorf("2x slower = %v, want -50", got)
	}
	if got := RelativePerf(50, 100); got != 100 {
		t.Errorf("2x faster = %v, want 100", got)
	}
	if RelativePerf(0, 100) != 0 {
		t.Error("zero cycles must yield 0")
	}
}

// Property: total is the sum of the parts, and all parts are non-negative.
func TestBreakdownSumProperty(t *testing.T) {
	p := DefaultParams()
	f := func(cyc uint32, iq uint8, regs uint8) bool {
		d := Design{IQEntries: int(iq%64) + 1, IssueWidth: 6,
			IntRegs: int(regs%128) + 8, FPRegs: int(regs%128) + 8,
			LTPEntries: 128, LTPPorts: 4}
		a := Activity{Cycles: uint64(cyc % 100_000), RFReads: uint64(cyc) % 999,
			LTPEnabledCyc: uint64(cyc % 100_000)}
		b := Compute(p, d, a)
		sum := b.IQ + b.RF + b.LTP + b.Rest
		return b.IQ >= 0 && b.RF >= 0 && b.LTP >= 0 &&
			sum == b.Total && b.IQRF == b.IQ+b.RF+b.LTP
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCalibration18Percent(t *testing.T) {
	// On a baseline-like activity profile the IQ should be a significant
	// fraction of modelled core energy (the paper cites ~18%); assert a
	// sane band rather than an exact number.
	p := DefaultParams()
	d := Design{IQEntries: 64, IssueWidth: 6, IntRegs: 128, FPRegs: 128}
	// Typical: IPC ~1, ~1.5 reads and ~0.8 writes per instruction.
	a := Activity{Cycles: 100_000, Issues: 100_000, RFReads: 150_000, RFWrites: 80_000}
	b := Compute(p, d, a)
	frac := b.IQ / b.Total
	if frac < 0.10 || frac > 0.30 {
		t.Errorf("IQ fraction of core energy %.2f outside [0.10,0.30]", frac)
	}
}
