// Package energy implements the first-order IQ/RF/LTP energy model the
// paper's ED²P results rest on (§5.5/§5.6):
//
//   - The IQ's power is dominated by its wakeup comparators and select
//     logic; to first order it is proportional to entries × issue width
//     per cycle (the paper cites ~18% of core energy for the Alpha 21264's
//     IQ, Gowan et al.).
//   - The register file's access energy grows with the number of entries
//     (bitline/wordline length) and the port count; we charge
//     reads+writes at a per-access cost proportional to entries.
//   - The LTP is a plain FIFO: no CAM, no select tree. Its per-entry cost
//     is a small fraction of an IQ entry's; we charge a per-cycle standby
//     term (power-gated off when the DRAM-timer monitor disables it) plus
//     per-access enqueue/dequeue energy, and include the UIT and second
//     RAT as fixed overheads while enabled.
//
// Absolute joules are meaningless here; everything is reported relative to
// the baseline configuration, exactly as the paper's Fig. 10 does
// ("ED²P Comp. to Base IQ:64 RF:128 (%)").
package energy

// Params holds the model's per-unit energy coefficients (arbitrary units).
// Defaults are calibrated so that, on the Table 1 baseline running a
// typical mix, the IQ accounts for ≈18% and the RF ≈12% of the modelled
// core energy, mirroring the proportions the paper cites.
type Params struct {
	// IQCAMPerEntryWidth is the per-cycle wakeup/select energy per
	// (entry × issue-width) product.
	IQCAMPerEntryWidth float64
	// RFPerAccessEntry is the per-access energy per register-file entry
	// (access cost grows with file size).
	RFPerAccessEntry float64
	// LTPPerEntryCycle is the FIFO's per-entry standby energy per cycle
	// while enabled.
	LTPPerEntryCycle float64
	// LTPPerAccessPort is the energy per enqueue/dequeue per port.
	LTPPerAccessPort float64
	// UITPerCycle is the UIT + second-RAT overhead per enabled cycle.
	UITPerCycle float64
	// RestPerCycle is the rest of the core (kept constant across designs
	// so savings are diluted realistically when reporting whole-core
	// numbers; IQ/RF-only reporting ignores it, as the paper does).
	RestPerCycle float64
}

// DefaultParams returns the calibrated coefficients.
func DefaultParams() Params {
	return Params{
		IQCAMPerEntryWidth: 1.0,
		RFPerAccessEntry:   0.35,
		LTPPerEntryCycle:   0.02, // FIFO entry ≪ IQ CAM entry
		LTPPerAccessPort:   0.6,
		UITPerCycle:        6.0,
		RestPerCycle:       1400,
	}
}

// Activity is the activity snapshot of one run, taken from
// pipeline.Result and the LTP statistics.
type Activity struct {
	Cycles        uint64
	Issues        uint64
	RFReads       uint64
	RFWrites      uint64
	LTPEnqueues   uint64
	LTPDequeues   uint64
	LTPEnabledCyc uint64
}

// Design describes the sized structures of one configuration.
type Design struct {
	IQEntries  int
	IssueWidth int
	IntRegs    int
	FPRegs     int
	LTPEntries int // 0 = no LTP
	LTPPorts   int
}

// Breakdown is the modelled energy of one run.
type Breakdown struct {
	IQ    float64
	RF    float64
	LTP   float64
	Rest  float64
	Total float64

	// IQRF is the paper's reporting scope for Fig. 10 (IQ/RF ED²P).
	IQRF float64
}

// Compute evaluates the model.
func Compute(p Params, d Design, a Activity) Breakdown {
	var b Breakdown
	cyc := float64(a.Cycles)

	b.IQ = p.IQCAMPerEntryWidth * float64(d.IQEntries*d.IssueWidth) * cyc

	rfEntries := float64(d.IntRegs + d.FPRegs)
	b.RF = p.RFPerAccessEntry * rfEntries * float64(a.RFReads+a.RFWrites)

	if d.LTPEntries > 0 {
		enabled := float64(a.LTPEnabledCyc)
		b.LTP = p.LTPPerEntryCycle*float64(d.LTPEntries)*enabled +
			p.LTPPerAccessPort*float64(a.LTPEnqueues+a.LTPDequeues) +
			p.UITPerCycle*enabled
	}

	b.Rest = p.RestPerCycle * cyc
	b.IQRF = b.IQ + b.RF + b.LTP
	b.Total = b.IQRF + b.Rest
	return b
}

// ED2P returns energy × delay² for the given energy and cycle count.
func ED2P(energy float64, cycles uint64) float64 {
	d := float64(cycles)
	return energy * d * d
}

// RelativeED2P returns (candidate/baseline - 1) × 100, the percentage
// change in ED²P the paper plots (negative = improvement).
func RelativeED2P(candE float64, candCyc uint64, baseE float64, baseCyc uint64) float64 {
	base := ED2P(baseE, baseCyc)
	if base == 0 {
		return 0
	}
	return (ED2P(candE, candCyc)/base - 1) * 100
}

// RelativePerf returns the performance change in percent versus baseline
// cycles for the same committed instruction count (negative = slower), the
// y-axis of Figs. 6/10/11.
func RelativePerf(candCycles, baseCycles uint64) float64 {
	if candCycles == 0 {
		return 0
	}
	return (float64(baseCycles)/float64(candCycles) - 1) * 100
}
