package model

import (
	"context"
	"fmt"
	"math"

	"ltp/internal/bpred"
	"ltp/internal/core"
	"ltp/internal/isa"
	"ltp/internal/mem"
	"ltp/internal/pipeline"
	"ltp/internal/prog"
	"ltp/internal/sim"
)

func init() {
	sim.Register(Backend{Cal: DefaultCalibration(), warm: newWarmCache(warmCacheEntries)})
}

// Backend is the interval-style analytical execution backend.
type Backend struct {
	// Cal supplies the fitted coefficients (zero fields fall back to
	// DefaultCalibration).
	Cal Calibration

	// warm caches functionally-warmed group state keyed by
	// sim.Spec.WarmKey (nil disables reuse; the registered instance
	// carries one). See warmcache.go.
	warm *warmCache
}

// Name returns "model".
func (Backend) Name() string { return "model" }

// Fidelity returns FidelityEstimate.
func (Backend) Fidelity() sim.Fidelity { return sim.FidelityEstimate }

// About returns the backend's one-line description.
func (Backend) About() string {
	return "interval-style analytical model (fast first-order CPI estimate for ranking and triage)"
}

// cancelChunk bounds how many µops the model executes between context
// checks.
const cancelChunk = 1 << 16

// Run estimates the run analytically: the warm-up region trains the
// timing-free caches, branch predictor and urgency table; the measured
// region is scored through the dataflow timeline. The estimate is
// deterministic in the spec.
func (b Backend) Run(ctx context.Context, spec sim.Spec) (sim.Stats, error) {
	if err := ctx.Err(); err != nil {
		return sim.Stats{}, sim.CancelErr(ctx)
	}
	if spec.Recorder != nil {
		return sim.Stats{}, fmt.Errorf("ltp: trace capture requires the cycle backend")
	}
	wc, stream, err := b.warmed(ctx, spec)
	if err != nil {
		return sim.Stats{}, err
	}
	m := newMachine(b.Cal, spec, wc, nil)

	// Measured region; a MaxCycles safety cap halts the estimate once
	// the modeled clock passes it, mirroring the cycle backend's
	// measured-region-relative cap.
	capped := false
	score := func(u *isa.Uop) bool {
		m.score(u)
		if spec.MaxCycles > 0 && m.lastRetire >= float64(spec.MaxCycles) {
			capped = true
			return false
		}
		return true
	}
	done, err := drive(ctx, stream, spec.MaxInsts, score)
	if err != nil {
		return sim.Stats{}, err
	}
	if spec.Reader != nil {
		if spec.Reader.Err() != nil {
			return sim.Stats{}, fmt.Errorf("ltp: trace replay: %w", spec.Reader.Err())
		}
		if done < spec.MaxInsts && !capped {
			return sim.Stats{}, fmt.Errorf(
				"ltp: trace ended after %d of %d measured instructions (warm-up %d): replay with the recording run's budgets",
				done, spec.MaxInsts, spec.WarmInsts)
		}
	}
	return m.snapshot(), nil
}

// warmed produces the functionally-warmed core plus the stream
// positioned at the measured-region start: from the warm-group cache
// when spec.WarmKey hits (skipping the whole warm drive and any stream
// the caller may have deferred building), otherwise by training a
// fresh core over the warm region and — when the spec is reusable —
// caching a snapshot for siblings.
func (b Backend) warmed(ctx context.Context, spec sim.Spec) (*warmCore, prog.Stream, error) {
	if e := b.warm.lookup(spec.WarmKey); e != nil {
		return e.wc.clone(), e.cloneStream(), nil
	}
	wc, err := newWarmCore(spec)
	if err != nil {
		return nil, nil, err
	}
	stream := spec.Stream
	if spec.WarmInsts > 0 {
		warm := func(u *isa.Uop) bool { wc.warmObserve(u); return true }
		if _, err := drive(ctx, stream, spec.WarmInsts, warm); err != nil {
			return nil, nil, err
		}
		// Warm-up activity must not leak into measured statistics.
		wc.bp.ResetStats()
		wc.hier.ResetStats()
	}
	b.warm.store(spec, wc, stream)
	return wc, stream, nil
}

// drive pulls up to n µops from the stream through fn (false = stop),
// checking ctx every cancelChunk µops. It returns the number of µops
// consumed.
func drive(ctx context.Context, stream prog.Stream, n uint64, fn func(u *isa.Uop) bool) (uint64, error) {
	var u isa.Uop
	var done uint64
	check := ctx.Done() != nil
	for done < n {
		if !stream.Next(&u) {
			break
		}
		cont := fn(&u)
		done++
		if !cont {
			break
		}
		if check && done&(cancelChunk-1) == 0 {
			if err := ctx.Err(); err != nil {
				return done, sim.CancelErr(ctx)
			}
		}
	}
	return done, nil
}

// ring is a fixed-size release-time window: peek returns the release
// time recorded len(buf) pushes ago (0 until the window fills), which
// is the earliest time a new entry can allocate when the structure is
// holding that many in-flight entries.
type ring struct {
	buf []float64
	i   int
}

// ringLen clamps a configured window size to the model's finite bound.
func ringLen(n int) int {
	if n <= 0 || n > pipeline.Inf {
		return pipeline.Inf
	}
	return n
}

func (r *ring) init(a *arena, n int) { r.buf = a.float64s(ringLen(n)) }

func (r *ring) peek() float64 { return r.buf[r.i] }

func (r *ring) push(v float64) {
	r.buf[r.i] = v
	r.i++
	if r.i == len(r.buf) {
		r.i = 0
	}
}

// timeHeap is a min-heap of release times: a structure whose entries
// leave out of order (the IQ, the MSHRs, the LTP) tracks its exact
// occupancy with one — entries with release times in the past are
// popped lazily, and admit answers "when is there room for one more".
type timeHeap []float64

func (h *timeHeap) push(v float64) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

// popUntil removes every entry whose release time has passed.
func (h *timeHeap) popUntil(now float64) {
	for len(*h) > 0 && (*h)[0] <= now {
		last := len(*h) - 1
		(*h)[0] = (*h)[last]
		*h = (*h)[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			best := i
			if l < len(*h) && (*h)[l] < (*h)[best] {
				best = l
			}
			if r < len(*h) && (*h)[r] < (*h)[best] {
				best = r
			}
			if best == i {
				break
			}
			(*h)[i], (*h)[best] = (*h)[best], (*h)[i]
			i = best
		}
	}
}

// admit returns the earliest time ≥ t at which the structure (bounded
// by capacity) has a free entry, draining released entries as the
// clock advances.
func (h *timeHeap) admit(t float64, capacity int) float64 {
	h.popUntil(t)
	for len(*h) >= capacity {
		t = (*h)[0]
		h.popUntil(t)
	}
	return t
}

// ltpModel is the parking side-state (nil when no LTP is attached).
type ltpModel struct {
	parksNU  bool
	parksNR  bool
	early    float64 // NR early-wakeup lead (TagEarlyLead)
	capacity int

	occupied timeHeap

	parkedTotal   uint64
	forced        uint64
	sleepSum      float64
	sleepRegs     float64
	sleepLoads    float64
	sleepStores   float64
	classUrgent   uint64
	classNonReady uint64
}

// warmCore is the warm-trainable half of a machine: everything the
// functional warm-up pass mutates (caches and prefetcher, branch
// predictor, the Urgent Instruction Table and its RAT producer
// extension). It is split out so batched evaluation can train one core
// per warm-equivalent subgroup on a single stream pass and clone it
// into each timing lane — clones are deep, so lanes never share
// mutable state.
type warmCore struct {
	hier    *mem.Hierarchy
	bp      bpred.Predictor
	uit     *core.UIT
	regProd [isa.NumArchRegs]uint64 // producing PC, for urgency training
}

// newWarmCore builds the warm-trainable structures for a spec. An
// unknown branch-predictor name surfaces as an error (the server
// validates names upstream, but direct library callers reach this
// path).
func newWarmCore(spec sim.Spec) (*warmCore, error) {
	bp, err := bpred.New(spec.Pipeline.BranchPred)
	if err != nil {
		return nil, fmt.Errorf("ltp: model backend: %w", err)
	}
	w := &warmCore{
		hier: mem.NewHierarchy(spec.Pipeline.Hier),
		bp:   bp,
	}
	w.hier.AttachCorunners(spec.Corunners)
	uitEntries, uitWays := core.DefaultConfig().UITEntries, core.DefaultConfig().UITWays
	if spec.LTP != nil {
		uitEntries, uitWays = spec.LTP.UITEntries, spec.LTP.UITWays
	}
	w.uit = core.NewUIT(uitEntries, uitWays)
	return w, nil
}

// clone returns a deep copy: the original may keep training (or stay
// cached) while the copy backs a measured lane.
func (w *warmCore) clone() *warmCore {
	return &warmCore{
		hier:    w.hier.Clone(),
		bp:      w.bp.Clone(),
		uit:     w.uit.Clone(),
		regProd: w.regProd,
	}
}

// machine is the model's scoring state for one run.
type machine struct {
	*warmCore
	cal Calibration
	cfg pipeline.Config

	// Dataflow timeline.
	regReady   [isa.NumArchRegs]float64
	storeReady map[uint64]float64
	lastDisp   float64
	lastRetire float64
	fetchFloor float64

	// Per-class functional-unit bandwidth: pipelined classes count
	// issues per cycle bucket (K units accept K µops per cycle, in any
	// order — out-of-order µops may claim earlier free slots);
	// unpipelined units (divides, square roots) serialize on a
	// next-free clock. Buckets live in fixed epoch-stamped arrays:
	// issue times stay within a bounded horizon of the dispatch clock,
	// so slots recycle without any pruning pass. dramActiveUntil
	// models the LTP monitor's DRAM timer.
	fuBucketCyc     [isa.NumFUKinds][]int64
	fuBucketCnt     [isa.NumFUKinds][]uint16
	fuCount         [isa.NumFUKinds]int
	fuFree          [isa.NumFUKinds]float64
	dramActiveUntil float64

	// Finite-window constraints. Structures drained in program order
	// (ROB, rename registers, LQ/SQ — release times are monotone) use
	// release-time rings; structures drained out of order (IQ, MSHRs)
	// use exact occupancy heaps. The backing storage comes from the
	// machine's arena: one slab per batch group, no per-structure
	// allocation.
	robRing ring
	intRing ring
	fpRing  ring
	lqRing  ring
	sqRing  ring
	iqHeap  timeHeap
	iqCap   int

	// ltp is the parking side-state; its uit (in warmCore) is a real
	// finite Urgent Instruction Table (the same set-associative LRU
	// structure the cycle backend's unit uses), not an unbounded oracle
	// set: capacity pressure and the resulting misclassification are
	// part of the mechanism the model estimates (the hashjoin family's
	// LTP loss comes from exactly that).
	ltp *ltpModel

	// Accumulators for the Stats snapshot (memory counters live in
	// the hierarchy).
	n          uint64
	stores     uint64
	dramLatSum float64
	rfReads    uint64
	rfWrites   uint64
	robOcc     float64
	iqOcc      float64
	lqOcc      float64
	sqOcc      float64
	intOcc     float64
	fpOcc      float64
}

// newMachine assembles a scoring machine around an already-warmed (or
// fresh) core. Hot-structure storage is carved from a, so a batch
// group can lay every lane's rings, heap backings and FU buckets into
// one arena slab sized at admission; a nil arena falls back to direct
// allocation (the single-cell path).
func newMachine(cal Calibration, spec sim.Spec, wc *warmCore, a *arena) *machine {
	def := DefaultCalibration()
	if cal.DispatchWidth <= 0 {
		cal.DispatchWidth = def.DispatchWidth
	}
	if cal.BranchBubble <= 0 {
		cal.BranchBubble = def.BranchBubble
	}
	if cal.ParkThreshold <= 0 {
		cal.ParkThreshold = def.ParkThreshold
	}
	if cal.WakeDelay <= 0 {
		cal.WakeDelay = def.WakeDelay
	}
	if cal.LoadExtra <= 0 {
		cal.LoadExtra = def.LoadExtra
	}
	if cal.StoreDrain <= 0 {
		cal.StoreDrain = def.StoreDrain
	}
	if cal.CPIScale <= 0 {
		cal.CPIScale = def.CPIScale
	}
	cfg := spec.Pipeline
	m := &machine{
		warmCore:   wc,
		cal:        cal,
		cfg:        cfg,
		storeReady: make(map[uint64]float64),
		iqCap:      cfg.IQSize,
	}
	m.robRing.init(a, cfg.ROBSize)
	m.intRing.init(a, cfg.IntRegs)
	m.fpRing.init(a, cfg.FPRegs)
	m.lqRing.init(a, cfg.LQSize)
	m.sqRing.init(a, cfg.SQSize)
	if m.iqCap <= 0 {
		m.iqCap = pipeline.Inf
	}
	m.iqHeap = a.heap(m.iqCap)
	m.fuCount = [isa.NumFUKinds]int{
		isa.FUALU:  cfg.NumALU,
		isa.FUMul:  cfg.NumMul,
		isa.FUDiv:  cfg.NumDiv,
		isa.FUFP:   cfg.NumFP,
		isa.FUFDiv: cfg.NumFDiv,
		isa.FUMem:  cfg.NumMem,
	}
	for k := range m.fuCount {
		if m.fuCount[k] <= 0 {
			m.fuCount[k] = 1
		}
		m.fuBucketCyc[k] = a.int64s(fuWindow)
		m.fuBucketCnt[k] = a.uint16s(fuWindow)
	}
	if spec.LTP != nil {
		capacity := spec.LTP.Entries
		if capacity <= 0 {
			capacity = cfg.ROBSize
		}
		m.ltp = &ltpModel{
			parksNU:  spec.LTP.Mode.ParksNU(),
			parksNR:  spec.LTP.Mode.ParksNR(),
			early:    float64(cfg.Hier.TagEarlyLead),
			capacity: capacity,
			occupied: a.heap(capacity),
		}
	}
	return m
}

// warmObserve trains the timing-free structures on one warm-up µop:
// caches and prefetcher, branch predictor, and the Urgent Instruction
// Table (the same training the cycle backend's fast warm-up performs).
func (w *warmCore) warmObserve(u *isa.Uop) {
	ll := u.Op.IsLongLatencyALU()
	switch {
	case u.IsMem():
		lvl := w.hier.Warm(u.PC, u.Addr, u.Op == isa.Store)
		ll = u.Op == isa.Load && lvl >= mem.LvlL3
	case u.IsBranch():
		w.bp.Lookup(u.PC, u.Taken, u.Target)
	}
	// Co-runner cache pressure is modelled functionally (shared-level
	// pollution, no MSHR timing) — a documented fidelity tolerance.
	w.hier.WarmTick()
	w.observeUrgency(u, ll)
}

// observeUrgency updates the UIT in the real unit's WarmObserve order:
// one-hop backward propagation on re-encountering an urgent PC first
// (the producers feeding an urgent µop become urgent the next time the
// chain is seen, so dependent-miss chains converge over iterations,
// not instantly), long-latency seeding of the µop's own PC second, and
// producer tracking last. An earlier draft marked the producer urgent
// immediately and kept the set unbounded, which made the urgency
// oracle too clean to reproduce UIT-capacity misclassification.
func (w *warmCore) observeUrgency(u *isa.Uop, ll bool) {
	if w.uit.Urgent(u.PC) {
		for _, r := range [2]isa.Reg{u.Src1, u.Src2} {
			if r.Valid() && w.regProd[r] != 0 {
				w.uit.Insert(w.regProd[r])
			}
		}
	}
	if ll {
		w.uit.Insert(u.PC)
	}
	if u.Dst.Valid() {
		w.regProd[u.Dst] = u.PC
	}
}

// score advances the dataflow timeline by one measured µop.
func (m *machine) score(u *isa.Uop) {
	m.n++
	m.hier.WarmTick() // functional co-runner contention (see warmObserve)

	// Front end: sustained dispatch throughput, gated by redirect
	// bubbles and the ROB window.
	d := m.lastDisp + 1/m.cal.DispatchWidth
	if m.fetchFloor > d {
		d = m.fetchFloor
	}
	if rob := m.robRing.peek(); rob > d {
		d = rob
	}

	// Operand readiness (registers, plus store-forwarded memory).
	depReady := d
	if u.Src1.Valid() && m.regReady[u.Src1] > depReady {
		depReady = m.regReady[u.Src1]
	}
	if u.Src2.Valid() && m.regReady[u.Src2] > depReady {
		depReady = m.regReady[u.Src2]
	}
	if u.Op == isa.Load {
		if sr, ok := m.storeReady[u.Addr]; ok && sr > depReady {
			depReady = sr
		}
	}

	// LTP: a µop whose operands are far in the future parks instead of
	// occupying the IQ (and, for register writers, the rename file)
	// while it sleeps. Urgent µops — long-latency loads and the chains
	// feeding their addresses — never park under NU.
	parked := false
	if m.ltp != nil {
		slack := depReady - d
		urgent := m.uit.Urgent(u.PC)
		if urgent {
			m.ltp.classUrgent++
		}
		// The monitor only enables parking while DRAM activity is
		// outstanding (the paper's DRAM-timer duty cycle). Under NU,
		// every non-urgent non-branch µop parks — ready or not, as the
		// paper's decode-time classification does — deferring its IQ
		// and rename-register allocation; under NR, µops whose
		// operands are far in the future park regardless of urgency.
		eligible := d < m.dramActiveUntil && !u.IsBranch() &&
			((m.ltp.parksNU && !urgent) ||
				(m.ltp.parksNR && slack > m.cal.ParkThreshold))
		if eligible {
			m.ltp.occupied.popUntil(d)
			if len(m.ltp.occupied) < m.ltp.capacity {
				parked = true
				wake := depReady
				if m.ltp.parksNR && slack > m.cal.ParkThreshold {
					wake -= m.ltp.early
					if wake < d {
						wake = d
					}
				}
				m.ltp.occupied.push(wake)
				m.ltp.parkedTotal++
				m.ltp.classNonReady++
				sleep := wake - d
				m.ltp.sleepSum += sleep
				if u.Dst.Valid() {
					m.ltp.sleepRegs += sleep
				}
				switch u.Op {
				case isa.Load:
					m.ltp.sleepLoads += sleep
				case isa.Store:
					m.ltp.sleepStores += sleep
				}
			} else {
				m.ltp.forced++
			}
		}
	}

	// The windows a non-parked µop must fit into: the IQ and, for
	// register writers, the rename file.
	if !parked {
		d = m.iqHeap.admit(d, m.iqCap)
		if u.Dst.Valid() {
			rr := &m.intRing
			if u.Dst.IsFP() {
				rr = &m.fpRing
			}
			if rel := rr.peek(); rel > d {
				d = rel
			}
		}
	}
	lsqHeld := u.IsMem() && (!parked || !m.cfg.LateLSQAlloc)
	if lsqHeld {
		lsq := &m.lqRing
		if u.Op == isa.Store {
			lsq = &m.sqRing
		}
		if rel := lsq.peek(); rel > d {
			d = rel
		}
	}
	if depReady < d {
		depReady = d
	}

	// Back end: issue at operand readiness (woken µops pay the queue
	// drain), execute at the op's latency — loads at the level the
	// timing-free hierarchy walk serves them from.
	issue := depReady
	if parked {
		issue += m.cal.WakeDelay
	}
	lat := float64(isa.Latency[u.Op])
	isDRAM := false
	ll := u.Op.IsLongLatencyALU()
	if u.Op == isa.Load {
		// The measured region walks the real timed hierarchy: MSHR
		// occupancy, merges onto in-flight fills (including
		// prefetches) and DRAM contention all come from the same
		// machinery the cycle backend uses, at the model's clock.
		r, ok := m.hier.Load(u.PC, u.Addr, uint64(issue))
		for !ok {
			issue += 2 // L1 MSHRs full: replay, as the pipeline does
			r, ok = m.hier.Load(u.PC, u.Addr, uint64(issue))
		}
		llat := float64(r.Latency(uint64(issue))) + m.cal.LoadExtra
		isDRAM = r.Level == mem.LvlDRAM
		if isDRAM {
			m.dramLatSum += llat
		}
		ll = r.Level >= mem.LvlL3
		lat = llat
	}
	// Functional-unit contention: pipelined classes accept one µop per
	// unit per cycle (bucket-counted, so an out-of-order µop can claim
	// an earlier free slot); unpipelined units are busy for the full
	// latency.
	fu := u.Op.FU()
	if isa.Pipelined[u.Op] {
		issue = m.fuIssue(fu, issue)
	} else {
		if m.fuFree[fu] > issue {
			issue = m.fuFree[fu]
		}
		m.fuFree[fu] = issue + lat
	}
	complete := issue + lat
	if isDRAM && complete > m.dramActiveUntil {
		m.dramActiveUntil = complete
	}

	if u.IsBranch() {
		if !m.bp.Lookup(u.PC, u.Taken, u.Target) {
			floor := complete + float64(m.cfg.FrontEndDepth) + m.cal.BranchBubble
			if floor > m.fetchFloor {
				m.fetchFloor = floor
			}
		}
	}

	// In-order retirement.
	retire := complete
	if m.lastRetire > retire {
		retire = m.lastRetire
	}
	m.lastRetire = retire

	// Window bookkeeping and dataflow updates.
	m.robRing.push(retire)
	m.robOcc += retire - d
	if !parked {
		m.iqHeap.push(issue)
		m.iqOcc += issue - d
	}
	if u.Dst.Valid() {
		m.regReady[u.Dst] = complete
		m.rfWrites++
		if !parked {
			if u.Dst.IsFP() {
				m.fpRing.push(retire)
				m.fpOcc += retire - d
			} else {
				m.intRing.push(retire)
				m.intOcc += retire - d
			}
		}
	}
	if u.Src1.Valid() {
		m.rfReads++
	}
	if u.Src2.Valid() {
		m.rfReads++
	}
	switch u.Op {
	case isa.Load:
		if lsqHeld {
			m.lqRing.push(retire)
			m.lqOcc += retire - d
		}
	case isa.Store:
		m.stores++
		// Stores drain to the hierarchy after commit; a missing
		// store's SQ entry outlives retirement by part of the fill
		// (post-commit write buffering overlaps the rest).
		res := m.hier.StoreCommit(u.Addr, uint64(retire))
		drain := 0.0
		if av := float64(res.Avail); av > retire {
			drain = (av - retire) * m.cal.StoreDrain
		}
		m.storeReady[u.Addr] = complete
		if m.stores&0xfff == 0 {
			m.pruneStores(d)
		}
		if lsqHeld {
			m.sqRing.push(retire + drain)
			m.sqOcc += retire + drain - d
		}
	}
	m.observeUrgency(u, ll)
	m.lastDisp = d
}

// fuWindow is the bucket horizon (power of two): issue times never
// trail the dispatch clock and never lead it by more than the longest
// structural wait, so 8192 cycle slots recycle safely.
const fuWindow = 1 << 13

// fuIssue claims the earliest issue slot at or after t on one of the
// class's units: each integer cycle bucket admits at most one issue
// per unit.
func (m *machine) fuIssue(k isa.FUKind, t float64) float64 {
	cyc, cnt := m.fuBucketCyc[k], m.fuBucketCnt[k]
	units := uint16(m.fuCount[k])
	c := int64(t)
	for {
		i := c & (fuWindow - 1)
		if cyc[i] != c {
			cyc[i], cnt[i] = c, 0
		}
		if cnt[i] < units {
			cnt[i]++
			if float64(c) > t {
				t = float64(c)
			}
			return t
		}
		c++
	}
}

// pruneStores drops forwarding entries already in the past — a load
// can only be constrained by a store whose data is still in flight —
// so the map stays bounded by in-flight stores, not footprint.
func (m *machine) pruneStores(now float64) {
	for a, t := range m.storeReady {
		if t <= now {
			delete(m.storeReady, a)
		}
	}
}

// snapshot folds the timeline into the Stats shape the cycle backend
// reports.
func (m *machine) snapshot() sim.Stats {
	cycles := m.lastRetire
	if m.lastDisp > cycles {
		cycles = m.lastDisp
	}
	cycles *= m.cal.CPIScale
	cyc := uint64(math.Ceil(cycles))
	if m.n > 0 && cyc == 0 {
		cyc = 1
	}
	st := sim.Stats{}
	r := &st.Result
	r.Cycles = cyc
	r.Committed = m.n
	r.Fetched = m.n
	if m.n > 0 {
		r.CPI = float64(cyc) / float64(m.n)
	}
	if cyc > 0 {
		r.IPC = float64(m.n) / float64(cyc)
		fc := float64(cyc)
		clamp := func(v, lim float64) float64 {
			if lim > 0 && v > lim {
				return lim
			}
			return v
		}
		r.MLP = clamp(m.dramLatSum/fc, float64(m.cfg.Hier.L1DMSHRs))
		r.AvgROB = clamp(m.robOcc/fc, float64(m.cfg.ROBSize))
		r.AvgIQ = clamp(m.iqOcc/fc, float64(m.cfg.IQSize))
		r.AvgLQ = clamp(m.lqOcc/fc, float64(m.cfg.LQSize))
		r.AvgSQ = clamp(m.sqOcc/fc, float64(m.cfg.SQSize))
		r.AvgIntRF = clamp(m.intOcc/fc, float64(m.cfg.IntRegs))
		r.AvgFPRF = clamp(m.fpOcc/fc, float64(m.cfg.FPRegs))
	}
	r.AvgLoadLatency = m.hier.AvgLoadLatency()
	r.Loads, r.Stores = m.hier.Loads, m.hier.Stores
	r.LoadLevel = m.hier.LoadLevel
	r.DemandDRAM = m.hier.DemandDRAM
	r.L1DMissRate = m.hier.L1D.MissRate()
	r.PrefIssued = m.hier.PrefetchIssued
	r.CorunnerAccesses = m.hier.CorunnerAccesses
	r.CorunnerDRAM = m.hier.CorunnerDRAM
	r.CorunnerStalls = m.hier.CorunnerStalls
	r.Branches = m.bp.Stats().Branches
	r.Mispredicts = m.bp.Stats().Mispredicts
	r.Squashes = m.bp.Stats().Mispredicts
	r.Issues = m.n
	r.RFReads, r.RFWrites = m.rfReads, m.rfWrites

	if m.ltp != nil {
		fc := float64(r.Cycles)
		ls := &sim.LTPStats{
			ParkedTotal:   m.ltp.parkedTotal,
			WokenTotal:    m.ltp.parkedTotal,
			ForcedParks:   m.ltp.forced,
			Enqueues:      m.ltp.parkedTotal,
			Dequeues:      m.ltp.parkedTotal,
			ClassUrgent:   m.ltp.classUrgent,
			ClassNonReady: m.ltp.classNonReady,
			UITLen:        m.uit.Len(),
			LLPredAcc:     1,
		}
		if fc > 0 {
			ls.AvgInsts = m.ltp.sleepSum / fc
			ls.AvgRegs = m.ltp.sleepRegs / fc
			ls.AvgLoads = m.ltp.sleepLoads / fc
			ls.AvgStores = m.ltp.sleepStores / fc
			ls.EnabledFrac = math.Min(1, m.dramLatSum/fc)
		}
		st.LTP = ls
	}
	return st
}
