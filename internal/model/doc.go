// Package model implements the "model" execution backend: an
// interval-style analytical performance model of the out-of-order core
// behind the same sim.Backend interface as the cycle-accurate
// pipeline. It executes the workload functionally (the same emulator
// and timing-free cache/branch-predictor warm paths the fast warm-up
// uses) and estimates CPI from first-order structure: the µop mix and
// its dependency-chain depth (a dataflow timeline over architectural
// registers and forwarded stores), per-level memory latencies from a
// timing-free hierarchy walk, branch-entropy-driven redirect bubbles
// from the real gshare tables, finite-window constraints (ROB, IQ,
// rename registers, LQ/SQ, MSHRs) as sliding release-time rings, and
// LTP parking coverage (slack-classified, urgency-filtered, capacity-
// bounded) that relieves IQ and register pressure exactly where the
// mechanism does. It runs one to two orders of magnitude faster than
// the detailed pipeline and is calibrated against it (see Calibration
// and the differential tests); use it to rank configurations and
// triage sweeps, not for absolute numbers.
package model
