package model

import (
	"context"
	"fmt"

	"ltp/internal/isa"
	"ltp/internal/sim"
)

// Backend implements sim.BatchBackend.
var _ sim.BatchBackend = Backend{}

// warmGroup is one warm-equivalence class inside a batch: lanes whose
// warm-affecting configuration (hierarchy, branch predictor, UIT
// geometry, co-runners) is identical share a single trained core.
type warmGroup struct {
	wc     *warmCore
	lanes  []int
	cached bool // wc came from the warm cache: immutable, clone for every lane
}

// warmSig keys the warm-equivalence partition. A caller-provided
// WarmKey is authoritative (equal keys guarantee equal warmed state);
// otherwise the signature is built structurally from every field the
// warm pass reads.
func warmSig(s sim.Spec) string {
	if s.WarmKey != "" {
		return "k:" + s.WarmKey
	}
	uitE, uitW := 0, 0
	if s.LTP != nil {
		uitE, uitW = s.LTP.UITEntries, s.LTP.UITWays
	} else {
		uitE, uitW = -1, -1 // core defaults; distinct from explicit zeroes
	}
	return fmt.Sprintf("s:%+v|%s|%d/%d|%+v", s.Pipeline.Hier, s.Pipeline.BranchPred, uitE, uitW, s.Corunners)
}

// lane is one config cell's timing state during the shared measured
// drive.
type lane struct {
	idx       int // position in the specs slice
	m         *machine
	maxCycles float64
	done      uint64
	capped    bool
	stopped   bool
}

// RunBatch evaluates every spec in one shared pass: the functional
// stream is driven once (warm region then measured region) and each
// retired µop fans into all live timing lanes. Per-lane hot structures
// are carved from one arena slab sized here, at admission. Results are
// bit-identical to per-spec Run calls — lanes only ever touch their
// own cloned state, in stream order, so the floating-point timeline is
// evaluated in exactly the same sequence either way.
func (b Backend) RunBatch(ctx context.Context, specs []sim.Spec) []sim.BatchResult {
	out := make([]sim.BatchResult, len(specs))
	if len(specs) == 0 {
		return out
	}
	if err := ctx.Err(); err != nil {
		for i := range out {
			out[i].Err = sim.CancelErr(ctx)
		}
		return out
	}

	// Admission: lanes must share the stream and the region budgets
	// (MaxCycles may differ — a capped lane just stops scoring early).
	lead := specs[0]
	admitted := make([]int, 0, len(specs))
	for i, s := range specs {
		switch {
		case s.Recorder != nil:
			out[i].Err = fmt.Errorf("ltp: trace capture requires the cycle backend")
		case s.WarmInsts != lead.WarmInsts || s.MaxInsts != lead.MaxInsts:
			out[i].Err = fmt.Errorf("ltp: batched model lanes must share warm-up and measured budgets")
		case s.Reader != lead.Reader:
			out[i].Err = fmt.Errorf("ltp: batched model lanes must share one µop stream")
		default:
			admitted = append(admitted, i)
		}
	}
	if len(admitted) == 0 {
		return out
	}
	failAll := func(err error) []sim.BatchResult {
		for _, i := range admitted {
			out[i].Err = err
		}
		return out
	}

	// Partition into warm-equivalence groups and resolve each against
	// the warm cache.
	var groups []*warmGroup
	gindex := make(map[string]*warmGroup)
	for _, i := range admitted {
		sig := warmSig(specs[i])
		g := gindex[sig]
		if g == nil {
			g = &warmGroup{}
			gindex[sig] = g
			groups = append(groups, g)
		}
		g.lanes = append(g.lanes, i)
	}
	var train []*warmGroup
	var entry *warmEntry
	for _, g := range groups {
		if e := b.warm.lookup(specs[g.lanes[0]].WarmKey); e != nil {
			g.wc, g.cached = e.wc, true
			entry = e
			continue
		}
		wc, err := newWarmCore(specs[g.lanes[0]])
		if err != nil {
			return failAll(err)
		}
		g.wc = wc
		train = append(train, g)
	}

	// One warm pass trains every uncached group; when the whole batch
	// is warm-cache resident the stream (possibly lazily built by the
	// caller) is never touched and a cached clone replays the measured
	// region instead.
	stream := lead.Stream
	if len(train) == 0 && entry != nil {
		stream = entry.cloneStream()
	} else {
		if lead.WarmInsts > 0 {
			warm := func(u *isa.Uop) bool {
				for _, g := range train {
					g.wc.warmObserve(u)
				}
				return true
			}
			if _, err := drive(ctx, stream, lead.WarmInsts, warm); err != nil {
				return failAll(err)
			}
			for _, g := range train {
				g.wc.bp.ResetStats()
				g.wc.hier.ResetStats()
			}
		}
		for _, g := range train {
			b.warm.store(specs[g.lanes[0]], g.wc, stream)
		}
	}

	// Lane admission: one arena slab for the whole group, then one
	// machine per lane. The last lane of a trained group adopts the
	// trainer core itself; every other lane gets a deep clone.
	var nf64, ni64, nu16 int
	for _, i := range admitted {
		f, n, u := arenaNeeds(specs[i])
		nf64 += f
		ni64 += n
		nu16 += u
	}
	ar := newArena(nf64, ni64, nu16)
	lanes := make([]lane, 0, len(admitted))
	for _, g := range groups {
		for j, i := range g.lanes {
			wc := g.wc
			if g.cached || j < len(g.lanes)-1 {
				wc = g.wc.clone()
			}
			lanes = append(lanes, lane{
				idx:       i,
				m:         newMachine(b.Cal, specs[i], wc, ar),
				maxCycles: float64(specs[i].MaxCycles),
			})
		}
	}

	// Measured region: single stream drive, fan-out to live lanes. The
	// inner loop is direct machine calls on a flat lane slice — no
	// interface dispatch, no allocation.
	var u isa.Uop
	active := len(lanes)
	var consumed uint64
	check := ctx.Done() != nil
	var cancelErr error
	for consumed < lead.MaxInsts && active > 0 {
		if !stream.Next(&u) {
			break
		}
		consumed++
		for k := range lanes {
			l := &lanes[k]
			if l.stopped {
				continue
			}
			l.m.score(&u)
			l.done++
			if l.maxCycles > 0 && l.m.lastRetire >= l.maxCycles {
				l.capped = true
				l.stopped = true
				active--
			}
		}
		if check && consumed&(cancelChunk-1) == 0 {
			if err := ctx.Err(); err != nil {
				cancelErr = sim.CancelErr(ctx)
				break
			}
		}
	}

	for k := range lanes {
		l := &lanes[k]
		i := l.idx
		if cancelErr != nil && !l.capped {
			out[i].Err = cancelErr
			continue
		}
		if reader := specs[i].Reader; reader != nil {
			if reader.Err() != nil {
				out[i].Err = fmt.Errorf("ltp: trace replay: %w", reader.Err())
				continue
			}
			if l.done < specs[i].MaxInsts && !l.capped {
				out[i].Err = fmt.Errorf(
					"ltp: trace ended after %d of %d measured instructions (warm-up %d): replay with the recording run's budgets",
					l.done, specs[i].MaxInsts, specs[i].WarmInsts)
				continue
			}
		}
		out[i].Stats = l.m.snapshot()
	}
	return out
}
