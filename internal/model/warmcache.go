package model

import (
	"sync"

	"ltp/internal/prog"
	"ltp/internal/sim"
)

// warmCacheEntries bounds the warm-group cache. Entries hold a cloned
// emulator (sparse memory image included) plus a trained hierarchy, so
// the cache is deliberately small: it serves the interactive "sweep
// siblings arriving close together" pattern, not long-term storage.
const warmCacheEntries = 8

// warmEntry is an immutable snapshot of a functionally-warmed group:
// the trained core and the stream frozen at the measured-region start.
// Borrowers only ever clone both halves, never mutate them, so one
// entry can seed any number of lanes concurrently.
type warmEntry struct {
	wc     *warmCore
	stream prog.StreamCloner
}

func (e *warmEntry) cloneStream() prog.Stream { return e.stream.CloneStream() }

// warmCache is an LRU of warmEntry keyed by sim.Spec.WarmKey. A nil
// *warmCache (the zero Backend) disables reuse entirely, which keeps
// ad-hoc Backend values hermetic for tests and calibration.
type warmCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*warmEntry
	order   []string // LRU order, oldest first
}

func newWarmCache(max int) *warmCache {
	return &warmCache{max: max, entries: make(map[string]*warmEntry, max)}
}

func (c *warmCache) lookup(key string) *warmEntry {
	if c == nil || key == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e != nil {
		c.touch(key)
	}
	return e
}

// touch moves key to the most-recent end of the LRU order.
func (c *warmCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = key
			return
		}
	}
}

// store snapshots a freshly-warmed core under spec.WarmKey. Trace
// replays and recordings are never cached (their stream cursor is tied
// to a file), and streams that cannot be cloned are skipped. The
// snapshot is taken before the lock: cloning can copy megabytes.
func (c *warmCache) store(spec sim.Spec, wc *warmCore, stream prog.Stream) {
	if c == nil || spec.WarmKey == "" || spec.Reader != nil || spec.Recorder != nil {
		return
	}
	sc, ok := stream.(prog.StreamCloner)
	if !ok {
		return
	}
	snap, ok := sc.CloneStream().(prog.StreamCloner)
	if !ok {
		return
	}
	e := &warmEntry{wc: wc.clone(), stream: snap}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[spec.WarmKey]; dup {
		c.touch(spec.WarmKey)
		return
	}
	c.entries[spec.WarmKey] = e
	c.order = append(c.order, spec.WarmKey)
	if len(c.order) > c.max {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, evict)
	}
}

// Len reports the resident entry count (for tests).
func (c *warmCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
