package model

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"ltp/internal/core"
	"ltp/internal/isa"
	"ltp/internal/pipeline"
	"ltp/internal/prog"
	"ltp/internal/sim"
	"ltp/internal/workload"
)

var bg = context.Background()

// testStream builds a fresh hashjoin emulator stream; every call
// replays the identical deterministic µop sequence.
func testStream(t testing.TB) prog.Stream {
	t.Helper()
	fam, err := workload.FamilyByName("hashjoin")
	if err != nil {
		t.Fatal(err)
	}
	return prog.NewEmulator(fam.Build(nil, 0.05, 1))
}

// laneSpec is one timing-lane configuration: IQ size plus whether the
// parking unit is attached.
func laneSpec(iq int, useLTP bool, warm, insts uint64) sim.Spec {
	cfg := pipeline.DefaultConfig()
	cfg.IQSize = iq
	var lcfg *core.Config
	if useLTP {
		c := core.DefaultConfig()
		lcfg = &c
	}
	return sim.Spec{
		Pipeline:  cfg,
		LTP:       lcfg,
		WarmInsts: warm,
		MaxInsts:  insts,
	}
}

// TestRunBatchMatchesRun is the batch path's differential fence at the
// backend level: every lane of a RunBatch must be bit-identical to a
// single Run of the same spec on a fresh stream.
func TestRunBatchMatchesRun(t *testing.T) {
	specs := []sim.Spec{
		laneSpec(64, false, 5_000, 10_000),
		laneSpec(32, false, 5_000, 10_000),
		laneSpec(32, true, 5_000, 10_000),
		laneSpec(24, true, 5_000, 10_000),
	}
	b := Backend{Cal: DefaultCalibration()} // nil warm cache: hermetic

	singles := make([]sim.Stats, len(specs))
	for i := range specs {
		s := specs[i]
		s.Stream = testStream(t)
		st, err := b.Run(bg, s)
		if err != nil {
			t.Fatalf("single run %d: %v", i, err)
		}
		singles[i] = st
	}

	batch := make([]sim.Spec, len(specs))
	copy(batch, specs)
	batch[0].Stream = testStream(t)
	for i, br := range b.RunBatch(bg, batch) {
		if br.Err != nil {
			t.Fatalf("batch lane %d: %v", i, br.Err)
		}
		if !reflect.DeepEqual(br.Stats, singles[i]) {
			t.Fatalf("batch lane %d diverged from single run:\nbatch:  %+v\nsingle: %+v", i, br.Stats, singles[i])
		}
	}
}

// TestRunBatchHonorsMaxCycles checks a capped lane stops scoring at
// its own budget without disturbing uncapped siblings.
func TestRunBatchHonorsMaxCycles(t *testing.T) {
	free := laneSpec(64, false, 2_000, 20_000)
	capped := free
	capped.MaxCycles = 500

	b := Backend{Cal: DefaultCalibration()}
	sc := capped
	sc.Stream = testStream(t)
	cSingle, err := b.Run(bg, sc)
	if err != nil {
		t.Fatal(err)
	}
	sf := free
	sf.Stream = testStream(t)
	fSingle, err := b.Run(bg, sf)
	if err != nil {
		t.Fatal(err)
	}

	batch := []sim.Spec{free, capped}
	batch[0].Stream = testStream(t)
	out := b.RunBatch(bg, batch)
	for i, br := range out {
		if br.Err != nil {
			t.Fatalf("lane %d: %v", i, br.Err)
		}
	}
	if !reflect.DeepEqual(out[1].Stats, cSingle) {
		t.Fatalf("capped lane diverged:\nbatch:  %+v\nsingle: %+v", out[1].Stats, cSingle)
	}
	if !reflect.DeepEqual(out[0].Stats, fSingle) {
		t.Fatalf("uncapped lane diverged:\nbatch:  %+v\nsingle: %+v", out[0].Stats, fSingle)
	}
	if cSingle.Committed >= fSingle.Committed {
		t.Fatalf("cap did not bite: capped %d insts vs free %d", cSingle.Committed, fSingle.Committed)
	}
}

// TestRunBatchBudgetMismatch checks admission: lanes that disagree on
// the warm/measured budgets fail individually, the rest proceed.
func TestRunBatchBudgetMismatch(t *testing.T) {
	a := laneSpec(64, false, 2_000, 4_000)
	bad := laneSpec(32, false, 2_000, 8_000) // different measured budget
	c := laneSpec(32, false, 2_000, 4_000)
	batch := []sim.Spec{a, bad, c}
	batch[0].Stream = testStream(t)
	out := Backend{Cal: DefaultCalibration()}.RunBatch(bg, batch)
	if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "budgets") {
		t.Fatalf("mismatched lane err = %v; want budget admission error", out[1].Err)
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil {
			t.Fatalf("lane %d: %v", i, out[i].Err)
		}
		if out[i].Stats.Committed == 0 {
			t.Fatalf("lane %d produced no result", i)
		}
	}
}

// TestWarmCacheHitIdentity: a warm-cache hit must reproduce the cold
// run exactly — the cached core and stream snapshot replay the same
// measured region — and must never touch the caller's stream (a nil
// stream on the hit path proves the whole warm drive was skipped).
func TestWarmCacheHitIdentity(t *testing.T) {
	b := Backend{Cal: DefaultCalibration(), warm: newWarmCache(4)}
	spec := laneSpec(48, true, 5_000, 10_000)
	spec.WarmKey = "test-warm-group"

	cold := spec
	cold.Stream = testStream(t)
	first, err := b.Run(bg, cold)
	if err != nil {
		t.Fatal(err)
	}
	if b.warm.Len() != 1 {
		t.Fatalf("warm cache holds %d entries after cold run; want 1", b.warm.Len())
	}

	hit := spec // Stream deliberately nil: a hit must not need it
	second, err := b.Run(bg, hit)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("warm-cache hit diverged from cold run:\ncold: %+v\nhit:  %+v", first, second)
	}
}

// TestRunBadPredictorErrors is the mustPredictor regression test: an
// unknown branch predictor must surface as an error through Run and
// RunBatch, never as a panic.
func TestRunBadPredictorErrors(t *testing.T) {
	spec := laneSpec(64, false, 1_000, 2_000)
	spec.Pipeline.BranchPred = "no-such-predictor"
	spec.Stream = testStream(t)
	b := Backend{Cal: DefaultCalibration()}
	if _, err := b.Run(bg, spec); err == nil || !strings.Contains(err.Error(), "model backend") {
		t.Fatalf("Run err = %v; want model backend predictor error", err)
	}
	out := b.RunBatch(bg, []sim.Spec{spec})
	if out[0].Err == nil || !strings.Contains(out[0].Err.Error(), "model backend") {
		t.Fatalf("RunBatch err = %v; want model backend predictor error", out[0].Err)
	}
}

// steadyMachines builds n warmed lanes carved from one arena and a
// slice of measured-region µops to replay through them.
func steadyMachines(t testing.TB, n int, warm, runway uint64) ([]*machine, []isa.Uop) {
	t.Helper()
	specs := make([]sim.Spec, n)
	for i := range specs {
		specs[i] = laneSpec(24+8*i, i%2 == 1, warm, runway)
	}
	stream := testStream(t)
	wc, err := newWarmCore(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drive(bg, stream, warm, func(u *isa.Uop) bool { wc.warmObserve(u); return true }); err != nil {
		t.Fatal(err)
	}
	var nf64, ni64, nu16 int
	for i := range specs {
		f, x, u := arenaNeeds(specs[i])
		nf64 += f
		ni64 += x
		nu16 += u
	}
	ar := newArena(nf64, ni64, nu16)
	ms := make([]*machine, n)
	for i := range specs {
		c := wc
		if i < n-1 {
			c = wc.clone()
		}
		ms[i] = newMachine(Calibration{}, specs[i], c, ar)
	}
	// Runway µops: drive every lane to steady state (structures full,
	// FU epochs initialized, hierarchy past compulsory churn), keeping
	// the tail as the replay body for the fence.
	uops := make([]isa.Uop, 0, runway)
	var u isa.Uop
	for uint64(len(uops)) < runway && stream.Next(&u) {
		uops = append(uops, u)
	}
	for k := range uops {
		for _, m := range ms {
			m.score(&uops[k])
		}
	}
	return ms, uops
}

// TestScoreAllocsSingle fences the single-lane hot loop at zero
// allocations per µop in steady state.
func TestScoreAllocsSingle(t *testing.T) {
	ms, uops := steadyMachines(t, 1, 5_000, 20_000)
	m := ms[0]
	i := 0
	allocs := testing.AllocsPerRun(5_000, func() {
		m.score(&uops[i%len(uops)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("single-lane score allocates %.1f per µop in steady state; want 0", allocs)
	}
}

// TestScoreAllocsBatchedLanes fences the batched fan-out loop — one
// µop scored into several arena-backed lanes — at zero allocations per
// µop in steady state.
func TestScoreAllocsBatchedLanes(t *testing.T) {
	ms, uops := steadyMachines(t, 4, 5_000, 20_000)
	i := 0
	allocs := testing.AllocsPerRun(5_000, func() {
		u := &uops[i%len(uops)]
		for _, m := range ms {
			m.score(u)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("batched lane loop allocates %.1f per µop in steady state; want 0", allocs)
	}
}

// TestArenaCarving checks the bump allocator's reservation math and
// the private-reallocation overflow guard.
func TestArenaCarving(t *testing.T) {
	a := newArena(8, 4, 4)
	s1 := a.float64s(5)
	s2 := a.float64s(3)
	if len(s1) != 5 || len(s2) != 3 {
		t.Fatalf("carves sized %d/%d; want 5/3", len(s1), len(s2))
	}
	// Exhausted: falls back to a private make, not a panic.
	s3 := a.float64s(2)
	if len(s3) != 2 {
		t.Fatalf("fallback carve sized %d; want 2", len(s3))
	}
	// The three-index carve must prevent append bleed into s2.
	s1 = s1[:0]
	for k := 0; k < 6; k++ {
		s1 = append(s1, 1.0)
	}
	for _, v := range s2 {
		if v != 0 {
			t.Fatal("appending past a carve's capacity clobbered its neighbour")
		}
	}
	// A nil arena degrades every carve to make.
	var nilArena *arena
	if got := nilArena.float64s(4); len(got) != 4 {
		t.Fatalf("nil arena carve sized %d; want 4", len(got))
	}
	if h := nilArena.heap(3); cap(h) != heapLen(3) {
		t.Fatalf("nil arena heap cap %d; want %d", cap(h), heapLen(3))
	}
}
