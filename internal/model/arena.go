package model

import (
	"ltp/internal/isa"
	"ltp/internal/pipeline"
	"ltp/internal/sim"
)

// arena is a bump allocator for the machine's hot structures: one slab
// per typed element class, carved at batch admission so every lane's
// release-time rings, heap backings and FU cycle-buckets are laid out
// contiguously with no per-structure (let alone per-µop) allocation.
// Carves use the three-index form, so a structure that somehow outgrew
// its reservation reallocates privately instead of clobbering its
// neighbour. A nil arena degrades every carve to a direct make — the
// single-cell path.
type arena struct {
	f64 []float64
	i64 []int64
	u16 []uint16
}

func newArena(nf64, ni64, nu16 int) *arena {
	return &arena{
		f64: make([]float64, nf64),
		i64: make([]int64, ni64),
		u16: make([]uint16, nu16),
	}
}

func (a *arena) float64s(n int) []float64 {
	if a == nil || len(a.f64) < n {
		return make([]float64, n)
	}
	s := a.f64[:n:n]
	a.f64 = a.f64[n:]
	return s
}

func (a *arena) int64s(n int) []int64 {
	if a == nil || len(a.i64) < n {
		return make([]int64, n)
	}
	s := a.i64[:n:n]
	a.i64 = a.i64[n:]
	return s
}

func (a *arena) uint16s(n int) []uint16 {
	if a == nil || len(a.u16) < n {
		return make([]uint16, n)
	}
	s := a.u16[:n:n]
	a.u16 = a.u16[n:]
	return s
}

// heap carves an empty timeHeap with room for capacity entries plus
// one slack slot, so admit-bounded pushes never reallocate.
func (a *arena) heap(capacity int) timeHeap {
	n := heapLen(capacity)
	if n == 0 {
		return nil
	}
	return timeHeap(a.float64s(n)[:0])
}

func heapLen(capacity int) int {
	if capacity <= 0 {
		return 0
	}
	return capacity + 1
}

// arenaNeeds sizes one lane's slab reservation: the five release-time
// rings, the IQ occupancy heap, the LTP occupancy heap when parking is
// attached, and the per-FU-class cycle buckets.
func arenaNeeds(spec sim.Spec) (nf64, ni64, nu16 int) {
	cfg := spec.Pipeline
	nf64 = ringLen(cfg.ROBSize) + ringLen(cfg.IntRegs) + ringLen(cfg.FPRegs) +
		ringLen(cfg.LQSize) + ringLen(cfg.SQSize)
	iqCap := cfg.IQSize
	if iqCap <= 0 {
		iqCap = pipeline.Inf
	}
	nf64 += heapLen(iqCap)
	if spec.LTP != nil {
		capacity := spec.LTP.Entries
		if capacity <= 0 {
			capacity = cfg.ROBSize
		}
		nf64 += heapLen(capacity)
	}
	ni64 = int(isa.NumFUKinds) * fuWindow
	nu16 = ni64
	return nf64, ni64, nu16
}
