package model

// Calibration holds the model's fitted coefficients. The structural
// inputs (latencies, widths, structure sizes) come from the run's own
// pipeline.Config; these constants absorb the second-order effects the
// interval model does not simulate (wakeup/select loops, issue-port
// contention, partial squash overlap), and were fitted so the model
// tracks the cycle-accurate backend across the kernel registry and the
// scenario families (see TestModelTracksCycleBackend).
type Calibration struct {
	// DispatchWidth is the sustained front-end throughput in µops per
	// cycle. It sits below the nominal rename width: the fitted value
	// covers fetch fragmentation and issue-port contention the model
	// does not simulate.
	DispatchWidth float64
	// BranchBubble is the redirect penalty in cycles charged beyond
	// the configured front-end refill depth for every mispredicted
	// branch (resolve-to-fetch turnaround).
	BranchBubble float64
	// ParkThreshold is the operand-slack in cycles beyond which a
	// non-urgent µop is parked when the LTP is attached (the model's
	// stand-in for the non-urgent classification latency class).
	ParkThreshold float64
	// WakeDelay is the dequeue/re-dispatch delay in cycles a parked
	// µop pays when it wakes (finite queue ports, in-order drain).
	WakeDelay float64
	// LoadExtra is the fixed per-load overhead in cycles added on top
	// of the hierarchy's level latency (AGU, issue-to-execute skew).
	LoadExtra float64
	// StoreDrain scales how long a missing store's SQ entry outlives
	// retirement (post-commit write buffering overlaps most of the
	// fill latency).
	StoreDrain float64
	// CPIScale is a final multiplicative correction applied to the
	// estimated cycle count.
	CPIScale float64
}

// DefaultCalibration returns the fitted coefficient set used by the
// registered "model" backend.
func DefaultCalibration() Calibration {
	return Calibration{
		DispatchWidth: 4.0,
		BranchBubble:  2.0,
		ParkThreshold: 8.0,
		WakeDelay:     4.0,
		LoadExtra:     1.0,
		StoreDrain:    0.25,
		CPIScale:      1.0,
	}
}
