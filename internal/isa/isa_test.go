package isa

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		Nop: "nop", IAdd: "iadd", IMul: "imul", IDiv: "idiv",
		FAdd: "fadd", FMul: "fmul", FDiv: "fdiv", FSqrt: "fsqrt",
		Load: "load", Store: "store", Branch: "branch",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("unknown op rendered %q", got)
	}
}

func TestOpClasses(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() {
		t.Error("loads/stores must be memory ops")
	}
	if IAdd.IsMem() || Branch.IsMem() {
		t.Error("non-memory op classified as memory")
	}
	for _, op := range []Op{IDiv, FDiv, FSqrt} {
		if !op.IsLongLatencyALU() {
			t.Errorf("%v must be a long-latency ALU op", op)
		}
		if Pipelined[op] {
			t.Errorf("%v must be unpipelined", op)
		}
	}
	if IAdd.IsLongLatencyALU() || Load.IsLongLatencyALU() {
		t.Error("short op classified long-latency")
	}
}

func TestOpFUMapping(t *testing.T) {
	cases := map[Op]FUKind{
		Nop: FUALU, IAdd: FUALU, Branch: FUALU,
		IMul: FUMul, IDiv: FUDiv,
		FAdd: FUFP, FMul: FUFP,
		FDiv: FUFDiv, FSqrt: FUFDiv,
		Load: FUMem, Store: FUMem,
	}
	for op, want := range cases {
		if got := op.FU(); got != want {
			t.Errorf("%v.FU() = %v, want %v", op, got, want)
		}
	}
}

func TestLatencyTable(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		if Latency[op] <= 0 {
			t.Errorf("%v has non-positive latency %d", op, Latency[op])
		}
	}
	if Latency[IDiv] <= Latency[IMul] {
		t.Error("divide must be slower than multiply")
	}
	if Latency[FSqrt] <= Latency[FAdd] {
		t.Error("sqrt must be slower than fadd")
	}
}

func TestRegHelpers(t *testing.T) {
	if R(0) != 0 || R(31) != 31 {
		t.Error("integer register numbering broken")
	}
	if F(0) != NumIntRegs || F(31) != NumIntRegs+31 {
		t.Error("fp register numbering broken")
	}
	if R(5).IsFP() {
		t.Error("r5 must not be FP")
	}
	if !F(5).IsFP() {
		t.Error("f5 must be FP")
	}
	if NoReg.Valid() {
		t.Error("NoReg must be invalid")
	}
	if !R(0).Valid() || !F(31).Valid() {
		t.Error("real registers must be valid")
	}
	if got := R(3).String(); got != "r3" {
		t.Errorf("R(3).String() = %q", got)
	}
	if got := F(7).String(); got != "f7" {
		t.Errorf("F(7).String() = %q", got)
	}
	if got := NoReg.String(); got != "-" {
		t.Errorf("NoReg.String() = %q", got)
	}
}

func TestRegHelperPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { R(-1) }, func() { R(NumIntRegs) },
		func() { F(-1) }, func() { F(NumFPRegs) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register index")
				}
			}()
			fn()
		}()
	}
}

// Property: every integer register index round-trips through R and back.
func TestRegRoundTripProperty(t *testing.T) {
	f := func(i uint8) bool {
		ii := int(i) % NumIntRegs
		r := R(ii)
		return int(r) == ii && !r.IsFP() && r.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(i uint8) bool {
		ii := int(i) % NumFPRegs
		r := F(ii)
		return int(r) == ii+NumIntRegs && r.IsFP() && r.Valid()
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestInstString(t *testing.T) {
	ld := Inst{Op: Load, Dst: R(1), Src1: R(2), Imm: 16}
	if got := ld.String(); got != "load r1, [r2+16]" {
		t.Errorf("load rendered %q", got)
	}
	st := Inst{Op: Store, Src1: R(2), Src2: R(3), Imm: 8}
	if got := st.String(); got != "store [r2+8], r3" {
		t.Errorf("store rendered %q", got)
	}
	br := Inst{Op: Branch, Src1: R(4), Target: 7, Label: "K"}
	if got := br.String(); got != "K: branch r4, ->7" {
		t.Errorf("branch rendered %q", got)
	}
}

func TestUopHelpers(t *testing.T) {
	u := Uop{Op: Load, Dst: R(1), Src1: R(2), Addr: 0x40, Seq: 3, PC: 0x1000}
	if !u.IsMem() || u.IsBranch() {
		t.Error("load µop misclassified")
	}
	b := Uop{Op: Branch, Src1: R(1), Taken: true, Target: 0x2000}
	if b.IsMem() || !b.IsBranch() {
		t.Error("branch µop misclassified")
	}
	if s := u.String(); s == "" {
		t.Error("empty µop string")
	}
}
