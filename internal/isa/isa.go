// Package isa defines the micro-ISA used by the LTP reproduction: a small
// load/store RISC instruction set rich enough to express the dependence and
// miss patterns the paper's evaluation relies on (address generation chains,
// pointer chasing, long-latency divides, streaming stores) while staying
// simple enough for an exact functional emulator.
//
// Two instruction forms exist:
//
//   - Inst: the static form produced by the program builder (internal/prog).
//     Operands are architectural registers or immediates.
//   - Uop: the dynamic form produced by the functional emulator. It carries
//     the resolved effective address for memory operations and the resolved
//     outcome for branches, which is what a trace-driven timing model needs.
package isa

import "fmt"

// Op enumerates the micro-ISA opcodes.
type Op uint8

const (
	// Nop does nothing. It still occupies front-end slots and a ROB entry.
	Nop Op = iota
	// IAdd is integer add/sub/logic: 1-cycle ALU.
	IAdd
	// IMul is integer multiply: pipelined 3-cycle.
	IMul
	// IDiv is integer divide: unpipelined long latency (a "long-latency"
	// instruction class in the paper, like sqrt).
	IDiv
	// FAdd is floating-point add: pipelined 3-cycle.
	FAdd
	// FMul is floating-point multiply: pipelined 4-cycle.
	FMul
	// FDiv is floating-point divide: unpipelined long latency.
	FDiv
	// FSqrt is floating-point square root: unpipelined long latency.
	FSqrt
	// Load reads 8 bytes from memory.
	Load
	// Store writes 8 bytes to memory.
	Store
	// Branch is a conditional branch (direction + target resolved by the
	// emulator).
	Branch
	// NumOps is the number of opcodes; keep last.
	NumOps
)

var opNames = [NumOps]string{
	Nop: "nop", IAdd: "iadd", IMul: "imul", IDiv: "idiv",
	FAdd: "fadd", FMul: "fmul", FDiv: "fdiv", FSqrt: "fsqrt",
	Load: "load", Store: "store", Branch: "branch",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the opcode accesses memory.
func (o Op) IsMem() bool { return o == Load || o == Store }

// IsLongLatencyALU reports whether the opcode is a non-memory long-latency
// operation (divide or square root), one of the paper's long-latency
// instruction classes.
func (o Op) IsLongLatencyALU() bool { return o == IDiv || o == FDiv || o == FSqrt }

// FUKind identifies the functional-unit class an opcode executes on.
type FUKind uint8

const (
	// FUALU executes simple integer operations and branches.
	FUALU FUKind = iota
	// FUMul executes integer multiplies.
	FUMul
	// FUDiv executes integer divides (unpipelined).
	FUDiv
	// FUFP executes pipelined floating-point adds/multiplies.
	FUFP
	// FUFDiv executes FP divides and square roots (unpipelined).
	FUFDiv
	// FUMem executes loads and stores (address generation + cache port).
	FUMem
	// NumFUKinds is the number of FU classes; keep last.
	NumFUKinds
)

var fuNames = [NumFUKinds]string{
	FUALU: "alu", FUMul: "mul", FUDiv: "div", FUFP: "fp", FUFDiv: "fdiv", FUMem: "mem",
}

// String returns the FU class name.
func (k FUKind) String() string { return fuNames[k] }

// FU returns the functional-unit class for the opcode.
func (o Op) FU() FUKind {
	switch o {
	case IMul:
		return FUMul
	case IDiv:
		return FUDiv
	case FAdd, FMul:
		return FUFP
	case FDiv, FSqrt:
		return FUFDiv
	case Load, Store:
		return FUMem
	default:
		return FUALU
	}
}

// Latency is the execution latency in cycles for each opcode, excluding
// memory access time for loads/stores (the cache hierarchy adds that).
// Divide/sqrt latencies are in the range the paper treats as "long latency"
// alongside LLC misses.
var Latency = [NumOps]int{
	Nop:    1,
	IAdd:   1,
	IMul:   3,
	IDiv:   20,
	FAdd:   3,
	FMul:   4,
	FDiv:   24,
	FSqrt:  24,
	Load:   1, // AGU cycle; cache adds the rest
	Store:  1, // AGU cycle; data written at commit
	Branch: 1,
}

// Pipelined reports whether the opcode's FU accepts a new operation every
// cycle. Divides and square roots are unpipelined, matching conventional
// designs.
var Pipelined = [NumOps]bool{
	Nop: true, IAdd: true, IMul: true, IDiv: false,
	FAdd: true, FMul: true, FDiv: false, FSqrt: false,
	Load: true, Store: true, Branch: true,
}

// Reg is an architectural register identifier. The ISA has NumIntRegs
// integer registers (r0..r31) and NumFPRegs floating-point registers
// (f0..f31) mapped to a single flat space; NoReg means "no operand".
type Reg int16

const (
	// NoReg marks an absent operand.
	NoReg Reg = -1
	// NumIntRegs is the number of architectural integer registers.
	NumIntRegs = 32
	// NumFPRegs is the number of architectural floating-point registers.
	NumFPRegs = 32
	// NumArchRegs is the total architectural register count.
	NumArchRegs = NumIntRegs + NumFPRegs
)

// R returns the i'th integer register.
func R(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register index %d out of range", i))
	}
	return Reg(i)
}

// F returns the i'th floating-point register.
func F(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register index %d out of range", i))
	}
	return Reg(NumIntRegs + i)
}

// IsFP reports whether the register is in the floating-point class.
func (r Reg) IsFP() bool { return r >= NumIntRegs }

// Valid reports whether the register is a real register (not NoReg).
func (r Reg) Valid() bool { return r >= 0 && r < NumArchRegs }

// String formats the register as r<i> or f<i>.
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	default:
		return fmt.Sprintf("r%d", int(r))
	}
}

// BranchCond enumerates branch conditions for the static form.
type BranchCond uint8

const (
	// CondNever is used by non-branches.
	CondNever BranchCond = iota
	// CondEQ branches when the source register is zero.
	CondEQ
	// CondNE branches when the source register is non-zero.
	CondNE
	// CondLT branches when the source register is negative.
	CondLT
	// CondGE branches when the source register is non-negative.
	CondGE
	// CondAlways is an unconditional branch.
	CondAlways
)

// Inst is the static instruction form emitted by the program builder.
type Inst struct {
	Op   Op
	Dst  Reg   // destination register, NoReg if none
	Src1 Reg   // first source, NoReg if none
	Src2 Reg   // second source, NoReg if none
	Imm  int64 // immediate: ALU constant, or address displacement for memory

	// Branch fields.
	Cond   BranchCond
	Target int // static program index of the branch target

	// Label is an optional human-readable tag used in listings and tests
	// (e.g. the paper's Fig. 2 uses letters A..K).
	Label string
}

// HasDst reports whether the static instruction writes a register.
func (in Inst) HasDst() bool { return in.Dst.Valid() }

// String renders a compact assembly-like listing line.
func (in Inst) String() string {
	lbl := in.Label
	if lbl != "" {
		lbl += ": "
	}
	switch in.Op {
	case Branch:
		return fmt.Sprintf("%s%s %s, ->%d", lbl, in.Op, in.Src1, in.Target)
	case Load:
		return fmt.Sprintf("%s%s %s, [%s+%d]", lbl, in.Op, in.Dst, in.Src1, in.Imm)
	case Store:
		return fmt.Sprintf("%s%s [%s+%d], %s", lbl, in.Op, in.Src1, in.Imm, in.Src2)
	default:
		return fmt.Sprintf("%s%s %s, %s, %s, #%d", lbl, in.Op, in.Dst, in.Src1, in.Src2, in.Imm)
	}
}

// Uop is one dynamic instruction produced by the functional emulator: the
// unit the timing pipeline operates on.
type Uop struct {
	Seq  uint64 // dynamic sequence number, starting at 0
	PC   uint64 // static PC (program index scaled by 4 + program base)
	Op   Op
	Dst  Reg
	Src1 Reg
	Src2 Reg

	// Memory operands (valid when Op.IsMem()).
	Addr uint64 // effective byte address
	Size uint8  // access size in bytes (always 8 in this ISA)

	// Branch resolution (valid when Op == Branch).
	Taken  bool
	Target uint64 // resolved next PC

	Label string // static label, for diagnostics
}

// IsMem reports whether the µop accesses memory.
func (u *Uop) IsMem() bool { return u.Op.IsMem() }

// IsBranch reports whether the µop is a branch.
func (u *Uop) IsBranch() bool { return u.Op == Branch }

// String renders the µop for diagnostics.
func (u *Uop) String() string {
	s := fmt.Sprintf("#%d pc=%#x %s", u.Seq, u.PC, u.Op)
	if u.Label != "" {
		s += " [" + u.Label + "]"
	}
	if u.Dst.Valid() {
		s += " dst=" + u.Dst.String()
	}
	if u.Src1.Valid() {
		s += " s1=" + u.Src1.String()
	}
	if u.Src2.Valid() {
		s += " s2=" + u.Src2.String()
	}
	if u.IsMem() {
		s += fmt.Sprintf(" addr=%#x", u.Addr)
	}
	if u.IsBranch() {
		s += fmt.Sprintf(" taken=%v tgt=%#x", u.Taken, u.Target)
	}
	return s
}
