package cache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// DoBatch resolves a group of keys as one unit. Each key is classified
// exactly as Do would classify it — memory hit, join of an existing
// flight, or a new flight — but every new flight opened here is owned
// by the batch and resolved together: the batch goroutine consults the
// backing layer per key, then calls compute ONCE with the indices that
// still need computing. compute returns positional values and errors
// for exactly those indices; each success is stored (memory and
// backing) under its own key, so batched results and single Do results
// are fully interchangeable.
//
// ctx bounds this call's wait, not the computation. The batch compute
// context is cancelled only when every owned flight has lost all of
// its waiters (this caller plus any Do callers that joined a lane
// mid-flight), so one abandoned lane does not cancel its siblings.
//
// compute may be invoked more than once: if a lane joined another
// caller's flight and that flight was abandoned at the instant of the
// join, the lane retries alone via a fresh single flight whose compute
// is compute(ctx, []int{i}). Invocations always receive disjoint index
// sets and must be safe to run concurrently.
//
// Returned slices are positional with keys. Counter semantics are
// identical to Do: Hit for memory, Shared for joins, and Miss or
// StoreHit per owned flight at resolution.
func (c *Cache) DoBatch(ctx context.Context, keys []string, compute func(ctx context.Context, miss []int) ([]any, []error)) ([]any, []Outcome, []error) {
	n := len(keys)
	vals := make([]any, n)
	outcomes := make([]Outcome, n)
	errs := make([]error, n)

	bctx, bcancel := context.WithCancel(context.Background())
	var live atomic.Int32
	release := func() {
		if live.Add(-1) == 0 {
			bcancel()
		}
	}

	flights := make([]*flight, n) // nil for memory hits
	var owned []int               // indices whose flight this batch owns

	c.mu.Lock()
	for i, key := range keys {
		if el, ok := c.items[key]; ok {
			c.order.MoveToFront(el)
			c.stats.Hits++
			vals[i], outcomes[i] = el.Value.(*entry).val, Hit
			continue
		}
		if f, ok := c.inflight[key]; ok {
			// Someone else's flight — or an earlier duplicate key in
			// this very batch. Either way, join it.
			f.waiters++
			c.stats.Shared++
			flights[i], outcomes[i] = f, Shared
			continue
		}
		live.Add(1)
		f := &flight{done: make(chan struct{}), ctx: bctx, waiters: 1}
		var once sync.Once
		f.cancel = func() { once.Do(release) }
		c.inflight[key] = f
		flights[i], outcomes[i] = f, Miss
		owned = append(owned, i)
	}
	c.mu.Unlock()

	if len(owned) > 0 {
		go c.runBatch(keys, owned, flights, bctx, compute)
	} else {
		bcancel() // nothing owned; release the context immediately
	}

	for i := range keys {
		f := flights[i]
		if f == nil {
			continue // memory hit, already resolved
		}
		v, out, err, retry := c.wait(ctx, f, outcomes[i])
		if retry {
			// The joined flight was abandoned as this lane attached;
			// redo it alone under the ordinary single-flight path.
			i := i
			v, out, err = c.Do(ctx, keys[i], func(cctx context.Context) (any, error) {
				vs, es := compute(cctx, []int{i})
				if len(vs) != 1 || len(es) != 1 {
					return nil, fmt.Errorf("cache: batch compute returned %d/%d results for 1 key", len(vs), len(es))
				}
				return vs[0], es[0]
			})
		}
		vals[i], outcomes[i], errs[i] = v, out, err
	}
	return vals, outcomes, errs
}

// runBatch resolves the batch-owned flights: backing lookups first,
// then one compute call for the remainder. Each flight resolves
// independently (store, counters, done-close) so Do callers joined to
// a single lane wake as soon as that lane lands.
func (c *Cache) runBatch(keys []string, owned []int, flights []*flight, bctx context.Context, compute func(ctx context.Context, miss []int) ([]any, []error)) {
	b := c.getBacking()
	miss := make([]int, 0, len(owned))
	for _, i := range owned {
		if b != nil {
			if v, ok := lookupBacking(b, keys[i]); ok {
				c.resolveFlight(keys[i], flights[i], v, nil, true, b)
				continue
			}
		}
		miss = append(miss, i)
	}
	if len(miss) == 0 {
		return
	}
	mvals, merrs := computeBatch(bctx, miss, compute)
	for j, i := range miss {
		c.resolveFlight(keys[i], flights[i], mvals[j], merrs[j], false, b)
	}
}

// computeBatch invokes the user compute with panic and shape
// containment: a panic or a mis-sized return becomes a per-lane error
// instead of killing the process or corrupting positional mapping.
func computeBatch(bctx context.Context, miss []int, compute func(ctx context.Context, miss []int) ([]any, []error)) (vals []any, errs []error) {
	fail := func(err error) {
		vals = make([]any, len(miss))
		errs = make([]error, len(miss))
		for j := range errs {
			errs[j] = err
		}
	}
	defer func() {
		if p := recover(); p != nil {
			fail(fmt.Errorf("cache: batch computation panicked: %v", p))
		}
	}()
	vals, errs = compute(bctx, miss)
	if len(vals) != len(miss) || len(errs) != len(miss) {
		fail(fmt.Errorf("cache: batch compute returned %d/%d results for %d keys", len(vals), len(errs), len(miss)))
	}
	return vals, errs
}

// lookupBacking shields the batch path from a panicking Backing
// implementation, mirroring storeBacking.
func lookupBacking(b Backing, key string) (v any, ok bool) {
	defer func() {
		if recover() != nil {
			v, ok = nil, false
		}
	}()
	return b.Lookup(key)
}

// resolveFlight lands one batch-owned flight with exactly the
// bookkeeping of run()'s deferred epilogue: counters at resolution,
// store on success, backing append for computed successes, done-close,
// context release.
func (c *Cache) resolveFlight(key string, f *flight, val any, err error, fromBacking bool, b Backing) {
	f.val, f.err, f.fromBacking = val, err, fromBacking
	f.abandoned = f.ctx.Err() != nil
	c.mu.Lock()
	delete(c.inflight, key)
	if f.fromBacking {
		c.stats.StoreHits++
	} else {
		c.stats.Misses++
	}
	if f.err == nil {
		c.store(key, f.val)
	}
	c.mu.Unlock()
	if f.err == nil && !f.fromBacking && b != nil {
		storeBacking(b, key, f.val)
	}
	close(f.done)
	f.cancel()
}
