package cache

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// batchCompute returns a compute that records each invocation's miss
// set and serves "v:<key>" per lane.
func batchCompute(keys []string, calls *[][]int, mu *sync.Mutex) func(context.Context, []int) ([]any, []error) {
	return func(_ context.Context, miss []int) ([]any, []error) {
		mu.Lock()
		*calls = append(*calls, append([]int(nil), miss...))
		mu.Unlock()
		vals := make([]any, len(miss))
		errs := make([]error, len(miss))
		for j, i := range miss {
			vals[j] = "v:" + keys[i]
		}
		return vals, errs
	}
}

func TestDoBatchMixedOutcomes(t *testing.T) {
	c := New(16)
	// Pre-populate "a" so the batch sees a memory hit.
	if _, _, err := c.Do(bg, "a", func(context.Context) (any, error) { return "v:a", nil }); err != nil {
		t.Fatal(err)
	}

	keys := []string{"a", "b", "c", "b"} // duplicate "b" must join itself
	var calls [][]int
	var mu sync.Mutex
	vals, outs, errs := c.DoBatch(bg, keys, batchCompute(keys, &calls, &mu))

	for i, key := range keys {
		if errs[i] != nil {
			t.Fatalf("lane %d err = %v", i, errs[i])
		}
		if vals[i] != "v:"+key {
			t.Fatalf("lane %d val = %v; want v:%s", i, vals[i], key)
		}
	}
	want := []Outcome{Hit, Miss, Miss, Shared}
	for i := range want {
		if outs[i] != want[i] {
			t.Fatalf("outcomes = %v; want %v", outs, want)
		}
	}
	if len(calls) != 1 {
		t.Fatalf("compute invoked %d times; want once", len(calls))
	}
	if got := fmt.Sprint(calls[0]); got != "[1 2]" {
		t.Fatalf("miss set = %s; want [1 2]", got)
	}

	// Batched results must be interchangeable with single Do results.
	v, out, err := c.Do(bg, "c", func(context.Context) (any, error) {
		t.Fatal("c should be cached")
		return nil, nil
	})
	if err != nil || out != Hit || v != "v:c" {
		t.Fatalf("post-batch Do(c) = %v, %v, %v; want v:c, hit, nil", v, out, err)
	}

	st := c.Stats()
	// Do(a): miss. Batch: 1 hit, 2 misses, 1 shared. Do(c): hit.
	if st.Hits != 2 || st.Misses != 3 || st.Shared != 1 {
		t.Fatalf("stats = %+v; want hits=2 misses=3 shared=1", st)
	}
}

func TestDoBatchPerLaneErrors(t *testing.T) {
	c := New(16)
	boom := errors.New("boom")
	keys := []string{"ok", "bad"}
	vals, outs, errs := c.DoBatch(bg, keys, func(_ context.Context, miss []int) ([]any, []error) {
		vs := make([]any, len(miss))
		es := make([]error, len(miss))
		for j, i := range miss {
			if keys[i] == "bad" {
				es[j] = boom
			} else {
				vs[j] = "v:ok"
			}
		}
		return vs, es
	})
	if errs[0] != nil || vals[0] != "v:ok" || outs[0] != Miss {
		t.Fatalf("ok lane = %v, %v, %v", vals[0], outs[0], errs[0])
	}
	if !errors.Is(errs[1], boom) {
		t.Fatalf("bad lane err = %v; want boom", errs[1])
	}
	// The failed lane must not be cached: a retry recomputes it.
	if _, ok := c.Get("bad"); ok {
		t.Fatal("failed lane was stored")
	}
	if _, ok := c.Get("ok"); !ok {
		t.Fatal("succeeded lane was not stored")
	}
}

func TestDoBatchBackingTier(t *testing.T) {
	c := New(16)
	b := newMapBacking()
	b.m["warm"] = "v:warm"
	c.SetBacking(b)

	keys := []string{"warm", "cold"}
	var calls [][]int
	var mu sync.Mutex
	vals, outs, errs := c.DoBatch(bg, keys, batchCompute(keys, &calls, &mu))
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("errs = %v", errs)
	}
	if outs[0] != StoreHit || vals[0] != "v:warm" {
		t.Fatalf("warm lane = %v, %v; want v:warm, store", vals[0], outs[0])
	}
	if outs[1] != Miss || vals[1] != "v:cold" {
		t.Fatalf("cold lane = %v, %v; want v:cold, miss", vals[1], outs[1])
	}
	if len(calls) != 1 || fmt.Sprint(calls[0]) != "[1]" {
		t.Fatalf("compute calls = %v; want one call for [1]", calls)
	}
	// The computed lane persists to backing; the store-served one must
	// not be re-appended, so exactly one Store call lands.
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stores != 1 || b.m["cold"] != "v:cold" {
		t.Fatalf("backing stores = %d, cold = %v; want 1 store of v:cold", b.stores, b.m["cold"])
	}
}

func TestDoBatchJoinsExistingFlight(t *testing.T) {
	c := New(16)
	started := make(chan struct{})
	unblock := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(bg, "shared", func(context.Context) (any, error) {
			close(started)
			<-unblock
			return "v:single", nil
		})
	}()
	<-started

	keys := []string{"shared", "own"}
	var calls [][]int
	var mu sync.Mutex
	done := make(chan struct{})
	var vals []any
	var outs []Outcome
	var errs []error
	go func() {
		defer close(done)
		vals, outs, errs = c.DoBatch(bg, keys, batchCompute(keys, &calls, &mu))
	}()
	// The batch's own lane resolves independently of the joined flight.
	time.Sleep(20 * time.Millisecond)
	close(unblock)
	<-done
	wg.Wait()

	if errs[0] != nil || outs[0] != Shared || vals[0] != "v:single" {
		t.Fatalf("joined lane = %v, %v, %v; want v:single, shared, nil", vals[0], outs[0], errs[0])
	}
	if errs[1] != nil || outs[1] != Miss || vals[1] != "v:own" {
		t.Fatalf("owned lane = %v, %v, %v; want v:own, miss, nil", vals[1], outs[1], errs[1])
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 || fmt.Sprint(calls[0]) != "[1]" {
		t.Fatalf("compute calls = %v; the joined lane must not be recomputed", calls)
	}
}

func TestDoJoinsBatchFlight(t *testing.T) {
	c := New(16)
	entered := make(chan struct{})
	unblock := make(chan struct{})
	keys := []string{"x"}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.DoBatch(bg, keys, func(_ context.Context, miss []int) ([]any, []error) {
			close(entered)
			<-unblock
			return []any{"v:x"}, []error{nil}
		})
	}()
	<-entered
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(unblock)
	}()
	v, out, err := c.Do(bg, "x", func(context.Context) (any, error) {
		t.Error("Do recomputed a key the batch owns")
		return nil, nil
	})
	<-done
	if err != nil || out != Shared || v != "v:x" {
		t.Fatalf("Do = %v, %v, %v; want v:x, shared, nil", v, out, err)
	}
}

func TestDoBatchAbandonCancelsCompute(t *testing.T) {
	c := New(16)
	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{})
	computeCtxDied := make(chan struct{})
	done := make(chan struct{})
	keys := []string{"p", "q"}
	go func() {
		defer close(done)
		c.DoBatch(ctx, keys, func(bctx context.Context, miss []int) ([]any, []error) {
			close(entered)
			select {
			case <-bctx.Done():
				close(computeCtxDied)
			case <-time.After(5 * time.Second):
			}
			errs := make([]error, len(miss))
			for j := range errs {
				errs[j] = bctx.Err()
			}
			return make([]any, len(miss)), errs
		})
	}()
	<-entered
	cancel() // the only waiter on both owned flights walks away
	select {
	case <-computeCtxDied:
	case <-time.After(2 * time.Second):
		t.Fatal("batch compute context not cancelled after every waiter detached")
	}
	<-done
	// Nothing was stored; both keys recompute cleanly afterwards.
	for _, k := range keys {
		if _, ok := c.Get(k); ok {
			t.Fatalf("abandoned lane %q was stored", k)
		}
	}
	v, out, err := c.Do(bg, "p", func(context.Context) (any, error) { return "fresh", nil })
	if err != nil || out != Miss || v != "fresh" {
		t.Fatalf("post-abandon Do = %v, %v, %v; want fresh, miss, nil", v, out, err)
	}
}

func TestDoBatchPanicBecomesLaneErrors(t *testing.T) {
	c := New(16)
	keys := []string{"k1", "k2"}
	_, _, errs := c.DoBatch(bg, keys, func(context.Context, []int) ([]any, []error) {
		panic("kaboom")
	})
	for i := range keys {
		if errs[i] == nil || !strings.Contains(errs[i].Error(), "kaboom") {
			t.Fatalf("lane %d err = %v; want panic error", i, errs[i])
		}
	}
	// Keys are not wedged: a later Do computes.
	if _, out, err := c.Do(bg, "k1", func(context.Context) (any, error) { return 1, nil }); err != nil || out != Miss {
		t.Fatalf("post-panic Do = %v, %v; want miss, nil", out, err)
	}
}

func TestDoBatchMisSizedComputeFailsLanes(t *testing.T) {
	c := New(16)
	keys := []string{"m1", "m2"}
	_, _, errs := c.DoBatch(bg, keys, func(context.Context, []int) ([]any, []error) {
		return []any{"only-one"}, []error{nil}
	})
	for i := range keys {
		if errs[i] == nil || !strings.Contains(errs[i].Error(), "batch compute returned") {
			t.Fatalf("lane %d err = %v; want shape error", i, errs[i])
		}
	}
}
