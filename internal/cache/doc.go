// Package cache provides the content-addressed simulation result
// cache behind the campaign service. Results are keyed by a canonical
// hash of the normalized request (ltp.RunSpec.Hash), bounded by an LRU
// eviction policy, and populated through single-flight computation:
// when N identical requests arrive concurrently, one computes and the
// other N-1 block and share the value, so a sweep cell is simulated at
// most once no matter how many overlapping campaigns ask for it.
//
// Population is context-aware (v2): each in-flight computation owns a
// context and refcounts its waiters. A waiter whose request context
// dies detaches with its own error while the computation continues for
// the survivors; only when the last waiter detaches is the computation
// cancelled, and a cancelled computation stores nothing — one caller's
// cancellation can never poison the shared entry.
//
// The cache is value-agnostic (it stores any); the ltp.Engine stores
// ltp.RunResult values under RunSpec hashes. Hit/miss/shared/eviction
// counters are exported (Stats) so service responses can prove whether
// a request was served from cache.
package cache
