package cache

import (
	"container/list"
	"fmt"
	"sync"
)

// Outcome reports how a Do call was served.
type Outcome uint8

const (
	// Miss: the value was not cached and not in flight; this call
	// computed it.
	Miss Outcome = iota
	// Hit: the value was served from the cache without computing.
	Hit
	// Shared: an identical computation was already in flight; this
	// call blocked on it and shares its result.
	Shared
)

var outcomeNames = map[Outcome]string{Miss: "miss", Hit: "hit", Shared: "shared"}

// String returns "miss", "hit" or "shared".
func (o Outcome) String() string { return outcomeNames[o] }

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts Do calls served from the stored set.
	Hits uint64 `json:"hits"`
	// Misses counts Do calls that computed (each is one real
	// simulation); Misses is therefore the number of distinct cells
	// ever executed through the cache.
	Misses uint64 `json:"misses"`
	// Shared counts Do calls that joined an in-flight computation.
	Shared uint64 `json:"shared"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Len is the current number of stored entries.
	Len int `json:"len"`
	// Cap is the LRU bound.
	Cap int `json:"cap"`
}

// Cache is a bounded LRU map with single-flight population. The zero
// value is not usable; use New.
type Cache struct {
	mu       sync.Mutex
	cap      int
	order    *list.List               // front = most recently used
	items    map[string]*list.Element // value: *entry
	inflight map[string]*flight
	stats    Stats
}

type entry struct {
	key string
	val any
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

// DefaultEntries is the LRU bound New applies when given capacity <= 0.
const DefaultEntries = 4096

// New returns a cache bounded to the given number of entries
// (<= 0 = DefaultEntries).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultEntries
	}
	return &Cache{
		cap:      capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Get returns the cached value for key, marking it most recently used.
// It does not join in-flight computations and does not count toward
// the hit/miss counters (use Do for the accounted path).
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Do returns the value for key, computing it with compute if needed.
// Exactly one concurrent caller per key computes; the others block and
// share the outcome. A compute error is returned to every waiter and
// nothing is stored, so a later Do retries.
func (c *Cache) Do(key string, compute func() (any, error)) (any, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, Hit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.stats.Shared++
		c.mu.Unlock()
		<-f.done
		return f.val, Shared, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.stats.Misses++
	c.mu.Unlock()

	// The flight must resolve even if compute panics (a recovered
	// panic upstream must not wedge every future waiter on this key),
	// so the bookkeeping runs in a defer and the panic propagates.
	completed := false
	defer func() {
		if !completed {
			f.err = fmt.Errorf("cache: computation for %q panicked", key)
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil {
			c.store(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = compute()
	completed = true
	return f.val, Miss, f.err
}

// store inserts or refreshes key (caller holds mu).
func (c *Cache) store(key string, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Len = c.order.Len()
	s.Cap = c.cap
	return s
}
