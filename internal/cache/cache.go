package cache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Outcome reports how a Do call was served.
type Outcome uint8

const (
	// Miss: the value was not cached and not in flight; this call
	// computed it.
	Miss Outcome = iota
	// Hit: the value was served from the cache without computing.
	Hit
	// Shared: an identical computation was already in flight; this
	// call blocked on it and shares its result.
	Shared
	// StoreHit: the value was not in memory but the backing layer had
	// it; this call loaded it without computing.
	StoreHit
)

var outcomeNames = map[Outcome]string{Miss: "miss", Hit: "hit", Shared: "shared", StoreHit: "store"}

// String returns "miss", "hit", "shared" or "store".
func (o Outcome) String() string { return outcomeNames[o] }

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts Do calls served from the stored set.
	Hits uint64 `json:"hits"`
	// Misses counts Do calls that computed (each is one real
	// simulation); Misses is therefore the number of distinct cells
	// ever executed through the cache.
	Misses uint64 `json:"misses"`
	// Shared counts Do calls that joined an in-flight computation.
	Shared uint64 `json:"shared"`
	// StoreHits counts Do calls resolved from the backing layer —
	// loaded, not computed, so they are not Misses.
	StoreHits uint64 `json:"store_hits"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Len is the current number of stored entries.
	Len int `json:"len"`
	// Cap is the LRU bound.
	Cap int `json:"cap"`
}

// Backing is an optional second-level result source behind the
// in-memory map — typically a persistent internal/store adapter.
// Lookup returns the value for a key (ok = found); Store persists a
// freshly computed value. Both are called from flight goroutines under
// the cache's single-flight guarantee — at most one concurrent call
// per key — but possibly concurrently across keys, so implementations
// must be safe for concurrent use. A Lookup miss falls through to
// compute; a Store failure is the implementation's to absorb (the
// in-memory result already serves every waiter).
type Backing interface {
	Lookup(key string) (any, bool)
	Store(key string, val any)
}

// Cache is a bounded LRU map with context-aware single-flight
// population and an optional persistent backing tier: Do consults
// memory, then the backing layer, then computes — all under one
// flight per key. The zero value is not usable; use New.
type Cache struct {
	mu       sync.Mutex
	cap      int
	order    *list.List               // front = most recently used
	items    map[string]*list.Element // value: *entry
	inflight map[string]*flight
	backing  Backing
	stats    Stats
}

type entry struct {
	key string
	val any
}

// flight is one in-progress computation. Waiters (including the caller
// that started it) are refcounted: a waiter whose own context dies
// detaches, and the last detaching waiter cancels the compute context,
// so abandoned work is reclaimed while any surviving waiter keeps the
// computation alive. A cancelled flight stores nothing — the entry can
// never be poisoned by cancellation.
type flight struct {
	done    chan struct{}
	ctx     context.Context // the compute's context
	cancel  context.CancelFunc
	waiters int // guarded by Cache.mu
	val     any
	err     error
	// abandoned records whether the compute context was already
	// cancelled when the computation resolved (written before done
	// closes, read after — the channel close orders it). It
	// distinguishes "every waiter walked away" from a real compute
	// error, because cancel() also runs post-completion to release the
	// context's resources.
	abandoned bool
	// fromBacking records that the value was loaded from the backing
	// layer rather than computed (same write-before-close ordering as
	// abandoned). The initiating waiter reports StoreHit instead of
	// Miss; joiners still report Shared.
	fromBacking bool
}

// DefaultEntries is the LRU bound New applies when given capacity <= 0.
const DefaultEntries = 4096

// New returns a cache bounded to the given number of entries
// (<= 0 = DefaultEntries).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultEntries
	}
	return &Cache{
		cap:      capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Get returns the cached value for key, marking it most recently used.
// It does not join in-flight computations and does not count toward
// the hit/miss counters (use Do for the accounted path).
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Do returns the value for key, computing it with compute if needed.
// Exactly one concurrent caller per key computes (on its own
// goroutine, under a context owned by the flight); the others block
// and share the outcome. With a Backing attached, the flight consults
// it before computing — memory, then store, then compute, all under
// the same single flight — and persists a computed success to it. A
// compute error is returned to every waiter and nothing is stored (in
// memory or backing), so a later Do retries.
//
// ctx bounds this call's wait, not the computation: when ctx dies the
// call detaches and returns ctx's error, while the computation keeps
// running for any other waiter. Only when every waiter has detached is
// the compute context cancelled — compute should observe it and return
// promptly so abandoned work leaves the worker pool. A caller that
// joins a flight in the instant it is being cancelled retries against
// a fresh flight rather than surfacing the other waiters' abandonment.
func (c *Cache) Do(ctx context.Context, key string, compute func(context.Context) (any, error)) (any, Outcome, error) {
	for {
		v, outcome, err, retry := c.doOnce(ctx, key, compute)
		if !retry {
			return v, outcome, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, outcome, cerr
		}
	}
}

// doOnce runs one hit/join/compute attempt. retry reports that the
// joined flight was cancelled by its other waiters and the caller
// should start over.
func (c *Cache) doOnce(ctx context.Context, key string, compute func(context.Context) (any, error)) (any, Outcome, error, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, Hit, nil, false
	}
	if f, ok := c.inflight[key]; ok {
		f.waiters++
		c.stats.Shared++
		c.mu.Unlock()
		return c.wait(ctx, f, Shared)
	}
	fctx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), ctx: fctx, cancel: cancel, waiters: 1}
	c.inflight[key] = f
	// Miss vs StoreHit is only known once the flight resolves (the
	// backing layer is consulted on the flight goroutine), so the
	// counter is bumped there, not here.
	c.mu.Unlock()

	go c.run(key, f, compute)
	return c.wait(ctx, f, Miss)
}

// run executes one flight's resolution: backing lookup first, compute
// on a backing miss. A panicking compute (or backing Lookup) becomes
// the flight's error (every waiter sees it; nothing is stored) instead
// of killing the process from a naked goroutine.
func (c *Cache) run(key string, f *flight, compute func(context.Context) (any, error)) {
	b := c.getBacking()
	defer func() {
		if p := recover(); p != nil {
			f.val, f.err = nil, fmt.Errorf("cache: computation for %q panicked: %v", key, p)
		}
		f.abandoned = f.ctx.Err() != nil
		c.mu.Lock()
		delete(c.inflight, key)
		if f.fromBacking {
			c.stats.StoreHits++
		} else {
			c.stats.Misses++
		}
		if f.err == nil {
			c.store(key, f.val)
		}
		c.mu.Unlock()
		// Persist a genuinely computed success before the waiters wake:
		// a Do returning means the result is durable, and a failed or
		// store-served flight must never append. The write happens off
		// the cache mutex — it is disk I/O.
		if f.err == nil && !f.fromBacking && b != nil {
			storeBacking(b, key, f.val)
		}
		close(f.done)
		f.cancel() // release the flight context's resources
	}()
	if b != nil {
		if v, ok := b.Lookup(key); ok {
			f.val, f.fromBacking = v, true
			return
		}
	}
	f.val, f.err = compute(f.ctx)
}

// storeBacking shields the resolution path from a panicking Backing
// implementation (the deferred recover above has already fired).
func storeBacking(b Backing, key string, val any) {
	defer func() { recover() }()
	b.Store(key, val)
}

// SetBacking attaches (or, with nil, detaches) the persistent tier.
// Set it before the cache sees traffic; in-flight computations sample
// the backing at flight start.
func (c *Cache) SetBacking(b Backing) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.backing = b
}

func (c *Cache) getBacking() Backing {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.backing
}

// wait blocks on the flight until it resolves or ctx dies.
func (c *Cache) wait(ctx context.Context, f *flight, outcome Outcome) (any, Outcome, error, bool) {
	select {
	case <-f.done:
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		c.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, outcome, ctx.Err(), false
	}
	if f.err != nil && f.abandoned {
		// The flight was cancelled after every then-current waiter
		// detached; this caller raced in as the cancel landed. Its own
		// context is (presumably) live, so retry with a fresh flight.
		return nil, outcome, f.err, true
	}
	if outcome == Miss && f.fromBacking {
		// The flight this caller started was served by the backing
		// layer, not computed; joiners keep reporting Shared.
		outcome = StoreHit
	}
	return f.val, outcome, f.err, false
}

// store inserts or refreshes key (caller holds mu).
func (c *Cache) store(key string, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Len = c.order.Len()
	s.Cap = c.cap
	return s
}
