package cache

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ltp/internal/store"
)

// mapBacking is an in-memory Backing for behavioural tests.
type mapBacking struct {
	mu      sync.Mutex
	m       map[string]any
	lookups int
	stores  int
}

func newMapBacking() *mapBacking { return &mapBacking{m: map[string]any{}} }

func (b *mapBacking) Lookup(key string) (any, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lookups++
	v, ok := b.m[key]
	return v, ok
}

func (b *mapBacking) Store(key string, val any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stores++
	b.m[key] = val
}

func TestBackingWarmsCache(t *testing.T) {
	b := newMapBacking()
	b.m["k"] = "persisted"
	c := New(4)
	c.SetBacking(b)

	nocompute := func(context.Context) (any, error) {
		t.Error("compute ran for a key the backing holds")
		return nil, nil
	}
	v, outcome, err := c.Do(bg, "k", nocompute)
	if err != nil || v != "persisted" || outcome != StoreHit {
		t.Fatalf("Do = %v, %v, %v; want persisted, StoreHit", v, outcome, err)
	}
	if outcome.String() != "store" {
		t.Fatalf("StoreHit renders %q", outcome.String())
	}
	// Second call: the store hit warmed the in-memory LRU, so the
	// backing is not consulted again.
	v, outcome, err = c.Do(bg, "k", nocompute)
	if err != nil || v != "persisted" || outcome != Hit {
		t.Fatalf("second Do = %v, %v, %v; want persisted, Hit", v, outcome, err)
	}
	if b.lookups != 1 {
		t.Fatalf("backing consulted %d times, want 1", b.lookups)
	}
	st := c.Stats()
	if st.StoreHits != 1 || st.Misses != 0 || st.Hits != 1 {
		t.Fatalf("stats %+v, want one store hit, one memory hit, zero misses", st)
	}
}

func TestBackingMissComputesAndPersists(t *testing.T) {
	b := newMapBacking()
	c := New(4)
	c.SetBacking(b)

	v, outcome, err := c.Do(bg, "k", func(context.Context) (any, error) { return 42, nil })
	if err != nil || v != 42 || outcome != Miss {
		t.Fatalf("Do = %v, %v, %v; want 42, Miss", v, outcome, err)
	}
	// The computed value must be durable by the time Do returns.
	if got, ok := b.m["k"]; !ok || got != 42 {
		t.Fatalf("backing holds %v, %v; want 42 persisted before Do returned", got, ok)
	}
	if st := c.Stats(); st.Misses != 1 || st.StoreHits != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBackingSharedJoinersReportShared(t *testing.T) {
	b := newMapBacking()
	gate := make(chan struct{})
	b.m["k"] = "persisted"
	c := New(4)
	slow := &gatedBacking{inner: b, gate: gate}
	c.SetBacking(slow)

	const joiners = 4
	outcomes := make([]Outcome, joiners)
	var entered, wg sync.WaitGroup
	entered.Add(joiners)
	go func() {
		// Release the gated lookup only after every caller is inside Do
		// (the brief sleep lets the last ones join the flight; stragglers
		// degrade to Hit, which the assertion below tolerates).
		entered.Wait()
		time.Sleep(20 * time.Millisecond)
		close(gate)
	}()
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered.Done()
			v, o, err := c.Do(bg, "k", func(context.Context) (any, error) { return nil, errors.New("no") })
			if err != nil || v != "persisted" {
				t.Errorf("joiner %d: %v, %v", i, v, err)
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()
	var stores int
	for _, o := range outcomes {
		switch o {
		case StoreHit:
			stores++
		case Shared, Hit: // joiners share the flight; a straggler hits memory
		default:
			t.Fatalf("unexpected outcome %v among %v", o, outcomes)
		}
	}
	if stores != 1 {
		t.Fatalf("outcomes %v: want exactly one StoreHit (the flight initiator)", outcomes)
	}
}

// gatedBacking blocks the first Lookup until gate closes, so a test
// can pile joiners onto one in-flight store lookup.
type gatedBacking struct {
	inner *mapBacking
	gate  chan struct{}
	once  sync.Once
}

func (g *gatedBacking) Lookup(key string) (any, bool) {
	g.once.Do(func() { <-g.gate })
	return g.inner.Lookup(key)
}

func (g *gatedBacking) Store(key string, val any) { g.inner.Store(key, val) }

// storeAdapter bridges a real internal/store to Backing the same way
// the engine does: JSON payloads keyed by content address.
type storeAdapter struct{ st *store.Store }

func (a storeAdapter) Lookup(key string) (any, bool) {
	payload, ok := a.st.Get(key)
	if !ok {
		return nil, false
	}
	var v string
	if err := json.Unmarshal(payload, &v); err != nil {
		return nil, false
	}
	return v, true
}

func (a storeAdapter) Store(key string, val any) {
	s, ok := val.(string)
	if !ok {
		return
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return
	}
	_ = a.st.Put(key, payload)
}

// TestErrorRetryStoresExactlyOneRecord is the ISSUE's error-retry
// audit against a real on-disk store: a failed computation must leave
// no record, the successful retry exactly one, and a third call must
// not re-compute.
func TestErrorRetryStoresExactlyOneRecord(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "retry.store"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c := New(4)
	c.SetBacking(storeAdapter{st})

	boom := errors.New("simulation failed")
	if _, outcome, err := c.Do(bg, "k", func(context.Context) (any, error) { return nil, boom }); !errors.Is(err, boom) || outcome != Miss {
		t.Fatalf("failed Do = %v, %v", outcome, err)
	}
	if n := st.Len(); n != 0 {
		t.Fatalf("failed computation appended %d records, want 0", n)
	}

	v, outcome, err := c.Do(bg, "k", func(context.Context) (any, error) { return "ok", nil })
	if err != nil || v != "ok" || outcome != Miss {
		t.Fatalf("retry Do = %v, %v, %v; want ok, Miss (errors are not cached)", v, outcome, err)
	}
	if n := st.Len(); n != 1 {
		t.Fatalf("store holds %d records after the successful retry, want exactly 1", n)
	}

	v, outcome, err = c.Do(bg, "k", func(context.Context) (any, error) {
		t.Error("third call re-computed")
		return nil, nil
	})
	if err != nil || v != "ok" || outcome != Hit {
		t.Fatalf("third Do = %v, %v, %v; want memory hit", v, outcome, err)
	}
	if n := st.Len(); n != 1 {
		t.Fatalf("store grew to %d records, want 1", n)
	}
}

// TestBackingEvictionRefetch: an entry evicted from the LRU is re-
// served from the backing layer (StoreHit), not re-computed.
func TestBackingEvictionRefetch(t *testing.T) {
	b := newMapBacking()
	c := New(1) // single-entry LRU forces eviction
	c.SetBacking(b)

	compute := func(v string) func(context.Context) (any, error) {
		return func(context.Context) (any, error) { return v, nil }
	}
	if _, o, _ := c.Do(bg, "a", compute("va")); o != Miss {
		t.Fatalf("first a: %v", o)
	}
	if _, o, _ := c.Do(bg, "b", compute("vb")); o != Miss { // evicts a
		t.Fatalf("first b: %v", o)
	}
	v, o, err := c.Do(bg, "a", func(context.Context) (any, error) {
		t.Error("evicted entry re-computed despite the backing copy")
		return nil, nil
	})
	if err != nil || v != "va" || o != StoreHit {
		t.Fatalf("refetch = %v, %v, %v; want va, StoreHit", v, o, err)
	}
	// Two evictions: b evicted a, and the refetched a evicted b.
	if st := c.Stats(); st.Misses != 2 || st.StoreHits != 1 || st.Evictions != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestBackingPanicIsContained: a panicking Lookup becomes the waiter's
// error; a panicking Store is swallowed (the in-memory result already
// serves the waiters).
func TestBackingPanicIsContained(t *testing.T) {
	c := New(4)
	c.SetBacking(panicBacking{})
	if _, _, err := c.Do(bg, "k", func(context.Context) (any, error) { return "v", nil }); err == nil {
		t.Fatal("panicking Lookup did not surface as an error")
	}
	// Detach the panicking lookup but keep the panicking Store: compute
	// succeeds and the Store panic must not kill the flight.
	c.SetBacking(storePanicBacking{})
	v, _, err := c.Do(bg, "k2", func(context.Context) (any, error) { return "v2", nil })
	if err != nil || v != "v2" {
		t.Fatalf("Do with panicking Store = %v, %v", v, err)
	}
}

type panicBacking struct{}

func (panicBacking) Lookup(string) (any, bool) { panic("lookup boom") }
func (panicBacking) Store(string, any)         {}

type storePanicBacking struct{}

func (storePanicBacking) Lookup(string) (any, bool) { return nil, false }
func (storePanicBacking) Store(string, any)         { panic("store boom") }
