package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestHitMissEviction(t *testing.T) {
	c := New(2)
	mk := func(k string) func() (any, error) {
		return func() (any, error) { return "v:" + k, nil }
	}

	v, out, err := c.Do("a", mk("a"))
	if err != nil || out != Miss || v != "v:a" {
		t.Fatalf("first Do = %v, %v, %v; want v:a, miss, nil", v, out, err)
	}
	v, out, _ = c.Do("a", mk("a"))
	if out != Hit || v != "v:a" {
		t.Fatalf("second Do = %v, %v; want v:a, hit", v, out)
	}

	c.Do("b", mk("b"))
	c.Do("c", mk("c")) // evicts "a" (LRU)
	if _, ok := c.Get("a"); ok {
		t.Fatalf("a survived eviction from a 2-entry cache")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatalf("b evicted; want a evicted (LRU order)")
	}

	// Touching "b" must protect it from the next eviction.
	c.Do("b", mk("b"))
	c.Do("d", mk("d")) // evicts "c"
	if _, ok := c.Get("c"); ok {
		t.Fatalf("c survived; recently used b should have been kept instead")
	}

	st := c.Stats()
	if st.Hits != 2 || st.Misses != 4 || st.Evictions != 2 || st.Len != 2 || st.Cap != 2 {
		t.Fatalf("stats = %+v; want hits=2 misses=4 evictions=2 len=2 cap=2", st)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	calls := 0
	fail := func() (any, error) { calls++; return nil, boom }
	if _, _, err := c.Do("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatalf("failed compute was stored")
	}
	// A later Do retries (errors are not negative-cached).
	if _, out, err := c.Do("k", fail); !errors.Is(err, boom) || out != Miss {
		t.Fatalf("retry = %v, %v; want miss, boom", out, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times; want 2", calls)
	}
}

// TestPanicDoesNotWedgeKey checks a panicking computation resolves the
// in-flight entry: the panic propagates, waiters get an error, and a
// later Do retries instead of blocking forever.
func TestPanicDoesNotWedgeKey(t *testing.T) {
	c := New(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate out of Do")
			}
		}()
		c.Do("k", func() (any, error) { panic("boom") })
	}()
	if _, ok := c.Get("k"); ok {
		t.Fatal("panicked compute was stored")
	}
	// The key must not be wedged: a retry computes fresh.
	v, out, err := c.Do("k", func() (any, error) { return 7, nil })
	if err != nil || out != Miss || v != 7 {
		t.Fatalf("retry after panic = %v, %v, %v; want 7, miss, nil", v, out, err)
	}
}

// TestSingleFlight holds the service's core guarantee: N concurrent
// identical requests execute the computation exactly once. Run under
// -race this also exercises the publication of the shared value.
func TestSingleFlight(t *testing.T) {
	c := New(8)
	const n = 32
	var executions atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, n)
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, out, err := c.Do("cell", func() (any, error) {
				executions.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], outcomes[i] = v, out
		}(i)
	}
	close(start)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("computation executed %d times for %d concurrent callers; want 1", got, n)
	}
	var misses int
	for i := 0; i < n; i++ {
		if results[i] != 42 {
			t.Fatalf("caller %d got %v; want 42", i, results[i])
		}
		if outcomes[i] == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d callers report miss; want exactly 1", misses)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Shared != n-1 {
		t.Fatalf("stats = %+v; want 1 miss and %d hit+shared", st, n-1)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 32; j++ {
				k := fmt.Sprintf("k%d", j%8)
				v, _, err := c.Do(k, func() (any, error) { return "v" + k, nil })
				if err != nil || v != "v"+k {
					t.Errorf("Do(%s) = %v, %v", k, v, err)
				}
			}
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Misses != 8 {
		t.Fatalf("misses = %d; want 8 (one per distinct key)", st.Misses)
	}
}
