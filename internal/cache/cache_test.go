package cache

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// bg shortens the no-cancellation context used by most tests.
var bg = context.Background()

func TestHitMissEviction(t *testing.T) {
	c := New(2)
	mk := func(k string) func(context.Context) (any, error) {
		return func(context.Context) (any, error) { return "v:" + k, nil }
	}

	v, out, err := c.Do(bg, "a", mk("a"))
	if err != nil || out != Miss || v != "v:a" {
		t.Fatalf("first Do = %v, %v, %v; want v:a, miss, nil", v, out, err)
	}
	v, out, _ = c.Do(bg, "a", mk("a"))
	if out != Hit || v != "v:a" {
		t.Fatalf("second Do = %v, %v; want v:a, hit", v, out)
	}

	c.Do(bg, "b", mk("b"))
	c.Do(bg, "c", mk("c")) // evicts "a" (LRU)
	if _, ok := c.Get("a"); ok {
		t.Fatalf("a survived eviction from a 2-entry cache")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatalf("b evicted; want a evicted (LRU order)")
	}

	// Touching "b" must protect it from the next eviction.
	c.Do(bg, "b", mk("b"))
	c.Do(bg, "d", mk("d")) // evicts "c"
	if _, ok := c.Get("c"); ok {
		t.Fatalf("c survived; recently used b should have been kept instead")
	}

	st := c.Stats()
	if st.Hits != 2 || st.Misses != 4 || st.Evictions != 2 || st.Len != 2 || st.Cap != 2 {
		t.Fatalf("stats = %+v; want hits=2 misses=4 evictions=2 len=2 cap=2", st)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	calls := 0
	fail := func(context.Context) (any, error) { calls++; return nil, boom }
	if _, _, err := c.Do(bg, "k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatalf("failed compute was stored")
	}
	// A later Do retries (errors are not negative-cached).
	if _, out, err := c.Do(bg, "k", fail); !errors.Is(err, boom) || out != Miss {
		t.Fatalf("retry = %v, %v; want miss, boom", out, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times; want 2", calls)
	}
}

// TestPanicDoesNotWedgeKey checks a panicking computation resolves the
// in-flight entry: every waiter gets an error (the panic is contained
// on the flight goroutine, not re-raised on a random waiter), and a
// later Do retries instead of blocking forever.
func TestPanicDoesNotWedgeKey(t *testing.T) {
	c := New(4)
	_, out, err := c.Do(bg, "k", func(context.Context) (any, error) { panic("boom") })
	if out != Miss || err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("Do over a panicking compute = %v, %v; want miss + panic error", out, err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("panicked compute was stored")
	}
	// The key must not be wedged: a retry computes fresh.
	v, out, err := c.Do(bg, "k", func(context.Context) (any, error) { return 7, nil })
	if err != nil || out != Miss || v != 7 {
		t.Fatalf("retry after panic = %v, %v, %v; want 7, miss, nil", v, out, err)
	}
}

// TestSingleFlight holds the service's core guarantee: N concurrent
// identical requests execute the computation exactly once. Run under
// -race this also exercises the publication of the shared value.
func TestSingleFlight(t *testing.T) {
	c := New(8)
	const n = 32
	var executions atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, n)
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, out, err := c.Do(bg, "cell", func(context.Context) (any, error) {
				executions.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], outcomes[i] = v, out
		}(i)
	}
	close(start)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("computation executed %d times for %d concurrent callers; want 1", got, n)
	}
	var misses int
	for i := 0; i < n; i++ {
		if results[i] != 42 {
			t.Fatalf("caller %d got %v; want 42", i, results[i])
		}
		if outcomes[i] == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d callers report miss; want exactly 1", misses)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Shared != n-1 {
		t.Fatalf("stats = %+v; want 1 miss and %d hit+shared", st, n-1)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 32; j++ {
				k := fmt.Sprintf("k%d", j%8)
				v, _, err := c.Do(bg, k, func(context.Context) (any, error) { return "v" + k, nil })
				if err != nil || v != "v"+k {
					t.Errorf("Do(%s) = %v, %v", k, v, err)
				}
			}
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Misses != 8 {
		t.Fatalf("misses = %d; want 8 (one per distinct key)", st.Misses)
	}
}

// TestWaiterCancelDoesNotPoison holds the v2 single-flight guarantee:
// cancelling one of N waiters returns that waiter's context error
// promptly, the computation keeps running for the survivors, the
// result is stored, and a later Do hits.
func TestWaiterCancelDoesNotPoison(t *testing.T) {
	c := New(8)
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-release:
			return 99, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	type res struct {
		v   any
		out Outcome
		err error
	}
	leaderCh := make(chan res, 1)
	go func() {
		v, out, err := c.Do(bg, "k", compute)
		leaderCh <- res{v, out, err}
	}()
	<-started

	// Two more waiters join; one of them carries a cancellable ctx.
	ctx, cancel := context.WithCancel(bg)
	canceledCh := make(chan res, 1)
	go func() {
		v, out, err := c.Do(ctx, "k", compute)
		canceledCh <- res{v, out, err}
	}()
	survivorCh := make(chan res, 1)
	go func() {
		v, out, err := c.Do(bg, "k", compute)
		survivorCh <- res{v, out, err}
	}()

	// Give the joiners a beat to attach, then cancel one.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case r := <-canceledCh:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("cancelled waiter err = %v; want context.Canceled", r.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return promptly")
	}

	// The computation must still resolve for the survivors.
	close(release)
	for _, ch := range []chan res{leaderCh, survivorCh} {
		select {
		case r := <-ch:
			if r.err != nil || r.v != 99 {
				t.Fatalf("survivor = %+v; want 99, nil", r)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("survivor never resolved")
		}
	}

	// The entry was stored — no poisoning.
	if v, out, err := c.Do(bg, "k", compute); err != nil || out != Hit || v != 99 {
		t.Fatalf("post-cancel Do = %v, %v, %v; want 99, hit, nil", v, out, err)
	}
}

// TestAllWaitersCancelAbortsCompute checks the reclamation side: when
// every waiter detaches, the compute context is cancelled, nothing is
// stored, and a later Do recomputes fresh.
func TestAllWaitersCancelAbortsCompute(t *testing.T) {
	c := New(8)
	started := make(chan struct{})
	aborted := make(chan struct{})
	calls := atomic.Int64{}
	compute := func(ctx context.Context) (any, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-ctx.Done() // simulate a cancellable simulation
			close(aborted)
			return nil, ctx.Err()
		}
		return "fresh", nil
	}

	ctx, cancel := context.WithCancel(bg)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", compute)
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("sole waiter err = %v; want context.Canceled", err)
	}
	select {
	case <-aborted:
	case <-time.After(2 * time.Second):
		t.Fatal("compute context was never cancelled after the last waiter left")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("cancelled compute was stored")
	}
	// No stale cancelled state: the next Do recomputes.
	v, out, err := c.Do(bg, "k", compute)
	if err != nil || out != Miss || v != "fresh" {
		t.Fatalf("Do after abandonment = %v, %v, %v; want fresh, miss, nil", v, out, err)
	}
}
