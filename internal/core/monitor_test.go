package core

import (
	"testing"

	"ltp/internal/workload"
)

// TestMonitorTransitions runs the phase-alternating kernel and checks the
// DRAM-timer monitor turns LTP off in compute phases and on in memory
// phases: the enabled fraction must sit strictly between the always-off
// and always-on extremes, and parking must happen only in memory phases.
func TestMonitorTransitions(t *testing.T) {
	wl, err := workload.ByName("mixphase")
	if err != nil {
		t.Fatal(err)
	}
	p := wl.Build(0.05)

	pcfg := testPipeConfig()
	pipe, unit := newLTPPipeline(pcfg, DefaultConfig(), p)
	run(t, pipe, 120_000)

	frac := unit.Monitor().EnabledFraction()
	if frac < 0.02 || frac > 0.98 {
		t.Errorf("enabled fraction %.2f: expected mid-range for an alternating workload", frac)
	}
	if unit.ParkedTotal == 0 {
		t.Error("memory phases parked nothing")
	}
	// The compute phase dominates the instruction count (2000×6 vs
	// 500×11 per outer round); if LTP were always on, parked/renamed
	// would approach the NU fraction of the whole mix. Require that the
	// monitor kept the majority of compute instructions out.
	parkRate := float64(unit.ParkedTotal) / float64(pipe.Committed())
	if parkRate > 0.5 {
		t.Errorf("park rate %.2f suggests the monitor never gated off", parkRate)
	}
}
