package core

import (
	"testing"

	"ltp/internal/isa"
	"ltp/internal/pipeline"
	"ltp/internal/prog"
)

// newLTPPipeline wires a pipeline with an LTP for tests.
func newLTPPipeline(pcfg pipeline.Config, lcfg Config, p *prog.Program) (*pipeline.Pipeline, *LTP) {
	unit := New(lcfg, pcfg.Hier.DRAMLatency, pcfg.Hier.TagEarlyLead)
	pipe := pipeline.New(pcfg, prog.NewEmulator(p), unit)
	for i := range p.Insts {
		pipe.Hier.WarmFetch(prog.PCOf(i))
	}
	return pipe, unit
}

func testPipeConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.Hier.PrefetchDegree = 0
	cfg.IQSize = 32
	cfg.IntRegs = 96
	cfg.FPRegs = 96
	cfg.WatchdogCycles = 100_000
	return cfg
}

// run drives the pipeline with periodic invariant checks.
func run(t *testing.T, pipe *pipeline.Pipeline, insts uint64) pipeline.Result {
	t.Helper()
	for pipe.Committed() < insts {
		pipe.Cycle()
		if pipe.Now()%128 == 0 {
			if err := pipe.CheckInvariants(); err != nil {
				t.Fatalf("invariant violated at cycle %d: %v", pipe.Now(), err)
			}
		}
		if pipe.Now() > 3_000_000 {
			t.Fatalf("runaway: %d committed", pipe.Committed())
		}
	}
	return pipe.Snapshot()
}

func TestUITLearnsFig2Chain(t *testing.T) {
	pipe, unit := newLTPPipeline(testPipeConfig(), DefaultConfig(), fig2Program())
	run(t, pipe, 40_000)

	// Locate the tagged PCs.
	p := fig2Program()
	pcOf := map[string]uint64{}
	for i, in := range p.Insts {
		if in.Label != "" {
			pcOf[in.Label] = prog.PCOf(i)
		}
	}
	for _, tag := range []string{"A", "B", "C", "D", "E"} {
		if !unit.UITTable().Urgent(pcOf[tag]) {
			t.Errorf("UIT missing urgent instruction %s", tag)
		}
	}
	for _, tag := range []string{"F", "G", "H", "I", "J", "K"} {
		if unit.UITTable().Urgent(pcOf[tag]) {
			t.Errorf("UIT wrongly marks %s urgent", tag)
		}
	}
}

func TestLTPParksAndHelps(t *testing.T) {
	// With the small core (IQ 32 / RF 96), adding LTP must recover
	// performance on the miss-heavy Fig. 2 loop.
	base, _ := newLTPPipeline(testPipeConfig(), DefaultConfig(), fig2Program())
	// Replace parker with the null baseline for the control run.
	ctl := pipeline.New(testPipeConfig(), prog.NewEmulator(fig2Program()), pipeline.NullParker{})
	for i := range fig2Program().Insts {
		ctl.Hier.WarmFetch(prog.PCOf(i))
	}

	resLTP := run(t, base, 60_000)
	for ctl.Committed() < 60_000 {
		ctl.Cycle()
	}
	resCtl := ctl.Snapshot()

	if resLTP.Cycles >= resCtl.Cycles {
		t.Errorf("LTP did not help: %d vs %d cycles", resLTP.Cycles, resCtl.Cycles)
	}
	if resLTP.MLP <= resCtl.MLP {
		t.Errorf("LTP did not raise MLP: %.2f vs %.2f", resLTP.MLP, resCtl.MLP)
	}
}

func TestLTPCapacityIsRespected(t *testing.T) {
	lcfg := DefaultConfig()
	lcfg.Entries = 16
	lcfg.Ports = 2
	pipe, unit := newLTPPipeline(testPipeConfig(), lcfg, fig2Program())
	maxSeen := 0
	for pipe.Committed() < 20_000 {
		pipe.Cycle()
		if n := unit.ParkedCount(); n > maxSeen {
			maxSeen = n
		}
	}
	if maxSeen > 16 {
		t.Errorf("LTP held %d > 16 entries", maxSeen)
	}
	if maxSeen == 0 {
		t.Error("nothing was ever parked")
	}
}

func TestMonitorDisablesLTPOnComputeBound(t *testing.T) {
	// Pure ALU loop: no cache misses, LTP must stay off.
	b := prog.NewBuilder("alu")
	b.SetReg(isa.R(1), 1<<30)
	b.Label("loop").
		Addi(isa.R(2), isa.R(2), 1).
		Addi(isa.R(3), isa.R(3), 2).
		Addi(isa.R(1), isa.R(1), -1).
		Br(isa.CondNE, isa.R(1), "loop")
	pipe, unit := newLTPPipeline(testPipeConfig(), DefaultConfig(), b.Build())
	run(t, pipe, 20_000)
	if unit.ParkedTotal != 0 {
		t.Errorf("%d instructions parked in a compute-bound loop", unit.ParkedTotal)
	}
	if unit.Monitor().EnabledFraction() > 0.01 {
		t.Errorf("monitor enabled %.0f%% of a compute-bound run", unit.Monitor().EnabledFraction()*100)
	}
}

func TestNRTicketFlow(t *testing.T) {
	// NR+NU on the Fig. 2 loop: tickets must be allocated, inherited, and
	// cleared; non-ready instructions must park.
	lcfg := DefaultConfig()
	lcfg.Mode = ModeNRNU
	lcfg.Entries = 0
	lcfg.Ports = 0
	pipe, unit := newLTPPipeline(testPipeConfig(), lcfg, fig2Program())
	run(t, pipe, 40_000)
	if unit.ClassNonReady == 0 {
		t.Error("no instruction classified Non-Ready")
	}
	if unit.ParkedTotal == 0 {
		t.Error("nothing parked")
	}
	// All tickets must be reclaimed over time: no permanent leak.
	free := 0
	for _, owner := range unit.ticketOwner {
		if owner == ^uint64(0) {
			free++
		}
	}
	if free < len(unit.ticketOwner)/2 {
		t.Errorf("ticket leak: only %d/%d free after drain", free, len(unit.ticketOwner))
	}
}

func TestFewTicketsStillCorrect(t *testing.T) {
	lcfg := DefaultConfig()
	lcfg.Mode = ModeNRNU
	lcfg.Tickets = 4
	pipe, unit := newLTPPipeline(testPipeConfig(), lcfg, fig2Program())
	res := run(t, pipe, 30_000)
	if res.Committed < 30_000 {
		t.Fatalf("committed %d", res.Committed)
	}
	if unit.TicketsExhausted == 0 {
		t.Error("4 tickets never exhausted on a miss-heavy loop")
	}
}

func TestLTPWithMemoryViolationSquash(t *testing.T) {
	// Mix parked instructions with a violation-prone store/load pair and
	// verify the machine stays consistent through squashes.
	b := prog.NewBuilder("t")
	b.SetReg(isa.R(1), 0x6000)
	b.SetReg(isa.R(3), 1)
	b.SetReg(isa.R(10), 1<<30)
	b.SetReg(isa.R(12), 0x2_0000_0000)
	b.SetReg(isa.R(13), 6364136223846793005)
	b.Label("loop").
		Mul(isa.R(14), isa.R(14), isa.R(13)).
		Addi(isa.R(14), isa.R(14), 99991).
		Andi(isa.R(15), isa.R(14), 0x3FFFF8).
		Add(isa.R(16), isa.R(12), isa.R(15)).
		Ld(isa.R(17), isa.R(16), 0). // random miss: enables parking
		Div(isa.R(4), isa.R(10), isa.R(3)).
		Add(isa.R(5), isa.R(1), isa.R(4)).
		Andi(isa.R(5), isa.R(5), 0x7FF8).
		St(isa.R(5), 0, isa.R(10)).
		Ld(isa.R(7), isa.R(5), 0). // may violate against the store
		Add(isa.R(8), isa.R(8), isa.R(7)).
		Addi(isa.R(10), isa.R(10), -1).
		Br(isa.CondNE, isa.R(10), "loop")
	pipe, unit := newLTPPipeline(testPipeConfig(), DefaultConfig(), b.Build())
	res := run(t, pipe, 40_000)
	if res.Committed < 40_000 {
		t.Fatalf("committed %d", res.Committed)
	}
	if unit.ParkedTotal == 0 {
		t.Error("nothing parked in a miss-heavy loop")
	}
	if err := pipe.CheckInvariants(); err != nil {
		t.Fatalf("invariants after squash-heavy run: %v", err)
	}
}

func TestLTPDeterminism(t *testing.T) {
	mk := func() pipeline.Result {
		pipe, _ := newLTPPipeline(testPipeConfig(), DefaultConfig(), fig2Program())
		var res pipeline.Result
		for pipe.Committed() < 30_000 {
			pipe.Cycle()
		}
		res = pipe.Snapshot()
		return res
	}
	r1, r2 := mk(), mk()
	if r1.Cycles != r2.Cycles || r1.MLP != r2.MLP {
		t.Errorf("nondeterministic LTP run: %v vs %v", r1, r2)
	}
}

func TestOracleModeRuns(t *testing.T) {
	p := fig2Program()
	pcfg := testPipeConfig()
	lcfg := DefaultConfig()
	lcfg.Mode = ModeNRNU
	lcfg.Entries = 0
	lcfg.Ports = 0
	lcfg.Oracle = BuildOracle(p, 45_000, pcfg.Hier, pcfg.ROBSize)
	pipe, unit := newLTPPipeline(pcfg, lcfg, p)
	res := run(t, pipe, 30_000)
	if res.Committed < 30_000 {
		t.Fatalf("committed %d", res.Committed)
	}
	if unit.ParkedTotal == 0 {
		t.Error("oracle mode parked nothing")
	}
	// Oracle mode must not touch the UIT.
	if unit.UITTable().Len() != 0 {
		t.Error("oracle mode inserted into the UIT")
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	// In NU mode the LTP is a strict queue: observe that parked seqs are
	// monotonically increasing and wakes come from the head.
	lcfg := DefaultConfig()
	pipe, unit := newLTPPipeline(testPipeConfig(), lcfg, fig2Program())
	for pipe.Committed() < 20_000 {
		pipe.Cycle()
		for i := 1; i < len(unit.queue); i++ {
			if unit.queue[i-1].Seq() >= unit.queue[i].Seq() {
				t.Fatalf("LTP queue out of order at cycle %d", pipe.Now())
			}
		}
	}
}
