package core

import (
	"testing"

	"ltp/internal/isa"
	"ltp/internal/mem"
	"ltp/internal/prog"
)

func TestUITInsertLookup(t *testing.T) {
	u := NewUIT(256, 4)
	if u.Urgent(0x1000) {
		t.Error("empty UIT reported urgent")
	}
	u.Insert(0x1000)
	if !u.Urgent(0x1000) {
		t.Error("inserted PC not urgent")
	}
	u.Insert(0x1000) // duplicate: no growth
	if u.Len() != 1 {
		t.Errorf("duplicate insert grew the table to %d", u.Len())
	}
}

func TestUITEviction(t *testing.T) {
	u := NewUIT(8, 4) // 2 sets x 4 ways
	// Fill one set (PCs mapping to set 0: pc>>2 even).
	pcs := []uint64{0x100, 0x500, 0x900, 0xD00, 0x1100}
	for _, pc := range pcs {
		u.Insert(pc)
	}
	if u.Evicts == 0 {
		t.Error("overfilled set did not evict")
	}
	if !u.Urgent(pcs[len(pcs)-1]) {
		t.Error("most recent insert evicted")
	}
}

func TestUITUnlimited(t *testing.T) {
	u := NewUIT(0, 0)
	for pc := uint64(4); pc < 4096; pc += 4 {
		u.Insert(pc)
	}
	if u.Len() != 1023 {
		t.Errorf("unlimited UIT length %d", u.Len())
	}
	if u.Evicts != 0 {
		t.Error("unlimited UIT evicted")
	}
}

func TestLLPredictorLearnsAlwaysMiss(t *testing.T) {
	p := DefaultLLPredictor()
	pc := uint64(0x2000)
	for i := 0; i < 32; i++ {
		p.Predict(pc)
		p.Train(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("always-miss load not predicted LL")
	}
}

func TestLLPredictorLearnsAlwaysHit(t *testing.T) {
	p := DefaultLLPredictor()
	pc := uint64(0x3000)
	for i := 0; i < 32; i++ {
		p.Train(pc, false)
	}
	if p.Predict(pc) {
		t.Error("always-hit load predicted LL")
	}
}

func TestLLPredictorPeriodicPattern(t *testing.T) {
	// hit,hit,hit,miss repeating: the 4-bit history disambiguates.
	p := DefaultLLPredictor()
	pc := uint64(0x4000)
	for i := 0; i < 400; i++ {
		p.Train(pc, i%4 == 3)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if p.Predict(pc) == (i%4 == 3) {
			correct++
		}
		p.Train(pc, i%4 == 3)
	}
	if correct < 85 {
		t.Errorf("periodic pattern: %d/100 correct", correct)
	}
}

func TestDRAMMonitor(t *testing.T) {
	m := NewDRAMMonitor(200, false)
	if m.Enabled(0) {
		t.Error("monitor enabled before any miss")
	}
	m.NoteDemandMiss(100)
	if !m.Enabled(100) || !m.Enabled(299) {
		t.Error("monitor not enabled within the timer window")
	}
	if m.Enabled(300) {
		t.Error("monitor enabled after timer expiry")
	}
	// Restart extends.
	m.NoteDemandMiss(250)
	if !m.Enabled(350) {
		t.Error("timer restart broken")
	}
	for c := uint64(0); c < 10; c++ {
		m.Tick(c)
	}
	if m.EnabledFraction() == 0 {
		t.Error("enabled fraction not tracked")
	}
}

func TestDRAMMonitorForceOn(t *testing.T) {
	m := NewDRAMMonitor(200, true)
	if !m.Enabled(1_000_000) {
		t.Error("forced-on monitor reported disabled")
	}
}

func TestModeHelpers(t *testing.T) {
	if !ModeNU.ParksNU() || ModeNU.ParksNR() {
		t.Error("ModeNU flags wrong")
	}
	if ModeNR.ParksNU() || !ModeNR.ParksNR() {
		t.Error("ModeNR flags wrong")
	}
	if !ModeNRNU.ParksNU() || !ModeNRNU.ParksNR() {
		t.Error("ModeNRNU flags wrong")
	}
	if ModeNRNU.String() != "NR+NU" {
		t.Errorf("mode name %q", ModeNRNU)
	}
}

// fig2Program builds the paper's Fig. 2 loop with a guaranteed-miss B
// array access (D) so classification is observable quickly.
func fig2Program() *prog.Program {
	const wordsA = 1 << 12
	const wordsB = 1 << 16 // 512 kB: misses the small test caches often
	b := prog.NewBuilder("fig2")
	rJ, rI := isa.R(1), isa.R(2)
	rBaseA, rBaseB, rBaseC := isa.R(3), isa.R(4), isa.R(5)
	rT1, rAddrA, rAddrB, rAddrC := isa.R(6), isa.R(7), isa.R(8), isa.R(9)
	rD, rD2, rT2 := isa.R(10), isa.R(11), isa.R(12)
	b.SetReg(rBaseA, 0x1_0000_0000)
	b.SetReg(rBaseB, 0x2_0000_0000)
	b.SetReg(rBaseC, 0x3_0000_0000)
	b.InitWith(func(m *prog.Memory) {
		// Pseudo-random indices into B.
		x := uint64(12345)
		for k := 0; k < wordsA; k++ {
			x = x*6364136223846793005 + 1442695040888963407
			m.Write(0x1_0000_0000+uint64(k)*8, int64((x%(wordsB))<<3))
		}
	})
	b.Label("outer").
		Movi(rJ, int64(wordsA-1)<<3).
		Movi(rI, 0)
	b.Label("loop").
		Add(rAddrA, rBaseA, rJ).Tag("A").
		Ld(rT1, rAddrA, 0).Tag("B").
		Add(rAddrB, rBaseB, rT1).Tag("C").
		Ld(rD, rAddrB, 0).Tag("D").
		Addi(rJ, rJ, -8).Tag("E").
		Addi(rD2, rD, 5).Tag("F").
		Add(rAddrC, rBaseC, rI).Tag("G").
		St(rAddrC, 0, rD2).Tag("H").
		Addi(rI, rI, 8).Tag("I").
		Addi(rT2, rJ, 0).Tag("J").
		Br(isa.CondGE, rT2, "loop").Tag("K").
		Jmp("outer")
	return b.Build()
}

func TestOracleClassifiesFig2(t *testing.T) {
	p := fig2Program()
	hcfg := mem.DefaultConfig()
	hcfg.PrefetchDegree = 0
	o := BuildOracle(p, 20_000, hcfg, 256)
	if o.Len() < 20_000 {
		t.Fatalf("oracle classified %d", o.Len())
	}

	// Tally flags per static tag over the steady-state region.
	urgent := map[string]int{}
	nonReady := map[string]int{}
	ll := map[string]int{}
	count := map[string]int{}
	em := prog.NewEmulator(p)
	var u isa.Uop
	for i := 0; i < 20_000; i++ {
		if !em.Next(&u) {
			break
		}
		if i < 2_000 || u.Label == "" {
			continue // skip warm-up and untagged
		}
		fl := o.Flags(u.Seq)
		count[u.Label]++
		if fl&FlagUrgent != 0 {
			urgent[u.Label]++
		}
		if fl&FlagNonReady != 0 {
			nonReady[u.Label]++
		}
		if fl&FlagLongLat != 0 {
			ll[u.Label]++
		}
	}

	frac := func(m map[string]int, tag string) float64 {
		if count[tag] == 0 {
			return 0
		}
		return float64(m[tag]) / float64(count[tag])
	}

	// D is the missing load: mostly long-latency and urgent.
	if frac(ll, "D") < 0.5 {
		t.Errorf("D long-latency fraction %.2f", frac(ll, "D"))
	}
	// The address chain A,B,C,E must be mostly urgent (Fig. 2).
	for _, tag := range []string{"A", "B", "C", "E"} {
		if frac(urgent, tag) < 0.5 {
			t.Errorf("%s urgent fraction %.2f, want >0.5", tag, frac(urgent, tag))
		}
	}
	// G, I, J, K are not ancestors of the miss: Non-Urgent.
	for _, tag := range []string{"G", "I", "J", "K"} {
		if frac(urgent, tag) > 0.2 {
			t.Errorf("%s urgent fraction %.2f, want low", tag, frac(urgent, tag))
		}
	}
	// F consumes the miss: Non-Ready.
	if frac(nonReady, "F") < 0.5 {
		t.Errorf("F non-ready fraction %.2f", frac(nonReady, "F"))
	}
	// A, the address generator, does not descend from the miss.
	if frac(nonReady, "A") > 0.2 {
		t.Errorf("A non-ready fraction %.2f, want low", frac(nonReady, "A"))
	}
}

func TestOracleShortBudget(t *testing.T) {
	p := fig2Program()
	o := BuildOracle(p, 100, mem.DefaultConfig(), 64)
	if o.Len() == 0 {
		t.Fatal("empty oracle")
	}
	if o.Flags(1<<40) != 0 {
		t.Error("out-of-range seq must report zero flags")
	}
	if o.CountUrgent() < 0 {
		t.Error("urgent count broken")
	}
}
