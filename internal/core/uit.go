// Package core implements the paper's contribution: the Long Term Parking
// unit. It contains
//
//   - the Urgent Instruction Table (UIT) and the producer-PC RAT extension
//     that together implement Iterative Backward Dependency Analysis
//     (paper §5.2, after Carlson et al.'s Load Slice Core),
//   - the Parked-bit propagation that force-parks consumers of parked
//     producers (deadlock freedom),
//   - the LTP structure itself: a simple FIFO for Non-Urgent instructions,
//     extended with a ticket CAM for the Non-Ready design (Appendix),
//   - the ROB-proximity wakeup policy for Non-Urgent instructions and the
//     ticket-clear early wakeup for Non-Ready instructions,
//   - the two-level long-latency (hit/miss) predictor,
//   - the timer-based DRAM monitor that power-gates LTP in compute-bound
//     phases (§5.2), and
//   - the oracle classifier used by the limit study (§4).
//
// The unit attaches to internal/pipeline through the pipeline.Parker
// interface.
package core

// UIT is the Urgent Instruction Table: a PC-tagged, set-associative table
// whose entries mark instructions known to be ancestors of long-latency
// instructions. Presence means Urgent; absence means Non-Urgent. Entries
// are inserted when a long-latency load commits and when urgency
// propagates backwards through the RAT producer-PC extension.
type UIT struct {
	tags    []uint64 // 0 = empty
	lru     []uint64
	sets    int
	setMask uint64 // sets-1; the set count is asserted a power of two
	ways    int
	stamp   uint64
	infMode bool
	infSet  map[uint64]struct{}

	// Statistics.
	Inserts uint64
	Hits    uint64
	Lookups uint64
	Evicts  uint64
}

// NewUIT builds a UIT with the given total entry count (power of two) and
// associativity. entries <= 0 selects the unlimited (oracle-storage) mode
// used to quantify UIT-size sensitivity (§5.6).
func NewUIT(entries, ways int) *UIT {
	if entries <= 0 {
		return &UIT{infMode: true, infSet: make(map[uint64]struct{})}
	}
	if ways <= 0 {
		ways = 4
	}
	if entries < ways {
		ways = entries
	}
	sets := entries / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("core: UIT set count must be a power of two")
	}
	return &UIT{
		tags:    make([]uint64, entries),
		lru:     make([]uint64, entries),
		sets:    sets,
		setMask: uint64(sets - 1),
		ways:    ways,
	}
}

func (u *UIT) setOf(pc uint64) int { return int((pc >> 2) & u.setMask) }

// Insert marks the PC as Urgent.
func (u *UIT) Insert(pc uint64) {
	u.Inserts++
	if u.infMode {
		u.infSet[pc] = struct{}{}
		return
	}
	base := u.setOf(pc) * u.ways
	victim := base
	for i := base; i < base+u.ways; i++ {
		if u.tags[i] == pc {
			u.stamp++
			u.lru[i] = u.stamp
			return
		}
		if u.tags[i] == 0 {
			victim = i
			goto place
		}
		if u.lru[i] < u.lru[victim] {
			victim = i
		}
	}
	if u.tags[victim] != 0 {
		u.Evicts++
	}
place:
	u.stamp++
	u.tags[victim] = pc
	u.lru[victim] = u.stamp
}

// Urgent reports whether the PC is marked Urgent.
func (u *UIT) Urgent(pc uint64) bool {
	u.Lookups++
	if u.infMode {
		_, ok := u.infSet[pc]
		if ok {
			u.Hits++
		}
		return ok
	}
	base := u.setOf(pc) * u.ways
	for i := base; i < base+u.ways; i++ {
		if u.tags[i] == pc {
			u.stamp++
			u.lru[i] = u.stamp
			u.Hits++
			return true
		}
	}
	return false
}

// Len returns the number of valid entries (for tests).
func (u *UIT) Len() int {
	if u.infMode {
		return len(u.infSet)
	}
	n := 0
	for _, t := range u.tags {
		if t != 0 {
			n++
		}
	}
	return n
}
