package core

import (
	"math/rand"
	"testing"

	"ltp/internal/isa"
	"ltp/internal/pipeline"
	"ltp/internal/prog"
)

// randomProgram generates a structurally valid random loop: a mix of ALU
// ops, loads/stores over a table, divides, and a data-dependent branch,
// with registers drawn from a small pool so real dependence chains form.
func randomProgram(seed int64) *prog.Program {
	rng := rand.New(rand.NewSource(seed))
	b := prog.NewBuilder("fuzz")

	const tableWords = 1 << 14
	rBase := isa.R(15)
	rCnt := isa.R(14)
	b.SetReg(rBase, 0x5_0000_0000)
	b.SetReg(rCnt, 1<<40)
	for i := 1; i < 8; i++ {
		b.SetReg(isa.R(i), rng.Int63n(1000)+1)
	}

	reg := func() isa.Reg { return isa.R(1 + rng.Intn(7)) }
	freg := func() isa.Reg { return isa.F(1 + rng.Intn(7)) }

	b.Label("loop")
	n := 8 + rng.Intn(24)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2:
			b.Add(reg(), reg(), reg())
		case 3:
			b.Mul(reg(), reg(), reg())
		case 4:
			b.FAdd(freg(), freg(), freg())
		case 5:
			// Masked table load: address always in range, 8-aligned.
			r1, r2 := reg(), reg()
			b.Andi(r1, r2, (tableWords-1)<<3)
			b.Add(r1, r1, rBase)
			b.Ld(reg(), r1, 0)
		case 6:
			r1, r2 := reg(), reg()
			b.Andi(r1, r2, (tableWords-1)<<3)
			b.Add(r1, r1, rBase)
			b.St(r1, 0, reg())
		case 7:
			b.Div(reg(), reg(), reg())
		case 8:
			b.Addi(reg(), reg(), rng.Int63n(64)-32)
		case 9:
			b.Andi(reg(), reg(), 0xFFFF)
		}
	}
	b.Addi(rCnt, rCnt, -1)
	b.Br(isa.CondNE, rCnt, "loop")
	b.Jmp("loop")
	return b.Build()
}

// TestFuzzRandomProgramsBaselineAndLTP runs randomly generated programs
// through the baseline and every LTP mode, checking invariants and that
// all configurations commit the same instruction stream length without
// deadlocking. This is the failure-injection net for the parking /
// wakeup / squash interactions.
func TestFuzzRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz is slow")
	}
	const insts = 12_000
	for seed := int64(1); seed <= 8; seed++ {
		p := randomProgram(seed)

		for _, mode := range []Mode{ModeOff, ModeNU, ModeNR, ModeNRNU} {
			pcfg := pipeline.DefaultConfig()
			pcfg.Hier.PrefetchDegree = 0
			pcfg.IQSize = 24
			pcfg.IntRegs, pcfg.FPRegs = 72, 72
			pcfg.LQSize, pcfg.SQSize = 24, 12
			pcfg.WatchdogCycles = 200_000

			var parker pipeline.Parker = pipeline.NullParker{}
			if mode != ModeOff {
				lcfg := DefaultConfig()
				lcfg.Mode = mode
				lcfg.Entries = 48
				lcfg.Ports = 2
				lcfg.Tickets = 8
				parker = New(lcfg, pcfg.Hier.DRAMLatency, pcfg.Hier.TagEarlyLead)
			}
			pipe := pipeline.New(pcfg, prog.NewEmulator(p), parker)
			for i := range p.Insts {
				pipe.Hier.WarmFetch(prog.PCOf(i))
			}
			for pipe.Committed() < insts {
				pipe.Cycle()
				if pipe.Now()%512 == 0 {
					if err := pipe.CheckInvariants(); err != nil {
						t.Fatalf("seed %d mode %v: %v", seed, mode, err)
					}
				}
				if pipe.Now() > 5_000_000 {
					t.Fatalf("seed %d mode %v: runaway (committed %d)", seed, mode, pipe.Committed())
				}
			}
			if err := pipe.CheckInvariants(); err != nil {
				t.Fatalf("seed %d mode %v final: %v", seed, mode, err)
			}
		}
	}
}

// TestFuzzSqueezeResources stresses the deadlock-avoidance reserves with
// pathologically small structures.
func TestFuzzSqueezeResources(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz is slow")
	}
	for seed := int64(20); seed <= 24; seed++ {
		p := randomProgram(seed)
		pcfg := pipeline.DefaultConfig()
		pcfg.Hier.PrefetchDegree = 0
		pcfg.IQSize = 12
		pcfg.IntRegs, pcfg.FPRegs = 40, 40
		pcfg.LQSize, pcfg.SQSize = 10, 6
		pcfg.ROBSize = 64
		pcfg.WatchdogCycles = 200_000
		pcfg.LateLSQAlloc = true

		lcfg := DefaultConfig()
		lcfg.Mode = ModeNRNU
		lcfg.Entries = 24
		lcfg.Ports = 1
		lcfg.Tickets = 4
		unit := New(lcfg, pcfg.Hier.DRAMLatency, pcfg.Hier.TagEarlyLead)
		pipe := pipeline.New(pcfg, prog.NewEmulator(p), unit)
		for i := range p.Insts {
			pipe.Hier.WarmFetch(prog.PCOf(i))
		}
		for pipe.Committed() < 8_000 {
			pipe.Cycle()
			if pipe.Now() > 5_000_000 {
				t.Fatalf("seed %d: runaway (committed %d)", seed, pipe.Committed())
			}
		}
		if err := pipe.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
