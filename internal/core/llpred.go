package core

// LLPredictor is the two-level hit/miss predictor from the Appendix: a
// per-PC history table records the last four hit/miss outcomes; the
// history hashed with the PC indexes a table of 2-bit saturating counters
// that predicts whether the next execution will be long-latency. The paper
// reports it within 2 points of an oracle.
type LLPredictor struct {
	hist     []uint8 // per-PC 4-bit outcome history
	pht      []uint8 // 2-bit counters
	histMask uint64
	phtMask  uint64

	// Statistics.
	Predictions uint64
	PredictedLL uint64
	Correct     uint64
}

// NewLLPredictor builds a predictor with 2^histBits history entries and
// 2^phtBits counters.
func NewLLPredictor(histBits, phtBits uint) *LLPredictor {
	return &LLPredictor{
		hist:     make([]uint8, 1<<histBits),
		pht:      make([]uint8, 1<<phtBits),
		histMask: 1<<histBits - 1,
		phtMask:  1<<phtBits - 1,
	}
}

// DefaultLLPredictor returns the configuration used by the realistic
// design: 4K history entries, 4K counters.
func DefaultLLPredictor() *LLPredictor { return NewLLPredictor(12, 12) }

func (l *LLPredictor) phtIndex(pc uint64) uint64 {
	h := uint64(l.hist[(pc>>2)&l.histMask] & 0xf)
	return ((pc >> 2) ^ (h * 0x9e37)) & l.phtMask
}

// Predict returns whether the instruction at pc is predicted long-latency.
func (l *LLPredictor) Predict(pc uint64) bool {
	l.Predictions++
	ll := l.pht[l.phtIndex(pc)] >= 2
	if ll {
		l.PredictedLL++
	}
	return ll
}

// Train records the actual outcome for pc. Call after the access's latency
// class is known.
func (l *LLPredictor) Train(pc uint64, wasLL bool) {
	idx := l.phtIndex(pc)
	pred := l.pht[idx] >= 2
	if pred == wasLL {
		l.Correct++
	}
	if wasLL {
		if l.pht[idx] < 3 {
			l.pht[idx]++
		}
	} else if l.pht[idx] > 0 {
		l.pht[idx]--
	}
	hi := (pc >> 2) & l.histMask
	l.hist[hi] = (l.hist[hi] << 1) & 0xf
	if wasLL {
		l.hist[hi] |= 1
	}
}

// Accuracy returns the fraction of trained predictions that were correct.
func (l *LLPredictor) Accuracy() float64 {
	if l.Predictions == 0 {
		return 1
	}
	return float64(l.Correct) / float64(l.Predictions)
}

// DRAMMonitor is the timer-based runtime on/off control (§5.2, after Kora
// et al.): every demand access that misses in the L3 restarts a timer set
// to the DRAM latency and enables LTP; when the timer expires — no
// long-latency loads recently — LTP is power-gated off so compute-bound
// phases do not pay parking overheads.
type DRAMMonitor struct {
	timerUntil uint64
	latency    uint64
	forceOn    bool

	// EnabledCycles and TotalCycles give the enabled fraction (Fig. 7).
	EnabledCycles uint64
	TotalCycles   uint64
}

// NewDRAMMonitor builds a monitor with the given DRAM latency in cycles.
// forceOn keeps LTP always enabled (the limit study's setting).
func NewDRAMMonitor(dramLatency uint64, forceOn bool) *DRAMMonitor {
	return &DRAMMonitor{latency: dramLatency, forceOn: forceOn}
}

// NoteDemandMiss restarts the timer on a demand L3 miss at cycle now.
func (m *DRAMMonitor) NoteDemandMiss(now uint64) {
	until := now + m.latency
	if until > m.timerUntil {
		m.timerUntil = until
	}
}

// Enabled reports whether LTP is powered on at cycle now.
func (m *DRAMMonitor) Enabled(now uint64) bool {
	return m.forceOn || now < m.timerUntil
}

// Tick accumulates the enabled-time statistic; call once per cycle.
func (m *DRAMMonitor) Tick(now uint64) {
	m.TotalCycles++
	if m.Enabled(now) {
		m.EnabledCycles++
	}
}

// EnabledFraction returns the fraction of cycles LTP was powered on.
func (m *DRAMMonitor) EnabledFraction() float64 {
	if m.TotalCycles == 0 {
		return 0
	}
	return float64(m.EnabledCycles) / float64(m.TotalCycles)
}
