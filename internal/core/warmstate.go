package core

import "ltp/internal/isa"

// Warm-state checkpointing for the sampled fidelity tier. A single
// continuously-warming LTP unit observes the whole trace; at every
// interval boundary WarmSnapshot captures the predictor state a
// measured interval needs, and WarmRestore installs it into a fresh
// unit that backs that interval's pipeline. Snapshots are deep copies:
// the warming unit keeps mutating its own tables after the checkpoint.

// Clone returns a deep copy of the table, in both the finite
// set-associative and the unlimited (oracle-backed) modes.
func (t *UIT) Clone() *UIT {
	cp := *t
	cp.tags = append([]uint64(nil), t.tags...)
	cp.lru = append([]uint64(nil), t.lru...)
	if t.infSet != nil {
		cp.infSet = make(map[uint64]struct{}, len(t.infSet))
		for pc := range t.infSet {
			cp.infSet[pc] = struct{}{}
		}
	}
	return &cp
}

// Clone returns a deep copy of the predictor's history and counter
// tables.
func (p *LLPredictor) Clone() *LLPredictor {
	cp := *p
	cp.hist = append([]uint8(nil), p.hist...)
	cp.pht = append([]uint8(nil), p.pht...)
	return &cp
}

// WarmState is a deep snapshot of everything WarmObserve trains: the
// Urgent Instruction Table, the long-latency predictor, the DRAM
// monitor, the RAT producer extension and the warm-phase bookkeeping
// that WarmFinish consumes. It is the LTP half of a sampled-tier
// checkpoint (the cache and branch-predictor halves are cloned in
// internal/mem and internal/bpred).
type WarmState struct {
	uit          *UIT
	llpred       *LLPredictor
	crit         *CritTable // nil under IdentPaper
	monitor      DRAMMonitor
	ext          [isa.NumArchRegs]ratExt
	warmInsts    uint64
	warmLastDRAM uint64
	warmSawDRAM  bool
}

// WarmSnapshot captures the unit's functionally-warmed predictor state
// as a deep copy. The unit may keep warming afterwards; the snapshot
// is unaffected.
func (l *LTP) WarmSnapshot() *WarmState {
	ws := &WarmState{
		uit:          l.uit.Clone(),
		llpred:       l.llpred.Clone(),
		monitor:      *l.monitor,
		ext:          l.ext,
		warmInsts:    l.warmInsts,
		warmLastDRAM: l.warmLastDRAM,
		warmSawDRAM:  l.warmSawDRAM,
	}
	if l.crit != nil {
		ws.crit = l.crit.Clone()
	}
	return ws
}

// WarmRestore installs a snapshot into the unit, replacing whatever
// warm state it held. The snapshot itself is copied again, so one
// WarmState can be restored into several units. The unit must be
// otherwise idle (fresh from New, or between runs): dynamic state —
// the parking queue, tickets, per-cycle counters — is not part of a
// warm checkpoint.
func (l *LTP) WarmRestore(ws *WarmState) {
	l.uit = ws.uit.Clone()
	l.llpred = ws.llpred.Clone()
	if ws.crit != nil {
		l.crit = ws.crit.Clone()
	}
	mon := ws.monitor
	mon.latency = l.monitor.latency
	mon.forceOn = l.monitor.forceOn
	*l.monitor = mon
	l.ext = ws.ext
	l.warmInsts = ws.warmInsts
	l.warmLastDRAM = ws.warmLastDRAM
	l.warmSawDRAM = ws.warmSawDRAM
}
