package core

import (
	"ltp/internal/isa"
	"ltp/internal/mem"
	"ltp/internal/pipeline"
	"ltp/internal/stats"
)

// Mode selects which instruction classes the LTP parks.
type Mode uint8

const (
	// ModeOff parks nothing (baseline; prefer pipeline.NullParker).
	ModeOff Mode = iota
	// ModeNU parks Non-Urgent instructions (the paper's recommended,
	// queue-based design).
	ModeNU
	// ModeNR parks Non-Ready instructions (ticket-based, Appendix).
	ModeNR
	// ModeNRNU parks instructions that are Non-Urgent or Non-Ready.
	ModeNRNU
)

var modeNames = map[Mode]string{
	ModeOff: "off", ModeNU: "NU", ModeNR: "NR", ModeNRNU: "NR+NU",
}

// String returns the mode name as used in the paper's legends.
func (m Mode) String() string { return modeNames[m] }

// ParksNU reports whether the mode parks Non-Urgent instructions.
func (m Mode) ParksNU() bool { return m == ModeNU || m == ModeNRNU }

// ParksNR reports whether the mode parks Non-Ready instructions.
func (m Mode) ParksNR() bool { return m == ModeNR || m == ModeNRNU }

// WakePolicy selects the Non-Urgent wakeup rule. The paper's design is
// ROB proximity (§3.2); the alternatives exist for ablation studies that
// quantify why that choice matters.
type WakePolicy uint8

const (
	// WakeROBProximity wakes instructions between the ROB head and the
	// second in-flight long-latency instruction (the paper's policy).
	WakeROBProximity WakePolicy = iota
	// WakeEager wakes parked instructions as soon as ports allow,
	// regardless of ROB position (defeats late allocation).
	WakeEager
	// WakeLazy wakes only instructions at the immediate ROB head region
	// (maximizes parking time; risks commit-burst stalls).
	WakeLazy
)

var wakeNames = map[WakePolicy]string{
	WakeROBProximity: "rob-proximity", WakeEager: "eager", WakeLazy: "lazy",
}

// String returns the policy name.
func (w WakePolicy) String() string { return wakeNames[w] }

// Config configures the Long Term Parking unit.
type Config struct {
	Mode Mode

	// Ident selects the identification policy: the paper's UIT +
	// LL-predictor design (IdentPaper, default) or the ChampSim-style
	// criticality-table alternative (IdentCrit).
	Ident IdentPolicy

	// CritEntries sizes the IdentCrit criticality table (<=0 =
	// DefaultCritEntries; power of two).
	CritEntries int

	// Wake selects the Non-Urgent wakeup policy (default: ROB proximity,
	// the paper's design; others are ablations).
	Wake WakePolicy

	// DisableUrgentEscape force-parks Urgent consumers of parked
	// producers (strict parked-bit semantics). This is an ablation: it
	// reproduces the loop-carried parked-bit cascade that serializes
	// misses (see ShouldPark).
	DisableUrgentEscape bool

	// Entries is the LTP capacity (<=0 = unlimited, the limit study).
	Entries int
	// Ports is the per-cycle enqueue and dequeue bandwidth, each
	// (<=0 = unlimited). The paper's realistic design uses 128 entries
	// with 4 ports.
	Ports int

	// UITEntries sizes the Urgent Instruction Table (<=0 = unlimited).
	UITEntries int
	// UITWays is the UIT associativity (default 4).
	UITWays int

	// Tickets bounds concurrent long-latency tracking for the Non-Ready
	// design (max 128; Fig. 11 sweeps 4..128).
	Tickets int

	// Oracle, when non-nil, supplies perfect per-instruction
	// classification (the limit study, §4.1). The UIT and LL predictor
	// are bypassed.
	Oracle *Oracle

	// MonitorForceOn disables the DRAM-timer power gating, keeping LTP
	// always enabled.
	MonitorForceOn bool

	// EarlyWakeupLead is the cycles of advance notice the phased L2/L3
	// tags give ticket clearing (defaults to the hierarchy's setting).
	EarlyWakeupLead uint64
}

// DefaultConfig returns the paper's realistic design: Non-Urgent-only,
// 128-entry 4-port queue, 256-entry UIT.
func DefaultConfig() Config {
	return Config{
		Mode:       ModeNU,
		Entries:    128,
		Ports:      4,
		UITEntries: 256,
		UITWays:    4,
		Tickets:    64,
	}
}

// ratExt is the per-architectural-register RAT extension (Fig. 9): the
// producer's PC for backward urgency propagation, the ticket set for
// forward readiness tracking, and the writer's seq for squash rollback.
type ratExt struct {
	producerPC  uint64
	producerSeq uint64
	tickets     pipeline.TicketMask
	valid       bool
}

// ticketClear is a scheduled ticket broadcast (early wakeup).
type ticketClear struct {
	at       uint64
	ticket   int
	ownerSeq uint64
}

// LTP is the Long Term Parking unit; it implements pipeline.Parker.
type LTP struct {
	cfg     Config
	uit     *UIT
	llpred  *LLPredictor
	crit    *CritTable // IdentCrit tables (nil under IdentPaper)
	monitor *DRAMMonitor

	ext [isa.NumArchRegs]ratExt

	queue []*pipeline.Inflight // parked instructions, program order

	// ownTicket maps an in-flight seq to the ticket it owns (set on the
	// Inflight via ownTickets map to keep pipeline.Inflight lean).
	ownTicket map[uint64]int

	ticketOwner    []uint64 // seq of owning instruction; ^0 = free
	pendingClears  []ticketClear
	parkedStoreMap map[uint64][]*pipeline.Inflight // word addr -> parked stores

	parkedLoads  int
	parkedStores int
	parkedRegs   int

	enqThisCycle int
	deqThisCycle int

	// Functional warm-up bookkeeping (WarmObserve/WarmFinish).
	warmInsts    uint64
	warmLastDRAM uint64
	warmSawDRAM  bool

	// Statistics.
	OccInsts, OccRegs   stats.Accumulator
	OccLoads, OccStores stats.Accumulator
	ParkedTotal         uint64
	WokenTotal          uint64
	PressureWakes       uint64
	ForcedParks         uint64 // parked because a source was parked (P-bit)
	ClassUrgent         uint64
	ClassNonReady       uint64
	TicketsExhausted    uint64
	Enqueues, Dequeues  uint64
}

// New builds an LTP unit for a hierarchy with the given DRAM latency.
func New(cfg Config, dramLatency uint64, earlyLead uint64) *LTP {
	if cfg.Tickets <= 0 || cfg.Tickets > 128 {
		cfg.Tickets = 128
	}
	if cfg.EarlyWakeupLead == 0 {
		cfg.EarlyWakeupLead = earlyLead
	}
	l := &LTP{
		cfg:            cfg,
		uit:            NewUIT(cfg.UITEntries, cfg.UITWays),
		llpred:         DefaultLLPredictor(),
		monitor:        NewDRAMMonitor(dramLatency, cfg.MonitorForceOn),
		ownTicket:      make(map[uint64]int),
		ticketOwner:    make([]uint64, cfg.Tickets),
		parkedStoreMap: make(map[uint64][]*pipeline.Inflight),
	}
	for i := range l.ticketOwner {
		l.ticketOwner[i] = ^uint64(0)
	}
	if cfg.Ident == IdentCrit {
		l.crit = NewCritTable(cfg.CritEntries)
	}
	return l
}

// Cfg returns the configuration.
func (l *LTP) Cfg() Config { return l.cfg }

// UITTable exposes the UIT (tests, examples).
func (l *LTP) UITTable() *UIT { return l.uit }

// Monitor exposes the DRAM-timer monitor.
func (l *LTP) Monitor() *DRAMMonitor { return l.monitor }

// Predictor exposes the long-latency predictor.
func (l *LTP) Predictor() *LLPredictor { return l.llpred }

// Crit exposes the IdentCrit criticality table (nil under IdentPaper).
func (l *LTP) Crit() *CritTable { return l.crit }

// ParkedCount implements pipeline.Parker.
func (l *LTP) ParkedCount() int { return len(l.queue) }

// freeTicket returns a free ticket index or -1.
func (l *LTP) freeTicket() int {
	for i, s := range l.ticketOwner {
		if s == ^uint64(0) {
			return i
		}
	}
	return -1
}

// OnRename implements pipeline.Parker: classify the instruction and update
// the RAT extensions.
func (l *LTP) OnRename(p *pipeline.Pipeline, f *pipeline.Inflight, now uint64) {
	if l.cfg.Oracle != nil {
		l.classifyOracle(f)
	} else {
		l.classifyRealistic(f, now)
	}
	if f.Urgent {
		l.ClassUrgent++
	}
	if f.NonReady {
		l.ClassNonReady++
	}
	l.updateExt(f)
}

// classifyOracle applies the limit study's perfect classification: the
// oracle identifies long-latency instructions and Urgent ancestors exactly
// (§4.1's "oracle to predict long-latency instructions"). Readiness still
// flows through tickets so wakeup *timing* stays physical; the oracle only
// replaces the identification of long-latency producers.
func (l *LTP) classifyOracle(f *pipeline.Inflight) {
	fl := l.cfg.Oracle.Flags(f.Seq())
	f.Urgent = fl&FlagUrgent != 0
	f.PredLL = fl&FlagLongLat != 0
	l.inheritTickets(f)
	if l.cfg.Mode.ParksNR() && f.PredLL {
		l.allocateOwnTicket(f)
	}
	f.NonReady = !f.Tickets.Empty()
}

// classifyRealistic runs the identification policy (UIT lookup +
// LL predictor under IdentPaper, criticality tables under IdentCrit),
// backward urgency propagation, and ticket inheritance (§5.2 and
// Appendix).
func (l *LTP) classifyRealistic(f *pipeline.Inflight, now uint64) {
	if l.cfg.Ident == IdentCrit {
		f.Urgent = l.crit.Urgent(f.U.PC)
	} else {
		f.Urgent = l.uit.Urgent(f.U.PC)
	}
	if f.Urgent {
		// Backward propagation: the producers of an Urgent instruction's
		// sources are Urgent too (one dependence edge per iteration).
		for _, r := range [2]isa.Reg{f.U.Src1, f.U.Src2} {
			if r.Valid() && l.ext[r].valid && l.ext[r].producerPC != 0 {
				if l.cfg.Ident == IdentCrit {
					l.crit.Bump(l.ext[r].producerPC)
				} else {
					l.uit.Insert(l.ext[r].producerPC)
				}
			}
		}
	}
	if f.U.Op == isa.Load {
		if l.cfg.Ident == IdentCrit {
			f.PredLL = l.crit.PredictLL(f.U.PC)
		} else {
			f.PredLL = l.llpred.Predict(f.U.PC)
		}
	} else if f.U.Op.IsLongLatencyALU() {
		f.PredLL = true
	}
	l.inheritTickets(f)
	if l.cfg.Mode.ParksNR() && f.PredLL {
		l.allocateOwnTicket(f)
	}
	f.NonReady = !f.Tickets.Empty()
}

// inheritTickets unions the live tickets of the instruction's sources.
func (l *LTP) inheritTickets(f *pipeline.Inflight) {
	if !l.cfg.Mode.ParksNR() {
		return
	}
	for _, r := range [2]isa.Reg{f.U.Src1, f.U.Src2} {
		if r.Valid() && l.ext[r].valid {
			f.Tickets.Or(l.ext[r].tickets)
		}
	}
}

// allocateOwnTicket gives a predicted-LL instruction a ticket its
// descendants will wait on. Exhaustion simply forgoes tracking (Fig. 11).
func (l *LTP) allocateOwnTicket(f *pipeline.Inflight) {
	t := l.freeTicket()
	if t < 0 {
		l.TicketsExhausted++
		return
	}
	l.ticketOwner[t] = f.Seq()
	l.ownTicket[f.Seq()] = t
}

// updateExt records the instruction as the latest writer of its
// destination register.
func (l *LTP) updateExt(f *pipeline.Inflight) {
	if !f.HasDst() {
		return
	}
	e := &l.ext[f.U.Dst]
	e.valid = true
	e.producerPC = f.U.PC
	e.producerSeq = f.Seq()
	e.tickets = f.Tickets
	if t, ok := l.ownTicket[f.Seq()]; ok {
		e.tickets.Set(t)
	}
}

// ShouldPark implements pipeline.Parker.
func (l *LTP) ShouldPark(p *pipeline.Pipeline, f *pipeline.Inflight, now uint64) bool {
	// P-bit: Non-Urgent consumers of parked producers park regardless of
	// the monitor (they could not execute anyway and would clog the IQ,
	// §5.2). Urgent consumers are NOT force-parked: they dispatch with a
	// lazy operand link so a loop-carried urgent chain that was parked
	// once during UIT warm-up can escape the parked state — otherwise the
	// parked bit would cascade through e.g. a loop counter forever and
	// serialize every dependent miss (the pathology behind the paper's
	// footnote on breaking false parked-bit dependences).
	if p.SrcParked(f.U.Src1) || p.SrcParked(f.U.Src2) {
		if !f.Urgent || l.cfg.DisableUrgentEscape {
			l.ForcedParks++
			return true
		}
	}
	// §5.3: loads the memory dependence unit predicts to depend on a
	// parked store are parked too (the parked bit propagates through
	// memory). The address check stands in for the paper's store→load
	// dependence prediction.
	if f.IsLoad() {
		if l.ParkedStoreConflict(f.U.Addr, f.Seq()) {
			l.ForcedParks++
			return true
		}
		if dep := p.PredictedDepStore(f); dep != nil && dep.Parked {
			l.ForcedParks++
			return true
		}
	}
	if !l.monitor.Enabled(now) {
		return false
	}
	switch l.cfg.Mode {
	case ModeNU:
		return !f.Urgent
	case ModeNR:
		return f.NonReady
	case ModeNRNU:
		return !f.Urgent || f.NonReady
	default:
		return false
	}
}

// CanAccept implements pipeline.Parker.
func (l *LTP) CanAccept(now uint64) bool {
	if l.cfg.Entries > 0 && len(l.queue) >= l.cfg.Entries {
		return false
	}
	if l.cfg.Ports > 0 && l.enqThisCycle >= l.cfg.Ports {
		return false
	}
	return true
}

// scrubStaleTickets removes ticket bits that no longer correspond to an
// older in-flight owner. An instruction can be classified, then stall
// before dispatch (e.g. LTP write ports busy); ticket broadcasts during
// that window reach the queue and the RAT extension but not the stalled
// instruction, so its mask must be reconciled when it finally parks —
// otherwise it would wait forever on a ticket nobody will clear again.
func (l *LTP) scrubStaleTickets(f *pipeline.Inflight) {
	if f.Tickets.Empty() {
		return
	}
	for t := 0; t < len(l.ticketOwner); t++ {
		if !f.Tickets.Has(t) {
			continue
		}
		owner := l.ticketOwner[t]
		if owner == ^uint64(0) || owner >= f.Seq() {
			f.Tickets.Clear(t)
		}
	}
}

// Park implements pipeline.Parker.
func (l *LTP) Park(p *pipeline.Pipeline, f *pipeline.Inflight, now uint64) {
	l.scrubStaleTickets(f)
	l.queue = append(l.queue, f)
	l.enqThisCycle++
	l.Enqueues++
	l.ParkedTotal++
	if f.IsLoad() {
		l.parkedLoads++
	}
	if f.IsStore() {
		l.parkedStores++
		l.parkedStoreMap[f.U.Addr] = append(l.parkedStoreMap[f.U.Addr], f)
	}
	if f.HasDst() {
		l.parkedRegs++
	}
}

// removeFromQueue drops the queue element at index i and maintains the
// occupancy counters.
func (l *LTP) removeFromQueue(i int) *pipeline.Inflight {
	f := l.queue[i]
	l.queue = append(l.queue[:i], l.queue[i+1:]...)
	if f.IsLoad() {
		l.parkedLoads--
	}
	if f.IsStore() {
		l.parkedStores--
		l.dropParkedStore(f)
	}
	if f.HasDst() {
		l.parkedRegs--
	}
	return f
}

func (l *LTP) dropParkedStore(f *pipeline.Inflight) {
	lst := l.parkedStoreMap[f.U.Addr]
	for j, e := range lst {
		if e == f {
			lst = append(lst[:j], lst[j+1:]...)
			break
		}
	}
	if len(lst) == 0 {
		delete(l.parkedStoreMap, f.U.Addr)
	} else {
		l.parkedStoreMap[f.U.Addr] = lst
	}
}

// ParkedStoreConflict implements pipeline.Parker.
func (l *LTP) ParkedStoreConflict(addr uint64, seq uint64) bool {
	for _, st := range l.parkedStoreMap[addr] {
		if st.Seq() < seq {
			return true
		}
	}
	return false
}

// sourcesResolved reports whether every parked producer of f has already
// been given its physical register (left the LTP).
func sourcesResolved(f *pipeline.Inflight) bool {
	for i := range f.SrcProd {
		if prod := f.SrcProd[i]; prod != nil && prod.DstPreg == pipeline.NoPReg {
			return false
		}
	}
	return true
}

// Wake implements pipeline.Parker: the ROB-proximity policy for Non-Urgent
// instructions (wake everything older than the second in-flight
// long-latency instruction, §3.2/§5.2) plus out-of-order ticket-clear
// wakeup for the Non-Ready design (Appendix).
func (l *LTP) Wake(p *pipeline.Pipeline, now uint64, max int, pressure bool) int {
	l.fireTicketClears(p, now)

	budget := max
	if l.cfg.Ports > 0 && budget > l.cfg.Ports {
		budget = l.cfg.Ports
	}
	woken := 0
	var bound uint64
	switch l.cfg.Wake {
	case WakeEager:
		bound = ^uint64(0)
	case WakeLazy:
		bound = p.ROBHeadSeq() + 16
	default:
		bound = p.WakeBound()
	}

	if l.cfg.Mode.ParksNR() {
		// Out-of-order scan (the ticket CAM / bit-matrix): oldest first so
		// producers leave no later than consumers.
		for i := 0; i < len(l.queue) && woken < budget; {
			f := l.queue[i]
			oldest := i == 0
			eligible := false
			switch {
			case pressure && oldest:
				// §5.4: the pipeline is stalled on a commit-freed
				// resource; release the oldest parked instruction since
				// committing it frees resources.
				eligible = true
				l.PressureWakes++
			case !f.Tickets.Empty():
				eligible = false // still waiting on a long-latency ancestor
			case f.Urgent:
				eligible = true // U+NR: go as soon as tickets clear
			default:
				eligible = f.Seq() < bound // NU: ROB-proximity criterion
			}
			if !eligible || !sourcesResolved(f) || !p.CanUnpark(f, oldest) {
				i++
				continue
			}
			l.removeFromQueue(i)
			p.Unpark(f, now)
			l.afterUnpark(f)
			woken++
		}
		return woken
	}

	// Queue-based Non-Urgent design: strict FIFO release.
	for woken < budget && len(l.queue) > 0 {
		f := l.queue[0]
		eligible := f.Seq() < bound
		if pressure && woken == 0 {
			eligible = true
			l.PressureWakes++
		}
		if !eligible {
			break
		}
		if !sourcesResolved(f) || !p.CanUnpark(f, true) {
			break
		}
		l.removeFromQueue(0)
		p.Unpark(f, now)
		l.afterUnpark(f)
		woken++
	}
	return woken
}

func (l *LTP) afterUnpark(f *pipeline.Inflight) {
	l.deqThisCycle++
	l.Dequeues++
	l.WokenTotal++
}

// fireTicketClears applies due ticket broadcasts to parked instructions
// and the RAT extension.
func (l *LTP) fireTicketClears(p *pipeline.Pipeline, now uint64) {
	if len(l.pendingClears) == 0 {
		return
	}
	w := l.pendingClears[:0]
	for _, c := range l.pendingClears {
		if c.at > now {
			w = append(w, c)
			continue
		}
		if l.ticketOwner[c.ticket] != c.ownerSeq {
			continue // ticket was reassigned after a squash
		}
		l.clearTicket(c.ticket)
	}
	l.pendingClears = w
}

// clearTicket broadcasts a ticket clear and frees the ticket.
func (l *LTP) clearTicket(t int) {
	for _, f := range l.queue {
		f.Tickets.Clear(t)
	}
	for i := range l.ext {
		l.ext[i].tickets.Clear(t)
	}
	owner := l.ticketOwner[t]
	l.ticketOwner[t] = ^uint64(0)
	delete(l.ownTicket, owner)
}

// scheduleTicketClear arms a ticket's broadcast at the given cycle.
func (l *LTP) scheduleTicketClear(f *pipeline.Inflight, at uint64) {
	t, ok := l.ownTicket[f.Seq()]
	if !ok {
		return
	}
	l.pendingClears = append(l.pendingClears, ticketClear{at: at, ticket: t, ownerSeq: f.Seq()})
}

// NoteLoadIssued implements pipeline.Parker: DRAM-monitor restart, LL
// predictor training, and ticket early wakeup using the phased-tag signal.
func (l *LTP) NoteLoadIssued(p *pipeline.Pipeline, f *pipeline.Inflight, now uint64) {
	if f.MemLevel == mem.LvlDRAM {
		l.monitor.NoteDemandMiss(now)
	}
	if l.cfg.Oracle == nil {
		if l.cfg.Ident == IdentCrit {
			l.crit.TrainHit(f.U.PC, !f.LL)
		} else {
			l.llpred.Train(f.U.PC, f.LL)
		}
	}
	if l.cfg.Mode.ParksNR() {
		at := now
		if f.MemDone > now+l.cfg.EarlyWakeupLead {
			at = f.MemDone - l.cfg.EarlyWakeupLead
		}
		l.scheduleTicketClear(f, at)
	}
}

// NoteExecDone implements pipeline.Parker: non-memory long-latency
// operations broadcast their ticket when they finish (their latency is
// approximately known, §3.2).
func (l *LTP) NoteExecDone(p *pipeline.Pipeline, f *pipeline.Inflight, now uint64) {
	if l.cfg.Mode.ParksNR() && !f.IsLoad() {
		l.scheduleTicketClear(f, now)
	}
}

// NoteCommit implements pipeline.Parker: under IdentPaper, committed
// long-latency instructions seed the UIT (§5.2 step 1); under
// IdentCrit, the criticality counter is trained by whether the
// instruction blocked retirement (it finished within critCommitSlack
// cycles of committing — the ROB head was waiting on it).
func (l *LTP) NoteCommit(p *pipeline.Pipeline, f *pipeline.Inflight, now uint64) {
	if l.cfg.Oracle == nil {
		if l.cfg.Ident == IdentCrit {
			if f.LL || f.IsLoad() {
				l.crit.TrainCrit(f.U.PC, f.LL && now <= f.DoneAt+critCommitSlack)
			}
		} else if f.LL {
			l.uit.Insert(f.U.PC)
		}
	}
	// Tickets owned by instructions that never fired (e.g. predicted-LL
	// loads that were squashed out of issue) are reclaimed at commit.
	if t, ok := l.ownTicket[f.Seq()]; ok {
		l.clearTicket(t)
	}
}

// NoteSquash implements pipeline.Parker.
func (l *LTP) NoteSquash(p *pipeline.Pipeline, fromSeq uint64, now uint64) {
	// Drop squashed parked instructions.
	w := l.queue[:0]
	for _, f := range l.queue {
		if f.Seq() >= fromSeq {
			if f.IsLoad() {
				l.parkedLoads--
			}
			if f.IsStore() {
				l.parkedStores--
				l.dropParkedStore(f)
			}
			if f.HasDst() {
				l.parkedRegs--
			}
			continue
		}
		w = append(w, f)
	}
	l.queue = w

	// Invalidate RAT extensions written by squashed instructions.
	for i := range l.ext {
		if l.ext[i].valid && l.ext[i].producerSeq >= fromSeq {
			l.ext[i] = ratExt{}
		}
	}

	// Free tickets owned by squashed instructions and broadcast their
	// clears so surviving dependents do not wait forever.
	for t, owner := range l.ticketOwner {
		if owner != ^uint64(0) && owner >= fromSeq {
			l.clearTicket(t)
		}
	}
}

// WarmObserve lets a functional warm-up train the LTP's classification
// tables without running the pipeline; level is the hierarchy level that
// served a memory µop (ignored otherwise). It mirrors what a detailed
// warm-up would plant:
//   - the LL predictor observes each load's service level;
//   - the UIT learns long-latency PCs (commit-time seeding, §5.2 step 1)
//     AND backward-propagates urgency to the producers of urgent
//     instructions' sources — without this second half every address
//     chain feeding a miss would be parked and the misses serialized;
//   - the DRAM-timer monitor's phase is approximated by tracking how
//     recently a DRAM-level demand load occurred (see WarmFinish).
//
// Under oracle classification the tables are bypassed, so nothing warms.
// The µop must not be retained.
func (l *LTP) WarmObserve(u *isa.Uop, level mem.Level) {
	if l.cfg.Oracle != nil {
		return
	}
	l.warmInsts++
	crit := l.cfg.Ident == IdentCrit
	// Backward urgency propagation, as in classifyRealistic.
	urgent := false
	if crit {
		urgent = l.crit.Urgent(u.PC)
	} else {
		urgent = l.uit.Urgent(u.PC)
	}
	if urgent {
		for _, r := range [2]isa.Reg{u.Src1, u.Src2} {
			if r.Valid() && l.ext[r].valid && l.ext[r].producerPC != 0 {
				if crit {
					l.crit.Bump(l.ext[r].producerPC)
				} else {
					l.uit.Insert(l.ext[r].producerPC)
				}
			}
		}
	}
	ll := false
	switch {
	case u.Op == isa.Load:
		ll = level >= mem.LvlL3
		if crit {
			l.crit.TrainHit(u.PC, !ll)
		} else {
			l.llpred.Train(u.PC, ll)
		}
		if ll {
			l.warmLastDRAM = l.warmInsts
			l.warmSawDRAM = true
		}
	case u.Op.IsLongLatencyALU():
		ll = true
	}
	if ll {
		// A functional warm-up has no retirement timing; treat every
		// long-latency PC as critical, as the UIT seeding does — the
		// measured region's commit-blocking outcomes then refine it.
		if crit {
			l.crit.TrainCrit(u.PC, true)
		} else {
			l.uit.Insert(u.PC)
		}
	}
	// Track the latest writer for the propagation above.
	if u.Dst.Valid() {
		e := &l.ext[u.Dst]
		e.valid = true
		e.producerPC = u.PC
		e.producerSeq = u.Seq
		e.tickets = pipeline.TicketMask{}
	}
}

// WarmFinish closes a functional warm-up at cycle now: if a DRAM-level
// load occurred within roughly one DRAM latency of the warm-up's end, the
// monitor starts the measured region enabled, as it would after a detailed
// warm-up.
func (l *LTP) WarmFinish(now uint64) {
	if l.warmSawDRAM && l.warmInsts-l.warmLastDRAM <= 2*l.monitor.latency {
		l.monitor.NoteDemandMiss(now)
	}
}

// ResetStats zeroes the statistics while keeping the queue, tickets, UIT
// and predictor state — the warm-up/measured-region boundary of a
// detailed-warm simulation.
func (l *LTP) ResetStats() {
	l.OccInsts.Reset()
	l.OccRegs.Reset()
	l.OccLoads.Reset()
	l.OccStores.Reset()
	l.ParkedTotal, l.WokenTotal = 0, 0
	l.PressureWakes, l.ForcedParks = 0, 0
	l.ClassUrgent, l.ClassNonReady = 0, 0
	l.TicketsExhausted = 0
	l.Enqueues, l.Dequeues = 0, 0
	l.monitor.EnabledCycles, l.monitor.TotalCycles = 0, 0
	l.llpred.Predictions, l.llpred.PredictedLL, l.llpred.Correct = 0, 0, 0
}

// NoteCycle implements pipeline.Parker.
func (l *LTP) NoteCycle(p *pipeline.Pipeline, now uint64) {
	l.monitor.Tick(now)
	l.OccInsts.Add(float64(len(l.queue)))
	l.OccRegs.Add(float64(l.parkedRegs))
	l.OccLoads.Add(float64(l.parkedLoads))
	l.OccStores.Add(float64(l.parkedStores))
	l.enqThisCycle = 0
	l.deqThisCycle = 0
}

var _ pipeline.Parker = (*LTP)(nil)
