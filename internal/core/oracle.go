package core

import (
	"ltp/internal/isa"
	"ltp/internal/mem"
	"ltp/internal/prog"
)

// OracleFlag bits describe the limit study's perfect classification for
// one dynamic instruction.
type OracleFlag uint8

const (
	// FlagLongLat marks an instruction whose execution is long-latency
	// (load served beyond the L2, divide, square root).
	FlagLongLat OracleFlag = 1 << iota
	// FlagUrgent marks an ancestor (within a ROB-sized window) of a
	// long-latency instruction, including the instruction itself.
	FlagUrgent
	// FlagNonReady marks a descendant (within a ROB-sized window) of a
	// long-latency instruction.
	FlagNonReady
)

// Oracle holds per-dynamic-instruction classification flags computed by a
// trace pre-pass (§4.1: "an oracle to predict long-latency instructions"
// with "perfect instruction classification"). The pipeline's emulator run
// is deterministic, so sequence numbers line up exactly.
type Oracle struct {
	flags []OracleFlag
}

// Flags returns the classification for the dynamic instruction seq
// (instructions beyond the pre-pass budget report zero flags).
func (o *Oracle) Flags(seq uint64) OracleFlag {
	if seq >= uint64(len(o.flags)) {
		return 0
	}
	return o.flags[seq]
}

// Len returns the number of classified instructions.
func (o *Oracle) Len() int { return len(o.flags) }

// CountUrgent returns how many instructions carry FlagUrgent (tests).
func (o *Oracle) CountUrgent() int {
	n := 0
	for _, f := range o.flags {
		if f&FlagUrgent != 0 {
			n++
		}
	}
	return n
}

// oracleEntry is one window slot of the streaming dependence analysis.
type oracleEntry struct {
	dst      isa.Reg
	src      [2]int64 // absolute stream index of each source's writer (-1 none)
	ll       bool
	urgent   bool
	nonReady bool
}

// funcCaches is the functional (timing-free) cache walk used to decide
// which loads would be long-latency, including the stride prefetcher so
// prefetch-friendly streams are not misclassified.
type funcCaches struct {
	l1, l2, l3 *mem.Cache
	pref       mem.Prefetcher
}

func newFuncCaches(cfg mem.Config) *funcCaches {
	fc := &funcCaches{
		l1: mem.NewCache("oL1", cfg.L1DSize, cfg.L1DWays, cfg.L1Latency),
		l2: mem.NewCache("oL2", cfg.L2Size, cfg.L2Ways, cfg.L2Latency),
		l3: mem.NewCache("oL3", cfg.L3Size, cfg.L3Ways, cfg.L3Latency),
	}
	pf, err := mem.NewPrefetcher(cfg.PrefetcherName(), cfg.PrefetchTable, cfg.PrefetchDegree)
	if err != nil {
		panic("core: " + err.Error()) // names are validated at spec admission
	}
	fc.pref = pf
	return fc
}

// access walks the hierarchy functionally and returns the serving level.
func (fc *funcCaches) access(pc, addr uint64, isStore bool) mem.Level {
	la := mem.LineAddr(addr)
	if hit, _ := fc.l1.Lookup(la, 0); hit {
		return mem.LvlL1
	}
	lvl := mem.LvlL2
	if hit, _ := fc.l2.Lookup(la, 0); !hit {
		lvl = mem.LvlL3
		if hit3, _ := fc.l3.Lookup(la, 0); !hit3 {
			lvl = mem.LvlDRAM
			fc.l3.Insert(la, 0, false, false)
		}
		fc.l2.Insert(la, 0, false, false)
	}
	if fc.pref != nil && !isStore {
		for _, pa := range fc.pref.Observe(pc, la<<mem.LineShift) {
			pla := mem.LineAddr(pa)
			if !fc.l2.Probe(pla) {
				fc.l2.Insert(pla, 0, false, true)
				if !fc.l3.Probe(pla) {
					fc.l3.Insert(pla, 0, false, true)
				}
			}
		}
	}
	fc.l1.Insert(la, 0, isStore, false)
	return lvl
}

// BuildOracle runs the program's µop stream through a functional cache
// model and a sliding-window dependence analysis to produce perfect
// Urgent / Non-Ready / long-latency flags for the first `budget` dynamic
// instructions. window bounds how far ancestry/descendance propagates
// (use the ROB size: instructions further apart can never be in flight
// together).
func BuildOracle(p *prog.Program, budget int, hcfg mem.Config, window int) *Oracle {
	if window <= 0 {
		window = 256
	}
	em := prog.NewEmulator(p)
	fc := newFuncCaches(hcfg)

	flags := make([]OracleFlag, 0, budget)
	ring := make([]oracleEntry, window)
	var lastWriter [isa.NumArchRegs]int64
	for i := range lastWriter {
		lastWriter[i] = -1
	}

	var u isa.Uop
	// markAncestors walks the dependence tree backwards within the window.
	var stack []int64
	markAncestors := func(from int64, head int64) {
		stack = stack[:0]
		stack = append(stack, from)
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if idx < 0 || head-idx >= int64(window) {
				continue
			}
			e := &ring[idx%int64(window)]
			if e.urgent {
				continue
			}
			e.urgent = true
			stack = append(stack, e.src[0], e.src[1])
		}
	}

	total := int64(0)
	for total < int64(budget) {
		if !em.Next(&u) {
			break
		}
		idx := int64(u.Seq)
		// Retire the slot this instruction overwrites.
		if idx >= int64(window) {
			old := &ring[idx%int64(window)]
			flags = append(flags, packFlags(old))
		}

		e := oracleEntry{dst: u.Dst, src: [2]int64{-1, -1}}
		if u.Src1.Valid() {
			e.src[0] = lastWriter[u.Src1]
		}
		if u.Src2.Valid() {
			e.src[1] = lastWriter[u.Src2]
		}

		switch {
		case u.Op == isa.Load:
			lvl := fc.access(u.PC, u.Addr, false)
			e.ll = lvl >= mem.LvlL3
		case u.Op == isa.Store:
			fc.access(u.PC, u.Addr, true)
		case u.Op.IsLongLatencyALU():
			e.ll = true
		}

		// Forward readiness: a descendant of an in-window LL instruction
		// (or of another Non-Ready instruction) is Non-Ready.
		for _, s := range e.src {
			if s < 0 || idx-s >= int64(window) {
				continue
			}
			ps := &ring[s%int64(window)]
			if ps.ll || ps.nonReady {
				e.nonReady = true
			}
		}

		ring[idx%int64(window)] = e
		if e.ll {
			markAncestors(idx, idx)
		}
		if u.Dst.Valid() {
			lastWriter[u.Dst] = idx
		}
		total++
	}

	// Flush the remaining window.
	start := total - int64(window)
	if start < 0 {
		start = 0
	}
	for idx := start; idx < total; idx++ {
		flags = append(flags, packFlags(&ring[idx%int64(window)]))
	}
	return &Oracle{flags: flags}
}

func packFlags(e *oracleEntry) OracleFlag {
	var f OracleFlag
	if e.ll {
		f |= FlagLongLat | FlagUrgent
	}
	if e.urgent {
		f |= FlagUrgent
	}
	if e.nonReady {
		f |= FlagNonReady
	}
	return f
}
