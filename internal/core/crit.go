package core

// ChampSim-style criticality-table identification (IdentCrit): an
// alternative to the paper's UIT + LL-predictor policy, modeled on the
// criticality predictor used in ChampSim-based prefetch research (a
// load-criticality table trained by whether an instruction blocked
// retirement, plus a per-PC miss predictor with epoch-rotated hit
// counts). Under IdentCrit:
//
//   - Urgent = the PC's criticality counter is saturated positive: the
//     instruction (or a producer feeding one) has repeatedly finished
//     right at the commit point, i.e. the ROB drained waiting for it.
//   - PredLL = the PC's miss history predicts a long-latency access:
//     few hits in the last completed epoch of accesses.
//
// Both tables are trained by outcomes (commit-blocking, service level),
// not by the paper's backward dependence walk alone — though urgency
// still propagates one producer hop per encounter, exactly like the UIT
// path, so address-generation chains feeding critical misses are not
// parked and serialized.

// IdentPolicy selects how the LTP identifies urgent and long-latency
// instructions.
type IdentPolicy uint8

const (
	// IdentPaper is the paper's policy: UIT seeding at commit plus the
	// per-PC long-latency predictor (§5.2).
	IdentPaper IdentPolicy = iota
	// IdentCrit is the ChampSim-style criticality-table policy.
	IdentCrit
)

var identNames = map[IdentPolicy]string{
	IdentPaper: "paper", IdentCrit: "crit",
}

// String returns the policy name ("paper" or "crit").
func (i IdentPolicy) String() string { return identNames[i] }

// ParseIdent parses an identification-policy name; the empty string
// means IdentPaper.
func ParseIdent(s string) (IdentPolicy, bool) {
	switch s {
	case "", "paper":
		return IdentPaper, true
	case "crit":
		return IdentCrit, true
	}
	return IdentPaper, false
}

const (
	// critEpoch is the accesses per miss-history epoch.
	critEpoch = 8
	// critLLMaxHits is the most last-epoch hits a PC may have and still
	// be predicted long-latency (2 of 8 = a 25% hit rate).
	critLLMaxHits = 2
	// critUrgentAt is the criticality counter value at which a PC
	// becomes Urgent.
	critUrgentAt = 2
	// critMin/critMax bound the saturating criticality counter.
	critMin = -8
	critMax = 7
	// critCommitSlack is how many cycles before commit an instruction
	// may have finished and still count as having blocked retirement.
	critCommitSlack = 2
)

// critEntry is one direct-mapped criticality-table entry.
type critEntry struct {
	pc       uint64
	crit     int8  // saturating [critMin, critMax]; >= critUrgentAt = urgent
	prevHits uint8 // hits in the last completed epoch
	currHits uint8 // hits so far in the current epoch
	accesses uint8 // accesses so far in the current epoch
	epochs   uint8 // completed epochs (saturating; 0 = no prediction yet)
	valid    bool
}

// CritTable is the PC-indexed criticality + miss-history table backing
// IdentCrit.
type CritTable struct {
	entries []critEntry
	mask    uint64
}

// DefaultCritEntries is the baseline criticality-table size.
const DefaultCritEntries = 1024

// NewCritTable builds a direct-mapped table with the given power-of-two
// entry count (<=0 = DefaultCritEntries).
func NewCritTable(entries int) *CritTable {
	if entries <= 0 {
		entries = DefaultCritEntries
	}
	if entries&(entries-1) != 0 {
		panic("core: crit table size must be a power of two")
	}
	return &CritTable{
		entries: make([]critEntry, entries),
		mask:    uint64(entries - 1),
	}
}

// slot returns the entry for pc, resetting it on a tag mismatch (the
// direct-mapped replacement policy: last toucher wins).
func (t *CritTable) slot(pc uint64) *critEntry {
	e := &t.entries[(pc>>2)&t.mask]
	if !e.valid || e.pc != pc {
		*e = critEntry{pc: pc, valid: true}
	}
	return e
}

// peek returns the entry for pc only if it is currently tracking pc.
func (t *CritTable) peek(pc uint64) *critEntry {
	e := &t.entries[(pc>>2)&t.mask]
	if e.valid && e.pc == pc {
		return e
	}
	return nil
}

// Urgent reports whether pc's criticality counter marks it urgent.
func (t *CritTable) Urgent(pc uint64) bool {
	e := t.peek(pc)
	return e != nil && e.crit >= critUrgentAt
}

// PredictLL predicts whether pc's next access is long-latency from its
// epoch-rotated hit history: no completed epoch yet means no prediction
// (false), otherwise few last-epoch hits predict a miss.
func (t *CritTable) PredictLL(pc uint64) bool {
	e := t.peek(pc)
	return e != nil && e.epochs > 0 && e.prevHits <= critLLMaxHits
}

// TrainCrit moves pc's criticality counter toward (critical=true) or
// away from (false) urgency.
func (t *CritTable) TrainCrit(pc uint64, critical bool) {
	e := t.slot(pc)
	if critical {
		if e.crit < critMax {
			e.crit++
		}
	} else if e.crit > critMin {
		e.crit--
	}
}

// Bump forces pc toward urgency by a full step to the urgency floor —
// the backward-propagation analog of a UIT insert: a producer feeding
// an urgent instruction becomes urgent the next time it is seen.
func (t *CritTable) Bump(pc uint64) {
	e := t.slot(pc)
	if e.crit < critUrgentAt {
		e.crit = critUrgentAt
	} else if e.crit < critMax {
		e.crit++
	}
}

// TrainHit records one access's service outcome (hit = not
// long-latency) into pc's epoch history.
func (t *CritTable) TrainHit(pc uint64, hit bool) {
	e := t.slot(pc)
	e.accesses++
	if hit {
		e.currHits++
	}
	if e.accesses >= critEpoch {
		e.prevHits = e.currHits
		e.currHits, e.accesses = 0, 0
		if e.epochs < 255 {
			e.epochs++
		}
	}
}

// Len returns the number of valid entries (statistics).
func (t *CritTable) Len() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the table.
func (t *CritTable) Clone() *CritTable {
	cp := *t
	cp.entries = append([]critEntry(nil), t.entries...)
	return &cp
}
