package core

import (
	"testing"

	"ltp/internal/isa"
	"ltp/internal/pipeline"
	"ltp/internal/prog"
)

func TestScrubStaleTickets(t *testing.T) {
	l := New(Config{Mode: ModeNRNU, Tickets: 8}, 200, 6)
	f := &pipeline.Inflight{U: isa.Uop{Seq: 100}}
	f.Tickets.Set(0) // stale: nobody owns it
	f.Tickets.Set(1) // owned by an OLDER instruction: keep
	f.Tickets.Set(2) // owned by a YOUNGER instruction: stale reuse
	l.ticketOwner[1] = 50
	l.ticketOwner[2] = 150

	l.scrubStaleTickets(f)
	if f.Tickets.Has(0) {
		t.Error("unowned ticket not scrubbed")
	}
	if !f.Tickets.Has(1) {
		t.Error("legitimately inherited ticket scrubbed")
	}
	if f.Tickets.Has(2) {
		t.Error("reused-by-younger ticket not scrubbed")
	}
}

func TestParkedStoreConflict(t *testing.T) {
	l := New(DefaultConfig(), 200, 6)
	st := &pipeline.Inflight{U: isa.Uop{Seq: 10, Op: isa.Store, Addr: 0x1000,
		Src1: isa.R(1), Src2: isa.R(2), Dst: isa.NoReg}}
	l.Park(nil, st, 0)
	if !l.ParkedStoreConflict(0x1000, 20) {
		t.Error("conflict with older parked store not detected")
	}
	if l.ParkedStoreConflict(0x1000, 5) {
		t.Error("younger-than-load rule broken (store is younger)")
	}
	if l.ParkedStoreConflict(0x2000, 20) {
		t.Error("false conflict on a different address")
	}
	l.removeFromQueue(0)
	if l.ParkedStoreConflict(0x1000, 20) {
		t.Error("conflict persists after the store left the LTP")
	}
}

func TestWakePolicyAblations(t *testing.T) {
	// Eager wakeup must park for shorter times than ROB proximity on a
	// miss-heavy loop, and thus hold fewer instructions on average.
	mk := func(w WakePolicy) float64 {
		lcfg := DefaultConfig()
		lcfg.Wake = w
		pipe, unit := newLTPPipeline(testPipeConfig(), lcfg, fig2Program())
		for pipe.Committed() < 20_000 {
			pipe.Cycle()
		}
		return unit.OccInsts.Mean()
	}
	eager := mk(WakeEager)
	prox := mk(WakeROBProximity)
	if eager >= prox {
		t.Errorf("eager wakeup parks more than proximity: %.1f vs %.1f", eager, prox)
	}
	if WakeEager.String() != "eager" || WakeROBProximity.String() != "rob-proximity" {
		t.Error("wake policy names wrong")
	}
}

// dramFig2Program is the Fig. 2 loop over a table big enough to miss the
// 1 MB L3, so the DRAM-timer monitor stays on and deep windows form (the
// preconditions of the parked-bit cascade).
func dramFig2Program() *prog.Program {
	const wordsA = 1 << 14
	const wordsB = 1 << 18 // 2 MB
	b := prog.NewBuilder("fig2dram")
	rJ, rI := isa.R(1), isa.R(2)
	rBaseA, rBaseB, rBaseC := isa.R(3), isa.R(4), isa.R(5)
	rT1, rAddrA, rAddrB, rAddrC := isa.R(6), isa.R(7), isa.R(8), isa.R(9)
	rD, rD2, rT2 := isa.R(10), isa.R(11), isa.R(12)
	b.SetReg(rBaseA, 0x1_0000_0000)
	b.SetReg(rBaseB, 0x2_0000_0000)
	b.SetReg(rBaseC, 0x3_0000_0000)
	b.InitWith(func(m *prog.Memory) {
		x := uint64(999)
		for k := 0; k < wordsA; k++ {
			x = x*6364136223846793005 + 1442695040888963407
			m.Write(0x1_0000_0000+uint64(k)*8, int64((x%wordsB)<<3))
		}
	})
	b.Label("outer").
		Movi(rJ, int64(wordsA-1)<<3).
		Movi(rI, 0)
	b.Label("loop").
		Add(rAddrA, rBaseA, rJ).
		Ld(rT1, rAddrA, 0).
		Add(rAddrB, rBaseB, rT1).
		Ld(rD, rAddrB, 0).
		Addi(rJ, rJ, -8).
		Addi(rD2, rD, 5).
		Add(rAddrC, rBaseC, rI).
		St(rAddrC, 0, rD2).
		Addi(rI, rI, 8).
		Addi(rT2, rJ, 0).
		Br(isa.CondGE, rT2, "loop").
		Jmp("outer")
	return b.Build()
}

func TestDisableUrgentEscapeCascades(t *testing.T) {
	// With the escape disabled, the loop-carried urgent chain stays
	// parked and performance collapses versus the default design. The
	// cascade's precondition is a deep window while the UIT is still
	// learning, which needs warm caches from the first detailed cycle.
	mk := func(disable bool) uint64 {
		lcfg := DefaultConfig()
		lcfg.DisableUrgentEscape = disable
		p := dramFig2Program()
		pcfg := testPipeConfig()
		unit := New(lcfg, pcfg.Hier.DRAMLatency, pcfg.Hier.TagEarlyLead)
		em := prog.NewEmulator(p)
		pipe := pipeline.New(pcfg, em, unit)
		for i := range p.Insts {
			pipe.Hier.WarmFetch(prog.PCOf(i))
		}
		var u isa.Uop
		for n := 0; n < 40_000; n++ {
			if !em.Next(&u) {
				break
			}
			if u.IsMem() {
				pipe.Hier.Warm(u.PC, u.Addr, u.Op == isa.Store)
			}
		}
		for pipe.Committed() < 20_000 {
			pipe.Cycle()
		}
		return pipe.Now()
	}
	withEscape := mk(false)
	withoutEscape := mk(true)
	if withoutEscape <= withEscape {
		t.Errorf("cascade ablation not slower: %d vs %d cycles", withoutEscape, withEscape)
	}
}

func TestEarlyTicketWakeupLead(t *testing.T) {
	// With a large early-wakeup lead, NR instructions should leave the
	// LTP sooner (lower average occupancy) than with no lead.
	mk := func(lead uint64) float64 {
		lcfg := DefaultConfig()
		lcfg.Mode = ModeNRNU
		lcfg.EarlyWakeupLead = lead
		pipe, unit := newLTPPipeline(testPipeConfig(), lcfg, fig2Program())
		for pipe.Committed() < 20_000 {
			pipe.Cycle()
		}
		return unit.OccInsts.Mean()
	}
	withLead := mk(40)
	noLead := mk(1)
	// The effect is small (only U+NR instructions are affected) but must
	// not invert: more lead, no more occupancy.
	if withLead > noLead*1.1 {
		t.Errorf("larger early-wakeup lead increased occupancy: %.2f vs %.2f", withLead, noLead)
	}
}

func TestTicketClearGuardAgainstReuse(t *testing.T) {
	l := New(Config{Mode: ModeNRNU, Tickets: 4}, 200, 6)
	owner := &pipeline.Inflight{U: isa.Uop{Seq: 5, Dst: isa.R(1)}}
	l.allocateOwnTicket(owner)
	tk, ok := l.ownTicket[owner.Seq()]
	if !ok {
		t.Fatal("ticket not allocated")
	}
	// Schedule a clear, then simulate a squash + reallocation of the
	// same ticket to a different owner.
	l.scheduleTicketClear(owner, 100)
	l.clearTicket(tk) // squash path frees it
	newOwner := &pipeline.Inflight{U: isa.Uop{Seq: 9, Dst: isa.R(2)}}
	l.allocateOwnTicket(newOwner)
	tk2 := l.ownTicket[newOwner.Seq()]
	if tk2 != tk {
		t.Skip("allocator did not reuse the ticket; nothing to test")
	}
	// Firing the stale clear must NOT free the new owner's ticket.
	waiter := &pipeline.Inflight{U: isa.Uop{Seq: 11}}
	waiter.Tickets.Set(tk)
	l.queue = append(l.queue, waiter)
	l.fireTicketClears(nil, 200)
	if !waiter.Tickets.Has(tk) {
		t.Error("stale scheduled clear fired against the reused ticket")
	}
}

// TestMinimalParkProgram exercises parking on a program small enough to
// verify by hand: one miss chain and one independent add stream.
func TestMinimalParkProgram(t *testing.T) {
	b := prog.NewBuilder("mini")
	b.SetReg(isa.R(1), 0x9_0000_0000)
	b.SetReg(isa.R(5), 1<<40)
	b.SetReg(isa.R(6), 6364136223846793005)
	b.Label("loop").
		Mul(isa.R(2), isa.R(2), isa.R(6)).
		Andi(isa.R(3), isa.R(2), 0x3FFFF8).
		Add(isa.R(4), isa.R(1), isa.R(3)).
		Ld(isa.R(7), isa.R(4), 0).         // random miss
		Add(isa.R(8), isa.R(8), isa.R(7)). // NU+NR: parks
		Addi(isa.R(9), isa.R(9), 1).       // NU+R: parks
		Addi(isa.R(5), isa.R(5), -1).
		Br(isa.CondNE, isa.R(5), "loop")
	pipe, unit := newLTPPipeline(testPipeConfig(), DefaultConfig(), b.Build())
	run(t, pipe, 20_000)
	if unit.ParkedTotal == 0 {
		t.Fatal("nothing parked")
	}
	// Everything parked must have been woken and committed.
	if unit.WokenTotal < unit.ParkedTotal-uint64(unit.ParkedCount()) {
		t.Errorf("parked %d, woken %d, still parked %d",
			unit.ParkedTotal, unit.WokenTotal, unit.ParkedCount())
	}
}
