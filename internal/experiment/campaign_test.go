package experiment

import (
	"strings"
	"testing"
)

// microSuite uses the smallest budgets that still exercise every code
// path (classification, oracle builds, all four Fig. 6 rows, the energy
// model aggregation).
func microSuite() *Suite {
	s := NewSuite(0.05, 3_000, 10_000)
	s.Quiet = true
	return s
}

// TestCampaignSmoke regenerates every figure at micro budgets and sanity-
// checks the headline shapes. It is the integration test of the whole
// reproduction stack.
func TestCampaignSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign smoke is slow")
	}
	s := microSuite()

	t.Run("fig1", func(t *testing.T) {
		tables := s.Fig1()
		if len(tables) != 3 {
			t.Fatalf("fig1 returned %d tables", len(tables))
		}
		cpi := tables[0]
		// LTP must not slow the sensitive group versus plain IQ:32.
		if cpi.Rows[1].Cells[0] > cpi.Rows[0].Cells[0]*1.05 {
			t.Errorf("IQ:32+LTP CPI %.2f worse than IQ:32 %.2f",
				cpi.Rows[1].Cells[0], cpi.Rows[0].Cells[0])
		}
		// Insensitive group must be unaffected by IQ size (within noise).
		nmlp32, nmlp256 := cpi.Rows[0].Cells[1], cpi.Rows[2].Cells[1]
		if nmlp32 > nmlp256*1.25 {
			t.Errorf("insensitive group IQ-sensitive: %.2f vs %.2f", nmlp32, nmlp256)
		}
	})

	t.Run("fig6", func(t *testing.T) {
		tables := s.Fig6()
		if len(tables) != 16 {
			t.Fatalf("fig6 returned %d tables, want 16", len(tables))
		}
		// Find the IQ sweep for the sensitive group.
		var iqSens *Table
		for _, tab := range tables {
			if strings.Contains(tab.Title, "[IQ sweep, panel mlp-sensitive]") {
				iqSens = tab
			}
		}
		if iqSens == nil {
			t.Fatal("IQ/mlp-sensitive panel missing")
		}
		// NoLTP at IQ:16 (last col) must be clearly below LTP(NR+NU).
		noltp := iqSens.Rows[0].Cells[len(iqSens.Cols)-1]
		nrnu := iqSens.Rows[3].Cells[len(iqSens.Cols)-1]
		if nrnu <= noltp {
			t.Errorf("LTP(NR+NU) %.1f%% not above NoLTP %.1f%% at IQ:16", nrnu, noltp)
		}
	})

	t.Run("fig7", func(t *testing.T) {
		tables := s.Fig7()
		if len(tables) != 4 {
			t.Fatalf("fig7 returned %d tables", len(tables))
		}
		// NU parks at least as much as NR on the sensitive group (paper:
		// Non-Urgent dominates).
		var sens *Table
		for _, tab := range tables {
			if strings.Contains(tab.Title, "[mlp-sensitive]") {
				sens = tab
			}
		}
		nr, nu := sens.Rows[0].Cells[0], sens.Rows[0].Cells[1]
		if nu < nr {
			t.Errorf("NU parks %.1f < NR %.1f on sensitive group", nu, nr)
		}
	})

	t.Run("fig10", func(t *testing.T) {
		tables := s.Fig10()
		if len(tables) != 4 {
			t.Fatalf("fig10 returned %d tables", len(tables))
		}
		// ED2P of the 128-entry 4-port design (sensitive panel, row "4p",
		// col LTP:128) must improve on the baseline (negative %).
		ed2p := tables[1]
		got := ed2p.Rows[2].Cells[1]
		if got >= 0 {
			t.Errorf("LTP 128/4p ED2P %+.1f%%, want negative (improvement)", got)
		}
		// And beat the red line's performance (perf table, sensitive).
		perf := tables[0]
		ltpPerf := perf.Rows[2].Cells[1]
		red := perf.Rows[len(perf.Rows)-1].Cells[0]
		if ltpPerf <= red {
			t.Errorf("LTP 128/4p perf %.1f%% not above no-LTP red line %.1f%%", ltpPerf, red)
		}
	})

	t.Run("fig11", func(t *testing.T) {
		tables := s.Fig11()
		if len(tables) != 2 {
			t.Fatalf("fig11 returned %d tables", len(tables))
		}
		// NR+NU with max tickets must beat the no-LTP red line.
		sens := tables[0]
		if sens.Rows[0].Cells[0] <= sens.Rows[1].Cells[0] {
			t.Errorf("NR+NU %.1f%% not above red %.1f%%",
				sens.Rows[0].Cells[0], sens.Rows[1].Cells[0])
		}
	})

	t.Run("uit+ablation", func(t *testing.T) {
		uit := s.UITSweep()
		if len(uit.Rows) != 1 || len(uit.Cols) < 5 {
			t.Fatal("uit sweep malformed")
		}
		// A 4-entry UIT must hurt versus unlimited.
		if uit.Rows[0].Cells[len(uit.Cols)-1] >= uit.Rows[0].Cells[0] {
			t.Error("4-entry UIT not worse than unlimited")
		}
		abl := s.Ablation()
		if len(abl.Rows) < 5 {
			t.Fatal("ablation table malformed")
		}
		// The no-urgent-escape ablation must be the pathology it claims.
		var def, noesc float64
		for _, r := range abl.Rows {
			switch r.Label {
			case "paper design (proximity)":
				def = r.Cells[0]
			case "no urgent escape":
				noesc = r.Cells[0]
			}
		}
		if noesc >= def {
			t.Errorf("no-urgent-escape %.1f%% not below paper design %.1f%%", noesc, def)
		}
	})
}
