package experiment

import (
	"fmt"

	"ltp"
	"ltp/internal/core"
	"ltp/internal/energy"
	"ltp/internal/pipeline"
)

// Table1 renders the baseline configuration (the paper's Table 1).
func Table1() string {
	cfg := pipeline.DefaultConfig()
	h := cfg.Hier
	return fmt.Sprintf(`## Table 1: Baseline processor configuration
Frequency                  3.4 GHz (cycle-accurate; absolute time not modelled)
Width F/D/R/I/W/C          %d / %d / %d / %d / %d / %d
ROB / IQ / LQ / SQ         %d / %d / %d / %d
Int / FP registers         %d / %d (available, beyond architectural)
L1I / L1D                  %d kB, 64 B, %d-way, LRU, %d cycles
L2 unified                 %d kB, 64 B, %d-way, LRU, %d cycles + stride prefetcher degree %d
L3 shared                  %d MB, 64 B, %d-way, LRU, %d cycles
DRAM                       %d cycles (DDR3-1600 11-11-11 class)
LTP proposal               IQ 32, RF 96, 128-entry 4-port queue LTP, 256-entry UIT
`,
		cfg.FetchWidth, cfg.DecodeWidth, cfg.RenameWidth, cfg.IssueWidth, cfg.CommitWidth, cfg.CommitWidth,
		cfg.ROBSize, cfg.IQSize, cfg.LQSize, cfg.SQSize,
		cfg.IntRegs, cfg.FPRegs,
		h.L1ISize>>10, h.L1IWays, h.L1Latency,
		h.L2Size>>10, h.L2Ways, h.L2Latency, h.PrefetchDegree,
		h.L3Size>>20, h.L3Ways, h.L3Latency,
		h.DRAMLatency)
}

// ltpLimitCfg is the limit study's ideal LTP: oracle classification,
// unlimited entries and ports.
func ltpLimitCfg(mode core.Mode) core.Config {
	return core.Config{Mode: mode, Entries: 0, Ports: 0, Tickets: 128,
		UITEntries: 0, UITWays: 4}
}

// Fig1 reproduces Figure 1: CPI (a) and average outstanding memory
// requests (b) for IQ:32, IQ:32+LTP, IQ:256 on the MLP-sensitive and
// -insensitive groups, and average resources in use at IQ:256 (c). All
// other resources are unlimited; the prefetcher is on.
func (s *Suite) Fig1() []*Table {
	g := s.Classify()

	type cfg struct {
		name   string
		iq     int
		useLTP bool
	}
	cfgs := []cfg{{"IQ:32", 32, false}, {"IQ:32+LTP", 32, true}, {"IQ:256", 256, false}}

	var jobs []job
	var order []string
	for _, c := range cfgs {
		for _, wl := range append(append([]string{}, g.Sensitive...), g.Insensitive...) {
			pc := limitConfig(c.iq, pipeline.Inf, pipeline.Inf, pipeline.Inf)
			jobs = append(jobs, job{
				key: "fig1/" + c.name + "/" + wl, wlName: wl, pcfg: pc,
				useLTP: c.useLTP, lcfg: ltpLimitCfg(core.ModeNRNU), oracle: true,
			})
			order = append(order, c.name+"/"+wl)
		}
	}
	res := s.runAll(jobs)
	byKey := map[string]ltp.RunResult{}
	for i, k := range order {
		byKey[k] = res[i]
	}

	groupVals := func(cfgName string, group []string, get func(ltp.RunResult) float64) float64 {
		var vals []float64
		for _, wl := range group {
			vals = append(vals, get(byKey[cfgName+"/"+wl]))
		}
		return mean(vals)
	}
	// CPI uses the geometric mean so a single pathological kernel (pure
	// pointer chasing) does not drown the group.
	groupCPI := func(cfgName string, group []string) float64 {
		var vals []float64
		for _, wl := range group {
			vals = append(vals, byKey[cfgName+"/"+wl].CPI)
		}
		return geomeanRatio(vals)
	}

	cpi := &Table{Title: "Figure 1a: CPI (geomean)", Cols: []string{"MLP", "NMLP"}}
	out := &Table{Title: "Figure 1b: avg outstanding requests", Cols: []string{"MLP", "NMLP"}}
	for _, c := range cfgs {
		cpi.Rows = append(cpi.Rows, RowData{Label: c.name, Cells: []float64{
			groupCPI(c.name, g.Sensitive),
			groupCPI(c.name, g.Insensitive),
		}})
		out.Rows = append(out.Rows, RowData{Label: c.name, Cells: []float64{
			groupVals(c.name, g.Sensitive, func(r ltp.RunResult) float64 { return r.MLP }),
			groupVals(c.name, g.Insensitive, func(r ltp.RunResult) float64 { return r.MLP }),
		}})
	}

	use := &Table{Title: "Figure 1c: avg resources in use per cycle (IQ:256)",
		Cols: []string{"MLP", "NMLP"}}
	for _, m := range []struct {
		name string
		get  func(ltp.RunResult) float64
	}{
		{"RF (int+fp)", func(r ltp.RunResult) float64 { return r.AvgIntRF + r.AvgFPRF }},
		{"IQ", func(r ltp.RunResult) float64 { return r.AvgIQ }},
		{"LQ", func(r ltp.RunResult) float64 { return r.AvgLQ }},
		{"SQ", func(r ltp.RunResult) float64 { return r.AvgSQ }},
	} {
		use.Rows = append(use.Rows, RowData{Label: m.name, Cells: []float64{
			groupVals("IQ:256", g.Sensitive, m.get),
			groupVals("IQ:256", g.Insensitive, m.get),
		}})
	}
	return []*Table{cpi, out, use}
}

// Fig3 reproduces the Figure 3 scenario quantitatively: on the paper's own
// example loop (the `indirect` kernel) with a tiny 8-entry IQ, LTP keeps
// Non-Ready instructions out of the IQ, raising MLP.
func (s *Suite) Fig3() *Table {
	pc := limitConfig(8, pipeline.Inf, pipeline.Inf, pipeline.Inf)
	jobs := []job{
		{key: "fig3/noltp", wlName: "indirect", pcfg: pc},
		{key: "fig3/ltp", wlName: "indirect", pcfg: pc,
			useLTP: true, lcfg: ltpLimitCfg(core.ModeNRNU), oracle: true},
	}
	res := s.runAll(jobs)
	t := &Table{Title: "Figure 3: tiny-IQ behaviour on the example loop (indirect)",
		Cols: []string{"CPI", "MLP", "avgIQ"}}
	t.Rows = append(t.Rows,
		RowData{Label: "traditional IQ(8)", Cells: []float64{res[0].CPI, res[0].MLP, res[0].AvgIQ}},
		RowData{Label: "IQ(8)+LTP", Cells: []float64{res[1].CPI, res[1].MLP, res[1].AvgIQ}})
	t.Notes = append(t.Notes,
		"the paper's Fig. 3 is a worked example: with LTP the IQ holds ready work instead of stalled NR instructions")
	return t
}

// fig6Panels returns the four panels of Figure 6: the two featured
// checkpoints (astar-like, milc-like) and the two group averages.
func (s *Suite) fig6Panels() []struct {
	Name string
	Wls  []string
} {
	g := s.Classify()
	return []struct {
		Name string
		Wls  []string
	}{
		{"chains(astar-like)", []string{"chains"}},
		{"fpstream(milc-like)", []string{"fpstream"}},
		{"mlp-sensitive", g.Sensitive},
		{"mlp-insensitive", g.Insensitive},
	}
}

// fig6Row describes one resource sweep of Figure 6.
type fig6Row struct {
	Name     string
	Sizes    []int
	BaseSize int
	Cfg      func(size int) pipeline.Config
}

func fig6Rows() []fig6Row {
	inf := pipeline.Inf
	return []fig6Row{
		{"IQ", []int{inf, 128, 64, 32, 16}, 64,
			func(n int) pipeline.Config { return limitConfig(n, inf, inf, inf) }},
		{"RF", []int{inf, 128, 96, 64, 32}, 128,
			func(n int) pipeline.Config { return limitConfig(inf, n, inf, inf) }},
		{"LQ", []int{inf, 64, 32, 16, 8}, 64,
			func(n int) pipeline.Config { return limitConfig(inf, inf, n, inf) }},
		{"SQ", []int{inf, 64, 32, 16, 8}, 32,
			func(n int) pipeline.Config { return limitConfig(inf, inf, inf, n) }},
	}
}

// fig6Configs are the four lines of each Figure 6 plot.
var fig6Configs = []struct {
	Name string
	LTP  bool
	Mode core.Mode
}{
	{"NoLTP", false, core.ModeOff},
	{"LTP(NR)", true, core.ModeNR},
	{"LTP(NU)", true, core.ModeNU},
	{"LTP(NR+NU)", true, core.ModeNRNU},
}

// Fig6 runs the limit study: for each resource (IQ, RF, LQ, SQ), sweep its
// size with everything else unlimited, for the four parking configurations
// with oracle classification and an unlimited LTP. Values are percent
// performance versus the no-LTP run at the baseline (underlined) size,
// exactly as the paper normalizes.
func (s *Suite) Fig6() []*Table {
	panels := s.fig6Panels()
	rows := fig6Rows()

	var tables []*Table
	for _, row := range rows {
		for _, panel := range panels {
			// Schedule all runs of this (row, panel).
			var jobs []job
			type ref struct{ cfgI, sizeI, wlI int }
			var refs []ref
			for ci, c := range fig6Configs {
				for si, size := range row.Sizes {
					for wi, wl := range panel.Wls {
						j := job{
							key:    fmt.Sprintf("fig6/%s/%s/%d/%s", row.Name, c.Name, size, wl),
							wlName: wl, pcfg: row.Cfg(size),
							useLTP: c.LTP, lcfg: ltpLimitCfg(c.Mode), oracle: c.LTP,
						}
						jobs = append(jobs, j)
						refs = append(refs, ref{ci, si, wi})
					}
				}
			}
			res := s.runAll(jobs)

			// Index results.
			cyc := make([][][]uint64, len(fig6Configs))
			for ci := range cyc {
				cyc[ci] = make([][]uint64, len(row.Sizes))
				for si := range cyc[ci] {
					cyc[ci][si] = make([]uint64, len(panel.Wls))
				}
			}
			for k, r := range refs {
				cyc[r.cfgI][r.sizeI][r.wlI] = res[k].Cycles
			}
			// Baseline: NoLTP at the underlined size.
			baseSizeIdx := -1
			for si, v := range row.Sizes {
				if v == row.BaseSize {
					baseSizeIdx = si
				}
			}

			t := &Table{
				Title: fmt.Sprintf("Figure 6 [%s sweep, panel %s]: perf %% vs NoLTP %s:%d",
					row.Name, panel.Name, row.Name, row.BaseSize),
			}
			for _, size := range row.Sizes {
				t.Cols = append(t.Cols, row.Name+":"+sizeLabel(size))
			}
			for ci, c := range fig6Configs {
				r := RowData{Label: c.Name}
				for si := range row.Sizes {
					ratios := make([]float64, len(panel.Wls))
					for wi := range panel.Wls {
						base := float64(cyc[0][baseSizeIdx][wi])
						ratios[wi] = base / float64(cyc[ci][si][wi])
					}
					r.Cells = append(r.Cells, (geomeanRatio(ratios)-1)*100)
				}
				t.Rows = append(t.Rows, r)
			}
			s.logf("fig6: %s / %s done", row.Name, panel.Name)
			tables = append(tables, t)
		}
	}
	return tables
}

// Fig7 reports average LTP occupancy by resource type and the enabled
// fraction, for the NR / NU / NR+NU designs on an IQ:32 / RF:96 core.
func (s *Suite) Fig7() []*Table {
	panels := s.fig6Panels()
	modes := []core.Mode{core.ModeNR, core.ModeNU, core.ModeNRNU}

	var jobs []job
	for _, panel := range panels {
		for _, m := range modes {
			for _, wl := range panel.Wls {
				pc := limitConfig(32, 96, pipeline.DefaultConfig().LQSize, pipeline.DefaultConfig().SQSize)
				jobs = append(jobs, job{
					key: fmt.Sprintf("fig7/%s/%s", m, wl), wlName: wl, pcfg: pc,
					useLTP: true, lcfg: ltpLimitCfg(m), oracle: true,
				})
			}
		}
	}
	res := s.runAll(jobs)

	metrics := []struct {
		name string
		get  func(r ltp.RunResult) float64
	}{
		{"insts in LTP", func(r ltp.RunResult) float64 { return r.LTP.AvgInsts }},
		{"regs in LTP", func(r ltp.RunResult) float64 { return r.LTP.AvgRegs }},
		{"loads in LTP", func(r ltp.RunResult) float64 { return r.LTP.AvgLoads }},
		{"stores in LTP", func(r ltp.RunResult) float64 { return r.LTP.AvgStores }},
		{"enabled %", func(r ltp.RunResult) float64 { return r.LTP.EnabledFrac * 100 }},
	}

	var tables []*Table
	k := 0
	for _, panel := range panels {
		t := &Table{Title: "Figure 7 [" + panel.Name + "]: LTP utilization"}
		for _, m := range modes {
			t.Cols = append(t.Cols, m.String())
		}
		cells := make(map[string][]float64)
		for _, m := range modes {
			vals := make(map[string][]float64)
			for range panel.Wls {
				r := res[k]
				k++
				for _, met := range metrics {
					vals[met.name] = append(vals[met.name], met.get(r))
				}
			}
			_ = m
			for _, met := range metrics {
				cells[met.name] = append(cells[met.name], mean(vals[met.name]))
			}
		}
		for _, met := range metrics {
			t.Rows = append(t.Rows, RowData{Label: met.name, Cells: cells[met.name]})
		}
		tables = append(tables, t)
	}
	return tables
}

// realisticLTP returns the §5 implementation: NU-only with a finite UIT
// and LL predictor.
func realisticLTP(entries, ports int) core.Config {
	c := core.DefaultConfig()
	c.Entries = entries
	c.Ports = ports
	return c
}

// Fig10 evaluates the realistic design: performance and IQ/RF ED²P versus
// LTP entries {inf,128,64,32,16} and ports {1,2,4,8} for the LTP/IQ:32/
// RF:96 design relative to the IQ:64/RF:128 baseline, with the no-LTP
// IQ:32/RF:96 point as the paper's red line.
func (s *Suite) Fig10() []*Table {
	g := s.Classify()
	panels := []struct {
		Name string
		Wls  []string
	}{
		{"mlp-sensitive", g.Sensitive},
		{"mlp-insensitive", g.Insensitive},
	}
	entriesSweep := []int{0, 128, 64, 32, 16} // 0 = unlimited
	portsSweep := []int{1, 2, 4, 8}

	var tables []*Table
	for _, panel := range panels {
		var jobs []job
		type ref struct{ kind, ei, pi, wi int }
		var refs []ref
		for wi, wl := range panel.Wls {
			jobs = append(jobs, job{key: "fig10/base/" + wl, wlName: wl,
				pcfg: realisticConfig(64, 128)})
			refs = append(refs, ref{0, 0, 0, wi})
			jobs = append(jobs, job{key: "fig10/red/" + wl, wlName: wl,
				pcfg: realisticConfig(32, 96)})
			refs = append(refs, ref{1, 0, 0, wi})
			for ei, entries := range entriesSweep {
				for pi, ports := range portsSweep {
					jobs = append(jobs, job{
						key:    fmt.Sprintf("fig10/%d/%d/%s", entries, ports, wl),
						wlName: wl, pcfg: realisticConfig(32, 96),
						useLTP: true, lcfg: realisticLTP(entries, ports),
					})
					refs = append(refs, ref{2, ei, pi, wi})
				}
			}
		}
		res := s.runAll(jobs)

		type cell struct {
			perfRatios []float64
			ed2pRatios []float64
		}
		base := make([]ltp.RunResult, len(panel.Wls))
		red := make([]ltp.RunResult, len(panel.Wls))
		grid := make([][][]ltp.RunResult, len(entriesSweep))
		for ei := range grid {
			grid[ei] = make([][]ltp.RunResult, len(portsSweep))
			for pi := range grid[ei] {
				grid[ei][pi] = make([]ltp.RunResult, len(panel.Wls))
			}
		}
		for k, r := range refs {
			switch r.kind {
			case 0:
				base[r.wi] = res[k]
			case 1:
				red[r.wi] = res[k]
			default:
				grid[r.ei][r.pi][r.wi] = res[k]
			}
		}

		agg := func(rs []ltp.RunResult) cell {
			var c cell
			for wi, r := range rs {
				b := base[wi]
				c.perfRatios = append(c.perfRatios, float64(b.Cycles)/float64(r.Cycles))
				e := energy.ED2P(r.Energy.IQRF, r.Cycles) / energy.ED2P(b.Energy.IQRF, b.Cycles)
				c.ed2pRatios = append(c.ed2pRatios, e)
			}
			return c
		}

		perf := &Table{Title: "Figure 10 [" + panel.Name + "]: perf % vs base IQ:64/RF:128"}
		ed2p := &Table{Title: "Figure 10 [" + panel.Name + "]: IQ/RF ED2P % vs base IQ:64/RF:128"}
		for _, e := range entriesSweep {
			lbl := "LTP:inf"
			if e > 0 {
				lbl = fmt.Sprintf("LTP:%d", e)
			}
			perf.Cols = append(perf.Cols, lbl)
			ed2p.Cols = append(ed2p.Cols, lbl)
		}
		for pi, ports := range portsSweep {
			pr := RowData{Label: fmt.Sprintf("%dp", ports)}
			er := RowData{Label: fmt.Sprintf("%dp", ports)}
			for ei := range entriesSweep {
				c := agg(grid[ei][pi])
				pr.Cells = append(pr.Cells, (geomeanRatio(c.perfRatios)-1)*100)
				er.Cells = append(er.Cells, (geomeanRatio(c.ed2pRatios)-1)*100)
			}
			perf.Rows = append(perf.Rows, pr)
			ed2p.Rows = append(ed2p.Rows, er)
		}
		// The red line: IQ 32 / RF 96 without LTP.
		c := agg(red)
		perf.Rows = append(perf.Rows, RowData{Label: "no-LTP 32/96 (red)",
			Cells: repeat((geomeanRatio(c.perfRatios)-1)*100, len(entriesSweep))})
		ed2p.Rows = append(ed2p.Rows, RowData{Label: "no-LTP 32/96 (red)",
			Cells: repeat((geomeanRatio(c.ed2pRatios)-1)*100, len(entriesSweep))})
		tables = append(tables, perf, ed2p)
		s.logf("fig10: %s done", panel.Name)
	}
	return tables
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Fig11 sweeps the number of Non-Ready tickets for the NR+NU realistic
// design (128-entry, 4-port LTP), against the no-LTP 32/96 point (red) and
// the NU-only 128/4 design (green).
func (s *Suite) Fig11() []*Table {
	g := s.Classify()
	panels := []struct {
		Name string
		Wls  []string
	}{
		{"mlp-sensitive", g.Sensitive},
		{"mlp-insensitive", g.Insensitive},
	}
	tickets := []int{128, 64, 32, 16, 8, 4}

	var tables []*Table
	for _, panel := range panels {
		var jobs []job
		type ref struct{ kind, ti, wi int }
		var refs []ref
		for wi, wl := range panel.Wls {
			jobs = append(jobs, job{key: "fig10/base/" + wl, wlName: wl,
				pcfg: realisticConfig(64, 128)})
			refs = append(refs, ref{0, 0, wi})
			jobs = append(jobs, job{key: "fig10/red/" + wl, wlName: wl,
				pcfg: realisticConfig(32, 96)})
			refs = append(refs, ref{1, 0, wi})
			jobs = append(jobs, job{key: "fig10/128/4/" + wl, wlName: wl,
				pcfg:   realisticConfig(32, 96),
				useLTP: true, lcfg: realisticLTP(128, 4)})
			refs = append(refs, ref{2, 0, wi})
			for ti, tk := range tickets {
				lc := realisticLTP(128, 4)
				lc.Mode = core.ModeNRNU
				lc.Tickets = tk
				jobs = append(jobs, job{
					key:    fmt.Sprintf("fig11/%d/%s", tk, wl),
					wlName: wl, pcfg: realisticConfig(32, 96), useLTP: true, lcfg: lc,
				})
				refs = append(refs, ref{3, ti, wi})
			}
		}
		res := s.runAll(jobs)

		base := make([]uint64, len(panel.Wls))
		red := make([]uint64, len(panel.Wls))
		green := make([]uint64, len(panel.Wls))
		grid := make([][]uint64, len(tickets))
		for i := range grid {
			grid[i] = make([]uint64, len(panel.Wls))
		}
		for k, r := range refs {
			switch r.kind {
			case 0:
				base[r.wi] = res[k].Cycles
			case 1:
				red[r.wi] = res[k].Cycles
			case 2:
				green[r.wi] = res[k].Cycles
			default:
				grid[r.ti][r.wi] = res[k].Cycles
			}
		}
		perfPct := func(cycles []uint64) float64 {
			ratios := make([]float64, len(cycles))
			for i := range cycles {
				ratios[i] = float64(base[i]) / float64(cycles[i])
			}
			return (geomeanRatio(ratios) - 1) * 100
		}

		t := &Table{Title: "Figure 11 [" + panel.Name + "]: perf % vs base IQ:64/RF:128 by #tickets"}
		row := RowData{Label: "LTP(NR+NU)"}
		for _, tk := range tickets {
			t.Cols = append(t.Cols, fmt.Sprintf("%d", tk))
		}
		for ti := range tickets {
			row.Cells = append(row.Cells, perfPct(grid[ti]))
		}
		t.Rows = append(t.Rows, row)
		t.Rows = append(t.Rows, RowData{Label: "no-LTP 32/96 (red)", Cells: repeat(perfPct(red), len(tickets))})
		t.Rows = append(t.Rows, RowData{Label: "LTP(NU) 128/4p (green)", Cells: repeat(perfPct(green), len(tickets))})
		tables = append(tables, t)
		s.logf("fig11: %s done", panel.Name)
	}
	return tables
}

// UITSweep quantifies §5.6's UIT-size sensitivity on the MLP-sensitive
// group: unlimited vs 512/256/128/64 entries.
func (s *Suite) UITSweep() *Table {
	g := s.Classify()
	// The paper sweeps 128..unlimited and loses ~4 points at 128; our
	// kernels have far smaller static code footprints than SPEC (tens of
	// PCs, not thousands), so the sweep extends down to 4 entries to
	// reach the capacity-conflict regime.
	sizes := []int{0, 256, 64, 16, 8, 4} // 0 = unlimited

	var jobs []job
	for _, wl := range g.Sensitive {
		jobs = append(jobs, job{key: "fig10/base/" + wl, wlName: wl,
			pcfg: realisticConfig(64, 128)})
		for _, sz := range sizes {
			lc := realisticLTP(128, 4)
			lc.UITEntries = sz
			jobs = append(jobs, job{
				key:    fmt.Sprintf("uit/%d/%s", sz, wl),
				wlName: wl, pcfg: realisticConfig(32, 96), useLTP: true, lcfg: lc,
			})
		}
	}
	res := s.runAll(jobs)

	t := &Table{Title: "UIT size sweep (§5.6) [mlp-sensitive]: perf % vs base IQ:64/RF:128"}
	per := len(sizes) + 1
	row := RowData{Label: "LTP(NU) 128/4p"}
	for si, sz := range sizes {
		lbl := "UIT:inf"
		if sz > 0 {
			lbl = fmt.Sprintf("UIT:%d", sz)
		}
		t.Cols = append(t.Cols, lbl)
		var ratios []float64
		for wi := range g.Sensitive {
			base := res[wi*per].Cycles
			r := res[wi*per+1+si].Cycles
			ratios = append(ratios, float64(base)/float64(r))
		}
		row.Cells = append(row.Cells, (geomeanRatio(ratios)-1)*100)
	}
	t.Rows = append(t.Rows, row)
	return t
}

// GroupsTable renders the §4.1 classification with its criteria values.
func (s *Suite) GroupsTable() *Table {
	g := s.Classify()
	t := &Table{Title: "Workload classification (§4.1 criteria)",
		Cols: []string{"speedup%", "MLP gain%", "loadLat", "sensitive"}}
	for _, name := range append(append([]string{}, g.Sensitive...), g.Insensitive...) {
		d := g.Detail[name]
		sens := 0.0
		if d.Sensitive {
			sens = 1
		}
		t.Rows = append(t.Rows, RowData{Label: name,
			Cells: []float64{d.SpeedupPct, d.MLPGainPct, d.AvgLoadLat, sens}})
	}
	return t
}
