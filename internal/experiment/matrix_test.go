package experiment

import (
	"strings"
	"testing"
)

// tinyMatrixSuite keeps the end-to-end matrix test inside the -short
// budget.
func tinyMatrixSuite() *Suite {
	s := NewSuite(0.05, 2_000, 6_000)
	s.Quiet = true
	s.Parallelism = 4
	return s
}

// TestSuiteMatrixEndToEnd runs a two-family matrix through the suite
// entry point and sanity-checks the rendered table: header, one row
// per scenario × config, and the CI note. Under `go test -race` this
// doubles as race coverage of the campaign path the CLI uses.
func TestSuiteMatrixEndToEnd(t *testing.T) {
	s := tinyMatrixSuite()
	tab, err := s.Matrix([]string{"branchy", "gemmblock"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Title, "2 scenario(s) x 3 config(s), 2 seed(s)") {
		t.Errorf("title drifted: %q", tab.Title)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Cells) != len(tab.Cols) {
			t.Errorf("row %q has %d cells, want %d", r.Label, len(r.Cells), len(tab.Cols))
		}
		if cpi := r.Cells[0]; cpi <= 0 {
			t.Errorf("row %q CPI %v", r.Label, cpi)
		}
	}
	if got := tab.String(); !strings.Contains(got, "95% CI") {
		t.Error("CI note missing from rendering")
	}

	if _, err := s.Matrix([]string{"nope"}, 2); err == nil {
		t.Error("unknown scenario accepted")
	}
}
