package experiment

import "ltp/internal/core"

// ablationVariant describes one design-choice ablation of the realistic
// LTP (128 entries, 4 ports, NU-only unless stated).
type ablationVariant struct {
	Name string
	Mut  func(*core.Config)
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		{"paper design (proximity)", func(*core.Config) {}},
		{"eager wakeup", func(c *core.Config) { c.Wake = core.WakeEager }},
		{"lazy wakeup", func(c *core.Config) { c.Wake = core.WakeLazy }},
		{"no urgent escape", func(c *core.Config) { c.DisableUrgentEscape = true }},
		{"monitor always on", func(c *core.Config) { c.MonitorForceOn = true }},
		{"1 port", func(c *core.Config) { c.Ports = 1 }},
		{"tiny UIT (8)", func(c *core.Config) { c.UITEntries = 8 }},
	}
}

// Ablation quantifies the design choices DESIGN.md calls out: the ROB-
// proximity wakeup policy, the urgent-escape rule for the parked bit, the
// DRAM-timer monitor, port count, and UIT sizing. Reported as percent
// performance versus the IQ:64/RF:128 baseline on the MLP-sensitive group
// (the regime where the choices bind).
func (s *Suite) Ablation() *Table {
	g := s.Classify()
	variants := ablationVariants()

	var jobs []job
	for _, wl := range g.Sensitive {
		jobs = append(jobs, job{key: "fig10/base/" + wl, wlName: wl,
			pcfg: realisticConfig(64, 128)})
		for vi, v := range variants {
			lc := realisticLTP(128, 4)
			v.Mut(&lc)
			jobs = append(jobs, job{
				key:    "abl/" + v.Name + "/" + wl,
				wlName: wl, pcfg: realisticConfig(32, 96), useLTP: true, lcfg: lc,
			})
			_ = vi
		}
	}
	res := s.runAll(jobs)

	per := len(variants) + 1
	t := &Table{Title: "Ablations [mlp-sensitive]: perf % vs base IQ:64/RF:128",
		Cols: []string{"perf %"}}
	for vi, v := range variants {
		var ratios []float64
		for wi := range g.Sensitive {
			base := res[wi*per].Cycles
			r := res[wi*per+1+vi].Cycles
			ratios = append(ratios, float64(base)/float64(r))
		}
		t.Rows = append(t.Rows, RowData{Label: v.Name,
			Cells: []float64{(geomeanRatio(ratios) - 1) * 100}})
	}
	t.Notes = append(t.Notes,
		"eager wakeup defeats late allocation (registers re-pressured); lazy wakeup risks commit stalls",
		"no urgent escape reproduces the loop-carried parked-bit cascade that serializes misses")
	return t
}
