package experiment

// The microarchitectural-frontier experiment: the branch-predictor ×
// prefetcher cross on branch- and memory-bound scenarios, and the
// shared-hierarchy contention study (solo versus a memhog co-runner,
// LTP off versus on). Both tables run through the generalized sweep
// axes (RunSpec.BranchPred / Prefetcher / Corunners), so every cell is
// content-addressed exactly like a service-submitted campaign cell.

import (
	"fmt"

	"ltp"
	"ltp/internal/sched"
)

// Microarch produces the predictor × prefetcher cross and the
// co-runner contention comparison.
func (s *Suite) Microarch() []*Table {
	preds := ltp.BranchPredictors()
	prefs := ltp.Prefetchers()
	scenarios := []string{"branchy", "hashjoin", "ptrchase"}

	type mj struct {
		spec ltp.RunSpec
	}
	var jobs []mj
	base := func(scenario string) ltp.RunSpec {
		return ltp.RunSpec{
			Scenario:  scenario,
			Scale:     s.Scale,
			WarmInsts: s.WarmInsts,
			WarmMode:  s.WarmMode,
			MaxInsts:  s.DetailInsts,
			Backend:   s.Backend,
			Intervals: s.Intervals,
		}
	}
	for _, scn := range scenarios {
		for _, bp := range preds {
			for _, pf := range prefs {
				spec := base(scn)
				spec.BranchPred = bp
				spec.Prefetcher = pf
				jobs = append(jobs, mj{spec: spec})
			}
		}
	}

	// Contention grid: {solo, +memhog} × {no LTP, LTP NU}, on the
	// memory-bound chase scenario where parking matters most.
	hog := []ltp.Corunner{{Scenario: "memhog"}}
	for _, withHog := range []bool{false, true} {
		for _, useLTP := range []bool{false, true} {
			spec := base("ptrchase")
			spec.UseLTP = useLTP
			if withHog {
				spec.Corunners = hog
			}
			jobs = append(jobs, mj{spec: spec})
		}
	}

	out := make([]ltp.RunResult, len(jobs))
	sched.Run(s.Parallelism, len(jobs),
		func(i int) float64 { return 1 },
		func(i int) { out[i] = ltp.MustRun(jobs[i].spec) })

	var tables []*Table
	i := 0
	for _, scn := range scenarios {
		t := &Table{Title: fmt.Sprintf("predictor x prefetcher CPI [%s]", scn)}
		t.Cols = append(t.Cols, prefs...)
		for _, bp := range preds {
			row := RowData{Label: bp}
			for range prefs {
				r := out[i]
				i++
				row.Cells = append(row.Cells, r.CPI)
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}

	ct := &Table{Title: "shared-hierarchy contention [ptrchase]: CPI solo vs +memhog co-runner"}
	ct.Cols = []string{"no LTP", "LTP(NU)"}
	for _, label := range []string{"solo", "+memhog"} {
		row := RowData{Label: label}
		row.Cells = append(row.Cells, out[i].CPI, out[i+1].CPI)
		i += 2
		ct.Rows = append(ct.Rows, row)
	}
	tables = append(tables, ct)
	return tables
}
