package experiment

// The scenario-matrix campaign surface: Suite.Matrix runs ltp.RunMatrix
// with the suite's budgets and renders the aggregate as a mean ± 95% CI
// table — the campaign's answer to single-seed figure points.

import (
	"fmt"

	"ltp"
)

// Matrix runs the scenario-matrix campaign (scenarios × configs ×
// seeds; empty scenarios = every family, seeds <= 0 = 3) with the
// suite's budgets and returns the rendered table.
func (s *Suite) Matrix(scenarios []string, seeds int) (*Table, error) {
	res, err := ltp.RunMatrix(ltp.MatrixSpec{
		Scenarios:   scenarios,
		Seeds:       seeds,
		Scale:       s.Scale,
		WarmInsts:   s.WarmInsts,
		DetailInsts: s.DetailInsts,
		WarmMode:    s.WarmMode,
		Parallelism: s.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	s.logf("matrix: %d scenario(s) x %d config(s) x %d seed(s)",
		len(res.Scenarios), len(res.Configs), res.Seeds)
	return MatrixTable(res), nil
}

// MatrixTable renders a finished matrix as one row per scenario ×
// config with mean and ±95% CI columns. A CI column of 0.00 with
// n >= 2 means the metric is seed-invariant; CI columns are the whole
// point of the matrix — single-seed campaigns cannot distinguish a
// real effect from seed luck.
func MatrixTable(res *ltp.MatrixResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Scenario matrix: %d scenario(s) x %d config(s), %d seed(s) per cell",
			len(res.Scenarios), len(res.Configs), res.Seeds),
		Cols: []string{"CPI", "CPI ±95", "IPC", "MLP", "loadLat", "parked", "parked ±95"},
	}
	for _, scn := range res.Scenarios {
		for _, cfg := range res.Configs {
			c := res.Cell(scn, cfg)
			if c == nil {
				continue
			}
			t.Rows = append(t.Rows, RowData{
				Label: scn + " " + cfg,
				Cells: []float64{
					c.CPI.Mean, c.CPI.CI95,
					c.IPC.Mean, c.MLP.Mean, c.AvgLoadLat.Mean,
					c.Parked.Mean, c.Parked.CI95,
				},
			})
		}
	}
	t.Notes = append(t.Notes,
		"mean ± half-width of the 95% CI (Student-t) over seed replicates",
		"parked is the time-average of LTP-parked instructions (0 without LTP)")
	return t
}
