package experiment

// The scenario-matrix campaign surface: Suite.Matrix runs ltp.RunMatrix
// with the suite's budgets and renders the aggregate as a mean ± 95% CI
// table — the campaign's answer to single-seed figure points.

import (
	"context"
	"fmt"
	"strings"

	"ltp"
)

// Matrix runs the scenario-matrix campaign (scenarios × configs ×
// seeds; empty scenarios = every family, seeds <= 0 = 3) with the
// suite's budgets and returns the rendered table.
func (s *Suite) Matrix(scenarios []string, seeds int) (*Table, error) {
	res, err := ltp.RunMatrix(ltp.MatrixSpec{
		Scenarios:   scenarios,
		Seeds:       seeds,
		Scale:       s.Scale,
		WarmInsts:   s.WarmInsts,
		DetailInsts: s.DetailInsts,
		WarmMode:    s.WarmMode,
		Backend:     s.Backend,
		Parallelism: s.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	s.logf("matrix: %d scenario(s) x %d config(s) x %d seed(s)",
		len(res.Scenarios), len(res.Configs), res.Seeds)
	return MatrixTable(res), nil
}

// TriageMatrix runs the scenario matrix as a two-phase fidelity-triage
// sweep: the model backend estimates every cell, the topK best
// (lowest estimated mean CPI) cells re-run cycle-accurately, and both
// phases render as tables — the estimates with their backend column,
// the detailed selection below.
func (s *Suite) TriageMatrix(scenarios []string, seeds, topK int) ([]*Table, error) {
	sweep, err := ltp.NewMatrixSweep(ltp.MatrixSpec{
		Scenarios:   scenarios,
		Seeds:       seeds,
		Scale:       s.Scale,
		WarmInsts:   s.WarmInsts,
		DetailInsts: s.DetailInsts,
		WarmMode:    s.WarmMode,
	})
	if err != nil {
		return nil, err
	}
	sweep.Triage = &ltp.TriageSpec{TopK: topK}
	// Honour the suite's parallelism bound: a capped suite gets its own
	// engine sized to it; otherwise the shared process-wide engine.
	submit := ltp.Submit
	if s.Parallelism > 0 {
		e, err := ltp.NewEngine(ltp.EngineConfig{Parallelism: s.Parallelism})
		if err != nil {
			return nil, err
		}
		defer e.Close()
		submit = e.Submit
	}
	job, err := submit(context.Background(), sweep)
	if err != nil {
		return nil, err
	}
	res, err := job.Wait()
	if err != nil {
		return nil, err
	}
	s.logf("triage: %d cells estimated on the model backend, top %d re-run cycle-accurately",
		len(res.Cells), topK)
	return []*Table{
		sweepCellTable(fmt.Sprintf("Triage estimates (model backend): %d cells", len(res.Cells)), res.Cells),
		sweepCellTable(fmt.Sprintf("Detailed top-%d (cycle backend)", topK), res.Triage.Detailed),
	}, nil
}

// sweepCellTable renders sweep cells as a mean ± CI table, one row per
// cell in cell order.
func sweepCellTable(title string, cells []ltp.SweepCell) *Table {
	t := &Table{
		Title: title,
		Cols:  []string{"CPI", "CPI ±95", "IPC", "MLP", "loadLat", "parked", "parked ±95"},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, RowData{
			Label: strings.Join(c.Coords, " "),
			Cells: []float64{
				c.CPI.Mean, c.CPI.CI95,
				c.IPC.Mean, c.MLP.Mean, c.AvgLoadLat.Mean,
				c.Parked.Mean, c.Parked.CI95,
			},
		})
	}
	return t
}

// MatrixTable renders a finished matrix as one row per scenario ×
// config with mean and ±95% CI columns. A CI column of 0.00 with
// n >= 2 means the metric is seed-invariant; CI columns are the whole
// point of the matrix — single-seed campaigns cannot distinguish a
// real effect from seed luck.
func MatrixTable(res *ltp.MatrixResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Scenario matrix: %d scenario(s) x %d config(s), %d seed(s) per cell",
			len(res.Scenarios), len(res.Configs), res.Seeds),
		Cols: []string{"CPI", "CPI ±95", "IPC", "MLP", "loadLat", "parked", "parked ±95"},
	}
	for _, scn := range res.Scenarios {
		for _, cfg := range res.Configs {
			c := res.Cell(scn, cfg)
			if c == nil {
				continue
			}
			t.Rows = append(t.Rows, RowData{
				Label: scn + " " + cfg,
				Cells: []float64{
					c.CPI.Mean, c.CPI.CI95,
					c.IPC.Mean, c.MLP.Mean, c.AvgLoadLat.Mean,
					c.Parked.Mean, c.Parked.CI95,
				},
			})
		}
	}
	t.Notes = append(t.Notes,
		"mean ± half-width of the 95% CI (Student-t) over seed replicates",
		"parked is the time-average of LTP-parked instructions (0 without LTP)")
	return t
}
