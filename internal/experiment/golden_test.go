package experiment

import (
	"math"
	"strings"
	"testing"

	"ltp"
	"ltp/internal/stats"
)

// TestTableStringGolden pins the exact rendering of Table.String() —
// column alignment, the 2-decimal/integer split at |v| >= 1000, the "-"
// for NaN/Inf cells, and note lines — so refactors of the renderer cannot
// silently corrupt every paper table at once.
func TestTableStringGolden(t *testing.T) {
	tab := &Table{
		Title: "golden demo",
		Cols:  []string{"CPI", "MLP", "perf%"},
		Rows: []RowData{
			{Label: "baseline", Cells: []float64{1.5, 12.25, -45.53}},
			{Label: "big", Cells: []float64{2000, 999.994, 0}},
			{Label: "weird", Cells: []float64{math.NaN(), math.Inf(1), -0.005}},
		},
		Notes: []string{"first note", "second note"},
	}
	want := strings.Join([]string{
		"## golden demo",
		"                                     CPI           MLP         perf%",
		"baseline                            1.50         12.25        -45.53",
		"big                                 2000        999.99          0.00",
		"weird                                  -             -         -0.01",
		"note: first note",
		"note: second note",
		"",
	}, "\n")
	if got := tab.String(); got != want {
		t.Errorf("Table.String() drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestTable1Golden pins the full Table 1 text: it is generated from the
// default configuration with no simulation, so any drift means either the
// baseline config or the renderer changed — both must be deliberate.
func TestTable1Golden(t *testing.T) {
	want := `## Table 1: Baseline processor configuration
Frequency                  3.4 GHz (cycle-accurate; absolute time not modelled)
Width F/D/R/I/W/C          8 / 8 / 8 / 6 / 8 / 8
ROB / IQ / LQ / SQ         256 / 64 / 64 / 32
Int / FP registers         128 / 128 (available, beyond architectural)
L1I / L1D                  32 kB, 64 B, 8-way, LRU, 4 cycles
L2 unified                 256 kB, 64 B, 8-way, LRU, 12 cycles + stride prefetcher degree 4
L3 shared                  1 MB, 64 B, 16-way, LRU, 36 cycles
DRAM                       200 cycles (DDR3-1600 11-11-11 class)
LTP proposal               IQ 32, RF 96, 128-entry 4-port queue LTP, 256-entry UIT
`
	if got := Table1(); got != want {
		t.Errorf("Table1() drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestMatrixTableGolden pins the scenario-matrix rendering (row order,
// the mean ± CI column pairing, and the notes) against a hand-built
// MatrixResult, so campaign output and EXPERIMENTS.md snippets cannot
// drift silently.
func TestMatrixTableGolden(t *testing.T) {
	sum := func(mean, ci float64) stats.Summary {
		return stats.Summary{N: 3, Mean: mean, CI95: ci}
	}
	res := &ltp.MatrixResult{
		Scenarios: []string{"hashjoin", "ptrchase"},
		Configs:   []string{"IQ64", "IQ32+LTP"},
		Seeds:     3,
		Cells: []ltp.MatrixCell{
			{Scenario: "hashjoin", Config: "IQ64", CPI: sum(2.5, 0.125), IPC: sum(0.4, 0.02), MLP: sum(3.25, 0.1), AvgLoadLat: sum(85, 4), Parked: sum(0, 0)},
			{Scenario: "hashjoin", Config: "IQ32+LTP", CPI: sum(2.75, 0.25), IPC: sum(0.36, 0.03), MLP: sum(3, 0.2), AvgLoadLat: sum(90, 5), Parked: sum(41.5, 2.5)},
			{Scenario: "ptrchase", Config: "IQ64", CPI: sum(6, 0), IPC: sum(0.17, 0), MLP: sum(7.5, 0.5), AvgLoadLat: sum(150, 10), Parked: sum(0, 0)},
			{Scenario: "ptrchase", Config: "IQ32+LTP", CPI: sum(6.25, 0.5), IPC: sum(0.16, 0.01), MLP: sum(7, 0.25), AvgLoadLat: sum(155, 12), Parked: sum(60.25, 3.125)},
		},
	}
	want := strings.Join([]string{
		"## Scenario matrix: 2 scenario(s) x 2 config(s), 3 seed(s) per cell",
		"                                     CPI       CPI ±95           IPC           MLP       loadLat        parked    parked ±95",
		"hashjoin IQ64                       2.50          0.12          0.40          3.25         85.00          0.00          0.00",
		"hashjoin IQ32+LTP                   2.75          0.25          0.36          3.00         90.00         41.50          2.50",
		"ptrchase IQ64                       6.00          0.00          0.17          7.50        150.00          0.00          0.00",
		"ptrchase IQ32+LTP                   6.25          0.50          0.16          7.00        155.00         60.25          3.12",
		"note: mean ± half-width of the 95% CI (Student-t) over seed replicates",
		"note: parked is the time-average of LTP-parked instructions (0 without LTP)",
		"",
	}, "\n")
	if got := MatrixTable(res).String(); got != want {
		t.Errorf("MatrixTable rendering drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestFigureTableShapes locks the titles, column sets and row labels the
// figure generators emit, without depending on simulated values: the
// bench harness and EXPERIMENTS.md both parse these by position.
func TestFigureTableShapes(t *testing.T) {
	s := tinySuite()

	fig3 := s.Fig3()
	if fig3.Title != "Figure 3: tiny-IQ behaviour on the example loop (indirect)" {
		t.Errorf("fig3 title drifted: %q", fig3.Title)
	}
	if got := strings.Join(fig3.Cols, ","); got != "CPI,MLP,avgIQ" {
		t.Errorf("fig3 cols drifted: %q", got)
	}
	if fig3.Rows[0].Label != "traditional IQ(8)" || fig3.Rows[1].Label != "IQ(8)+LTP" {
		t.Errorf("fig3 row labels drifted: %q, %q", fig3.Rows[0].Label, fig3.Rows[1].Label)
	}
	if len(fig3.Notes) != 1 {
		t.Errorf("fig3 notes drifted: %v", fig3.Notes)
	}

	groups := s.GroupsTable()
	if got := strings.Join(groups.Cols, ","); got != "speedup%,MLP gain%,loadLat,sensitive" {
		t.Errorf("groups cols drifted: %q", got)
	}
	if len(groups.Rows) != 14 {
		t.Errorf("groups rows: got %d workloads, want 14", len(groups.Rows))
	}
	for _, r := range groups.Rows {
		if len(r.Cells) != len(groups.Cols) {
			t.Errorf("groups row %q has %d cells, want %d", r.Label, len(r.Cells), len(groups.Cols))
		}
	}
}
