package experiment

import (
	"ltp/internal/mem"
	"ltp/internal/pipeline"
)

// WIBvsLTP compares LTP against the Waiting Instruction Buffer baseline
// (Lebeck et al., the paper's §6 related work) on the two resources that
// separate them: both relieve IQ pressure, but only LTP's front-end
// parking delays register allocation. Rows are percent performance versus
// the Table 1 baseline on the MLP-sensitive group.
func (s *Suite) WIBvsLTP() []*Table {
	g := s.Classify()

	type variant struct {
		Name string
		Cfg  func(iq, rf int) pipeline.Config
		LTP  bool
	}
	variants := []variant{
		{"NoLTP", func(iq, rf int) pipeline.Config { return realisticConfig(iq, rf) }, false},
		{"WIB(1024)", func(iq, rf int) pipeline.Config {
			c := realisticConfig(iq, rf)
			c.WIBSize = 1024
			c.WIBPorts = 4
			return c
		}, false},
		{"LTP(NU 128/4p)", func(iq, rf int) pipeline.Config { return realisticConfig(iq, rf) }, true},
	}

	rows := []struct {
		Name string
		IQ   []int
		RF   []int
	}{
		{"IQ sweep (RF:128)", []int{64, 32, 16}, nil},
		{"RF sweep (IQ:64)", nil, []int{128, 96, 64}},
	}

	var tables []*Table
	for _, row := range rows {
		sizes := row.IQ
		isIQ := true
		if sizes == nil {
			sizes = row.RF
			isIQ = false
		}

		var jobs []job
		type ref struct{ vi, si, wi int }
		var refs []ref
		for wi, wl := range g.Sensitive {
			jobs = append(jobs, job{key: "fig10/base/" + wl, wlName: wl,
				pcfg: realisticConfig(64, 128)})
			refs = append(refs, ref{-1, 0, wi})
			for vi, v := range variants {
				for si, size := range sizes {
					iq, rf := 64, 128
					if isIQ {
						iq = size
					} else {
						rf = size
					}
					jobs = append(jobs, job{
						key:    "wib/" + row.Name + "/" + v.Name + "/" + sizeLabel(size) + "/" + wl,
						wlName: wl, pcfg: v.Cfg(iq, rf),
						useLTP: v.LTP, lcfg: realisticLTP(128, 4),
					})
					refs = append(refs, ref{vi, si, wi})
				}
			}
		}
		res := s.runAll(jobs)

		base := make([]uint64, len(g.Sensitive))
		grid := make([][][]uint64, len(variants))
		for vi := range grid {
			grid[vi] = make([][]uint64, len(sizes))
			for si := range grid[vi] {
				grid[vi][si] = make([]uint64, len(g.Sensitive))
			}
		}
		for k, r := range refs {
			if r.vi < 0 {
				base[r.wi] = res[k].Cycles
			} else {
				grid[r.vi][r.si][r.wi] = res[k].Cycles
			}
		}

		t := &Table{Title: "WIB vs LTP [" + row.Name + ", mlp-sensitive]: perf % vs base IQ:64/RF:128"}
		for _, size := range sizes {
			prefix := "IQ:"
			if !isIQ {
				prefix = "RF:"
			}
			t.Cols = append(t.Cols, prefix+sizeLabel(size))
		}
		for vi, v := range variants {
			r := RowData{Label: v.Name}
			for si := range sizes {
				ratios := make([]float64, len(g.Sensitive))
				for wi := range g.Sensitive {
					ratios[wi] = float64(base[wi]) / float64(grid[vi][si][wi])
				}
				r.Cells = append(r.Cells, (geomeanRatio(ratios)-1)*100)
			}
			t.Rows = append(t.Rows, r)
		}
		t.Notes = append(t.Notes,
			"WIB drains miss-dependent instructions from the IQ but keeps their registers;",
			"LTP parks before allocation, so only LTP survives the RF shrink (paper §6)")
		tables = append(tables, t)
		s.logf("wibvsltp: %s done", row.Name)
	}
	return tables
}

// DRAMModelStudy compares the fixed-latency DRAM against the banked DDR3
// model (row buffers, bank queueing, bus contention) for the baseline and
// LTP designs — a substitution-sensitivity check for the reproduction.
func (s *Suite) DRAMModelStudy() *Table {
	g := s.Classify()
	ddr := mem.DefaultDRAMConfig()

	mkCfg := func(banked bool, iq, rf int) pipeline.Config {
		c := realisticConfig(iq, rf)
		if banked {
			c.Hier.DRAM = &ddr
		}
		return c
	}

	type variant struct {
		Name   string
		Banked bool
		IQ, RF int
		LTP    bool
	}
	variants := []variant{
		{"fixed: base 64/128", false, 64, 128, false},
		{"fixed: LTP 32/96", false, 32, 96, true},
		{"ddr3: base 64/128", true, 64, 128, false},
		{"ddr3: LTP 32/96", true, 32, 96, true},
	}

	var jobs []job
	for _, wl := range g.Sensitive {
		for _, v := range variants {
			jobs = append(jobs, job{
				key:    "dram/" + v.Name + "/" + wl,
				wlName: wl, pcfg: mkCfg(v.Banked, v.IQ, v.RF),
				useLTP: v.LTP, lcfg: realisticLTP(128, 4),
			})
		}
	}
	res := s.runAll(jobs)

	t := &Table{Title: "DRAM model study [mlp-sensitive]",
		Cols: []string{"CPI", "MLP", "loadLat"}}
	per := len(variants)
	for vi, v := range variants {
		var cpi, mlp, lat []float64
		for wi := range g.Sensitive {
			r := res[wi*per+vi]
			cpi = append(cpi, r.CPI)
			mlp = append(mlp, r.MLP)
			lat = append(lat, r.AvgLoadLatency)
		}
		t.Rows = append(t.Rows, RowData{Label: v.Name,
			Cells: []float64{geomeanRatio(cpi), mean(mlp), mean(lat)}})
	}
	t.Notes = append(t.Notes,
		"the LTP win must survive the memory-model substitution: compare the fixed and ddr3 pairs")
	return t
}
