package experiment

import (
	"strings"
	"testing"
)

// tinySuite keeps experiment tests fast. Under -short (the CI race gate)
// the budgets shrink further: the shape assertions these tests make hold
// down to a few thousand instructions, and the race detector multiplies
// every simulated cycle's cost.
func tinySuite() *Suite {
	s := NewSuite(0.05, 5_000, 20_000)
	if testing.Short() {
		s = NewSuite(0.05, 2_000, 8_000)
	}
	s.Quiet = true
	return s
}

func TestTable1(t *testing.T) {
	out := Table1()
	for _, want := range []string{"ROB / IQ / LQ / SQ", "256 / 64 / 64 / 32", "stride prefetcher"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestClassifyStable(t *testing.T) {
	s := tinySuite()
	g1 := s.Classify()
	g2 := s.Classify() // cached
	if len(g1.Sensitive)+len(g1.Insensitive) != 14 {
		t.Errorf("classified %d+%d workloads, want 14",
			len(g1.Sensitive), len(g1.Insensitive))
	}
	if &g1.Detail == nil || len(g2.Sensitive) != len(g1.Sensitive) {
		t.Error("classification not cached/stable")
	}
	// The pure compute kernel can never be MLP-sensitive.
	for _, n := range g1.Sensitive {
		if n == "compute" || n == "divloop" {
			t.Errorf("%s classified MLP-sensitive", n)
		}
	}
	if s.GroupsTable().String() == "" {
		t.Error("empty groups table")
	}
}

func TestFig3Shape(t *testing.T) {
	s := tinySuite()
	tab := s.Fig3()
	if len(tab.Rows) != 2 {
		t.Fatalf("fig3 has %d rows", len(tab.Rows))
	}
	noltp, withltp := tab.Rows[0], tab.Rows[1]
	// With LTP the tiny IQ must hold fewer instructions and the MLP must
	// not be lower.
	if withltp.Cells[2] >= noltp.Cells[2] {
		t.Errorf("LTP did not reduce IQ occupancy: %.2f vs %.2f", withltp.Cells[2], noltp.Cells[2])
	}
	if withltp.Cells[1] < noltp.Cells[1] {
		t.Errorf("LTP lowered MLP: %.2f vs %.2f", withltp.Cells[1], noltp.Cells[1])
	}
}

func TestTableString(t *testing.T) {
	tab := &Table{
		Title: "demo", Cols: []string{"a", "b"},
		Rows:  []RowData{{Label: "x", Cells: []float64{1.5, 2000}}},
		Notes: []string{"n"},
	}
	out := tab.String()
	for _, want := range []string{"demo", "1.50", "2000", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q in %q", want, out)
		}
	}
}

// TestRunAllLPTOrder verifies the LPT worker pool returns results in
// submission order regardless of its longest-first execution order, and
// that the cost heuristic ranks obviously-heavier jobs higher.
func TestRunAllLPTOrder(t *testing.T) {
	s := tinySuite()
	s.Parallelism = 2
	var jobs []job
	for _, iq := range []int{8, 64, 256} {
		for _, wl := range []string{"compute", "gather"} {
			jobs = append(jobs, job{
				key:    "lpt/" + wl + sizeLabel(iq),
				wlName: wl, pcfg: limitConfig(iq, 128, 64, 32),
			})
		}
	}
	out := s.runAll(jobs)
	if len(out) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(out), len(jobs))
	}
	for i, j := range jobs {
		want := s.run(j) // cache hit: identical result object
		if out[i].Cycles != want.Cycles || out[i].Committed != want.Committed {
			t.Errorf("job %d (%s): result misplaced: %d cycles vs %d", i, j.key, out[i].Cycles, want.Cycles)
		}
	}

	small := job{pcfg: limitConfig(16, 128, 64, 32)}
	big := job{pcfg: limitConfig(256, 128, 64, 32)}
	oracle := job{pcfg: limitConfig(16, 128, 64, 32), useLTP: true, oracle: true}
	if small.costEstimate() <= big.costEstimate() {
		t.Error("small-IQ job not ranked costlier than big-IQ job")
	}
	if oracle.costEstimate() <= small.costEstimate() {
		t.Error("oracle job not ranked costlier than plain job")
	}
}

func TestGeomeanRatio(t *testing.T) {
	if got := geomeanRatio([]float64{2, 8}); got != 4 {
		t.Errorf("geomean(2,8) = %v", got)
	}
	if got := geomeanRatio(nil); got != 1 {
		t.Errorf("geomean(nil) = %v", got)
	}
}

func TestSizeLabel(t *testing.T) {
	if sizeLabel(64) != "64" || sizeLabel(1<<20) != "inf" {
		t.Error("size labels wrong")
	}
}
