// Package experiment regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each runner
// returns text tables whose rows/series correspond one-to-one with the
// paper's plots; EXPERIMENTS.md records the paper-versus-measured
// comparison.
package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"ltp"
	"ltp/internal/core"
	"ltp/internal/pipeline"
	"ltp/internal/sched"
	"ltp/internal/workload"
)

// Suite holds the shared experiment parameters and caches (oracle
// pre-passes, MLP-group classification) across figures.
type Suite struct {
	// Scale shrinks workload working sets (1.0 = full size).
	Scale float64
	// WarmInsts / DetailInsts per run (the paper: 250 M warm, 10 M
	// detailed per simulation point; scale to your compute budget).
	WarmInsts   uint64
	DetailInsts uint64
	// WarmMode selects fast functional or detailed pipeline warming
	// (default ltp.WarmFast; the campaign's wall-clock depends on it).
	WarmMode ltp.WarmMode
	// Backend selects the execution backend for every run ("" or
	// ltp.BackendCycle = the reference pipeline; ltp.BackendSampled =
	// checkpointed interval sampling, measured-fidelity at a fraction
	// of the wall-clock; ltp.BackendModel = fast first-order estimates
	// for quick sensitivity passes — oracle-based experiments require
	// the cycle backend).
	Backend string
	// Intervals is the sampled backend's measured interval count K
	// (0 = ltp.DefaultSampledIntervals; ignored by other backends).
	Intervals int
	// Parallelism bounds concurrent simulations (0 = NumCPU).
	Parallelism int
	// Quiet suppresses progress output.
	Quiet bool

	mu      sync.Mutex
	oracles map[string]*core.Oracle
	groups  *Groups
	cache   map[string]ltp.RunResult
}

// NewSuite returns a Suite with the given budgets.
func NewSuite(scale float64, warm, detail uint64) *Suite {
	return &Suite{
		Scale:       scale,
		WarmInsts:   warm,
		DetailInsts: detail,
		oracles:     make(map[string]*core.Oracle),
		cache:       make(map[string]ltp.RunResult),
	}
}

// DefaultSuite is sized for a full experiment campaign on a laptop.
func DefaultSuite() *Suite { return NewSuite(1.0, 100_000, 300_000) }

// QuickSuite is sized for tests and benches.
func QuickSuite() *Suite {
	s := NewSuite(0.1, 20_000, 60_000)
	s.Quiet = true
	return s
}

func (s *Suite) logf(format string, args ...interface{}) {
	if !s.Quiet {
		fmt.Printf(format+"\n", args...)
	}
}

// limitConfig is the limit-study core (§4): Table 1 widths/ROB, unlimited
// MSHRs, late LQ/SQ allocation for parked memory operations, and the four
// scaled resources.
func limitConfig(iq, rf, lq, sq int) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.IQSize, cfg.IntRegs, cfg.FPRegs = iq, rf, rf
	cfg.LQSize, cfg.SQSize = lq, sq
	cfg.Hier.L1DMSHRs = 0
	cfg.Hier.L2MSHRs = 0
	cfg.LateLSQAlloc = true
	return cfg
}

// realisticConfig is the implementation-study core (§5): Table 1 MSHRs,
// LQ/SQ allocated at dispatch.
func realisticConfig(iq, rf int) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.IQSize, cfg.IntRegs, cfg.FPRegs = iq, rf, rf
	return cfg
}

// oracleFor builds (once) the limit study's classification pre-pass for a
// workload.
func (s *Suite) oracleFor(name string) *core.Oracle {
	s.mu.Lock()
	if o, ok := s.oracles[name]; ok {
		s.mu.Unlock()
		return o
	}
	s.mu.Unlock()

	wl, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	pcfg := pipeline.DefaultConfig()
	budget := int(s.WarmInsts + s.DetailInsts + 65_536)
	o := core.BuildOracle(wl.Build(s.Scale), budget, pcfg.Hier, pcfg.ROBSize)

	s.mu.Lock()
	s.oracles[name] = o
	s.mu.Unlock()
	return o
}

// job describes one simulation for the parallel runner.
type job struct {
	key    string // cache key; "" disables caching
	wlName string
	pcfg   pipeline.Config
	useLTP bool
	lcfg   core.Config
	oracle bool
}

// run executes one simulation (with suite-level caching).
func (s *Suite) run(j job) ltp.RunResult {
	if j.key != "" {
		s.mu.Lock()
		if r, ok := s.cache[j.key]; ok {
			s.mu.Unlock()
			return r
		}
		s.mu.Unlock()
	}
	spec := ltp.RunSpec{
		Workload:  j.wlName,
		Scale:     s.Scale,
		WarmInsts: s.WarmInsts,
		WarmMode:  s.WarmMode,
		MaxInsts:  s.DetailInsts,
		Pipeline:  &j.pcfg,
		UseLTP:    j.useLTP,
		Backend:   s.Backend,
		Intervals: s.Intervals,
	}
	if j.useLTP {
		lcfg := j.lcfg
		if j.oracle {
			lcfg.Oracle = s.oracleFor(j.wlName)
		}
		spec.LTP = &lcfg
	}
	r := ltp.MustRun(spec)
	if j.key != "" {
		s.mu.Lock()
		s.cache[j.key] = r
		s.mu.Unlock()
	}
	return r
}

// costEstimate scores a job's expected wall-clock for LPT scheduling. The
// dominant term is the simulated cycle count, which grows when the IQ is
// small (higher CPI) and when the LTP machinery is attached; oracle jobs
// additionally pay the classification pre-pass (amortized by the per-
// workload oracle cache, but the first job per workload eats it).
func (j job) costEstimate() float64 {
	c := 1.0
	if j.useLTP {
		c += 0.3
	}
	if j.oracle {
		c += 0.5
	}
	iq := j.pcfg.IQSize
	if iq < 8 {
		iq = 8
	}
	// Small IQs roughly double CPI by IQ:16 on the sensitive kernels.
	c += 32.0 / float64(iq)
	return c
}

// runAll executes jobs on the shared LPT worker pool (internal/sched),
// returning results in the callers' order: starting the long jobs early
// keeps the pool saturated at the tail of a campaign instead of idling
// behind one straggler.
func (s *Suite) runAll(jobs []job) []ltp.RunResult {
	out := make([]ltp.RunResult, len(jobs))
	sched.Run(s.Parallelism, len(jobs),
		func(i int) float64 { return jobs[i].costEstimate() },
		func(i int) { out[i] = s.run(jobs[i]) })
	return out
}

// Groups is the §4.1 MLP-sensitivity split of the workload suite.
type Groups struct {
	Sensitive   []string
	Insensitive []string
	// Detail holds the classification inputs per workload.
	Detail map[string]GroupDetail
}

// GroupDetail records the classification criteria values.
type GroupDetail struct {
	SpeedupPct float64 // IQ 32 -> 256 speedup
	MLPGainPct float64 // outstanding-requests growth
	AvgLoadLat float64
	Sensitive  bool
}

// Classify applies the paper's §4.1 criteria to every workload: with
// infinite RF/LQ/SQ/MSHRs and the prefetcher on, a point is MLP-sensitive
// when the 32→256 IQ speedup exceeds 5%, outstanding requests grow by more
// than 10%, and the average memory latency exceeds the L2 latency.
func (s *Suite) Classify() *Groups {
	s.mu.Lock()
	if s.groups != nil {
		g := s.groups
		s.mu.Unlock()
		return g
	}
	s.mu.Unlock()

	names := workload.Names()
	jobs := make([]job, 0, 2*len(names))
	for _, n := range names {
		small := limitConfig(32, pipeline.Inf, pipeline.Inf, pipeline.Inf)
		big := limitConfig(256, pipeline.Inf, pipeline.Inf, pipeline.Inf)
		jobs = append(jobs,
			job{key: "cls32/" + n, wlName: n, pcfg: small},
			job{key: "cls256/" + n, wlName: n, pcfg: big})
	}
	res := s.runAll(jobs)

	g := &Groups{Detail: make(map[string]GroupDetail)}
	l2lat := float64(pipeline.DefaultConfig().Hier.L2Latency)
	for i, n := range names {
		r32, r256 := res[2*i], res[2*i+1]
		d := GroupDetail{
			SpeedupPct: (float64(r32.Cycles)/float64(r256.Cycles) - 1) * 100,
			AvgLoadLat: r32.AvgLoadLatency,
		}
		if r32.MLP > 0 {
			d.MLPGainPct = (r256.MLP/r32.MLP - 1) * 100
		} else if r256.MLP > 0 {
			d.MLPGainPct = 100
		}
		d.Sensitive = d.SpeedupPct > 5 && d.MLPGainPct > 10 && d.AvgLoadLat > l2lat
		g.Detail[n] = d
		if d.Sensitive {
			g.Sensitive = append(g.Sensitive, n)
		} else {
			g.Insensitive = append(g.Insensitive, n)
		}
	}
	sort.Strings(g.Sensitive)
	sort.Strings(g.Insensitive)

	s.mu.Lock()
	s.groups = g
	s.mu.Unlock()
	s.logf("groups: sensitive=%v insensitive=%v", g.Sensitive, g.Insensitive)
	return g
}

// geomeanRatio returns the geometric mean of a/b pairs (used for group
// averages of normalized performance).
func geomeanRatio(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 1
	}
	sum := 0.0
	for _, r := range ratios {
		if r <= 0 {
			r = 1e-9
		}
		sum += math.Log(r)
	}
	return math.Exp(sum / float64(len(ratios)))
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Table is a printable result table.
type Table struct {
	Title string
	Cols  []string
	Rows  []RowData
	Notes []string
}

// RowData is one labelled row of float cells.
type RowData struct {
	Label string
	Cells []float64
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	fmt.Fprintf(&b, "%-26s", "")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-26s", r.Label)
		for _, v := range r.Cells {
			switch {
			case math.IsInf(v, 0) || math.IsNaN(v):
				fmt.Fprintf(&b, "%14s", "-")
			case math.Abs(v) >= 1000:
				fmt.Fprintf(&b, "%14.0f", v)
			default:
				fmt.Fprintf(&b, "%14.2f", v)
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// sizeLabel renders a swept structure size, using ∞ for Inf.
func sizeLabel(v int) string {
	if v >= pipeline.Inf {
		return "inf"
	}
	return fmt.Sprintf("%d", v)
}
