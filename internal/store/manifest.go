package store

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// manifestMagic heads every snapshot manifest.
const manifestMagic = "LTPMANIFEST1"

// WriteManifest writes a snapshot manifest of the store's current key
// set: the manifest magic on the first line, then one key per line,
// sorted. A manifest names which cells a store held at a point in
// time — the input to campaign diffing (SweepSpec.SinceSnapshot) —
// without shipping any payload bytes.
func (s *Store) WriteManifest(w io.Writer) error {
	return WriteManifest(w, s.Keys())
}

// WriteManifest writes the given keys as a snapshot manifest (sorted;
// the input slice is not modified).
func WriteManifest(w io.Writer, keys []string) error {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, manifestMagic)
	for _, k := range sorted {
		fmt.Fprintln(bw, k)
	}
	return bw.Flush()
}

// ReadManifest parses a snapshot manifest back into its key list.
func ReadManifest(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != manifestMagic {
		return nil, fmt.Errorf("store: not a snapshot manifest (missing %q header)", manifestMagic)
	}
	var keys []string
	for sc.Scan() {
		if k := strings.TrimSpace(sc.Text()); k != "" {
			keys = append(keys, k)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: reading manifest: %w", err)
	}
	return keys, nil
}
