package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// magic opens every store file; a file that does not start with it is
// not a store and Open refuses to touch (or truncate) it.
const magic = "LTPSTORE1\n"

const (
	// recHeaderLen is the fixed per-record prefix: u32 body length and
	// u32 CRC32 (IEEE) of the body, both little-endian.
	recHeaderLen = 8
	// maxBody bounds one record's body (64 MiB). Real records are a few
	// KiB of JSON; the bound keeps a garbage length field read from a
	// damaged file from driving a giant allocation during the scan.
	maxBody = 1 << 26
	// maxKeyLen bounds the key field inside a body. Content addresses
	// are ~70 bytes ("rs2:" + hex sha256); anything near the u16 limit
	// is corruption.
	maxKeyLen = 1 << 10
)

// Stats is a snapshot of one open store's counters. Records and Bytes
// describe the file; the rest count this handle's traffic since Open.
type Stats struct {
	// Records is the number of distinct keys in the index.
	Records int `json:"records"`
	// Bytes is the file size in bytes (magic + valid records).
	Bytes int64 `json:"bytes"`
	// Hits counts Get calls that found their key.
	Hits uint64 `json:"hits"`
	// Misses counts Get calls that did not.
	Misses uint64 `json:"misses"`
	// Appends counts records written by Put.
	Appends uint64 `json:"appends"`
	// CorruptSkipped counts damaged suffixes dropped by the opening
	// scan (0 or 1 per Open: the scan stops at the first bad record).
	CorruptSkipped uint64 `json:"corrupt_skipped"`
}

// recLoc locates one record's payload inside the file.
type recLoc struct {
	off int64
	n   int
}

// Store is a content-addressed, append-only result store: an on-disk
// log of checksummed (key, payload) records with an in-memory index
// rebuilt by scanning the file at Open. Get serves payloads with
// ReadAt; Put appends one record per new key (a duplicate key is a
// no-op — content addressing makes re-deriving the same key mean the
// same payload). A torn or corrupted tail — a crash mid-append — is
// detected by the scan and truncated away, so the store self-repairs
// to its longest valid prefix.
//
// One read-write handle per file is the supported regime (the engine
// owns its store); any number of read-only handles (OpenRead) may scan
// the same file concurrently, e.g. to snapshot a manifest.
type Store struct {
	mu       sync.RWMutex // guards index, size, writeErr
	f        *os.File
	path     string
	readOnly bool
	index    map[string]recLoc
	size     int64
	writeErr error

	hits    atomic.Uint64
	misses  atomic.Uint64
	appends atomic.Uint64
	corrupt atomic.Uint64
}

// Open opens (creating if absent) the store at path for reading and
// writing, scans it to rebuild the index, and truncates any damaged
// suffix left by a crash mid-append (counted in Stats.CorruptSkipped).
// A file that exists but does not start with the store magic is
// rejected untouched.
func Open(path string) (*Store, error) {
	return open(path, false)
}

// OpenRead opens the store at path read-only: the scan keeps the
// intact prefix and counts a damaged suffix without repairing it, and
// Put fails. Use it to read a store another process (or handle) owns.
func OpenRead(path string) (*Store, error) {
	return open(path, true)
}

func open(path string, readOnly bool) (*Store, error) {
	flags, mode := os.O_RDWR|os.O_CREATE, os.FileMode(0o644)
	if readOnly {
		flags, mode = os.O_RDONLY, 0
	}
	f, err := os.OpenFile(path, flags, mode)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{f: f, path: path, readOnly: readOnly, index: make(map[string]recLoc)}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load verifies the magic (writing it into a brand-new file) and scans
// the records into the index, repairing a damaged suffix when the
// handle may write.
func (s *Store) load() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if fi.Size() == 0 {
		if s.readOnly {
			return fmt.Errorf("store: %s is empty (not a store)", s.path)
		}
		if _, err := s.f.WriteAt([]byte(magic), 0); err != nil {
			return fmt.Errorf("store: initializing %s: %w", s.path, err)
		}
		s.size = int64(len(magic))
		return nil
	}
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(io.NewSectionReader(s.f, 0, int64(len(magic))), hdr); err != nil || string(hdr) != magic {
		return fmt.Errorf("store: %s is not a result store (bad magic)", s.path)
	}
	valid, dropped, err := s.scan(fi.Size())
	if err != nil {
		return err
	}
	s.size = valid
	if dropped {
		s.corrupt.Add(1)
		if !s.readOnly {
			if err := s.f.Truncate(valid); err != nil {
				return fmt.Errorf("store: truncating damaged suffix of %s: %w", s.path, err)
			}
		}
	}
	return nil
}

// scan walks the records from the end of the magic, indexing every
// valid one, and returns the offset of the first invalid byte (the
// longest valid prefix) plus whether anything after it was dropped.
// Damage never fails the open: a record whose length field, checksum,
// or key framing is wrong ends the scan exactly there.
func (s *Store) scan(fileSize int64) (valid int64, dropped bool, err error) {
	off := int64(len(magic))
	r := bufio.NewReaderSize(io.NewSectionReader(s.f, off, fileSize-off), 1<<16)
	hdr := make([]byte, recHeaderLen)
	var body []byte
	for off < fileSize {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return off, true, nil // torn header
		}
		n := int(binary.LittleEndian.Uint32(hdr[0:4]))
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n < 3 || n > maxBody || off+recHeaderLen+int64(n) > fileSize {
			return off, true, nil // nonsense or torn length
		}
		if cap(body) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(r, body); err != nil {
			return off, true, nil
		}
		if crc32.ChecksumIEEE(body) != sum {
			return off, true, nil // flipped bits
		}
		keyLen := int(binary.LittleEndian.Uint16(body[0:2]))
		if keyLen < 1 || keyLen > maxKeyLen || 2+keyLen > n {
			return off, true, nil
		}
		key := string(body[2 : 2+keyLen])
		s.index[key] = recLoc{off: off + recHeaderLen + 2 + int64(keyLen), n: n - 2 - keyLen}
		off += recHeaderLen + int64(n)
	}
	return off, false, nil
}

// Get returns the payload stored for key. Concurrent Gets (and one
// concurrent Put) are safe.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	loc, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	buf := make([]byte, loc.n)
	if _, err := s.f.ReadAt(buf, loc.off); err != nil {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return buf, true
}

// Has reports whether key is in the index (no counter traffic).
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Put appends one record for key. A key already stored is a no-op:
// keys are content addresses, so an existing record is the same
// payload. A short or failed write truncates back to the last valid
// record and poisons the handle for further writes (reads still work);
// the next Open would repair the same tail anyway.
func (s *Store) Put(key string, payload []byte) error {
	if s.readOnly {
		return fmt.Errorf("store: %s is open read-only", s.path)
	}
	if len(key) < 1 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d out of range [1, %d]", len(key), maxKeyLen)
	}
	if 2+len(key)+len(payload) > maxBody {
		return fmt.Errorf("store: record for %s exceeds %d bytes", key, maxBody)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writeErr != nil {
		return s.writeErr
	}
	if _, ok := s.index[key]; ok {
		return nil
	}
	n := 2 + len(key) + len(payload)
	rec := make([]byte, recHeaderLen+n)
	body := rec[recHeaderLen:]
	binary.LittleEndian.PutUint16(body[0:2], uint16(len(key)))
	copy(body[2:], key)
	copy(body[2+len(key):], payload)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(n))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(body))
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		s.writeErr = fmt.Errorf("store: appending to %s: %w", s.path, err)
		_ = s.f.Truncate(s.size) // drop any torn tail now rather than at next Open
		return s.writeErr
	}
	s.index[key] = recLoc{off: s.size + recHeaderLen + 2 + int64(len(key)), n: len(payload)}
	s.size += int64(len(rec))
	s.appends.Add(1)
	return nil
}

// Len returns the number of distinct keys stored.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Keys returns every stored key, sorted.
func (s *Store) Keys() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	records, bytes := len(s.index), s.size
	s.mu.RUnlock()
	return Stats{
		Records:        records,
		Bytes:          bytes,
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Appends:        s.appends.Load(),
		CorruptSkipped: s.corrupt.Load(),
	}
}

// Close releases the file handle. Reads and writes after Close fail.
func (s *Store) Close() error { return s.f.Close() }
