// Package store is the persistent tier of the result cache: a
// content-addressed, append-only on-disk log of simulation results.
//
// Each record is length-prefixed and CRC32-checksummed — u32 body
// length, u32 checksum, then a body of u16 key length, key bytes, and
// an opaque payload (the engine stores canonical-spec + RunResult
// JSON). There is no on-disk index: Open scans the log once and
// rebuilds the key → offset map in memory, which keeps the format a
// single self-describing file that can be copied or rsync'd between
// fleet nodes while half-written tails stay harmless. A crash mid-
// append leaves a torn record that the next Open detects (checksum or
// framing) and truncates away, so the store always reopens to its
// longest valid prefix; damage is counted, never fatal.
//
// Append-only is a deliberate fit for content addressing: a key is a
// hash of the canonical simulation spec, so a record is immutable by
// construction — there is nothing to update in place, and Put on an
// existing key is a no-op rather than a rewrite. See DESIGN.md §12
// for the format and recovery semantics, and internal/cache.Backing
// for how the engine layers this under its in-memory LRU.
package store
