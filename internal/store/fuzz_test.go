package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// recsFromBytes derives an arbitrary-but-valid record set from fuzz
// input: each 4-byte chunk seeds one record's key suffix and payload
// shape, so the corpus explores record counts, payload sizes (empty
// included) and content.
func recsFromBytes(data []byte) (keys []string, payloads [][]byte) {
	seen := map[string]bool{}
	for i := 0; i+4 <= len(data) && len(keys) < 64; i += 4 {
		b := data[i : i+4]
		key := fmt.Sprintf("rs2:%02x%02x", b[0], b[1])
		if seen[key] {
			continue
		}
		seen[key] = true
		payload := bytes.Repeat([]byte{b[2]}, int(b[3])*3)
		keys = append(keys, key)
		payloads = append(payloads, payload)
	}
	return keys, payloads
}

// validStoreBytes builds one well-formed store image in memory (same
// framing Put writes) for seeding and mutation.
func validStoreBytes(recs map[string][]byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	for k, v := range recs {
		body := make([]byte, 2+len(k)+len(v))
		binary.LittleEndian.PutUint16(body[0:2], uint16(len(k)))
		copy(body[2:], k)
		copy(body[2+len(k):], v)
		var hdr [recHeaderLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
		buf.Write(hdr[:])
		buf.Write(body)
	}
	return buf.Bytes()
}

// FuzzStoreRoundTrip fuzzes both directions of the store: records
// derived from the input must survive Put → reopen → Get losslessly,
// and the raw input bytes opened as a store file — truncated tails,
// flipped checksums, garbage headers — must never panic: either Open
// rejects the file or the scan keeps a valid prefix and counts the
// damage.
func FuzzStoreRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add([]byte(magic + "\x03\x00\x00\x00\xde\xad\xbe\xef\x01k"))
	f.Add([]byte("not a store at all"))
	seed := validStoreBytes(map[string][]byte{"rs2:seed": []byte(`{"cpi":1}`), "rs2:two": {}})
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	flipped := append([]byte{}, seed...)
	flipped[len(magic)+recHeaderLen+4] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()

		// Direction 1: a derived record set must round-trip through a
		// close/reopen bit-identically.
		keys, payloads := recsFromBytes(data)
		rtPath := filepath.Join(dir, "rt.store")
		s, err := Open(rtPath)
		if err != nil {
			t.Fatalf("Open fresh: %v", err)
		}
		for i, k := range keys {
			if err := s.Put(k, payloads[i]); err != nil {
				t.Fatalf("Put(%s): %v", k, err)
			}
		}
		s.Close()
		s2, err := Open(rtPath)
		if err != nil {
			t.Fatalf("reopen own output: %v", err)
		}
		if st := s2.Stats(); st.Records != len(keys) || st.CorruptSkipped != 0 {
			t.Fatalf("reopen stats %+v, want %d clean records", st, len(keys))
		}
		for i, k := range keys {
			got, ok := s2.Get(k)
			if !ok || !bytes.Equal(got, payloads[i]) {
				t.Fatalf("record %s drifted after reopen", k)
			}
		}
		s2.Close()

		// Direction 2: the raw input as a store file — Open must error
		// or succeed, never panic, and a successful open's repair must
		// be idempotent: the second open sees a clean file.
		rawPath := filepath.Join(dir, "raw.store")
		if err := os.WriteFile(rawPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if rs, err := Open(rawPath); err == nil {
			for _, k := range rs.Keys() {
				if _, ok := rs.Get(k); !ok {
					t.Fatalf("indexed key %s unreadable", k)
				}
			}
			rs.Close()
			rs2, err := Open(rawPath)
			if err != nil {
				t.Fatalf("second open after repair: %v", err)
			}
			if st := rs2.Stats(); st.CorruptSkipped != 0 {
				t.Fatalf("repair was not idempotent: %+v", st)
			}
			rs2.Close()
		}

		// Direction 3: the same bytes behind a valid magic, so the scan
		// itself (not the magic check) absorbs the damage.
		taggedPath := filepath.Join(dir, "tagged.store")
		if err := os.WriteFile(taggedPath, append([]byte(magic), data...), 0o644); err != nil {
			t.Fatal(err)
		}
		ts, err := Open(taggedPath)
		if err != nil {
			t.Fatalf("Open with valid magic: %v", err)
		}
		for _, k := range ts.Keys() {
			if _, ok := ts.Get(k); !ok {
				t.Fatalf("indexed key %s unreadable", k)
			}
		}
		ts.Close()
	})
}
