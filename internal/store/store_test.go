package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// openTemp creates a fresh store under t's temp dir.
func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "results.store")
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, path
}

func TestRoundTrip(t *testing.T) {
	s, path := openTemp(t)
	recs := map[string][]byte{
		"rs2:aa": []byte(`{"cpi":1.5}`),
		"rs2:bb": {},
		"rs2:cc": bytes.Repeat([]byte{0xAB}, 5000),
		"rs2:dd": []byte("x"),
	}
	for k, v := range recs {
		if err := s.Put(k, v); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	check := func(s *Store, label string) {
		t.Helper()
		for k, want := range recs {
			got, ok := s.Get(k)
			if !ok {
				t.Fatalf("%s: Get(%s) missing", label, k)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: Get(%s) drifted: %d bytes vs %d", label, k, len(got), len(want))
			}
		}
		if _, ok := s.Get("rs2:absent"); ok {
			t.Fatalf("%s: Get on an absent key succeeded", label)
		}
		if s.Len() != len(recs) {
			t.Fatalf("%s: Len = %d, want %d", label, s.Len(), len(recs))
		}
		keys := s.Keys()
		if !sort.StringsAreSorted(keys) || len(keys) != len(recs) {
			t.Fatalf("%s: Keys = %v", label, keys)
		}
	}
	check(s, "live")
	st := s.Stats()
	if st.Appends != uint64(len(recs)) || st.CorruptSkipped != 0 || st.Records != len(recs) {
		t.Fatalf("live stats %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The index must rebuild identically from the file alone.
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	check(s2, "reopened")
	if st := s2.Stats(); st.CorruptSkipped != 0 {
		t.Fatalf("clean reopen reports corruption: %+v", st)
	}
}

func TestDuplicatePutIsNoOp(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	if err := s.Put("rs2:k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	size := s.Stats().Bytes
	// Content addressing: same key means same payload, so a second Put
	// must not grow the file or replace the record.
	if err := s.Put("rs2:k", []byte("v2-different")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Bytes != size || st.Appends != 1 {
		t.Fatalf("duplicate Put changed the store: %+v (size was %d)", st, size)
	}
	if got, _ := s.Get("rs2:k"); string(got) != "v1" {
		t.Fatalf("duplicate Put replaced the record: %q", got)
	}
}

func TestPutValidation(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	if err := s.Put("", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put(string(bytes.Repeat([]byte{'k'}, maxKeyLen+1)), []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := s.Put("rs2:k", make([]byte, maxBody)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

// TestCrashRecovery is the ISSUE's torn-tail loop: N records, the file
// truncated at every byte offset inside the final record, and each
// truncation must reopen to exactly N−1 intact records with a working
// append afterwards.
func TestCrashRecovery(t *testing.T) {
	s, path := openTemp(t)
	const n = 3
	var sizes []int64 // file size after each record
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("rs2:%04d", i)
		payload := bytes.Repeat([]byte{byte(i)}, 20+i*7)
		if err := s.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, s.Stats().Bytes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	last, end := sizes[n-2], sizes[n-1]
	for cut := last; cut < end; cut++ {
		cutPath := filepath.Join(t.TempDir(), "cut.store")
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cs, err := Open(cutPath)
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		st := cs.Stats()
		if st.Records != n-1 {
			t.Fatalf("cut at %d: %d records survive, want %d", cut, st.Records, n-1)
		}
		wantCorrupt := uint64(1)
		if cut == last {
			wantCorrupt = 0 // clean record boundary, nothing torn
		}
		if st.CorruptSkipped != wantCorrupt {
			t.Fatalf("cut at %d: CorruptSkipped = %d, want %d", cut, st.CorruptSkipped, wantCorrupt)
		}
		if st.Bytes != last {
			t.Fatalf("cut at %d: repaired size %d, want %d", cut, st.Bytes, last)
		}
		for i := 0; i < n-1; i++ {
			if _, ok := cs.Get(fmt.Sprintf("rs2:%04d", i)); !ok {
				t.Fatalf("cut at %d: record %d lost", cut, i)
			}
		}
		// The repaired store must accept and round-trip a fresh append.
		if err := cs.Put("rs2:new", []byte("after-crash")); err != nil {
			t.Fatalf("cut at %d: append after repair: %v", cut, err)
		}
		cs.Close()
		rs, err := Open(cutPath)
		if err != nil {
			t.Fatalf("cut at %d: reopen after append: %v", cut, err)
		}
		if got, ok := rs.Get("rs2:new"); !ok || string(got) != "after-crash" {
			t.Fatalf("cut at %d: appended record did not round-trip: %q %v", cut, got, ok)
		}
		if st := rs.Stats(); st.Records != n || st.CorruptSkipped != 0 {
			t.Fatalf("cut at %d: post-repair reopen stats %+v", cut, st)
		}
		rs.Close()
	}
}

// TestFlippedChecksumDropsSuffix flips one body byte of a mid-file
// record: the scan must keep everything before it and drop it plus
// everything after (the suffix offsets are unverifiable once framing
// is suspect).
func TestFlippedChecksumDropsSuffix(t *testing.T) {
	s, path := openTemp(t)
	const n = 4
	var sizes []int64
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("rs2:%04d", i), bytes.Repeat([]byte{byte(i + 1)}, 32)); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, s.Stats().Bytes)
	}
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// One bit inside record 2's body (records 0 and 1 end at sizes[1]).
	data[sizes[1]+recHeaderLen+3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("Open after bit flip: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Records != 2 || st.CorruptSkipped != 1 || st.Bytes != sizes[1] {
		t.Fatalf("post-flip stats %+v, want 2 records truncated to %d", st, sizes[1])
	}
	for i := 0; i < 2; i++ {
		if _, ok := s2.Get(fmt.Sprintf("rs2:%04d", i)); !ok {
			t.Fatalf("intact record %d lost", i)
		}
	}
}

func TestBadMagicRejectedUntouched(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-store")
	content := []byte("GARBAGE but somebody's data all the same\n")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a non-store file")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, content) {
		t.Fatal("Open modified a file it rejected")
	}
}

func TestOpenRead(t *testing.T) {
	s, path := openTemp(t)
	if err := s.Put("rs2:k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// A read-only handle on the live file sees the record and refuses
	// writes.
	r, err := OpenRead(path)
	if err != nil {
		t.Fatalf("OpenRead: %v", err)
	}
	if got, ok := r.Get("rs2:k"); !ok || string(got) != "v" {
		t.Fatalf("read-only Get = %q %v", got, ok)
	}
	if err := r.Put("rs2:other", []byte("w")); err == nil {
		t.Fatal("read-only Put succeeded")
	}
	r.Close()
	s.Close()

	// Read-only repair must be observational: a torn tail is counted
	// and skipped but the file is not truncated.
	data, _ := os.ReadFile(path)
	torn := append(append([]byte{}, data...), 0xFF, 0x01, 0x02)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenRead(path)
	if err != nil {
		t.Fatalf("OpenRead torn: %v", err)
	}
	if st := r2.Stats(); st.Records != 1 || st.CorruptSkipped != 1 {
		t.Fatalf("torn read-only stats %+v", st)
	}
	r2.Close()
	after, _ := os.ReadFile(path)
	if len(after) != len(torn) {
		t.Fatalf("OpenRead truncated the file: %d -> %d bytes", len(torn), len(after))
	}

	if _, err := OpenRead(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("OpenRead invented a missing file")
	}
}

// TestConcurrentAccess hammers one read-write handle with concurrent
// Puts and Gets while read-only handles repeatedly scan the same file
// — the -race gate for the store's locking, and a liveness check that
// a mid-append scan never panics (it may legitimately see a torn tail
// and stop early).
func TestConcurrentAccess(t *testing.T) {
	s, path := openTemp(t)
	defer s.Close()
	const writers, readers, perWriter = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("rs2:w%d-%04d", w, i)
				if err := s.Put(key, bytes.Repeat([]byte{byte(w)}, 64+i)); err != nil {
					t.Errorf("Put(%s): %v", key, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("rs2:w%d-%04d", rng.Intn(writers), rng.Intn(perWriter))
				if v, ok := s.Get(key); ok && len(v) == 0 {
					t.Errorf("Get(%s) returned an empty payload", key)
					return
				}
				_ = s.Len()
				_ = s.Stats()
			}
		}(r)
	}
	// Concurrent re-open ("reopen" leg of the hammer): read-only scans
	// racing the writer must keep whatever valid prefix they observe.
	for o := 0; o < 3; o++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ro, err := OpenRead(path)
				if err != nil {
					continue // the writer may not have put the magic through the page cache yet
				}
				for _, k := range ro.Keys() {
					ro.Get(k)
				}
				ro.Close()
			}
		}()
	}
	wg.Wait()

	if n := s.Len(); n != writers*perWriter {
		t.Fatalf("store holds %d records, want %d", n, writers*perWriter)
	}
	s.Close()
	re, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after hammer: %v", err)
	}
	defer re.Close()
	if st := re.Stats(); st.Records != writers*perWriter || st.CorruptSkipped != 0 {
		t.Fatalf("post-hammer reopen stats %+v", st)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	for _, k := range []string{"rs2:c", "rs2:a", "rs2:b"} {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteManifest(&buf); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	keys, err := ReadManifest(&buf)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	want := []string{"rs2:a", "rs2:b", "rs2:c"}
	if len(keys) != len(want) {
		t.Fatalf("manifest keys %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("manifest keys %v, want %v", keys, want)
		}
	}
	if _, err := ReadManifest(bytes.NewReader([]byte("not a manifest\n"))); err == nil {
		t.Fatal("ReadManifest accepted a headerless file")
	}
}
