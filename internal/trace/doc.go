// Package trace provides a compact binary format for recorded dynamic
// µop streams, with a Writer (capture), a Reader (deterministic replay
// through the timing pipeline — it implements prog.Stream), and a
// Recorder (a tee that captures any stream while it runs).
//
// The format exists so a workload can be executed once through the
// functional emulator and then replayed any number of times into timing
// experiments, bit-identically: every field the pipeline reads (PC,
// opcode, operands, effective address, branch outcome and target, tag)
// round-trips exactly, and sequence numbers are positional, so a
// replayed run produces the same statistics as the recording run.
//
// Layout (all multi-byte integers are varints, little-endian groups):
//
//	magic    8 bytes  "LTPTRC1\n"
//	name     uvarint length + bytes (program name, ≤ 64 kB)
//	records  one per µop, first byte 0xFF terminates:
//	  head   1 byte: opcode in bits 0-3, flags in bits 4-5
//	         (0x10 branch taken, 0x20 label present; bits 6-7 must be 0)
//	  pc     zigzag varint delta from the previous record's PC
//	         (the first record is relative to prog.CodeBase)
//	  regs   3 bytes: dst, src1, src2, each encoded as reg+1 (NoReg = 0)
//	  addr   memory ops only: zigzag varint delta from the previous
//	         memory op's address (first is relative to 0)
//	  target branches only: zigzag varint delta from the fallthrough
//	         PC (pc + prog.InstBytes); direction is the 0x10 flag
//	  label  if flagged: uvarint string-table reference. A reference
//	         equal to the table length introduces a new entry (uvarint
//	         length + bytes, ≤ 4 kB) that is appended; smaller values
//	         reuse an existing entry.
//	footer   after 0xFF: uvarint record count (truncation check)
//
// Decoding is defensive: corrupt or truncated input makes Next return
// false with Err reporting the failure. It never panics and never
// allocates unbounded memory (see FuzzTraceRoundTrip).
package trace
