package trace

import (
	"bytes"
	"testing"

	"ltp/internal/isa"
	"ltp/internal/prog"
	"ltp/internal/workload"
)

// pull drains a stream into a slice (tests only; real consumers reuse
// the µop).
func pull(s prog.Stream, max int) []isa.Uop {
	var out []isa.Uop
	var u isa.Uop
	for len(out) < max && s.Next(&u) {
		out = append(out, u)
	}
	return out
}

// TestRoundTripWorkloads records a prefix of every registered kernel
// and every scenario family and asserts the decoded µops are identical
// field-for-field to a fresh emulation.
func TestRoundTripWorkloads(t *testing.T) {
	const n = 5_000
	var progs []*prog.Program
	for _, s := range workload.All() {
		progs = append(progs, s.Build(0.02))
	}
	for _, f := range workload.Families() {
		progs = append(progs, f.Build(nil, 0.02, 7))
	}
	for _, p := range progs {
		var buf bytes.Buffer
		rec, err := Record(&buf, p.Name, prog.NewEmulator(p), n)
		if err != nil {
			t.Fatalf("%s: record: %v", p.Name, err)
		}
		if rec != n {
			t.Fatalf("%s: recorded %d µops, want %d", p.Name, rec, n)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: reader: %v", p.Name, err)
		}
		if r.Name() != p.Name {
			t.Errorf("name round-trip: got %q want %q", r.Name(), p.Name)
		}
		want := pull(prog.NewEmulator(p), n)
		got := pull(r, n+1)
		if r.Err() != nil {
			t.Fatalf("%s: decode: %v", p.Name, r.Err())
		}
		if len(got) != len(want) {
			t.Fatalf("%s: decoded %d µops, want %d", p.Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: µop %d drifted:\n got %s\nwant %s", p.Name, i, got[i].String(), want[i].String())
			}
		}
	}
}

// TestRoundTripEdgeUops exercises field extremes the workloads do not:
// huge address swings, far branch targets, label interning reuse.
func TestRoundTripEdgeUops(t *testing.T) {
	uops := []isa.Uop{
		{Op: isa.Load, PC: prog.CodeBase, Dst: isa.R(0), Src1: isa.R(31), Addr: ^uint64(0) &^ 7, Size: 8, Label: "A"},
		{Op: isa.Store, PC: prog.CodeBase + 4, Src1: isa.R(1), Src2: isa.F(31), Addr: 0, Size: 8, Label: "A"},
		{Op: isa.Branch, PC: prog.CodeBase + 8, Src1: isa.R(2), Taken: true, Target: prog.CodeBase, Size: 8},
		{Op: isa.Branch, PC: prog.CodeBase, Src1: isa.R(2), Taken: false, Target: prog.CodeBase + 1<<20, Size: 8, Label: "far"},
		{Op: isa.FSqrt, PC: prog.CodeBase + 4, Dst: isa.F(0), Src1: isa.F(0), Src2: isa.NoReg, Size: 8},
		{Op: isa.Nop, PC: prog.CodeBase + 8, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Size: 8, Label: "A"},
	}
	for i := range uops {
		uops[i].Seq = uint64(i)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, "edge")
	for i := range uops {
		if err := w.Append(&uops[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	got := pull(r, len(uops)+1)
	if r.Err() != nil {
		t.Fatalf("decode: %v", r.Err())
	}
	if len(got) != len(uops) {
		t.Fatalf("decoded %d, want %d", len(got), len(uops))
	}
	for i := range uops {
		if got[i] != uops[i] {
			t.Errorf("µop %d drifted:\n got %#v\nwant %#v", i, got[i], uops[i])
		}
	}
}

// TestTruncatedAndCorrupt asserts every damaged form of a valid trace
// yields an error (via NewReader or Err) and never a panic.
func TestTruncatedAndCorrupt(t *testing.T) {
	p := mustFamilyProgram(t)
	var buf bytes.Buffer
	if _, err := Record(&buf, p.Name, prog.NewEmulator(p), 300); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Every proper prefix is either a header error or a truncation.
	for cut := 0; cut < len(full)-1; cut += 7 {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue
		}
		var u isa.Uop
		for r.Next(&u) {
		}
		if r.Err() == nil {
			t.Fatalf("prefix of %d bytes decoded cleanly", cut)
		}
	}

	// Flipping bytes must never panic; it may decode to garbage that
	// still parses, but structural damage must surface via Err.
	for i := 0; i < len(full); i += 3 {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xA5
		r, err := NewReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		var u isa.Uop
		for r.Next(&u) {
		}
	}

	// A record head with reserved bits set is rejected.
	bad := append([]byte(nil), full[:len(magic)+1+len(p.Name)]...)
	bad = append(bad, 0xC1)
	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var u isa.Uop
	if r.Next(&u) || r.Err() == nil {
		t.Error("reserved head bits accepted")
	}
}

func mustFamilyProgram(t *testing.T) *prog.Program {
	t.Helper()
	f, err := workload.FamilyByName("hashjoin")
	if err != nil {
		t.Fatal(err)
	}
	return f.Build(nil, 0.02, 3)
}

// TestWriterAfterClose pins the misuse error.
func TestWriterAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "x")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	u := isa.Uop{Op: isa.Nop, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
	if err := w.Append(&u); err == nil {
		t.Error("Append after Close succeeded")
	}
}
