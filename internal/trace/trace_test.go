package trace

import (
	"bytes"
	"testing"

	"ltp/internal/isa"
	"ltp/internal/prog"
	"ltp/internal/workload"
)

// pull drains a stream into a slice (tests only; real consumers reuse
// the µop).
func pull(s prog.Stream, max int) []isa.Uop {
	var out []isa.Uop
	var u isa.Uop
	for len(out) < max && s.Next(&u) {
		out = append(out, u)
	}
	return out
}

// TestRoundTripWorkloads records a prefix of every registered kernel
// and every scenario family and asserts the decoded µops are identical
// field-for-field to a fresh emulation.
func TestRoundTripWorkloads(t *testing.T) {
	const n = 5_000
	var progs []*prog.Program
	for _, s := range workload.All() {
		progs = append(progs, s.Build(0.02))
	}
	for _, f := range workload.Families() {
		progs = append(progs, f.Build(nil, 0.02, 7))
	}
	for _, p := range progs {
		var buf bytes.Buffer
		rec, err := Record(&buf, p.Name, prog.NewEmulator(p), n)
		if err != nil {
			t.Fatalf("%s: record: %v", p.Name, err)
		}
		if rec != n {
			t.Fatalf("%s: recorded %d µops, want %d", p.Name, rec, n)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: reader: %v", p.Name, err)
		}
		if r.Name() != p.Name {
			t.Errorf("name round-trip: got %q want %q", r.Name(), p.Name)
		}
		want := pull(prog.NewEmulator(p), n)
		got := pull(r, n+1)
		if r.Err() != nil {
			t.Fatalf("%s: decode: %v", p.Name, r.Err())
		}
		if len(got) != len(want) {
			t.Fatalf("%s: decoded %d µops, want %d", p.Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: µop %d drifted:\n got %s\nwant %s", p.Name, i, got[i].String(), want[i].String())
			}
		}
	}
}

// TestRoundTripEdgeUops exercises field extremes the workloads do not:
// huge address swings, far branch targets, label interning reuse.
func TestRoundTripEdgeUops(t *testing.T) {
	uops := []isa.Uop{
		{Op: isa.Load, PC: prog.CodeBase, Dst: isa.R(0), Src1: isa.R(31), Addr: ^uint64(0) &^ 7, Size: 8, Label: "A"},
		{Op: isa.Store, PC: prog.CodeBase + 4, Src1: isa.R(1), Src2: isa.F(31), Addr: 0, Size: 8, Label: "A"},
		{Op: isa.Branch, PC: prog.CodeBase + 8, Src1: isa.R(2), Taken: true, Target: prog.CodeBase, Size: 8},
		{Op: isa.Branch, PC: prog.CodeBase, Src1: isa.R(2), Taken: false, Target: prog.CodeBase + 1<<20, Size: 8, Label: "far"},
		{Op: isa.FSqrt, PC: prog.CodeBase + 4, Dst: isa.F(0), Src1: isa.F(0), Src2: isa.NoReg, Size: 8},
		{Op: isa.Nop, PC: prog.CodeBase + 8, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Size: 8, Label: "A"},
	}
	for i := range uops {
		uops[i].Seq = uint64(i)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, "edge")
	for i := range uops {
		if err := w.Append(&uops[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	got := pull(r, len(uops)+1)
	if r.Err() != nil {
		t.Fatalf("decode: %v", r.Err())
	}
	if len(got) != len(uops) {
		t.Fatalf("decoded %d, want %d", len(got), len(uops))
	}
	for i := range uops {
		if got[i] != uops[i] {
			t.Errorf("µop %d drifted:\n got %#v\nwant %#v", i, got[i], uops[i])
		}
	}
}

// TestTruncatedAndCorrupt asserts every damaged form of a valid trace
// yields an error (via NewReader or Err) and never a panic.
func TestTruncatedAndCorrupt(t *testing.T) {
	p := mustFamilyProgram(t)
	var buf bytes.Buffer
	if _, err := Record(&buf, p.Name, prog.NewEmulator(p), 300); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Every proper prefix is either a header error or a truncation.
	for cut := 0; cut < len(full)-1; cut += 7 {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue
		}
		var u isa.Uop
		for r.Next(&u) {
		}
		if r.Err() == nil {
			t.Fatalf("prefix of %d bytes decoded cleanly", cut)
		}
	}

	// Flipping bytes must never panic; it may decode to garbage that
	// still parses, but structural damage must surface via Err.
	for i := 0; i < len(full); i += 3 {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xA5
		r, err := NewReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		var u isa.Uop
		for r.Next(&u) {
		}
	}

	// A record head with reserved bits set is rejected.
	bad := append([]byte(nil), full[:len(magic)+1+len(p.Name)]...)
	bad = append(bad, 0xC1)
	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var u isa.Uop
	if r.Next(&u) || r.Err() == nil {
		t.Error("reserved head bits accepted")
	}
}

func mustFamilyProgram(t *testing.T) *prog.Program {
	t.Helper()
	f, err := workload.FamilyByName("hashjoin")
	if err != nil {
		t.Fatal(err)
	}
	return f.Build(nil, 0.02, 3)
}

// TestSeekRoundTrip records a kernel while capturing a Pos checkpoint
// at record boundaries, then reopens the trace at every checkpoint and
// asserts the decoded suffix matches the full decode field-for-field —
// absolute sequence numbers included — and still ends cleanly at the
// footer.
func TestSeekRoundTrip(t *testing.T) {
	const n = 300
	p := mustFamilyProgram(t)
	var buf bytes.Buffer
	rec := NewRecorder(prog.NewEmulator(p), &buf, p.Name)
	checkpoints := map[uint64]Pos{}
	var u isa.Uop
	for i := uint64(0); i < n; i++ {
		if i%37 == 0 || i == 1 || i == n-1 {
			checkpoints[i] = rec.Pos()
		}
		if !rec.Next(&u) {
			t.Fatalf("stream ended at %d", i)
		}
	}
	tail := rec.Pos()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	want := pull(prog.NewEmulator(p), n)
	data := buf.Bytes()
	for at, pos := range checkpoints {
		if pos.Records != at {
			t.Fatalf("checkpoint %d: Records = %d", at, pos.Records)
		}
		r := NewReaderAt(bytes.NewReader(data), pos)
		got := pull(r, n+1)
		if r.Err() != nil {
			t.Fatalf("checkpoint %d: decode: %v", at, r.Err())
		}
		if len(got) != int(n-at) {
			t.Fatalf("checkpoint %d: decoded %d µops, want %d", at, len(got), n-at)
		}
		for j := range got {
			if got[j] != want[int(at)+j] {
				t.Fatalf("checkpoint %d: µop %d drifted:\n got %#v\nwant %#v", at, j, got[j], want[int(at)+j])
			}
		}
	}

	// Opening at the tail checkpoint lands exactly on the footer: Next
	// must report a clean end, not a footer-count error.
	r := NewReaderAt(bytes.NewReader(data), tail)
	if r.Next(&u) {
		t.Fatal("tail checkpoint decoded a µop")
	}
	if r.Err() != nil {
		t.Fatalf("tail checkpoint: %v", r.Err())
	}
}

// TestFastForwardToEnd pins the boundary the sampled tier relies on:
// fast-forwarding exactly to the final µop leaves the Reader able to
// consume the footer cleanly, and overshooting stops at the end with
// no error.
func TestFastForwardToEnd(t *testing.T) {
	const n = 200
	p := mustFamilyProgram(t)
	var buf bytes.Buffer
	if _, err := Record(&buf, p.Name, prog.NewEmulator(p), n); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if did := r.FastForward(n, nil); did != n {
		t.Fatalf("FastForward replayed %d, want %d", did, n)
	}
	var u isa.Uop
	if r.Next(&u) {
		t.Fatal("Next yielded a µop past the recorded count")
	}
	if r.Err() != nil {
		t.Fatalf("clean end expected, got %v", r.Err())
	}

	r2, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if did := r2.FastForward(n+50, nil); did != n {
		t.Fatalf("overshoot FastForward replayed %d, want %d", did, n)
	}
	if r2.Err() != nil {
		t.Fatalf("overshoot must end cleanly, got %v", r2.Err())
	}
}

// TestSeekTruncatedTail asserts that opening a checkpoint at or near
// the tail of a truncated trace reports ErrTruncated — never a panic —
// even when the cut lands inside the footer.
func TestSeekTruncatedTail(t *testing.T) {
	const n = 120
	p := mustFamilyProgram(t)
	var buf bytes.Buffer
	rec := NewRecorder(prog.NewEmulator(p), &buf, p.Name)
	var mid Pos
	var u isa.Uop
	for i := 0; i < n; i++ {
		if i == n/2 {
			mid = rec.Pos()
		}
		if !rec.Next(&u) {
			t.Fatalf("stream ended at %d", i)
		}
	}
	tail := rec.Pos()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Cut everywhere from the last record through the footer bytes.
	for cut := int(tail.Offset); cut < len(full); cut++ {
		for _, pos := range []Pos{mid, tail} {
			r := NewReaderAt(bytes.NewReader(full[:cut]), pos)
			for r.Next(&u) {
			}
			if r.Err() != ErrTruncated {
				t.Fatalf("cut %d at records %d: got %v, want ErrTruncated", cut, pos.Records, r.Err())
			}
		}
	}

	// A checkpoint beyond the data entirely is also a truncation.
	past := tail
	past.Offset = uint64(len(full)) + 9
	r := NewReaderAt(bytes.NewReader(full), past)
	if r.Next(&u) || r.Err() != ErrTruncated {
		t.Fatalf("out-of-range checkpoint: got %v, want ErrTruncated", r.Err())
	}
}

// TestWriterAfterClose pins the misuse error.
func TestWriterAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "x")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	u := isa.Uop{Op: isa.Nop, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
	if err := w.Append(&u); err == nil {
		t.Error("Append after Close succeeded")
	}
}
