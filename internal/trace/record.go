package trace

import (
	"io"

	"ltp/internal/isa"
	"ltp/internal/prog"
)

// Recorder tees a µop stream into a trace Writer while passing it
// through unchanged, so a normal simulation run doubles as a capture
// run: the pipeline (and the fast warm-up) pull from the Recorder
// exactly as they would from the wrapped stream, and every pulled µop
// is appended to the trace in order.
type Recorder struct {
	inner prog.Stream
	w     *Writer
	err   error
}

// NewRecorder returns a Recorder capturing name's µop stream into w.
// Close must be called after the run to finalize the trace.
func NewRecorder(inner prog.Stream, w io.Writer, name string) *Recorder {
	return &Recorder{inner: inner, w: NewWriter(w, name)}
}

// Next pulls one µop from the wrapped stream, recording it on success.
func (r *Recorder) Next(u *isa.Uop) bool {
	if !r.inner.Next(u) {
		return false
	}
	if r.err == nil {
		r.err = r.w.Append(u)
	}
	return true
}

// FastForward advances the wrapped stream by up to n µops, recording
// each one, so a functionally-warmed recording covers the warm region.
func (r *Recorder) FastForward(n uint64, touch func(u *isa.Uop)) uint64 {
	return fastForward(r, n, touch)
}

// fastForward pulls up to n µops from s through touch (the shared body
// of Reader.FastForward and Recorder.FastForward).
func fastForward(s prog.Stream, n uint64, touch func(u *isa.Uop)) uint64 {
	var u isa.Uop
	var done uint64
	for ; done < n; done++ {
		if !s.Next(&u) {
			break
		}
		if touch != nil {
			touch(&u)
		}
	}
	return done
}

// Count returns the number of µops recorded so far.
func (r *Recorder) Count() uint64 { return r.w.Count() }

// Pos captures the underlying Writer's current position (see
// Writer.Pos) — a checkpoint at which NewReaderAt can later reopen the
// recording.
func (r *Recorder) Pos() Pos { return r.w.Pos() }

// Close finalizes the trace (end marker + footer). The wrapped stream
// and the underlying io.Writer are untouched.
func (r *Recorder) Close() error {
	if err := r.w.Close(); r.err == nil {
		r.err = err
	}
	return r.err
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error { return r.err }

var (
	_ prog.Stream        = (*Recorder)(nil)
	_ prog.FastForwarder = (*Recorder)(nil)
)

// Record pulls up to n µops from src and writes them as a complete
// trace to w, returning the number recorded. It is the offline capture
// path (e.g. cmd/ltpsim -record): the emulator runs at functional
// speed with no timing model attached.
func Record(w io.Writer, name string, src prog.Stream, n uint64) (uint64, error) {
	rec := NewRecorder(src, w, name)
	done := rec.FastForward(n, nil)
	return done, rec.Close()
}
