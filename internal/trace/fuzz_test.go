package trace

import (
	"bytes"
	"testing"

	"ltp/internal/isa"
	"ltp/internal/prog"
)

// uopsFromBytes deterministically derives an arbitrary-but-valid µop
// sequence from fuzz input, covering every opcode, register encoding,
// address/PC delta sign and label-interning path.
func uopsFromBytes(data []byte) []isa.Uop {
	labels := []string{"", "A", "loop", "x1", string([]byte{0, 1, 0xFF})}
	var out []isa.Uop
	pc := prog.CodeBase
	var addr uint64
	for i := 0; i+8 <= len(data); i += 8 {
		b := data[i : i+8]
		u := isa.Uop{
			Seq:  uint64(len(out)),
			Op:   isa.Op(b[0] % uint8(isa.NumOps)),
			Size: 8,
			Dst:  isa.Reg(int(b[1])%(isa.NumArchRegs+1)) - 1,
			Src1: isa.Reg(int(b[2])%(isa.NumArchRegs+1)) - 1,
			Src2: isa.Reg(int(b[3])%(isa.NumArchRegs+1)) - 1,
		}
		pc += uint64(int64(int8(b[4]))) * prog.InstBytes
		u.PC = pc
		if u.Op.IsMem() {
			addr += uint64(int64(int8(b[5]))) << (b[6] % 48)
			u.Addr = addr
		}
		if u.Op == isa.Branch {
			u.Taken = b[5]&1 != 0
			u.Target = pc + prog.InstBytes + uint64(int64(int8(b[6])))*prog.InstBytes
		}
		u.Label = labels[int(b[7])%len(labels)]
		out = append(out, u)
	}
	return out
}

// FuzzTraceRoundTrip fuzzes both directions of the codec: an arbitrary
// µop sequence derived from the input must encode→decode losslessly,
// and the raw input bytes fed directly to the decoder must produce an
// error or a clean end — never a panic.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add([]byte("LTPTRC1\n\x00\xFF\x00"))
	f.Add(bytes.Repeat([]byte{0x09, 1, 2, 3, 4, 5, 6, 7}, 16))
	var seedBuf bytes.Buffer
	w := NewWriter(&seedBuf, "seed")
	u := isa.Uop{Op: isa.Load, PC: prog.CodeBase, Dst: isa.R(1), Src1: isa.R(2), Src2: isa.NoReg, Addr: 64, Size: 8, Label: "A"}
	w.Append(&u)
	w.Close()
	f.Add(seedBuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: encode an arbitrary sequence, decode, compare.
		uops := uopsFromBytes(data)
		var buf bytes.Buffer
		tw := NewWriter(&buf, "fuzz")
		midAt := len(uops) / 2
		mid := tw.Pos()
		for i := range uops {
			if i == midAt {
				mid = tw.Pos()
			}
			if err := tw.Append(&uops[i]); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		if err := tw.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reader on own output: %v", err)
		}
		var got isa.Uop
		for i := 0; ; i++ {
			if !r.Next(&got) {
				if r.Err() != nil {
					t.Fatalf("decode own output: %v", r.Err())
				}
				if i != len(uops) {
					t.Fatalf("decoded %d µops, want %d", i, len(uops))
				}
				break
			}
			if i >= len(uops) {
				t.Fatalf("decoded extra µop %d", i)
			}
			if got != uops[i] {
				t.Fatalf("µop %d drifted:\n got %#v\nwant %#v", i, got, uops[i])
			}
		}

		// Direction 2: reopen at the mid-trace checkpoint; the suffix
		// must decode identically, absolute sequence numbers included,
		// and still end cleanly at the footer.
		rs := NewReaderAt(bytes.NewReader(buf.Bytes()), mid)
		for i := midAt; ; i++ {
			if !rs.Next(&got) {
				if rs.Err() != nil {
					t.Fatalf("seek decode: %v", rs.Err())
				}
				if i != len(uops) {
					t.Fatalf("seek decoded %d µops, want %d", i-midAt, len(uops)-midAt)
				}
				break
			}
			if i >= len(uops) {
				t.Fatalf("seek decoded extra µop %d", i)
			}
			if got != uops[i] {
				t.Fatalf("seek µop %d drifted:\n got %#v\nwant %#v", i, got, uops[i])
			}
		}

		// Direction 3: raw bytes into the decoder — must not panic and
		// must not loop forever; errors are expected and fine.
		if r, err := NewReader(bytes.NewReader(data)); err == nil {
			var u isa.Uop
			for r.Next(&u) {
			}
			_ = r.Err()
		}

		// Direction 4: a checkpoint into arbitrary bytes must error or
		// end, never panic.
		rr := NewReaderAt(bytes.NewReader(data), Pos{Offset: uint64(len(data) / 2)})
		var u isa.Uop
		for rr.Next(&u) {
		}
		_ = rr.Err()
	})
}
