package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"ltp/internal/isa"
	"ltp/internal/prog"
)

const magic = "LTPTRC1\n"

const (
	flagTaken = 0x10
	flagLabel = 0x20
	flagMask  = flagTaken | flagLabel
	endMarker = 0xFF

	maxNameLen  = 1 << 16
	maxLabelLen = 1 << 12
	maxLabelTab = 1 << 20
	regNoneByte = 0 // isa.NoReg encodes as 0; real registers as reg+1
	maxRegByte  = isa.NumArchRegs
)

// ErrTruncated reports input that ended before the end-of-trace marker.
var ErrTruncated = errors.New("trace: truncated input")

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer encodes µops to an output stream. Close writes the footer;
// a trace without its footer is reported as truncated by the Reader.
type Writer struct {
	w         *bufio.Writer
	prevPC    uint64
	prevAddr  uint64
	labels    map[string]uint64
	labelList []string
	count     uint64
	off       uint64
	err       error
	closed    bool
}

// NewWriter writes the header for a trace of the named program and
// returns a Writer appending to w. The caller owns w (and closes it,
// if it is a file) after Close.
func NewWriter(w io.Writer, name string) *Writer {
	tw := &Writer{
		w:      bufio.NewWriterSize(w, 1<<16),
		prevPC: prog.CodeBase,
		labels: make(map[string]uint64),
	}
	if len(name) > maxNameLen {
		name = name[:maxNameLen]
	}
	tw.w.WriteString(magic)
	tw.off += uint64(len(magic))
	tw.uvarint(uint64(len(name)))
	tw.w.WriteString(name)
	tw.off += uint64(len(name))
	return tw
}

func (tw *Writer) uvarint(v uint64) {
	var buf [10]byte
	n := 0
	for v >= 0x80 {
		buf[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	buf[n] = byte(v)
	tw.w.Write(buf[:n+1])
	tw.off += uint64(n + 1)
}

func regByte(r isa.Reg) byte {
	if !r.Valid() {
		return regNoneByte
	}
	return byte(r) + 1
}

// Append encodes one µop. Sequence numbers are not stored: a record's
// position is its sequence number, so Append must be called in dynamic
// order starting from the first µop of the run.
func (tw *Writer) Append(u *isa.Uop) error {
	if tw.err != nil {
		return tw.err
	}
	if tw.closed {
		tw.err = errors.New("trace: Append after Close")
		return tw.err
	}
	head := byte(u.Op)
	if u.Op >= isa.NumOps {
		tw.err = fmt.Errorf("trace: invalid opcode %d", u.Op)
		return tw.err
	}
	if u.Taken {
		head |= flagTaken
	}
	if u.Label != "" {
		head |= flagLabel
	}
	if err := tw.w.WriteByte(head); err != nil {
		tw.err = err
		return err
	}
	tw.off++
	tw.uvarint(zigzag(int64(u.PC - tw.prevPC)))
	tw.prevPC = u.PC
	tw.w.WriteByte(regByte(u.Dst))
	tw.w.WriteByte(regByte(u.Src1))
	tw.w.WriteByte(regByte(u.Src2))
	tw.off += 3
	if u.IsMem() {
		tw.uvarint(zigzag(int64(u.Addr - tw.prevAddr)))
		tw.prevAddr = u.Addr
	}
	if u.IsBranch() {
		tw.uvarint(zigzag(int64(u.Target - (u.PC + prog.InstBytes))))
	}
	if u.Label != "" {
		lbl := u.Label
		if len(lbl) > maxLabelLen {
			lbl = lbl[:maxLabelLen]
		}
		if id, ok := tw.labels[lbl]; ok {
			tw.uvarint(id)
		} else {
			id = uint64(len(tw.labels))
			tw.labels[lbl] = id
			tw.labelList = append(tw.labelList, lbl)
			tw.uvarint(id)
			tw.uvarint(uint64(len(lbl)))
			tw.w.WriteString(lbl)
			tw.off += uint64(len(lbl))
		}
	}
	tw.count++
	return nil
}

// Pos is a resumable mid-trace position: everything a Reader needs to
// resume decoding at a record boundary without re-reading the prefix —
// the byte offset of the next record head, the delta-coding state, and
// the label table interned so far. Positions are captured between
// Appends with Writer.Pos and consumed by NewReaderAt; they index the
// interval boundaries of a sampled run.
type Pos struct {
	// Offset is the byte offset (from the start of the trace, header
	// included) of the next record head.
	Offset uint64
	// Records is the number of µop records encoded before this
	// position; µops decoded from here continue the recording's
	// absolute sequence numbering at this value.
	Records uint64
	// PrevPC is the PC delta-coding state at this position.
	PrevPC uint64
	// PrevAddr is the address delta-coding state at this position.
	PrevAddr uint64
	// Labels is the label table prefix interned before this position,
	// in interning order.
	Labels []string
}

// Pos captures the Writer's current position, a checkpoint from which
// NewReaderAt can resume decoding. Append never leaves the Writer
// mid-record, so any moment between Appends is a valid checkpoint.
func (tw *Writer) Pos() Pos {
	labels := make([]string, len(tw.labelList))
	copy(labels, tw.labelList)
	return Pos{
		Offset:   tw.off,
		Records:  tw.count,
		PrevPC:   tw.prevPC,
		PrevAddr: tw.prevAddr,
		Labels:   labels,
	}
}

// Count returns the number of µops appended so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Close writes the end marker and footer and flushes. It does not close
// the underlying io.Writer.
func (tw *Writer) Close() error {
	if tw.closed {
		return tw.err
	}
	tw.closed = true
	if tw.err != nil {
		return tw.err
	}
	tw.w.WriteByte(endMarker)
	tw.uvarint(tw.count)
	tw.err = tw.w.Flush()
	return tw.err
}

// Reader decodes a trace, yielding its µops in recorded order. It
// implements prog.Stream and prog.FastForwarder, so it plugs into
// pipeline.New and ltp.Run exactly where the functional emulator does.
type Reader struct {
	r        *bufio.Reader
	name     string
	prevPC   uint64
	prevAddr uint64
	labels   []string
	seq      uint64
	done     bool
	err      error
}

// NewReader parses the trace header from r and returns a Reader
// positioned at the first µop.
func NewReader(r io.Reader) (*Reader, error) {
	tr := &Reader{r: bufio.NewReaderSize(r, 1<<16), prevPC: prog.CodeBase}
	var mg [len(magic)]byte
	if _, err := io.ReadFull(tr.r, mg[:]); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if string(mg[:]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", mg)
	}
	n, err := tr.uvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if n > maxNameLen {
		return nil, fmt.Errorf("trace: program name length %d exceeds %d", n, maxNameLen)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(tr.r, name); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	tr.name = string(name)
	return tr, nil
}

// NewReaderAt opens a Reader positioned mid-trace at a checkpoint
// previously captured with Writer.Pos, reading from r at pos.Offset.
// Decoded µops continue the recording's absolute sequence numbering
// (Seq = pos.Records onward), and the footer count is still validated
// against the whole recording, so a trace opened at any interval
// boundary detects truncation exactly like one read from the start.
// The program name is not recoverable mid-trace; Name returns "".
func NewReaderAt(r io.ReaderAt, pos Pos) *Reader {
	sec := io.NewSectionReader(r, int64(pos.Offset), 1<<62)
	tr := &Reader{
		r:        bufio.NewReaderSize(sec, 1<<16),
		prevPC:   pos.PrevPC,
		prevAddr: pos.PrevAddr,
		seq:      pos.Records,
	}
	tr.labels = append(tr.labels, pos.Labels...)
	return tr
}

// Name returns the recorded program's name ("" for a Reader opened
// mid-trace with NewReaderAt).
func (tr *Reader) Name() string { return tr.name }

// Err returns the decode error, if the trace turned out to be corrupt
// or truncated. It is nil after a clean end-of-trace.
func (tr *Reader) Err() error { return tr.err }

// Seq returns the sequence number of the next µop — for a Reader
// opened at the start, the number decoded so far; for one opened with
// NewReaderAt, the absolute position within the whole recording.
func (tr *Reader) Seq() uint64 { return tr.seq }

func (tr *Reader) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := tr.r.ReadByte()
		if err != nil {
			return 0, err
		}
		if shift >= 63 && b > 1 {
			return 0, errors.New("varint overflow")
		}
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
}

func (tr *Reader) fail(err error) bool {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		err = ErrTruncated
	}
	tr.err = err
	tr.done = true
	return false
}

func (tr *Reader) readReg() (isa.Reg, error) {
	b, err := tr.r.ReadByte()
	if err != nil {
		return isa.NoReg, err
	}
	if b > maxRegByte {
		return isa.NoReg, fmt.Errorf("trace: invalid register byte %d", b)
	}
	if b == regNoneByte {
		return isa.NoReg, nil
	}
	return isa.Reg(b) - 1, nil
}

// Next decodes one µop into *u, returning false at end of trace or on
// a decode error (distinguish with Err).
func (tr *Reader) Next(u *isa.Uop) bool {
	if tr.done {
		return false
	}
	head, err := tr.r.ReadByte()
	if err != nil {
		return tr.fail(err)
	}
	if head == endMarker {
		count, err := tr.uvarint()
		if err != nil {
			return tr.fail(err)
		}
		if count != tr.seq {
			return tr.fail(fmt.Errorf("trace: footer count %d, decoded %d records", count, tr.seq))
		}
		tr.done = true
		return false
	}
	op := isa.Op(head &^ (flagMask | 0xC0))
	if head&^(flagMask|0x0F) != 0 || op >= isa.NumOps {
		return tr.fail(fmt.Errorf("trace: invalid record head %#x", head))
	}
	*u = isa.Uop{Seq: tr.seq, Op: op, Size: 8}
	tr.seq++

	d, err := tr.uvarint()
	if err != nil {
		return tr.fail(err)
	}
	u.PC = tr.prevPC + uint64(unzigzag(d))
	tr.prevPC = u.PC
	if u.Dst, err = tr.readReg(); err != nil {
		return tr.fail(err)
	}
	if u.Src1, err = tr.readReg(); err != nil {
		return tr.fail(err)
	}
	if u.Src2, err = tr.readReg(); err != nil {
		return tr.fail(err)
	}
	if op.IsMem() {
		d, err := tr.uvarint()
		if err != nil {
			return tr.fail(err)
		}
		u.Addr = tr.prevAddr + uint64(unzigzag(d))
		tr.prevAddr = u.Addr
	}
	if op == isa.Branch {
		d, err := tr.uvarint()
		if err != nil {
			return tr.fail(err)
		}
		u.Target = u.PC + prog.InstBytes + uint64(unzigzag(d))
		u.Taken = head&flagTaken != 0
	}
	if head&flagLabel != 0 {
		ref, err := tr.uvarint()
		if err != nil {
			return tr.fail(err)
		}
		switch {
		case ref < uint64(len(tr.labels)):
			u.Label = tr.labels[ref]
		case ref == uint64(len(tr.labels)):
			if ref >= maxLabelTab {
				return tr.fail(fmt.Errorf("trace: label table exceeds %d entries", maxLabelTab))
			}
			n, err := tr.uvarint()
			if err != nil {
				return tr.fail(err)
			}
			if n > maxLabelLen {
				return tr.fail(fmt.Errorf("trace: label length %d exceeds %d", n, maxLabelLen))
			}
			lbl := make([]byte, n)
			if _, err := io.ReadFull(tr.r, lbl); err != nil {
				return tr.fail(err)
			}
			tr.labels = append(tr.labels, string(lbl))
			u.Label = string(lbl)
		default:
			return tr.fail(fmt.Errorf("trace: label reference %d beyond table of %d", ref, len(tr.labels)))
		}
	}
	return true
}

// FastForward replays up to n µops through touch (which may be nil)
// without any timing model — the trace analog of the emulator's
// functional fast warm-up. It returns the number of µops replayed.
func (tr *Reader) FastForward(n uint64, touch func(u *isa.Uop)) uint64 {
	return fastForward(tr, n, touch)
}

var (
	_ prog.Stream        = (*Reader)(nil)
	_ prog.FastForwarder = (*Reader)(nil)
)
