package bpred

// TAGE direction predictor (Seznec & Michaud, "A case for (partially)
// TAgged GEometric history length branch predictors"): a bimodal base
// table backed by tagged tables indexed with geometrically increasing
// global-history lengths. The longest-history matching table provides
// the prediction; tagged entries carry 3-bit signed counters and 2-bit
// usefulness counters; allocation on mispredicts steals only useless
// entries; a use-alt-on-new-alloc counter steers around weak, freshly
// allocated providers. Indices and tags come from folded (circularly
// compressed) history registers, so a lookup costs O(tables), not
// O(history length).

// tageHistLens are the geometric history lengths of the tagged tables,
// shortest first (ratio ≈ 2.7, the classic TAGE spacing).
var tageHistLens = [tageTables]int{6, 16, 44, 120}

const (
	tageTables    = 4       // tagged tables
	tageIdxBits   = 10      // 1K entries per tagged table
	tageTagBits   = 9       // tag width
	tageBimBits   = 13      // 8K-entry bimodal base
	tageHistBuf   = 256     // history ring capacity (power of two ≥ max length)
	tageAgePeriod = 1 << 18 // branches between usefulness-aging passes
)

// tageEntry is one tagged-table entry.
type tageEntry struct {
	tag uint16 // partial tag
	ctr int8   // signed 3-bit prediction counter, [-4, 3]; ≥0 = taken
	u   uint8  // 2-bit usefulness
}

// folded is a circularly-folded history register: a compLen-bit
// compression of the most recent origLen history bits, updatable in
// O(1) per branch.
type folded struct {
	val     uint32
	origLen int
	compLen uint
}

// update shifts newBit in and origLen-old oldBit out of the fold.
func (f *folded) update(newBit, oldBit uint32) {
	f.val = (f.val << 1) | newBit
	f.val ^= oldBit << (uint(f.origLen) % f.compLen)
	f.val ^= f.val >> f.compLen
	f.val &= 1<<f.compLen - 1
}

// tageTable is one tagged component.
type tageTable struct {
	entries []tageEntry
	histLen int
	fIdx    folded // index fold (tageIdxBits wide)
	fTag    folded // tag fold (tageTagBits wide)
	fTag2   folded // second tag fold (tageTagBits-1 wide) for mixing
}

// TAGE is the TAGE predictor plus the shared tagged BTB for targets.
type TAGE struct {
	bim     []uint8 // 2-bit bimodal counters
	bimMask uint32

	tables [tageTables]tageTable

	hist    [tageHistBuf]uint8 // global history ring, newest at histPos-1
	histPos int

	useAlt int8   // use-alt-on-new-alloc, [0, 15]; ≥8 = trust altpred
	age    uint32 // branches since the last usefulness-aging pass

	btb btb
	st  Stats
}

// NewTAGE builds the baseline TAGE: 8K-entry bimodal base, four 1K-entry
// tagged tables at history lengths 6/16/44/120, and a 4K-entry BTB.
func NewTAGE() *TAGE {
	t := &TAGE{
		bim:     make([]uint8, 1<<tageBimBits),
		bimMask: uint32(1<<tageBimBits - 1),
		btb:     newBTB(12),
		useAlt:  8,
	}
	// Weakly-taken bimodal start, like the gshare PHT's zero state
	// predicts not-taken; start bimodal at weakly not-taken (1) so the
	// first outcomes decide quickly.
	for i := range t.bim {
		t.bim[i] = 1
	}
	for i := range t.tables {
		t.tables[i] = tageTable{
			entries: make([]tageEntry, 1<<tageIdxBits),
			histLen: tageHistLens[i],
			fIdx:    folded{origLen: tageHistLens[i], compLen: tageIdxBits},
			fTag:    folded{origLen: tageHistLens[i], compLen: tageTagBits},
			fTag2:   folded{origLen: tageHistLens[i], compLen: tageTagBits - 1},
		}
	}
	return t
}

// Name returns "tage".
func (t *TAGE) Name() string { return "tage" }

// Stats returns the statistics counters.
func (t *TAGE) Stats() *Stats { return &t.st }

// histBit returns the history bit age steps in the past (0 = newest).
func (t *TAGE) histBit(age int) uint32 {
	return uint32(t.hist[(t.histPos-1-age)&(tageHistBuf-1)])
}

// index computes table i's entry index for pc.
func (t *TAGE) index(i int, pc uint64) uint32 {
	tb := &t.tables[i]
	return (uint32(pc>>2) ^ uint32(pc>>(2+tageIdxBits)) ^ tb.fIdx.val ^
		uint32(i)) & (1<<tageIdxBits - 1)
}

// tag computes table i's partial tag for pc.
func (t *TAGE) tag(i int, pc uint64) uint16 {
	tb := &t.tables[i]
	return uint16((uint32(pc>>2) ^ tb.fTag.val ^ (tb.fTag2.val << 1)) &
		(1<<tageTagBits - 1))
}

// lookupState is one prediction's resolved provider chain, shared
// between the predict and update halves of Lookup.
type lookupState struct {
	provider int // longest matching tagged table, -1 = bimodal
	altTable int // next matching tagged table, -1 = bimodal
	idx      [tageTables]uint32
	tag      [tageTables]uint16
	provPred bool // provider component's direction
	altPred  bool // alternate component's direction
	weak     bool // provider entry looks newly allocated
	taken    bool // final direction prediction
}

// predict resolves the provider chain and direction for pc.
func (t *TAGE) predict(pc uint64) lookupState {
	s := lookupState{provider: -1, altTable: -1}
	for i := 0; i < tageTables; i++ {
		s.idx[i] = t.index(i, pc)
		s.tag[i] = t.tag(i, pc)
	}
	for i := tageTables - 1; i >= 0; i-- {
		if t.tables[i].entries[s.idx[i]].tag == s.tag[i] {
			if s.provider < 0 {
				s.provider = i
			} else {
				s.altTable = i
				break
			}
		}
	}
	bimTaken := t.bim[uint32(pc>>2)&t.bimMask] >= 2
	if s.altTable >= 0 {
		s.altPred = t.tables[s.altTable].entries[s.idx[s.altTable]].ctr >= 0
	} else {
		s.altPred = bimTaken
	}
	if s.provider >= 0 {
		e := &t.tables[s.provider].entries[s.idx[s.provider]]
		s.provPred = e.ctr >= 0
		s.weak = (e.ctr == 0 || e.ctr == -1) && e.u == 0
		if s.weak && t.useAlt >= 8 {
			s.taken = s.altPred
		} else {
			s.taken = s.provPred
		}
	} else {
		s.provPred = bimTaken
		s.altPred = bimTaken
		s.taken = bimTaken
	}
	return s
}

// Lookup predicts the branch at pc and immediately trains with the true
// outcome. It returns whether the prediction (direction and, for taken
// branches, target) was correct.
func (t *TAGE) Lookup(pc uint64, taken bool, target uint64) (correct bool) {
	t.st.Branches++
	s := t.predict(pc)

	correct = s.taken == taken
	if !correct {
		t.st.DirMiss++
	}
	if taken {
		if correct && !t.btb.hit(pc, target) {
			t.st.TargetMiss++
			correct = false
		}
		t.btb.update(pc, target)
	}
	if !correct {
		t.st.Mispredicts++
	}

	t.update(pc, taken, &s)
	t.pushHistory(taken)
	return correct
}

// update trains the provider chain, steers the use-alt counter, and
// allocates a longer-history entry on direction mispredicts.
func (t *TAGE) update(pc uint64, taken bool, s *lookupState) {
	if s.provider >= 0 {
		e := &t.tables[s.provider].entries[s.idx[s.provider]]
		// Weak providers steer the use-alt-on-new-alloc counter: when
		// the alternate disagreed, whichever was right wins a vote.
		if s.weak && s.provPred != s.altPred {
			if s.altPred == taken {
				if t.useAlt < 15 {
					t.useAlt++
				}
			} else if t.useAlt > 0 {
				t.useAlt--
			}
		}
		sat3(&e.ctr, taken)
		// Usefulness tracks "provider beat the alternate".
		if s.provPred != s.altPred {
			if s.provPred == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		// A weak provider lets the base table keep learning too.
		if s.weak {
			t.updateBimodal(pc, taken)
		}
	} else {
		t.updateBimodal(pc, taken)
	}

	// Allocate a longer-history entry when the final direction was
	// wrong: first useless (u == 0) entry above the provider wins; if
	// none, every candidate's usefulness decays so one frees up soon.
	if s.taken != taken && s.provider < tageTables-1 {
		allocated := false
		for i := s.provider + 1; i < tageTables; i++ {
			e := &t.tables[i].entries[s.idx[i]]
			if e.u == 0 {
				e.tag = s.tag[i]
				e.u = 0
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				allocated = true
				break
			}
		}
		if !allocated {
			for i := s.provider + 1; i < tageTables; i++ {
				e := &t.tables[i].entries[s.idx[i]]
				if e.u > 0 {
					e.u--
				}
			}
		}
	}

	// Periodic usefulness aging keeps stale entries from squatting.
	t.age++
	if t.age >= tageAgePeriod {
		t.age = 0
		for i := range t.tables {
			es := t.tables[i].entries
			for j := range es {
				es[j].u >>= 1
			}
		}
	}
}

// updateBimodal trains the 2-bit base counter.
func (t *TAGE) updateBimodal(pc uint64, taken bool) {
	i := uint32(pc>>2) & t.bimMask
	if taken {
		if t.bim[i] < 3 {
			t.bim[i]++
		}
	} else if t.bim[i] > 0 {
		t.bim[i]--
	}
}

// pushHistory shifts the outcome into the global history ring and every
// folded register.
func (t *TAGE) pushHistory(taken bool) {
	nb := b2u(taken)
	for i := range t.tables {
		tb := &t.tables[i]
		ob := t.histBit(tb.histLen - 1)
		tb.fIdx.update(nb, ob)
		tb.fTag.update(nb, ob)
		tb.fTag2.update(nb, ob)
	}
	t.hist[t.histPos] = uint8(nb)
	t.histPos = (t.histPos + 1) & (tageHistBuf - 1)
}

// PredictOnly returns whether the current tables would predict the
// branch correctly, without training or counting statistics.
func (t *TAGE) PredictOnly(pc uint64, taken bool, target uint64) bool {
	s := t.predict(pc)
	if s.taken != taken {
		return false
	}
	if taken && !t.btb.hit(pc, target) {
		return false
	}
	return true
}

// Clone returns a deep copy: base table, tagged tables, history ring,
// folds and BTB are all duplicated so the copy trains independently.
func (t *TAGE) Clone() Predictor {
	cp := *t
	cp.bim = append([]uint8(nil), t.bim...)
	for i := range cp.tables {
		cp.tables[i].entries = append([]tageEntry(nil), t.tables[i].entries...)
	}
	cp.btb = t.btb.clone()
	return &cp
}

// ResetStats zeroes the prediction statistics while keeping the trained
// tables.
func (t *TAGE) ResetStats() { t.st.Reset() }

// sat3 saturating-updates a signed 3-bit counter toward the outcome.
func sat3(c *int8, taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > -4 {
		*c--
	}
}
