// Package bpred implements the branch direction predictors and BTB used
// by the simulated front-end. Two direction predictors are registered:
//
//   - "gshare": global-history-XOR-PC indexed 2-bit counters (the
//     original baseline predictor), plus a direct-mapped tagged BTB.
//   - "tage": a TAGE predictor — bimodal base table plus tagged tables
//     indexed by geometrically increasing global-history lengths, with
//     3-bit signed counters, usefulness counters, use-alt-on-new-alloc
//     steering and periodic usefulness aging.
//
// The simulator is trace-driven, so wrong-path instructions are not
// executed; a misprediction instead stalls fetch until the branch
// resolves in the backend, which reproduces the pipeline-refill bubble
// (see DESIGN.md §5). Tables and histories are updated with the true
// outcome at prediction time, modelling an ideally-repaired history.
package bpred

import (
	"fmt"
	"sort"
)

// Predictor is the front-end branch predictor contract: direction
// prediction plus target checking against a BTB. Implementations must be
// deterministic and must support Clone for the sampled fidelity tier's
// checkpointed warm state.
type Predictor interface {
	// Name returns the registry name of the implementation.
	Name() string
	// Lookup predicts the branch at pc and immediately trains with the
	// true outcome. It returns whether the prediction (direction and,
	// for taken branches, target) was correct.
	Lookup(pc uint64, taken bool, target uint64) bool
	// PredictOnly returns whether the current tables would predict the
	// branch correctly, without training or counting statistics. Used
	// for replayed fetches after a squash so the predictor is not
	// trained twice on one dynamic branch.
	PredictOnly(pc uint64, taken bool, target uint64) bool
	// Clone returns a deep copy that trains independently of the
	// original — the sampled tier clones a functionally-warmed
	// predictor at every interval boundary.
	Clone() Predictor
	// Stats returns the predictor's statistics counters (mutable).
	Stats() *Stats
	// ResetStats zeroes the statistics while keeping the trained
	// tables — the warm-up/measured-region boundary of a simulation.
	ResetStats()
}

// Stats holds the prediction statistics every implementation reports.
type Stats struct {
	// Branches counts predicted (trained) dynamic branches.
	Branches uint64
	// DirMiss counts direction mispredictions.
	DirMiss uint64
	// TargetMiss counts direction-correct taken branches whose BTB
	// target was unknown or stale (still a front-end redirect).
	TargetMiss uint64
	// Mispredicts counts total mispredictions (direction or target).
	Mispredicts uint64
}

// Reset zeroes the counters.
func (s *Stats) Reset() { *s = Stats{} }

// Accuracy returns the fraction of correctly predicted branches.
func (s *Stats) Accuracy() float64 {
	if s.Branches == 0 {
		return 1
	}
	return 1 - float64(s.Mispredicts)/float64(s.Branches)
}

// DefaultName is the predictor the baseline core uses when a spec
// leaves the axis unset.
const DefaultName = "gshare"

// builders maps registry names to constructors for the baseline-sized
// configuration of each predictor.
var builders = map[string]func() Predictor{
	"gshare": func() Predictor { return NewGshare(16, 12) },
	"tage":   func() Predictor { return NewTAGE() },
}

// New builds the named predictor at its baseline configuration. The
// empty name means DefaultName.
func New(name string) (Predictor, error) {
	if name == "" {
		name = DefaultName
	}
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("bpred: unknown branch predictor %q (have %v)", name, Names())
	}
	return b(), nil
}

// Default returns the baseline predictor (16-bit gshare, 4K-entry BTB).
func Default() Predictor { return NewGshare(16, 12) }

// Names returns the registered predictor names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// btb is a direct-mapped, fully-tagged branch target buffer shared by
// the direction predictors: direction-correct taken branches still
// redirect when the target is unknown or stale.
type btb struct {
	tags    []uint64
	targets []uint64
	mask    uint64
}

func newBTB(bits uint) btb {
	return btb{
		tags:    make([]uint64, 1<<bits),
		targets: make([]uint64, 1<<bits),
		mask:    uint64(1<<bits - 1),
	}
}

// hit reports whether the BTB holds pc with exactly this target.
func (b *btb) hit(pc, target uint64) bool {
	i := (pc >> 2) & b.mask
	return b.tags[i] == pc && b.targets[i] == target
}

// update installs the target for pc.
func (b *btb) update(pc, target uint64) {
	i := (pc >> 2) & b.mask
	b.tags[i] = pc
	b.targets[i] = target
}

// clone deep-copies the BTB.
func (b *btb) clone() btb {
	return btb{
		tags:    append([]uint64(nil), b.tags...),
		targets: append([]uint64(nil), b.targets...),
		mask:    b.mask,
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
