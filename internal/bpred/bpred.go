// Package bpred implements the branch direction predictor and BTB used by
// the simulated front-end: a gshare predictor with 2-bit saturating
// counters plus a direct-mapped, tagged branch target buffer.
//
// The simulator is trace-driven, so wrong-path instructions are not
// executed; a misprediction instead stalls fetch until the branch resolves
// in the backend, which reproduces the pipeline-refill bubble (see
// DESIGN.md §5). Tables and the global history are updated with the true
// outcome at prediction time, modelling an ideally-repaired history.
package bpred

// Predictor is a gshare + BTB front-end predictor.
type Predictor struct {
	pht     []uint8 // 2-bit counters
	phtMask uint32
	ghr     uint32
	ghrBits uint

	btbTags    []uint64
	btbTargets []uint64
	btbMask    uint64

	// Statistics.
	Branches    uint64
	DirMiss     uint64
	TargetMiss  uint64
	Mispredicts uint64
}

// New builds a predictor with 2^phtBits counters and 2^btbBits BTB entries.
func New(phtBits, btbBits uint) *Predictor {
	return &Predictor{
		pht:        make([]uint8, 1<<phtBits),
		phtMask:    uint32(1<<phtBits - 1),
		ghrBits:    phtBits,
		btbTags:    make([]uint64, 1<<btbBits),
		btbTargets: make([]uint64, 1<<btbBits),
		btbMask:    uint64(1<<btbBits - 1),
	}
}

// Default returns the configuration used by the baseline core: 16-bit
// gshare and a 4K-entry BTB.
func Default() *Predictor { return New(16, 12) }

func (p *Predictor) phtIndex(pc uint64) uint32 {
	return (uint32(pc>>2) ^ p.ghr) & p.phtMask
}

// Lookup predicts the branch at pc and immediately trains with the true
// outcome. It returns whether the prediction (direction and, for taken
// branches, target) was correct.
func (p *Predictor) Lookup(pc uint64, taken bool, target uint64) (correct bool) {
	p.Branches++
	idx := p.phtIndex(pc)
	predTaken := p.pht[idx] >= 2

	correct = predTaken == taken
	if !correct {
		p.DirMiss++
	}
	if taken {
		bi := (pc >> 2) & p.btbMask
		if correct && (p.btbTags[bi] != pc || p.btbTargets[bi] != target) {
			// Right direction but unknown/stale target is still a redirect.
			p.TargetMiss++
			correct = false
		}
		p.btbTags[bi] = pc
		p.btbTargets[bi] = target
	}
	if !correct {
		p.Mispredicts++
	}

	// Train the 2-bit counter and history with the true outcome.
	if taken {
		if p.pht[idx] < 3 {
			p.pht[idx]++
		}
	} else if p.pht[idx] > 0 {
		p.pht[idx]--
	}
	p.ghr = ((p.ghr << 1) | b2u(taken)) & p.phtMask
	return correct
}

// PredictOnly returns whether the current tables would predict the branch
// correctly, without training or counting statistics. Used for replayed
// fetches after a squash so the predictor is not trained twice on one
// dynamic branch.
func (p *Predictor) PredictOnly(pc uint64, taken bool, target uint64) bool {
	predTaken := p.pht[p.phtIndex(pc)] >= 2
	if predTaken != taken {
		return false
	}
	if taken {
		bi := (pc >> 2) & p.btbMask
		if p.btbTags[bi] != pc || p.btbTargets[bi] != target {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the predictor: PHT, history and BTB are
// duplicated so the copy trains independently. The sampled fidelity
// tier clones a functionally-warmed predictor at interval boundaries.
func (p *Predictor) Clone() *Predictor {
	cp := *p
	cp.pht = append([]uint8(nil), p.pht...)
	cp.btbTags = append([]uint64(nil), p.btbTags...)
	cp.btbTargets = append([]uint64(nil), p.btbTargets...)
	return &cp
}

// ResetStats zeroes the prediction statistics while keeping the trained
// tables — the warm-up/measured-region boundary of a simulation.
func (p *Predictor) ResetStats() {
	p.Branches, p.DirMiss, p.TargetMiss, p.Mispredicts = 0, 0, 0, 0
}

// Accuracy returns the fraction of correctly predicted branches.
func (p *Predictor) Accuracy() float64 {
	if p.Branches == 0 {
		return 1
	}
	return 1 - float64(p.Mispredicts)/float64(p.Branches)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
