package bpred

import (
	"reflect"
	"testing"
)

func TestLearnsAlwaysTaken(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		pc, tgt := uint64(0x1000), uint64(0x2000)
		// Histories must saturate before indices stabilize; train well
		// past that.
		for i := 0; i < 256; i++ {
			p.Lookup(pc, true, tgt)
		}
		if !p.PredictOnly(pc, true, tgt) {
			t.Errorf("%s: always-taken branch not learned", name)
		}
		if p.Stats().Accuracy() >= 1 {
			t.Errorf("%s: warm-up mispredictions must be counted", name)
		}
	}
}

func TestLearnsAlternatingWithHistory(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		pc, tgt := uint64(0x3000), uint64(0x4000)
		// Alternating pattern: both predictors should learn it via
		// global history.
		for i := 0; i < 400; i++ {
			p.Lookup(pc, i%2 == 0, tgt)
		}
		lateMiss := 0
		for i := 0; i < 100; i++ {
			if !p.Lookup(pc, i%2 == 0, tgt) {
				lateMiss++
			}
		}
		if lateMiss > 10 {
			t.Errorf("%s: alternating pattern: %d/100 late mispredicts", name, lateMiss)
		}
	}
}

func TestBTBTargetMiss(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		pc := uint64(0x5000)
		// First taken encounter: direction may be wrong AND target unknown.
		p.Lookup(pc, true, 0x6000)
		if p.Stats().TargetMiss+p.Stats().DirMiss == 0 {
			t.Errorf("%s: first taken branch must mispredict somehow", name)
		}
		// Train to taken until histories saturate; then change the
		// target: the direction is right but the BTB is stale.
		for i := 0; i < 256; i++ {
			p.Lookup(pc, true, 0x6000)
		}
		before := p.Stats().TargetMiss
		p.Lookup(pc, true, 0x7000)
		if p.Stats().TargetMiss != before+1 {
			t.Errorf("%s: changed target not counted as target miss", name)
		}
	}
}

func TestPredictOnlyDoesNotTrain(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		pc := uint64(0x8000)
		for i := 0; i < 4; i++ {
			p.Lookup(pc, true, 0x9000)
		}
		snap := p.Clone()
		p.PredictOnly(pc, true, 0x9000)
		p.PredictOnly(pc, false, 0x9000)
		if !reflect.DeepEqual(p, snap) {
			t.Errorf("%s: PredictOnly must not mutate state", name)
		}
	}
}

func TestNotTakenDefault(t *testing.T) {
	p := Default()
	// Gshare counters start at 0: not-taken branches predict correctly
	// at once.
	if !p.Lookup(0xA000, false, 0) {
		t.Error("cold not-taken branch should predict correctly")
	}
	if p.Stats().Accuracy() != 1 {
		t.Errorf("accuracy %v", p.Stats().Accuracy())
	}
}

func TestAccuracyIdle(t *testing.T) {
	if Default().Stats().Accuracy() != 1 {
		t.Error("idle predictor accuracy must be 1")
	}
}

func TestRegistry(t *testing.T) {
	want := []string{"gshare", "tage"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if p, err := New(""); err != nil || p.Name() != DefaultName {
		t.Errorf(`New("") = %v, %v; want the default %q`, p, err, DefaultName)
	}
	for _, name := range want {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := New("perceptron"); err == nil {
		t.Error("unknown predictor name must error")
	}
}

// TestCloneDivergence checks the sampled-tier contract: a clone trains
// independently of its original.
func TestCloneDivergence(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		pc, tgt := uint64(0xB000), uint64(0xC000)
		for i := 0; i < 300; i++ {
			p.Lookup(pc, i%3 == 0, tgt)
		}
		cp := p.Clone()
		if !reflect.DeepEqual(p, cp) {
			t.Fatalf("%s: fresh clone must equal the original", name)
		}
		// Train the clone on the opposite pattern; the original must not
		// move.
		snap := p.Clone()
		for i := 0; i < 300; i++ {
			cp.Lookup(pc, i%3 != 0, tgt)
			cp.Lookup(pc+64, i%2 == 0, tgt)
		}
		if !reflect.DeepEqual(p, snap) {
			t.Errorf("%s: training a clone mutated the original", name)
		}
		if reflect.DeepEqual(p, cp) {
			t.Errorf("%s: clone did not diverge after independent training", name)
		}
	}
}

// TestTAGELongHistoryBeatsGshare exercises the core TAGE advantage: a
// long-trip-count loop branch (25 taken, one not-taken) aliases in
// gshare — the 16-bit history is all-ones both mid-loop and at the
// exit — while TAGE's 44/120-bit history tables see the previous exit
// and learn the trip count exactly.
func TestTAGELongHistoryBeatsGshare(t *testing.T) {
	pattern := make([]bool, 26)
	for i := range pattern {
		pattern[i] = i != len(pattern)-1
	}
	run := func(p Predictor) float64 {
		pc, tgt := uint64(0xD000), uint64(0xE000)
		for i := 0; i < 30000; i++ {
			p.Lookup(pc, pattern[i%len(pattern)], tgt)
		}
		p.ResetStats()
		for i := 30000; i < 40000; i++ {
			p.Lookup(pc, pattern[i%len(pattern)], tgt)
		}
		st := p.Stats()
		return float64(st.Mispredicts) / float64(st.Branches)
	}
	g := run(Default())
	tg := run(NewTAGE())
	if tg >= g {
		t.Errorf("TAGE mispredict rate %.4f not below gshare %.4f on a long loop branch", tg, g)
	}
	if tg > 0.01 {
		t.Errorf("TAGE mispredict rate %.4f too high for a learnable trip count", tg)
	}
}

func BenchmarkGshareLookup(b *testing.B) {
	p := Default()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x1000 + (i%64)*4)
		p.Lookup(pc, i&3 != 0, pc+128)
	}
}

func BenchmarkTAGELookup(b *testing.B) {
	p := NewTAGE()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x1000 + (i%64)*4)
		p.Lookup(pc, i&3 != 0, pc+128)
	}
}
