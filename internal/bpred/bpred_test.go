package bpred

import "testing"

func TestLearnsAlwaysTaken(t *testing.T) {
	p := Default()
	pc, tgt := uint64(0x1000), uint64(0x2000)
	// The global history must saturate (16 bits) before the gshare index
	// stabilizes; train well past that.
	for i := 0; i < 64; i++ {
		p.Lookup(pc, true, tgt)
	}
	if !p.PredictOnly(pc, true, tgt) {
		t.Error("always-taken branch not learned")
	}
	if p.Accuracy() >= 1 {
		t.Error("warm-up mispredictions must be counted")
	}
}

func TestLearnsAlternatingWithHistory(t *testing.T) {
	p := Default()
	pc, tgt := uint64(0x3000), uint64(0x4000)
	// Alternating pattern: gshare should learn it via history.
	miss := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		if !p.Lookup(pc, taken, tgt) {
			miss++
		}
	}
	// Late-phase accuracy should be high.
	lateMiss := 0
	for i := 0; i < 100; i++ {
		taken := i%2 == 0
		if !p.Lookup(pc, taken, tgt) {
			lateMiss++
		}
	}
	if lateMiss > 10 {
		t.Errorf("alternating pattern: %d/100 late mispredicts", lateMiss)
	}
}

func TestBTBTargetMiss(t *testing.T) {
	p := Default()
	pc := uint64(0x5000)
	// First taken encounter: direction may be wrong AND target unknown.
	p.Lookup(pc, true, 0x6000)
	if p.TargetMiss+p.DirMiss == 0 {
		t.Error("first taken branch must mispredict somehow")
	}
	// Train to taken until the history saturates; then change the
	// target: the direction is right but the BTB is stale.
	for i := 0; i < 64; i++ {
		p.Lookup(pc, true, 0x6000)
	}
	before := p.TargetMiss
	p.Lookup(pc, true, 0x7000)
	if p.TargetMiss != before+1 {
		t.Error("changed target not counted as target miss")
	}
}

func TestPredictOnlyDoesNotTrain(t *testing.T) {
	p := Default()
	pc := uint64(0x8000)
	for i := 0; i < 4; i++ {
		p.Lookup(pc, true, 0x9000)
	}
	b := p.Branches
	g := p.ghr
	p.PredictOnly(pc, true, 0x9000)
	if p.Branches != b || p.ghr != g {
		t.Error("PredictOnly must not mutate state")
	}
}

func TestNotTakenDefault(t *testing.T) {
	p := Default()
	// Counters start at 0: not-taken branches predict correctly at once.
	if !p.Lookup(0xA000, false, 0) {
		t.Error("cold not-taken branch should predict correctly")
	}
	if p.Accuracy() != 1 {
		t.Errorf("accuracy %v", p.Accuracy())
	}
}

func TestAccuracyIdle(t *testing.T) {
	if Default().Accuracy() != 1 {
		t.Error("idle predictor accuracy must be 1")
	}
}
