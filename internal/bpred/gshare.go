package bpred

// Gshare is the baseline direction predictor: a global history register
// XOR-folded into the PC indexes a table of 2-bit saturating counters,
// plus the shared tagged BTB for targets.
type Gshare struct {
	pht     []uint8 // 2-bit counters
	phtMask uint32
	ghr     uint32
	ghrBits uint

	btb btb
	st  Stats
}

// NewGshare builds a gshare predictor with 2^phtBits counters and
// 2^btbBits BTB entries.
func NewGshare(phtBits, btbBits uint) *Gshare {
	return &Gshare{
		pht:     make([]uint8, 1<<phtBits),
		phtMask: uint32(1<<phtBits - 1),
		ghrBits: phtBits,
		btb:     newBTB(btbBits),
	}
}

// Name returns "gshare".
func (p *Gshare) Name() string { return "gshare" }

// Stats returns the statistics counters.
func (p *Gshare) Stats() *Stats { return &p.st }

func (p *Gshare) phtIndex(pc uint64) uint32 {
	return (uint32(pc>>2) ^ p.ghr) & p.phtMask
}

// Lookup predicts the branch at pc and immediately trains with the true
// outcome. It returns whether the prediction (direction and, for taken
// branches, target) was correct.
func (p *Gshare) Lookup(pc uint64, taken bool, target uint64) (correct bool) {
	p.st.Branches++
	idx := p.phtIndex(pc)
	predTaken := p.pht[idx] >= 2

	correct = predTaken == taken
	if !correct {
		p.st.DirMiss++
	}
	if taken {
		if correct && !p.btb.hit(pc, target) {
			// Right direction but unknown/stale target is still a redirect.
			p.st.TargetMiss++
			correct = false
		}
		p.btb.update(pc, target)
	}
	if !correct {
		p.st.Mispredicts++
	}

	// Train the 2-bit counter and history with the true outcome.
	if taken {
		if p.pht[idx] < 3 {
			p.pht[idx]++
		}
	} else if p.pht[idx] > 0 {
		p.pht[idx]--
	}
	p.ghr = ((p.ghr << 1) | b2u(taken)) & p.phtMask
	return correct
}

// PredictOnly returns whether the current tables would predict the
// branch correctly, without training or counting statistics.
func (p *Gshare) PredictOnly(pc uint64, taken bool, target uint64) bool {
	predTaken := p.pht[p.phtIndex(pc)] >= 2
	if predTaken != taken {
		return false
	}
	if taken && !p.btb.hit(pc, target) {
		return false
	}
	return true
}

// Clone returns a deep copy of the predictor: PHT, history and BTB are
// duplicated so the copy trains independently.
func (p *Gshare) Clone() Predictor {
	cp := *p
	cp.pht = append([]uint8(nil), p.pht...)
	cp.btb = p.btb.clone()
	return &cp
}

// ResetStats zeroes the prediction statistics while keeping the trained
// tables.
func (p *Gshare) ResetStats() { p.st.Reset() }
