// Package prog provides the static-program representation, an assembler-like
// builder, and an exact functional emulator for the micro-ISA in internal/isa.
//
// The emulator produces the dynamic µop stream consumed by the timing
// simulator: every register value, effective address, and branch outcome is
// computed functionally, so the timing model never has to guess dataflow.
// This is the trace-driven substitute for gem5's execute-in-execute x86
// model (see DESIGN.md §2).
package prog

import (
	"fmt"

	"ltp/internal/isa"
)

// CodeBase is the virtual address of program index 0. Instruction PCs are
// CodeBase + 4*index, keeping code and data in disjoint address ranges.
const CodeBase uint64 = 0x1000_0000

// InstBytes is the architectural size of one instruction.
const InstBytes = 4

// Program is a finished static program plus its initial machine state.
type Program struct {
	Name  string
	Insts []isa.Inst

	// InitRegs holds initial architectural register values.
	InitRegs map[isa.Reg]int64
	// InitMem holds initial 8-byte memory words, keyed by byte address
	// (8-byte aligned).
	InitMem map[uint64]int64
	// InitFunc, when non-nil, initializes bulk memory programmatically
	// (large tables would be wasteful as an InitMem map). It runs after
	// InitMem is applied.
	InitFunc func(*Memory)
}

// PCOf returns the virtual PC of static instruction index i.
func PCOf(i int) uint64 { return CodeBase + uint64(i)*InstBytes }

// IndexOf returns the static instruction index for virtual PC pc.
func IndexOf(pc uint64) int { return int((pc - CodeBase) / InstBytes) }

// Listing renders the whole program as an assembly listing.
func (p *Program) Listing() string {
	s := ""
	for i, in := range p.Insts {
		s += fmt.Sprintf("%3d  %#x  %s\n", i, PCOf(i), in.String())
	}
	return s
}

// Builder assembles a Program. Branch targets may reference labels defined
// later; they are patched by Build.
type Builder struct {
	name     string
	insts    []isa.Inst
	labels   map[string]int // label -> instruction index
	fixups   map[int]string // instruction index -> unresolved target label
	initRegs map[isa.Reg]int64
	initMem  map[uint64]int64
	initFunc func(*Memory)
}

// InitWith registers a bulk memory initializer run at emulator creation.
func (b *Builder) InitWith(fn func(*Memory)) *Builder {
	b.initFunc = fn
	return b
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		labels:   make(map[string]int),
		fixups:   make(map[int]string),
		initRegs: make(map[isa.Reg]int64),
		initMem:  make(map[uint64]int64),
	}
}

// SetReg sets an initial architectural register value.
func (b *Builder) SetReg(r isa.Reg, v int64) *Builder {
	b.initRegs[r] = v
	return b
}

// SetMem sets an initial 8-byte memory word at the given byte address.
func (b *Builder) SetMem(addr uint64, v int64) *Builder {
	if addr%8 != 0 {
		panic(fmt.Sprintf("prog: unaligned SetMem address %#x", addr))
	}
	b.initMem[addr] = v
	return b
}

// Label defines a label at the next instruction index.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		panic("prog: duplicate label " + name)
	}
	b.labels[name] = len(b.insts)
	return b
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) *Builder {
	b.insts = append(b.insts, in)
	return b
}

// last returns a pointer to the most recently emitted instruction.
func (b *Builder) last() *isa.Inst { return &b.insts[len(b.insts)-1] }

// Tag sets the Label (diagnostic tag) of the most recent instruction.
func (b *Builder) Tag(tag string) *Builder {
	b.last().Label = tag
	return b
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder {
	return b.Emit(isa.Inst{Op: isa.Nop, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg})
}

// Addi emits dst = src + imm.
func (b *Builder) Addi(dst, src isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.IAdd, Dst: dst, Src1: src, Src2: isa.NoReg, Imm: imm})
}

// Movi emits dst = imm (an add with no register source).
func (b *Builder) Movi(dst isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.IAdd, Dst: dst, Src1: isa.NoReg, Src2: isa.NoReg, Imm: imm})
}

// Add emits dst = s1 + s2.
func (b *Builder) Add(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.IAdd, Dst: dst, Src1: s1, Src2: s2})
}

// Sub emits dst = s1 - s2 (IAdd with negate flag folded via Imm = -1 marker
// is avoided; Sub is its own encoding using Imm as the operation selector).
func (b *Builder) Sub(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.IAdd, Dst: dst, Src1: s1, Src2: s2, Imm: subMarker})
}

// subMarker in Imm distinguishes subtract from add for the IAdd opcode.
// The timing model does not care; only the emulator does.
const subMarker int64 = -1 << 62

// And emits dst = s1 & s2 (ALU class; emulated exactly).
func (b *Builder) And(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.IAdd, Dst: dst, Src1: s1, Src2: s2, Imm: andMarker})
}

const andMarker int64 = (-1 << 62) + 1

// Andi emits dst = src & imm. Imm is carried via a following convention:
// the marker selects the op, and the mask is stored in the Target field.
func (b *Builder) Andi(dst, src isa.Reg, mask int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.IAdd, Dst: dst, Src1: src, Src2: isa.NoReg,
		Imm: andiMarker, Target: int(mask)})
}

const andiMarker int64 = (-1 << 62) + 2

// Shli emits dst = src << k (ALU class).
func (b *Builder) Shli(dst, src isa.Reg, k int) *Builder {
	return b.Emit(isa.Inst{Op: isa.IAdd, Dst: dst, Src1: src, Src2: isa.NoReg,
		Imm: shliMarker, Target: k})
}

const shliMarker int64 = (-1 << 62) + 3

// Mul emits dst = s1 * s2 on the multiply pipe.
func (b *Builder) Mul(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.IMul, Dst: dst, Src1: s1, Src2: s2})
}

// Div emits dst = s1 / s2 on the unpipelined divide unit (a long-latency
// instruction class in the paper). Division by zero yields zero.
func (b *Builder) Div(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.IDiv, Dst: dst, Src1: s1, Src2: s2})
}

// FAdd emits dst = s1 + s2 on the FP pipe.
func (b *Builder) FAdd(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.FAdd, Dst: dst, Src1: s1, Src2: s2})
}

// FMul emits dst = s1 * s2 on the FP pipe.
func (b *Builder) FMul(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.FMul, Dst: dst, Src1: s1, Src2: s2})
}

// FDiv emits dst = s1 / s2 on the unpipelined FP divide unit.
func (b *Builder) FDiv(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.FDiv, Dst: dst, Src1: s1, Src2: s2})
}

// FSqrt emits dst = sqrt(s1) on the unpipelined FP divide unit.
func (b *Builder) FSqrt(dst, s1 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.FSqrt, Dst: dst, Src1: s1, Src2: isa.NoReg})
}

// Ld emits dst = mem[base + disp].
func (b *Builder) Ld(dst, base isa.Reg, disp int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.Load, Dst: dst, Src1: base, Src2: isa.NoReg, Imm: disp})
}

// St emits mem[base + disp] = val.
func (b *Builder) St(base isa.Reg, disp int64, val isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.Store, Dst: isa.NoReg, Src1: base, Src2: val, Imm: disp})
}

// Br emits a conditional branch on src to the named label.
func (b *Builder) Br(cond isa.BranchCond, src isa.Reg, label string) *Builder {
	b.Emit(isa.Inst{Op: isa.Branch, Dst: isa.NoReg, Src1: src, Src2: isa.NoReg, Cond: cond})
	b.fixups[len(b.insts)-1] = label
	return b
}

// Jmp emits an unconditional branch to the named label.
func (b *Builder) Jmp(label string) *Builder {
	return b.Br(isa.CondAlways, isa.NoReg, label)
}

// Build patches branch targets and returns the finished Program.
func (b *Builder) Build() *Program {
	insts := make([]isa.Inst, len(b.insts))
	copy(insts, b.insts)
	for idx, lbl := range b.fixups {
		tgt, ok := b.labels[lbl]
		if !ok {
			panic("prog: undefined label " + lbl)
		}
		insts[idx].Target = tgt
	}
	return &Program{
		Name:     b.name,
		Insts:    insts,
		InitRegs: b.initRegs,
		InitMem:  b.initMem,
		InitFunc: b.initFunc,
	}
}
