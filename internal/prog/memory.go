package prog

// pageShift selects 4 KiB pages of 8-byte words for the sparse functional
// memory image.
const (
	pageShift = 12
	pageBytes = 1 << pageShift
	pageWords = pageBytes / 8
)

// Memory is a sparse, paged functional memory image holding 8-byte words.
// Unwritten memory reads as zero. It is the emulator's data memory; the
// timing model only sees addresses, never values. A one-entry page cache
// short-circuits the map lookup for the spatially local accesses that
// dominate the kernels.
type Memory struct {
	pages   map[uint64]*[pageWords]int64
	lastKey uint64
	lastPg  *[pageWords]int64
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageWords]int64)}
}

// Read returns the 8-byte word at addr. Unaligned addresses are rounded
// down to the containing word, which is sufficient for this ISA (all
// accesses are 8-byte).
func (m *Memory) Read(addr uint64) int64 {
	key := addr >> pageShift
	if m.lastPg != nil && key == m.lastKey {
		return m.lastPg[(addr%pageBytes)/8]
	}
	pg, ok := m.pages[key]
	if !ok {
		return 0
	}
	m.lastKey, m.lastPg = key, pg
	return pg[(addr%pageBytes)/8]
}

// Write stores the 8-byte word v at addr.
func (m *Memory) Write(addr uint64, v int64) {
	key := addr >> pageShift
	if m.lastPg != nil && key == m.lastKey {
		m.lastPg[(addr%pageBytes)/8] = v
		return
	}
	pg, ok := m.pages[key]
	if !ok {
		pg = new([pageWords]int64)
		m.pages[key] = pg
	}
	m.lastKey, m.lastPg = key, pg
	pg[(addr%pageBytes)/8] = v
}

// Pages returns the number of resident pages (for tests).
func (m *Memory) Pages() int { return len(m.pages) }

// Clone returns a deep copy of the memory image. The copy and the
// original can be written independently afterwards.
func (m *Memory) Clone() *Memory {
	cp := &Memory{pages: make(map[uint64]*[pageWords]int64, len(m.pages))}
	for key, pg := range m.pages {
		dup := *pg
		cp.pages[key] = &dup
	}
	return cp
}
