package prog

import (
	"math"

	"ltp/internal/isa"
)

// Emulator executes a Program functionally and yields its dynamic µop
// stream. Programs with infinite loops are supported: the caller simply
// stops pulling when its instruction budget is exhausted.
//
// FP registers hold float64 values reinterpreted as int64 bit patterns;
// arithmetic on them uses real float64 semantics so divides and square
// roots behave sensibly, while integer registers use exact int64 math so
// addresses and loop counts are precise.
type Emulator struct {
	prog *Program
	mem  *Memory
	regs [isa.NumArchRegs]int64
	pc   int // static instruction index
	seq  uint64
	done bool
}

// NewEmulator returns an Emulator positioned at the first instruction of p,
// with p's initial register and memory state applied.
func NewEmulator(p *Program) *Emulator {
	e := &Emulator{prog: p, mem: NewMemory()}
	for r, v := range p.InitRegs {
		e.regs[r] = v
	}
	for a, v := range p.InitMem {
		e.mem.Write(a, v)
	}
	if p.InitFunc != nil {
		p.InitFunc(e.mem)
	}
	return e
}

// Clone returns a deep copy of the emulator at its current position:
// registers, memory image, PC and sequence number. The Program itself
// is shared (it is immutable after Build). Clones advance
// independently, so one functionally-warmed emulator can seed many
// identical measured regions.
func (e *Emulator) Clone() *Emulator {
	cp := *e
	cp.mem = e.mem.Clone()
	return &cp
}

// CloneStream implements StreamCloner.
func (e *Emulator) CloneStream() Stream { return e.Clone() }

// Reg returns the current value of an architectural register (for tests).
func (e *Emulator) Reg(r isa.Reg) int64 { return e.regs[r] }

// Mem returns the emulator's memory image (for tests).
func (e *Emulator) Mem() *Memory { return e.mem }

// Seq returns the number of µops produced so far.
func (e *Emulator) Seq() uint64 { return e.seq }

// Done reports whether the program has run off its end.
func (e *Emulator) Done() bool { return e.done }

func (e *Emulator) read(r isa.Reg) int64 {
	if !r.Valid() {
		return 0
	}
	return e.regs[r]
}

func (e *Emulator) write(r isa.Reg, v int64) {
	if r.Valid() {
		e.regs[r] = v
	}
}

func f2i(f float64) int64 { return int64(math.Float64bits(f)) }
func i2f(i int64) float64 { return math.Float64frombits(uint64(i)) }

// Next executes one instruction and fills *u with its dynamic form.
// It returns false when the program has terminated (PC past the end).
func (e *Emulator) Next(u *isa.Uop) bool {
	if e.done || e.pc < 0 || e.pc >= len(e.prog.Insts) {
		e.done = true
		return false
	}
	in := &e.prog.Insts[e.pc]
	*u = isa.Uop{
		Seq:   e.seq,
		PC:    PCOf(e.pc),
		Op:    in.Op,
		Dst:   in.Dst,
		Src1:  in.Src1,
		Src2:  in.Src2,
		Size:  8,
		Label: in.Label,
	}
	e.seq++
	next := e.pc + 1

	switch in.Op {
	case isa.Nop:
		// nothing
	case isa.IAdd:
		s1, s2 := e.read(in.Src1), e.read(in.Src2)
		var v int64
		switch in.Imm {
		case subMarker:
			v = s1 - s2
		case andMarker:
			v = s1 & s2
		case andiMarker:
			v = s1 & int64(in.Target)
		case shliMarker:
			v = s1 << uint(in.Target)
		default:
			v = s1 + s2 + in.Imm
		}
		e.write(in.Dst, v)
	case isa.IMul:
		e.write(in.Dst, e.read(in.Src1)*e.read(in.Src2))
	case isa.IDiv:
		d := e.read(in.Src2)
		if d == 0 {
			e.write(in.Dst, 0)
		} else {
			e.write(in.Dst, e.read(in.Src1)/d)
		}
	case isa.FAdd:
		e.write(in.Dst, f2i(i2f(e.read(in.Src1))+i2f(e.read(in.Src2))))
	case isa.FMul:
		e.write(in.Dst, f2i(i2f(e.read(in.Src1))*i2f(e.read(in.Src2))))
	case isa.FDiv:
		d := i2f(e.read(in.Src2))
		if d == 0 {
			e.write(in.Dst, 0)
		} else {
			e.write(in.Dst, f2i(i2f(e.read(in.Src1))/d))
		}
	case isa.FSqrt:
		v := i2f(e.read(in.Src1))
		if v < 0 {
			v = -v
		}
		e.write(in.Dst, f2i(math.Sqrt(v)))
	case isa.Load:
		addr := uint64(e.read(in.Src1) + in.Imm)
		u.Addr = addr &^ 7
		e.write(in.Dst, e.mem.Read(u.Addr))
	case isa.Store:
		addr := uint64(e.read(in.Src1) + in.Imm)
		u.Addr = addr &^ 7
		e.mem.Write(u.Addr, e.read(in.Src2))
	case isa.Branch:
		taken := false
		s := e.read(in.Src1)
		switch in.Cond {
		case isa.CondEQ:
			taken = s == 0
		case isa.CondNE:
			taken = s != 0
		case isa.CondLT:
			taken = s < 0
		case isa.CondGE:
			taken = s >= 0
		case isa.CondAlways:
			taken = true
		}
		u.Taken = taken
		if taken {
			next = in.Target
		}
		u.Target = PCOf(next)
	}

	e.pc = next
	if e.pc < 0 || e.pc >= len(e.prog.Insts) {
		e.done = true
	}
	return true
}

// FastForward functionally executes up to n instructions, passing each
// dynamic µop to touch (which may be nil). It is the fast-warm path: the
// program state (registers, memory, PC, seq) advances exactly as it would
// under the pipeline, at emulation speed, so detailed simulation can pick
// up the stream where warm-up stopped, while the touch hook warms caches,
// branch predictors and classification tables without any timing model.
// The µop must not be retained beyond the call. It returns the number of
// instructions executed (less than n only if the program ended).
func (e *Emulator) FastForward(n uint64, touch func(u *isa.Uop)) uint64 {
	var u isa.Uop
	var done uint64
	for ; done < n; done++ {
		if !e.Next(&u) {
			break
		}
		if touch != nil {
			touch(&u)
		}
	}
	return done
}

// Stream is the µop source interface the timing simulator pulls from.
type Stream interface {
	// Next fills *u with the next dynamic µop, returning false at end of
	// program.
	Next(u *isa.Uop) bool
}

// FastForwarder is implemented by streams that can skip ahead at
// functional speed (the Emulator, and trace readers/recorders). The
// fast warm-up path requires it: the warm region is consumed through
// FastForward with cache/predictor/LTP touch hooks instead of the
// timing pipeline.
type FastForwarder interface {
	// FastForward advances up to n µops, passing each to touch (which
	// may be nil), and returns the number actually advanced.
	FastForward(n uint64, touch func(u *isa.Uop)) uint64
}

// StreamCloner is implemented by streams whose position and functional
// state can be duplicated (the Emulator). Batched evaluation uses it to
// snapshot a warmed stream once and replay the measured region into
// many timing lanes; trace readers do not implement it (their cursor is
// tied to a file).
type StreamCloner interface {
	// CloneStream returns an independent copy of the stream at its
	// current position.
	CloneStream() Stream
}

var (
	_ Stream        = (*Emulator)(nil)
	_ FastForwarder = (*Emulator)(nil)
	_ StreamCloner  = (*Emulator)(nil)
)
