package prog

import (
	"testing"
	"testing/quick"

	"ltp/internal/isa"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if got := m.Read(0x1000); got != 0 {
		t.Errorf("unwritten memory reads %d, want 0", got)
	}
	m.Write(0x1000, 42)
	if got := m.Read(0x1000); got != 42 {
		t.Errorf("read back %d, want 42", got)
	}
	// Distinct pages.
	m.Write(1<<32, -7)
	if got := m.Read(1 << 32); got != -7 {
		t.Errorf("cross-page read %d, want -7", got)
	}
	if m.Pages() != 2 {
		t.Errorf("expected 2 pages, got %d", m.Pages())
	}
}

// Property: a write is always read back; neighbours are untouched.
func TestMemoryProperty(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v int64) bool {
		a := uint64(addr) &^ 7
		m.Write(a, v)
		return m.Read(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder("t")
	b.Label("top").
		Addi(isa.R(1), isa.R(1), 1).
		Br(isa.CondNE, isa.R(1), "end").
		Jmp("top").
		Label("end").
		Nop()
	p := b.Build()
	if p.Insts[1].Target != 3 {
		t.Errorf("forward branch target = %d, want 3", p.Insts[1].Target)
	}
	if p.Insts[2].Target != 0 {
		t.Errorf("backward jump target = %d, want 0", p.Insts[2].Target)
	}
}

func TestBuilderPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("undefined label must panic at Build")
			}
		}()
		NewBuilder("t").Jmp("nowhere").Build()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate label must panic")
			}
		}()
		NewBuilder("t").Label("a").Label("a")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unaligned SetMem must panic")
			}
		}()
		NewBuilder("t").SetMem(3, 1)
	}()
}

func TestEmulatorArithmetic(t *testing.T) {
	b := NewBuilder("t")
	b.SetReg(isa.R(1), 10).SetReg(isa.R(2), 3)
	b.Add(isa.R(3), isa.R(1), isa.R(2)) // 13
	b.Sub(isa.R(4), isa.R(1), isa.R(2)) // 7
	b.Mul(isa.R(5), isa.R(1), isa.R(2)) // 30
	b.Div(isa.R(6), isa.R(1), isa.R(2)) // 3
	b.And(isa.R(7), isa.R(1), isa.R(2)) // 2
	b.Andi(isa.R(8), isa.R(1), 6)       // 2
	b.Shli(isa.R(9), isa.R(2), 4)       // 48
	b.Addi(isa.R(10), isa.R(1), -4)     // 6
	b.Movi(isa.R(11), 99)
	e := NewEmulator(b.Build())
	var u isa.Uop
	for e.Next(&u) {
	}
	want := map[isa.Reg]int64{
		isa.R(3): 13, isa.R(4): 7, isa.R(5): 30, isa.R(6): 3,
		isa.R(7): 2, isa.R(8): 2, isa.R(9): 48, isa.R(10): 6, isa.R(11): 99,
	}
	for r, w := range want {
		if got := e.Reg(r); got != w {
			t.Errorf("%v = %d, want %d", r, got, w)
		}
	}
}

func TestEmulatorDivByZero(t *testing.T) {
	b := NewBuilder("t")
	b.SetReg(isa.R(1), 10)
	b.Div(isa.R(2), isa.R(1), isa.R(3)) // /0 -> 0
	b.FDiv(isa.F(1), isa.F(2), isa.F(3))
	e := NewEmulator(b.Build())
	var u isa.Uop
	for e.Next(&u) {
	}
	if e.Reg(isa.R(2)) != 0 || e.Reg(isa.F(1)) != 0 {
		t.Error("division by zero must yield zero")
	}
}

func TestEmulatorFP(t *testing.T) {
	b := NewBuilder("t")
	b.SetReg(isa.F(1), f2i(2.0)).SetReg(isa.F(2), f2i(3.0))
	b.FAdd(isa.F(3), isa.F(1), isa.F(2)) // 5
	b.FMul(isa.F(4), isa.F(1), isa.F(2)) // 6
	b.FDiv(isa.F(5), isa.F(2), isa.F(1)) // 1.5
	b.FSqrt(isa.F(6), isa.F(4))          // sqrt(6)
	e := NewEmulator(b.Build())
	var u isa.Uop
	for e.Next(&u) {
	}
	if got := i2f(e.Reg(isa.F(3))); got != 5.0 {
		t.Errorf("fadd = %v", got)
	}
	if got := i2f(e.Reg(isa.F(4))); got != 6.0 {
		t.Errorf("fmul = %v", got)
	}
	if got := i2f(e.Reg(isa.F(5))); got != 1.5 {
		t.Errorf("fdiv = %v", got)
	}
	if got := i2f(e.Reg(isa.F(6))); got < 2.44 || got > 2.46 {
		t.Errorf("fsqrt = %v", got)
	}
}

func TestEmulatorLoadStoreAndAddresses(t *testing.T) {
	b := NewBuilder("t")
	b.SetReg(isa.R(1), 0x2000)
	b.SetMem(0x2008, 77)
	b.Ld(isa.R(2), isa.R(1), 8)
	b.St(isa.R(1), 16, isa.R(2))
	e := NewEmulator(b.Build())

	var u isa.Uop
	if !e.Next(&u) || u.Addr != 0x2008 || u.Op != isa.Load {
		t.Fatalf("load µop wrong: %v", u.String())
	}
	if !e.Next(&u) || u.Addr != 0x2010 || u.Op != isa.Store {
		t.Fatalf("store µop wrong: %v", u.String())
	}
	if e.Next(&u) {
		t.Error("program should have ended")
	}
	if got := e.Mem().Read(0x2010); got != 77 {
		t.Errorf("store wrote %d, want 77", got)
	}
}

func TestEmulatorBranchLoop(t *testing.T) {
	// Count 5 iterations.
	b := NewBuilder("t")
	b.SetReg(isa.R(1), 5)
	b.Label("loop").
		Addi(isa.R(1), isa.R(1), -1).
		Addi(isa.R(2), isa.R(2), 10).
		Br(isa.CondNE, isa.R(1), "loop")
	e := NewEmulator(b.Build())
	var u isa.Uop
	n := 0
	for e.Next(&u) {
		n++
	}
	if e.Reg(isa.R(2)) != 50 {
		t.Errorf("loop body ran %d times (acc=%d), want 5", n/3, e.Reg(isa.R(2)))
	}
	if n != 15 {
		t.Errorf("executed %d µops, want 15", n)
	}
}

func TestEmulatorBranchConditions(t *testing.T) {
	cases := []struct {
		cond  isa.BranchCond
		val   int64
		taken bool
	}{
		{isa.CondEQ, 0, true}, {isa.CondEQ, 1, false},
		{isa.CondNE, 0, false}, {isa.CondNE, 5, true},
		{isa.CondLT, -1, true}, {isa.CondLT, 0, false},
		{isa.CondGE, 0, true}, {isa.CondGE, -2, false},
		{isa.CondAlways, 0, true},
	}
	for _, c := range cases {
		b := NewBuilder("t")
		b.SetReg(isa.R(1), c.val)
		b.Br(c.cond, isa.R(1), "skip").
			Nop().
			Label("skip").
			Nop()
		e := NewEmulator(b.Build())
		var u isa.Uop
		e.Next(&u)
		if u.Taken != c.taken {
			t.Errorf("cond %v val %d: taken=%v, want %v", c.cond, c.val, u.Taken, c.taken)
		}
		wantTarget := PCOf(1)
		if c.taken {
			wantTarget = PCOf(2)
		}
		if u.Target != wantTarget {
			t.Errorf("cond %v: target %#x, want %#x", c.cond, u.Target, wantTarget)
		}
	}
}

func TestEmulatorDeterminism(t *testing.T) {
	build := func() *Emulator {
		b := NewBuilder("t")
		b.SetReg(isa.R(1), 1000)
		b.SetReg(isa.R(2), int64(0x3000))
		b.Label("loop").
			Mul(isa.R(3), isa.R(1), isa.R(1)).
			Andi(isa.R(4), isa.R(3), 0xFF8).
			Add(isa.R(5), isa.R(2), isa.R(4)).
			Ld(isa.R(6), isa.R(5), 0).
			St(isa.R(5), 8, isa.R(6)).
			Addi(isa.R(1), isa.R(1), -1).
			Br(isa.CondNE, isa.R(1), "loop")
		return NewEmulator(b.Build())
	}
	a, bb := build(), build()
	var ua, ub isa.Uop
	for i := 0; i < 5000; i++ {
		oka, okb := a.Next(&ua), bb.Next(&ub)
		if oka != okb || ua != ub {
			t.Fatalf("divergence at %d: %v vs %v", i, ua.String(), ub.String())
		}
		if !oka {
			break
		}
	}
}

func TestInitFunc(t *testing.T) {
	b := NewBuilder("t")
	b.InitWith(func(m *Memory) { m.Write(0x4000, 5) })
	b.SetReg(isa.R(1), 0x4000)
	b.Ld(isa.R(2), isa.R(1), 0)
	e := NewEmulator(b.Build())
	var u isa.Uop
	e.Next(&u)
	if e.Reg(isa.R(2)) != 5 {
		t.Error("InitFunc memory not visible to loads")
	}
}

func TestListing(t *testing.T) {
	b := NewBuilder("t")
	b.Addi(isa.R(1), isa.R(1), 1).Tag("A")
	p := b.Build()
	if p.Listing() == "" {
		t.Error("empty listing")
	}
	if p.Insts[0].Label != "A" {
		t.Error("Tag not applied")
	}
}

func TestPCMapping(t *testing.T) {
	if IndexOf(PCOf(17)) != 17 {
		t.Error("PC<->index mapping broken")
	}
}
