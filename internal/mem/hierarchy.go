package mem

// Config describes the cache hierarchy (defaults mirror the paper's
// Table 1: 32 kB 8-way L1s at 4 cycles, 256 kB 8-way L2 at 12 cycles with a
// degree-4 stride prefetcher, 1 MB 16-way L3 at 36 cycles, DDR3-1600-class
// DRAM).
type Config struct {
	L1ISize, L1IWays int
	L1DSize, L1DWays int
	L2Size, L2Ways   int
	L3Size, L3Ways   int

	L1Latency   uint64
	L2Latency   uint64 // cumulative from issue
	L3Latency   uint64 // cumulative from issue
	DRAMLatency uint64 // cumulative from issue (fixed-latency model)

	// DRAM, when non-nil, replaces the fixed DRAMLatency with the banked
	// DDR3 model (row buffers, bank queueing, bus contention).
	DRAM *DRAMConfig

	// L1DMSHRs bounds outstanding L1D load misses (<=0 = unlimited; the
	// limit study uses unlimited).
	L1DMSHRs int
	// L2MSHRs bounds outstanding L2 misses, shared by demands and
	// prefetches (<=0 = unlimited).
	L2MSHRs int

	// PrefetchDegree is the L2 prefetch degree: how many lines ahead the
	// engine fetches (with the legacy "" Prefetcher, 0 disables it).
	PrefetchDegree int
	// PrefetchTable is the prefetcher training-table size (power of two).
	PrefetchTable int
	// Prefetcher names the L2 prefetch engine from the registry
	// ("none", "nextline", "stride", "stream"). Empty keeps the legacy
	// convention: the stride engine when PrefetchDegree > 0, else none.
	Prefetcher string

	// TagEarlyLead is how many cycles before the fill the phased L2/L3
	// tag arrays (or the DRAM controller) can signal that data is coming;
	// used by LTP's Non-Ready early wakeup (paper §3.2 / Appendix).
	TagEarlyLead uint64
}

// DefaultConfig returns the Table 1 hierarchy.
func DefaultConfig() Config {
	return Config{
		L1ISize: 32 << 10, L1IWays: 8,
		L1DSize: 32 << 10, L1DWays: 8,
		L2Size: 256 << 10, L2Ways: 8,
		L3Size: 1 << 20, L3Ways: 16,
		L1Latency:      4,
		L2Latency:      12,
		L3Latency:      36,
		DRAMLatency:    200, // DDR3-1600 11-11-11 + controller, at 3.4 GHz
		L1DMSHRs:       16,
		L2MSHRs:        32,
		PrefetchDegree: 4,
		PrefetchTable:  256,
		TagEarlyLead:   6,
	}
}

// Result describes one memory access's timing.
type Result struct {
	// Avail is the cycle the data is available to dependents.
	Avail uint64
	// Level is the hierarchy level that satisfied the access.
	Level Level
	// Merged reports that the access merged onto an in-flight fill.
	Merged bool
}

// Latency returns the access latency given its issue cycle.
func (r Result) Latency(issued uint64) uint64 {
	if r.Avail < issued {
		return 0
	}
	return r.Avail - issued
}

// Hierarchy is the full cache/DRAM stack for one core.
type Hierarchy struct {
	cfg  Config
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	L3   *Cache
	l1m  *MSHRs
	l2m  *MSHRs
	pref Prefetcher
	dram *DRAM // nil = fixed-latency model
	cors []corunner

	// outstanding demand DRAM fills, for the MLP statistic
	// (average number of outstanding memory requests, paper Fig. 1b).
	demandEnds []uint64

	// Statistics.
	Loads, Stores   uint64
	LoadLevel       [NumLevels]uint64
	StoreLevel      [NumLevels]uint64
	LoadLatencySum  uint64
	DemandDRAM      uint64
	PrefetchIssued  uint64
	PrefetchDropped uint64

	// Co-runner traffic statistics (zero without co-runners).
	CorunnerAccesses uint64
	CorunnerDRAM     uint64
	CorunnerStalls   uint64
}

// NewHierarchy builds the stack from a Config.
func NewHierarchy(cfg Config) *Hierarchy {
	h := &Hierarchy{
		cfg: cfg,
		L1I: NewCache("L1I", cfg.L1ISize, cfg.L1IWays, cfg.L1Latency),
		L1D: NewCache("L1D", cfg.L1DSize, cfg.L1DWays, cfg.L1Latency),
		L2:  NewCache("L2", cfg.L2Size, cfg.L2Ways, cfg.L2Latency),
		L3:  NewCache("L3", cfg.L3Size, cfg.L3Ways, cfg.L3Latency),
		l1m: NewMSHRs(cfg.L1DMSHRs),
		l2m: NewMSHRs(cfg.L2MSHRs),
	}
	pf, err := NewPrefetcher(cfg.PrefetcherName(), cfg.PrefetchTable, cfg.PrefetchDegree)
	if err != nil {
		panic("mem: " + err.Error()) // names are validated at spec admission
	}
	h.pref = pf
	if cfg.DRAM != nil {
		h.dram = NewDRAM(*cfg.DRAM)
	}
	return h
}

// DRAMModel exposes the banked DRAM (nil under the fixed-latency model).
func (h *Hierarchy) DRAMModel() *DRAM { return h.dram }

// dramFill returns the completion cycle of a main-memory fill issued now.
func (h *Hierarchy) dramFill(la, now uint64) uint64 {
	if h.dram != nil {
		return h.dram.Access(la<<LineShift, now)
	}
	return now + h.cfg.DRAMLatency
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// PrefetcherName resolves the configured prefetcher name: an explicit
// name wins; the legacy empty name means the Table 1 stride engine when
// PrefetchDegree > 0 and "none" otherwise.
func (c Config) PrefetcherName() string {
	if c.Prefetcher != "" {
		return c.Prefetcher
	}
	if c.PrefetchDegree > 0 {
		return DefaultPrefetcher
	}
	return "none"
}

// walkBelowL1 resolves a miss below the L1s: it consults the L2 (training
// the prefetcher on demand loads), then the L3, then DRAM, allocating the
// line inclusively on the way back. It returns the fill and whether it
// could be issued (false only when demand and the L2 MSHRs are full).
func (h *Hierarchy) walkBelowL1(pc, la, now uint64, demandLoad, isStore bool) (Result, bool) {
	// L2 access.
	if hit, avail := h.L2.Lookup(la, now); hit {
		if h.pref != nil && demandLoad {
			h.prefetchAfter(pc, la, now)
		}
		return Result{Avail: avail, Level: LvlL2}, true
	}
	if h.pref != nil && demandLoad {
		h.prefetchAfter(pc, la, now)
	}
	// L2 miss: merge or allocate an L2 MSHR.
	if t, lvl, ok := h.l2m.Lookup(la, now); ok {
		return Result{Avail: t, Level: lvl, Merged: true}, true
	}
	var fill uint64
	var lvl Level
	if hit, avail := h.L3.Lookup(la, now); hit {
		fill, lvl = avail, LvlL3
	} else {
		fill, lvl = h.dramFill(la, now), LvlDRAM
	}
	if !h.l2m.Allocate(la, fill, now, lvl) {
		if demandLoad || isStore {
			// Demand path retries; callers treat !ok as a structural stall.
			return Result{}, false
		}
		return Result{}, false
	}
	// Inclusive fills.
	h.L2.Insert(la, fill, isStore, false)
	if lvl == LvlDRAM {
		h.L3.Insert(la, fill, false, false)
		if demandLoad {
			h.DemandDRAM++
			h.demandEnds = append(h.demandEnds, fill)
		}
	}
	return Result{Avail: fill, Level: lvl}, true
}

// prefetchAfter trains the stride prefetcher with a demand access and
// issues its prefetches into the L2 (and L3 on DRAM fills). Prefetches
// never block demands: they are dropped when the L2 MSHRs are busy.
func (h *Hierarchy) prefetchAfter(pc, la, now uint64) {
	for _, pa := range h.pref.Observe(pc, la<<LineShift) {
		pla := LineAddr(pa)
		if h.L2.Probe(pla) {
			continue
		}
		if _, _, ok := h.l2m.Lookup(pla, now); ok {
			continue
		}
		var fill uint64
		var lvl Level
		if h.L3.Probe(pla) {
			fill, lvl = now+h.cfg.L3Latency, LvlL3
		} else {
			fill, lvl = h.dramFill(pla, now), LvlDRAM
		}
		if !h.l2m.Allocate(pla, fill, now, lvl) {
			h.PrefetchDropped++
			continue
		}
		h.PrefetchIssued++
		h.L2.Insert(pla, fill, false, true)
		if lvl == LvlDRAM {
			h.L3.Insert(pla, fill, false, true)
		}
	}
}

// Load performs a demand data load issued at cycle now by the instruction
// at pc. ok=false means the access could not start (MSHRs full) and must be
// replayed.
func (h *Hierarchy) Load(pc, addr, now uint64) (Result, bool) {
	la := LineAddr(addr)
	if hit, avail := h.L1D.Lookup(la, now); hit {
		h.recordLoad(Result{Avail: avail, Level: LvlL1}, now)
		return Result{Avail: avail, Level: LvlL1}, true
	}
	// L1D miss: merge onto an outstanding fill if possible.
	if t, lvl, ok := h.l1m.Lookup(la, now); ok {
		r := Result{Avail: t, Level: lvl, Merged: true}
		h.recordLoad(r, now)
		return r, true
	}
	if !h.l1m.Free(now) {
		return Result{}, false
	}
	r, ok := h.walkBelowL1(pc, la, now, true, false)
	if !ok {
		return Result{}, false
	}
	if !h.l1m.Allocate(la, r.Avail, now, r.Level) {
		return Result{}, false
	}
	h.L1D.Insert(la, r.Avail, false, false)
	h.recordLoad(r, now)
	return r, true
}

func (h *Hierarchy) recordLoad(r Result, now uint64) {
	h.Loads++
	h.LoadLevel[r.Level]++
	h.LoadLatencySum += r.Latency(now)
}

// StoreCommit performs the cache write for a store draining from the store
// queue after commit (write-back, write-allocate). Store misses use the
// write buffer path and are never refused; they do, however, occupy L2
// MSHR-tracked fills so later loads merge correctly.
func (h *Hierarchy) StoreCommit(addr, now uint64) Result {
	h.Stores++
	la := LineAddr(addr)
	if hit, avail := h.L1D.Lookup(la, now); hit {
		h.L1D.MarkDirty(la)
		h.StoreLevel[LvlL1]++
		return Result{Avail: avail, Level: LvlL1}
	}
	if t, lvl, ok := h.l1m.Lookup(la, now); ok {
		h.L1D.MarkDirty(la) // line may not be resident yet; harmless
		h.StoreLevel[lvl]++
		return Result{Avail: t, Level: lvl, Merged: true}
	}
	r, ok := h.walkBelowL1(0, la, now, false, true)
	if !ok {
		// MSHRs exhausted: model the write buffer absorbing the store at
		// DRAM latency without tracking the fill.
		r = Result{Avail: now + h.cfg.DRAMLatency, Level: LvlDRAM}
	}
	h.L1D.Insert(la, r.Avail, true, false)
	h.StoreLevel[r.Level]++
	return r
}

// FetchInst performs an instruction fetch for the line containing addr.
// Instruction fetches never consume data MSHRs; a simple next-line
// prefetch keeps sequential code flowing.
func (h *Hierarchy) FetchInst(addr, now uint64) Result {
	la := LineAddr(addr)
	if hit, avail := h.L1I.Lookup(la, now); hit {
		return Result{Avail: avail, Level: LvlL1}
	}
	r, ok := h.walkBelowL1(0, la, now, false, false)
	if !ok {
		r = Result{Avail: now + h.cfg.DRAMLatency, Level: LvlDRAM}
	}
	h.L1I.Insert(la, r.Avail, false, false)
	// Next-line instruction prefetch.
	nla := la + 1
	if !h.L1I.Probe(nla) {
		if nr, ok := h.walkBelowL1(0, nla, now, false, false); ok {
			h.L1I.Insert(nla, nr.Avail, false, true)
		}
	}
	return r
}

// OutstandingDemand returns the number of demand DRAM requests in flight at
// cycle now, compacting finished entries as it goes.
func (h *Hierarchy) OutstandingDemand(now uint64) int {
	n := 0
	w := h.demandEnds[:0]
	for _, end := range h.demandEnds {
		if end > now {
			n++
			w = append(w, end)
		}
	}
	h.demandEnds = w
	return n
}

// AvgLoadLatency returns the mean demand load latency in cycles.
func (h *Hierarchy) AvgLoadLatency() float64 {
	if h.Loads == 0 {
		return 0
	}
	return float64(h.LoadLatencySum) / float64(h.Loads)
}

// Warm performs a timing-free access used for cache warm-up before
// detailed simulation (the paper warms caches for 250 M instructions). It
// returns the hierarchy level that would have served the access, so
// warm-up hooks (e.g. the LTP's classification tables) can observe each
// access's latency class without any timing model.
func (h *Hierarchy) Warm(pc, addr uint64, isStore bool) Level {
	la := LineAddr(addr)
	served := LvlL1
	if hit, _ := h.L1D.Lookup(la, 0); hit {
		if isStore {
			h.L1D.MarkDirty(la)
		}
		return served
	}
	if hit, _ := h.L2.Lookup(la, 0); hit {
		served = LvlL2
	} else {
		if hit3, _ := h.L3.Lookup(la, 0); hit3 {
			served = LvlL3
		} else {
			served = LvlDRAM
			h.L3.Insert(la, 0, false, false)
		}
		h.L2.Insert(la, 0, false, false)
	}
	if h.pref != nil && !isStore {
		for _, pa := range h.pref.Observe(pc, la<<LineShift) {
			pla := LineAddr(pa)
			if !h.L2.Probe(pla) {
				h.L2.Insert(pla, 0, false, true)
				if !h.L3.Probe(pla) {
					h.L3.Insert(pla, 0, false, true)
				}
			}
		}
	}
	h.L1D.Insert(la, 0, isStore, false)
	return served
}

// WarmFetch installs the instruction line containing addr throughout the
// hierarchy with no timing (code warm-up before detailed simulation).
func (h *Hierarchy) WarmFetch(addr uint64) {
	la := LineAddr(addr)
	if !h.L3.Probe(la) {
		h.L3.Insert(la, 0, false, false)
	}
	if !h.L2.Probe(la) {
		h.L2.Insert(la, 0, false, false)
	}
	if !h.L1I.Probe(la) {
		h.L1I.Insert(la, 0, false, false)
	}
}

// TagEarlyLead returns the configured early-wakeup lead time.
func (h *Hierarchy) TagEarlyLead() uint64 { return h.cfg.TagEarlyLead }

// ResetStats zeroes all access statistics while keeping cache contents,
// MSHR state and prefetcher training — the warm-up/measured-region
// boundary of a detailed-warm simulation.
func (h *Hierarchy) ResetStats() {
	h.Loads, h.Stores = 0, 0
	h.LoadLevel = [NumLevels]uint64{}
	h.StoreLevel = [NumLevels]uint64{}
	h.LoadLatencySum = 0
	h.DemandDRAM = 0
	h.PrefetchIssued, h.PrefetchDropped = 0, 0
	h.CorunnerAccesses, h.CorunnerDRAM, h.CorunnerStalls = 0, 0, 0
	for _, c := range []*Cache{h.L1I, h.L1D, h.L2, h.L3} {
		c.ResetStats()
	}
	h.l1m.Merges, h.l1m.FullStall = 0, 0
	h.l2m.Merges, h.l2m.FullStall = 0, 0
}
