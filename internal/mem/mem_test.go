package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache("t", 8*1024, 8, 4) // 16 sets
	if c.Sets() != 16 || c.Ways() != 8 {
		t.Fatalf("geometry %d sets x %d ways", c.Sets(), c.Ways())
	}
	if hit, _ := c.Lookup(5, 0); hit {
		t.Error("cold cache must miss")
	}
	c.Insert(5, 10, false, false)
	hit, avail := c.Lookup(5, 20)
	if !hit {
		t.Error("inserted line must hit")
	}
	if avail != 24 {
		t.Errorf("hit avail = %d, want now+latency = 24", avail)
	}
}

func TestCacheInFlightFill(t *testing.T) {
	c := NewCache("t", 8*1024, 8, 4)
	c.Insert(5, 100, false, false) // fill arrives at cycle 100
	if _, avail := c.Lookup(5, 10); avail != 100 {
		t.Errorf("hit-under-fill avail = %d, want fill time 100", avail)
	}
	if _, avail := c.Lookup(5, 200); avail != 204 {
		t.Errorf("post-fill avail = %d, want 204", avail)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("t", 2*64*4, 4, 1) // 2 sets, 4 ways
	// Fill set 0 (even line addrs) with 4 lines.
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*2, 0, false, false)
	}
	c.Lookup(0, 1) // touch line 0: now MRU
	c.Insert(8, 0, false, false)
	if c.Probe(2) { // line 2 was LRU
		t.Error("LRU victim not evicted")
	}
	if !c.Probe(0) {
		t.Error("MRU line evicted")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := NewCache("t", 64*4, 4, 1) // 1 set, 4 ways
	c.Insert(0, 0, true, false)    // dirty
	for i := uint64(1); i <= 4; i++ {
		c.Insert(i, 0, false, false)
	}
	if c.WritebacksN != 1 {
		t.Errorf("writebacks = %d, want 1", c.WritebacksN)
	}
}

func TestCachePrefetchAccounting(t *testing.T) {
	c := NewCache("t", 8*1024, 8, 4)
	c.Insert(3, 0, false, true)
	c.Lookup(3, 10)
	if c.PrefHits != 1 {
		t.Errorf("prefetch hits = %d, want 1", c.PrefHits)
	}
}

func TestCacheInvalidAndMissRate(t *testing.T) {
	c := NewCache("t", 8*1024, 8, 4)
	c.Lookup(1, 0)
	c.Insert(1, 0, false, false)
	c.Lookup(1, 1)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate %v, want 0.5", got)
	}
	c.Invalidate(1)
	if c.Probe(1) {
		t.Error("invalidated line still present")
	}
}

func TestCacheGeometryPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two sets must panic")
		}
	}()
	NewCache("bad", 3*64*2, 2, 1)
}

// Property: inserting any line makes Probe true for it.
func TestCacheInsertProbeProperty(t *testing.T) {
	c := NewCache("t", 32*1024, 8, 4)
	f := func(la uint32) bool {
		c.Insert(uint64(la), 0, false, false)
		return c.Probe(uint64(la))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMSHRMergeAndCapacity(t *testing.T) {
	m := NewMSHRs(2)
	if !m.Allocate(1, 100, 0, LvlDRAM) || !m.Allocate(2, 100, 0, LvlDRAM) {
		t.Fatal("allocation failed with free entries")
	}
	if m.Allocate(3, 100, 0, LvlDRAM) {
		t.Error("allocation succeeded beyond capacity")
	}
	if _, lvl, ok := m.Lookup(1, 50); !ok || lvl != LvlDRAM {
		t.Error("merge lookup failed")
	}
	if m.Merges != 1 {
		t.Errorf("merges = %d", m.Merges)
	}
	// After fills complete, entries are reclaimed.
	if !m.Allocate(3, 300, 150, LvlL3) {
		t.Error("allocation failed after fills expired")
	}
	if m.Outstanding(150) != 1 {
		t.Errorf("outstanding = %d, want 1", m.Outstanding(150))
	}
}

func TestMSHRUnlimited(t *testing.T) {
	m := NewMSHRs(0)
	for i := uint64(0); i < 1000; i++ {
		if !m.Allocate(i, 10, 0, LvlDRAM) {
			t.Fatal("unlimited MSHRs refused an allocation")
		}
	}
	if !m.Free(0) {
		t.Error("unlimited MSHRs must always be free")
	}
}

func TestStridePrefetcher(t *testing.T) {
	p := NewStridePrefetcher(64, 4)
	pc := uint64(0x1000)
	var out []uint64
	for a := uint64(0); a < 6*64; a += 64 {
		out = p.Observe(pc, a)
	}
	if len(out) != 4 {
		t.Fatalf("degree-4 prefetcher issued %d addresses", len(out))
	}
	if out[0] != 6*64 || out[3] != 9*64 {
		t.Errorf("prefetch addresses wrong: %v", out)
	}
}

func TestStridePrefetcherResetOnNewStride(t *testing.T) {
	p := NewStridePrefetcher(64, 4)
	pc := uint64(0x1000)
	for a := uint64(0); a < 4*64; a += 64 {
		p.Observe(pc, a)
	}
	if got := p.Observe(pc, 10_000); got != nil {
		t.Error("stride change must reset confidence")
	}
	if got := p.Observe(pc, 10_000); got != nil {
		t.Error("zero stride must not prefetch")
	}
}

func TestStridePrefetcherRandomNoise(t *testing.T) {
	p := NewStridePrefetcher(64, 4)
	// Random-looking addresses: no constant stride, no prefetches.
	addrs := []uint64{100, 9000, 40, 77777, 1234, 888}
	for _, a := range addrs {
		if got := p.Observe(0x2000, a); got != nil {
			t.Errorf("prefetched on random pattern: %v", got)
		}
	}
}

func TestHierarchyLevels(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0
	h := NewHierarchy(cfg)

	// Cold: DRAM.
	r, ok := h.Load(0x10, 0x5000, 0)
	if !ok || r.Level != LvlDRAM {
		t.Fatalf("cold load level %v", r.Level)
	}
	if r.Avail != cfg.DRAMLatency {
		t.Errorf("DRAM avail %d, want %d", r.Avail, cfg.DRAMLatency)
	}

	// After the fill: L1 hit.
	now := r.Avail + 10
	r2, _ := h.Load(0x10, 0x5000, now)
	if r2.Level != LvlL1 || r2.Avail != now+cfg.L1Latency {
		t.Errorf("warm load level %v avail %d", r2.Level, r2.Avail)
	}
}

func TestHierarchyMerge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0
	h := NewHierarchy(cfg)
	r1, _ := h.Load(0x10, 0x5000, 0)
	// Same line, different word, while the miss is outstanding: the L1
	// line was allocated with the fill timestamp, so the second access
	// completes at the same fill time without a second memory request
	// (hit-under-fill merging).
	r2, ok := h.Load(0x14, 0x5008, 5)
	if !ok {
		t.Fatal("merge refused")
	}
	if r2.Avail != r1.Avail {
		t.Errorf("merge: avail=%d want %d", r2.Avail, r1.Avail)
	}
	if h.DemandDRAM != 1 {
		t.Errorf("demand DRAM requests = %d, want 1 (merged)", h.DemandDRAM)
	}
}

func TestHierarchyMSHRLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0
	cfg.L1DMSHRs = 2
	h := NewHierarchy(cfg)
	h.Load(0, 0<<LineShift, 0)
	h.Load(0, 1<<LineShift, 0)
	if _, ok := h.Load(0, 2<<LineShift, 0); ok {
		t.Error("third miss must be refused with 2 MSHRs")
	}
	if _, ok := h.Load(0, 2<<LineShift, cfg.DRAMLatency+1); !ok {
		t.Error("miss must succeed after fills complete")
	}
}

func TestHierarchyPrefetchHidesStream(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	var demandDRAM int
	now := uint64(0)
	for i := 0; i < 64; i++ {
		addr := uint64(0x10_0000) + uint64(i)*LineBytes
		r, ok := h.Load(0x30, addr, now)
		if !ok {
			t.Fatal("load refused")
		}
		if r.Level == LvlDRAM && !r.Merged {
			demandDRAM++
		}
		now = r.Avail + 1 // serial walker gives the prefetcher time
	}
	if demandDRAM > 20 {
		t.Errorf("prefetcher hid too few misses: %d demand DRAM of 64", demandDRAM)
	}
	if h.PrefetchIssued == 0 {
		t.Error("prefetcher never fired")
	}
}

func TestHierarchyStoreCommitAndDirty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0
	h := NewHierarchy(cfg)
	r := h.StoreCommit(0x9000, 0)
	if r.Level != LvlDRAM {
		t.Errorf("cold store level %v", r.Level)
	}
	r2 := h.StoreCommit(0x9000, r.Avail+1)
	if r2.Level != LvlL1 {
		t.Errorf("warm store level %v", r2.Level)
	}
	if h.Stores != 2 {
		t.Errorf("stores = %d", h.Stores)
	}
}

func TestHierarchyWarm(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	h.Warm(0x10, 0x5000, false)
	r, _ := h.Load(0x10, 0x5000, 0)
	if r.Level != LvlL1 {
		t.Errorf("warmed load level %v, want L1", r.Level)
	}
}

func TestHierarchyOutstandingDemand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0
	h := NewHierarchy(cfg)
	h.Load(0, 0<<LineShift, 0)
	h.Load(0, 100<<LineShift, 0)
	if got := h.OutstandingDemand(10); got != 2 {
		t.Errorf("outstanding = %d, want 2", got)
	}
	if got := h.OutstandingDemand(cfg.DRAMLatency + 1); got != 0 {
		t.Errorf("outstanding after fill = %d, want 0", got)
	}
}

func TestHierarchyFetchInst(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	r := h.FetchInst(0x1000_0000, 0)
	if r.Level != LvlDRAM {
		t.Errorf("cold fetch level %v", r.Level)
	}
	// Next line was prefetched.
	r2 := h.FetchInst(0x1000_0000+LineBytes, r.Avail+1)
	if r2.Level == LvlDRAM && !r2.Merged {
		t.Error("next-line instruction prefetch missing")
	}
}

func TestLevelString(t *testing.T) {
	if LvlL1.String() != "L1" || LvlDRAM.String() != "DRAM" {
		t.Error("level names wrong")
	}
}

func TestAvgLoadLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0
	h := NewHierarchy(cfg)
	if h.AvgLoadLatency() != 0 {
		t.Error("idle hierarchy must report 0 latency")
	}
	h.Load(0, 0x40, 0)
	if got := h.AvgLoadLatency(); got != float64(cfg.DRAMLatency) {
		t.Errorf("avg latency %v, want %d", got, cfg.DRAMLatency)
	}
}
