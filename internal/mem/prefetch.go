package mem

// StridePrefetcher is the L2 stride prefetcher from Table 1 ("stride
// prefetcher, degree 4"): a PC-indexed table that learns per-instruction
// strides and, once confident, prefetches the next `degree` strided lines
// into the L2.
type StridePrefetcher struct {
	entries []strideEntry
	mask    uint64
	degree  int
	out     []uint64 // reused Observe result buffer

	// Issued counts prefetch requests sent to the hierarchy.
	Issued uint64
}

type strideEntry struct {
	pc     uint64
	last   uint64 // last demand address
	stride int64
	conf   int8 // saturating 0..3; >=2 triggers prefetch
	valid  bool
}

// NewStridePrefetcher builds a prefetcher with a power-of-two table size
// and the given prefetch degree.
func NewStridePrefetcher(tableSize, degree int) *StridePrefetcher {
	if tableSize <= 0 || tableSize&(tableSize-1) != 0 {
		panic("mem: prefetcher table size must be a power of two")
	}
	return &StridePrefetcher{
		entries: make([]strideEntry, tableSize),
		mask:    uint64(tableSize - 1),
		degree:  degree,
		out:     make([]uint64, 0, degree),
	}
}

// Observe trains the prefetcher on a demand access (pc, byte address) and
// returns the byte addresses to prefetch, if any. Stride learning follows
// the classic scheme: a stride match bumps confidence, a mismatch resets
// it and re-learns the new stride. The returned slice is reused across
// calls; callers must consume it before the next Observe.
func (p *StridePrefetcher) Observe(pc, addr uint64) []uint64 {
	e := &p.entries[(pc>>2)&p.mask]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, last: addr, valid: true}
		return nil
	}
	stride := int64(addr) - int64(e.last)
	e.last = addr
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
		return nil
	}
	if e.conf < 2 {
		return nil
	}
	out := p.out[:0]
	a := int64(addr)
	for i := 0; i < p.degree; i++ {
		a += stride
		if a < 0 {
			break
		}
		out = append(out, uint64(a))
	}
	p.Issued += uint64(len(out))
	p.out = out
	return out
}
