package mem

import (
	"fmt"
	"sort"
)

// Prefetcher is the pluggable L2 prefetch engine contract. Observe is
// called with each training access (demand loads at the L2, or every
// warm access during functional warm-up) and returns the byte addresses
// to prefetch; the hierarchy decides admission (prefetches never block
// demands). Implementations must be deterministic and must support
// Clone for the sampled tier's checkpointed warm state.
type Prefetcher interface {
	// Name returns the registry name of the implementation.
	Name() string
	// Observe trains on a demand access (pc, byte address) and returns
	// byte addresses to prefetch. The returned slice may be reused
	// across calls; callers must consume it before the next Observe.
	Observe(pc, addr uint64) []uint64
	// Clone returns a deep copy that trains independently.
	Clone() Prefetcher
}

// DefaultPrefetcher is the Table 1 baseline prefetcher name.
const DefaultPrefetcher = "stride"

// PrefetcherNames returns the registered prefetcher names, sorted
// ("none" disables prefetching).
func PrefetcherNames() []string {
	out := []string{"none", "nextline", "stride", "stream"}
	sort.Strings(out)
	return out
}

// NewPrefetcher builds the named prefetcher. "none" returns (nil, nil):
// the hierarchy treats a nil prefetcher as disabled. tableSize is the
// training-table capacity (power of two; 0 = 256) and degree the number
// of lines fetched ahead (<=0 = 4) — "nextline" ignores the table. The
// empty name means DefaultPrefetcher.
func NewPrefetcher(name string, tableSize, degree int) (Prefetcher, error) {
	if tableSize == 0 {
		tableSize = 256
	}
	if degree <= 0 {
		degree = 4
	}
	switch name {
	case "none":
		return nil, nil
	case "nextline":
		return NewNextLinePrefetcher(degree), nil
	case "", "stride":
		return NewStridePrefetcher(tableSize, degree), nil
	case "stream":
		return NewStreamPrefetcher(tableSize, degree), nil
	}
	return nil, fmt.Errorf("mem: unknown prefetcher %q (have %v)", name, PrefetcherNames())
}

// StridePrefetcher is the L2 stride prefetcher from Table 1 ("stride
// prefetcher, degree 4"): a PC-indexed table that learns per-instruction
// strides and, once confident, prefetches the next `degree` strided lines
// into the L2.
type StridePrefetcher struct {
	entries []strideEntry
	mask    uint64
	degree  int
	out     []uint64 // reused Observe result buffer

	// Issued counts prefetch requests sent to the hierarchy.
	Issued uint64
}

type strideEntry struct {
	pc     uint64
	last   uint64 // last demand address
	stride int64
	conf   int8 // saturating 0..3; >=2 triggers prefetch
	valid  bool
}

// NewStridePrefetcher builds a prefetcher with a power-of-two table size
// and the given prefetch degree.
func NewStridePrefetcher(tableSize, degree int) *StridePrefetcher {
	if tableSize <= 0 || tableSize&(tableSize-1) != 0 {
		panic("mem: prefetcher table size must be a power of two")
	}
	return &StridePrefetcher{
		entries: make([]strideEntry, tableSize),
		mask:    uint64(tableSize - 1),
		degree:  degree,
		out:     make([]uint64, 0, degree),
	}
}

// Name returns "stride".
func (p *StridePrefetcher) Name() string { return "stride" }

// Observe trains the prefetcher on a demand access (pc, byte address) and
// returns the byte addresses to prefetch, if any. Stride learning follows
// the classic scheme: a stride match bumps confidence, a mismatch resets
// it and re-learns the new stride. The returned slice is reused across
// calls; callers must consume it before the next Observe.
func (p *StridePrefetcher) Observe(pc, addr uint64) []uint64 {
	e := &p.entries[(pc>>2)&p.mask]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, last: addr, valid: true}
		return nil
	}
	stride := int64(addr) - int64(e.last)
	e.last = addr
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
		return nil
	}
	if e.conf < 2 {
		return nil
	}
	out := p.out[:0]
	a := int64(addr)
	for i := 0; i < p.degree; i++ {
		a += stride
		if a < 0 {
			break
		}
		out = append(out, uint64(a))
	}
	p.Issued += uint64(len(out))
	p.out = out
	return out
}

// NextLinePrefetcher is the simplest engine: every observed access
// prefetches the next `degree` sequential lines. No training state, so
// it reacts instantly but pollutes on irregular access patterns.
type NextLinePrefetcher struct {
	degree int
	out    []uint64

	// Issued counts prefetch requests sent to the hierarchy.
	Issued uint64
}

// NewNextLinePrefetcher builds a next-line prefetcher fetching `degree`
// lines ahead.
func NewNextLinePrefetcher(degree int) *NextLinePrefetcher {
	return &NextLinePrefetcher{degree: degree, out: make([]uint64, 0, degree)}
}

// Name returns "nextline".
func (p *NextLinePrefetcher) Name() string { return "nextline" }

// Observe returns the next `degree` line addresses after addr. The
// returned slice is reused across calls.
func (p *NextLinePrefetcher) Observe(_, addr uint64) []uint64 {
	out := p.out[:0]
	la := LineAddr(addr)
	for i := 1; i <= p.degree; i++ {
		out = append(out, (la+uint64(i))<<LineShift)
	}
	p.Issued += uint64(len(out))
	p.out = out
	return out
}

// Clone returns a copy (the only mutable state is the counter).
func (p *NextLinePrefetcher) Clone() Prefetcher {
	cp := *p
	cp.out = make([]uint64, 0, p.degree)
	return &cp
}

// StreamPrefetcher detects sequential streams per aligned 4 kB region:
// two accesses in the same region moving in one direction arm the
// stream, after which each access fetches `degree` lines ahead of the
// current head in the detected direction. Classic stream buffers chase
// the access stream without needing a stable per-PC stride, so they
// catch walks through allocator-ordered heaps that stride tables miss.
type StreamPrefetcher struct {
	entries []streamEntry
	mask    uint64
	degree  int
	out     []uint64

	// Issued counts prefetch requests sent to the hierarchy.
	Issued uint64
}

type streamEntry struct {
	region   uint64 // addr >> 12
	lastLine uint64
	dir      int8 // +1 ascending, -1 descending
	conf     int8 // saturating 0..3; >=1 triggers prefetch
	valid    bool
}

// NewStreamPrefetcher builds a stream prefetcher tracking tableSize
// regions (power of two) and fetching `degree` lines ahead.
func NewStreamPrefetcher(tableSize, degree int) *StreamPrefetcher {
	if tableSize <= 0 || tableSize&(tableSize-1) != 0 {
		panic("mem: prefetcher table size must be a power of two")
	}
	return &StreamPrefetcher{
		entries: make([]streamEntry, tableSize),
		mask:    uint64(tableSize - 1),
		degree:  degree,
		out:     make([]uint64, 0, degree),
	}
}

// Name returns "stream".
func (p *StreamPrefetcher) Name() string { return "stream" }

// Observe tracks the access's 4 kB region stream and returns the lines
// to fetch ahead once the stream direction is established. The returned
// slice is reused across calls.
func (p *StreamPrefetcher) Observe(_, addr uint64) []uint64 {
	region := addr >> 12
	la := LineAddr(addr)
	e := &p.entries[region&p.mask]
	if !e.valid || e.region != region {
		*e = streamEntry{region: region, lastLine: la, valid: true}
		return nil
	}
	if la == e.lastLine {
		return nil
	}
	dir := int8(1)
	if la < e.lastLine {
		dir = -1
	}
	if dir == e.dir {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.dir = dir
		e.conf = 0
	}
	e.lastLine = la
	if e.conf < 1 {
		return nil
	}
	out := p.out[:0]
	l := int64(la)
	for i := 0; i < p.degree; i++ {
		l += int64(dir)
		if l < 0 {
			break
		}
		out = append(out, uint64(l)<<LineShift)
	}
	p.Issued += uint64(len(out))
	p.out = out
	return out
}

// Clone returns a deep copy of the stream table.
func (p *StreamPrefetcher) Clone() Prefetcher {
	cp := *p
	cp.entries = append([]streamEntry(nil), p.entries...)
	cp.out = make([]uint64, 0, p.degree)
	return &cp
}
