// Package mem implements the memory hierarchy of the simulated processor:
// set-associative write-back caches with LRU replacement, MSHR-limited miss
// handling, an L2 stride prefetcher (degree 4, as in the paper's Table 1),
// and a fixed-latency DDR3-style DRAM model.
//
// Timing model: the hierarchy is queried analytically. Each access walks
// the levels, updates replacement/MSHR state immediately, and returns the
// cycle at which the data is available. In-flight fills are represented by
// a per-line fill timestamp, so overlapping requests to the same line merge
// onto the same fill (hit-under-miss) instead of issuing twice, and
// prefetched lines that are still in flight behave as delayed hits.
package mem

// LineShift selects 64-byte cache lines (Table 1).
const LineShift = 6

// LineBytes is the cache line size in bytes.
const LineBytes = 1 << LineShift

// LineAddr returns the line-aligned address for a byte address.
func LineAddr(addr uint64) uint64 { return addr >> LineShift }

// Level identifies where in the hierarchy an access was satisfied.
type Level uint8

const (
	// LvlL1 means the access hit in the first-level cache.
	LvlL1 Level = iota
	// LvlL2 means the access was satisfied by the L2.
	LvlL2
	// LvlL3 means the access was satisfied by the shared L3.
	LvlL3
	// LvlDRAM means the access went to main memory.
	LvlDRAM
	// NumLevels is the number of hierarchy levels; keep last.
	NumLevels
)

var levelNames = [NumLevels]string{"L1", "L2", "L3", "DRAM"}

// String returns the level name.
func (l Level) String() string { return levelNames[l] }

// line is one cache line's metadata.
type line struct {
	tag      uint64
	valid    bool
	dirty    bool
	lru      uint64 // last-touch stamp; larger = more recent
	fillTime uint64 // cycle at which the line's data is present
	prefetch bool   // brought in by the prefetcher and not yet demanded
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	name     string
	sets     int
	ways     int
	lat      uint64 // access latency in cycles
	lines    []line // sets*ways, row-major by set
	stamp    uint64
	setMask  uint64
	setShift uint

	// Statistics.
	Accesses    uint64
	Misses      uint64
	PrefHits    uint64 // demand hits on prefetched lines
	Evictions   uint64
	WritebacksN uint64
}

// NewCache builds a cache from total size in bytes, associativity and
// access latency in cycles. Size must be a multiple of ways*LineBytes and
// the resulting set count must be a power of two.
func NewCache(name string, sizeBytes, ways int, latency uint64) *Cache {
	sets := sizeBytes / (ways * LineBytes)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("mem: set count must be a power of two: " + name)
	}
	return &Cache{
		name:     name,
		sets:     sets,
		ways:     ways,
		lat:      latency,
		lines:    make([]line, sets*ways),
		setMask:  uint64(sets - 1),
		setShift: uint(log2(sets)),
	}
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Latency returns the cache's access latency in cycles.
func (c *Cache) Latency() uint64 { return c.lat }

// Sets returns the number of sets (for tests).
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity (for tests).
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) set(lineAddr uint64) []line {
	s := int(lineAddr & c.setMask)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Probe reports whether the line is present without updating LRU state or
// statistics (used for the phased-tag early-wakeup model and by tests).
func (c *Cache) Probe(lineAddr uint64) bool {
	tag := lineAddr >> c.setShift
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Lookup performs a demand access. If the line is present it returns
// (true, availableAt) where availableAt accounts for an in-flight fill.
// LRU state is updated.
func (c *Cache) Lookup(lineAddr uint64, now uint64) (bool, uint64) {
	c.Accesses++
	tag := lineAddr >> c.setShift
	set := c.set(lineAddr)
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			c.stamp++
			ln.lru = c.stamp
			if ln.prefetch {
				ln.prefetch = false
				c.PrefHits++
			}
			avail := now + c.lat
			if ln.fillTime > avail {
				avail = ln.fillTime
			}
			return true, avail
		}
	}
	c.Misses++
	return false, 0
}

// Insert allocates the line, evicting the LRU victim if needed. fillTime is
// the cycle the data arrives; dirty marks a store allocation; prefetch
// marks prefetcher-initiated fills. It returns whether a dirty victim was
// evicted (writeback traffic).
func (c *Cache) Insert(lineAddr, fillTime uint64, dirty, prefetch bool) (writeback bool) {
	tag := lineAddr >> c.setShift
	set := c.set(lineAddr)
	victim := 0
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag { // already present (race with merge)
			if dirty {
				ln.dirty = true
			}
			return false
		}
		if !ln.valid {
			victim = i
			goto place
		}
		if ln.lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		c.Evictions++
		if set[victim].dirty {
			c.WritebacksN++
			writeback = true
		}
	}
place:
	c.stamp++
	set[victim] = line{tag: tag, valid: true, dirty: dirty, lru: c.stamp,
		fillTime: fillTime, prefetch: prefetch}
	return writeback
}

// MarkDirty sets the dirty bit if the line is present.
func (c *Cache) MarkDirty(lineAddr uint64) {
	tag := lineAddr >> c.setShift
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = true
			return
		}
	}
}

// Invalidate drops the line if present (used by tests).
func (c *Cache) Invalidate(lineAddr uint64) {
	tag := lineAddr >> c.setShift
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
			return
		}
	}
}

// ResetStats zeroes the access statistics, keeping the cache contents
// (warm-up/measured-region boundary).
func (c *Cache) ResetStats() {
	c.Accesses, c.Misses, c.PrefHits, c.Evictions, c.WritebacksN = 0, 0, 0, 0, 0
}

// MissRate returns misses/accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
