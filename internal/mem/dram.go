package mem

// DRAM models a DDR3-1600 11-11-11 style main memory at cycle granularity:
// a single channel with multiple banks, per-bank row buffers, and a shared
// data bus. Timing parameters are expressed in CPU cycles (Table 1's core
// runs at 3.4 GHz against DDR3-1600: one memory cycle ≈ 4.25 CPU cycles,
// so CL=tRCD=tRP=11 memory cycles ≈ 47 CPU cycles each).
//
// An access classifies as:
//
//	row-buffer hit      — the bank has the row open:        tCAS
//	row-buffer closed   — bank idle, row must be activated:  tRCD + tCAS
//	row-buffer conflict — another row open: precharge first: tRP + tRCD + tCAS
//
// plus queueing behind earlier requests to the same bank and the burst
// transfer time on the shared bus. The simpler fixed-latency model
// (Config.DRAMLatency) remains available when Banks == 0.
type DRAM struct {
	banks     []dramBank
	busFreeAt uint64

	tCAS    uint64 // column access
	tRCD    uint64 // row activate
	tRP     uint64 // precharge
	tBurst  uint64 // 64B burst on the bus
	static  uint64 // controller + interconnect overhead
	rowBits uint   // log2 of row size in bytes
	bankCnt uint64

	// Statistics.
	Accesses  uint64
	RowHits   uint64
	RowMisses uint64 // closed-row activations
	Conflicts uint64
}

type dramBank struct {
	openRow uint64
	hasRow  bool
	freeAt  uint64
}

// DRAMConfig parameterizes the banked model.
type DRAMConfig struct {
	Banks    int
	RowBytes int
	TCAS     uint64
	TRCD     uint64
	TRP      uint64
	TBurst   uint64
	Static   uint64
}

// DefaultDRAMConfig returns DDR3-1600 11-11-11 at a 3.4 GHz core clock:
// 8 banks, 8 KiB rows, ~47-cycle timing components, 17-cycle bursts, and
// a 60-cycle controller/interconnect overhead so a random (row-miss)
// access lands near the 200-cycle figure the fixed model uses.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Banks:    8,
		RowBytes: 8 << 10,
		TCAS:     47,
		TRCD:     47,
		TRP:      47,
		TBurst:   17,
		Static:   60,
	}
}

// NewDRAM builds the banked model.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.Banks <= 0 || cfg.Banks&(cfg.Banks-1) != 0 {
		panic("mem: DRAM bank count must be a positive power of two")
	}
	if cfg.RowBytes <= 0 || cfg.RowBytes&(cfg.RowBytes-1) != 0 {
		panic("mem: DRAM row size must be a positive power of two")
	}
	rowBits := uint(0)
	for 1<<rowBits < cfg.RowBytes {
		rowBits++
	}
	return &DRAM{
		banks:   make([]dramBank, cfg.Banks),
		tCAS:    cfg.TCAS,
		tRCD:    cfg.TRCD,
		tRP:     cfg.TRP,
		tBurst:  cfg.TBurst,
		static:  cfg.Static,
		rowBits: rowBits,
		bankCnt: uint64(cfg.Banks),
	}
}

// bankAndRow decomposes a byte address: banks interleave on row-sized
// chunks (row:bank:offset), the common open-page mapping.
func (d *DRAM) bankAndRow(addr uint64) (bank, row uint64) {
	chunk := addr >> d.rowBits
	return chunk % d.bankCnt, chunk / d.bankCnt
}

// Access issues a 64-byte fill request at cycle now and returns the cycle
// its data is fully transferred.
func (d *DRAM) Access(addr, now uint64) uint64 {
	d.Accesses++
	bank, row := d.bankAndRow(addr)
	b := &d.banks[bank]

	start := now + d.static
	if b.freeAt > start {
		start = b.freeAt // queue behind earlier work in this bank
	}

	var access uint64
	switch {
	case b.hasRow && b.openRow == row:
		d.RowHits++
		access = d.tCAS
	case !b.hasRow:
		d.RowMisses++
		access = d.tRCD + d.tCAS
	default:
		d.Conflicts++
		access = d.tRP + d.tRCD + d.tCAS
	}
	b.hasRow = true
	b.openRow = row

	dataReady := start + access
	// The burst occupies the shared bus; serialize transfers.
	busStart := dataReady
	if d.busFreeAt > busStart {
		busStart = d.busFreeAt
	}
	done := busStart + d.tBurst
	d.busFreeAt = done
	b.freeAt = dataReady // the bank can start its next activate after CAS

	return done
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	if d.Accesses == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(d.Accesses)
}
