package mem

import "testing"

func TestDRAMRowBufferHit(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	first := d.Access(0x10000, 0)
	if d.RowMisses != 1 {
		t.Fatalf("first access: rowMisses=%d", d.RowMisses)
	}
	// Second access to the same row, after the first completed.
	second := d.Access(0x10040, first+10)
	if d.RowHits != 1 {
		t.Fatalf("same-row access: rowHits=%d", d.RowHits)
	}
	if second-(first+10) >= first-0 {
		t.Errorf("row hit (%d cycles) not faster than activation (%d cycles)",
			second-(first+10), first)
	}
}

func TestDRAMRowConflict(t *testing.T) {
	cfg := DefaultDRAMConfig()
	d := NewDRAM(cfg)
	a := d.Access(0, 0)
	// Same bank (bank interleave is on row-sized chunks): address one
	// full bank-stripe away targets the same bank, a different row.
	conflictAddr := uint64(cfg.RowBytes * cfg.Banks)
	b := d.Access(conflictAddr, a+10)
	if d.Conflicts != 1 {
		t.Fatalf("conflicts=%d", d.Conflicts)
	}
	lat := b - (a + 10)
	want := cfg.Static + cfg.TRP + cfg.TRCD + cfg.TCAS + cfg.TBurst
	if lat != want {
		t.Errorf("conflict latency %d, want %d", lat, want)
	}
}

func TestDRAMBankQueueing(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	// Two simultaneous requests to the same bank serialize.
	a := d.Access(0, 0)
	b := d.Access(64, 0)
	if b <= a {
		t.Errorf("same-cycle same-bank requests did not serialize: %d vs %d", b, a)
	}
	// Different banks overlap: the second finishes well before the
	// serialized case.
	d2 := NewDRAM(DefaultDRAMConfig())
	cfg := DefaultDRAMConfig()
	a2 := d2.Access(0, 0)
	b2 := d2.Access(uint64(cfg.RowBytes), 0) // bank 1
	if b2 > a2+cfg.TBurst {
		t.Errorf("different banks serialized too much: %d vs %d", b2, a2)
	}
}

func TestDRAMBusContention(t *testing.T) {
	cfg := DefaultDRAMConfig()
	d := NewDRAM(cfg)
	// Saturate all banks at once; the bus must serialize the bursts.
	var last uint64
	for i := 0; i < cfg.Banks; i++ {
		last = d.Access(uint64(i*cfg.RowBytes), 0)
	}
	minSerial := cfg.Static + cfg.TRCD + cfg.TCAS + uint64(cfg.Banks)*cfg.TBurst
	if last < minSerial {
		t.Errorf("bus contention ignored: last=%d < %d", last, minSerial)
	}
}

func TestDRAMConfigPanics(t *testing.T) {
	for _, cfg := range []DRAMConfig{
		{Banks: 3, RowBytes: 8192},
		{Banks: 8, RowBytes: 1000},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v must panic", cfg)
				}
			}()
			NewDRAM(cfg)
		}()
	}
}

func TestHierarchyWithBankedDRAM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0
	dcfg := DefaultDRAMConfig()
	cfg.DRAM = &dcfg
	h := NewHierarchy(cfg)

	r, ok := h.Load(0x10, 0x5000, 0)
	if !ok || r.Level != LvlDRAM {
		t.Fatalf("cold load level %v", r.Level)
	}
	want := dcfg.Static + dcfg.TRCD + dcfg.TCAS + dcfg.TBurst
	if r.Avail != want {
		t.Errorf("closed-row DRAM load completes at %d, want %d", r.Avail, want)
	}
	if h.DRAMModel() == nil || h.DRAMModel().Accesses != 1 {
		t.Error("DRAM model not wired in")
	}

	// Sequential lines in the same row: later accesses are row hits.
	now := r.Avail + 1
	for i := 1; i <= 4; i++ {
		rr, _ := h.Load(0x10, 0x5000+uint64(i)*LineBytes, now)
		now = rr.Avail + 1
	}
	if h.DRAMModel().RowHits == 0 {
		t.Error("sequential lines produced no row-buffer hits")
	}
}

func TestDRAMRandomVsSequentialLatency(t *testing.T) {
	cfg := DefaultDRAMConfig()
	seq := NewDRAM(cfg)
	rnd := NewDRAM(cfg)
	var seqSum, rndSum uint64
	now := uint64(0)
	for i := 0; i < 200; i++ {
		done := seq.Access(uint64(i*64), now)
		seqSum += done - now
		now = done + 50
	}
	now = 0
	x := uint64(12345)
	for i := 0; i < 200; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		done := rnd.Access(x%(1<<30), now)
		rndSum += done - now
		now = done + 50
	}
	if seqSum >= rndSum {
		t.Errorf("sequential DRAM (%d) not faster than random (%d)", seqSum, rndSum)
	}
}
