package mem

// SMT-style shared-hierarchy contention: a co-runner is a second (or
// Nth) program whose memory traffic interleaves with the primary core's
// through the shared L2/L3/DRAM while keeping a private L1D. The
// co-runner's access stream is captured functionally once (an immutable
// TrafficPattern) and replayed cyclically at a configured intensity, so
// contention is deterministic, cloneable for sampled checkpoints, and
// cheap: no second pipeline is simulated, only the hierarchy sees the
// extra traffic — shared-cache pollution, MSHR occupancy and DRAM bank
// pressure are all real, which is exactly the regime where parking
// non-critical work matters most.

// TrafficPattern is an immutable captured co-runner access stream.
// Clones of a hierarchy share the pattern; only replay positions copy.
type TrafficPattern struct {
	// PC holds the accessing instruction addresses (prefetcher and
	// MSHR bookkeeping key on them).
	PC []uint64
	// Addr holds the byte addresses accessed.
	Addr []uint64
	// Store marks write accesses.
	Store []bool
}

// Len returns the number of captured accesses.
func (t *TrafficPattern) Len() int { return len(t.Addr) }

// CorunnerConfig attaches one co-runner stream to a hierarchy.
type CorunnerConfig struct {
	// Pattern is the captured access stream (must be non-empty).
	Pattern *TrafficPattern
	// Intensity is the replay rate in accesses per 1024 cycles of the
	// shared clock (a credit scheme; 1024 = one access per cycle).
	// During functional warm-up the same credits accrue per warmed µop.
	Intensity int
}

// corunner is one co-runner's mutable replay state.
type corunner struct {
	pattern   *TrafficPattern // shared, immutable
	intensity int
	l1d       *Cache // private L1D: only misses reach the shared levels
	idx       int    // next pattern position
	credit    int    // intensity accumulator, 1/1024-access units
}

// AttachCorunners installs the co-runner streams. Each gets a private
// L1D sized like the primary core's; all traffic below it shares the
// hierarchy's L2/L3/MSHRs/DRAM. Call before simulation starts.
func (h *Hierarchy) AttachCorunners(cfgs []CorunnerConfig) {
	h.cors = h.cors[:0]
	for i, c := range cfgs {
		if c.Pattern == nil || c.Pattern.Len() == 0 {
			continue
		}
		in := c.Intensity
		if in <= 0 {
			in = DefaultCorunnerIntensity
		}
		h.cors = append(h.cors, corunner{
			pattern:   c.Pattern,
			intensity: in,
			l1d: NewCache(corunnerCacheName(i), h.cfg.L1DSize,
				h.cfg.L1DWays, h.cfg.L1Latency),
		})
	}
}

// DefaultCorunnerIntensity is the replay rate when a spec leaves it
// unset: 256/1024, one co-runner access per four shared-clock cycles.
const DefaultCorunnerIntensity = 256

// corunnerCacheName labels a co-runner's private L1D for debug output.
func corunnerCacheName(i int) string {
	return "coL1D-" + string(rune('0'+i%10))
}

// HasCorunners reports whether any co-runner streams are attached.
func (h *Hierarchy) HasCorunners() bool { return len(h.cors) > 0 }

// Tick advances co-runner traffic by one cycle of the shared clock: each
// co-runner accrues intensity credits and replays one pattern access per
// 1024 accrued. A replay that cannot get a shared MSHR burns its credit
// without advancing — back-pressure under contention, retried next grant.
func (h *Hierarchy) Tick(now uint64) {
	if len(h.cors) == 0 {
		return
	}
	for i := range h.cors {
		c := &h.cors[i]
		c.credit += c.intensity
		for c.credit >= 1024 {
			c.credit -= 1024
			h.corunnerAccess(c, now)
		}
	}
}

// corunnerAccess replays one access through the private L1D and the
// shared levels at cycle now.
func (h *Hierarchy) corunnerAccess(c *corunner, now uint64) {
	pc, addr, isStore := c.step()
	la := LineAddr(addr)
	if hit, _ := c.l1d.Lookup(la, now); hit {
		if isStore {
			c.l1d.MarkDirty(la)
		}
		c.idx++
		h.CorunnerAccesses++
		return
	}
	// Below-L1 walk on the shared path: demandLoad=false keeps the
	// primary core's prefetcher training and demand-DRAM/MLP statistics
	// clean while still occupying shared MSHRs and DRAM banks.
	r, ok := h.walkBelowL1(pc, la, now, false, isStore)
	if !ok {
		h.CorunnerStalls++ // shared L2 MSHRs full: slot lost, retry later
		return
	}
	c.l1d.Insert(la, r.Avail, isStore, false)
	if r.Level == LvlDRAM {
		h.CorunnerDRAM++
	}
	c.idx++
	h.CorunnerAccesses++
}

// WarmTick advances co-runner traffic during functional warm-up: the
// same credit scheme as Tick, accrued once per warmed µop, through a
// timing-free shared-cache walk — so a warmed-then-cloned hierarchy
// carries co-runner cache pressure exactly like a cycle-simulated one
// carries it into the measured region.
func (h *Hierarchy) WarmTick() {
	if len(h.cors) == 0 {
		return
	}
	for i := range h.cors {
		c := &h.cors[i]
		c.credit += c.intensity
		for c.credit >= 1024 {
			c.credit -= 1024
			h.warmCorunnerAccess(c)
		}
	}
}

// warmCorunnerAccess replays one access with no timing model.
func (h *Hierarchy) warmCorunnerAccess(c *corunner) {
	_, addr, isStore := c.step()
	la := LineAddr(addr)
	if hit, _ := c.l1d.Lookup(la, 0); hit {
		if isStore {
			c.l1d.MarkDirty(la)
		}
	} else {
		if hit, _ := h.L2.Lookup(la, 0); !hit {
			if hit3, _ := h.L3.Lookup(la, 0); !hit3 {
				h.L3.Insert(la, 0, false, false)
			}
			h.L2.Insert(la, 0, false, false)
		}
		c.l1d.Insert(la, 0, isStore, false)
	}
	c.idx++
	h.CorunnerAccesses++
}

// step reads the co-runner's next pattern access (cyclic replay).
func (c *corunner) step() (pc, addr uint64, isStore bool) {
	i := c.idx % c.pattern.Len()
	return c.pattern.PC[i], c.pattern.Addr[i], c.pattern.Store[i]
}

// cloneCorunners deep-copies replay state; patterns stay shared.
func cloneCorunners(cors []corunner) []corunner {
	if len(cors) == 0 {
		return nil
	}
	out := make([]corunner, len(cors))
	for i := range cors {
		out[i] = cors[i]
		out[i].l1d = cors[i].l1d.Clone()
	}
	return out
}
