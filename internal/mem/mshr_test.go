package mem

import (
	"math/rand"
	"testing"
)

// refMSHRs is the map-based reference implementation the open-addressed
// table replaced; the differential test below holds the two to identical
// observable behaviour under a random workload.
type refMSHRs struct {
	capacity int
	inflight map[uint64]fillInfo
}

func (m *refMSHRs) sweep(now uint64) {
	for a, f := range m.inflight {
		if f.time <= now {
			delete(m.inflight, a)
		}
	}
}

func (m *refMSHRs) Lookup(lineAddr, now uint64) (uint64, Level, bool) {
	f, present := m.inflight[lineAddr]
	if present && f.time > now {
		return f.time, f.level, true
	}
	if present {
		delete(m.inflight, lineAddr)
	}
	return 0, 0, false
}

func (m *refMSHRs) Allocate(lineAddr, fillTime, now uint64, level Level) bool {
	if m.capacity > 0 && len(m.inflight) >= m.capacity {
		m.sweep(now)
		if len(m.inflight) >= m.capacity {
			return false
		}
	}
	m.inflight[lineAddr] = fillInfo{time: fillTime, level: level}
	return true
}

func (m *refMSHRs) Free(now uint64) bool {
	if m.capacity <= 0 || len(m.inflight) < m.capacity {
		return true
	}
	m.sweep(now)
	return len(m.inflight) < m.capacity
}

// TestMSHRDifferential drives the open-addressed MSHR table and the map
// reference with the same random operation stream and requires identical
// results — the backward-shift deletion is the risky part.
func TestMSHRDifferential(t *testing.T) {
	for _, capacity := range []int{0, 1, 4, 16} {
		rng := rand.New(rand.NewSource(int64(42 + capacity)))
		m := NewMSHRs(capacity)
		ref := &refMSHRs{capacity: capacity, inflight: make(map[uint64]fillInfo)}
		now := uint64(0)
		for op := 0; op < 20000; op++ {
			now += uint64(rng.Intn(3))
			// Cluster line addresses so probe chains collide and expire.
			la := uint64(rng.Intn(24))
			switch rng.Intn(3) {
			case 0:
				gt, gl, gok := m.Lookup(la, now)
				wt, wl, wok := ref.Lookup(la, now)
				if gok != wok || gt != wt || gl != wl {
					t.Fatalf("cap=%d op=%d Lookup(%d,%d): got (%d,%v,%v) want (%d,%v,%v)",
						capacity, op, la, now, gt, gl, gok, wt, wl, wok)
				}
			case 1:
				fill := now + uint64(rng.Intn(40))
				lvl := Level(rng.Intn(int(NumLevels)))
				// Allocate only when absent, as the hierarchy does.
				if _, _, ok := ref.Lookup(la, now); !ok {
					m.Lookup(la, now) // mirror the expiry side-effect
					gok := m.Allocate(la, fill, now, lvl)
					wok := ref.Allocate(la, fill, now, lvl)
					if gok != wok {
						t.Fatalf("cap=%d op=%d Allocate(%d): got %v want %v", capacity, op, la, gok, wok)
					}
				}
			default:
				if g, w := m.Free(now), ref.Free(now); g != w {
					t.Fatalf("cap=%d op=%d Free(%d): got %v want %v", capacity, op, now, g, w)
				}
			}
			if g, w := m.count, len(ref.inflight); g != w {
				t.Fatalf("cap=%d op=%d count drift: got %d want %d", capacity, op, g, w)
			}
		}
	}
}

// TestMSHROutstanding covers the statistic the MLP metric relies on.
func TestMSHROutstanding(t *testing.T) {
	m := NewMSHRs(8)
	m.Allocate(1, 100, 0, LvlDRAM)
	m.Allocate(2, 50, 0, LvlL3)
	m.Allocate(3, 10, 0, LvlL2)
	if got := m.Outstanding(20); got != 2 {
		t.Errorf("Outstanding(20) = %d, want 2", got)
	}
	if got := m.Outstanding(200); got != 0 {
		t.Errorf("Outstanding(200) = %d, want 0", got)
	}
}
