package mem

// Deep copies of the hierarchy's mutable state. The sampled fidelity
// tier checkpoints a functionally-warmed hierarchy at every interval
// boundary by cloning it: the clone backs a fresh pipeline while the
// original keeps warming toward the next boundary, so the two must
// share no mutable storage.

// Clone returns a deep copy of the cache: tag array, LRU state and
// statistics are duplicated so the copy evolves independently.
func (c *Cache) Clone() *Cache {
	cp := *c
	cp.lines = append([]line(nil), c.lines...)
	return &cp
}

// Clone returns a deep copy of the MSHR file, including any in-flight
// fill slots.
func (m *MSHRs) Clone() *MSHRs {
	cp := *m
	cp.slots = append([]mshrSlot(nil), m.slots...)
	return &cp
}

// Clone returns a deep copy of the prefetcher's stride table. The
// transient Observe result buffer is not shared.
func (p *StridePrefetcher) Clone() Prefetcher {
	cp := *p
	cp.entries = append([]strideEntry(nil), p.entries...)
	cp.out = make([]uint64, 0, p.degree)
	return &cp
}

// Clone returns a deep copy of the DRAM model, including per-bank open
// rows and bus timing.
func (d *DRAM) Clone() *DRAM {
	cp := *d
	cp.banks = append([]dramBank(nil), d.banks...)
	return &cp
}

// Clone returns a deep copy of the whole hierarchy — cache contents,
// MSHRs, prefetcher, DRAM state, outstanding demand fills and all
// statistics.
func (h *Hierarchy) Clone() *Hierarchy {
	cp := *h
	cp.L1I = h.L1I.Clone()
	cp.L1D = h.L1D.Clone()
	cp.L2 = h.L2.Clone()
	cp.L3 = h.L3.Clone()
	cp.l1m = h.l1m.Clone()
	cp.l2m = h.l2m.Clone()
	if h.pref != nil {
		cp.pref = h.pref.Clone()
	}
	if h.dram != nil {
		cp.dram = h.dram.Clone()
	}
	cp.cors = cloneCorunners(h.cors)
	cp.demandEnds = append([]uint64(nil), h.demandEnds...)
	return &cp
}
