package mem

// fillInfo describes an in-flight line fill.
type fillInfo struct {
	time  uint64 // cycle the data arrives
	level Level  // hierarchy level that satisfies the miss
}

// MSHRs tracks outstanding line misses for one cache level. A demand miss
// on a line with an existing entry merges onto the in-flight fill and does
// not consume a new entry. A new miss needs a free entry; when all entries
// are busy the requester must retry (the pipeline replays the access next
// cycle, which is how MSHR pressure turns into stalls).
type MSHRs struct {
	capacity int                 // <=0 means unlimited
	inflight map[uint64]fillInfo // lineAddr -> fill

	// Statistics.
	Merges    uint64
	FullStall uint64
}

// NewMSHRs returns an MSHR file with the given entry count (<=0 = infinite).
func NewMSHRs(capacity int) *MSHRs {
	return &MSHRs{capacity: capacity, inflight: make(map[uint64]fillInfo)}
}

// sweep drops completed fills.
func (m *MSHRs) sweep(now uint64) {
	for a, f := range m.inflight {
		if f.time <= now {
			delete(m.inflight, a)
		}
	}
}

// Lookup returns the in-flight fill for the line, if any.
func (m *MSHRs) Lookup(lineAddr, now uint64) (fillTime uint64, level Level, ok bool) {
	f, present := m.inflight[lineAddr]
	if present && f.time > now {
		m.Merges++
		return f.time, f.level, true
	}
	if present {
		delete(m.inflight, lineAddr)
	}
	return 0, 0, false
}

// Allocate reserves an entry for a new miss filling at fillTime from the
// given level. It returns false when the file is full and the miss cannot
// be issued this cycle.
func (m *MSHRs) Allocate(lineAddr, fillTime, now uint64, level Level) bool {
	if m.capacity > 0 && len(m.inflight) >= m.capacity {
		m.sweep(now)
		if len(m.inflight) >= m.capacity {
			m.FullStall++
			return false
		}
	}
	m.inflight[lineAddr] = fillInfo{time: fillTime, level: level}
	return true
}

// Free reports whether at least one entry is available (after sweeping).
func (m *MSHRs) Free(now uint64) bool {
	if m.capacity <= 0 {
		return true
	}
	if len(m.inflight) < m.capacity {
		return true
	}
	m.sweep(now)
	return len(m.inflight) < m.capacity
}

// Outstanding returns the number of in-flight misses at the given cycle.
func (m *MSHRs) Outstanding(now uint64) int {
	n := 0
	for _, f := range m.inflight {
		if f.time > now {
			n++
		}
	}
	return n
}
