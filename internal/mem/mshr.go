package mem

// fillInfo describes an in-flight line fill.
type fillInfo struct {
	time  uint64 // cycle the data arrives
	level Level  // hierarchy level that satisfies the miss
}

// mshrSlot is one open-addressed table slot. A zero lineAddr marks a free
// slot; real line addresses are biased by 1 so line 0 stays representable.
type mshrSlot struct {
	key  uint64 // biased line address; 0 = empty
	fill fillInfo
}

// MSHRs tracks outstanding line misses for one cache level. A demand miss
// on a line with an existing entry merges onto the in-flight fill and does
// not consume a new entry. A new miss needs a free entry; when all entries
// are busy the requester must retry (the pipeline replays the access next
// cycle, which is how MSHR pressure turns into stalls).
//
// The table is open-addressed with linear probing and backward-shift
// deletion: the per-access path is allocation-free and cache-friendly,
// unlike the map[uint64]fillInfo it replaces, which showed up in the
// campaign profile through hashing and GC scanning.
type MSHRs struct {
	capacity int // <=0 means unlimited
	slots    []mshrSlot
	mask     uint64
	count    int

	// Statistics.
	Merges    uint64
	FullStall uint64
}

// NewMSHRs returns an MSHR file with the given entry count (<=0 = infinite).
func NewMSHRs(capacity int) *MSHRs {
	n := 64
	if capacity > 0 {
		// Size for the bounded entry count at <50% load.
		for n < 4*capacity {
			n *= 2
		}
	}
	return &MSHRs{capacity: capacity, slots: make([]mshrSlot, n), mask: uint64(n - 1)}
}

// hash mixes the biased line address into a table index.
func (m *MSHRs) hash(key uint64) uint64 {
	key *= 0x9e3779b97f4a7c15 // Fibonacci hashing
	return (key >> 33) & m.mask
}

// grow doubles the table (unlimited-capacity mode only).
func (m *MSHRs) grow() {
	old := m.slots
	m.slots = make([]mshrSlot, 2*len(old))
	m.mask = uint64(len(m.slots) - 1)
	m.count = 0
	for _, s := range old {
		if s.key != 0 {
			m.insert(s.key, s.fill)
		}
	}
}

// insert places a key known to be absent.
func (m *MSHRs) insert(key uint64, f fillInfo) {
	if 2*(m.count+1) > len(m.slots) {
		m.grow()
	}
	i := m.hash(key)
	for m.slots[i].key != 0 {
		i = (i + 1) & m.mask
	}
	m.slots[i] = mshrSlot{key: key, fill: f}
	m.count++
}

// find returns the slot index for key, or -1.
func (m *MSHRs) find(key uint64) int {
	i := m.hash(key)
	for {
		s := &m.slots[i]
		if s.key == key {
			return int(i)
		}
		if s.key == 0 {
			return -1
		}
		i = (i + 1) & m.mask
	}
}

// deleteAt removes the slot at index i, backward-shifting the probe chain
// so lookups stay correct without tombstones.
func (m *MSHRs) deleteAt(i int) {
	m.count--
	j := uint64(i)
	for {
		m.slots[j] = mshrSlot{}
		k := j
		for {
			k = (k + 1) & m.mask
			s := m.slots[k]
			if s.key == 0 {
				return
			}
			home := m.hash(s.key)
			// Shift s back if its home position cannot reach it through j.
			if (j <= k && (home <= j || home > k)) || (j > k && home <= j && home > k) {
				m.slots[j] = s
				j = k
				break
			}
		}
	}
}

// sweep drops completed fills.
func (m *MSHRs) sweep(now uint64) {
	for i := 0; i < len(m.slots); i++ {
		if m.slots[i].key != 0 && m.slots[i].fill.time <= now {
			m.deleteAt(i)
			i-- // the shift may have moved a later entry into slot i
		}
	}
}

// Lookup returns the in-flight fill for the line, if any.
func (m *MSHRs) Lookup(lineAddr, now uint64) (fillTime uint64, level Level, ok bool) {
	i := m.find(lineAddr + 1)
	if i < 0 {
		return 0, 0, false
	}
	f := m.slots[i].fill
	if f.time > now {
		m.Merges++
		return f.time, f.level, true
	}
	m.deleteAt(i)
	return 0, 0, false
}

// Allocate reserves an entry for a new miss filling at fillTime from the
// given level. It returns false when the file is full and the miss cannot
// be issued this cycle.
func (m *MSHRs) Allocate(lineAddr, fillTime, now uint64, level Level) bool {
	if m.capacity > 0 && m.count >= m.capacity {
		m.sweep(now)
		if m.count >= m.capacity {
			m.FullStall++
			return false
		}
	}
	m.insert(lineAddr+1, fillInfo{time: fillTime, level: level})
	return true
}

// Free reports whether at least one entry is available (after sweeping).
func (m *MSHRs) Free(now uint64) bool {
	if m.capacity <= 0 {
		return true
	}
	if m.count < m.capacity {
		return true
	}
	m.sweep(now)
	return m.count < m.capacity
}

// Outstanding returns the number of in-flight misses at the given cycle.
func (m *MSHRs) Outstanding(now uint64) int {
	n := 0
	for _, s := range m.slots {
		if s.key != 0 && s.fill.time > now {
			n++
		}
	}
	return n
}
