package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Max() != 0 || a.Cycles() != 0 {
		t.Error("zero accumulator must report zeros")
	}
	for _, v := range []float64{1, 2, 3, 10} {
		a.Add(v)
	}
	if a.Mean() != 4 {
		t.Errorf("mean %v, want 4", a.Mean())
	}
	if a.Max() != 10 {
		t.Errorf("max %v, want 10", a.Max())
	}
	if a.Cycles() != 4 {
		t.Errorf("cycles %v", a.Cycles())
	}
}

// Property: mean is bounded by min and max of the samples.
func TestAccumulatorBoundsProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var a Accumulator
		lo, hi := float64(vals[0]), float64(vals[0])
		for _, v := range vals {
			fv := float64(v)
			a.Add(fv)
			if fv < lo {
				lo = fv
			}
			if fv > hi {
				hi = fv
			}
		}
		return a.Mean() >= lo && a.Mean() <= hi && a.Max() == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Inc("b", 2)
	s.Inc("a", 1)
	s.Inc("b", 3)
	if s.Get("b") != 5 || s.Get("a") != 1 || s.Get("missing") != 0 {
		t.Error("counter arithmetic broken")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names %v", names)
	}
	if !strings.Contains(s.String(), "a") {
		t.Error("String misses counters")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("zero denominator must yield 0")
	}
	if Ratio(1, 4) != 0.25 {
		t.Error("ratio arithmetic broken")
	}
}
