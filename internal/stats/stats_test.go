package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Max() != 0 || a.Cycles() != 0 {
		t.Error("zero accumulator must report zeros")
	}
	for _, v := range []float64{1, 2, 3, 10} {
		a.Add(v)
	}
	if a.Mean() != 4 {
		t.Errorf("mean %v, want 4", a.Mean())
	}
	if a.Max() != 10 {
		t.Errorf("max %v, want 10", a.Max())
	}
	if a.Cycles() != 4 {
		t.Errorf("cycles %v", a.Cycles())
	}
}

// Property: mean is bounded by min and max of the samples.
func TestAccumulatorBoundsProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var a Accumulator
		lo, hi := float64(vals[0]), float64(vals[0])
		for _, v := range vals {
			fv := float64(v)
			a.Add(fv)
			if fv < lo {
				lo = fv
			}
			if fv > hi {
				hi = fv
			}
		}
		return a.Mean() >= lo && a.Mean() <= hi && a.Max() == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Inc("b", 2)
	s.Inc("a", 1)
	s.Inc("b", 3)
	if s.Get("b") != 5 || s.Get("a") != 1 || s.Get("missing") != 0 {
		t.Error("counter arithmetic broken")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names %v", names)
	}
	if !strings.Contains(s.String(), "a") {
		t.Error("String misses counters")
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.CI95 != 0 {
		t.Errorf("empty summary %+v", s)
	}
	if s := Summarize([]float64{3.5}); s.N != 1 || s.Mean != 3.5 || s.CI95 != 0 {
		t.Errorf("single-sample summary %+v: CI must be 0 at N=1", s)
	}

	// Hand-checked: {2, 4, 6} has mean 4, stddev 2, t(df=2)=4.303,
	// CI half-width = 4.303 * 2 / sqrt(3) = 4.9686...
	s := Summarize([]float64{2, 4, 6})
	if s.Mean != 4 || s.Min != 2 || s.Max != 6 || s.StdDev != 2 {
		t.Errorf("summary %+v", s)
	}
	if want := 4.303 * 2 / 1.7320508075688772; absDiff(s.CI95, want) > 1e-9 {
		t.Errorf("CI95 %v, want %v", s.CI95, want)
	}

	// Identical samples: mean exact, CI exactly 0.
	if s := Summarize([]float64{7, 7, 7, 7}); s.CI95 != 0 || s.Mean != 7 {
		t.Errorf("constant summary %+v", s)
	}

	// Spread samples: CI strictly positive, shrinking with N.
	small := Summarize([]float64{1, 2, 3})
	big := Summarize([]float64{1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3})
	if small.CI95 <= 0 || big.CI95 <= 0 || big.CI95 >= small.CI95 {
		t.Errorf("CI scaling broken: n=3 %v, n=12 %v", small.CI95, big.CI95)
	}

	if got := Summarize([]float64{2, 4, 6}).String(); !strings.Contains(got, "n=3") {
		t.Errorf("String() = %q", got)
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Property: mean within [min, max], CI non-negative and 0 for N < 2.
func TestSummarizeProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		fv := make([]float64, len(vals))
		for i, v := range vals {
			fv[i] = float64(v)
		}
		s := Summarize(fv)
		if s.N != len(vals) || s.CI95 < 0 {
			return false
		}
		if s.N == 0 {
			return true
		}
		return s.Mean >= s.Min && s.Mean <= s.Max && (s.N >= 2 || s.CI95 == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("zero denominator must yield 0")
	}
	if Ratio(1, 4) != 0.25 {
		t.Error("ratio arithmetic broken")
	}
}

// TestSummarizeDegenerate pins the degenerate-input contract: n = 1 and
// zero-variance sample sets must summarize with CI95 = 0 — never NaN,
// never negative — because campaign tables print the value and the
// service marshals it to JSON (json.Marshal rejects NaN outright).
func TestSummarizeDegenerate(t *testing.T) {
	// A single sample has no dispersion estimate.
	s := Summarize([]float64{3.14})
	if s.N != 1 || s.Mean != 3.14 || s.CI95 != 0 || s.StdDev != 0 {
		t.Fatalf("n=1 summary %+v, want mean 3.14 with zero CI and stddev", s)
	}

	// Zero variance across replicates (deterministic metrics).
	s = Summarize([]float64{2, 2, 2, 2})
	if s.Mean != 2 || s.CI95 != 0 || s.StdDev != 0 {
		t.Fatalf("zero-variance summary %+v, want mean 2 with zero CI", s)
	}
	if math.IsNaN(s.CI95) || math.IsNaN(s.StdDev) {
		t.Fatalf("zero-variance summary produced NaN: %+v", s)
	}

	// Huge identical values: the sum-of-squares path must not round
	// into a negative and NaN out of Sqrt.
	big := 1e15 + 1.0/3.0
	s = Summarize([]float64{big, big, big})
	if math.IsNaN(s.CI95) || s.CI95 < 0 {
		t.Fatalf("large zero-variance summary produced invalid CI: %+v", s)
	}

	// A poisoned sample (NaN metric from a degenerate run) corrupts the
	// mean — the caller's bug to notice — but must not leak NaN into
	// the dispersion fields the renderers divide and marshal.
	s = Summarize([]float64{1, math.NaN()})
	if math.IsNaN(s.CI95) || math.IsNaN(s.StdDev) {
		t.Fatalf("NaN sample leaked into CI/StdDev: %+v", s)
	}

	// Empty input stays the zero summary.
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary %+v, want zero value", s)
	}
}
