package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Accumulator integrates a per-cycle quantity so its time average can be
// reported (e.g. "average IQ entries in use per cycle").
type Accumulator struct {
	sum    float64
	cycles uint64
	max    float64
}

// Add records the quantity's value for one cycle.
func (a *Accumulator) Add(v float64) {
	a.sum += v
	a.cycles++
	if v > a.max {
		a.max = v
	}
}

// Mean returns the time average.
func (a *Accumulator) Mean() float64 {
	if a.cycles == 0 {
		return 0
	}
	return a.sum / float64(a.cycles)
}

// Max returns the maximum observed value.
func (a *Accumulator) Max() float64 { return a.max }

// Reset discards all samples (warm-up/measured-region boundaries).
func (a *Accumulator) Reset() { *a = Accumulator{} }

// Cycles returns the number of samples.
func (a *Accumulator) Cycles() uint64 { return a.cycles }

// Set is a named collection of counters, kept ordered for stable output.
type Set struct {
	counters map[string]uint64
}

// NewSet returns an empty counter set.
func NewSet() *Set { return &Set{counters: make(map[string]uint64)} }

// Inc adds delta to the named counter.
func (s *Set) Inc(name string, delta uint64) { s.counters[name] += delta }

// Get returns the named counter (0 if absent).
func (s *Set) Get(name string) uint64 { return s.counters[name] }

// Names returns the counter names in sorted order.
func (s *Set) Names() []string {
	out := make([]string, 0, len(s.counters))
	for k := range s.counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the set one counter per line.
func (s *Set) String() string {
	var b strings.Builder
	for _, k := range s.Names() {
		fmt.Fprintf(&b, "%-32s %d\n", k, s.counters[k])
	}
	return b.String()
}

// Summary condenses seed-replicated samples of one metric into the
// form campaign tables report: mean ± half-width of the 95% confidence
// interval. Single-sample "results" — the blind spot the scenario
// matrix exists to remove — show up as N=1 with CI95 = 0.
type Summary struct {
	N        int     // sample count
	Mean     float64 // arithmetic mean
	CI95     float64 // half-width of the 95% CI (0 when N < 2)
	Min, Max float64 // sample extremes
	StdDev   float64 // sample standard deviation (Bessel-corrected)
}

// tCrit95 holds two-sided 95% Student-t critical values for 1..30
// degrees of freedom; beyond that the normal 1.96 is close enough.
var tCrit95 = [31]float64{0,
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// Summarize computes the mean and 95% confidence interval of vals
// using the Student-t distribution (the sample counts of a seed-
// replicated campaign are far too small for a normal approximation).
func Summarize(vals []float64) Summary {
	s := Summary{N: len(vals)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = vals[0], vals[0]
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		// A single sample has no dispersion estimate: the CI is 0 by
		// definition (and must never be NaN — campaign tables and the
		// service's JSON both consume it).
		return s
	}
	ss := 0.0
	for _, v := range vals {
		d := v - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(s.N-1))
	df := s.N - 1
	t := 1.960
	if df < len(tCrit95) {
		t = tCrit95[df]
	}
	s.CI95 = t * s.StdDev / math.Sqrt(float64(s.N))
	// Zero-variance replicates (deterministic metrics across seeds) and
	// pathological inputs must summarize with CI95 = 0, never NaN or a
	// negative width: json.Marshal rejects NaN outright, so one poisoned
	// metric would otherwise take down a whole campaign response.
	if math.IsNaN(s.CI95) || math.IsInf(s.CI95, 0) || s.CI95 < 0 {
		s.CI95 = 0
	}
	if math.IsNaN(s.StdDev) || math.IsInf(s.StdDev, 0) {
		s.StdDev = 0
	}
	return s
}

// String renders "mean ± ci (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95, s.N)
}

// Ratio is a convenience for percentage reporting that tolerates a zero
// denominator.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
