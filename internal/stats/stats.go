// Package stats provides the counters and time-weighted occupancy
// integrators used to produce the paper's metrics: CPI, MLP (average
// outstanding memory requests per cycle, Fig. 1b), average structure
// occupancy (Fig. 1c), and LTP utilization (Fig. 7).
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Accumulator integrates a per-cycle quantity so its time average can be
// reported (e.g. "average IQ entries in use per cycle").
type Accumulator struct {
	sum    float64
	cycles uint64
	max    float64
}

// Add records the quantity's value for one cycle.
func (a *Accumulator) Add(v float64) {
	a.sum += v
	a.cycles++
	if v > a.max {
		a.max = v
	}
}

// Mean returns the time average.
func (a *Accumulator) Mean() float64 {
	if a.cycles == 0 {
		return 0
	}
	return a.sum / float64(a.cycles)
}

// Max returns the maximum observed value.
func (a *Accumulator) Max() float64 { return a.max }

// Reset discards all samples (warm-up/measured-region boundaries).
func (a *Accumulator) Reset() { *a = Accumulator{} }

// Cycles returns the number of samples.
func (a *Accumulator) Cycles() uint64 { return a.cycles }

// Set is a named collection of counters, kept ordered for stable output.
type Set struct {
	counters map[string]uint64
}

// NewSet returns an empty counter set.
func NewSet() *Set { return &Set{counters: make(map[string]uint64)} }

// Inc adds delta to the named counter.
func (s *Set) Inc(name string, delta uint64) { s.counters[name] += delta }

// Get returns the named counter (0 if absent).
func (s *Set) Get(name string) uint64 { return s.counters[name] }

// Names returns the counter names in sorted order.
func (s *Set) Names() []string {
	out := make([]string, 0, len(s.counters))
	for k := range s.counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the set one counter per line.
func (s *Set) String() string {
	var b strings.Builder
	for _, k := range s.Names() {
		fmt.Fprintf(&b, "%-32s %d\n", k, s.counters[k])
	}
	return b.String()
}

// Ratio is a convenience for percentage reporting that tolerates a zero
// denominator.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
