// Package stats provides the counters and time-weighted occupancy
// integrators used to produce the paper's metrics: CPI, MLP (average
// outstanding memory requests per cycle, Fig. 1b), average structure
// occupancy (Fig. 1c), and LTP utilization (Fig. 7).
package stats
