package workload

import (
	"testing"

	"ltp/internal/isa"
	"ltp/internal/prog"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) < 12 {
		t.Fatalf("registry has %d kernels, want >= 12", len(all))
	}
	sens, insens := 0, 0
	for _, s := range all {
		if s.Name == "" || s.About == "" || s.SPECAnalog == "" || s.Build == nil {
			t.Errorf("incomplete spec: %+v", s)
		}
		if s.Hint == Sensitive {
			sens++
		} else {
			insens++
		}
	}
	if sens < 5 || insens < 5 {
		t.Errorf("unbalanced suite: %d sensitive, %d insensitive", sens, insens)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("indirect"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("no-such-kernel"); err == nil {
		t.Error("unknown kernel did not error")
	}
	if len(Names()) != len(All()) {
		t.Error("Names/All mismatch")
	}
}

// Every kernel must build, run at least 50k µops without terminating
// (they are infinite loops), keep addresses 8-aligned, and be
// deterministic.
func TestAllKernelsExecute(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p := s.Build(0.02)
			em := prog.NewEmulator(p)
			var u isa.Uop
			branches, mems := 0, 0
			for i := 0; i < 50_000; i++ {
				if !em.Next(&u) {
					t.Fatalf("%s terminated after %d µops", s.Name, i)
				}
				if u.IsMem() {
					mems++
					if u.Addr%8 != 0 {
						t.Fatalf("unaligned address %#x", u.Addr)
					}
					if u.Addr < 0x2000_0000 {
						t.Fatalf("data access inside code segment: %#x", u.Addr)
					}
				}
				if u.IsBranch() {
					branches++
				}
			}
			if branches == 0 {
				t.Error("kernel has no branches (not a loop?)")
			}
			if s.Name != "compute" && s.Name != "divloop" && mems == 0 {
				t.Error("memory kernel issued no accesses")
			}
		})
	}
}

func TestKernelDeterminism(t *testing.T) {
	for _, name := range []string{"indirect", "gather", "chains"} {
		s, _ := ByName(name)
		a := prog.NewEmulator(s.Build(0.02))
		b := prog.NewEmulator(s.Build(0.02))
		var ua, ub isa.Uop
		for i := 0; i < 20_000; i++ {
			a.Next(&ua)
			b.Next(&ub)
			if ua != ub {
				t.Fatalf("%s diverges at µop %d", name, i)
			}
		}
	}
}

func TestIndirectMatchesFig2Semantics(t *testing.T) {
	s, _ := ByName("indirect")
	p := s.Build(0.02)
	em := prog.NewEmulator(p)
	var u isa.Uop
	// Execute two full iterations past the outer prologue and check that
	// C[i] = B[A[j]] + 5 semantics hold via the store µop addresses.
	var stores, loadsB int
	for i := 0; i < 2_000; i++ {
		em.Next(&u)
		switch u.Label {
		case "D":
			loadsB++
			if u.Addr < 0x2_0000_0000 || u.Addr >= 0x3_0000_0000 {
				t.Fatalf("D reads outside B: %#x", u.Addr)
			}
		case "H":
			stores++
			if u.Addr < 0x3_0000_0000 {
				t.Fatalf("H writes outside C: %#x", u.Addr)
			}
		}
	}
	if stores == 0 || loadsB == 0 {
		t.Error("tagged instructions not seen")
	}
}

func TestChainsCycleClosed(t *testing.T) {
	s, _ := ByName("chains")
	p := s.Build(0.02)
	em := prog.NewEmulator(p)
	var u isa.Uop
	seen := map[uint64]int{}
	for i := 0; i < 100_000; i++ {
		em.Next(&u)
		if u.Op == isa.Load && u.Label == "" && u.Dst == isa.R(1) {
			seen[u.Addr]++
			if seen[u.Addr] > 3 {
				// Node revisited early: the cycle would be shorter than
				// the node count (Sattolo-like permutation violated).
				t.Fatalf("chain revisits node %#x too early", u.Addr)
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("no chase loads observed")
	}
}

func TestScaleWords(t *testing.T) {
	if got := scaleWords(1<<20, 1.0, 8); got != 1<<20 {
		t.Errorf("full scale = %d", got)
	}
	if got := scaleWords(1<<20, 0.01, 1<<12); got < 1<<12 {
		t.Errorf("min floor violated: %d", got)
	}
	got := scaleWords(1000, 0.5, 8)
	if got&(got-1) != 0 {
		t.Errorf("scaleWords result %d not a power of two", got)
	}
}

func TestClassString(t *testing.T) {
	if Sensitive.String() != "mlp-sensitive" || Insensitive.String() != "mlp-insensitive" {
		t.Error("class names wrong")
	}
}
