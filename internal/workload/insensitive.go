package workload

import (
	"math"
	"math/rand"

	"ltp/internal/isa"
	"ltp/internal/prog"
)

func init() {
	register(Spec{
		Name:       "stream",
		About:      "STREAM-triad over large sequential arrays; the stride prefetcher hides the misses",
		Hint:       Insensitive,
		SPECAnalog: "prefetch-friendly streaming (bwaves/leslie3d with prefetching on, per §4.1's note)",
		Build:      buildStream,
	})
	register(Spec{
		Name:       "compute",
		About:      "eight independent FP multiply-add chains in registers; no memory traffic",
		Hint:       Insensitive,
		SPECAnalog: "compute-bound FP (gamess/namd-style inner loops)",
		Build:      buildCompute,
	})
	register(Spec{
		Name:       "divloop",
		About:      "serial integer-divide recurrence with parallel ALU filler; long-latency but non-memory",
		Hint:       Insensitive,
		SPECAnalog: "division/sqrt-bound numeric code",
		Build:      buildDivLoop,
	})
	register(Spec{
		Name:       "loopmix",
		About:      "L1-resident integer code with a data-dependent (hard-to-predict) branch",
		Hint:       Insensitive,
		SPECAnalog: "branchy integer codes (gobmk/sjeng)",
		Build:      buildLoopMix,
	})
	register(Spec{
		Name:       "cachefit",
		About:      "random gather inside an L2-resident table: latencies never exceed the L2",
		Hint:       Insensitive,
		SPECAnalog: "cache-resident pointer work (h264ref/astar lakes phases)",
		Build:      buildCacheFit,
	})
	register(Spec{
		Name:       "mixphase",
		About:      "alternates long compute-bound and memory-bound phases: exercises the DRAM-timer monitor's on/off transitions",
		Hint:       Insensitive,
		SPECAnalog: "phase-alternating applications (the 89%/11% phase split of §4.1)",
		Build:      buildMixPhase,
	})
	register(Spec{
		Name:       "ptrchase1",
		About:      "a single dependent pointer chain over 8 MB: every load misses but MLP cannot exceed 1",
		Hint:       Insensitive,
		SPECAnalog: "pure pointer chasing (the paper's 'little to gain against full DRAM latency' case)",
		Build:      buildPtrChase1,
	})
}

func buildStream(scale float64) *prog.Program {
	words := scaleWords(1<<20, scale, 1<<16) // 8 MB per stream, min 512 kB

	rI, rCnt := isa.R(1), isa.R(2)
	rBA, rBB, rBC := isa.R(3), isa.R(4), isa.R(5)
	rAddrA, rAddrB, rAddrC := isa.R(6), isa.R(7), isa.R(8)
	fB, fC, fM, fS, fK := isa.F(1), isa.F(2), isa.F(3), isa.F(4), isa.F(5)

	b := prog.NewBuilder("stream")
	b.SetReg(rBA, int64(baseA))
	b.SetReg(rBB, int64(baseB))
	b.SetReg(rBC, int64(baseC))
	b.SetReg(fK, int64(math.Float64bits(3.0)))
	b.SetReg(rCnt, forever)

	b.Label("loop").
		Add(rAddrB, rBB, rI).
		Ld(fB, rAddrB, 0).
		Add(rAddrC, rBC, rI).
		Ld(fC, rAddrC, 0).
		FMul(fM, fC, fK).
		FAdd(fS, fB, fM).
		Add(rAddrA, rBA, rI).
		St(rAddrA, 0, fS).
		Addi(rI, rI, 8).
		Andi(rI, rI, int64(words-1)<<3).
		Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}

func buildCompute(scale float64) *prog.Program {
	_ = scale // register-resident: nothing to scale

	rCnt := isa.R(1)
	b := prog.NewBuilder("compute")
	b.SetReg(rCnt, forever)
	fk1, fk2 := isa.F(30), isa.F(31)
	b.SetReg(fk1, int64(math.Float64bits(1.0000001)))
	b.SetReg(fk2, int64(math.Float64bits(0.0000001)))
	for i := 0; i < 8; i++ {
		b.SetReg(isa.F(i), int64(math.Float64bits(1.0+float64(i))))
	}

	b.Label("loop")
	for i := 0; i < 8; i++ {
		b.FMul(isa.F(i), isa.F(i), fk1)
	}
	for i := 0; i < 8; i++ {
		b.FAdd(isa.F(i), isa.F(i), fk2)
	}
	b.Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}

func buildDivLoop(scale float64) *prog.Program {
	_ = scale

	rN, rOne, rCnt := isa.R(1), isa.R(2), isa.R(3)
	rW1, rW2, rW3 := isa.R(4), isa.R(5), isa.R(6)

	b := prog.NewBuilder("divloop")
	b.SetReg(rN, 1<<40)
	b.SetReg(rOne, 1)
	b.SetReg(rCnt, forever)

	b.Label("loop").
		Div(rN, rN, rOne). // serial unpipelined divide (value unchanged)
		Addi(rW1, rW1, 1).
		Addi(rW2, rW2, 3).
		Add(rW3, rW1, rW2).
		Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}

func buildLoopMix(scale float64) *prog.Program {
	_ = scale
	const words = 256 // 2 KB: L1-resident

	rI, rAddr, rV, rPar, rAcc, rCnt := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
	rBase := isa.R(7)

	b := prog.NewBuilder("loopmix")
	b.SetReg(rBase, int64(baseA))
	b.SetReg(rCnt, forever)
	b.InitWith(func(m *prog.Memory) {
		rng := rand.New(rand.NewSource(45))
		for k := 0; k < words; k++ {
			m.Write(baseA+uint64(k)*8, rng.Int63())
		}
	})

	b.Label("loop").
		Add(rAddr, rBase, rI).
		Ld(rV, rAddr, 0).
		Andi(rPar, rV, 1).
		Br(isa.CondNE, rPar, "odd"). // data-dependent: ~50% taken
		Addi(rAcc, rAcc, 2).
		Jmp("join").
		Label("odd").
		Addi(rAcc, rAcc, 5).
		Label("join").
		Add(rAcc, rAcc, rV).
		Addi(rI, rI, 8).
		Andi(rI, rI, int64(words-1)<<3).
		Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}

func buildCacheFit(scale float64) *prog.Program {
	_ = scale
	const words = 1 << 13 // 64 KB: fits the 256 KB L2, misses the 32 KB L1

	rX, rIdx, rOff, rAddr := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	rD, rSum, rCnt, rMul := isa.R(5), isa.R(6), isa.R(7), isa.R(8)
	rBase := isa.R(9)

	b := prog.NewBuilder("cachefit")
	b.SetReg(rX, -0x7AC3B6198B701565)
	b.SetReg(rMul, lcgMul)
	b.SetReg(rBase, int64(baseA))
	b.SetReg(rCnt, forever)

	b.Label("loop").
		Mul(rX, rX, rMul).
		Addi(rX, rX, lcgAdd).
		Andi(rIdx, rX, words-1).
		Shli(rOff, rIdx, 3).
		Add(rAddr, rBase, rOff).
		Ld(rD, rAddr, 0).
		Add(rSum, rSum, rD).
		Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}

// buildMixPhase interleaves a compute phase (FP chains, thousands of
// iterations, no misses) with a memory phase (random gather with payload).
// The DRAM-timer monitor should power LTP off during the compute phase and
// back on within one DRAM latency of the first miss.
func buildMixPhase(scale float64) *prog.Program {
	words := scaleWords(1<<20, scale, 1<<18)
	const computeIters = 2000
	const memoryIters = 500

	rX, rIdx, rOff, rAddr := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	rD, rSum, rMul := isa.R(5), isa.R(6), isa.R(7)
	rBase, rPh1, rPh2 := isa.R(8), isa.R(9), isa.R(10)
	rW1, rW2, rThree := isa.R(11), isa.R(12), isa.R(13)
	f1, f2, fk1, fk2 := isa.F(1), isa.F(2), isa.F(3), isa.F(4)

	b := prog.NewBuilder("mixphase")
	b.SetReg(rX, 0x41C64E6D1052)
	b.SetReg(rMul, lcgMul)
	b.SetReg(rBase, int64(baseA))
	b.SetReg(rThree, 3)
	b.SetReg(fk1, int64(math.Float64bits(1.0000001)))
	b.SetReg(fk2, int64(math.Float64bits(0.0000001)))

	b.Label("outer").
		Movi(rPh1, computeIters)
	b.Label("compute").
		FMul(f1, f1, fk1).
		FAdd(f1, f1, fk2).
		FMul(f2, f2, fk1).
		FAdd(f2, f2, fk2).
		Addi(rPh1, rPh1, -1).
		Br(isa.CondNE, rPh1, "compute").
		Movi(rPh2, memoryIters)
	b.Label("memory").
		Mul(rX, rX, rMul).
		Addi(rX, rX, lcgAdd).
		Andi(rIdx, rX, int64(words-1)).
		Shli(rOff, rIdx, 3).
		Add(rAddr, rBase, rOff).
		Ld(rD, rAddr, 0).
		Mul(rW1, rD, rThree).
		Add(rW2, rW1, rD).
		Add(rSum, rSum, rW2).
		Addi(rPh2, rPh2, -1).
		Br(isa.CondNE, rPh2, "memory").
		Jmp("outer")
	return b.Build()
}

func buildPtrChase1(scale float64) *prog.Program {
	nodes := scaleWords(1<<20, scale, 1<<18) // 8 MB of pointers, min 2 MB

	rP, rCnt := isa.R(1), isa.R(2)

	b := prog.NewBuilder("ptrchase1")
	b.SetReg(rP, int64(baseA))
	b.SetReg(rCnt, forever)
	b.InitWith(func(m *prog.Memory) {
		rng := rand.New(rand.NewSource(46))
		perm := rng.Perm(nodes)
		for i := 0; i < nodes; i++ {
			from := baseA + uint64(perm[i])*8
			to := baseA + uint64(perm[(i+1)%nodes])*8
			m.Write(from, int64(to))
		}
	})

	b.Label("loop").
		Ld(rP, rP, 0).
		Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}
