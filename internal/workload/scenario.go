package workload

// Scenario families generalize the fixed kernel registry into a
// parameterized, seed-replicated workload population: each family is a
// program *generator* with knobs (footprint, stride, parallelism,
// payload depth, branch entropy, phase length) and a seed that varies
// data layouts, hash constants and branch-feeding data. The scenario
// matrix campaign (ltp.RunMatrix) crosses families × configurations ×
// seeds and reports mean ± CI instead of single-sample points.
//
// Families live in their own registry, separate from All(): the fixed
// kernels remain the paper-figure population (their MLP classification
// and goldens depend on the exact 14-kernel set), while families are
// the scaling population every campaign PR grows.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ltp/internal/isa"
	"ltp/internal/prog"
)

// Knobs parameterizes a scenario family. The zero value of any field
// means "use the family default"; fields are interpreted per family
// (see each family's About).
type Knobs struct {
	// FootprintWords is the full-scale working set in 8-byte words
	// (scaled by the run's Scale, rounded to a power of two).
	FootprintWords int
	// Stride is the distance in words between consecutive streamed
	// touches (1 = sequential).
	Stride int
	// Chains is the number of independent dependence chains (the MLP
	// ceiling for chase-style families; the consumer lag for prodcons).
	Chains int
	// PayloadOps is the number of dependent ALU operations executed on
	// each loaded element before it retires.
	PayloadOps int
	// BranchEntropy in (0, 0.5] sets how unpredictable the data-
	// dependent branches are: 0.5 = coin flip. Zero falls back to the
	// family default; pass a negative value for fully predictable
	// branches (entropy 0).
	BranchEntropy float64
	// PhaseLen is the iteration count of one phase for phased families.
	PhaseLen int
}

// merged fills zero fields of k from the family defaults.
func (k Knobs) merged(def Knobs) Knobs {
	if k.FootprintWords == 0 {
		k.FootprintWords = def.FootprintWords
	}
	if k.Stride == 0 {
		k.Stride = def.Stride
	}
	if k.Chains == 0 {
		k.Chains = def.Chains
	}
	if k.PayloadOps == 0 {
		k.PayloadOps = def.PayloadOps
	}
	if k.BranchEntropy == 0 {
		k.BranchEntropy = def.BranchEntropy
	} else if k.BranchEntropy < 0 {
		k.BranchEntropy = 0
	}
	if k.PhaseLen == 0 {
		k.PhaseLen = def.PhaseLen
	}
	return k
}

// Family is one parameterized scenario generator.
type Family struct {
	// Name identifies the family (unique across the family registry).
	Name string
	// About describes the scenario shape and how the knobs apply.
	About string
	// Hint is the intended MLP class of the default parameterization.
	Hint Class
	// Defaults holds the knob values used when the caller leaves a
	// field zero.
	Defaults Knobs
	// Generate builds the program for fully-resolved knobs. seed
	// varies data layouts and constants; equal (knobs, scale, seed)
	// always generates an identical program.
	Generate func(k Knobs, scale float64, seed int64) *prog.Program
}

// Build resolves knobs (nil = all defaults) and generates the program.
func (f Family) Build(k *Knobs, scale float64, seed int64) *prog.Program {
	return f.Generate(f.Resolve(k), scale, seed)
}

// Resolve returns the fully resolved knobs Build would generate with:
// nil or zero fields replaced by the family defaults, negative
// BranchEntropy clamped to 0. Two knob values with equal Resolve
// results generate identical programs, which is what the campaign
// service's canonical request hashing (ltp.RunSpec.Canonical) relies
// on.
func (f Family) Resolve(k *Knobs) Knobs {
	knobs := Knobs{}
	if k != nil {
		knobs = *k
	}
	return knobs.merged(f.Defaults)
}

var familyRegistry []Family

func registerFamily(f Family) { familyRegistry = append(familyRegistry, f) }

// Families returns every scenario family, sorted by name.
func Families() []Family {
	out := make([]Family, len(familyRegistry))
	copy(out, familyRegistry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FamilyByName returns the named scenario family.
func FamilyByName(name string) (Family, error) {
	for _, f := range familyRegistry {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("workload: unknown scenario family %q", name)
}

// FamilyNames returns all family names sorted.
func FamilyNames() []string {
	fams := Families()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.Name
	}
	return out
}

// seedRNG derives a per-(family, purpose) random stream from the run
// seed. splitmix-style mixing keeps adjacent seeds uncorrelated.
func seedRNG(seed, salt int64) *rand.Rand {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(salt)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// seedConst derives a nonzero odd per-seed constant (LCG/hash starts).
func seedConst(seed, salt int64) int64 {
	r := seedRNG(seed, salt)
	return r.Int63() | 1
}

// payloadChain emits n dependent ALU operations consuming src, then
// folds the chain tail into acc. scratchA/scratchB alternate as the
// chain register; mulK must hold a small multiplier constant.
func payloadChain(b *prog.Builder, src, scratchA, scratchB, acc, mulK isa.Reg, n int) {
	cur := src
	for j := 0; j < n; j++ {
		dst := scratchA
		if cur == scratchA {
			dst = scratchB
		}
		switch j % 3 {
		case 0:
			b.Mul(dst, cur, mulK)
		case 1:
			b.Add(dst, cur, src)
		case 2:
			b.Andi(dst, cur, 0xFFFF)
		}
		cur = dst
	}
	b.Add(acc, acc, cur)
}

func init() {
	registerFamily(Family{
		Name: "ptrchase",
		About: "Chains independent pointer chains over seeded random cycles; " +
			"Chains bounds MLP, FootprintWords sizes each chain, PayloadOps adds dependent work per node",
		Hint:     Sensitive,
		Defaults: Knobs{FootprintWords: 1 << 17, Chains: 8, PayloadOps: 3},
		Generate: genPtrChase,
	})
	registerFamily(Family{
		Name: "gemmblock",
		About: "blocked GEMM-like FMA over a streamed A row and a strided B column walk; " +
			"FootprintWords sizes each matrix, Stride is the B walk distance in words",
		Hint:     Insensitive,
		Defaults: Knobs{FootprintWords: 1 << 18, Stride: 64},
		Generate: genGEMMBlock,
	})
	registerFamily(Family{
		Name: "hashjoin",
		About: "hash-probe join: seeded multiplicative hash, table gather, data-dependent match branch; " +
			"FootprintWords sizes the table, BranchEntropy sets match-branch predictability, PayloadOps per probe",
		Hint:     Sensitive,
		Defaults: Knobs{FootprintWords: 1 << 18, PayloadOps: 2, BranchEntropy: 0.25},
		Generate: genHashJoin,
	})
	registerFamily(Family{
		Name: "prodcons",
		About: "producer-consumer ring: streaming stores ahead, dependent loads Chains elements behind " +
			"(store→load forwarding + SQ pressure); FootprintWords sizes the ring, Stride the advance",
		Hint:     Sensitive,
		Defaults: Knobs{FootprintWords: 1 << 19, Stride: 1, Chains: 64, PayloadOps: 2},
		Generate: genProdCons,
	})
	registerFamily(Family{
		Name: "branchy",
		About: "table-driven state machine over a seeded L1-resident input stream with two data-dependent " +
			"branches per step; BranchEntropy sets input randomness, FootprintWords the input stream length",
		Hint:     Insensitive,
		Defaults: Knobs{FootprintWords: 1 << 12, BranchEntropy: 0.25},
		Generate: genBranchy,
	})
	registerFamily(Family{
		Name: "memhog",
		About: "bandwidth hog: line-stride streaming loads plus interleaved dirty stores over a " +
			"footprint far beyond the LLC; Stride is the walk distance in words, PayloadOps per line. " +
			"Designed as a co-runner that saturates shared MSHRs and DRAM banks",
		Hint:     Sensitive,
		Defaults: Knobs{FootprintWords: 1 << 21, Stride: 8, PayloadOps: 1},
		Generate: genMemHog,
	})
	registerFamily(Family{
		Name: "phased",
		About: "alternating ILP and MLP phases: PhaseLen FP-chain iterations, then PhaseLen/4 seeded random " +
			"gathers over FootprintWords with PayloadOps dependent work (exercises the DRAM-timer monitor)",
		Hint:     Sensitive,
		Defaults: Knobs{FootprintWords: 1 << 20, PhaseLen: 1600, PayloadOps: 2},
		Generate: genPhased,
	})
}

// genPtrChase generalizes the fixed "chains" kernel: a knob-controlled
// number of chains, each a seeded random cycle.
func genPtrChase(k Knobs, scale float64, seed int64) *prog.Program {
	chains := k.Chains
	if chains < 1 {
		chains = 1
	}
	if chains > 12 {
		chains = 12
	}
	nodes := scaleWords(k.FootprintWords, scale, 1<<12)
	const nodeBytes = 16

	chainBase := func(c int) uint64 { return baseD + uint64(c)*0x1000_0000 }
	rV, rWa, rWb, rAcc := isa.R(20), isa.R(21), isa.R(22), isa.R(23)
	rThree, rCnt := isa.R(24), isa.R(25)

	b := prog.NewBuilder(fmt.Sprintf("ptrchase/c%d", chains))
	for c := 0; c < chains; c++ {
		b.SetReg(isa.R(1+c), int64(chainBase(c)))
	}
	b.SetReg(rThree, 3)
	b.SetReg(rCnt, forever)
	b.InitWith(func(m *prog.Memory) {
		for c := 0; c < chains; c++ {
			rng := seedRNG(seed, int64(c)+1)
			base := chainBase(c)
			perm := rng.Perm(nodes)
			for i := 0; i < nodes; i++ {
				from := base + uint64(perm[i])*nodeBytes
				to := base + uint64(perm[(i+1)%nodes])*nodeBytes
				m.Write(from, int64(to))
				m.Write(from+8, int64(rng.Intn(1000)))
			}
		}
	})
	b.Label("loop")
	for c := 0; c < chains; c++ {
		rP := isa.R(1 + c)
		b.Ld(rP, rP, 0) // chase load: enables the next miss
		b.Ld(rV, rP, 8) // payload word (same line)
		payloadChain(b, rV, rWa, rWb, rAcc, rThree, k.PayloadOps)
	}
	b.Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}

// genGEMMBlock is the compute-dense family: two FMA accumulator chains
// over a streamed A row and a strided B column walk. The seed phases
// the walks differently so replicated runs sample different cache-set
// alignments.
func genGEMMBlock(k Knobs, scale float64, seed int64) *prog.Program {
	words := scaleWords(k.FootprintWords, scale, 1<<14)
	stride := k.Stride
	if stride < 1 {
		stride = 1
	}
	mask := int64(words-1) << 3

	rKA, rKB, rAddr := isa.R(1), isa.R(2), isa.R(3)
	rBaseA, rBaseB, rCnt := isa.R(4), isa.R(5), isa.R(6)
	fA0, fB0, fP0, fAcc0 := isa.F(1), isa.F(2), isa.F(3), isa.F(4)
	fA1, fB1, fP1, fAcc1 := isa.F(5), isa.F(6), isa.F(7), isa.F(8)

	b := prog.NewBuilder(fmt.Sprintf("gemmblock/s%d", stride))
	rng := seedRNG(seed, 11)
	b.SetReg(rBaseA, int64(baseA))
	b.SetReg(rBaseB, int64(baseB))
	b.SetReg(rKA, (int64(rng.Intn(words)) << 3 &^ 63))
	b.SetReg(rKB, (int64(rng.Intn(words)) << 3 &^ 63))
	b.SetReg(rCnt, forever)
	b.SetReg(fAcc0, int64(math.Float64bits(0)))
	b.SetReg(fAcc1, int64(math.Float64bits(1)))
	b.InitWith(func(m *prog.Memory) {
		vr := seedRNG(seed, 12)
		// Populate one block's worth of each matrix; the rest reads as
		// zero, which is fine for FMA timing.
		for i := 0; i < 1<<12 && i < words; i++ {
			m.Write(baseA+uint64(i)*8, int64(math.Float64bits(vr.Float64())))
			m.Write(baseB+uint64(i)*8, int64(math.Float64bits(vr.Float64())))
		}
	})

	b.Label("loop").
		// A row: two sequential elements.
		Add(rAddr, rBaseA, rKA).
		Ld(fA0, rAddr, 0).
		Ld(fA1, rAddr, 8).
		Addi(rKA, rKA, 16).
		Andi(rKA, rKA, mask).
		// B column: two strided elements.
		Add(rAddr, rBaseB, rKB).
		Ld(fB0, rAddr, 0).
		Ld(fB1, rAddr, int64(stride)<<3).
		Addi(rKB, rKB, int64(2*stride)<<3).
		Andi(rKB, rKB, mask).
		// Two independent FMA chains.
		FMul(fP0, fA0, fB0).
		FAdd(fAcc0, fAcc0, fP0).
		FMul(fP1, fA1, fB1).
		FAdd(fAcc1, fAcc1, fP1).
		Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}

// genHashJoin probes a seeded table with a seeded multiplicative hash;
// the match branch is data-dependent with knob-controlled entropy.
func genHashJoin(k Knobs, scale float64, seed int64) *prog.Program {
	words := scaleWords(k.FootprintWords, scale, 1<<13)

	rX, rH, rIdx, rOff, rAddr := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	rV, rPar, rCnt, rHits := isa.R(6), isa.R(7), isa.R(8), isa.R(9)
	rBase, rPhi, rWa, rWb, rAcc := isa.R(10), isa.R(11), isa.R(12), isa.R(13), isa.R(14)
	rThree := isa.R(15)

	b := prog.NewBuilder("hashjoin")
	b.SetReg(rX, seedConst(seed, 21))
	b.SetReg(rPhi, seedConst(seed, 22))
	b.SetReg(rBase, int64(baseA))
	b.SetReg(rThree, 3)
	b.SetReg(rCnt, forever)
	b.InitWith(func(m *prog.Memory) {
		rng := seedRNG(seed, 23)
		for i := 0; i < words; i++ {
			w := rng.Int63()
			if rng.Float64() >= 2*k.BranchEntropy {
				w &^= 1 // predictable parity: the match branch falls through
			}
			m.Write(baseA+uint64(i)*8, w)
		}
	})

	b.Label("loop").
		Addi(rX, rX, lcgAdd).
		Mul(rH, rX, rPhi).
		Andi(rIdx, rH, int64(words-1)).
		Shli(rOff, rIdx, 3).
		Add(rAddr, rBase, rOff).
		Ld(rV, rAddr, 0). // the probe miss
		Andi(rPar, rV, 1).
		Br(isa.CondNE, rPar, "match") // data-dependent, entropy-controlled
	payloadChain(b, rV, rWa, rWb, rAcc, rThree, k.PayloadOps)
	b.Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop").
		Label("match").
		Addi(rHits, rHits, 1).
		Add(rAcc, rAcc, rV).
		Jmp("loop")
	return b.Build()
}

// genProdCons streams stores around a large ring while dependent loads
// trail a fixed lag behind, mixing store-miss pressure with forwarding-
// distance loads — the paper's NU+NR store class en masse.
func genProdCons(k Knobs, scale float64, seed int64) *prog.Program {
	words := scaleWords(k.FootprintWords, scale, 1<<14)
	stride := k.Stride
	if stride < 1 {
		stride = 1
	}
	lag := k.Chains
	if lag < 1 {
		lag = 1
	}
	if lag >= words/2 {
		lag = words / 2
	}
	mask := int64(words-1) << 3

	rHead, rTail, rAddr, rVal := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	rBase, rCnt, rX, rMul := isa.R(5), isa.R(6), isa.R(7), isa.R(8)
	rD, rWa, rWb, rAcc, rThree := isa.R(9), isa.R(10), isa.R(11), isa.R(12), isa.R(13)

	// The ring start is seed-phased so replicated runs sample different
	// cache-set alignments (and therefore measurably different timing).
	start := seedRNG(seed, 31).Intn(words) &^ 7

	b := prog.NewBuilder(fmt.Sprintf("prodcons/l%d", lag))
	b.SetReg(rBase, int64(baseA))
	b.SetReg(rHead, (int64(start)+int64(lag))<<3&mask) // a full lag ahead of tail
	b.SetReg(rTail, int64(start)<<3)
	b.SetReg(rX, seedConst(seed, 33))
	b.SetReg(rMul, lcgMul)
	b.SetReg(rThree, 3)
	b.SetReg(rCnt, forever)
	b.InitWith(func(m *prog.Memory) {
		rng := seedRNG(seed, 32)
		for i := 0; i < lag; i++ {
			m.Write(baseA+uint64((start+i)%words)*8, rng.Int63())
		}
	})

	b.Label("loop").
		// Producer: compute a value, store it at head.
		Mul(rX, rX, rMul).
		Addi(rX, rX, lcgAdd).
		Andi(rVal, rX, 0xFFFFF).
		Add(rAddr, rBase, rHead).
		St(rAddr, 0, rVal).
		Addi(rHead, rHead, int64(stride)<<3).
		Andi(rHead, rHead, mask).
		// Consumer: load the element lag slots behind, do payload work.
		Add(rAddr, rBase, rTail).
		Ld(rD, rAddr, 0).
		Addi(rTail, rTail, int64(stride)<<3).
		Andi(rTail, rTail, mask)
	payloadChain(b, rD, rWa, rWb, rAcc, rThree, k.PayloadOps)
	b.Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}

// genBranchy walks a seeded input stream through a small state machine
// with two data-dependent branches per step; the working set is L1-
// resident, so branch behaviour — not memory — bounds performance.
func genBranchy(k Knobs, scale float64, seed int64) *prog.Program {
	words := scaleWords(k.FootprintWords, scale, 1<<8)

	rI, rAddr, rV, rPar, rSign := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	rState, rAcc, rCnt, rBase := isa.R(6), isa.R(7), isa.R(8), isa.R(9)

	b := prog.NewBuilder("branchy")
	b.SetReg(rBase, int64(baseA))
	b.SetReg(rState, seedConst(seed, 41)&0xFF)
	b.SetReg(rCnt, forever)
	b.InitWith(func(m *prog.Memory) {
		rng := seedRNG(seed, 42)
		for i := 0; i < words; i++ {
			w := int64(rng.Uint64()) // sign bit random: sign branch ~50% taken
			if rng.Float64() >= 2*k.BranchEntropy {
				w &^= 1        // parity branch falls through
				w &= 1<<63 - 1 // sign branch not taken
			}
			m.Write(baseA+uint64(i)*8, w)
		}
	})

	b.Label("loop").
		Add(rAddr, rBase, rI).
		Ld(rV, rAddr, 0).
		Andi(rPar, rV, 1).
		Br(isa.CondNE, rPar, "odd"). // data-dependent branch 1
		Addi(rState, rState, 2).
		Jmp("j1").
		Label("odd").
		Mul(rState, rState, rV).
		Label("j1").
		Addi(rSign, rV, 0).
		Br(isa.CondLT, rSign, "neg"). // data-dependent branch 2
		Add(rAcc, rAcc, rState).
		Jmp("j2").
		Label("neg").
		Sub(rAcc, rAcc, rState).
		Label("j2").
		Andi(rState, rState, 0xFF).
		Addi(rI, rI, 8).
		Andi(rI, rI, int64(words-1)<<3).
		Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}

// genPhased alternates an ILP phase (two FP chains, no memory) with an
// MLP phase (seeded random gathers plus payload), the on/off shape the
// DRAM-timer monitor must track.
func genPhased(k Knobs, scale float64, seed int64) *prog.Program {
	words := scaleWords(k.FootprintWords, scale, 1<<14)
	phase := k.PhaseLen
	if phase < 8 {
		phase = 8
	}
	memIters := phase / 4
	if memIters < 2 {
		memIters = 2
	}

	rX, rIdx, rOff, rAddr := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	rD, rMul, rBase := isa.R(5), isa.R(6), isa.R(7)
	rPh1, rPh2, rWa, rWb, rAcc, rThree := isa.R(8), isa.R(9), isa.R(10), isa.R(11), isa.R(12), isa.R(13)
	f1, f2, fk1, fk2 := isa.F(1), isa.F(2), isa.F(3), isa.F(4)

	b := prog.NewBuilder(fmt.Sprintf("phased/p%d", phase))
	b.SetReg(rX, seedConst(seed, 51))
	b.SetReg(rMul, lcgMul)
	b.SetReg(rBase, int64(baseA))
	b.SetReg(rThree, 3)
	b.SetReg(fk1, int64(math.Float64bits(1.0000001)))
	b.SetReg(fk2, int64(math.Float64bits(0.0000001)))

	b.Label("outer").
		Movi(rPh1, int64(phase))
	b.Label("compute").
		FMul(f1, f1, fk1).
		FAdd(f1, f1, fk2).
		FMul(f2, f2, fk1).
		FAdd(f2, f2, fk2).
		Addi(rPh1, rPh1, -1).
		Br(isa.CondNE, rPh1, "compute").
		Movi(rPh2, int64(memIters))
	b.Label("memory").
		Mul(rX, rX, rMul).
		Addi(rX, rX, lcgAdd).
		Andi(rIdx, rX, int64(words-1)).
		Shli(rOff, rIdx, 3).
		Add(rAddr, rBase, rOff).
		Ld(rD, rAddr, 0)
	payloadChain(b, rD, rWa, rWb, rAcc, rThree, k.PayloadOps)
	b.Addi(rPh2, rPh2, -1).
		Br(isa.CondNE, rPh2, "memory").
		Jmp("outer")
	return b.Build()
}

// genMemHog streams loads (and every fourth iteration a dirty store)
// at line stride through a footprint far larger than the LLC, so its
// steady state is a DRAM-bandwidth stream: the shared-hierarchy
// co-runner that evicts the primary core's LLC lines and occupies
// MSHRs and DRAM banks.
func genMemHog(k Knobs, scale float64, seed int64) *prog.Program {
	words := scaleWords(k.FootprintWords, scale, 1<<16)
	stride := k.Stride
	if stride < 1 {
		stride = 1
	}
	mask := int64(words-1) << 3

	rIdx, rAddr, rV, rPh := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	rBase, rCnt, rWa, rWb, rAcc, rThree := isa.R(5), isa.R(6), isa.R(7), isa.R(8), isa.R(9), isa.R(10)

	start := seedRNG(seed, 61).Intn(words) &^ 7

	b := prog.NewBuilder(fmt.Sprintf("memhog/s%d", stride))
	b.SetReg(rBase, int64(baseA))
	b.SetReg(rIdx, int64(start)<<3&mask)
	b.SetReg(rThree, 3)
	b.SetReg(rCnt, forever)
	b.Label("loop").
		Add(rAddr, rBase, rIdx).
		Ld(rV, rAddr, 0)
	payloadChain(b, rV, rWa, rWb, rAcc, rThree, k.PayloadOps)
	b.Andi(rPh, rCnt, 3).
		Br(isa.CondNE, rPh, "skipst").
		St(rAddr, 0, rAcc).
		Label("skipst").
		Addi(rIdx, rIdx, int64(stride)<<3).
		Andi(rIdx, rIdx, mask).
		Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}
