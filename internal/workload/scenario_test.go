package workload

import (
	"testing"

	"ltp/internal/isa"
	"ltp/internal/prog"
)

// TestFamilyRegistry pins the family population the matrix campaign
// crosses: at least the six shipped families, unique sorted names, and
// a working lookup.
func TestFamilyRegistry(t *testing.T) {
	fams := Families()
	if len(fams) < 6 {
		t.Fatalf("got %d families, want >= 6", len(fams))
	}
	seen := map[string]bool{}
	for i, f := range fams {
		if seen[f.Name] {
			t.Errorf("duplicate family %q", f.Name)
		}
		seen[f.Name] = true
		if i > 0 && fams[i-1].Name > f.Name {
			t.Errorf("families not sorted at %q", f.Name)
		}
		if f.About == "" || f.Generate == nil {
			t.Errorf("family %q incomplete", f.Name)
		}
		got, err := FamilyByName(f.Name)
		if err != nil || got.Name != f.Name {
			t.Errorf("FamilyByName(%q) = %v, %v", f.Name, got.Name, err)
		}
	}
	for _, want := range []string{"ptrchase", "gemmblock", "hashjoin", "prodcons", "branchy", "phased"} {
		if !seen[want] {
			t.Errorf("family %q missing", want)
		}
	}
	if _, err := FamilyByName("no-such-family"); err == nil {
		t.Error("FamilyByName accepted an unknown name")
	}
}

// emulate runs n instructions functionally, returning a fingerprint of
// the dynamic stream (PCs, addresses, branch outcomes).
func emulate(p *prog.Program, n int) uint64 {
	em := prog.NewEmulator(p)
	var u isa.Uop
	var h uint64 = 1469598103934665603
	mix := func(v uint64) {
		h = (h ^ v) * 1099511628211
	}
	for i := 0; i < n; i++ {
		if !em.Next(&u) {
			break
		}
		mix(u.PC)
		mix(u.Addr)
		if u.Taken {
			mix(1)
		}
	}
	return h
}

// TestFamilyGenerationDeterministic asserts equal (knobs, scale, seed)
// generate byte-identical dynamic behaviour, while different seeds
// diverge — the property the seed-replicated matrix rests on.
func TestFamilyGenerationDeterministic(t *testing.T) {
	const n = 20_000
	for _, f := range Families() {
		a := emulate(f.Build(nil, 0.02, 5), n)
		b := emulate(f.Build(nil, 0.02, 5), n)
		if a != b {
			t.Errorf("%s: same seed produced different streams", f.Name)
		}
		c := emulate(f.Build(nil, 0.02, 6), n)
		if a == c {
			t.Errorf("%s: seeds 5 and 6 produced identical streams", f.Name)
		}
	}
}

// TestFamilyKnobOverride asserts a knob change actually reaches the
// generated program (footprint shows up as a different address mix).
func TestFamilyKnobOverride(t *testing.T) {
	f, err := FamilyByName("hashjoin")
	if err != nil {
		t.Fatal(err)
	}
	small := emulate(f.Build(&Knobs{FootprintWords: 1 << 13}, 1.0, 5), 20_000)
	big := emulate(f.Build(&Knobs{FootprintWords: 1 << 16}, 1.0, 5), 20_000)
	if small == big {
		t.Error("FootprintWords knob had no effect on the dynamic stream")
	}

	// Negative entropy means "fully predictable" (0), distinct from the
	// zero value's fall-back to the family default (0.25 for hashjoin).
	predictable := emulate(f.Build(&Knobs{BranchEntropy: -1}, 1.0, 5), 20_000)
	def := emulate(f.Build(nil, 1.0, 5), 20_000)
	if predictable == def {
		t.Error("BranchEntropy < 0 did not differ from the family default")
	}

	pc, err := FamilyByName("ptrchase")
	if err != nil {
		t.Fatal(err)
	}
	p1 := pc.Build(&Knobs{Chains: 1}, 0.02, 5)
	p12 := pc.Build(&Knobs{Chains: 12}, 0.02, 5)
	if len(p1.Insts) >= len(p12.Insts) {
		t.Errorf("Chains knob had no effect: %d vs %d insts", len(p1.Insts), len(p12.Insts))
	}
}

// TestFamilyProgramsRun sanity-checks every family emulates forever
// (no early termination) at tiny scale and default knobs.
func TestFamilyProgramsRun(t *testing.T) {
	for _, f := range Families() {
		for _, seed := range []int64{0, 1, 99} {
			p := f.Build(nil, 0.01, seed)
			em := prog.NewEmulator(p)
			var u isa.Uop
			for i := 0; i < 50_000; i++ {
				if !em.Next(&u) {
					t.Fatalf("%s seed %d: program ended after %d µops", f.Name, seed, i)
				}
			}
		}
	}
}
