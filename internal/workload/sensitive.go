package workload

import (
	"math/rand"

	"ltp/internal/isa"
	"ltp/internal/prog"
)

// Data segment bases, disjoint from the code segment and each other.
const (
	baseA uint64 = 0x1_0000_0000
	baseB uint64 = 0x2_0000_0000
	baseC uint64 = 0x3_0000_0000
	baseD uint64 = 0x4_0000_0000
)

// forever is a loop count that outlives any simulation budget.
const forever = int64(1) << 40

// lcg constants for in-register pseudo-random index generation.
const (
	lcgMul = 6364136223846793005
	lcgAdd = 1442695040888963407
)

func init() {
	register(Spec{
		Name:       "indirect",
		About:      "the paper's Fig. 2 loop: d = B[A[j]]; C[i] = d + 5; A/C stream (prefetch-friendly), B random (misses)",
		Hint:       Sensitive,
		SPECAnalog: "indirect-access loops (libquantum/soplex-style gather through an index array)",
		Build:      buildIndirect,
	})
	register(Spec{
		Name:       "indirectwork",
		About:      "the Fig. 2 loop with a realistic dependent payload: several ALU ops on each gathered value before the store",
		Hint:       Sensitive,
		SPECAnalog: "astar/soplex indirect loops with per-element computation",
		Build:      buildIndirectWork,
	})
	register(Spec{
		Name:       "gather",
		About:      "GUPS-style random gather; the index chain is a short ALU recurrence so misses overlap with a large window",
		Hint:       Sensitive,
		SPECAnalog: "mcf/omnetpp-style scattered heap accesses",
		Build:      buildGather,
	})
	register(Spec{
		Name:       "spmv",
		About:      "CSR sparse matrix-vector: streamed col/val arrays plus a random x[col] gather feeding a serial FP accumulation",
		Hint:       Sensitive,
		SPECAnalog: "sparse solvers (soplex), FP gather kernels",
		Build:      buildSpMV,
	})
	register(Spec{
		Name:       "hashprobe",
		About:      "hash-table probing: hash computed in registers (urgent ancestors), probe misses, compare-and-branch",
		Hint:       Sensitive,
		SPECAnalog: "gcc/perlbench hash-heavy phases",
		Build:      buildHashProbe,
	})
	register(Spec{
		Name:       "fpstream",
		About:      "milc-like: two random-indexed FP loads, multiply-add, and a random store per iteration (many NU+NR stores)",
		Hint:       Sensitive,
		SPECAnalog: "milc (streaming FP with stores missing the LLC)",
		Build:      buildFPStream,
	})
	register(Spec{
		Name:       "chains",
		About:      "astar-like: ten interleaved pointer chains with per-node payload work (U+NR chase loads)",
		Hint:       Sensitive,
		SPECAnalog: "astar/mcf pointer chasing with enough independent chains for MLP",
		Build:      buildChains,
	})
}

// buildIndirect is the paper's Fig. 2 loop, instruction for instruction:
//
//	loop: A  addrA = baseA + j      (U+R)
//	      B  t1 = load addrA        (U+R, hit: sequential)
//	      C  addrB = baseB + t1     (U+R)
//	      D  d = load addrB         (U+R in paper terms; the miss)
//	      E  j = j - 8              (U+R)
//	      F  d = d + 5              (NU+NR)
//	      G  addrC = baseC + i      (NU+R)
//	      H  store d -> addrC       (NU+NR, hit)
//	      I  i = i + 8              (NU+R)
//	      J  t2 = j                 (NU+R)
//	      K  bge t2, loop           (NU+R)
//
// A[k] holds byte offsets into B so instruction C is a single add.
func buildIndirect(scale float64) *prog.Program {
	wordsA := scaleWords(1<<20, scale, 1<<12) // 8 MB of indices at full scale
	wordsB := scaleWords(1<<21, scale, 1<<13) // 16 MB target table

	rJ, rI := isa.R(1), isa.R(2)
	rBaseA, rBaseB, rBaseC := isa.R(3), isa.R(4), isa.R(5)
	rT1, rAddrA, rAddrB, rAddrC := isa.R(6), isa.R(7), isa.R(8), isa.R(9)
	rD, rD2, rT2 := isa.R(10), isa.R(11), isa.R(12)

	b := prog.NewBuilder("indirect")
	b.SetReg(rBaseA, int64(baseA))
	b.SetReg(rBaseB, int64(baseB))
	b.SetReg(rBaseC, int64(baseC))
	b.InitWith(func(m *prog.Memory) {
		rng := rand.New(rand.NewSource(42))
		for k := 0; k < wordsA; k++ {
			off := int64(rng.Intn(wordsB)) << 3
			m.Write(baseA+uint64(k)*8, off)
		}
	})

	b.Label("outer").
		Movi(rJ, int64(wordsA-1)<<3).
		Movi(rI, 0)
	b.Label("loop").
		Add(rAddrA, rBaseA, rJ).Tag("A").
		Ld(rT1, rAddrA, 0).Tag("B").
		Add(rAddrB, rBaseB, rT1).Tag("C").
		Ld(rD, rAddrB, 0).Tag("D").
		Addi(rJ, rJ, -8).Tag("E").
		Addi(rD2, rD, 5).Tag("F").
		Add(rAddrC, rBaseC, rI).Tag("G").
		St(rAddrC, 0, rD2).Tag("H").
		Addi(rI, rI, 8).Tag("I").
		Addi(rT2, rJ, 0).Tag("J").
		Br(isa.CondGE, rT2, "loop").Tag("K").
		Jmp("outer")
	return b.Build()
}

// buildIndirectWork is the Fig. 2 loop with a longer dependent payload on
// the gathered value — the shape of real indirect loops, where the loaded
// value feeds several instructions that would otherwise camp in the IQ.
func buildIndirectWork(scale float64) *prog.Program {
	wordsA := scaleWords(1<<20, scale, 1<<17)
	wordsB := scaleWords(1<<21, scale, 1<<18)

	rJ, rI := isa.R(1), isa.R(2)
	rBaseA, rBaseB, rBaseC := isa.R(3), isa.R(4), isa.R(5)
	rT1, rAddrA, rAddrB, rAddrC := isa.R(6), isa.R(7), isa.R(8), isa.R(9)
	rD, rT2 := isa.R(10), isa.R(12)
	rW1, rW2, rW3, rW4, rThree := isa.R(13), isa.R(14), isa.R(15), isa.R(16), isa.R(17)

	b := prog.NewBuilder("indirectwork")
	b.SetReg(rBaseA, int64(baseA))
	b.SetReg(rBaseB, int64(baseB))
	b.SetReg(rBaseC, int64(baseC))
	b.SetReg(rThree, 3)
	b.InitWith(func(m *prog.Memory) {
		rng := rand.New(rand.NewSource(47))
		for k := 0; k < wordsA; k++ {
			m.Write(baseA+uint64(k)*8, int64(rng.Intn(wordsB))<<3)
		}
	})

	b.Label("outer").
		Movi(rJ, int64(wordsA-1)<<3).
		Movi(rI, 0)
	b.Label("loop").
		Add(rAddrA, rBaseA, rJ).
		Ld(rT1, rAddrA, 0).
		Add(rAddrB, rBaseB, rT1).
		Ld(rD, rAddrB, 0). // the miss
		Addi(rJ, rJ, -8).
		Mul(rW1, rD, rThree). // dependent payload (NU+NR)
		Add(rW2, rW1, rD).
		Andi(rW3, rW2, 0xFFFF8).
		Addi(rW4, rW3, 5).
		Add(rAddrC, rBaseC, rI).
		St(rAddrC, 0, rW4).
		Addi(rI, rI, 8).
		Addi(rT2, rJ, 0).
		Br(isa.CondGE, rT2, "loop").
		Jmp("outer")
	return b.Build()
}

func buildGather(scale float64) *prog.Program {
	words := scaleWords(1<<21, scale, 1<<18) // 16 MB table, min 2 MB (misses L3)

	rX, rIdx, rOff, rAddr := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	rD, rSum, rCnt, rMul := isa.R(5), isa.R(6), isa.R(7), isa.R(8)
	rBase := isa.R(9)
	rW1, rW2, rW3, rThree := isa.R(10), isa.R(11), isa.R(12), isa.R(13)

	b := prog.NewBuilder("gather")
	b.SetReg(rX, 0x2545F4914F6CDD1D)
	b.SetReg(rMul, lcgMul)
	b.SetReg(rBase, int64(baseA))
	b.SetReg(rThree, 3)
	b.SetReg(rCnt, forever)

	b.Label("loop").
		Mul(rX, rX, rMul).
		Addi(rX, rX, lcgAdd).
		Andi(rIdx, rX, int64(words-1)).
		Shli(rOff, rIdx, 3).
		Add(rAddr, rBase, rOff).
		Ld(rD, rAddr, 0).
		// Dependent payload work on the loaded value (typical of the
		// SPEC loops this kernel stands in for): these instructions wait
		// in the IQ until the miss returns — the pressure LTP removes.
		Mul(rW1, rD, rThree).
		Add(rW2, rW1, rD).
		Andi(rW3, rW2, 0xFFFF).
		Add(rSum, rSum, rW3).
		Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}

// buildSpMV is the CSR sparse matrix-vector kernel: streamed column and
// value arrays plus a random x[col] gather; addresses are computed from
// the stream offset each iteration.
func buildSpMV(scale float64) *prog.Program {
	wordsX := scaleWords(1<<21, scale, 1<<18)
	streamWords := scaleWords(1<<20, scale, 1<<16)

	rK, rCol, rColAddr, rValAddr, rXAddr, rCnt := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
	rBaseCols, rBaseVals, rBaseX := isa.R(7), isa.R(8), isa.R(9)
	fVal, fX, fProd, fAcc := isa.F(1), isa.F(2), isa.F(3), isa.F(4)
	fT, fU := isa.F(5), isa.F(6)

	b := prog.NewBuilder("spmv")
	b.SetReg(rBaseCols, int64(baseA))
	b.SetReg(rBaseVals, int64(baseB))
	b.SetReg(rBaseX, int64(baseC))
	b.SetReg(rCnt, forever)
	b.InitWith(func(m *prog.Memory) {
		rng := rand.New(rand.NewSource(43))
		for k := 0; k < streamWords; k++ {
			m.Write(baseA+uint64(k)*8, int64(rng.Intn(wordsX))<<3)
		}
	})

	b.Label("loop").
		Add(rColAddr, rBaseCols, rK).
		Ld(rCol, rColAddr, 0).
		Add(rValAddr, rBaseVals, rK).
		Ld(fVal, rValAddr, 0).
		Add(rXAddr, rBaseX, rCol).
		Ld(fX, rXAddr, 0).
		FMul(fProd, fVal, fX).
		FMul(fT, fProd, fVal).
		FAdd(fU, fT, fX).
		FAdd(fAcc, fAcc, fU).
		Addi(rK, rK, 8).
		Andi(rK, rK, int64(streamWords-1)<<3).
		Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}

func buildHashProbe(scale float64) *prog.Program {
	words := scaleWords(1<<21, scale, 1<<18)

	rX, rH, rIdx, rOff, rAddr := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	rV, rDiff, rCnt, rHits := isa.R(6), isa.R(7), isa.R(8), isa.R(9)
	rBase, rPhi := isa.R(10), isa.R(11)
	rW, rAcc := isa.R(12), isa.R(13)

	b := prog.NewBuilder("hashprobe")
	b.SetReg(rX, -0x61C8864680B583EB)
	b.SetReg(rPhi, -0x61c8864680b583eb)
	b.SetReg(rBase, int64(baseA))
	b.SetReg(rCnt, forever)

	b.Label("loop").
		Addi(rX, rX, lcgAdd).
		Mul(rH, rX, rPhi).
		Andi(rIdx, rH, int64(words-1)).
		Shli(rOff, rIdx, 3).
		Add(rAddr, rBase, rOff).
		Ld(rV, rAddr, 0).
		Sub(rDiff, rV, rX).
		Mul(rW, rV, rPhi).
		Add(rAcc, rAcc, rW).
		Br(isa.CondEQ, rDiff, "found").
		Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop").
		Label("found").
		Addi(rHits, rHits, 1).
		Jmp("loop")
	return b.Build()
}

func buildFPStream(scale float64) *prog.Program {
	words := scaleWords(1<<20, scale, 1<<17) // per stream: 8 MB, min 1 MB each

	rX, rIdx, rOff := isa.R(1), isa.R(2), isa.R(3)
	rAddrA, rAddrB, rAddrC, rCnt, rMul := isa.R(4), isa.R(5), isa.R(6), isa.R(7), isa.R(8)
	rBA, rBB, rBC := isa.R(9), isa.R(10), isa.R(11)
	fA, fB, fC, fD, fK := isa.F(1), isa.F(2), isa.F(3), isa.F(4), isa.F(5)
	fE, fF := isa.F(6), isa.F(7)

	b := prog.NewBuilder("fpstream")
	b.SetReg(rX, 0x106689D45497FDB5)
	b.SetReg(rMul, lcgMul)
	b.SetReg(rBA, int64(baseA))
	b.SetReg(rBB, int64(baseB))
	b.SetReg(rBC, int64(baseC))
	b.SetReg(rCnt, forever)

	b.Label("loop").
		Mul(rX, rX, rMul).
		Addi(rX, rX, lcgAdd).
		Andi(rIdx, rX, int64(words-1)).
		Shli(rOff, rIdx, 3).
		Add(rAddrA, rBA, rOff).
		Ld(fA, rAddrA, 0). // random load: miss
		Add(rAddrB, rBB, rOff).
		Ld(fB, rAddrB, 0). // random load: miss
		FMul(fC, fA, fB).  // NU+NR
		FAdd(fD, fC, fK).  // NU+NR
		FMul(fE, fC, fD).  // NU+NR
		FAdd(fF, fE, fA).  // NU+NR
		Add(rAddrC, rBC, rOff).
		St(rAddrC, 0, fF). // random store: NU+NR, misses
		Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}

func buildChains(scale float64) *prog.Program {
	// Ten independent chains, each a random cycle over its own region:
	// enough parallel chases that window size governs how many proceed
	// concurrently (astar explores many open-list nodes).
	const numChains = 10
	nodesPerChain := scaleWords(1<<17, scale, 1<<15) // min 512 kB/chain
	const nodeBytes = 16                             // next pointer + payload word

	chainBase := func(c int) uint64 { return baseD + uint64(c)*0x1000_0000 }

	var rP [numChains]isa.Reg
	for c := range rP {
		rP[c] = isa.R(1 + c)
	}
	rV, rW, rAcc, rCnt := isa.R(20), isa.R(21), isa.R(22), isa.R(23)
	rThree, rW2, rW3 := isa.R(24), isa.R(25), isa.R(26)

	b := prog.NewBuilder("chains")
	for c := 0; c < numChains; c++ {
		b.SetReg(rP[c], int64(chainBase(c)))
	}
	b.SetReg(rThree, 3)
	b.SetReg(rCnt, forever)
	b.InitWith(func(m *prog.Memory) {
		rng := rand.New(rand.NewSource(44))
		for c := 0; c < numChains; c++ {
			base := chainBase(c)
			perm := rng.Perm(nodesPerChain)
			// Build one cycle: node perm[i] -> node perm[i+1].
			for i := 0; i < nodesPerChain; i++ {
				from := base + uint64(perm[i])*nodeBytes
				to := base + uint64(perm[(i+1)%nodesPerChain])*nodeBytes
				m.Write(from, int64(to))
				m.Write(from+8, int64(rng.Intn(1000)))
			}
		}
	})
	// The starting pointers must be nodes on the cycle: node 0 is.
	b.Label("loop")
	for c := 0; c < numChains; c++ {
		b.Ld(rP[c], rP[c], 0)   // chase: U+NR (enables the next miss)
		b.Ld(rV, rP[c], 8)      // payload (same line: cheap after fill)
		b.Mul(rW, rV, rThree)   // NU+NR
		b.Add(rW2, rW, rV)      // NU+NR
		b.Andi(rW3, rW2, 0x3FF) // NU+NR
		b.Add(rAcc, rAcc, rW3)  // NU+NR
	}
	b.Addi(rCnt, rCnt, -1).
		Br(isa.CondNE, rCnt, "loop").
		Jmp("loop")
	return b.Build()
}
