package workload

import (
	"fmt"
	"sort"

	"ltp/internal/prog"
)

// Class is the intended MLP behaviour of a kernel.
type Class uint8

const (
	// Sensitive kernels are built to gain MLP from a larger window.
	Sensitive Class = iota
	// Insensitive kernels are compute-, L1-, or serial-latency-bound.
	Insensitive
)

// String returns the class name.
func (c Class) String() string {
	if c == Sensitive {
		return "mlp-sensitive"
	}
	return "mlp-insensitive"
}

// Spec describes one kernel.
type Spec struct {
	// Name identifies the kernel.
	Name string
	// About is a one-line description.
	About string
	// Hint is the intended MLP class.
	Hint Class
	// SPECAnalog names the SPEC2006 behaviour class this substitutes.
	SPECAnalog string
	// Build constructs the program. scale in (0,1] shrinks working sets
	// and iteration counts for tests; 1.0 is the full experiment size.
	Build func(scale float64) *prog.Program
}

var registry []Spec

func register(s Spec) { registry = append(registry, s) }

// All returns every registered kernel, sorted by name.
func All() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named kernel.
func ByName(name string) (Spec, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown kernel %q", name)
}

// Names returns all kernel names sorted.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name
	}
	return out
}

// scaleWords scales a word count, keeping it a power of two and at least
// minWords (power-of-two sizes keep masked indexing exact).
func scaleWords(full int, scale float64, minWords int) int {
	w := int(float64(full) * scale)
	if w < minWords {
		w = minWords
	}
	// Round down to a power of two.
	p := 1
	for p*2 <= w {
		p *= 2
	}
	return p
}
