// Package workload provides the synthetic kernel suite standing in for the
// paper's SPEC CPU2006 simulation points (DESIGN.md §2). Each kernel is
// written in the micro-ISA and reproduces a dependence/miss *shape* the
// paper's evaluation relies on; the SPECAnalog field documents which
// benchmark class it substitutes for.
//
// The MLP-sensitive / MLP-insensitive split is not taken from the Hint —
// experiments recompute it with the paper's §4.1 criteria (speedup and
// outstanding-request growth between IQ 32 and IQ 256). The Hint records
// the intended behaviour for tests.
package workload
