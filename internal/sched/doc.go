// Package sched provides the shared LPT (longest-processing-time-
// first) scheduling used by simulation campaigns. Two surfaces:
//
//   - Run fans a fully known job list out over a transient bounded
//     worker pool in descending cost order — the figure suite
//     (internal/experiment) and the synchronous scenario-matrix runner
//     (ltp.RunMatrix) use it.
//   - Pool is a long-lived worker pool with online, tiered LPT
//     dispatch — the campaign service (ltp.Engine, internal/server)
//     submits every interactive run and sweep cell through one Pool so
//     a single parallelism cap governs the whole process. Interactive
//     submissions (TierInteractive) dispatch ahead of queued campaign
//     cells (TierCampaign); every task carries a context, and a task
//     cancelled while queued drains without simulating.
//
// LPT list scheduling starts the longest-estimated jobs first so the
// worker pool stays saturated at the tail of a campaign instead of
// idling behind one straggler; with reasonable estimates it is within
// 4/3 of the optimal makespan.
package sched
