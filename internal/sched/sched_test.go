package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunExecutesAll checks every index runs exactly once, for worker
// counts below, at, and above the job count.
func TestRunExecutesAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 37
		var counts [n]int32
		Run(workers, n, nil, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestRunLPTOrder checks single-worker dispatch follows descending
// cost with stable ties.
func TestRunLPTOrder(t *testing.T) {
	costs := []float64{1, 5, 3, 5, 2}
	var got []int
	var mu sync.Mutex
	Run(1, len(costs), func(i int) float64 { return costs[i] }, func(i int) {
		mu.Lock()
		got = append(got, i)
		mu.Unlock()
	})
	want := []int{1, 3, 2, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestRunZeroJobs checks the degenerate cases return immediately.
func TestRunZeroJobs(t *testing.T) {
	Run(4, 0, nil, func(i int) { t.Fatal("job ran") })
	Run(0, -1, nil, func(i int) { t.Fatal("job ran") })
}
