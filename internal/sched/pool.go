package sched

import (
	"context"
	"runtime"
	"sync"
)

// Tier is a priority class for pool jobs. Lower tiers dispatch first
// regardless of cost, so interactive requests preempt queued campaign
// cells (a job already running is never preempted — tiers order the
// queue, not the workers).
type Tier uint8

const (
	// TierInteractive is for latency-sensitive single-run requests.
	TierInteractive Tier = iota
	// TierCampaign is for batch sweep/campaign cells.
	TierCampaign
)

// Pool is a long-lived bounded worker pool with tiered LPT
// (longest-processing-time-first) dispatch: of the jobs queued at the
// moment a worker frees up, the lowest tier wins, the highest cost
// estimate within that tier starts next, and FIFO order breaks ties.
// One Pool can serve many concurrent producers — the campaign service
// runs interactive single-run requests and batch sweep campaigns
// through the same Pool so the whole process respects one parallelism
// cap.
//
// Every job carries a context: a job whose context is already
// cancelled when a worker dequeues it is handed straight to its
// callback (which observes the dead context and returns) instead of
// simulating, so a cancelled campaign's queued cells drain in
// microseconds rather than occupying workers.
//
// Unlike Run, which sorts a fully known job list up front, a Pool
// schedules online: jobs submitted while workers are busy are ordered
// against each other, but a job can never preempt one already running.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   []poolJob // min-heap on (tier, -cost, seq)
	seq    uint64
	closed bool
	wg     sync.WaitGroup

	workers int
	running int // jobs currently executing
}

type poolJob struct {
	tier  Tier
	cost  float64
	seq   uint64
	ctx   context.Context
	fn    func(context.Context)
	batch *batch // non-nil for RunBatch subtasks
}

// batch tracks one RunBatch call: how many subtasks have not finished
// and the channel closed when the count reaches zero.
type batch struct {
	remaining int
	done      chan struct{}
}

// less orders the heap: lower tier first, then higher cost, then lower
// seq (earlier submission) among equals.
func (p *Pool) less(a, b poolJob) bool {
	if a.tier != b.tier {
		return a.tier < b.tier
	}
	if a.cost != b.cost {
		return a.cost > b.cost
	}
	return a.seq < b.seq
}

// NewPool starts a pool with the given number of workers (<= 0 means
// NumCPU). Close releases it.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.work()
	}
	return p
}

// Workers returns the pool's worker count (its parallelism cap).
func (p *Pool) Workers() int { return p.workers }

// Queued returns the number of submitted jobs not yet started.
func (p *Pool) Queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.heap)
}

// Running returns the number of jobs currently executing.
func (p *Pool) Running() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running
}

// SubmitCtx enqueues fn at the given tier with the given cost estimate
// and returns immediately. fn always runs exactly once, receiving ctx:
// on a pool worker when it reaches the head of the dispatch order, or
// synchronously on the caller's goroutine when the pool is closed (no
// pooling, but callers blocked on fn's completion still make progress —
// this is what makes a drain-timeout shutdown race safe instead of a
// panic). fn must observe ctx and return promptly once it is cancelled;
// the pool guarantees delivery, not cancellation, so completion
// signalling (closing a done channel) stays fn's responsibility.
func (p *Pool) SubmitCtx(ctx context.Context, tier Tier, cost float64, fn func(context.Context)) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		fn(ctx)
		return
	}
	p.push(poolJob{tier: tier, cost: cost, seq: p.seq, ctx: ctx, fn: fn})
	p.seq++
	p.mu.Unlock()
	p.cond.Signal()
}

// Submit is the v1 shim: SubmitCtx with a background context at
// TierInteractive.
//
// Deprecated: use SubmitCtx, which threads a context and a tier.
func (p *Pool) Submit(cost float64, fn func()) {
	p.SubmitCtx(context.Background(), TierInteractive, cost, func(context.Context) { fn() })
}

// RunBatch enqueues every fn at the given tier and returns only when
// all of them have completed. The calling goroutine helps: while any
// of the batch's jobs are still queued it dequeues and executes them
// itself, so a job that is itself occupying a pool worker can fan out
// subtasks without deadlocking a fully-busy pool (work helping — this
// is how a sampled-tier cell runs its K interval simulations on the
// same pool that runs the cell). Idle pool workers pick batch jobs out
// of the shared queue like any other job, so on a multi-worker pool
// the batch genuinely runs in parallel.
//
// costs[i] is fn[i]'s cost estimate for LPT ordering within the tier;
// a short or nil costs slice treats the uncovered tail as cost 0. As
// with SubmitCtx, the pool guarantees delivery, not cancellation: a
// cancelled ctx is still handed to every fn, which must observe it and
// return promptly. On a closed pool the batch degenerates to a
// sequential inline loop.
func (p *Pool) RunBatch(ctx context.Context, tier Tier, costs []float64, fns []func(context.Context)) {
	if len(fns) == 0 {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	b := &batch{remaining: len(fns), done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		for _, fn := range fns {
			fn(ctx)
		}
		return
	}
	for i, fn := range fns {
		var cost float64
		if i < len(costs) {
			cost = costs[i]
		}
		p.push(poolJob{tier: tier, cost: cost, seq: p.seq, ctx: ctx, fn: fn, batch: b})
		p.seq++
	}
	p.mu.Unlock()
	p.cond.Broadcast()

	for {
		p.mu.Lock()
		idx := -1
		for i := range p.heap {
			if p.heap[i].batch == b {
				idx = i
				break
			}
		}
		if idx < 0 {
			p.mu.Unlock()
			break
		}
		job := p.removeAt(idx)
		p.mu.Unlock()
		job.fn(job.ctx)
		p.finishBatchJob(job)
	}
	<-b.done
}

// finishBatchJob records a batch subtask's completion, closing the
// batch's done channel when it was the last one.
func (p *Pool) finishBatchJob(job poolJob) {
	if job.batch == nil {
		return
	}
	p.mu.Lock()
	job.batch.remaining--
	last := job.batch.remaining == 0
	p.mu.Unlock()
	if last {
		close(job.batch.done)
	}
}

// Close stops accepting jobs, waits for every queued and running job
// to finish, and releases the workers.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

func (p *Pool) work() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.heap) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.heap) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		job := p.pop()
		p.running++
		p.mu.Unlock()

		job.fn(job.ctx)
		p.finishBatchJob(job)

		p.mu.Lock()
		p.running--
		p.mu.Unlock()
	}
}

// push/pop/removeAt implement a slice min-heap under p.less (caller
// holds mu).
func (p *Pool) push(j poolJob) {
	p.heap = append(p.heap, j)
	p.siftUp(len(p.heap) - 1)
}

func (p *Pool) pop() poolJob {
	return p.removeAt(0)
}

// removeAt extracts the job at heap index i, restoring heap order.
func (p *Pool) removeAt(i int) poolJob {
	j := p.heap[i]
	last := len(p.heap) - 1
	p.heap[i] = p.heap[last]
	p.heap[last] = poolJob{} // release the ctx/fn references
	p.heap = p.heap[:last]
	if i < len(p.heap) {
		p.siftDown(i)
		p.siftUp(i)
	}
	return j
}

func (p *Pool) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !p.less(p.heap[i], p.heap[parent]) {
			break
		}
		p.heap[i], p.heap[parent] = p.heap[parent], p.heap[i]
		i = parent
	}
}

func (p *Pool) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(p.heap) && p.less(p.heap[l], p.heap[best]) {
			best = l
		}
		if r < len(p.heap) && p.less(p.heap[r], p.heap[best]) {
			best = r
		}
		if best == i {
			break
		}
		p.heap[i], p.heap[best] = p.heap[best], p.heap[i]
		i = best
	}
}
