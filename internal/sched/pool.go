package sched

import (
	"runtime"
	"sync"
)

// Pool is a long-lived bounded worker pool with LPT (longest-
// processing-time-first) dispatch: of the jobs queued at the moment a
// worker frees up, the one with the highest cost estimate starts next,
// with FIFO order breaking ties. One Pool can serve many concurrent
// producers — the campaign service runs interactive single-run
// requests and batch matrix campaigns through the same Pool so the
// whole process respects one parallelism cap.
//
// Unlike Run, which sorts a fully known job list up front, a Pool
// schedules online: jobs submitted while workers are busy are ordered
// against each other, but a job can never preempt one already running.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   []poolJob // max-heap on (cost, -seq)
	seq    uint64
	closed bool
	wg     sync.WaitGroup

	workers int
	running int // jobs currently executing
}

type poolJob struct {
	cost float64
	seq  uint64
	fn   func()
}

// less orders the heap: higher cost first, lower seq (earlier
// submission) first among equals.
func (p *Pool) less(a, b poolJob) bool {
	if a.cost != b.cost {
		return a.cost > b.cost
	}
	return a.seq < b.seq
}

// NewPool starts a pool with the given number of workers (<= 0 means
// NumCPU). Close releases it.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.work()
	}
	return p
}

// Workers returns the pool's worker count (its parallelism cap).
func (p *Pool) Workers() int { return p.workers }

// Queued returns the number of submitted jobs not yet started.
func (p *Pool) Queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.heap)
}

// Running returns the number of jobs currently executing.
func (p *Pool) Running() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running
}

// Submit enqueues fn with the given cost estimate and returns
// immediately; fn runs on a pool worker when it reaches the head of
// the LPT order. Submit on a closed pool degrades gracefully: fn runs
// synchronously on the caller's goroutine (no pooling, but callers
// blocked on fn's completion still make progress — this is what makes
// a drain-timeout shutdown race safe instead of a panic).
func (p *Pool) Submit(cost float64, fn func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		fn()
		return
	}
	p.push(poolJob{cost: cost, seq: p.seq, fn: fn})
	p.seq++
	p.mu.Unlock()
	p.cond.Signal()
}

// Close stops accepting jobs, waits for every queued and running job
// to finish, and releases the workers.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

func (p *Pool) work() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.heap) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.heap) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		job := p.pop()
		p.running++
		p.mu.Unlock()

		job.fn()

		p.mu.Lock()
		p.running--
		p.mu.Unlock()
	}
}

// push/pop implement a slice min-heap under p.less (caller holds mu).
func (p *Pool) push(j poolJob) {
	p.heap = append(p.heap, j)
	i := len(p.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !p.less(p.heap[i], p.heap[parent]) {
			break
		}
		p.heap[i], p.heap[parent] = p.heap[parent], p.heap[i]
		i = parent
	}
}

func (p *Pool) pop() poolJob {
	top := p.heap[0]
	last := len(p.heap) - 1
	p.heap[0] = p.heap[last]
	p.heap = p.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(p.heap) && p.less(p.heap[l], p.heap[best]) {
			best = l
		}
		if r < len(p.heap) && p.less(p.heap[r], p.heap[best]) {
			best = r
		}
		if best == i {
			break
		}
		p.heap[i], p.heap[best] = p.heap[best], p.heap[i]
		i = best
	}
	return top
}
