package sched

import (
	"runtime"
	"sort"
	"sync"
)

// Run executes do(i) for every i in [0, n) on a bounded worker pool,
// dispatching jobs in descending cost order (stable, so equal-cost
// jobs keep their submission order). workers <= 0 means NumCPU; cost
// may be nil for FIFO order. Run returns when every job has finished.
func Run(workers, n int, cost func(i int) float64, do func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if cost != nil {
		sort.SliceStable(order, func(a, b int) bool {
			return cost(order[a]) > cost(order[b])
		})
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				do(i)
			}
		}()
	}
	for _, i := range order {
		next <- i
	}
	close(next)
	wg.Wait()
}
