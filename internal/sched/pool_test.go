package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolExecutesAll checks every submitted job runs exactly once and
// Close drains the queue.
func TestPoolExecutesAll(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		p := NewPool(workers)
		const n = 100
		var counts [n]int32
		for i := 0; i < n; i++ {
			i := i
			p.Submit(float64(i%7), func() { atomic.AddInt32(&counts[i], 1) })
		}
		p.Close()
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestPoolLPTOrder checks a single worker drains a pre-filled queue in
// descending cost order with FIFO ties.
func TestPoolLPTOrder(t *testing.T) {
	p := NewPool(1)
	var mu sync.Mutex
	var got []int

	// Occupy the worker so the queue fills before dispatch starts.
	gate := make(chan struct{})
	p.Submit(100, func() { <-gate })

	costs := []float64{1, 5, 3, 5, 2}
	for i, c := range costs {
		i := i
		p.Submit(c, func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		})
	}
	close(gate)
	p.Close()

	want := []int{1, 3, 2, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestPoolConcurrentProducers checks many goroutines can submit to one
// pool — the campaign service's shape — without loss or race.
func TestPoolConcurrentProducers(t *testing.T) {
	p := NewPool(4)
	var done atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				p.Submit(float64(j), func() { done.Add(1) })
			}
		}(g)
	}
	wg.Wait()
	p.Close()
	if done.Load() != 8*50 {
		t.Fatalf("ran %d jobs; want %d", done.Load(), 8*50)
	}
}

// TestPoolSubmitAfterCloseRunsInline documents the degraded-mode
// contract: a submission racing a shutdown still executes (on the
// caller's goroutine) rather than panicking or being dropped.
func TestPoolSubmitAfterCloseRunsInline(t *testing.T) {
	p := NewPool(1)
	p.Close()
	ran := false
	p.Submit(1, func() { ran = true })
	if !ran {
		t.Fatal("Submit after Close neither ran the job nor panicked")
	}
}
