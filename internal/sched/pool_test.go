package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolExecutesAll checks every submitted job runs exactly once and
// Close drains the queue.
func TestPoolExecutesAll(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		p := NewPool(workers)
		const n = 100
		var counts [n]int32
		for i := 0; i < n; i++ {
			i := i
			p.Submit(float64(i%7), func() { atomic.AddInt32(&counts[i], 1) })
		}
		p.Close()
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestPoolLPTOrder checks a single worker drains a pre-filled queue in
// descending cost order with FIFO ties.
func TestPoolLPTOrder(t *testing.T) {
	p := NewPool(1)
	var mu sync.Mutex
	var got []int

	// Occupy the worker so the queue fills before dispatch starts.
	gate := make(chan struct{})
	p.Submit(100, func() { <-gate })

	costs := []float64{1, 5, 3, 5, 2}
	for i, c := range costs {
		i := i
		p.Submit(c, func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		})
	}
	close(gate)
	p.Close()

	want := []int{1, 3, 2, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestPoolConcurrentProducers checks many goroutines can submit to one
// pool — the campaign service's shape — without loss or race.
func TestPoolConcurrentProducers(t *testing.T) {
	p := NewPool(4)
	var done atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				p.Submit(float64(j), func() { done.Add(1) })
			}
		}(g)
	}
	wg.Wait()
	p.Close()
	if done.Load() != 8*50 {
		t.Fatalf("ran %d jobs; want %d", done.Load(), 8*50)
	}
}

// TestPoolTierPreemptsQueue checks the v2 priority contract: an
// interactive job submitted after a pile of queued campaign cells
// dispatches before every one of them, whatever their costs.
func TestPoolTierPreemptsQueue(t *testing.T) {
	p := NewPool(1)
	var mu sync.Mutex
	var got []string

	gate := make(chan struct{})
	p.SubmitCtx(context.Background(), TierCampaign, 100, func(context.Context) { <-gate })

	for i := 0; i < 5; i++ {
		name := string(rune('a' + i))
		p.SubmitCtx(context.Background(), TierCampaign, float64(10-i), func(context.Context) {
			mu.Lock()
			got = append(got, "campaign:"+name)
			mu.Unlock()
		})
	}
	p.SubmitCtx(context.Background(), TierInteractive, 0.1, func(context.Context) {
		mu.Lock()
		got = append(got, "interactive")
		mu.Unlock()
	})
	close(gate)
	p.Close()

	if len(got) != 6 || got[0] != "interactive" {
		t.Fatalf("dispatch order %v; want the interactive job first", got)
	}
}

// TestPoolDeliversCancelledCtx checks a job whose context is dead by
// dispatch time still runs exactly once, observing the cancelled
// context (the completion-signalling contract).
func TestPoolDeliversCancelledCtx(t *testing.T) {
	p := NewPool(1)
	gate := make(chan struct{})
	p.Submit(1, func() { <-gate })

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sawDead := make(chan bool, 1)
	p.SubmitCtx(ctx, TierCampaign, 1, func(c context.Context) { sawDead <- c.Err() != nil })
	close(gate)
	p.Close()
	if !<-sawDead {
		t.Fatal("job dispatched with a live context; want the cancelled one delivered")
	}
}

// TestPoolSubmitAfterCloseRunsInline documents the degraded-mode
// contract: a submission racing a shutdown still executes (on the
// caller's goroutine) rather than panicking or being dropped.
func TestPoolSubmitAfterCloseRunsInline(t *testing.T) {
	p := NewPool(1)
	p.Close()
	ran := false
	p.Submit(1, func() { ran = true })
	if !ran {
		t.Fatal("Submit after Close neither ran the job nor panicked")
	}
}

// TestPoolRunBatchFromWorker checks work helping: a job occupying the
// only worker of a single-worker pool fans out a batch and completes —
// the caller executes the subtasks itself instead of deadlocking.
func TestPoolRunBatchFromWorker(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	const n = 8
	var ran [n]int32
	done := make(chan struct{})
	p.SubmitCtx(context.Background(), TierInteractive, 1, func(ctx context.Context) {
		fns := make([]func(context.Context), n)
		costs := make([]float64, n)
		for i := 0; i < n; i++ {
			i := i
			costs[i] = float64(i)
			fns[i] = func(context.Context) { atomic.AddInt32(&ran[i], 1) }
		}
		p.RunBatch(ctx, TierInteractive, costs, fns)
		close(done)
	})
	<-done
	for i, c := range ran {
		if c != 1 {
			t.Fatalf("subtask %d ran %d times", i, c)
		}
	}
}

// TestPoolRunBatchShared checks idle workers steal batch subtasks: on
// a multi-worker pool a batch submitted from outside completes with
// every subtask running exactly once even while other jobs flow.
func TestPoolRunBatchShared(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	var extra int32
	for i := 0; i < 10; i++ {
		p.Submit(1, func() { atomic.AddInt32(&extra, 1) })
	}
	const n = 32
	var ran [n]int32
	fns := make([]func(context.Context), n)
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func(context.Context) { atomic.AddInt32(&ran[i], 1) }
	}
	p.RunBatch(context.Background(), TierCampaign, nil, fns)
	for i, c := range ran {
		if c != 1 {
			t.Fatalf("subtask %d ran %d times", i, c)
		}
	}
}

// TestPoolRunBatchClosed checks the closed-pool degenerate path: the
// batch runs inline on the caller, sequentially, exactly once each.
func TestPoolRunBatchClosed(t *testing.T) {
	p := NewPool(2)
	p.Close()
	var order []int
	fns := make([]func(context.Context), 5)
	for i := range fns {
		i := i
		fns[i] = func(context.Context) { order = append(order, i) }
	}
	p.RunBatch(context.Background(), TierInteractive, nil, fns)
	if len(order) != 5 {
		t.Fatalf("ran %d subtasks, want 5", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("closed-pool batch ran out of order: %v", order)
		}
	}
}

// TestPoolRunBatchEmpty checks the zero-subtask batch returns at once.
func TestPoolRunBatchEmpty(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	p.RunBatch(context.Background(), TierInteractive, nil, nil)
}
