package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolExecutesAll checks every submitted job runs exactly once and
// Close drains the queue.
func TestPoolExecutesAll(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		p := NewPool(workers)
		const n = 100
		var counts [n]int32
		for i := 0; i < n; i++ {
			i := i
			p.Submit(float64(i%7), func() { atomic.AddInt32(&counts[i], 1) })
		}
		p.Close()
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestPoolLPTOrder checks a single worker drains a pre-filled queue in
// descending cost order with FIFO ties.
func TestPoolLPTOrder(t *testing.T) {
	p := NewPool(1)
	var mu sync.Mutex
	var got []int

	// Occupy the worker so the queue fills before dispatch starts.
	gate := make(chan struct{})
	p.Submit(100, func() { <-gate })

	costs := []float64{1, 5, 3, 5, 2}
	for i, c := range costs {
		i := i
		p.Submit(c, func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		})
	}
	close(gate)
	p.Close()

	want := []int{1, 3, 2, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestPoolConcurrentProducers checks many goroutines can submit to one
// pool — the campaign service's shape — without loss or race.
func TestPoolConcurrentProducers(t *testing.T) {
	p := NewPool(4)
	var done atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				p.Submit(float64(j), func() { done.Add(1) })
			}
		}(g)
	}
	wg.Wait()
	p.Close()
	if done.Load() != 8*50 {
		t.Fatalf("ran %d jobs; want %d", done.Load(), 8*50)
	}
}

// TestPoolTierPreemptsQueue checks the v2 priority contract: an
// interactive job submitted after a pile of queued campaign cells
// dispatches before every one of them, whatever their costs.
func TestPoolTierPreemptsQueue(t *testing.T) {
	p := NewPool(1)
	var mu sync.Mutex
	var got []string

	gate := make(chan struct{})
	p.SubmitCtx(context.Background(), TierCampaign, 100, func(context.Context) { <-gate })

	for i := 0; i < 5; i++ {
		name := string(rune('a' + i))
		p.SubmitCtx(context.Background(), TierCampaign, float64(10-i), func(context.Context) {
			mu.Lock()
			got = append(got, "campaign:"+name)
			mu.Unlock()
		})
	}
	p.SubmitCtx(context.Background(), TierInteractive, 0.1, func(context.Context) {
		mu.Lock()
		got = append(got, "interactive")
		mu.Unlock()
	})
	close(gate)
	p.Close()

	if len(got) != 6 || got[0] != "interactive" {
		t.Fatalf("dispatch order %v; want the interactive job first", got)
	}
}

// TestPoolDeliversCancelledCtx checks a job whose context is dead by
// dispatch time still runs exactly once, observing the cancelled
// context (the completion-signalling contract).
func TestPoolDeliversCancelledCtx(t *testing.T) {
	p := NewPool(1)
	gate := make(chan struct{})
	p.Submit(1, func() { <-gate })

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sawDead := make(chan bool, 1)
	p.SubmitCtx(ctx, TierCampaign, 1, func(c context.Context) { sawDead <- c.Err() != nil })
	close(gate)
	p.Close()
	if !<-sawDead {
		t.Fatal("job dispatched with a live context; want the cancelled one delivered")
	}
}

// TestPoolSubmitAfterCloseRunsInline documents the degraded-mode
// contract: a submission racing a shutdown still executes (on the
// caller's goroutine) rather than panicking or being dropped.
func TestPoolSubmitAfterCloseRunsInline(t *testing.T) {
	p := NewPool(1)
	p.Close()
	ran := false
	p.Submit(1, func() { ran = true })
	if !ran {
		t.Fatal("Submit after Close neither ran the job nor panicked")
	}
}
