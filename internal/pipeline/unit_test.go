package pipeline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ltp/internal/isa"
)

func TestRegFileAllocFree(t *testing.T) {
	rf := NewRegFile("t", 32, 4)
	if rf.FreeCount() != 4 || rf.InUse() != 0 {
		t.Fatal("initial state wrong")
	}
	var regs []PReg
	for i := 0; i < 4; i++ {
		r, ok := rf.Alloc()
		if !ok {
			t.Fatal("alloc failed with free registers")
		}
		if int(r) < 32 {
			t.Error("allocated an architectural slot")
		}
		regs = append(regs, r)
	}
	if _, ok := rf.Alloc(); ok {
		t.Error("alloc succeeded with empty free list")
	}
	for _, r := range regs {
		rf.Free(r)
	}
	if rf.FreeCount() != 4 || rf.InUse() != 0 {
		t.Error("free list not restored")
	}
}

func TestRegFileReadiness(t *testing.T) {
	rf := NewRegFile("t", 32, 4)
	r, _ := rf.Alloc()
	if rf.Ready(r, 1000) {
		t.Error("fresh register must not be ready")
	}
	rf.SetReady(r, 50)
	if rf.Ready(r, 49) || !rf.Ready(r, 50) {
		t.Error("readiness timestamp comparison broken")
	}
}

// Property: any interleaving of allocs and frees conserves the pool.
func TestRegFileConservationProperty(t *testing.T) {
	f := func(ops []bool) bool {
		rf := NewRegFile("t", 8, 16)
		var live []PReg
		for _, alloc := range ops {
			if alloc {
				if r, ok := rf.Alloc(); ok {
					live = append(live, r)
				}
			} else if len(live) > 0 {
				rf.Free(live[len(live)-1])
				live = live[:len(live)-1]
			}
		}
		return rf.FreeCount()+len(live) == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRATBasics(t *testing.T) {
	rat := NewRAT()
	r3 := isa.R(3)
	if p, prod := rat.Lookup(r3); p != 3 || prod != nil {
		t.Fatal("initial identity mapping broken")
	}
	rat.WritePhys(r3, 40)
	if p, _ := rat.Lookup(r3); p != 40 {
		t.Error("WritePhys not visible")
	}
	prev := rat.CommitMapping(r3, 40)
	if prev != 3 {
		t.Errorf("previous committed mapping %d, want 3", prev)
	}
	if rat.CommittedPreg(r3) != 40 {
		t.Error("commit RAT not updated")
	}
}

func TestRATParkedFlow(t *testing.T) {
	rat := NewRAT()
	r5 := isa.R(5)
	f := &Inflight{U: isa.Uop{Dst: r5}, DstPreg: NoPReg}
	rat.WriteParked(r5, f)
	if !rat.SrcParked(r5) {
		t.Error("parked bit not set")
	}
	rat.ResolveParked(r5, f, 77)
	if rat.SrcParked(r5) {
		t.Error("parked bit survives resolution")
	}
	if p, _ := rat.Lookup(r5); p != 77 {
		t.Error("resolved register wrong")
	}
	// A stale resolve (not the latest writer) must not clobber.
	g := &Inflight{U: isa.Uop{Dst: r5}}
	rat.WriteParked(r5, g)
	rat.ResolveParked(r5, f, 99)
	if !rat.SrcParked(r5) {
		t.Error("stale ResolveParked clobbered a younger writer")
	}
}

func TestRATRestoreFromCommit(t *testing.T) {
	rat := NewRAT()
	rat.WritePhys(isa.R(1), 50)
	rat.WriteParked(isa.R(2), &Inflight{})
	rat.RestoreFromCommit()
	if p, prod := rat.Lookup(isa.R(1)); p != 1 || prod != nil {
		t.Error("restore did not reset speculative state")
	}
	if rat.SrcParked(isa.R(2)) {
		t.Error("restore left a parked bit")
	}
}

func TestROBOrderAndSquash(t *testing.T) {
	rob := NewROB(8)
	for i := uint64(0); i < 5; i++ {
		rob.Push(&Inflight{U: isa.Uop{Seq: i}})
	}
	if rob.Head().Seq() != 0 {
		t.Error("head wrong")
	}
	victims := rob.SquashFrom(3)
	if len(victims) != 2 || victims[0].Seq() != 3 {
		t.Errorf("squash returned %d victims", len(victims))
	}
	if rob.Len() != 3 {
		t.Errorf("ROB length %d after squash", rob.Len())
	}
	rob.PopHead()
	if rob.Head().Seq() != 1 {
		t.Error("pop broken")
	}
}

func TestIQCandidatesOrder(t *testing.T) {
	iq := NewIQ(8)
	for _, s := range []uint64{5, 2, 9, 1} {
		iq.Insert(&Inflight{U: isa.Uop{Seq: s}})
	}
	cands := iq.Candidates(0)
	if len(cands) != 4 || cands[0].Seq() != 1 || cands[3].Seq() != 9 {
		t.Errorf("candidates not oldest-first: %v", seqsOf(cands))
	}
	// blockedUntil filters.
	cands[0].blockedUntil = 100
	if got := iq.Candidates(50); len(got) != 3 {
		t.Errorf("blocked entry not filtered: %d", len(got))
	}
}

func seqsOf(fs []*Inflight) []uint64 {
	out := make([]uint64, len(fs))
	for i, f := range fs {
		out[i] = f.Seq()
	}
	return out
}

func TestOrderedQueueSortedInsert(t *testing.T) {
	q := newOrderedQueue(8)
	for _, s := range []uint64{5, 2, 9, 1} {
		q.Insert(&Inflight{U: isa.Uop{Seq: s}})
	}
	for i := 1; i < len(q.entries); i++ {
		if q.entries[i-1].Seq() > q.entries[i].Seq() {
			t.Fatalf("unsorted: %v", seqsOf(q.entries))
		}
	}
	q.SquashFrom(5)
	if q.Len() != 2 {
		t.Errorf("squash left %d", q.Len())
	}
	q.Remove(q.entries[0])
	if q.Len() != 1 || q.entries[0].Seq() != 2 {
		t.Error("remove broken")
	}
}

// Property: orderedQueue stays sorted under random insert orders.
func TestOrderedQueueSortProperty(t *testing.T) {
	f := func(seqs []uint16) bool {
		q := newOrderedQueue(len(seqs) + 1)
		seen := map[uint64]bool{}
		for _, s := range seqs {
			if seen[uint64(s)] {
				continue // seqs are unique in reality
			}
			seen[uint64(s)] = true
			q.Insert(&Inflight{U: isa.Uop{Seq: uint64(s)}})
		}
		for i := 1; i < len(q.entries); i++ {
			if q.entries[i-1].Seq() >= q.entries[i].Seq() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFUPoolPipelined(t *testing.T) {
	p := newFUPool(2, true)
	if !p.canIssue(0) {
		t.Fatal("fresh pool refuses")
	}
	p.issue(0, 5)
	p.issue(0, 5)
	if p.canIssue(0) {
		t.Error("per-cycle width not enforced")
	}
	p.resetCycle()
	if !p.canIssue(0) {
		t.Error("pipelined pool must accept next cycle")
	}
}

func TestFUPoolUnpipelined(t *testing.T) {
	p := newFUPool(1, false)
	p.issue(0, 20)
	p.resetCycle()
	if p.canIssue(10) {
		t.Error("unpipelined unit accepted while busy")
	}
	if !p.canIssue(20) {
		t.Error("unpipelined unit refused after completion")
	}
}

func TestStoreSets(t *testing.T) {
	ss := NewStoreSets()
	st := &Inflight{U: isa.Uop{Seq: 1, PC: 0x100, Op: isa.Store}}
	ld := &Inflight{U: isa.Uop{Seq: 2, PC: 0x200, Op: isa.Load}}
	if ss.DependencyFor(ld) != nil {
		t.Error("untrained predictor predicted a dependence")
	}
	ss.OnViolation(st, ld)
	// Re-dispatch: the store registers in the LFST, the load must wait.
	ss.OnDispatchStore(st)
	if got := ss.DependencyFor(ld); got != st {
		t.Error("trained dependence not predicted")
	}
	ss.OnComplete(st)
	if ss.DependencyFor(ld) != nil {
		t.Error("completed store still predicted")
	}
}

func TestStoreSetsSquash(t *testing.T) {
	ss := NewStoreSets()
	st := &Inflight{U: isa.Uop{Seq: 5, PC: 0x100, Op: isa.Store}}
	ld := &Inflight{U: isa.Uop{Seq: 6, PC: 0x200, Op: isa.Load}}
	ss.OnViolation(st, ld)
	ss.OnDispatchStore(st)
	ss.OnSquash(5)
	if ss.DependencyFor(ld) != nil {
		t.Error("squashed store still in LFST")
	}
}

func TestTicketMask(t *testing.T) {
	var m TicketMask
	if !m.Empty() {
		t.Fatal("zero mask not empty")
	}
	m.Set(3)
	m.Set(100)
	if m.Empty() || !m.Has(3) || !m.Has(100) || m.Has(4) {
		t.Error("set/has broken")
	}
	if m.Count() != 2 {
		t.Errorf("count %d", m.Count())
	}
	var o TicketMask
	o.Set(64)
	m.Or(o)
	if !m.Has(64) {
		t.Error("or broken")
	}
	m.Clear(3)
	m.Clear(100)
	m.Clear(64)
	if !m.Empty() {
		t.Error("clear broken")
	}
}

// Property: set/clear round-trips for any ticket index 0..127.
func TestTicketMaskProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var m TicketMask
		set := map[int]bool{}
		for _, r := range raw {
			i := int(r) % 128
			if set[i] {
				m.Clear(i)
				delete(set, i)
			} else {
				m.Set(i)
				set[i] = true
			}
		}
		if m.Count() != len(set) {
			return false
		}
		for i := range set {
			if !m.Has(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	good.Validate() // must not panic

	for _, mut := range []func(*Config){
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.ROBSize = 0 },
		func(c *Config) { c.IntRegs = 1 },
		func(c *Config) { c.NumALU = 0 },
	} {
		c := DefaultConfig()
		mut(&c)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid config must panic")
				}
			}()
			c.Validate()
		}()
	}
}
