package pipeline

import "ltp/internal/isa"

// fuPool tracks per-cycle availability for one class of functional units.
// Pipelined units accept one operation per unit per cycle; unpipelined
// units (divide, sqrt) are busy for the operation's full latency.
type fuPool struct {
	count     int
	pipelined bool
	busyUntil []uint64 // per-unit, for unpipelined pools
	usedNow   int      // issues this cycle, for pipelined pools
}

func newFUPool(count int, pipelined bool) *fuPool {
	return &fuPool{
		count:     count,
		pipelined: pipelined,
		busyUntil: make([]uint64, count),
	}
}

// resetCycle clears per-cycle issue counts.
func (f *fuPool) resetCycle() { f.usedNow = 0 }

// canIssue reports whether a unit is available at cycle now.
func (f *fuPool) canIssue(now uint64) bool {
	if f.usedNow >= f.count {
		return false
	}
	if f.pipelined {
		return true
	}
	busy := 0
	for _, b := range f.busyUntil {
		if b > now {
			busy++
		}
	}
	return f.usedNow+busy < f.count
}

// issue claims a unit for an operation of the given latency.
func (f *fuPool) issue(now uint64, latency uint64) {
	f.usedNow++
	if f.pipelined {
		return
	}
	for i := range f.busyUntil {
		if f.busyUntil[i] <= now {
			f.busyUntil[i] = now + latency
			return
		}
	}
}

// fuBank is the full set of functional-unit pools.
type fuBank struct {
	pools [isa.NumFUKinds]*fuPool
}

func newFUBank(cfg *Config) *fuBank {
	b := &fuBank{}
	b.pools[isa.FUALU] = newFUPool(cfg.NumALU, true)
	b.pools[isa.FUMul] = newFUPool(cfg.NumMul, true)
	b.pools[isa.FUDiv] = newFUPool(cfg.NumDiv, false)
	b.pools[isa.FUFP] = newFUPool(cfg.NumFP, true)
	b.pools[isa.FUFDiv] = newFUPool(cfg.NumFDiv, false)
	b.pools[isa.FUMem] = newFUPool(cfg.NumMem, true)
	return b
}

func (b *fuBank) resetCycle() {
	for _, p := range b.pools {
		p.resetCycle()
	}
}

func (b *fuBank) canIssue(op isa.Op, now uint64) bool {
	return b.pools[op.FU()].canIssue(now)
}

func (b *fuBank) issue(op isa.Op, now uint64) {
	b.pools[op.FU()].issue(now, uint64(isa.Latency[op]))
}
