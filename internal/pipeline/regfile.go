package pipeline

import (
	"fmt"

	"ltp/internal/isa"
)

// neverReady is a readiness timestamp meaning "value not produced yet".
const neverReady = ^uint64(0)

// RegFile models one class (integer or floating point) of the physical
// register file: a free list plus per-register readiness timestamps. The
// file holds NumArch + avail registers: the architectural state always
// occupies NumArch of them (paper footnote 4: the graphs show *available*
// registers).
type RegFile struct {
	name    string
	arch    int
	avail   int
	free    []PReg   // LIFO free list
	readyAt []uint64 // per-preg cycle its value is available

	// Statistics.
	Allocs uint64
	Frees  uint64
}

// NewRegFile builds a register file with `arch` architectural and `avail`
// available rename registers. Registers 0..arch-1 start out mapped to the
// architectural state; arch..arch+avail-1 start on the free list.
func NewRegFile(name string, arch, avail int) *RegFile {
	rf := &RegFile{
		name:    name,
		arch:    arch,
		avail:   avail,
		readyAt: make([]uint64, arch+avail),
	}
	rf.free = make([]PReg, 0, avail)
	// Push in reverse so allocation order starts at the lowest index.
	for i := arch + avail - 1; i >= arch; i-- {
		rf.free = append(rf.free, PReg(i))
	}
	return rf
}

// FreeCount returns the number of registers on the free list.
func (rf *RegFile) FreeCount() int { return len(rf.free) }

// InUse returns the number of rename registers currently allocated.
func (rf *RegFile) InUse() int { return rf.avail - len(rf.free) }

// Avail returns the configured number of available registers.
func (rf *RegFile) Avail() int { return rf.avail }

// Alloc pops a register from the free list. ok=false when empty.
func (rf *RegFile) Alloc() (PReg, bool) {
	if len(rf.free) == 0 {
		return NoPReg, false
	}
	r := rf.free[len(rf.free)-1]
	rf.free = rf.free[:len(rf.free)-1]
	rf.readyAt[r] = neverReady
	rf.Allocs++
	return r, true
}

// Free returns a register to the free list.
func (rf *RegFile) Free(r PReg) {
	if r == NoPReg {
		return
	}
	if int(r) < 0 || int(r) >= len(rf.readyAt) {
		panic(fmt.Sprintf("pipeline: %s free of invalid preg %d", rf.name, r))
	}
	rf.free = append(rf.free, r)
	rf.Frees++
}

// SetReady marks the register's value available from the given cycle.
func (rf *RegFile) SetReady(r PReg, at uint64) { rf.readyAt[r] = at }

// ReadyAt returns the cycle the register's value is available
// (neverReady if not produced yet).
func (rf *RegFile) ReadyAt(r PReg) uint64 { return rf.readyAt[r] }

// Ready reports whether the register's value is available at cycle now.
func (rf *RegFile) Ready(r PReg, now uint64) bool { return rf.readyAt[r] <= now }

// ratEntry is one speculative RAT mapping: either a concrete physical
// register, or a link to a parked producer whose destination register has
// not been allocated yet (late allocation). writer tracks the latest
// producing instruction regardless of parking (used by the WIB baseline's
// dependence-chain drain).
type ratEntry struct {
	preg   PReg
	prod   *Inflight // non-nil while the latest writer is parked
	writer *Inflight // latest writer, parked or not (nil = architectural)
}

// RAT is the speculative register alias table over the flat architectural
// register space (int + fp), plus the retirement (commit) RAT used for
// register reclamation and squash recovery.
type RAT struct {
	spec   [isa.NumArchRegs]ratEntry
	commit [isa.NumArchRegs]PReg
}

// NewRAT returns a RAT with the identity initial mapping: architectural
// register i maps to physical register i of its class.
func NewRAT() *RAT {
	rat := &RAT{}
	for i := 0; i < isa.NumArchRegs; i++ {
		p := classIndex(isa.Reg(i))
		rat.spec[i] = ratEntry{preg: p}
		rat.commit[i] = p
	}
	return rat
}

// classIndex maps an architectural register to its initial physical index
// within its class file (int regs index the int file, fp regs the fp file).
func classIndex(r isa.Reg) PReg {
	if r.IsFP() {
		return PReg(int(r) - isa.NumIntRegs)
	}
	return PReg(r)
}

// Lookup returns the current mapping for an architectural register.
func (rat *RAT) Lookup(r isa.Reg) (PReg, *Inflight) {
	e := rat.spec[r]
	return e.preg, e.prod
}

// Writer returns the latest in-flight writer of r (nil if architectural).
func (rat *RAT) Writer(r isa.Reg) *Inflight { return rat.spec[r].writer }

// WritePhys records a concrete mapping (normal rename).
func (rat *RAT) WritePhys(r isa.Reg, p PReg) {
	rat.spec[r] = ratEntry{preg: p}
}

// WritePhysBy records a concrete mapping with its producing instruction.
func (rat *RAT) WritePhysBy(r isa.Reg, p PReg, w *Inflight) {
	rat.spec[r] = ratEntry{preg: p, writer: w}
}

// WriteParked records a parked producer as the latest writer (its physical
// register is deferred).
func (rat *RAT) WriteParked(r isa.Reg, prod *Inflight) {
	rat.spec[r] = ratEntry{preg: NoPReg, prod: prod, writer: prod}
}

// ResolveParked upgrades a parked mapping to a concrete register, but only
// if the parked instruction is still the latest writer.
func (rat *RAT) ResolveParked(r isa.Reg, prod *Inflight, p PReg) {
	if rat.spec[r].prod == prod {
		rat.spec[r] = ratEntry{preg: p, writer: prod}
	}
}

// CommitMapping retires a writer: it returns the previous committed
// mapping (to be freed) and installs the new one.
func (rat *RAT) CommitMapping(r isa.Reg, p PReg) (prev PReg) {
	prev = rat.commit[r]
	rat.commit[r] = p
	return prev
}

// CommittedPreg returns the committed mapping for an architectural register.
func (rat *RAT) CommittedPreg(r isa.Reg) PReg { return rat.commit[r] }

// RestoreFromCommit resets the speculative RAT to the committed state
// (used as the base of squash recovery before surviving writers are
// replayed on top).
func (rat *RAT) RestoreFromCommit() {
	for i := range rat.spec {
		rat.spec[i] = ratEntry{preg: rat.commit[i]}
	}
}

// SrcParked reports whether the latest writer of r is parked.
func (rat *RAT) SrcParked(r isa.Reg) bool {
	return r.Valid() && rat.spec[r].prod != nil
}
