package pipeline

// StoreSets is a store-set style memory dependence predictor (Chrysos &
// Emer). Loads and stores that have violated together are placed in the
// same store set; a load with a store set must wait for the last in-flight
// store of that set to resolve before issuing.
//
// The implementation is the common simplified variant: a PC-indexed store
// set ID table (SSIT) and a last-fetched-store table (LFST) holding the
// youngest in-flight store per set.
type StoreSets struct {
	ssit    []int32 // PC hash -> set id (-1 = none)
	lfst    map[int32]*Inflight
	nextSet int32

	// Statistics.
	Violations uint64
	Waits      uint64
}

const ssitSize = 4096

// NewStoreSets returns an empty predictor.
func NewStoreSets() *StoreSets {
	s := &StoreSets{
		ssit: make([]int32, ssitSize),
		lfst: make(map[int32]*Inflight),
	}
	for i := range s.ssit {
		s.ssit[i] = -1
	}
	return s
}

func ssitIndex(pc uint64) int { return int((pc >> 2) % ssitSize) }

// OnDispatchStore records the store as the last fetched member of its set.
func (s *StoreSets) OnDispatchStore(st *Inflight) {
	sid := s.ssit[ssitIndex(st.U.PC)]
	if sid >= 0 {
		s.lfst[sid] = st
	}
}

// DependencyFor returns the in-flight store a dispatched load should wait
// for, if its PC belongs to a store set with an in-flight member.
func (s *StoreSets) DependencyFor(ld *Inflight) *Inflight {
	sid := s.ssit[ssitIndex(ld.U.PC)]
	if sid < 0 {
		return nil
	}
	st := s.lfst[sid]
	if st == nil || st.Committed || st.Squashed || st.Seq() > ld.Seq() {
		return nil
	}
	s.Waits++
	return st
}

// OnViolation trains the predictor after a memory-order violation between
// a store and a younger load: both PCs join the same set.
func (s *StoreSets) OnViolation(st, ld *Inflight) {
	s.Violations++
	si, li := ssitIndex(st.U.PC), ssitIndex(ld.U.PC)
	switch {
	case s.ssit[si] < 0 && s.ssit[li] < 0:
		s.ssit[si] = s.nextSet
		s.ssit[li] = s.nextSet
		s.nextSet++
	case s.ssit[si] < 0:
		s.ssit[si] = s.ssit[li]
	case s.ssit[li] < 0:
		s.ssit[li] = s.ssit[si]
	default:
		// Merge by pointing the load's set at the store's.
		s.ssit[li] = s.ssit[si]
	}
}

// OnComplete clears LFST entries that point at a store leaving flight.
func (s *StoreSets) OnComplete(st *Inflight) {
	sid := s.ssit[ssitIndex(st.U.PC)]
	if sid >= 0 && s.lfst[sid] == st {
		delete(s.lfst, sid)
	}
}

// OnSquash drops LFST entries for squashed stores.
func (s *StoreSets) OnSquash(fromSeq uint64) {
	for sid, st := range s.lfst {
		if st.Seq() >= fromSeq {
			delete(s.lfst, sid)
		}
	}
}
