package pipeline

import (
	"fmt"

	"ltp/internal/bpred"
	"ltp/internal/isa"
	"ltp/internal/mem"
	"ltp/internal/prog"
	"ltp/internal/stats"
)

// never is the "stalled indefinitely" timestamp.
const never = ^uint64(0)

// decoded is a fetched µop moving through the front end.
type decoded struct {
	u       isa.Uop
	readyAt uint64 // cycle it reaches rename
	mispred bool   // front-end branch misprediction
}

// eventKind discriminates scheduled timing events.
type eventKind uint8

const (
	evDone      eventKind = iota // execution completes
	evStoreAddr                  // store address resolves (violation scan)
)

type event struct {
	at   uint64
	seq  uint64 // tie-break for determinism
	f    *Inflight
	kind eventKind
}

// eventHeap is a binary min-heap ordered by (at, seq). It is hand-rolled
// instead of using container/heap: the interface-based heap boxes every
// event into an interface{} (one allocation per push and pop) and its
// indirect calls dominated the event path's profile.
type eventHeap []event

func (h event) before(o event) bool {
	if h.at != o.at {
		return h.at < o.at
	}
	return h.seq < o.seq
}

// push adds an event, sifting it up to its heap position.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The heap must be non-empty.
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the *Inflight reference
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s[l].before(s[min]) {
			min = l
		}
		if r < n && s[r].before(s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Pipeline is the cycle-level out-of-order core.
type Pipeline struct {
	cfg    Config
	Hier   *mem.Hierarchy
	BP     bpred.Predictor
	parker Parker

	stream     prog.Stream
	streamDone bool

	// Fetch & replay buffer: every fetched, uncommitted µop. The buffer is
	// consumed from bufHead (committed entries are dead space compacted in
	// place) so the steady state allocates nothing.
	fetchBuf        []isa.Uop
	bufHead         int    // index of the oldest uncommitted µop
	bufBase         uint64 // seq of fetchBuf[bufHead]
	fetchPos        int    // next buffer index to fetch (>= bufHead)
	fetchStallUntil uint64
	mispredSeq      uint64 // seq of the unresolved mispredicted branch (never = none)
	lastFetchLine   uint64
	trainedSeq      uint64 // newest branch seq the predictor was trained on

	// Decode queue, consumed from decodeHead and compacted in place.
	decodeQ    []decoded
	decodeHead int
	decodeQCap int

	// Inflight record pool. Retired (committed or squashed) records park in
	// `retired` until no live instruction can still reference them — every
	// cross-record pointer (SrcProd, DepStore, event entries) is held by an
	// instruction that coexisted with the referent in the ROB, so once
	// commit has advanced a full ROB window past a record's seq it is
	// unreachable and returns to `pool` for reuse. Disabled under the WIB
	// baseline, whose SrcWriter links can outlive that window.
	pool         []*Inflight
	retired      []*Inflight
	poolDisabled bool
	scavengeAt   uint64 // next bufBase at which scavenging is worth retrying

	// pending is an instruction that was classified (OnRename/ShouldPark
	// ran exactly once) but could not yet dispatch due to a structural
	// stall; it retries before anything younger renames.
	pending       *Inflight
	pendingParked bool

	rob   *ROB
	wib   *WIB // nil unless the WIB baseline is enabled
	iq    *IQ
	lq    *orderedQueue
	sq    *orderedQueue
	intRF *RegFile
	fpRF  *RegFile
	rat   *RAT
	fus   *fuBank
	ssets *StoreSets

	events eventHeap

	// llList holds in-flight, incomplete long-latency instructions in
	// program order (the paper's ROB long-latency tracking for the
	// Non-Urgent wakeup policy).
	llList []*Inflight

	// drainQ holds committed stores awaiting their SQ release.
	drainQ  []*Inflight
	drainAt []uint64

	now             uint64
	committed       uint64
	lastCommitCycle uint64
	resourceStall   bool // rename stalled on a commit-freed resource last cycle

	// cancelCh, when non-nil, is polled by Run every cancelPollCycles
	// cycles; once it is closed Run returns early and Aborted reports
	// true. Set it with SetCancel (typically to a context's Done
	// channel) before calling Run.
	cancelCh <-chan struct{}
	aborted  bool

	// Measured-region base offsets, set by ResetStats at the warm-up
	// boundary so Snapshot reports the measured region only.
	baseCycles    uint64
	baseCommitted uint64

	// TraceSink, when non-nil, receives every instruction at commit (the
	// cmd/ltptrace pipeline-viewer hook). The Inflight must not be
	// retained beyond the call.
	TraceSink func(*Inflight)

	// Measurement.
	OccIQ, OccROB, OccLQ, OccSQ stats.Accumulator
	OccIntRF, OccFPRF           stats.Accumulator
	OccOutstanding              stats.Accumulator
	Counters                    *stats.Set
	Issues, RFReads, RFWrites   uint64
	Fetched, Dispatched         uint64
	Squashes                    uint64
	renameStallReasons          [8]uint64
}

// Rename stall reasons (indices into renameStallReasons).
const (
	stallROB = iota
	stallIQ
	stallRegs
	stallLQ
	stallSQ
	stallLTP
	stallDecode
	stallOther
)

// New builds a pipeline over the given µop stream with the given Parker
// (use NullParker{} for the baseline core).
func New(cfg Config, stream prog.Stream, parker Parker) *Pipeline {
	cfg.Validate()
	p := &Pipeline{
		cfg:           cfg,
		Hier:          mem.NewHierarchy(cfg.Hier),
		BP:            mustPredictor(cfg.BranchPred),
		parker:        parker,
		stream:        stream,
		rob:           NewROB(cfg.ROBSize),
		iq:            NewIQ(cfg.IQSize),
		lq:            newOrderedQueue(cfg.LQSize),
		sq:            newOrderedQueue(cfg.SQSize),
		intRF:         NewRegFile("int", isa.NumIntRegs, cfg.IntRegs),
		fpRF:          NewRegFile("fp", isa.NumFPRegs, cfg.FPRegs),
		rat:           NewRAT(),
		fus:           newFUBank(&cfg),
		ssets:         NewStoreSets(),
		decodeQCap:    cfg.FetchWidth * (int(cfg.FrontEndDepth) + 2),
		mispredSeq:    never,
		lastFetchLine: ^uint64(0),
		Counters:      stats.NewSet(),
	}
	if cfg.WIBSize > 0 {
		p.wib = NewWIB(cfg.WIBSize, cfg.WIBPorts, cfg.LLThreshold)
		p.poolDisabled = true
	}
	return p
}

// allocInflight hands out a zeroed Inflight record, reusing retired ones
// when the reuse window (see the pool fields) allows.
func (p *Pipeline) allocInflight() *Inflight {
	if len(p.pool) == 0 {
		p.scavenge()
	}
	if n := len(p.pool); n > 0 {
		f := p.pool[n-1]
		p.pool[n-1] = nil
		p.pool = p.pool[:n-1]
		*f = Inflight{}
		return f
	}
	return new(Inflight)
}

// recordRetired parks a committed or squashed record for later reuse.
func (p *Pipeline) recordRetired(f *Inflight) {
	if p.poolDisabled {
		return
	}
	p.retired = append(p.retired, f)
}

// scavenge moves retired records whose reuse window has passed into the
// pool. The scan is rate-limited by commit progress so a stalled window
// does not trigger a full scan per allocation.
func (p *Pipeline) scavenge() {
	if len(p.retired) == 0 || p.bufBase < p.scavengeAt {
		return
	}
	p.scavengeAt = p.bufBase + 64
	horizon := uint64(p.cfg.ROBSize) + 1
	w := p.retired[:0]
	for _, f := range p.retired {
		if f.pendingEvents == 0 && !f.HasLSQ && f.Seq()+horizon < p.bufBase {
			p.pool = append(p.pool, f)
			continue
		}
		w = append(w, f)
	}
	for i := len(w); i < len(p.retired); i++ {
		p.retired[i] = nil
	}
	p.retired = w
}

// NewShared is like New but reuses an existing hierarchy (warm caches).
func NewShared(cfg Config, stream prog.Stream, parker Parker, h *mem.Hierarchy) *Pipeline {
	p := New(cfg, stream, parker)
	p.Hier = h
	return p
}

// Cfg returns the configuration.
func (p *Pipeline) Cfg() *Config { return &p.cfg }

// ResetStats marks the warm-up/measured-region boundary: every statistic
// (occupancy integrals, counters, hierarchy and branch-predictor stats,
// and the Parker's, when it exposes ResetStats) is zeroed while all
// microarchitectural state — cache contents, predictor tables, in-flight
// instructions — is kept. Snapshot then reports the measured region only.
func (p *Pipeline) ResetStats() {
	p.baseCycles = p.now
	p.baseCommitted = p.committed
	p.OccIQ.Reset()
	p.OccROB.Reset()
	p.OccLQ.Reset()
	p.OccSQ.Reset()
	p.OccIntRF.Reset()
	p.OccFPRF.Reset()
	p.OccOutstanding.Reset()
	p.Counters = stats.NewSet()
	p.Issues, p.RFReads, p.RFWrites = 0, 0, 0
	p.Fetched, p.Dispatched, p.Squashes = 0, 0, 0
	p.renameStallReasons = [8]uint64{}
	p.Hier.ResetStats()
	p.BP.ResetStats()
	if r, ok := p.parker.(interface{ ResetStats() }); ok {
		r.ResetStats()
	}
}

// cancelPollCycles bounds how many cycles Run simulates between polls
// of the cancel channel. At typical simulation speed (a few million
// cycles per wall-clock second) 2048 cycles keeps the abort latency
// well under a millisecond while the per-cycle cost is a nil check and
// a mask compare — unmeasurable against the work of one Cycle.
const cancelPollCycles = 2048

// SetCancel arms an abort check: Run polls done (typically a
// context's Done channel) every cancelPollCycles cycles and returns
// early once it is closed, leaving the pipeline state intact and
// Aborted reporting true. A nil channel disables the check.
func (p *Pipeline) SetCancel(done <-chan struct{}) { p.cancelCh = done }

// Aborted reports whether a Run returned early because the cancel
// channel (see SetCancel) was closed.
func (p *Pipeline) Aborted() bool { return p.aborted }

// Now returns the current cycle.
func (p *Pipeline) Now() uint64 { return p.now }

// Committed returns the number of committed instructions.
func (p *Pipeline) Committed() uint64 { return p.committed }

// Parker returns the attached parking unit.
func (p *Pipeline) Parker() Parker { return p.parker }

// classRF returns the register file for an architectural register's class.
func (p *Pipeline) classRF(r isa.Reg) *RegFile {
	if r.IsFP() {
		return p.fpRF
	}
	return p.intRF
}

// SrcParked reports whether the latest writer of r is parked (the paper's
// RAT Parked bit).
func (p *Pipeline) SrcParked(r isa.Reg) bool { return p.rat.SrcParked(r) }

// ROBHeadSeq returns the oldest in-flight seq (never when empty).
func (p *Pipeline) ROBHeadSeq() uint64 {
	if h := p.rob.Head(); h != nil {
		return h.Seq()
	}
	return never
}

// ROBLen returns the ROB occupancy.
func (p *Pipeline) ROBLen() int { return p.rob.Len() }

// SecondLLSeq returns the sequence number of the second-oldest in-flight,
// incomplete long-latency instruction (never if fewer than two). The
// Non-Urgent wakeup policy wakes everything older than this (§3.2).
func (p *Pipeline) SecondLLSeq() uint64 {
	if len(p.llList) < 2 {
		return never
	}
	return p.llList[1].Seq()
}

// wakePace bounds how far past the last known stalling instruction the
// Non-Urgent wakeup may run when fewer than two long-latency instructions
// are in flight. Without pacing, a momentary dip in in-flight misses would
// flush the whole LTP into the IQ and register file at once, defeating the
// late allocation (the paper's policy implicitly paces through the ROB
// walk from the head).
const wakePace = 64

// WakeBound returns the sequence number below which parked Non-Urgent
// instructions should be woken this cycle: everything between the ROB head
// and the second in-flight long-latency instruction (§3.2), paced when
// fewer than two misses are outstanding.
func (p *Pipeline) WakeBound() uint64 {
	switch len(p.llList) {
	case 0:
		if h := p.rob.Head(); h != nil {
			return h.Seq() + wakePace
		}
		return p.bufBase + wakePace
	case 1:
		return p.llList[0].Seq() + wakePace
	default:
		return p.llList[1].Seq()
	}
}

// OldestLLSeq returns the oldest in-flight incomplete LL seq (never = none).
func (p *Pipeline) OldestLLSeq() uint64 {
	if len(p.llList) == 0 {
		return never
	}
	return p.llList[0].Seq()
}

// schedule pushes a timing event.
func (p *Pipeline) schedule(at uint64, f *Inflight, kind eventKind) {
	f.pendingEvents++
	p.events.push(event{at: at, seq: f.Seq(), f: f, kind: kind})
}

// Cycle advances the simulation one clock. Stage order is commit →
// (events) → issue → LTP wakeup → rename → fetch so same-cycle hand-off
// flows without intra-cycle hazards.
func (p *Pipeline) Cycle() {
	p.now++
	p.fus.resetCycle()
	p.Hier.Tick(p.now) // co-runner traffic shares the clock

	p.processEvents()
	p.releaseDrainedStores()
	p.commitStage()
	if p.wib != nil {
		p.wibCycle(p.now)
	}
	p.issueStage()
	p.renameStage() // includes LTP wakeup with priority
	p.fetchStage()

	p.parker.NoteCycle(p, p.now)
	p.sample()

	if p.cfg.WatchdogCycles > 0 && p.rob.Len() > 0 &&
		p.now-p.lastCommitCycle > p.cfg.WatchdogCycles {
		panic(fmt.Sprintf("pipeline: watchdog, no commit for %d cycles at cycle %d\n%s",
			p.cfg.WatchdogCycles, p.now, p.debugDump()))
	}
}

// processEvents applies all events due this cycle.
func (p *Pipeline) processEvents() {
	for len(p.events) > 0 && p.events[0].at <= p.now {
		ev := p.events.pop()
		f := ev.f
		f.pendingEvents--
		if f.Squashed {
			continue
		}
		switch ev.kind {
		case evDone:
			f.Done = true
			if f.HasDst() {
				p.RFWrites++
			}
			p.removeLL(f)
			if f.Mispred && f.Seq() == p.mispredSeq {
				p.mispredSeq = never
				p.fetchStallUntil = p.now
			}
			p.parker.NoteExecDone(p, f, p.now)
		case evStoreAddr:
			p.checkViolations(f)
		}
	}
}

// removeLL drops a completed instruction from the LL tracking list.
func (p *Pipeline) removeLL(f *Inflight) {
	if !f.LL {
		return
	}
	for i, e := range p.llList {
		if e == f {
			p.llList = append(p.llList[:i], p.llList[i+1:]...)
			return
		}
	}
}

// addLL inserts a detected long-latency instruction in program order.
func (p *Pipeline) addLL(f *Inflight) {
	p.llList = insertBySeq(p.llList, f)
}

// releaseDrainedStores frees SQ entries whose post-commit writeback is done.
func (p *Pipeline) releaseDrainedStores() {
	w, wa := p.drainQ[:0], p.drainAt[:0]
	for i, f := range p.drainQ {
		if p.drainAt[i] <= p.now {
			p.sq.Remove(f)
			f.HasLSQ = false
			continue
		}
		w = append(w, f)
		wa = append(wa, p.drainAt[i])
	}
	p.drainQ, p.drainAt = w, wa
}

// storeDrainLatency is the cycles between a store's commit and its SQ entry
// release (footnote 3: "shortly after they commit").
const storeDrainLatency = 4

// canCommit reports whether the ROB head can retire this cycle.
func (p *Pipeline) canCommit(f *Inflight) bool {
	if f.Parked {
		return false
	}
	if f.IsStore() {
		if f.AddrKnownAt == 0 || f.AddrKnownAt > p.now {
			return false
		}
		return p.storeDataReady(f, p.now)
	}
	return f.Done && f.DoneAt <= p.now
}

// storeDataReady reports whether the store's data operand is available,
// resolving a lazy link to a formerly-parked producer on the way.
func (p *Pipeline) storeDataReady(f *Inflight, now uint64) bool {
	if !f.U.Src2.Valid() {
		return true
	}
	if prod := f.SrcProd[1]; prod != nil {
		if prod.DstPreg == NoPReg {
			return false // producer still parked
		}
		f.SrcPreg[1] = prod.DstPreg
		f.SrcProd[1] = nil
	}
	pr := f.SrcPreg[1]
	if pr == NoPReg {
		return false
	}
	return p.classRF(f.U.Src2).Ready(pr, now)
}

// commitStage retires up to CommitWidth instructions in order.
func (p *Pipeline) commitStage() {
	for n := 0; n < p.cfg.CommitWidth; n++ {
		f := p.rob.Head()
		if f == nil || !p.canCommit(f) {
			return
		}
		f.Committed = true
		f.CommitAt = p.now

		if f.IsStore() {
			p.Hier.StoreCommit(f.U.Addr, p.now)
			f.Done = true
			f.DoneAt = p.now
			p.ssets.OnComplete(f)
			if f.HasLSQ {
				p.drainQ = append(p.drainQ, f)
				p.drainAt = append(p.drainAt, p.now+storeDrainLatency)
			}
		}
		if f.IsLoad() && f.HasLSQ {
			p.lq.Remove(f)
			f.HasLSQ = false
		}
		if f.HasDst() {
			if f.DstPreg == NoPReg {
				panic("pipeline: committing instruction without a physical register: " + f.String())
			}
			prev := p.rat.CommitMapping(f.U.Dst, f.DstPreg)
			p.classRF(f.U.Dst).Free(prev)
		}
		p.parker.NoteCommit(p, f, p.now)
		if p.TraceSink != nil {
			p.TraceSink(f)
		}

		p.rob.PopHead()
		// Retire from the replay buffer.
		if p.bufBase != f.Seq() {
			panic(fmt.Sprintf("pipeline: replay buffer head %d != committing seq %d", p.bufBase, f.Seq()))
		}
		p.bufHead++
		p.bufBase++
		// Compact the dead prefix in place once it dominates the buffer;
		// the array is reused so steady-state fetch allocates nothing.
		if p.bufHead >= 1024 && 2*p.bufHead >= len(p.fetchBuf) {
			n := copy(p.fetchBuf, p.fetchBuf[p.bufHead:])
			p.fetchBuf = p.fetchBuf[:n]
			p.fetchPos -= p.bufHead
			p.bufHead = 0
		}

		p.committed++
		p.lastCommitCycle = p.now
		p.recordRetired(f)
	}
}

// mustPredictor builds the configured branch predictor; Config.Validate
// has already checked the name, so failure here is a programmer error.
func mustPredictor(name string) bpred.Predictor {
	bp, err := bpred.New(name)
	if err != nil {
		panic("pipeline: " + err.Error())
	}
	return bp
}
