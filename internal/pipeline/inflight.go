package pipeline

import (
	"fmt"

	"ltp/internal/isa"
	"ltp/internal/mem"
)

// PReg identifies a physical register within its class's register file.
type PReg int32

// NoPReg marks an unallocated physical register (e.g. a parked
// instruction's destination before it leaves LTP).
const NoPReg PReg = -1

// TicketMask is a bit set over up to 128 long-latency tickets (paper
// Appendix, Fig. 11 sweeps 4..128 tickets). The pipeline treats it as
// opaque; internal/core interprets it.
type TicketMask [2]uint64

// Empty reports whether no tickets are set.
func (t TicketMask) Empty() bool { return t[0] == 0 && t[1] == 0 }

// Set sets ticket i.
func (t *TicketMask) Set(i int) { t[i>>6] |= 1 << uint(i&63) }

// Clear clears ticket i.
func (t *TicketMask) Clear(i int) { t[i>>6] &^= 1 << uint(i&63) }

// Has reports whether ticket i is set.
func (t TicketMask) Has(i int) bool { return t[i>>6]&(1<<uint(i&63)) != 0 }

// Or merges another mask in.
func (t *TicketMask) Or(o TicketMask) { t[0] |= o[0]; t[1] |= o[1] }

// Count returns the number of set tickets.
func (t TicketMask) Count() int { return popcount(t[0]) + popcount(t[1]) }

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Inflight is one dynamic instruction in flight between rename and commit.
// The pipeline allocates one per dispatched µop; pointers to it live in the
// ROB, IQ, LQ/SQ and (when parked) the LTP.
type Inflight struct {
	U isa.Uop

	// Timeline (cycle numbers; zero means "not yet").
	FetchedAt uint64
	RenamedAt uint64
	IssuedAt  uint64
	DoneAt    uint64
	CommitAt  uint64

	// Rename state.
	DstPreg PReg         // NoPReg while parked with deferred allocation
	SrcPreg [2]PReg      // NoPReg when the producer is parked
	SrcProd [2]*Inflight // producer link used to resolve a parked source
	// SrcWriter tracks each source's producing instruction regardless of
	// parking (nil = architectural value); used by the WIB baseline.
	SrcWriter [2]*Inflight

	// Classification (written by the Parker; pipeline reads for stats).
	Urgent   bool
	NonReady bool
	PredLL   bool // predicted long-latency at rename
	Tickets  TicketMask

	// Parking state.
	Parked    bool // currently in the LTP
	WasParked bool // was ever parked (stats)

	// Memory state.
	HasLSQ      bool      // occupies its LQ/SQ entry
	AddrKnownAt uint64    // cycle the AGU resolved the address (0 = not yet)
	MemDone     uint64    // cycle load data is available
	MemLevel    mem.Level // hierarchy level that served the access
	Forwarded   bool      // load got its data from an older store
	DepStore    *Inflight // store this load is predicted to depend on

	// Execution state.
	InIQ      bool
	Issued    bool
	Done      bool
	Committed bool
	Squashed  bool

	// LL marks a detected long-latency instruction (LLC-missing load,
	// divide, square root).
	LL bool

	// Mispred marks a branch the front-end mispredicted: fetch is stalled
	// until it resolves.
	Mispred bool

	// blockedUntil is an IQ scheduling hint: do not reconsider the entry
	// before this cycle (set when a load must wait for disambiguation).
	blockedUntil uint64

	// wibResident marks an instruction currently drained into the WIB
	// baseline's buffer.
	wibResident bool

	// pendingEvents counts timing events in the event heap that still
	// reference this record; the record pool must not recycle it before
	// they fire (a stale event firing on a reused record would corrupt an
	// unrelated instruction).
	pendingEvents int8
}

// Seq returns the dynamic sequence number.
func (f *Inflight) Seq() uint64 { return f.U.Seq }

// IsLoad reports whether the instruction is a load.
func (f *Inflight) IsLoad() bool { return f.U.Op == isa.Load }

// IsStore reports whether the instruction is a store.
func (f *Inflight) IsStore() bool { return f.U.Op == isa.Store }

// HasDst reports whether the instruction writes a register.
func (f *Inflight) HasDst() bool { return f.U.Dst.Valid() }

// String renders a diagnostic summary.
func (f *Inflight) String() string {
	st := "disp"
	switch {
	case f.Committed:
		st = "commit"
	case f.Done:
		st = "done"
	case f.Issued:
		st = "issued"
	case f.Parked:
		st = "parked"
	case f.InIQ:
		st = "iq"
	}
	return fmt.Sprintf("{%s %s U=%v NR=%v LL=%v}", f.U.String(), st, f.Urgent, f.NonReady, f.LL)
}
