package pipeline

import (
	"fmt"
	"strings"

	"ltp/internal/isa"
)

// srcReady reports whether source i's value is available at cycle now.
// Sources produced by parked instructions resolve lazily: the operand link
// upgrades to a physical register once the producer leaves the LTP.
func (p *Pipeline) srcReady(f *Inflight, i int, now uint64) bool {
	var r isa.Reg
	if i == 0 {
		r = f.U.Src1
	} else {
		r = f.U.Src2
	}
	if !r.Valid() {
		return true
	}
	if prod := f.SrcProd[i]; prod != nil {
		if prod.DstPreg == NoPReg {
			return false // producer still parked
		}
		f.SrcPreg[i] = prod.DstPreg
		f.SrcProd[i] = nil
	}
	pr := f.SrcPreg[i]
	if pr == NoPReg {
		panic("pipeline: unresolved source on instruction: " + f.String())
	}
	return p.classRF(r).Ready(pr, now)
}

// issueStage selects up to IssueWidth ready instructions, oldest first, and
// begins their execution. IQ entries are freed at issue (paper §3.1).
func (p *Pipeline) issueStage() {
	issued := 0
	for _, f := range p.iq.Candidates(p.now) {
		if issued >= p.cfg.IssueWidth {
			break
		}
		// Stores only need their address operand to issue (split
		// store-address/store-data semantics); everything else needs all
		// sources.
		if !p.srcReady(f, 0, p.now) {
			continue
		}
		if !f.IsStore() && !p.srcReady(f, 1, p.now) {
			continue
		}
		if !p.fus.canIssue(f.U.Op, p.now) {
			continue
		}
		switch {
		case f.IsLoad():
			if !p.tryIssueLoad(f) {
				continue
			}
		case f.IsStore():
			p.issueStore(f)
		default:
			p.issueALU(f)
		}
		p.iq.Remove(f)
		f.Issued = true
		f.IssuedAt = p.now
		p.fus.issue(f.U.Op, p.now)
		p.Issues++
		p.RFReads += uint64(validSrcs(f))
		issued++
	}
}

func validSrcs(f *Inflight) int {
	n := 0
	if f.U.Src1.Valid() {
		n++
	}
	if f.U.Src2.Valid() {
		n++
	}
	return n
}

// issueALU starts a non-memory operation.
func (p *Pipeline) issueALU(f *Inflight) {
	lat := uint64(isa.Latency[f.U.Op])
	f.DoneAt = p.now + lat
	if f.HasDst() {
		p.classRF(f.U.Dst).SetReady(f.DstPreg, f.DoneAt)
	}
	if f.U.Op.IsLongLatencyALU() && !f.LL {
		f.LL = true
		p.addLL(f)
	}
	p.schedule(f.DoneAt, f, evDone)
}

// issueStore starts a store's address generation. Data may arrive later;
// commit waits for it. The violation scan runs when the address resolves.
func (p *Pipeline) issueStore(f *Inflight) {
	f.AddrKnownAt = p.now + 1
	f.DoneAt = f.AddrKnownAt
	p.schedule(f.AddrKnownAt, f, evStoreAddr)
}

// tryIssueLoad attempts to issue a load: memory disambiguation, then
// store→load forwarding or a cache access. Returns false when the load
// must stay in the IQ (sets blockedUntil for the retry).
func (p *Pipeline) tryIssueLoad(f *Inflight) bool {
	now := p.now

	// Predicted dependence on a specific in-flight store (store sets).
	if dep := f.DepStore; dep != nil && !dep.Committed && !dep.Squashed {
		if dep.AddrKnownAt == 0 || dep.AddrKnownAt > now {
			f.blockedUntil = now + 2
			return false
		}
	}

	// A parked older store with a conflicting address forces a wait
	// (limit-study late LSQ allocation; §5.3's memory dependence rule).
	if p.parker.ParkedStoreConflict(f.U.Addr, f.Seq()) {
		f.blockedUntil = now + 2
		return false
	}

	// Walk older stores in the SQ, youngest first.
	var fwd *Inflight
	unresolved := false
	for i := len(p.sq.entries) - 1; i >= 0; i-- {
		st := p.sq.entries[i]
		if st.Seq() >= f.Seq() {
			continue
		}
		if st.AddrKnownAt == 0 || st.AddrKnownAt > now {
			if st.Committed {
				continue
			}
			unresolved = true
			if p.cfg.MemDep == MemDepConservative {
				f.blockedUntil = now + 2
				return false
			}
			if p.cfg.MemDep == MemDepOracle && st.U.Addr == f.U.Addr {
				f.blockedUntil = now + 2
				return false
			}
			continue
		}
		if st.U.Addr == f.U.Addr {
			fwd = st
			break
		}
	}
	_ = unresolved // store-set mode speculates past unresolved stores

	if fwd != nil {
		// Same-address older store with a resolved address: forward when
		// its data is ready, otherwise wait for the data.
		if !p.storeDataReady(fwd, now) {
			f.blockedUntil = now + 2
			return false
		}
		f.Forwarded = true
		f.MemDone = now + 1 + 2 // AGU + forwarding latency
		f.MemLevel = 0
	} else {
		res, ok := p.Hier.Load(f.U.PC, f.U.Addr, now+1)
		if !ok {
			f.blockedUntil = now + 2 // MSHRs full
			return false
		}
		f.MemDone = res.Avail
		f.MemLevel = res.Level
	}

	f.AddrKnownAt = now + 1
	f.DoneAt = f.MemDone
	if f.HasDst() {
		p.classRF(f.U.Dst).SetReady(f.DstPreg, f.MemDone)
	}
	if f.MemDone-now > p.cfg.LLThreshold && !f.LL {
		f.LL = true
		p.addLL(f)
	}
	p.parker.NoteLoadIssued(p, f, now)
	p.schedule(f.DoneAt, f, evDone)
	return true
}

// checkViolations runs when a store's address resolves: any younger load
// that already executed with the same address read stale data and must be
// squashed (store-set training).
func (p *Pipeline) checkViolations(st *Inflight) {
	if st.Squashed {
		return
	}
	var victim *Inflight
	for _, ld := range p.lq.entries {
		if ld.Seq() <= st.Seq() || !ld.Issued || ld.Squashed {
			continue
		}
		if ld.U.Addr == st.U.Addr && ld.IssuedAt < st.AddrKnownAt && !ld.Forwarded {
			if victim == nil || ld.Seq() < victim.Seq() {
				victim = ld
			}
		}
	}
	if victim != nil {
		p.ssets.OnViolation(st, victim)
		p.squash(victim.Seq())
	}
}

// squash flushes every instruction with seq >= fromSeq and restarts fetch
// from the replay buffer.
func (p *Pipeline) squash(fromSeq uint64) {
	p.Squashes++
	victims := p.rob.SquashFrom(fromSeq)
	for _, f := range victims {
		f.Squashed = true
		if f.DstPreg != NoPReg && f.HasDst() {
			p.classRF(f.U.Dst).Free(f.DstPreg)
			f.DstPreg = NoPReg
		}
		f.InIQ = false
		f.HasLSQ = false
		p.removeLL(f)
		p.recordRetired(f)
	}
	p.iq.SquashFrom(fromSeq)
	p.lq.SquashFrom(fromSeq)
	p.sq.SquashFrom(fromSeq)
	p.ssets.OnSquash(fromSeq)
	p.parker.NoteSquash(p, fromSeq, p.now)

	// Rebuild the speculative RAT from the committed state plus the
	// surviving in-flight writers, oldest to youngest.
	p.rat.RestoreFromCommit()
	p.rob.Walk(func(f *Inflight) {
		if !f.HasDst() {
			return
		}
		if f.Parked && f.DstPreg == NoPReg {
			p.rat.WriteParked(f.U.Dst, f)
		} else {
			p.rat.WritePhysBy(f.U.Dst, f.DstPreg, f)
		}
	})
	if p.wib != nil {
		p.wibSquash(fromSeq)
	}

	// Restart the front end at the squash point.
	p.pending = nil
	p.decodeQ = p.decodeQ[:0]
	p.decodeHead = 0
	p.fetchPos = p.bufHead + int(fromSeq-p.bufBase)
	p.lastFetchLine = ^uint64(0)
	if p.mispredSeq != never && p.mispredSeq >= fromSeq {
		p.mispredSeq = never
	}
	p.fetchStallUntil = p.now + p.cfg.FrontEndDepth
}

// renameStage performs LTP wakeup (priority) then renames/dispatches new
// instructions from the decode queue.
func (p *Pipeline) renameStage() {
	budget := p.cfg.RenameWidth

	// LTP wakeup first (paper §5.4: prioritize renaming from LTP).
	// Pressure means commits are blocked by the LTP itself: the pipeline
	// is stalled on a commit-freed resource while the ROB head is still
	// parked. A stall alone is not pressure — commits free resources on
	// their own, and draining the LTP early would defeat late allocation.
	// The lastCommitCycle clause is a liveness valve: if the head stays
	// parked with commits stopped for a long time, force its release.
	pressure := p.resourceStall
	if h := p.rob.Head(); h == nil || !h.Parked {
		pressure = false
	} else if p.now > p.lastCommitCycle+128 {
		pressure = true
	}
	budget -= p.parker.Wake(p, p.now, budget, pressure)
	p.resourceStall = false

	for budget > 0 {
		if p.pending == nil {
			if p.decodeHead >= len(p.decodeQ) || p.decodeQ[p.decodeHead].readyAt > p.now {
				break
			}
			if p.rob.Full() {
				p.noteStall(stallROB)
				break
			}
			d := &p.decodeQ[p.decodeHead]
			f := p.allocInflight()
			f.U = d.u
			f.FetchedAt = d.readyAt - p.cfg.FrontEndDepth
			f.RenamedAt = p.now
			f.DstPreg = NoPReg
			f.SrcPreg = [2]PReg{NoPReg, NoPReg}
			f.Mispred = d.mispred
			p.decodeHead++
			// Classification runs exactly once per dynamic instruction;
			// structural stalls retry the dispatch without re-classifying.
			p.parker.OnRename(p, f, p.now)
			p.pending = f
			p.pendingParked = p.parker.ShouldPark(p, f, p.now)
		}
		f := p.pending
		if p.rob.Full() {
			p.noteStall(stallROB)
			break
		}
		if p.pendingParked {
			if !p.dispatchParked(f) {
				break
			}
		} else if !p.dispatchNormal(f) {
			break
		}
		f.RenamedAt = p.now
		p.pending = nil
		p.Dispatched++
		budget--
	}
	// Compact the consumed prefix in place so the array is reused.
	switch {
	case p.decodeHead >= len(p.decodeQ):
		p.decodeQ = p.decodeQ[:0]
		p.decodeHead = 0
	case p.decodeHead >= p.decodeQCap:
		n := copy(p.decodeQ, p.decodeQ[p.decodeHead:])
		p.decodeQ = p.decodeQ[:n]
		p.decodeHead = 0
	}
}

// noteStall records a rename stall reason. Stalls on commit-freed
// resources (ROB, registers, LQ, SQ) flag resource pressure so the Parker
// releases its oldest instruction (§5.4); stalls on the LTP itself or the
// IQ do not — the LTP drains by its wakeup policy and the IQ by issue.
func (p *Pipeline) noteStall(reason int) {
	p.renameStallReasons[reason]++
	if p.parker.ParkedCount() == 0 {
		return
	}
	switch reason {
	case stallROB, stallRegs, stallLQ, stallSQ:
		p.resourceStall = true
	}
}

// resolveSources fills SrcPreg/SrcProd from the RAT.
func (p *Pipeline) resolveSources(f *Inflight) {
	srcs := [2]isa.Reg{f.U.Src1, f.U.Src2}
	for i, r := range srcs {
		if !r.Valid() {
			continue
		}
		preg, prod := p.rat.Lookup(r)
		if prod != nil {
			f.SrcProd[i] = prod
		} else {
			f.SrcPreg[i] = preg
		}
		f.SrcWriter[i] = p.rat.Writer(r)
	}
}

// dispatchParked sends an instruction to the LTP. Returns false to stall.
func (p *Pipeline) dispatchParked(f *Inflight) bool {
	if !p.parker.CanAccept(p.now) {
		p.noteStall(stallLTP)
		return false
	}
	// The realistic design still allocates LQ/SQ at dispatch (§4.3); the
	// limit study defers it (LateLSQAlloc).
	if !p.cfg.LateLSQAlloc && f.U.Op.IsMem() {
		if !p.allocLSQ(f, true) {
			return false
		}
	}
	p.resolveSources(f)
	f.Parked = true
	f.WasParked = true
	if f.HasDst() {
		p.rat.WriteParked(f.U.Dst, f)
	}
	p.rob.Push(f)
	p.parker.Park(p, f, p.now)
	return true
}

// PredictedDepStore returns the in-flight store the dependence predictor
// associates with this load, without registering it (used by the Parker's
// §5.3 check before dispatch).
func (p *Pipeline) PredictedDepStore(f *Inflight) *Inflight {
	if !f.IsLoad() {
		return nil
	}
	return p.ssets.DependencyFor(f)
}

// dispatchNormal renames and dispatches into the IQ. Returns false to stall.
func (p *Pipeline) dispatchNormal(f *Inflight) bool {
	iqReserve := 0
	if p.parker.ParkedCount() > 0 || (p.wib != nil && p.wib.Len() > 0) {
		iqReserve = p.cfg.ParkReserveIQ
	}
	if p.iq.Cap()-p.iq.Len() <= iqReserve {
		p.noteStall(stallIQ)
		return false
	}
	if f.U.Op.IsMem() && !p.allocLSQCheck(f, false) {
		return false
	}
	if f.HasDst() {
		rf := p.classRF(f.U.Dst)
		free := rf.FreeCount()
		if free == 0 || (p.parker.ParkedCount() > 0 && free <= p.cfg.ParkReserveRegs) {
			p.noteStall(stallRegs)
			return false
		}
		preg, _ := rf.Alloc()
		f.DstPreg = preg
	}
	// Sources written by parked producers become lazy links, resolved by
	// srcReady when the producer leaves the LTP. (Only instructions the
	// Parker declined to force-park carry such links — typically Urgent
	// instructions whose producer was parked before the UIT learned the
	// chain.)
	p.resolveSources(f)
	if f.HasDst() {
		p.rat.WritePhysBy(f.U.Dst, f.DstPreg, f)
	}
	if f.U.Op.IsMem() {
		p.insertLSQ(f)
	}
	p.rob.Push(f)
	p.iq.Insert(f)
	return true
}

// allocLSQCheck verifies LQ/SQ space for a non-parked memory op, honoring
// the reservation for parked instructions.
func (p *Pipeline) allocLSQCheck(f *Inflight, parked bool) bool {
	if f.IsLoad() {
		reserve := 0
		if !parked && p.parker.ParkedCount() > 0 {
			reserve = p.cfg.ParkReserveLQ
		}
		if p.lq.FreeSlots() <= reserve {
			p.noteStall(stallLQ)
			return false
		}
		return true
	}
	reserve := 0
	if !parked && p.parker.ParkedCount() > 0 {
		reserve = p.cfg.ParkReserveSQ
	}
	if p.sq.FreeSlots() <= reserve {
		p.noteStall(stallSQ)
		return false
	}
	return true
}

// allocLSQ checks and inserts in one step (parked dispatch path).
func (p *Pipeline) allocLSQ(f *Inflight, parked bool) bool {
	if f.IsLoad() {
		if p.lq.Full() {
			p.noteStall(stallLQ)
			return false
		}
	} else if p.sq.Full() {
		p.noteStall(stallSQ)
		return false
	}
	_ = parked
	p.insertLSQ(f)
	return true
}

// insertLSQ places a memory op in its queue and runs dependence-predictor
// bookkeeping.
func (p *Pipeline) insertLSQ(f *Inflight) {
	if f.IsLoad() {
		p.lq.Insert(f)
		f.DepStore = p.ssets.DependencyFor(f)
	} else {
		p.sq.Insert(f)
		p.ssets.OnDispatchStore(f)
	}
	f.HasLSQ = true
}

// unparkFloor is the resource slack non-oldest unparks must leave behind.
// The oldest parked instruction may consume the last register/LQ/SQ entry
// (it commits before every other parked instruction, so it always frees
// resources); younger ones must not starve it — in-order commit would
// otherwise deadlock with younger unparked instructions holding the last
// resources while an older parked instruction waits for one.
const unparkFloor = 2

// CanUnpark reports whether the pipeline can absorb a parked instruction
// this cycle (IQ slot, physical register, LSQ entry if deferred). oldest
// marks the oldest parked instruction, which may dig into the reserved
// slack.
func (p *Pipeline) CanUnpark(f *Inflight, oldest bool) bool {
	floor := unparkFloor
	if oldest {
		floor = 0
	}
	if p.iq.Full() {
		return false
	}
	if f.HasDst() && p.classRF(f.U.Dst).FreeCount() <= floor {
		return false
	}
	if p.cfg.LateLSQAlloc && f.U.Op.IsMem() && !f.HasLSQ {
		if f.IsLoad() && p.lq.FreeSlots() <= floor {
			return false
		}
		if f.IsStore() && p.sq.FreeSlots() <= floor {
			return false
		}
	}
	return true
}

// Unpark performs the late rename of an instruction leaving the LTP (the
// paper's RAT-LTP) and inserts it into the IQ. The caller must have
// checked CanUnpark.
func (p *Pipeline) Unpark(f *Inflight, now uint64) {
	if f.HasDst() {
		preg, ok := p.classRF(f.U.Dst).Alloc()
		if !ok {
			panic("pipeline: Unpark without a free register (CanUnpark not checked)")
		}
		f.DstPreg = preg
		p.rat.ResolveParked(f.U.Dst, f, preg)
	}
	// Resolve sources produced by previously-parked instructions: LTP
	// leaves in an order where producers depart no later than consumers,
	// so their registers are known by now.
	for i := range f.SrcProd {
		if prod := f.SrcProd[i]; prod != nil {
			if prod.DstPreg == NoPReg {
				panic(fmt.Sprintf("pipeline: unparking %s before its producer %s", f.String(), prod.String()))
			}
			f.SrcPreg[i] = prod.DstPreg
			f.SrcProd[i] = nil
		}
	}
	f.Parked = false
	if p.cfg.LateLSQAlloc && f.U.Op.IsMem() && !f.HasLSQ {
		p.insertLSQ(f)
	}
	p.iq.Insert(f)
}

// fetchStage pulls µops from the replay buffer / emulator into the decode
// queue, modelling I-cache latency, taken-branch fetch breaks, and
// misprediction stalls.
func (p *Pipeline) fetchStage() {
	if p.now < p.fetchStallUntil || p.mispredSeq != never {
		return
	}
	for budget := p.cfg.FetchWidth; budget > 0; budget-- {
		if len(p.decodeQ)-p.decodeHead >= p.decodeQCap {
			return
		}
		u, ok := p.peekFetch()
		if !ok {
			return
		}
		// Instruction cache: one access per new line.
		lineA := u.PC >> 6
		if lineA != p.lastFetchLine {
			res := p.Hier.FetchInst(u.PC, p.now)
			p.lastFetchLine = lineA
			if res.Avail > p.now+p.Hier.Config().L1Latency {
				p.fetchStallUntil = res.Avail
				return
			}
		}

		d := decoded{u: *u, readyAt: p.now + p.cfg.FrontEndDepth}
		if u.Op == isa.Branch {
			correct := p.predictBranch(u)
			if !correct {
				d.mispred = true
			}
		}
		p.decodeQ = append(p.decodeQ, d)
		p.fetchPos++
		p.Fetched++

		if u.Op == isa.Branch {
			if d.mispred {
				p.mispredSeq = u.Seq
				p.fetchStallUntil = never
				return
			}
			if u.Taken {
				p.lastFetchLine = ^uint64(0) // redirect: next fetch touches a new line
				return                       // taken-branch fetch break
			}
		}
	}
}

// peekFetch returns the next µop to fetch without consuming it, pulling
// from the emulator into the replay buffer as needed.
func (p *Pipeline) peekFetch() (*isa.Uop, bool) {
	if p.fetchPos < len(p.fetchBuf) {
		return &p.fetchBuf[p.fetchPos], true
	}
	if p.streamDone {
		return nil, false
	}
	var u isa.Uop
	if !p.stream.Next(&u) {
		p.streamDone = true
		return nil, false
	}
	if p.bufHead == len(p.fetchBuf) {
		// Logically empty: (re)anchor the base seq. This matters on the
		// first fetch after a functional warm-up consumed a stream prefix.
		p.bufBase = u.Seq
	}
	p.fetchBuf = append(p.fetchBuf, u)
	return &p.fetchBuf[p.fetchPos], true
}

// predictBranch consults the predictor, training only the first time a
// branch seq is seen (replays after squashes re-predict without
// re-training the statistics).
func (p *Pipeline) predictBranch(u *isa.Uop) bool {
	if u.Seq >= p.trainedSeq {
		p.trainedSeq = u.Seq + 1
		return p.BP.Lookup(u.PC, u.Taken, u.Target)
	}
	return p.BP.PredictOnly(u.PC, u.Taken, u.Target)
}

// sample integrates per-cycle occupancies for the paper's Fig. 1c/7 style
// statistics.
func (p *Pipeline) sample() {
	p.OccIQ.Add(float64(p.iq.Len()))
	p.OccROB.Add(float64(p.rob.Len()))
	p.OccLQ.Add(float64(p.lq.Len()))
	p.OccSQ.Add(float64(p.sq.Len()))
	p.OccIntRF.Add(float64(p.intRF.InUse()))
	p.OccFPRF.Add(float64(p.fpRF.InUse()))
	p.OccOutstanding.Add(float64(p.Hier.OutstandingDemand(p.now)))
}

// Run simulates until maxInsts have committed, the program ends, or
// maxCycles elapse (0 = no cycle cap). It returns the number of committed
// instructions. When a cancel channel is armed (SetCancel), Run also
// returns — promptly, within cancelPollCycles cycles — once that channel
// closes, with Aborted reporting true.
func (p *Pipeline) Run(maxInsts uint64, maxCycles uint64) uint64 {
	for p.committed < maxInsts {
		if maxCycles > 0 && p.now >= maxCycles {
			break
		}
		if p.streamDone && p.rob.Len() == 0 && len(p.decodeQ) == 0 && p.fetchPos >= len(p.fetchBuf) {
			break
		}
		if p.cancelCh != nil && p.now%cancelPollCycles == 0 {
			select {
			case <-p.cancelCh:
				p.aborted = true
				return p.committed
			default:
			}
		}
		p.Cycle()
	}
	return p.committed
}

// debugDump renders pipeline state for watchdog panics.
func (p *Pipeline) debugDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%d committed=%d rob=%d iq=%d lq=%d sq=%d parked=%d intRF.free=%d fpRF.free=%d\n",
		p.now, p.committed, p.rob.Len(), p.iq.Len(), p.lq.Len(), p.sq.Len(),
		p.parker.ParkedCount(), p.intRF.FreeCount(), p.fpRF.FreeCount())
	if h := p.rob.Head(); h != nil {
		fmt.Fprintf(&b, "rob head: %s addrKnown=%d done=%v doneAt=%d\n", h.String(), h.AddrKnownAt, h.Done, h.DoneAt)
	}
	n := 0
	p.rob.Walk(func(f *Inflight) {
		if n < 16 {
			fmt.Fprintf(&b, "  %s\n", f.String())
		}
		n++
	})
	return b.String()
}
