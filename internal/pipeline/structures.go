package pipeline

// insertBySeq places f at its program-order position in a seq-sorted
// slice. The common case — inserting the youngest instruction — costs a
// plain append.
func insertBySeq(s []*Inflight, f *Inflight) []*Inflight {
	n := len(s)
	if n == 0 || s[n-1].Seq() < f.Seq() {
		return append(s, f)
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid].Seq() > f.Seq() {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s = append(s, nil)
	copy(s[lo+1:], s[lo:])
	s[lo] = f
	return s
}

// ROB is the reorder buffer: a bounded FIFO of in-flight instructions in
// program order. It is consumed from a head index and compacted in place,
// so the steady state allocates nothing.
type ROB struct {
	entries []*Inflight
	head    int
	size    int
	scratch []*Inflight // reused squash-victim buffer
}

// NewROB returns a ROB with the given capacity.
func NewROB(size int) *ROB {
	return &ROB{size: size, entries: make([]*Inflight, 0, 2*size)}
}

// Full reports whether dispatch must stall.
func (r *ROB) Full() bool { return len(r.entries)-r.head >= r.size }

// Len returns the current occupancy.
func (r *ROB) Len() int { return len(r.entries) - r.head }

// Cap returns the capacity.
func (r *ROB) Cap() int { return r.size }

// Push appends a dispatched instruction.
func (r *ROB) Push(f *Inflight) { r.entries = append(r.entries, f) }

// Head returns the oldest in-flight instruction (nil when empty).
func (r *ROB) Head() *Inflight {
	if r.head >= len(r.entries) {
		return nil
	}
	return r.entries[r.head]
}

// PopHead removes the oldest instruction (after commit).
func (r *ROB) PopHead() {
	r.entries[r.head] = nil
	r.head++
	switch {
	case r.head >= len(r.entries):
		r.entries = r.entries[:0]
		r.head = 0
	case r.head >= r.size:
		n := copy(r.entries, r.entries[r.head:])
		for i := n; i < len(r.entries); i++ {
			r.entries[i] = nil
		}
		r.entries = r.entries[:n]
		r.head = 0
	}
}

// SquashFrom removes all instructions with seq >= fromSeq (youngest first)
// and returns them for resource reclamation. The returned slice is reused
// across calls.
func (r *ROB) SquashFrom(fromSeq uint64) []*Inflight {
	cut := len(r.entries)
	for cut > r.head && r.entries[cut-1].Seq() >= fromSeq {
		cut--
	}
	r.scratch = append(r.scratch[:0], r.entries[cut:]...)
	for i := cut; i < len(r.entries); i++ {
		r.entries[i] = nil
	}
	r.entries = r.entries[:cut]
	return r.scratch
}

// Walk calls fn on every in-flight instruction, oldest first.
func (r *ROB) Walk(fn func(*Inflight)) {
	for _, f := range r.entries[r.head:] {
		fn(f)
	}
}

// IQ is the unified instruction queue. Entries are kept sorted by sequence
// number so the age-prioritized select scan needs no per-cycle sort:
// dispatch appends (new instructions are always youngest) and LTP wakeup
// re-inserts older instructions at their program-order slot.
type IQ struct {
	entries []*Inflight
	size    int
	scratch []*Inflight
}

// NewIQ returns an IQ with the given capacity.
func NewIQ(size int) *IQ { return &IQ{size: size} }

// Full reports whether dispatch must stall.
func (q *IQ) Full() bool { return len(q.entries) >= q.size }

// Len returns the occupancy.
func (q *IQ) Len() int { return len(q.entries) }

// Cap returns the capacity.
func (q *IQ) Cap() int { return q.size }

// Insert adds an instruction at its program-order position (dispatch or
// LTP wakeup).
func (q *IQ) Insert(f *Inflight) {
	f.InIQ = true
	q.entries = insertBySeq(q.entries, f)
}

// Remove drops an issued or squashed instruction, preserving order.
func (q *IQ) Remove(f *Inflight) {
	for i, e := range q.entries {
		if e == f {
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			f.InIQ = false
			return
		}
	}
}

// SquashFrom drops all entries with seq >= fromSeq.
func (q *IQ) SquashFrom(fromSeq uint64) {
	w := q.entries[:0]
	for _, e := range q.entries {
		if e.Seq() >= fromSeq {
			e.InIQ = false
			continue
		}
		w = append(w, e)
	}
	q.entries = w
}

// Candidates returns entries not blocked before cycle now, oldest first.
// The returned slice is reused across calls; entries are already in
// program order so no sorting happens here (this used to be the single
// hottest spot of the whole simulator).
func (q *IQ) Candidates(now uint64) []*Inflight {
	q.scratch = q.scratch[:0]
	for _, e := range q.entries {
		if e.blockedUntil <= now {
			q.scratch = append(q.scratch, e)
		}
	}
	return q.scratch
}

// orderedQueue is a program-ordered bounded queue used for the LQ and SQ.
// Entries may be inserted out of program order (late LSQ allocation in the
// limit study) so insertion keeps the slice sorted by seq.
type orderedQueue struct {
	entries []*Inflight
	size    int
}

func newOrderedQueue(size int) *orderedQueue { return &orderedQueue{size: size} }

// Full reports whether the queue is at capacity.
func (o *orderedQueue) Full() bool { return len(o.entries) >= o.size }

// Len returns the occupancy.
func (o *orderedQueue) Len() int { return len(o.entries) }

// Cap returns the capacity.
func (o *orderedQueue) Cap() int { return o.size }

// FreeSlots returns the number of unused entries.
func (o *orderedQueue) FreeSlots() int { return o.size - len(o.entries) }

// Insert places f at its program-order position.
func (o *orderedQueue) Insert(f *Inflight) {
	o.entries = insertBySeq(o.entries, f)
}

// Remove drops f.
func (o *orderedQueue) Remove(f *Inflight) {
	for i, e := range o.entries {
		if e == f {
			o.entries = append(o.entries[:i], o.entries[i+1:]...)
			return
		}
	}
}

// SquashFrom drops all entries with seq >= fromSeq.
func (o *orderedQueue) SquashFrom(fromSeq uint64) {
	w := o.entries[:0]
	for _, e := range o.entries {
		if e.Seq() < fromSeq {
			w = append(w, e)
		}
	}
	o.entries = w
}

// Walk calls fn oldest-first.
func (o *orderedQueue) Walk(fn func(*Inflight)) {
	for _, e := range o.entries {
		fn(e)
	}
}
