package pipeline

import "sort"

// ROB is the reorder buffer: a bounded FIFO of in-flight instructions in
// program order.
type ROB struct {
	entries []*Inflight
	size    int
}

// NewROB returns a ROB with the given capacity.
func NewROB(size int) *ROB { return &ROB{size: size} }

// Full reports whether dispatch must stall.
func (r *ROB) Full() bool { return len(r.entries) >= r.size }

// Len returns the current occupancy.
func (r *ROB) Len() int { return len(r.entries) }

// Cap returns the capacity.
func (r *ROB) Cap() int { return r.size }

// Push appends a dispatched instruction.
func (r *ROB) Push(f *Inflight) { r.entries = append(r.entries, f) }

// Head returns the oldest in-flight instruction (nil when empty).
func (r *ROB) Head() *Inflight {
	if len(r.entries) == 0 {
		return nil
	}
	return r.entries[0]
}

// PopHead removes the oldest instruction (after commit).
func (r *ROB) PopHead() {
	r.entries[0] = nil
	r.entries = r.entries[1:]
	// Re-slice from a fresh array occasionally to avoid unbounded growth.
	if cap(r.entries) > 4*r.size && len(r.entries) <= r.size {
		fresh := make([]*Inflight, len(r.entries), r.size+1)
		copy(fresh, r.entries)
		r.entries = fresh
	}
}

// SquashFrom removes all instructions with seq >= fromSeq (youngest first)
// and returns them for resource reclamation.
func (r *ROB) SquashFrom(fromSeq uint64) []*Inflight {
	cut := len(r.entries)
	for cut > 0 && r.entries[cut-1].Seq() >= fromSeq {
		cut--
	}
	victims := make([]*Inflight, len(r.entries)-cut)
	copy(victims, r.entries[cut:])
	r.entries = r.entries[:cut]
	return victims
}

// Walk calls fn on every in-flight instruction, oldest first.
func (r *ROB) Walk(fn func(*Inflight)) {
	for _, f := range r.entries {
		fn(f)
	}
}

// IQ is the unified instruction queue. Entries are unordered internally;
// select scans for ready entries and issues oldest-first, matching an
// age-prioritized scheduler.
type IQ struct {
	entries []*Inflight
	size    int
	scratch []*Inflight
}

// NewIQ returns an IQ with the given capacity.
func NewIQ(size int) *IQ { return &IQ{size: size} }

// Full reports whether dispatch must stall.
func (q *IQ) Full() bool { return len(q.entries) >= q.size }

// Len returns the occupancy.
func (q *IQ) Len() int { return len(q.entries) }

// Cap returns the capacity.
func (q *IQ) Cap() int { return q.size }

// Insert adds an instruction (dispatch or LTP wakeup).
func (q *IQ) Insert(f *Inflight) {
	f.InIQ = true
	q.entries = append(q.entries, f)
}

// Remove drops an issued or squashed instruction.
func (q *IQ) Remove(f *Inflight) {
	for i, e := range q.entries {
		if e == f {
			q.entries[i] = q.entries[len(q.entries)-1]
			q.entries = q.entries[:len(q.entries)-1]
			f.InIQ = false
			return
		}
	}
}

// SquashFrom drops all entries with seq >= fromSeq.
func (q *IQ) SquashFrom(fromSeq uint64) {
	w := q.entries[:0]
	for _, e := range q.entries {
		if e.Seq() >= fromSeq {
			e.InIQ = false
			continue
		}
		w = append(w, e)
	}
	q.entries = w
}

// Candidates returns entries not blocked before cycle now, oldest first.
// The returned slice is reused across calls.
func (q *IQ) Candidates(now uint64) []*Inflight {
	q.scratch = q.scratch[:0]
	for _, e := range q.entries {
		if e.blockedUntil <= now {
			q.scratch = append(q.scratch, e)
		}
	}
	sort.Slice(q.scratch, func(i, j int) bool {
		return q.scratch[i].Seq() < q.scratch[j].Seq()
	})
	return q.scratch
}

// orderedQueue is a program-ordered bounded queue used for the LQ and SQ.
// Entries may be inserted out of program order (late LSQ allocation in the
// limit study) so insertion keeps the slice sorted by seq.
type orderedQueue struct {
	entries []*Inflight
	size    int
}

func newOrderedQueue(size int) *orderedQueue { return &orderedQueue{size: size} }

// Full reports whether the queue is at capacity.
func (o *orderedQueue) Full() bool { return len(o.entries) >= o.size }

// Len returns the occupancy.
func (o *orderedQueue) Len() int { return len(o.entries) }

// Cap returns the capacity.
func (o *orderedQueue) Cap() int { return o.size }

// FreeSlots returns the number of unused entries.
func (o *orderedQueue) FreeSlots() int { return o.size - len(o.entries) }

// Insert places f at its program-order position.
func (o *orderedQueue) Insert(f *Inflight) {
	i := sort.Search(len(o.entries), func(i int) bool {
		return o.entries[i].Seq() > f.Seq()
	})
	o.entries = append(o.entries, nil)
	copy(o.entries[i+1:], o.entries[i:])
	o.entries[i] = f
}

// Remove drops f.
func (o *orderedQueue) Remove(f *Inflight) {
	for i, e := range o.entries {
		if e == f {
			o.entries = append(o.entries[:i], o.entries[i+1:]...)
			return
		}
	}
}

// SquashFrom drops all entries with seq >= fromSeq.
func (o *orderedQueue) SquashFrom(fromSeq uint64) {
	w := o.entries[:0]
	for _, e := range o.entries {
		if e.Seq() < fromSeq {
			w = append(w, e)
		}
	}
	o.entries = w
}

// Walk calls fn oldest-first.
func (o *orderedQueue) Walk(fn func(*Inflight)) {
	for _, e := range o.entries {
		fn(e)
	}
}
