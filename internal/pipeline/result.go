package pipeline

import (
	"fmt"

	"ltp/internal/mem"
)

// Result is the metrics snapshot of one finished simulation, covering
// every quantity the paper's figures report.
type Result struct {
	Cycles    uint64
	Committed uint64
	Fetched   uint64
	Squashes  uint64

	CPI float64
	IPC float64

	// MLP is the time-average number of outstanding demand DRAM requests
	// (Fig. 1b's "avg. number of outstanding requests").
	MLP float64

	// Time-average structure occupancy (Fig. 1c's "avg. resources in use").
	AvgIQ    float64
	AvgROB   float64
	AvgLQ    float64
	AvgSQ    float64
	AvgIntRF float64
	AvgFPRF  float64

	// Memory behaviour.
	AvgLoadLatency float64
	Loads, Stores  uint64
	LoadLevel      [mem.NumLevels]uint64
	DemandDRAM     uint64
	L1DMissRate    float64
	PrefIssued     uint64

	// Branches.
	Branches    uint64
	Mispredicts uint64

	// Co-runner contention (zero for solo runs): replayed accesses,
	// the subset served by DRAM, and replays stalled on full shared
	// MSHRs.
	CorunnerAccesses uint64
	CorunnerDRAM     uint64
	CorunnerStalls   uint64

	// Activity counts feeding the energy model.
	Issues   uint64
	RFReads  uint64
	RFWrites uint64

	// WIB baseline statistics (zero unless Config.WIBSize > 0).
	AvgWIB       float64
	WIBDrains    uint64
	WIBReinserts uint64

	// Rename stall breakdown (cycles charged per reason).
	StallROB, StallIQ, StallRegs, StallLQ, StallSQ, StallLTP uint64
}

// Snapshot collects the Result from a finished (or paused) pipeline.
// After a ResetStats call it covers the measured region only.
func (p *Pipeline) Snapshot() Result {
	r := Result{
		Cycles:    p.now - p.baseCycles,
		Committed: p.committed - p.baseCommitted,
		Fetched:   p.Fetched,
		Squashes:  p.Squashes,

		MLP:      p.OccOutstanding.Mean(),
		AvgIQ:    p.OccIQ.Mean(),
		AvgROB:   p.OccROB.Mean(),
		AvgLQ:    p.OccLQ.Mean(),
		AvgSQ:    p.OccSQ.Mean(),
		AvgIntRF: p.OccIntRF.Mean(),
		AvgFPRF:  p.OccFPRF.Mean(),

		AvgLoadLatency: p.Hier.AvgLoadLatency(),
		Loads:          p.Hier.Loads,
		Stores:         p.Hier.Stores,
		LoadLevel:      p.Hier.LoadLevel,
		DemandDRAM:     p.Hier.DemandDRAM,
		L1DMissRate:    p.Hier.L1D.MissRate(),
		PrefIssued:     p.Hier.PrefetchIssued,

		Branches:    p.BP.Stats().Branches,
		Mispredicts: p.BP.Stats().Mispredicts,

		CorunnerAccesses: p.Hier.CorunnerAccesses,
		CorunnerDRAM:     p.Hier.CorunnerDRAM,
		CorunnerStalls:   p.Hier.CorunnerStalls,

		Issues:   p.Issues,
		RFReads:  p.RFReads,
		RFWrites: p.RFWrites,

		StallROB:  p.renameStallReasons[stallROB],
		StallIQ:   p.renameStallReasons[stallIQ],
		StallRegs: p.renameStallReasons[stallRegs],
		StallLQ:   p.renameStallReasons[stallLQ],
		StallSQ:   p.renameStallReasons[stallSQ],
		StallLTP:  p.renameStallReasons[stallLTP],
	}
	if p.wib != nil {
		r.AvgWIB = p.wib.AvgOccupancy()
		r.WIBDrains = p.wib.Drains
		r.WIBReinserts = p.wib.Reinserts
	}
	if r.Committed > 0 {
		r.CPI = float64(r.Cycles) / float64(r.Committed)
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Committed) / float64(r.Cycles)
	}
	return r
}

// String renders the headline metrics.
func (r Result) String() string {
	return fmt.Sprintf(
		"cycles=%d insts=%d CPI=%.3f MLP=%.2f avgIQ=%.1f avgRF=%.1f/%.1f avgLQ=%.1f avgSQ=%.1f loadLat=%.1f squashes=%d",
		r.Cycles, r.Committed, r.CPI, r.MLP, r.AvgIQ, r.AvgIntRF, r.AvgFPRF,
		r.AvgLQ, r.AvgSQ, r.AvgLoadLatency, r.Squashes)
}
