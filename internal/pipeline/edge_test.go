package pipeline

import (
	"testing"

	"ltp/internal/isa"
	"ltp/internal/prog"
)

// TestInfSentinelNeverBinds: structures sized Inf must never be the
// bottleneck (ROB is the only limit).
func TestInfSentinelNeverBinds(t *testing.T) {
	b := prog.NewBuilder("t")
	b.SetReg(isa.R(1), 1<<40)
	b.SetReg(isa.R(2), int64(0x2_0000_0000))
	b.Label("loop").
		Ld(isa.R(3), isa.R(2), 0).
		Add(isa.R(4), isa.R(4), isa.R(3)).
		Addi(isa.R(2), isa.R(2), 64).
		Addi(isa.R(1), isa.R(1), -1).
		Br(isa.CondNE, isa.R(1), "loop")
	cfg := smallConfig()
	cfg.IQSize = Inf
	cfg.IntRegs, cfg.FPRegs = Inf, Inf
	cfg.LQSize, cfg.SQSize = Inf, Inf
	pipe, res := runProgram(t, cfg, b.Build(), 20_000)
	if res.StallIQ+res.StallRegs+res.StallLQ+res.StallSQ != 0 {
		t.Errorf("Inf-sized structures stalled rename: %+v", res)
	}
	if pipe.rob.Cap() != 256 {
		t.Errorf("ROB cap changed: %d", pipe.rob.Cap())
	}
}

// TestTinyWidths: a 1-wide machine must still be correct (just slow).
func TestTinyWidths(t *testing.T) {
	b := prog.NewBuilder("t")
	for i := 0; i < 50; i++ {
		b.Addi(isa.R(1+i%4), isa.R(1+i%4), 1)
	}
	cfg := smallConfig()
	cfg.FetchWidth, cfg.DecodeWidth, cfg.RenameWidth = 1, 1, 1
	cfg.IssueWidth, cfg.CommitWidth = 1, 1
	_, res := runProgram(t, cfg, b.Build(), 100)
	if res.Committed != 50 {
		t.Errorf("committed %d of 50", res.Committed)
	}
	if res.IPC > 1.01 {
		t.Errorf("1-wide machine exceeded IPC 1: %.2f", res.IPC)
	}
}

// TestUnpipelinedDivThroughput: back-to-back divides serialize on the
// single unpipelined unit.
func TestUnpipelinedDivThroughput(t *testing.T) {
	b := prog.NewBuilder("t")
	b.SetReg(isa.R(1), 1000)
	b.SetReg(isa.R(2), 1)
	// Independent divides (different destinations, same sources).
	for i := 0; i < 20; i++ {
		b.Div(isa.R(3+i%8), isa.R(1), isa.R(2))
	}
	_, res := runProgram(t, smallConfig(), b.Build(), 100)
	// 20 divides at 20 cycles each on one unpipelined unit: >= 400 cycles.
	if res.Cycles < 20*uint64(isa.Latency[isa.IDiv]) {
		t.Errorf("independent divides finished in %d cycles; unpipelined unit not modelled", res.Cycles)
	}
}

// TestStoreDataArrivesAfterAddress: a store whose data operand is produced
// long after its address must not commit until the data is ready.
func TestStoreDataLate(t *testing.T) {
	b := prog.NewBuilder("t")
	b.SetReg(isa.R(1), 0x4000) // address base, ready at once
	b.SetReg(isa.R(2), 9)
	b.SetReg(isa.R(3), 3)
	b.Div(isa.R(4), isa.R(2), isa.R(3)) // slow data producer
	b.St(isa.R(1), 0, isa.R(4))         // store addr ready, data late
	b.Addi(isa.R(5), isa.R(5), 1)
	_, res := runProgram(t, smallConfig(), b.Build(), 10)
	if res.Committed != 3 {
		t.Fatalf("committed %d", res.Committed)
	}
	if res.Cycles < uint64(isa.Latency[isa.IDiv]) {
		t.Errorf("store committed before its data could exist (%d cycles)", res.Cycles)
	}
}

// TestROBCapBindsWindow: the ROB limits in-flight instructions exactly.
func TestROBCapBindsWindow(t *testing.T) {
	b := prog.NewBuilder("t")
	b.SetReg(isa.R(1), 1<<40)
	b.SetReg(isa.R(2), int64(0x2_0000_0000))
	b.SetReg(isa.R(7), 6364136223846793005)
	b.Label("loop").
		Mul(isa.R(6), isa.R(6), isa.R(7)).
		Andi(isa.R(5), isa.R(6), 0x3FFFF8).
		Add(isa.R(3), isa.R(2), isa.R(5)).
		Ld(isa.R(4), isa.R(3), 0).
		Add(isa.R(8), isa.R(8), isa.R(4)).
		Addi(isa.R(1), isa.R(1), -1).
		Br(isa.CondNE, isa.R(1), "loop")
	cfg := smallConfig()
	cfg.ROBSize = 32
	cfg.IQSize = Inf
	cfg.IntRegs, cfg.FPRegs = Inf, Inf
	cfg.LQSize, cfg.SQSize = Inf, Inf
	cfg.Hier.L1DMSHRs = 0
	cfg.Hier.L2MSHRs = 0
	pipe, res := runProgram(t, cfg, b.Build(), 20_000)
	if max := pipe.OccROB.Max(); max > 32 {
		t.Errorf("ROB occupancy %v exceeded cap 32", max)
	}
	// With 7 instructions per iteration and one miss each, a 32-entry ROB
	// caps MLP at ~4-5.
	if res.MLP > 6 {
		t.Errorf("MLP %.1f exceeds what a 32-entry ROB allows", res.MLP)
	}
}

// TestReplayBufferReclaims: the fetch replay buffer must not grow without
// bound over a long run.
func TestReplayBufferReclaims(t *testing.T) {
	b := prog.NewBuilder("t")
	b.SetReg(isa.R(1), 1<<40)
	b.Label("loop").
		Addi(isa.R(2), isa.R(2), 1).
		Addi(isa.R(1), isa.R(1), -1).
		Br(isa.CondNE, isa.R(1), "loop")
	pipe, _ := runProgram(t, smallConfig(), b.Build(), 100_000)
	if cap(pipe.fetchBuf) > 8*pipe.cfg.ROBSize+4096 {
		t.Errorf("replay buffer capacity grew to %d", cap(pipe.fetchBuf))
	}
}
