package pipeline

// Parker is the hook through which the Long Term Parking unit
// (internal/core) attaches to the pipeline. The pipeline calls these
// methods at well-defined points; a Parker that always declines to park
// (NullParker) yields the unmodified baseline core.
//
// Contract: if ShouldPark returns true the pipeline skips physical
// register allocation (and, with Config.LateLSQAlloc, LQ/SQ allocation)
// and hands the instruction to Park instead of the IQ. The Parker must
// eventually release every live parked instruction from Wake — producers
// no later than consumers, so late renaming can always resolve sources —
// or the ROB would stall forever; the pipeline's watchdog aborts if that
// contract is broken.
type Parker interface {
	// OnRename is called for every renamed instruction, parked or not,
	// before ShouldPark, so the Parker can maintain its RAT extensions
	// (producer PCs, tickets, parked bits) and classify the instruction.
	OnRename(p *Pipeline, f *Inflight, now uint64)

	// ShouldPark decides whether the instruction is parked at rename.
	ShouldPark(p *Pipeline, f *Inflight, now uint64) bool

	// CanAccept reports whether the LTP can take another instruction this
	// cycle (entry capacity and write-port bandwidth). When it returns
	// false for an instruction that must be parked, rename stalls.
	CanAccept(now uint64) bool

	// Park enqueues the instruction.
	Park(p *Pipeline, f *Inflight, now uint64)

	// Wake releases up to max instructions from the LTP this cycle,
	// respecting read-port bandwidth and the design's wakeup policy. For
	// each released instruction the Parker must call p.CanUnpark first
	// and then p.Unpark. It returns the number released. pressure is
	// true when the pipeline is stalled on a resource that only commits
	// can free, in which case the Parker should release its oldest
	// instruction regardless of policy (paper §5.4).
	Wake(p *Pipeline, now uint64, max int, pressure bool) int

	// ParkedStoreConflict reports whether a parked store older than seq
	// has the given address; such loads must wait (paper §5.3 and the
	// late LSQ allocation of the limit study).
	ParkedStoreConflict(addr uint64, seq uint64) bool

	// NoteLoadIssued reports a load's observed latency class as soon as
	// the cache access completes timing-wise (used by the LL detector,
	// the DRAM-timer monitor, and ticket early wakeup).
	NoteLoadIssued(p *Pipeline, f *Inflight, now uint64)

	// NoteExecDone reports instruction completion (ticket broadcast).
	NoteExecDone(p *Pipeline, f *Inflight, now uint64)

	// NoteCommit reports commit (UIT insertion for LL loads).
	NoteCommit(p *Pipeline, f *Inflight, now uint64)

	// NoteSquash tells the Parker to drop parked instructions with
	// seq >= fromSeq and invalidate RAT-extension state they produced.
	NoteSquash(p *Pipeline, fromSeq uint64, now uint64)

	// NoteCycle runs once per simulated cycle (monitor timer, occupancy
	// statistics).
	NoteCycle(p *Pipeline, now uint64)

	// ParkedCount returns the number of instructions currently parked.
	ParkedCount() int
}

// NullParker is the baseline: nothing is ever parked.
type NullParker struct{}

// OnRename implements Parker.
func (NullParker) OnRename(*Pipeline, *Inflight, uint64) {}

// ShouldPark implements Parker.
func (NullParker) ShouldPark(*Pipeline, *Inflight, uint64) bool { return false }

// CanAccept implements Parker.
func (NullParker) CanAccept(uint64) bool { return false }

// Park implements Parker.
func (NullParker) Park(*Pipeline, *Inflight, uint64) {
	panic("pipeline: NullParker.Park called")
}

// Wake implements Parker.
func (NullParker) Wake(*Pipeline, uint64, int, bool) int { return 0 }

// ParkedStoreConflict implements Parker.
func (NullParker) ParkedStoreConflict(uint64, uint64) bool { return false }

// NoteLoadIssued implements Parker.
func (NullParker) NoteLoadIssued(*Pipeline, *Inflight, uint64) {}

// NoteExecDone implements Parker.
func (NullParker) NoteExecDone(*Pipeline, *Inflight, uint64) {}

// NoteCommit implements Parker.
func (NullParker) NoteCommit(*Pipeline, *Inflight, uint64) {}

// NoteSquash implements Parker.
func (NullParker) NoteSquash(*Pipeline, uint64, uint64) {}

// NoteCycle implements Parker.
func (NullParker) NoteCycle(*Pipeline, uint64) {}

// ParkedCount implements Parker.
func (NullParker) ParkedCount() int { return 0 }

var _ Parker = NullParker{}
