package pipeline

import "ltp/internal/isa"

// WIB implements the Waiting Instruction Buffer baseline (Lebeck et al.,
// ISCA 2002), one of the techniques the paper compares against: when an
// instruction in the IQ depends on an outstanding cache miss (directly or
// through another waiting instruction), it is drained from the IQ into a
// large, simple buffer and re-inserted when the miss data is about to
// arrive.
//
// The crucial contrast with LTP (paper §6): WIB instructions have already
// been renamed — they hold their physical registers (and LQ/SQ entries)
// the whole time — so WIB relieves only IQ pressure, while LTP's front-end
// parking relieves the register file too. The WIBvsLTP experiment
// quantifies exactly that difference.
type WIB struct {
	entries []*Inflight
	size    int
	ports   int // drains and re-inserts per cycle, each

	// missThreshold: a source whose value is further away than this many
	// cycles marks the consumer as miss-dependent (beyond the L2 hit
	// latency, as in the original proposal's L1-miss trigger).
	missThreshold uint64

	// Statistics.
	Drains    uint64
	Reinserts uint64
	occSum    uint64
	occCycles uint64
}

// NewWIB builds a WIB with the given capacity and port count.
func NewWIB(size, ports int, missThreshold uint64) *WIB {
	if ports <= 0 {
		ports = 4
	}
	return &WIB{size: size, ports: ports, missThreshold: missThreshold}
}

// Len returns the current occupancy.
func (w *WIB) Len() int { return len(w.entries) }

// AvgOccupancy returns the time-average occupancy.
func (w *WIB) AvgOccupancy() float64 {
	if w.occCycles == 0 {
		return 0
	}
	return float64(w.occSum) / float64(w.occCycles)
}

// inWIB reports whether an instruction currently sits in the WIB.
func inWIB(f *Inflight) bool { return f.wibResident }

// missDependent reports whether f waits (directly or transitively through
// another WIB resident) on an outstanding long-latency value.
func (p *Pipeline) missDependent(f *Inflight, now uint64) bool {
	srcs := [2]isa.Reg{f.U.Src1, f.U.Src2}
	for i, r := range srcs {
		if !r.Valid() {
			continue
		}
		if prod := f.SrcProd[i]; prod != nil {
			// Parked producer: handled by the LTP, not the WIB.
			continue
		}
		pr := f.SrcPreg[i]
		if pr == NoPReg {
			continue
		}
		ra := p.classRF(r).ReadyAt(pr)
		if ra != neverReady && ra > now+p.wib.missThreshold {
			return true
		}
		if prod := f.SrcWriter[i]; prod != nil && inWIB(prod) && !prod.Done {
			return true
		}
	}
	return false
}

// wibDrain moves miss-dependent IQ entries into the WIB (up to the port
// count), freeing IQ slots for independent work.
func (p *Pipeline) wibDrain(now uint64) {
	moved := 0
	for _, f := range p.iq.entries {
		if moved >= p.wib.ports || len(p.wib.entries) >= p.wib.size {
			break
		}
		if f.Issued || !p.missDependent(f, now) {
			continue
		}
		p.wib.entries = append(p.wib.entries, f)
		f.wibResident = true
		moved++
		p.wib.Drains++
	}
	// Remove drained entries from the IQ after the scan (the scan
	// iterates the live slice).
	if moved > 0 {
		for _, f := range p.wib.entries[len(p.wib.entries)-moved:] {
			p.iq.Remove(f)
		}
	}
}

// wibReady reports whether every source is available or nearly so.
func (p *Pipeline) wibReady(f *Inflight, now uint64) bool {
	srcs := [2]isa.Reg{f.U.Src1, f.U.Src2}
	for i, r := range srcs {
		if !r.Valid() {
			continue
		}
		pr := f.SrcPreg[i]
		if pr == NoPReg {
			return false
		}
		ra := p.classRF(r).ReadyAt(pr)
		if ra == neverReady || ra > now+2 {
			return false
		}
		_ = i
	}
	return true
}

// wibReinsert moves entries whose data is arriving back into the IQ.
func (p *Pipeline) wibReinsert(now uint64) {
	moved := 0
	wr := p.wib.entries[:0]
	for _, f := range p.wib.entries {
		if moved < p.wib.ports && !p.iq.Full() && p.wibReady(f, now) {
			f.wibResident = false
			p.iq.Insert(f)
			moved++
			p.wib.Reinserts++
			continue
		}
		wr = append(wr, f)
	}
	p.wib.entries = wr
}

// wibCycle runs the WIB's per-cycle work (called from Cycle when enabled).
func (p *Pipeline) wibCycle(now uint64) {
	p.wibReinsert(now)
	p.wibDrain(now)
	p.wib.occSum += uint64(len(p.wib.entries))
	p.wib.occCycles++
}

// wibSquash drops squashed residents.
func (p *Pipeline) wibSquash(fromSeq uint64) {
	wr := p.wib.entries[:0]
	for _, f := range p.wib.entries {
		if f.Seq() >= fromSeq {
			f.wibResident = false
			continue
		}
		wr = append(wr, f)
	}
	p.wib.entries = wr
}
