package pipeline

import (
	"fmt"

	"ltp/internal/isa"
)

// CheckInvariants validates cross-structure consistency; tests call it
// between cycles. It returns the first violation found.
func (p *Pipeline) CheckInvariants() error {
	// Free-list conservation: registers are either free, mapped by the
	// commit RAT, or held by an in-flight (or drained-committed) producer.
	if err := p.checkRegConservation(); err != nil {
		return err
	}

	// ROB is in program order and within capacity.
	var prev uint64
	first := true
	var robErr error
	parkedInROB := 0
	p.rob.Walk(func(f *Inflight) {
		if robErr != nil {
			return
		}
		if !first && f.Seq() <= prev {
			robErr = fmt.Errorf("ROB out of order: %d after %d", f.Seq(), prev)
		}
		prev = f.Seq()
		first = false
		if f.Squashed {
			robErr = fmt.Errorf("squashed instruction in ROB: %s", f)
		}
		if f.Parked {
			parkedInROB++
		}
		first = false
	})
	if robErr != nil {
		return robErr
	}
	if p.rob.Len() > p.rob.Cap() {
		return fmt.Errorf("ROB over capacity: %d > %d", p.rob.Len(), p.rob.Cap())
	}

	// Every parked instruction is in the ROB; the Parker agrees on count.
	if got := p.parker.ParkedCount(); got != parkedInROB {
		return fmt.Errorf("parker holds %d instructions, ROB sees %d parked", got, parkedInROB)
	}

	// IQ entries are dispatched, not issued, not parked, within capacity.
	if p.iq.Len() > p.iq.Cap() {
		return fmt.Errorf("IQ over capacity: %d > %d", p.iq.Len(), p.iq.Cap())
	}
	for _, f := range p.iq.entries {
		if f.Issued || f.Parked || f.Squashed || f.Committed {
			return fmt.Errorf("invalid IQ entry state: %s", f)
		}
	}

	// LQ/SQ are in program order and within capacity.
	for _, q := range []*orderedQueue{p.lq, p.sq} {
		if q.Len() > q.Cap() {
			return fmt.Errorf("LSQ over capacity: %d > %d", q.Len(), q.Cap())
		}
		for i := 1; i < len(q.entries); i++ {
			if q.entries[i-1].Seq() >= q.entries[i].Seq() {
				return fmt.Errorf("LSQ out of order at %d", i)
			}
		}
	}

	// Replay buffer alignment: the ROB head commits from fetchBuf[bufHead].
	if h := p.rob.Head(); h != nil && p.bufBase != h.Seq() {
		return fmt.Errorf("replay buffer base %d != ROB head %d", p.bufBase, h.Seq())
	}
	if p.fetchPos < p.bufHead || p.fetchPos > len(p.fetchBuf) {
		return fmt.Errorf("fetchPos %d outside live buffer [%d, %d]", p.fetchPos, p.bufHead, len(p.fetchBuf))
	}

	// Late-allocation invariant: only parked instructions lack a
	// destination register; non-parked sources are resolved or lazily
	// resolvable to a producer that is itself tracked.
	var lateErr error
	p.rob.Walk(func(f *Inflight) {
		if lateErr != nil {
			return
		}
		if !f.Parked && f.HasDst() && f.DstPreg == NoPReg {
			lateErr = fmt.Errorf("non-parked instruction without register: %s", f)
		}
		if f.Parked && f.DstPreg != NoPReg {
			lateErr = fmt.Errorf("parked instruction with register: %s", f)
		}
	})
	return lateErr
}

// checkRegConservation verifies the physical register pool accounting.
// Every register is exactly one of: on the free list, mapped by the commit
// RAT (one per architectural register, always), or held by an in-flight
// producer in the ROB. Hence FreeCount == avail − heldByROB per class.
func (p *Pipeline) checkRegConservation() error {
	held := map[*RegFile]int{p.intRF: 0, p.fpRF: 0}
	p.rob.Walk(func(f *Inflight) {
		if f.HasDst() && f.DstPreg != NoPReg {
			held[p.classRF(f.U.Dst)]++
		}
	})
	// The commit RAT must map every architectural register to a distinct
	// physical register.
	seen := make(map[isa.Reg]map[PReg]bool)
	for i := 0; i < isa.NumArchRegs; i++ {
		r := isa.Reg(i)
		class := isa.Reg(0)
		if r.IsFP() {
			class = 1
		}
		if seen[class] == nil {
			seen[class] = make(map[PReg]bool)
		}
		pr := p.rat.CommittedPreg(r)
		if seen[class][pr] {
			return fmt.Errorf("commit RAT aliases physical register %d", pr)
		}
		seen[class][pr] = true
	}
	for _, rf := range []*RegFile{p.intRF, p.fpRF} {
		if rf.FreeCount() != rf.avail-held[rf] {
			return fmt.Errorf("%s regfile leak: free=%d avail=%d heldByROB=%d",
				rf.name, rf.FreeCount(), rf.avail, held[rf])
		}
	}
	return nil
}
