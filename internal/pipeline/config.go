// Package pipeline implements the cycle-level out-of-order core the LTP
// mechanism plugs into: an 8-wide fetch/decode/rename/commit, 6-wide issue
// machine with a ROB, unified instruction queue (IQ) with wakeup+select,
// physical register files with free lists, load/store queues with
// store→load forwarding and store-set memory dependence prediction, and
// MSHR-limited caches (internal/mem). It corresponds to the gem5 O3
// configuration in the paper's Table 1 (see DESIGN.md §2 for the
// substitution notes).
//
// The LTP itself lives in internal/core and attaches through the Parker
// interface; the pipeline knows only that some instructions may be parked
// at rename and re-injected later.
package pipeline

import (
	"ltp/internal/bpred"
	"ltp/internal/mem"
)

// Inf is the sentinel size for "effectively unlimited" structures in the
// limit study. It is far larger than the 256-entry ROB, so an Inf-sized
// structure can never be the binding constraint, while remaining small
// enough to preallocate.
const Inf = 8192

// MemDepMode selects the memory dependence speculation policy.
type MemDepMode uint8

const (
	// MemDepStoreSets speculates loads past unresolved stores, detects
	// violations when store addresses resolve, squashes and trains a
	// store-set predictor (the realistic default).
	MemDepStoreSets MemDepMode = iota
	// MemDepConservative makes loads wait for all older store addresses.
	MemDepConservative
	// MemDepOracle lets loads bypass exactly the stores they do not
	// overlap with (perfect disambiguation; no violations).
	MemDepOracle
)

// Config describes the core. The zero value is not usable; start from
// DefaultConfig (the paper's Table 1 baseline).
type Config struct {
	// Widths (Table 1: F/D/R/I/W/C = 8/8/8/6/8/8).
	FetchWidth  int
	DecodeWidth int
	RenameWidth int
	IssueWidth  int
	CommitWidth int

	// Structure sizes. Register counts are *available* (beyond
	// architectural) registers, matching the paper's footnote 4.
	ROBSize int
	IQSize  int
	LQSize  int
	SQSize  int
	IntRegs int
	FPRegs  int

	// Functional units.
	NumALU  int
	NumMul  int
	NumDiv  int
	NumFP   int
	NumFDiv int
	NumMem  int

	// FrontEndDepth is the fetch→rename latency in cycles.
	FrontEndDepth uint64

	// Memory dependence policy.
	MemDep MemDepMode

	// LLThreshold: a load whose latency exceeds this many cycles is a
	// long-latency instruction (the paper uses "mostly L3 and DRAM
	// accesses", i.e. beyond the L2 latency).
	LLThreshold uint64

	// ParkReserveRegs/ParkReserveIQ/ParkReserveLQ/ParkReserveSQ entries
	// are reserved for instructions leaving the LTP (deadlock avoidance,
	// paper §5.4).
	ParkReserveRegs int
	ParkReserveIQ   int
	ParkReserveLQ   int
	ParkReserveSQ   int

	// LateLSQAlloc delays LQ/SQ allocation for parked memory operations
	// until they leave LTP (limit-study only; the realistic design
	// allocates LQ/SQ at dispatch, paper §4.3).
	LateLSQAlloc bool

	// WIBSize enables the Waiting Instruction Buffer comparison baseline
	// (Lebeck et al.) with the given capacity (0 = disabled). WIBPorts
	// bounds drains/re-inserts per cycle (default 4).
	WIBSize  int
	WIBPorts int

	// BranchPred names the branch predictor implementation from the
	// internal/bpred registry ("" = the gshare default).
	BranchPred string

	// Hier is the cache hierarchy configuration.
	Hier mem.Config

	// WatchdogCycles aborts the simulation if no instruction commits for
	// this many cycles (deadlock detector). <=0 disables.
	WatchdogCycles uint64
}

// DefaultConfig returns the Table 1 baseline: 3.4 GHz 8-wide core,
// ROB/IQ/LQ/SQ = 256/64/64/32, 128 int + 128 fp registers.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  8,
		DecodeWidth: 8,
		RenameWidth: 8,
		IssueWidth:  6,
		CommitWidth: 8,

		ROBSize: 256,
		IQSize:  64,
		LQSize:  64,
		SQSize:  32,
		IntRegs: 128,
		FPRegs:  128,

		NumALU:  4,
		NumMul:  1,
		NumDiv:  1,
		NumFP:   2,
		NumFDiv: 1,
		NumMem:  2,

		FrontEndDepth: 3,
		MemDep:        MemDepStoreSets,
		LLThreshold:   12, // beyond L2 latency (Table 1: L2 = 12 cycles)

		ParkReserveRegs: 8,
		ParkReserveIQ:   4,
		ParkReserveLQ:   4,
		ParkReserveSQ:   4,

		Hier: mem.DefaultConfig(),

		WatchdogCycles: 500_000,
	}
}

// Validate checks structural constraints and panics on violations; it is
// called by New so misconfigurations fail fast.
func (c *Config) Validate() {
	switch {
	case c.FetchWidth <= 0 || c.DecodeWidth <= 0 || c.RenameWidth <= 0 ||
		c.IssueWidth <= 0 || c.CommitWidth <= 0:
		panic("pipeline: widths must be positive")
	case c.ROBSize <= 0 || c.IQSize <= 0 || c.LQSize <= 0 || c.SQSize <= 0:
		panic("pipeline: structure sizes must be positive")
	case c.IntRegs < 8 || c.FPRegs < 8:
		panic("pipeline: too few available registers")
	case c.NumALU <= 0 || c.NumMem <= 0:
		panic("pipeline: need at least one ALU and one memory port")
	}
	if _, err := bpred.New(c.BranchPred); err != nil {
		panic("pipeline: " + err.Error())
	}
}
