package pipeline

import (
	"testing"

	"ltp/internal/isa"
	"ltp/internal/prog"
)

// gatherProgram builds a random-gather loop with dependent payload work —
// the pattern where a small IQ fills with miss-dependent instructions.
func gatherProgram() *prog.Program {
	b := prog.NewBuilder("wibtest")
	b.SetReg(isa.R(1), 77)
	b.SetReg(isa.R(2), 6364136223846793005)
	b.SetReg(isa.R(4), int64(0x2_0000_0000))
	b.Label("loop").
		Mul(isa.R(1), isa.R(1), isa.R(2)).
		Addi(isa.R(1), isa.R(1), 1442695040888963407).
		Andi(isa.R(3), isa.R(1), 0x3FFFF8).
		Add(isa.R(5), isa.R(4), isa.R(3)).
		Ld(isa.R(6), isa.R(5), 0).
		Mul(isa.R(7), isa.R(6), isa.R(2)).
		Add(isa.R(8), isa.R(7), isa.R(6)).
		Add(isa.R(9), isa.R(9), isa.R(8)).
		Addi(isa.R(10), isa.R(10), -1).
		Br(isa.CondNE, isa.R(10), "loop")
	return b.Build()
}

func TestWIBRelievesIQPressure(t *testing.T) {
	run := func(wib int) Result {
		cfg := smallConfig()
		cfg.IQSize = 16
		cfg.WIBSize = wib
		_, res := runProgram(t, cfg, gatherProgram(), 30_000)
		return res
	}
	without := run(0)
	with := run(1024)
	if with.WIBDrains == 0 || with.WIBReinserts == 0 {
		t.Fatalf("WIB inactive: drains=%d reinserts=%d", with.WIBDrains, with.WIBReinserts)
	}
	if with.Cycles >= without.Cycles {
		t.Errorf("WIB did not help a tiny IQ: %d vs %d cycles", with.Cycles, without.Cycles)
	}
	if with.MLP <= without.MLP {
		t.Errorf("WIB did not raise MLP: %.2f vs %.2f", with.MLP, without.MLP)
	}
	if with.AvgWIB <= 0 {
		t.Error("WIB occupancy not measured")
	}
}

func TestWIBDoesNotRelieveRegisterPressure(t *testing.T) {
	// The contrast with LTP: with few registers (and a big IQ), the WIB
	// cannot help — its residents keep their registers.
	run := func(wib int) Result {
		cfg := smallConfig()
		cfg.IQSize = 64
		cfg.IntRegs, cfg.FPRegs = 48, 48
		cfg.WIBSize = wib
		_, res := runProgram(t, cfg, gatherProgram(), 30_000)
		return res
	}
	without := run(0)
	with := run(1024)
	// Within a few percent: the WIB must not meaningfully change a
	// register-bound run.
	ratio := float64(with.Cycles) / float64(without.Cycles)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("WIB changed a register-bound run by %.1f%%", (ratio-1)*100)
	}
}

func TestWIBDeterminismAndInvariants(t *testing.T) {
	cfg := smallConfig()
	cfg.IQSize = 16
	cfg.WIBSize = 256
	_, r1 := runProgram(t, cfg, gatherProgram(), 20_000)
	_, r2 := runProgram(t, cfg, gatherProgram(), 20_000)
	if r1.Cycles != r2.Cycles {
		t.Errorf("WIB run nondeterministic: %d vs %d", r1.Cycles, r2.Cycles)
	}
}

func TestWIBWithSquashes(t *testing.T) {
	// Mix the WIB with memory-order violations.
	b := prog.NewBuilder("t")
	b.SetReg(isa.R(1), 0x6000)
	b.SetReg(isa.R(3), 1)
	b.SetReg(isa.R(10), 1<<30)
	b.SetReg(isa.R(12), 0x2_0000_0000)
	b.SetReg(isa.R(13), 6364136223846793005)
	b.Label("loop").
		Mul(isa.R(14), isa.R(14), isa.R(13)).
		Andi(isa.R(15), isa.R(14), 0x3FFFF8).
		Add(isa.R(16), isa.R(12), isa.R(15)).
		Ld(isa.R(17), isa.R(16), 0).
		Add(isa.R(18), isa.R(17), isa.R(14)).
		Div(isa.R(4), isa.R(10), isa.R(3)).
		Add(isa.R(5), isa.R(1), isa.R(4)).
		Andi(isa.R(5), isa.R(5), 0x7FF8).
		St(isa.R(5), 0, isa.R(10)).
		Ld(isa.R(7), isa.R(5), 0).
		Addi(isa.R(10), isa.R(10), -1).
		Br(isa.CondNE, isa.R(10), "loop")
	cfg := smallConfig()
	cfg.IQSize = 16
	cfg.WIBSize = 256
	_, res := runProgram(t, cfg, b.Build(), 30_000)
	if res.Committed < 30_000 {
		t.Errorf("committed %d", res.Committed)
	}
	if res.WIBDrains == 0 {
		t.Error("WIB never used")
	}
}
