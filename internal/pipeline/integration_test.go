package pipeline

import (
	"testing"

	"ltp/internal/isa"
	"ltp/internal/prog"
)

// smallConfig returns a configuration small enough to expose structural
// limits quickly, with prefetching off for deterministic latency checks.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Hier.PrefetchDegree = 0
	cfg.WatchdogCycles = 50_000
	return cfg
}

// runProgram simulates the program to completion (or maxInsts) with
// invariants checked every cycle.
func runProgram(t *testing.T, cfg Config, p *prog.Program, maxInsts uint64) (*Pipeline, Result) {
	t.Helper()
	pipe := New(cfg, prog.NewEmulator(p), NullParker{})
	// Warm the instruction lines: micro-tests measure backend timing, not
	// cold code fetch.
	for i := range p.Insts {
		pipe.Hier.WarmFetch(prog.PCOf(i))
	}
	for pipe.Committed() < maxInsts {
		if pipe.streamDone && pipe.rob.Len() == 0 && len(pipe.decodeQ) == 0 && pipe.fetchPos >= len(pipe.fetchBuf) {
			break
		}
		pipe.Cycle()
		if pipe.Now()%64 == 0 {
			if err := pipe.CheckInvariants(); err != nil {
				t.Fatalf("invariant violated at cycle %d: %v", pipe.Now(), err)
			}
		}
		if pipe.Now() > 2_000_000 {
			t.Fatal("runaway simulation")
		}
	}
	if err := pipe.CheckInvariants(); err != nil {
		t.Fatalf("final invariant violated: %v", err)
	}
	return pipe, pipe.Snapshot()
}

func TestStraightLineALU(t *testing.T) {
	b := prog.NewBuilder("t")
	// 64 independent adds across 16 registers.
	for i := 0; i < 64; i++ {
		r := isa.R(1 + i%16)
		b.Addi(r, r, 1)
	}
	_, res := runProgram(t, smallConfig(), b.Build(), 1000)
	if res.Committed != 64 {
		t.Fatalf("committed %d, want 64", res.Committed)
	}
	// Dependent chains per register are 4 deep; plenty of ILP: IPC well
	// above 1 and bounded by ALU count (4).
	if res.IPC < 1.0 {
		t.Errorf("independent adds IPC %.2f too low", res.IPC)
	}
}

func TestDependentChainIPC(t *testing.T) {
	b := prog.NewBuilder("t")
	for i := 0; i < 200; i++ {
		b.Addi(isa.R(1), isa.R(1), 1) // serial chain
	}
	_, res := runProgram(t, smallConfig(), b.Build(), 1000)
	// A 1-cycle serial chain commits ~1 IPC once the pipeline fills.
	if res.IPC > 1.1 {
		t.Errorf("serial chain IPC %.2f exceeds 1", res.IPC)
	}
	if res.IPC < 0.6 {
		t.Errorf("serial chain IPC %.2f unreasonably low", res.IPC)
	}
	if e := e2e(res); e != 200 {
		t.Errorf("committed %d", e)
	}
}

func e2e(r Result) uint64 { return r.Committed }

func TestLoadHitLatency(t *testing.T) {
	b := prog.NewBuilder("t")
	b.SetReg(isa.R(1), 0x4000)
	b.SetMem(0x4000, 5)
	// Warm the line, then a dependent chain through loads.
	for i := 0; i < 20; i++ {
		b.Ld(isa.R(2), isa.R(1), 0)
		b.Add(isa.R(3), isa.R(3), isa.R(2))
	}
	_, res := runProgram(t, smallConfig(), b.Build(), 1000)
	if res.LoadLevel[0] < 15 {
		t.Errorf("expected L1 hits after first touch, got %v", res.LoadLevel)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	b := prog.NewBuilder("t")
	b.SetReg(isa.R(1), 0x8000)
	b.SetReg(isa.R(2), 42)
	// Store then immediately load the same address, repeatedly at fresh
	// (cold) addresses: forwarding must avoid the DRAM latency.
	for i := int64(0); i < 16; i++ {
		b.St(isa.R(1), i*8, isa.R(2))
		b.Ld(isa.R(3), isa.R(1), i*8)
	}
	_, res := runProgram(t, smallConfig(), b.Build(), 1000)
	// The first load may speculate past its store (training the store
	// sets with one violation); all later loads must forward, never
	// touching memory. Forwarded loads bypass the hierarchy entirely.
	if res.LoadLevel[3] > 1 {
		t.Errorf("loads went to DRAM despite matching older stores: %v", res.LoadLevel)
	}
	if res.Loads > 4 {
		t.Errorf("%d loads reached the hierarchy; most should forward", res.Loads)
	}
	if res.Squashes > 1 {
		t.Errorf("%d squashes; store sets not learning", res.Squashes)
	}
}

func TestColdLoadGoesToDRAM(t *testing.T) {
	b := prog.NewBuilder("t")
	b.SetReg(isa.R(1), 0x10_0000)
	b.Ld(isa.R(2), isa.R(1), 0)
	b.Add(isa.R(3), isa.R(3), isa.R(2))
	cfg := smallConfig()
	_, res := runProgram(t, cfg, b.Build(), 10)
	if res.LoadLevel[3] != 1 {
		t.Fatalf("cold load levels %v", res.LoadLevel)
	}
	if res.Cycles < cfg.Hier.DRAMLatency {
		t.Errorf("finished in %d cycles, under the DRAM latency", res.Cycles)
	}
}

func TestBranchMispredictStallsFetch(t *testing.T) {
	// A data-dependent branch on an LCG parity: ~50% mispredicts.
	b := prog.NewBuilder("t")
	b.SetReg(isa.R(1), 12345)
	b.SetReg(isa.R(2), 6364136223846793005)
	b.SetReg(isa.R(5), 2000)
	b.Label("loop").
		Mul(isa.R(1), isa.R(1), isa.R(2)).
		Addi(isa.R(1), isa.R(1), 1442695040888963407).
		Andi(isa.R(3), isa.R(1), 1).
		Br(isa.CondNE, isa.R(3), "odd").
		Addi(isa.R(4), isa.R(4), 1).
		Jmp("join").
		Label("odd").
		Addi(isa.R(4), isa.R(4), 2).
		Label("join").
		Addi(isa.R(5), isa.R(5), -1).
		Br(isa.CondNE, isa.R(5), "loop")
	_, res := runProgram(t, smallConfig(), b.Build(), 8000)
	if res.Mispredicts == 0 {
		t.Fatal("expected mispredicts on random parity branch")
	}
	// Each mispredict costs at least the front-end depth.
	if res.CPI < 0.4 {
		t.Errorf("CPI %.2f implausibly low with %d mispredicts", res.CPI, res.Mispredicts)
	}
}

func TestMemoryViolationSquashAndReplay(t *testing.T) {
	// A store whose address depends on a long (divide) chain, followed by
	// a load to the same address: the load issues speculatively first,
	// the store resolves later, violation, squash, replay — and the
	// store-set predictor prevents the second occurrence.
	b := prog.NewBuilder("t")
	b.SetReg(isa.R(1), 0x6000)
	b.SetReg(isa.R(2), 7)
	b.SetReg(isa.R(3), 1)
	b.SetReg(isa.R(10), 2000) // loop count
	b.Label("loop").
		Div(isa.R(4), isa.R(2), isa.R(3)). // slow: 7
		Div(isa.R(5), isa.R(4), isa.R(3)). // slower chain
		Add(isa.R(6), isa.R(1), isa.R(5)). // addr = 0x6000 + 7 (unaligned -> 0x6000)
		St(isa.R(6), 1, isa.R(10)).        // store [0x6008]
		Ld(isa.R(7), isa.R(1), 8).         // load [0x6008]: same word!
		Add(isa.R(8), isa.R(8), isa.R(7)).
		Addi(isa.R(10), isa.R(10), -1).
		Br(isa.CondNE, isa.R(10), "loop")
	pipe, res := runProgram(t, smallConfig(), b.Build(), 4000)
	if res.Squashes == 0 {
		t.Fatal("expected at least one memory-order violation squash")
	}
	if pipe.ssets.Violations == 0 {
		t.Error("store sets not trained")
	}
	// The predictor should cap violations well below the iteration count.
	if res.Squashes > 100 {
		t.Errorf("%d squashes for 500 iterations: predictor not learning", res.Squashes)
	}
	if res.Committed != 4000 {
		t.Errorf("committed %d", res.Committed)
	}
}

func TestConservativeMemDepNoViolations(t *testing.T) {
	b := prog.NewBuilder("t")
	b.SetReg(isa.R(1), 0x6000)
	b.SetReg(isa.R(3), 1)
	b.SetReg(isa.R(10), 500)
	b.Label("loop").
		Div(isa.R(5), isa.R(10), isa.R(3)).
		Add(isa.R(6), isa.R(1), isa.R(5)).
		St(isa.R(6), 0, isa.R(10)).
		Ld(isa.R(7), isa.R(6), 0).
		Addi(isa.R(10), isa.R(10), -1).
		Br(isa.CondNE, isa.R(10), "loop")
	cfg := smallConfig()
	cfg.MemDep = MemDepConservative
	_, res := runProgram(t, cfg, b.Build(), 3000)
	if res.Squashes != 0 {
		t.Errorf("conservative mode produced %d squashes", res.Squashes)
	}
}

func TestOracleMemDepNoViolations(t *testing.T) {
	b := prog.NewBuilder("t")
	b.SetReg(isa.R(1), 0x6000)
	b.SetReg(isa.R(3), 1)
	b.SetReg(isa.R(10), 500)
	b.Label("loop").
		Div(isa.R(5), isa.R(10), isa.R(3)).
		Add(isa.R(6), isa.R(1), isa.R(5)).
		St(isa.R(6), 0, isa.R(10)).
		Ld(isa.R(7), isa.R(6), 0).
		Addi(isa.R(10), isa.R(10), -1).
		Br(isa.CondNE, isa.R(10), "loop")
	cfg := smallConfig()
	cfg.MemDep = MemDepOracle
	_, res := runProgram(t, cfg, b.Build(), 3000)
	if res.Squashes != 0 {
		t.Errorf("oracle mode produced %d squashes", res.Squashes)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *prog.Program {
		b := prog.NewBuilder("t")
		b.SetReg(isa.R(1), 999)
		b.SetReg(isa.R(2), 6364136223846793005)
		b.SetReg(isa.R(4), int64(0x20000))
		b.Label("loop").
			Mul(isa.R(1), isa.R(1), isa.R(2)).
			Andi(isa.R(3), isa.R(1), 0xFFF8).
			Add(isa.R(5), isa.R(4), isa.R(3)).
			Ld(isa.R(6), isa.R(5), 0).
			St(isa.R(5), 8, isa.R(6)).
			Addi(isa.R(7), isa.R(7), -1).
			Br(isa.CondNE, isa.R(7), "loop")
		return b.Build()
	}
	_, r1 := runProgram(t, smallConfig(), build(), 20_000)
	_, r2 := runProgram(t, smallConfig(), build(), 20_000)
	if r1.Cycles != r2.Cycles || r1.Committed != r2.Committed || r1.Squashes != r2.Squashes {
		t.Errorf("nondeterministic: %v vs %v", r1, r2)
	}
}

func TestSmallIQDegradesMLP(t *testing.T) {
	// A gather loop: more IQ = more overlapped misses = fewer cycles.
	build := func() *prog.Program {
		b := prog.NewBuilder("t")
		b.SetReg(isa.R(1), 77)
		b.SetReg(isa.R(2), 6364136223846793005)
		b.SetReg(isa.R(4), int64(0x100000))
		b.Label("loop").
			Mul(isa.R(1), isa.R(1), isa.R(2)).
			Addi(isa.R(1), isa.R(1), 1442695040888963407).
			Andi(isa.R(3), isa.R(1), 0x3FFFF8).
			Add(isa.R(5), isa.R(4), isa.R(3)).
			Ld(isa.R(6), isa.R(5), 0).
			Add(isa.R(7), isa.R(7), isa.R(6)).
			Addi(isa.R(8), isa.R(8), -1).
			Br(isa.CondNE, isa.R(8), "loop")
		return b.Build()
	}
	small := smallConfig()
	small.IQSize = 8
	big := smallConfig()
	big.IQSize = 256
	big.IntRegs = 512
	big.FPRegs = 512
	big.LQSize = 256
	big.Hier.L1DMSHRs = 0
	big.Hier.L2MSHRs = 0
	_, rs := runProgram(t, small, build(), 30_000)
	_, rb := runProgram(t, big, build(), 30_000)
	if rb.MLP <= rs.MLP {
		t.Errorf("bigger IQ did not raise MLP: %.2f vs %.2f", rb.MLP, rs.MLP)
	}
	if rb.Cycles >= rs.Cycles {
		t.Errorf("bigger IQ did not help: %d vs %d cycles", rb.Cycles, rs.Cycles)
	}
}

func TestWatchdogPanics(t *testing.T) {
	// A pipeline whose parker never releases parked instructions must be
	// caught by the watchdog.
	b := prog.NewBuilder("t")
	for i := 0; i < 100; i++ {
		b.Addi(isa.R(1), isa.R(1), 1)
	}
	cfg := smallConfig()
	cfg.WatchdogCycles = 500
	pipe := New(cfg, prog.NewEmulator(b.Build()), blackHoleParker{})
	defer func() {
		if recover() == nil {
			t.Error("watchdog did not fire")
		}
	}()
	for i := 0; i < 10_000; i++ {
		pipe.Cycle()
	}
}

// blackHoleParker parks everything and never wakes it: used to verify the
// watchdog contract enforcement.
type blackHoleParker struct{ NullParker }

func (blackHoleParker) ShouldPark(*Pipeline, *Inflight, uint64) bool { return true }
func (blackHoleParker) CanAccept(uint64) bool                        { return true }
func (blackHoleParker) Park(*Pipeline, *Inflight, uint64)            {}
func (blackHoleParker) ParkedCount() int                             { return 1 }

func TestProgramEndDrains(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Addi(isa.R(1), isa.R(1), 1)
	b.Ld(isa.R(2), isa.R(3), 0x7000)
	b.Add(isa.R(4), isa.R(1), isa.R(2))
	pipe, res := runProgram(t, smallConfig(), b.Build(), 100)
	if res.Committed != 3 {
		t.Errorf("committed %d of 3", res.Committed)
	}
	if pipe.rob.Len() != 0 {
		t.Error("ROB not drained at program end")
	}
}

func TestSnapshotMetrics(t *testing.T) {
	b := prog.NewBuilder("t")
	for i := 0; i < 32; i++ {
		b.Addi(isa.R(1+i%8), isa.R(1+i%8), 1)
	}
	_, res := runProgram(t, smallConfig(), b.Build(), 100)
	if res.CPI <= 0 || res.IPC <= 0 {
		t.Error("CPI/IPC not computed")
	}
	if res.CPI*res.IPC < 0.99 || res.CPI*res.IPC > 1.01 {
		t.Error("CPI and IPC inconsistent")
	}
	if res.String() == "" {
		t.Error("empty result string")
	}
}
