package fabric

// Fuzz coverage for the coordinator's trust boundary: everything a
// worker sends over the wire — the NDJSON cell-event stream and the
// /v1/stats body — is decoded by these two functions, and arbitrary
// bytes must yield errors, never panics. `make fuzz-fabric` runs this
// continuously; the deterministic cases below pin the exact
// severed/done semantics the dispatcher relies on.

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"ltp/internal/server"
)

// FuzzWorkerDecode throws arbitrary bytes at both wire decoders.
func FuzzWorkerDecode(f *testing.F) {
	f.Add([]byte(`{"index":0,"hash":"rs2:abc","outcome":"miss","result":{"insts":10}}` + "\n" + `{"done":true}` + "\n"))
	f.Add([]byte(`{"index":1,"error":"simulation failed"}` + "\n"))
	f.Add([]byte(`{"done":true}`))
	f.Add([]byte(`{"index":9999999999999999999999}`))
	f.Add([]byte(`{"pool":{"parallelism":8,"mean_run_seconds_by_backend":{"cycle":0.5,"model":0.001}}}`))
	f.Add([]byte(`{"pool":{"parallelism":-3,"mean_run_seconds_by_backend":{"cycle":-1}}}`))
	f.Add([]byte("\x00\xff\xfe garbage"))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		// The cell-event decoder: any input either drives the callback
		// with decoded events or errors out — it must never panic, and a
		// callback error must stop decoding immediately.
		events := 0
		stopErr := errors.New("stop")
		err := decodeCellEvents(bytes.NewReader(data), func(ev server.CellEvent) error {
			if events++; events > 1 {
				return stopErr
			}
			return nil
		})
		if events > 2 {
			t.Fatalf("decoder kept going after the callback rejected: %d events", events)
		}
		_ = err

		// The stats decoder: errors are fine, panics and poisoned values
		// are not.
		st, err := parseWorkerStats(data)
		if err == nil {
			if st.Parallelism < 0 {
				t.Fatalf("negative parallelism %d survived", st.Parallelism)
			}
			for b, m := range st.Means {
				if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
					t.Fatalf("non-positive or non-finite mean %v for %q survived", m, b)
				}
			}
		}
	})
}

// TestDecodeCellEventsSemantics pins the three stream endings the
// dispatcher distinguishes: clean (Done marker), severed (EOF before
// Done), and malformed.
func TestDecodeCellEventsSemantics(t *testing.T) {
	count := func(s string) (int, error) {
		n := 0
		err := decodeCellEvents(strings.NewReader(s), func(server.CellEvent) error { n++; return nil })
		return n, err
	}

	n, err := count(`{"index":0,"outcome":"miss"}` + "\n" + `{"index":1,"outcome":"hit"}` + "\n" + `{"done":true}`)
	if err != nil || n != 2 {
		t.Fatalf("clean stream: %d events, err %v; want 2, nil", n, err)
	}

	n, err = count(`{"index":0,"outcome":"miss"}` + "\n")
	if !errors.Is(err, errStreamSevered) || n != 1 {
		t.Fatalf("severed stream: %d events, err %v; want 1, errStreamSevered", n, err)
	}

	_, err = count(`{"index":0}` + "\n" + `not json at all`)
	if err == nil || errors.Is(err, errStreamSevered) {
		t.Fatalf("malformed stream: err %v; want a decode error", err)
	}

	// Events after the Done marker are unreachable: Done ends decoding.
	n, err = count(`{"done":true}` + "\n" + `{"index":5,"outcome":"miss"}`)
	if err != nil || n != 0 {
		t.Fatalf("post-done data: %d events, err %v; want 0, nil", n, err)
	}
}

// TestParseWorkerStatsDefensive pins the value hygiene: negative
// parallelism clamps, non-finite and non-positive means drop.
func TestParseWorkerStatsDefensive(t *testing.T) {
	st, err := parseWorkerStats([]byte(`{"pool":{"parallelism":8,"mean_run_seconds_by_backend":{"cycle":0.25,"model":-0.5,"sampled":0}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if st.Parallelism != 8 {
		t.Fatalf("parallelism %d; want 8", st.Parallelism)
	}
	if got, want := len(st.Means), 1; got != want {
		t.Fatalf("kept %d means (%v); want only cycle", got, st.Means)
	}
	if st.Means["cycle"] != 0.25 {
		t.Fatalf("cycle mean %v; want 0.25", st.Means["cycle"])
	}

	if _, err := parseWorkerStats([]byte(`{"pool":`)); err == nil {
		t.Fatal("truncated stats decoded without error")
	}
	if st, err := parseWorkerStats([]byte(`{"pool":{"parallelism":-2}}`)); err != nil || st.Parallelism != 0 {
		t.Fatalf("negative parallelism: %+v, %v; want clamp to 0", st, err)
	}
}
