package fabric

// The coordinator's view of one ltpserved worker: an HTTP client for
// the /v1/cells batch endpoint and the /v1/stats poll, plus the
// coordinator-side load and health bookkeeping that feeds fleet-level
// LPT placement. Everything read off the wire goes through the
// defensive decoders at the bottom of this file — a worker is a
// separate process on a network, and arbitrary bytes from it must
// fail the affected cells (triggering a retry elsewhere), never panic
// the coordinator (FuzzWorkerDecode holds that property).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"ltp"
	"ltp/internal/server"
)

// errWorkerHang marks a batch stream that went silent past the
// coordinator's hang timeout: the request is severed and its
// unresolved cells are re-dispatched like any other worker loss.
var errWorkerHang = errors.New("fabric: worker stream stalled past the hang timeout")

// errStreamSevered marks a batch stream that ended without the Done
// marker: the worker died (or the connection was cut) with cells
// unresolved.
var errStreamSevered = errors.New("fabric: worker stream severed before completion")

// worker is the coordinator's handle on one fleet member.
type worker struct {
	// name is the worker's base URL — also its ring identity.
	name string
	hc   *http.Client

	mu      sync.Mutex
	healthy bool
	lastErr string
	// parallelism is the worker-reported pool size (0 until the first
	// successful poll).
	parallelism int
	// means is the worker-reported per-backend EWMA of simulated-cell
	// seconds (Engine.MeanRunSecondsByBackend) — the LPT weight source.
	means map[string]float64
	// pendingCells / pendingSecs track what this coordinator currently
	// has in flight on the worker (count and estimated seconds).
	pendingCells int
	pendingSecs  float64
}

func newWorker(name string, hc *http.Client) *worker {
	return &worker{name: name, hc: hc, healthy: true}
}

// isHealthy reports whether the worker is dispatchable.
func (w *worker) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

// markDown records a transport-level failure; the poll loop revives
// the worker when it answers again.
func (w *worker) markDown(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.healthy = false
	if err != nil {
		w.lastErr = err.Error()
	}
}

// markUp records a successful poll and its reported stats.
func (w *worker) markUp(st workerStats) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.healthy = true
	w.lastErr = ""
	if st.Parallelism > 0 {
		w.parallelism = st.Parallelism
	}
	w.means = st.Means
}

// meanFor returns the worker-reported mean seconds for a backend,
// falling back to the given fleet estimate when the worker has not
// reported one.
func (w *worker) meanFor(backend string, fallback float64) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if m, ok := w.means[backend]; ok && m > 0 {
		return m
	}
	return fallback
}

// reportedMean returns the worker's reported mean seconds for a
// backend, and whether it has reported one.
func (w *worker) reportedMean(backend string) (float64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m, ok := w.means[backend]
	return m, ok && m > 0
}

// queuedSecs estimates the wall-clock of work this coordinator has in
// flight on the worker, normalized by its parallelism — the load term
// of the fleet LPT placement.
func (w *worker) queuedSecs() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	par := w.parallelism
	if par < 1 {
		par = 1
	}
	return w.pendingSecs / float64(par)
}

// addLoad charges estimated seconds for newly dispatched cells.
func (w *worker) addLoad(cells int, secs float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pendingCells += cells
	w.pendingSecs += secs
}

// releaseLoad returns charge for resolved (or failed) cells.
func (w *worker) releaseLoad(cells int, secs float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pendingCells -= cells; w.pendingCells < 0 {
		w.pendingCells = 0
	}
	if w.pendingSecs -= secs; w.pendingSecs < 0 || w.pendingCells == 0 {
		w.pendingSecs = 0
	}
}

// status snapshots the worker for /v1/stats rendering.
func (w *worker) status() WorkerStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	means := make(map[string]float64, len(w.means))
	for b, m := range w.means {
		means[b] = m
	}
	return WorkerStatus{
		URL:            w.name,
		Healthy:        w.healthy,
		LastError:      w.lastErr,
		Parallelism:    w.parallelism,
		PendingCells:   w.pendingCells,
		MeanRunSeconds: means,
	}
}

// poll fetches /v1/stats (which doubles as the liveness probe) and
// updates the worker's health and LPT weights.
func (w *worker) poll(ctx context.Context, timeout time.Duration) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, w.name+"/v1/stats", nil)
	if err != nil {
		w.markDown(err)
		return
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		w.markDown(err)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		w.markDown(fmt.Errorf("fabric: %s /v1/stats status %d: %v", w.name, resp.StatusCode, err))
		return
	}
	st, err := parseWorkerStats(body)
	if err != nil {
		w.markDown(err)
		return
	}
	w.markUp(st)
}

// runCells dispatches one batch to the worker's /v1/cells endpoint and
// invokes onEvent per resolved cell (in the worker's completion
// order). It returns nil only when the stream closed with the Done
// marker; any transport failure, malformed line, non-200 status or
// hang-timeout expiry is an error, and the caller re-dispatches
// whatever did not resolve. hang <= 0 disables the stall watchdog.
func (w *worker) runCells(ctx context.Context, specs []ltp.RunSpec, hang time.Duration, onEvent func(server.CellEvent) error) error {
	body, err := json.Marshal(server.CellsRequest{Specs: specs})
	if err != nil {
		return fmt.Errorf("fabric: encoding cell batch: %w", err)
	}
	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.name+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	// The watchdog arms before the request goes out: a worker can stall
	// while the connection is dialed or the response headers are
	// pending, not just mid-stream, and Do blocks until headers.
	var watchdog *time.Timer
	if hang > 0 {
		watchdog = time.AfterFunc(hang, func() { cancel(errWorkerHang) })
		defer watchdog.Stop()
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		if errors.Is(context.Cause(rctx), errWorkerHang) {
			return fmt.Errorf("fabric: %s: %w", w.name, errWorkerHang)
		}
		return fmt.Errorf("fabric: %s /v1/cells: %w", w.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fabric: %s /v1/cells status %d: %s", w.name, resp.StatusCode, bytes.TrimSpace(msg))
	}
	err = decodeCellEvents(resp.Body, func(ev server.CellEvent) error {
		if watchdog != nil {
			watchdog.Reset(hang)
		}
		return onEvent(ev)
	})
	if err != nil && errors.Is(context.Cause(rctx), errWorkerHang) {
		return fmt.Errorf("fabric: %s: %w", w.name, errWorkerHang)
	}
	if err != nil {
		return fmt.Errorf("fabric: %s /v1/cells stream: %w", w.name, err)
	}
	return nil
}

// decodeCellEvents reads a worker's NDJSON cell-event stream, invoking
// fn per event, until the Done marker. It is the coordinator's trust
// boundary for batch responses: malformed bytes, truncation before
// Done, or an fn rejection (index out of range, duplicate cell) all
// return an error — never a panic — so the caller can fail the
// unresolved cells and retry them on the surviving ring.
func decodeCellEvents(r io.Reader, fn func(server.CellEvent) error) error {
	dec := json.NewDecoder(io.LimitReader(r, maxStreamBytes))
	for {
		var ev server.CellEvent
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				return errStreamSevered
			}
			return fmt.Errorf("decoding cell event: %w", err)
		}
		if ev.Done {
			return nil
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}

// maxStreamBytes bounds one batch response stream (a window of cells
// is a few MB of JSON at most; a worker pouring more than this at the
// coordinator is broken or hostile).
const maxStreamBytes = 256 << 20

// workerStats is the slice of a worker's /v1/stats the coordinator
// consumes: the pool size and the per-backend LPT weights.
type workerStats struct {
	// Parallelism is the worker's concurrent-simulation cap.
	Parallelism int
	// Means is the per-backend EWMA of simulated-cell seconds.
	Means map[string]float64
}

// parseWorkerStats decodes a worker's /v1/stats body defensively:
// arbitrary bytes yield an error (never a panic), and non-finite or
// negative numbers are dropped rather than poisoning placement
// arithmetic.
func parseWorkerStats(body []byte) (workerStats, error) {
	var view struct {
		Pool struct {
			Parallelism             int                `json:"parallelism"`
			MeanRunSecondsByBackend map[string]float64 `json:"mean_run_seconds_by_backend"`
		} `json:"pool"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		return workerStats{}, fmt.Errorf("fabric: decoding worker stats: %w", err)
	}
	st := workerStats{Parallelism: view.Pool.Parallelism}
	if st.Parallelism < 0 {
		st.Parallelism = 0
	}
	if len(view.Pool.MeanRunSecondsByBackend) > 0 {
		st.Means = make(map[string]float64, len(view.Pool.MeanRunSecondsByBackend))
		for b, m := range view.Pool.MeanRunSecondsByBackend {
			if math.IsNaN(m) || math.IsInf(m, 0) || m <= 0 {
				continue
			}
			st.Means[b] = m
		}
	}
	return st, nil
}
