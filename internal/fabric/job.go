package fabric

// The coordinator's job bookkeeping: cjob mirrors the single-node
// server's tracked job (same counters, same append-only cell log, same
// JSON views via the server package's exported shapes) so a client
// cannot tell a coordinator's /v1/jobs surface from a worker's, and
// coordRegistry adds the fleet-level admission policy — a global
// active bound plus per-tenant quotas, so one tenant's burst of
// campaigns cannot starve the rest of the fleet.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ltp"
	"ltp/internal/server"
)

// cjob is one coordinator-side sweep campaign.
type cjob struct {
	id        string
	tenant    string
	hash      string
	spec      ltp.SweepSpec // canonical
	total     int
	submitted time.Time

	ctx    context.Context
	cancel context.CancelCauseFunc

	done      atomic.Int64
	canceled  atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	shared    atomic.Int64
	storeHits atomic.Int64
	skipped   atomic.Int64

	mu      sync.Mutex
	cells   []ltp.CellResult
	notify  chan struct{} // closed and replaced on every append
	logDone bool
	streams int // NDJSON streams reading the log (reserved at submit)

	doneCh chan struct{}
	result *ltp.SweepResult
	err    error
}

// newCJob builds a job handle for a canonical sweep. reserveStream
// pre-counts the submitting request's NDJSON stream so the cell log
// cannot be dropped between registration and that stream's first read.
func newCJob(id, tenant, hash string, spec ltp.SweepSpec, reserveStream bool) *cjob {
	total := spec.TotalRuns()
	if spec.Triage != nil {
		total += spec.Triage.TopK * spec.Replicates()
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	j := &cjob{
		id: id, tenant: tenant, hash: hash, spec: spec, total: total,
		submitted: time.Now(),
		ctx:       ctx, cancel: cancel,
		notify: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	if reserveStream {
		j.streams = 1
	}
	return j
}

// appendCell records one resolved cell and wakes any stream.
func (j *cjob) appendCell(c ltp.CellResult) {
	j.mu.Lock()
	j.cells = append(j.cells, c)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// finishCells marks the log complete and wakes any stream blocked on
// the current notify channel.
func (j *cjob) finishCells() {
	j.mu.Lock()
	j.logDone = true
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// cellsFrom returns the logged cells from index from on, plus a
// channel signalling further appends and whether the log is complete.
func (j *cjob) cellsFrom(from int) (cells []ltp.CellResult, more <-chan struct{}, done bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.cells) {
		cells = j.cells[from:]
	}
	return cells, j.notify, j.logDone
}

// streamFinished releases one reserved stream slot and drops the log
// if it was the last and the job is over.
func (j *cjob) streamFinished() {
	j.mu.Lock()
	j.streams--
	j.mu.Unlock()
	j.maybeReleaseLog()
}

// maybeReleaseLog drops the cell log once the job has finished and no
// stream is (or can ever be) reading it — the log holds full
// RunResults and must not be retained for the registry's whole
// history.
func (j *cjob) maybeReleaseLog() {
	select {
	case <-j.doneCh:
	default:
		return
	}
	j.mu.Lock()
	if j.streams == 0 && j.logDone {
		j.cells = nil
	}
	j.mu.Unlock()
}

// abandonRemaining charges every run the job will now never execute to
// the canceled counter, so progress always adds up to the total.
func (j *cjob) abandonRemaining() {
	left := int64(j.total) - j.done.Load() - j.canceled.Load()
	if left > 0 {
		j.canceled.Add(left)
	}
}

// progress snapshots the job's counters.
func (j *cjob) progress() ltp.Progress {
	p := ltp.Progress{
		TotalRuns:       j.total,
		DoneRuns:        int(j.done.Load()),
		CanceledRuns:    int(j.canceled.Load()),
		CacheHits:       j.hits.Load(),
		CacheMisses:     j.misses.Load(),
		CacheShared:     j.shared.Load(),
		StoreHits:       j.storeHits.Load(),
		SnapshotSkipped: j.skipped.Load(),
	}
	select {
	case <-j.doneCh:
		p.Finished = true
	default:
	}
	return p
}

// view renders the job in the single-node server's JobView shape.
func (j *cjob) view() server.JobView {
	v := server.JobView{
		ID:          j.id,
		Kind:        server.KindSweep,
		Hash:        j.hash,
		Status:      server.JobRunning,
		Progress:    j.progress(),
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339),
	}
	select {
	case <-j.doneCh:
		switch {
		case j.err == nil:
			v.Status = server.JobDone
		case isCancel(j.err):
			v.Status, v.Error = server.JobCanceled, j.err.Error()
		default:
			v.Status, v.Error = server.JobFailed, j.err.Error()
		}
	default:
	}
	return v
}

// isCancel reports whether err stems from cancellation rather than a
// cell failing.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ltp.ErrJobCanceled)
}

// cancelCause extracts the most specific cancellation error from a
// dead context.
func cancelCause(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return ctx.Err()
}

// maxRetainedJobs bounds how many finished campaigns the coordinator
// keeps addressable (matching the single-node server's retention).
const maxRetainedJobs = 128

// coordRegistry tracks the coordinator's campaigns and enforces the
// fleet admission policy: a global active-job bound plus a per-tenant
// quota, both answered with 429s carrying Retry-After.
type coordRegistry struct {
	mu        sync.Mutex
	idle      *sync.Cond
	seq       int
	total     int
	active    int
	max       int
	tenantMax int
	perTenant map[string]int
	jobs      map[string]*cjob
	order     []string
	finished  map[string]bool
}

func newCoordRegistry(maxActive, tenantMax int) *coordRegistry {
	r := &coordRegistry{
		max:       maxActive,
		tenantMax: tenantMax,
		perTenant: make(map[string]int),
		jobs:      make(map[string]*cjob),
		finished:  make(map[string]bool),
	}
	r.idle = sync.NewCond(&r.mu)
	return r
}

// errFleetBusy is the fleet-wide 429 at the active-job bound.
var errFleetBusy = &httpErr{status: 429, msg: "too many active campaigns on the fleet; retry after one finishes"}

// errTenantBusy is the per-tenant 429 at the tenant quota.
var errTenantBusy = &httpErr{status: 429, msg: "tenant is at its active-campaign quota; retry after one of its campaigns finishes"}

// admit reserves an active-job slot for the tenant and returns the new
// job's id, or a 429 error at either bound. The caller must register
// the job or call release.
func (r *coordRegistry) admit(tenant, hash string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.active >= r.max {
		return "", errFleetBusy
	}
	if r.perTenant[tenant] >= r.tenantMax {
		return "", errTenantBusy
	}
	r.active++
	r.perTenant[tenant]++
	r.seq++
	short := hash
	if i := len("sw1:"); len(short) > i+8 {
		short = short[i : i+8]
	}
	return fmt.Sprintf("j%04d-%s", r.seq, short), nil
}

// release returns an admitted slot without registering (submission
// failed downstream).
func (r *coordRegistry) release(tenant string) {
	r.mu.Lock()
	r.active--
	if r.perTenant[tenant]--; r.perTenant[tenant] <= 0 {
		delete(r.perTenant, tenant)
	}
	r.idle.Broadcast()
	r.mu.Unlock()
}

// register records the job and arranges its slot's release (and
// retention pruning) when the campaign finishes.
func (r *coordRegistry) register(j *cjob) *cjob {
	r.mu.Lock()
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	r.total++
	r.mu.Unlock()
	go func() {
		<-j.doneCh
		r.mu.Lock()
		r.active--
		if r.perTenant[j.tenant]--; r.perTenant[j.tenant] <= 0 {
			delete(r.perTenant, j.tenant)
		}
		r.finished[j.id] = true
		r.prune()
		r.idle.Broadcast()
		r.mu.Unlock()
		j.maybeReleaseLog()
	}()
	return j
}

// prune evicts the oldest finished jobs beyond maxRetainedJobs (caller
// holds mu); active campaigns are never evicted.
func (r *coordRegistry) prune() {
	for len(r.finished) > maxRetainedJobs {
		evicted := false
		for i, id := range r.order {
			if r.finished[id] {
				delete(r.jobs, id)
				delete(r.finished, id)
				r.order = append(r.order[:i], r.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// get returns the job by id.
func (r *coordRegistry) get(id string) (*cjob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// findActiveByHash returns a still-running job with the given campaign
// hash, if any — the duplicate a 429'd client can poll instead of
// resubmitting.
func (r *coordRegistry) findActiveByHash(hash string) (*cjob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range r.order {
		if j := r.jobs[id]; j != nil && j.hash == hash && !r.finished[id] {
			return j, true
		}
	}
	return nil, false
}

// list returns every job, newest first.
func (r *coordRegistry) list() []*cjob {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*cjob, 0, len(r.order))
	for i := len(r.order) - 1; i >= 0; i-- {
		out = append(out, r.jobs[r.order[i]])
	}
	return out
}

// counts returns (total ever served, active).
func (r *coordRegistry) counts() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total, r.active
}

// live snapshots the still-running campaigns.
func (r *coordRegistry) live() []*cjob {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*cjob
	for _, id := range r.order {
		if !r.finished[id] {
			out = append(out, r.jobs[id])
		}
	}
	return out
}

// remainingCells sums the unresolved runs of every active campaign —
// the backlog behind a 429's Retry-After. A triage job's remaining
// work is capped at its detailed-phase size, matching the single-node
// estimate.
func (r *coordRegistry) remainingCells() int {
	total := 0
	for _, j := range r.live() {
		p := j.progress()
		left := p.TotalRuns - p.DoneRuns - p.CanceledRuns
		if j.spec.Triage != nil {
			if detail := j.spec.Triage.TopK * j.spec.Replicates(); left > detail {
				left = detail
			}
		}
		if left > 0 {
			total += left
		}
	}
	return total
}

// cancelActive cancels every still-running campaign (coordinator
// drain).
func (r *coordRegistry) cancelActive() {
	for _, j := range r.live() {
		j.cancel(ltp.ErrJobCanceled)
	}
}

// awaitIdle blocks until no campaign is active or stop closes; it
// reports whether the registry went idle.
func (r *coordRegistry) awaitIdle(stop <-chan struct{}) bool {
	stopped := make(chan struct{})
	var once sync.Once
	if stop != nil {
		go func() {
			select {
			case <-stop:
				r.mu.Lock()
				r.idle.Broadcast()
				r.mu.Unlock()
			case <-stopped:
			}
		}()
	}
	defer once.Do(func() { close(stopped) })
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.active > 0 {
		select {
		case <-stop:
			return false
		default:
		}
		r.idle.Wait()
	}
	return true
}
