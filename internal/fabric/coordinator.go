package fabric

// The Coordinator: the fleet's front door. It serves the single-node
// campaign API unchanged — /v1/run, /v1/sweep (wait/stream forms),
// /v1/jobs, DELETE-cancel, since_snapshot — plus the fleet surface:
// worker registration (/v1/workers), fleet stats, and a health view
// that counts live workers. Requests validate against the same
// server.Limits a worker enforces, so a coordinator rejects exactly
// what a single node would.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"ltp"
	"ltp/internal/server"
	"ltp/internal/store"
)

// Config assembles a Coordinator.
type Config struct {
	// Workers are the initial fleet members' base URLs (more can join
	// via POST /v1/workers).
	Workers []string
	// Limits is the request admission policy (zero fields =
	// server.DefaultLimits), applied identically to a worker's.
	Limits server.Limits
	// VirtualNodes is the consistent-hash ring's per-worker vnode count
	// (0 = DefaultVirtualNodes).
	VirtualNodes int
	// Window is how many cells one job dispatches to one worker per
	// /v1/cells batch (0 = 16). Smaller windows interleave concurrent
	// jobs more fairly on a busy fleet; larger ones amortize batch
	// overhead.
	Window int
	// RetryAttempts is each cell's dispatch budget across worker losses
	// (0 = 3).
	RetryAttempts int
	// RetryBackoff is the base delay between dispatch rounds, doubling
	// per round up to 30s (0 = 200ms).
	RetryBackoff time.Duration
	// HangTimeout severs a batch stream with no progress for this long
	// and retries its unresolved cells elsewhere (0 = 2m; negative
	// disables).
	HangTimeout time.Duration
	// PollInterval paces the worker health/stats poll (0 = 2s).
	PollInterval time.Duration
	// SpillFactor tunes cache affinity against load balance: a cell
	// leaves its ring home only when the home's estimated cost exceeds
	// SpillFactor × the best worker's (0 = 3).
	SpillFactor float64
	// TenantMaxActive caps one tenant's concurrently active campaigns
	// (tenants are named by the X-LTP-Tenant request header; absent =
	// the "" tenant). 0 = Limits.MaxActiveJobs.
	TenantMaxActive int
	// StorePath, when non-empty, opens a coordinator-side result bank:
	// every resolved cell is persisted, and a restarted coordinator
	// serves banked cells without re-dispatching them.
	StorePath string
	// Logf, when non-nil, receives one line per notable event.
	Logf func(format string, args ...any)
	// HTTPClient overrides the worker-facing client (nil = a default
	// client; tests inject fault proxies here).
	HTTPClient *http.Client
}

// Coordinator fronts a fleet of ltpserved workers behind the
// single-node campaign API.
type Coordinator struct {
	limits        server.Limits
	window        int
	retryAttempts int
	retryBackoff  time.Duration
	hangTimeout   time.Duration
	pollInterval  time.Duration
	spillFactor   float64

	ring *ring
	hc   *http.Client

	mu      sync.Mutex
	workers map[string]*worker

	jobs   *coordRegistry
	jobsWG sync.WaitGroup

	flightMu sync.Mutex
	flights  map[string]*flight

	store *store.Store

	started    time.Time
	mux        *http.ServeMux
	logFn      func(format string, args ...any)
	pollCancel context.CancelFunc
	pollDone   chan struct{}

	closeOnce sync.Once
}

// httpErr is a coordinator-originated failure with its HTTP status.
type httpErr struct {
	status int
	msg    string
}

// Error returns the message.
func (e *httpErr) Error() string { return e.msg }

// New assembles a coordinator and starts its worker poll loop (it
// does not listen; mount Handler on an http.Server). Errors come from
// invalid worker URLs or opening Config.StorePath.
func New(cfg Config) (*Coordinator, error) {
	c := &Coordinator{
		limits:        cfg.Limits.WithDefaults(),
		window:        cfg.Window,
		retryAttempts: cfg.RetryAttempts,
		retryBackoff:  cfg.RetryBackoff,
		hangTimeout:   cfg.HangTimeout,
		pollInterval:  cfg.PollInterval,
		spillFactor:   cfg.SpillFactor,
		ring:          newRing(cfg.VirtualNodes),
		hc:            cfg.HTTPClient,
		workers:       make(map[string]*worker),
		flights:       make(map[string]*flight),
		started:       time.Now(),
		logFn:         cfg.Logf,
		pollDone:      make(chan struct{}),
	}
	if c.window <= 0 {
		c.window = 16
	}
	if c.retryAttempts <= 0 {
		c.retryAttempts = 3
	}
	if c.retryBackoff <= 0 {
		c.retryBackoff = 200 * time.Millisecond
	}
	if c.hangTimeout == 0 {
		c.hangTimeout = 2 * time.Minute
	}
	if c.pollInterval <= 0 {
		c.pollInterval = 2 * time.Second
	}
	if c.spillFactor <= 0 {
		c.spillFactor = 3
	}
	if c.hc == nil {
		c.hc = &http.Client{}
	}
	tenantMax := cfg.TenantMaxActive
	if tenantMax <= 0 {
		tenantMax = c.limits.MaxActiveJobs
	}
	c.jobs = newCoordRegistry(c.limits.MaxActiveJobs, tenantMax)

	for _, u := range cfg.Workers {
		if err := c.AddWorker(u); err != nil {
			return nil, err
		}
	}
	if cfg.StorePath != "" {
		st, err := store.Open(cfg.StorePath)
		if err != nil {
			return nil, fmt.Errorf("fabric: opening result bank: %w", err)
		}
		c.store = st
	}

	c.mux = http.NewServeMux()
	c.mux.HandleFunc("GET /healthz", c.handleHealth)
	c.mux.HandleFunc("GET /v1/workloads", c.handleWorkloads)
	c.mux.HandleFunc("GET /v1/stats", c.handleStats)
	c.mux.HandleFunc("GET /v1/workers", c.handleWorkersGet)
	c.mux.HandleFunc("POST /v1/workers", c.handleWorkersPost)
	c.mux.HandleFunc("DELETE /v1/workers", c.handleWorkersDelete)
	c.mux.HandleFunc("POST /v1/run", c.handleRun)
	c.mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	c.mux.HandleFunc("GET /v1/jobs", c.handleJobs)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	c.mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleJobDelete)

	pctx, cancel := context.WithCancel(context.Background())
	c.pollCancel = cancel
	go c.pollLoop(pctx)
	return c, nil
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler { return c }

// ServeHTTP dispatches to the endpoint handlers with request logging.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if c.logFn != nil {
		c.logFn("%s %s", r.Method, r.URL.Path)
	}
	c.mux.ServeHTTP(w, r)
}

// logf logs one line when Config.Logf was given.
func (c *Coordinator) logf(format string, args ...any) {
	if c.logFn != nil {
		c.logFn(format, args...)
	}
}

// Close stops the poll loop, cancels every active campaign, waits for
// them to settle, and closes the result bank.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		c.pollCancel()
		<-c.pollDone
		c.jobs.cancelActive()
		c.jobsWG.Wait()
		if c.store != nil {
			_ = c.store.Close()
		}
	})
}

// Shutdown drains the coordinator for process exit: it waits — bounded
// by ctx — for active campaigns to finish on their own, then cancels
// whatever is still running and closes. Stop accepting requests first
// (http.Server.Shutdown).
func (c *Coordinator) Shutdown(ctx context.Context) {
	if !c.jobs.awaitIdle(ctx.Done()) {
		c.logf("drain deadline reached; cancelling active campaigns")
	}
	c.Close()
}

// AddWorker joins a worker (by base URL) to the fleet and the ring. A
// worker joins optimistically healthy — the first failed dispatch or
// poll marks it down — and already-present workers are a no-op.
func (c *Coordinator) AddWorker(rawURL string) error {
	name, err := normalizeWorkerURL(rawURL)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.workers[name]; ok {
		return nil
	}
	c.workers[name] = newWorker(name, c.hc)
	c.ring.add(name)
	c.logf("worker %s joined (%d members)", name, c.ring.size())
	return nil
}

// RemoveWorker leaves a worker from the fleet and the ring, reporting
// whether it was a member. Cells in flight on it finish or fail on
// their own; future placement simply stops choosing it.
func (c *Coordinator) RemoveWorker(rawURL string) bool {
	name, err := normalizeWorkerURL(rawURL)
	if err != nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.workers[name]; !ok {
		return false
	}
	delete(c.workers, name)
	c.ring.remove(name)
	c.logf("worker %s left (%d members)", name, c.ring.size())
	return true
}

// Workers snapshots the fleet, sorted by URL.
func (c *Coordinator) Workers() []WorkerStatus {
	out := make([]WorkerStatus, 0)
	for _, name := range c.ring.memberList() {
		if w := c.workerByName(name); w != nil {
			out = append(out, w.status())
		}
	}
	return out
}

// normalizeWorkerURL validates a worker base URL and strips the
// trailing slash so identical workers get identical ring identities.
func normalizeWorkerURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("fabric: worker url %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("fabric: worker url %q is not an http(s) base URL", raw)
	}
	return strings.TrimRight(u.String(), "/"), nil
}

// workerByName returns the fleet member with the given ring identity.
func (c *Coordinator) workerByName(name string) *worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers[name]
}

// workerList snapshots the fleet members.
func (c *Coordinator) workerList() []*worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, w)
	}
	return out
}

// pollLoop polls every worker's /v1/stats — immediately, then every
// PollInterval — keeping health flags and LPT weights fresh and
// reviving workers that come back.
func (c *Coordinator) pollLoop(ctx context.Context) {
	defer close(c.pollDone)
	c.pollAll(ctx)
	t := time.NewTicker(c.pollInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.pollAll(ctx)
		}
	}
}

// pollAll polls the whole fleet concurrently.
func (c *Coordinator) pollAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range c.workerList() {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.poll(ctx, c.pollInterval)
		}(w)
	}
	wg.Wait()
}

// writeJSON writes v with the given status.
func (c *Coordinator) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps an error to its status: coordinator-originated
// errors carry one; server-shape validation errors keep theirs;
// anything else is a 500.
func (c *Coordinator) writeError(w http.ResponseWriter, err error) {
	status := server.ErrorStatus(err)
	var he *httpErr
	if errors.As(err, &he) {
		status = he.status
	}
	c.writeJSON(w, status, server.ErrorResponse{Error: err.Error()})
}

// retryAfterSeconds estimates when an admission slot frees: the active
// campaigns' unresolved cells over the healthy fleet's total
// parallelism, priced at the fleet cycle-cell mean. Clamped to
// [1, 600] like the single-node server.
func (c *Coordinator) retryAfterSeconds() int {
	outstanding := c.jobs.remainingCells()
	par := 0
	for _, w := range c.workerList() {
		if !w.isHealthy() {
			continue
		}
		st := w.status()
		if st.Parallelism > 0 {
			par += st.Parallelism
		} else {
			par++
		}
	}
	if par < 1 {
		par = 1
	}
	mean := c.estimateSecs(ltp.BackendCycle)
	secs := int(math.Ceil(mean * float64(outstanding+1) / float64(par)))
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return secs
}

// writeBusy renders a 429 with Retry-After and the duplicate-job hint.
func (c *Coordinator) writeBusy(w http.ResponseWriter, err error, hash string) {
	retry := c.retryAfterSeconds()
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
	resp := server.ErrorResponse{
		Error:             err.Error(),
		RetryAfterSeconds: retry,
		Hash:              hash,
	}
	if j, ok := c.jobs.findActiveByHash(hash); ok {
		resp.DuplicateJobID = j.id
	}
	c.writeJSON(w, http.StatusTooManyRequests, resp)
}

// HealthResponse is the coordinator's GET /healthz body: the
// single-node shape plus the fleet view.
type HealthResponse struct {
	// Status is "ok" whenever the coordinator can respond (it serves
	// even with zero healthy workers; sweeps then fail after their
	// retry budget).
	Status string `json:"status"`
	// UptimeSeconds is the coordinator's age.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Workers counts fleet members.
	Workers int `json:"workers"`
	// HealthyWorkers counts members answering their stats poll.
	HealthyWorkers int `json:"healthy_workers"`
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	total, healthy := 0, 0
	for _, wk := range c.workerList() {
		total++
		if wk.isHealthy() {
			healthy++
		}
	}
	c.writeJSON(w, http.StatusOK, HealthResponse{
		Status:         "ok",
		UptimeSeconds:  time.Since(c.started).Seconds(),
		Workers:        total,
		HealthyWorkers: healthy,
	})
}

// handleWorkloads proxies the registry listing from any healthy worker
// — the registry is compiled into every binary, so any member's answer
// is authoritative.
func (c *Coordinator) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	for _, name := range c.ring.memberList() {
		wk := c.workerByName(name)
		if wk == nil || !wk.isHealthy() {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, wk.name+"/v1/workloads", nil)
		if err != nil {
			continue
		}
		resp, err := wk.hc.Do(req)
		if err != nil {
			wk.markDown(err)
			continue
		}
		copyResponse(w, resp)
		return
	}
	c.writeError(w, &httpErr{status: http.StatusServiceUnavailable, msg: "no healthy workers"})
}

// WorkerStatus is one fleet member's view in /v1/workers and
// /v1/stats.
type WorkerStatus struct {
	// URL is the worker's base URL (its ring identity).
	URL string `json:"url"`
	// Healthy reports whether the worker answers its stats poll (and
	// is therefore placeable).
	Healthy bool `json:"healthy"`
	// LastError is the most recent transport failure ("" when
	// healthy).
	LastError string `json:"last_error,omitempty"`
	// Parallelism is the worker's reported concurrent-simulation cap
	// (0 before its first successful poll).
	Parallelism int `json:"parallelism"`
	// PendingCells counts cells this coordinator currently has in
	// flight on the worker.
	PendingCells int `json:"pending_cells"`
	// MeanRunSeconds is the worker's reported per-backend EWMA of
	// simulated-cell seconds — the fleet LPT weights.
	MeanRunSeconds map[string]float64 `json:"mean_run_seconds,omitempty"`
}

// WorkersResponse is the GET/POST/DELETE /v1/workers body: the fleet
// roster after the operation.
type WorkersResponse struct {
	// Workers lists the fleet, sorted by URL.
	Workers []WorkerStatus `json:"workers"`
}

// WorkerJoinRequest is the POST /v1/workers body.
type WorkerJoinRequest struct {
	// URL is the joining worker's base URL.
	URL string `json:"url"`
}

func (c *Coordinator) handleWorkersGet(w http.ResponseWriter, r *http.Request) {
	c.writeJSON(w, http.StatusOK, WorkersResponse{Workers: c.Workers()})
}

func (c *Coordinator) handleWorkersPost(w http.ResponseWriter, r *http.Request) {
	var req WorkerJoinRequest
	if err := server.DecodeJSON(r, &req); err != nil {
		c.writeError(w, err)
		return
	}
	if err := c.AddWorker(req.URL); err != nil {
		c.writeError(w, &httpErr{status: http.StatusBadRequest, msg: err.Error()})
		return
	}
	c.writeJSON(w, http.StatusOK, WorkersResponse{Workers: c.Workers()})
}

// handleWorkersDelete removes the worker named by the url query
// parameter from the ring.
func (c *Coordinator) handleWorkersDelete(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("url")
	if raw == "" {
		c.writeError(w, server.BadRequestf("missing url query parameter"))
		return
	}
	if !c.RemoveWorker(raw) {
		c.writeError(w, &httpErr{status: http.StatusNotFound, msg: "no such worker"})
		return
	}
	c.writeJSON(w, http.StatusOK, WorkersResponse{Workers: c.Workers()})
}

// FleetStatsResponse is the coordinator's GET /v1/stats body.
type FleetStatsResponse struct {
	// Workers is the per-member health, load and LPT-weight view.
	Workers []WorkerStatus `json:"workers"`
	// Jobs counts coordinator campaigns.
	Jobs server.JobStats `json:"jobs"`
	// Limits echoes the admission policy.
	Limits server.Limits `json:"limits"`
	// Store exposes the coordinator-side result bank's counters
	// (absent without Config.StorePath).
	Store *store.Stats `json:"store,omitempty"`
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	total, active := c.jobs.counts()
	resp := FleetStatsResponse{
		Workers: c.Workers(),
		Jobs:    server.JobStats{Total: total, Active: active},
		Limits:  c.limits,
	}
	if c.store != nil {
		st := c.store.Stats()
		resp.Store = &st
	}
	c.writeJSON(w, http.StatusOK, resp)
}

// handleRun validates the request like a worker would, then proxies
// the original body to the run's ring home — walking the failover
// order past dead members — and copies the worker's response through.
func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		c.writeError(w, server.BadRequestf("reading request body: %v", err))
		return
	}
	var req server.RunRequest
	if err := strictUnmarshal(body, &req); err != nil {
		c.writeError(w, err)
		return
	}
	spec, err := req.Spec(c.limits)
	if err != nil {
		c.writeError(w, err)
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		c.writeError(w, server.BadRequestf("%v", err))
		return
	}
	for _, name := range c.ring.lookupOrder(hash, 0) {
		wk := c.workerByName(name)
		if wk == nil || !wk.isHealthy() {
			continue
		}
		preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, wk.name+"/v1/run", bytes.NewReader(body))
		if err != nil {
			continue
		}
		preq.Header.Set("Content-Type", "application/json")
		resp, err := wk.hc.Do(preq)
		if err != nil {
			if r.Context().Err() != nil {
				return // client gone; nobody is reading
			}
			wk.markDown(err)
			c.logf("run %s: worker %s failed, trying next: %v", hash, wk.name, err)
			continue
		}
		copyResponse(w, resp)
		return
	}
	c.writeError(w, &httpErr{status: http.StatusServiceUnavailable, msg: "no healthy workers"})
}

// copyResponse streams a proxied worker response to the client.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// strictUnmarshal decodes one JSON object with the server's strictness
// (unknown fields and trailing garbage are 400s).
func strictUnmarshal(b []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return server.BadRequestf("invalid request body: %v", err)
	}
	if dec.More() {
		return server.BadRequestf("invalid request body: trailing data after the JSON object")
	}
	return nil
}

// handleSweep admits a campaign under the fleet and tenant bounds and
// runs it across the workers; the response forms (202 view, ?wait=1,
// ?stream=1 NDJSON) match the single-node server exactly.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req server.SweepRequest
	if err := server.DecodeJSON(r, &req); err != nil {
		c.writeError(w, err)
		return
	}
	spec, err := req.Spec(c.limits)
	if err != nil {
		c.writeError(w, err)
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		c.writeError(w, server.BadRequestf("%v", err))
		return
	}
	tenant := r.Header.Get("X-LTP-Tenant")
	id, err := c.jobs.admit(tenant, hash)
	if err != nil {
		var he *httpErr
		if errors.As(err, &he) && he.status == http.StatusTooManyRequests {
			c.writeBusy(w, err, hash)
			return
		}
		c.writeError(w, err)
		return
	}
	j := newCJob(id, tenant, hash, spec, wantsStream(r))
	c.jobsWG.Add(1)
	c.jobs.register(j)
	go c.runJob(j)
	c.logf("sweep %s submitted: %d runs, hash %s, tenant %q", id, j.total, hash, tenant)
	c.respondSubmitted(w, r, j)
}

// wantsStream reports whether the submission asked for the NDJSON
// cell stream.
func wantsStream(r *http.Request) bool { return r.URL.Query().Get("stream") == "1" }

// respondSubmitted handles the ?stream=1 / ?wait=1 forms.
func (c *Coordinator) respondSubmitted(w http.ResponseWriter, r *http.Request, j *cjob) {
	switch {
	case wantsStream(r):
		defer j.streamFinished()
		c.streamJob(w, r, j)
	case r.URL.Query().Get("wait") == "1":
		select {
		case <-j.doneCh:
		case <-r.Context().Done():
			return // client went away; the campaign keeps running
		}
		c.writeJSON(w, http.StatusOK, c.jobResponse(j))
	default:
		c.writeJSON(w, http.StatusAccepted, c.jobResponse(j))
	}
}

// jobResponse renders a job in the single-node sweep response shape.
func (c *Coordinator) jobResponse(j *cjob) server.SweepResponse {
	view := j.view()
	resp := server.SweepResponse{Job: view}
	if view.Status == server.JobDone {
		resp.Result = j.result
	}
	return resp
}

// streamJob writes chunked NDJSON: every resolved cell as it lands,
// then the final result/error event — the single-node stream shape.
func (c *Coordinator) streamJob(w http.ResponseWriter, r *http.Request, j *cjob) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev server.StreamEvent) {
		_ = enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	next := 0
	for {
		cells, more, done := j.cellsFrom(next)
		for i := range cells {
			cell := cells[i]
			emit(server.StreamEvent{Type: "cell", Cell: &cell})
		}
		next += len(cells)
		if done {
			break
		}
		select {
		case <-r.Context().Done():
			return
		case <-more:
		}
	}

	<-j.doneCh
	view := j.view()
	if j.err != nil {
		emit(server.StreamEvent{Type: "error", Job: &view, Error: j.err.Error()})
		return
	}
	emit(server.StreamEvent{Type: "result", Job: &view, Sweep: j.result})
}

func (c *Coordinator) handleJobs(w http.ResponseWriter, r *http.Request) {
	resp := server.JobsResponse{Jobs: []server.JobView{}}
	for _, j := range c.jobs.list() {
		resp.Jobs = append(resp.Jobs, j.view())
	}
	c.writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := c.jobs.get(r.PathValue("id"))
	if !ok {
		c.writeError(w, &httpErr{status: http.StatusNotFound, msg: "no such job"})
		return
	}
	c.writeJSON(w, http.StatusOK, c.jobResponse(j))
}

// handleJobDelete cancels a campaign fleet-wide: cells queued on the
// coordinator never dispatch, in-flight batches are severed (workers
// abort their cells mid-pipeline via the request context), and the
// job settles canceled. Idempotent, like the single-node endpoint.
func (c *Coordinator) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j, ok := c.jobs.get(r.PathValue("id"))
	if !ok {
		c.writeError(w, &httpErr{status: http.StatusNotFound, msg: "no such job"})
		return
	}
	j.cancel(ltp.ErrJobCanceled)
	c.logf("campaign %s cancel requested", j.id)
	c.writeJSON(w, http.StatusOK, c.jobResponse(j))
}
