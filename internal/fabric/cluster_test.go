package fabric

// In-process multi-worker cluster fixture: real server.Server workers
// over real engines behind httptest listeners, optionally fronted by
// fault-injection proxies (faultproxy), with one Coordinator over the
// lot. Everything runs in this process, so chaos tests are
// deterministic and -race sees the whole fabric.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ltp/internal/fabric/faultproxy"
	"ltp/internal/server"
)

// workerNode is one in-process worker, optionally fronted by a fault
// proxy.
type workerNode struct {
	srv   *server.Server
	ts    *httptest.Server
	proxy *faultproxy.Proxy
}

// url is the address the coordinator dials (the proxy when present).
func (n *workerNode) url() string {
	if n.proxy != nil {
		return n.proxy.URL()
	}
	return n.ts.URL
}

// testCluster is a coordinator over n in-process workers.
type testCluster struct {
	coord   *Coordinator
	front   *httptest.Server
	workers []*workerNode
}

// clusterOpts tunes the fixture.
type clusterOpts struct {
	workers int
	proxied bool
	cfg     Config // Workers is filled in by the fixture
}

// newCluster boots the fixture and registers teardown.
func newCluster(t *testing.T, opts clusterOpts) *testCluster {
	t.Helper()
	c := &testCluster{}
	for i := 0; i < opts.workers; i++ {
		srv, err := server.New(server.Config{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		n := &workerNode{srv: srv, ts: httptest.NewServer(srv.Handler())}
		if opts.proxied {
			p, err := faultproxy.New(strings.TrimPrefix(n.ts.URL, "http://"))
			if err != nil {
				t.Fatal(err)
			}
			n.proxy = p
		}
		c.workers = append(c.workers, n)
	}
	cfg := opts.cfg
	for _, n := range c.workers {
		cfg.Workers = append(cfg.Workers, n.url())
	}
	// Fast-reacting defaults for tests unless a test overrides them.
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 100 * time.Millisecond
	}
	if cfg.HangTimeout == 0 {
		cfg.HangTimeout = 5 * time.Second
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.coord = coord
	c.front = httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		c.front.Close()
		coord.Close()
		for _, n := range c.workers {
			if n.proxy != nil {
				_ = n.proxy.Close()
			}
			n.ts.Close()
			n.srv.Close()
		}
	})
	return c
}

// postJSON sends a JSON body and decodes the JSON response.
func postJSON(t *testing.T, url, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

// getJSON fetches a URL and decodes the JSON response.
func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

// quickSweepBody is a 2-cell × 2-replicate campaign (4 runs).
const quickSweepBody = `{
  "base": {"scenario":"branchy","scale":0.05,"max_insts":4000},
  "axes": [
    {"name":"iq","points":[{"name":"iq64","patch":{"iq_size":64}},{"name":"iq32","patch":{"iq_size":32}}]},
    {"name":"seed","replicate":true,"points":[{"name":"s0","patch":{"seed":1}},{"name":"s1","patch":{"seed":2}}]}
  ]
}`

// chaosSweepBody is a 4-cell × 3-replicate campaign (12 runs) — big
// enough that a mid-campaign fault strands work on the injured
// worker.
const chaosSweepBody = `{
  "base": {"scenario":"branchy","scale":0.05,"max_insts":3000},
  "axes": [
    {"name":"iq","points":[
      {"name":"iq16","patch":{"iq_size":16}},
      {"name":"iq32","patch":{"iq_size":32}},
      {"name":"iq48","patch":{"iq_size":48}},
      {"name":"iq64","patch":{"iq_size":64}}]},
    {"name":"seed","replicate":true,"points":[
      {"name":"s0","patch":{"seed":1}},
      {"name":"s1","patch":{"seed":2}},
      {"name":"s2","patch":{"seed":3}}]}
  ]
}`

// streamSweep submits a sweep with ?stream=1 and returns the raw
// response for line-by-line reading.
func streamSweep(t *testing.T, base, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweep?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var e server.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("stream submit status %d: %s", resp.StatusCode, e.Error)
	}
	return resp
}

// readEvents drains an NDJSON stream, invoking onCell per cell event
// (when non-nil), and returns the final event.
func readEvents(t *testing.T, resp *http.Response, onCell func(ev server.StreamEvent, n int)) server.StreamEvent {
	t.Helper()
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var last server.StreamEvent
	cells := 0
	for sc.Scan() {
		var ev server.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if ev.Type == "cell" {
			cells++
			if onCell != nil {
				onCell(ev, cells)
			}
			continue
		}
		last = ev
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return last
}

// assertCompleteNoDupes verifies the chaos invariant on a finished
// campaign's collected cells: every enumerated run resolved exactly
// once (no lost cells, no duplicate dispatch surviving to the
// client), and each carries a result hash.
func assertCompleteNoDupes(t *testing.T, total int, cells []server.StreamEvent) {
	t.Helper()
	if len(cells) != total {
		t.Fatalf("got %d cells; want %d", len(cells), total)
	}
	seen := make(map[string]bool, total)
	for _, ev := range cells {
		key := fmt.Sprintf("%d/%s", ev.Cell.Index, ev.Cell.Phase)
		if seen[key] {
			t.Fatalf("cell %s delivered twice", key)
		}
		seen[key] = true
		if ev.Cell.Error != "" {
			t.Fatalf("cell %d failed: %s", ev.Cell.Index, ev.Cell.Error)
		}
		if ev.Cell.Hash == "" {
			t.Fatalf("cell %d has no hash", ev.Cell.Index)
		}
	}
}
