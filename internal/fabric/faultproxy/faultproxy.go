// Package faultproxy is a controllable TCP proxy for fabric chaos
// tests: it sits between a coordinator and one worker and can, at any
// moment, kill the worker (sever every connection and refuse new
// ones), hang it (connections stay open but no byte moves — the
// coordinator's hang watchdog territory), delay traffic, or corrupt
// the worker's response bytes (the defensive-decoder territory). All
// transitions are safe mid-campaign; Resume restores pass-through for
// new connections.
package faultproxy

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Mode is the proxy's current fault behaviour.
type Mode int

// Fault modes: pass-through, dead worker, hung worker, corrupting
// worker.
const (
	// ModePass forwards traffic untouched.
	ModePass Mode = iota
	// ModeKill severs every connection and resets new ones — the
	// coordinator sees a dead worker.
	ModeKill
	// ModeHang keeps connections open but forwards nothing — the
	// coordinator sees a silent worker (hang-timeout territory).
	ModeHang
	// ModeCorrupt flips a byte in every worker-to-client chunk — the
	// coordinator's decoders see garbage mid-stream.
	ModeCorrupt
)

// Proxy is one controllable worker front. Create with New, point the
// coordinator at URL, and drive faults from the test.
type Proxy struct {
	target string
	ln     net.Listener

	mu    sync.Mutex
	mode  Mode
	delay time.Duration
	conns map[net.Conn]bool
	// gen increments on every mode change, waking hung forwarders.
	gen    int
	wake   chan struct{}
	closed bool
}

// New starts a proxy on a fresh loopback port forwarding to target
// (a host:port address).
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultproxy: listen: %w", err)
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		conns:  make(map[net.Conn]bool),
		wake:   make(chan struct{}),
	}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's base URL for a coordinator's worker list.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Mode returns the current fault mode.
func (p *Proxy) Mode() Mode {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mode
}

// setMode switches modes and wakes every forwarder blocked on the old
// one.
func (p *Proxy) setMode(m Mode) {
	p.mu.Lock()
	p.mode = m
	p.gen++
	close(p.wake)
	p.wake = make(chan struct{})
	if m == ModeKill {
		for conn := range p.conns {
			_ = conn.Close()
		}
	}
	p.mu.Unlock()
}

// Kill severs every live connection and refuses new ones until
// Resume: the worker is dead as far as the coordinator can tell.
func (p *Proxy) Kill() { p.setMode(ModeKill) }

// Hang freezes traffic without closing anything: connections stay
// established, no byte moves.
func (p *Proxy) Hang() { p.setMode(ModeHang) }

// Corrupt flips a byte in every worker-to-client chunk from now on.
func (p *Proxy) Corrupt() { p.setMode(ModeCorrupt) }

// Delay adds per-chunk latency in both directions (0 restores full
// speed). Independent of the mode.
func (p *Proxy) Delay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// Resume restores pass-through for new connections (connections Kill
// severed stay dead — the coordinator re-dials).
func (p *Proxy) Resume() { p.setMode(ModePass) }

// Close shuts the proxy down and severs everything.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for conn := range p.conns {
		_ = conn.Close()
	}
	p.mu.Unlock()
	return p.ln.Close()
}

// acceptLoop accepts client connections and pairs each with an
// upstream dial.
func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		mode, closed := p.mode, p.closed
		if !closed && mode != ModeKill {
			p.conns[conn] = true
		}
		p.mu.Unlock()
		if closed || mode == ModeKill {
			_ = conn.Close()
			continue
		}
		go p.serve(conn)
	}
}

// track registers a connection for Kill/Close severing.
func (p *Proxy) track(conn net.Conn) {
	p.mu.Lock()
	if p.closed || p.mode == ModeKill {
		p.mu.Unlock()
		_ = conn.Close()
		return
	}
	p.conns[conn] = true
	p.mu.Unlock()
}

// untrack forgets a finished connection.
func (p *Proxy) untrack(conn net.Conn) {
	p.mu.Lock()
	delete(p.conns, conn)
	p.mu.Unlock()
}

// serve proxies one client connection to the upstream worker.
func (p *Proxy) serve(client net.Conn) {
	defer p.untrack(client)
	defer client.Close()
	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		return
	}
	p.track(upstream)
	defer p.untrack(upstream)
	defer upstream.Close()

	done := make(chan struct{}, 2)
	go func() { p.forward(upstream, client, false); done <- struct{}{} }()
	go func() { p.forward(client, upstream, true); done <- struct{}{} }()
	<-done
	// One direction died; sever the other so both forwarders exit.
}

// forward pumps one direction chunk by chunk, applying the current
// fault mode per chunk. corrupt marks the worker-to-client direction
// (only worker responses are corrupted — the request side stays
// clean, like a worker whose output path went bad).
func (p *Proxy) forward(dst, src net.Conn, corruptible bool) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !p.gate(corruptible, buf[:n]) {
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// gate applies the current mode to one chunk: blocks while hung,
// sleeps the configured delay, corrupts in place when asked. Returns
// false when the connection should be severed instead.
func (p *Proxy) gate(corruptible bool, chunk []byte) bool {
	for {
		p.mu.Lock()
		mode, delay, wake, closed := p.mode, p.delay, p.wake, p.closed
		p.mu.Unlock()
		if closed || mode == ModeKill {
			return false
		}
		if mode == ModeHang {
			<-wake // blocks until the next mode change
			continue
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		if mode == ModeCorrupt && corruptible && len(chunk) > 0 {
			chunk[len(chunk)/2] ^= 0xFF
		}
		return true
	}
}
