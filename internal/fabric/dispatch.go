package fabric

// The coordinator's execution engine: runJob drives one campaign
// through the same phase structure the single-node engine uses
// (snapshot diffing, triage's model pre-pass + detailed re-run), but
// each phase's cells resolve by fleet dispatch instead of a local
// pool. Dispatch proceeds in rounds: every pending cell is placed on
// the ring (home worker unless the fleet LPT heuristic spills it),
// each worker's cells stream through windowed /v1/cells batches, and
// whatever a dead, hung or lying worker leaves unresolved is retried
// — with exponential backoff — on the surviving ring until its
// attempt budget runs out. A coordinator-wide flight table
// single-flights identical cells across concurrent jobs, and the
// optional store banks every resolved cell so a restarted coordinator
// resumes by diffing.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ltp"
	"ltp/internal/server"
)

// errNoWorkers is the dispatch failure when no healthy worker exists;
// it burns retry attempts like any other worker loss so a fully dead
// fleet fails jobs instead of spinning.
var errNoWorkers = errors.New("fabric: no healthy workers")

// flight is one cell in flight somewhere on the fleet. Joiners (other
// jobs wanting the same cell) wait on done; abandoned means the owner
// was cancelled before resolving it and a joiner must take over.
type flight struct {
	done      chan struct{}
	res       ltp.RunResult
	err       error
	abandoned bool
}

// acquireFlight registers interest in a cell hash: the first caller
// becomes the owner (true) and must completeFlight exactly once;
// later callers get the owner's flight to wait on.
func (c *Coordinator) acquireFlight(hash string) (*flight, bool) {
	c.flightMu.Lock()
	defer c.flightMu.Unlock()
	if f, ok := c.flights[hash]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	c.flights[hash] = f
	return f, true
}

// completeFlight resolves the owner's flight and removes it from the
// table. abandoned marks a cancellation — joiners re-dispatch instead
// of inheriting the owner's cancel.
func (c *Coordinator) completeFlight(hash string, res ltp.RunResult, err error, abandoned bool) {
	c.flightMu.Lock()
	f, ok := c.flights[hash]
	if ok {
		delete(c.flights, hash)
	}
	c.flightMu.Unlock()
	if !ok {
		return
	}
	f.res, f.err, f.abandoned = res, err, abandoned
	close(f.done)
}

// pendingCell is one cell awaiting fleet dispatch.
type pendingCell struct {
	idx      int // index into the phase's runs
	spec     ltp.RunSpec
	hash     string
	backend  string
	attempts int
}

// runJob drives one campaign to completion (the per-job goroutine).
func (c *Coordinator) runJob(j *cjob) {
	defer c.jobsWG.Done()
	defer close(j.doneCh)
	defer j.cancel(nil)
	defer j.finishCells()
	defer j.abandonRemaining()

	runs, err := j.spec.Runs()
	if err != nil {
		j.err = err
		return
	}
	if j.spec.Triage != nil {
		c.runTriageJob(j, runs)
		return
	}
	runs = c.skipSnapshotRuns(j, runs)
	results, errs := c.runPhase(j, runs, "")
	if j.ctx.Err() != nil {
		j.err = cancelCause(j.ctx)
		return
	}
	if err := firstCellError(runs, errs); err != nil {
		j.err = err
		return
	}
	j.result, j.err = ltp.AggregateSweep(j.spec, runs, results)
}

// runTriageJob mirrors the single-node triage flow: a model-backend
// pre-pass over every cell (dispatched like any other phase), a
// ranking by model-estimated mean CPI, and a detailed re-run of the
// TopK cells — whose specs are untouched, so their hashes (and
// therefore worker caches and the flight table) match direct
// submissions.
func (c *Coordinator) runTriageJob(j *cjob, runs []ltp.SweepRun) {
	model := make([]ltp.SweepRun, len(runs))
	for i, r := range runs {
		r.Spec.Backend = ltp.BackendModel
		model[i] = r
	}
	mres, merrs := c.runPhase(j, model, ltp.PhaseTriage)
	if j.ctx.Err() != nil {
		j.err = cancelCause(j.ctx)
		return
	}
	if err := firstCellError(model, merrs); err != nil {
		j.err = err
		return
	}
	estimates, err := ltp.AggregateSweep(j.spec, model, mres)
	if err != nil {
		j.err = err
		return
	}

	order := make([]int, len(estimates.Cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return estimates.Cells[order[a]].CPI.Mean < estimates.Cells[order[b]].CPI.Mean
	})
	selected := make(map[int]bool, j.spec.Triage.TopK)
	for _, ci := range order[:j.spec.Triage.TopK] {
		selected[ci] = true
	}

	var detail []ltp.SweepRun
	for _, r := range runs {
		if selected[r.Cell] {
			detail = append(detail, r)
		}
	}
	dres, derrs := c.runPhase(j, detail, ltp.PhaseDetail)
	if j.ctx.Err() != nil {
		j.err = cancelCause(j.ctx)
		return
	}
	if err := firstCellError(detail, derrs); err != nil {
		j.err = err
		return
	}
	detailed, err := ltp.AggregateSweep(j.spec, detail, dres)
	if err != nil {
		j.err = err
		return
	}
	out := &ltp.SweepResult{
		Axes:   estimates.Axes,
		Cells:  estimates.Cells,
		Triage: &ltp.TriageResult{TopK: j.spec.Triage.TopK},
	}
	for _, cell := range detailed.Cells {
		if cell.Replicates > 0 {
			out.Triage.Detailed = append(out.Triage.Detailed, cell)
		}
	}
	j.result = out
}

// skipSnapshotRuns settles every run whose content address is in the
// sweep's SinceSnapshot set — streamed immediately as an outcome
// "cached" cell — and returns the remainder for dispatch, exactly
// like the single-node engine.
func (c *Coordinator) skipSnapshotRuns(j *cjob, runs []ltp.SweepRun) []ltp.SweepRun {
	if len(j.spec.SinceSnapshot) == 0 {
		return runs
	}
	snap := make(map[string]bool, len(j.spec.SinceSnapshot))
	for _, h := range j.spec.SinceSnapshot {
		snap[h] = true
	}
	kept := make([]ltp.SweepRun, 0, len(runs))
	for _, r := range runs {
		h, err := r.Spec.Hash()
		if err != nil || !snap[h] {
			kept = append(kept, r)
			continue
		}
		j.done.Add(1)
		j.skipped.Add(1)
		j.appendCell(ltp.CellResult{
			Index:     r.Index,
			Coords:    r.Coords,
			Cell:      r.Cell,
			Replicate: r.Replicate,
			Hash:      h,
			Backend:   backendName(r.Spec),
			Outcome:   "cached",
		})
	}
	return kept
}

// runPhase resolves one batch of enumerated runs across the fleet,
// streaming each resolved cell with the given phase tag. Cells the
// coordinator's store already holds settle immediately (outcome
// "store"); cells another job has in flight join it (outcome "shared"
// on success, take-over on abandonment); everything else dispatches.
func (c *Coordinator) runPhase(j *cjob, runs []ltp.SweepRun, phase string) ([]ltp.RunResult, []error) {
	results := make([]ltp.RunResult, len(runs))
	errs := make([]error, len(runs))
	hashes := make([]string, len(runs))

	settle := func(i int, res ltp.RunResult, outcome string, err error) {
		results[i], errs[i] = res, err
		if err != nil && isCancel(err) {
			j.canceled.Add(1)
			return
		}
		switch outcome {
		case "hit":
			j.hits.Add(1)
		case "shared":
			j.shared.Add(1)
		case "store":
			j.storeHits.Add(1)
		default:
			j.misses.Add(1)
		}
		j.done.Add(1)
		cell := ltp.CellResult{
			Index:     runs[i].Index,
			Coords:    runs[i].Coords,
			Cell:      runs[i].Cell,
			Replicate: runs[i].Replicate,
			Hash:      hashes[i],
			Backend:   backendName(runs[i].Spec),
			Phase:     phase,
			Outcome:   outcome,
			Result:    res,
			Err:       err,
		}
		if err != nil {
			cell.Error = err.Error()
		}
		j.appendCell(cell)
	}

	var owned []pendingCell
	var joinWG sync.WaitGroup
	for i := range runs {
		h, err := runs[i].Spec.Hash()
		if err != nil {
			settle(i, ltp.RunResult{}, "", err)
			continue
		}
		hashes[i] = h
		if res, ok := c.storeLookup(h); ok {
			settle(i, res, "store", nil)
			continue
		}
		f, owner := c.acquireFlight(h)
		if owner {
			owned = append(owned, pendingCell{idx: i, spec: runs[i].Spec, hash: h, backend: backendName(runs[i].Spec)})
			continue
		}
		joinWG.Add(1)
		go func(i int, f *flight) {
			defer joinWG.Done()
			c.joinFlight(j, f, pendingCell{idx: i, spec: runs[i].Spec, hash: hashes[i], backend: backendName(runs[i].Spec)}, settle)
		}(i, f)
	}
	c.dispatchCells(j.ctx, owned, c.ownerResolver(settle))
	joinWG.Wait()
	return results, errs
}

// ownerResolver wraps a phase's settle for cells this job owns the
// flight of: bank the result, complete the flight (abandoned on
// cancellation, so a joining job re-dispatches instead of inheriting
// this job's cancel), then settle.
func (c *Coordinator) ownerResolver(settle func(int, ltp.RunResult, string, error)) func(pendingCell, ltp.RunResult, string, error) {
	return func(p pendingCell, res ltp.RunResult, outcome string, err error) {
		if err == nil {
			c.bank(p.hash, p.spec, res)
		}
		c.completeFlight(p.hash, res, err, err != nil && isCancel(err))
		settle(p.idx, res, outcome, err)
	}
}

// joinFlight waits on another job's in-flight cell. On success the
// cell settles as "shared" (it was simulated exactly once,
// fleet-wide); on the owner's failure the error is shared too; on
// abandonment (the owner's job was cancelled mid-flight) this job
// takes over — re-checking the store, then racing to own a fresh
// flight and dispatch the cell itself.
func (c *Coordinator) joinFlight(j *cjob, f *flight, p pendingCell, settle func(int, ltp.RunResult, string, error)) {
	for {
		select {
		case <-j.ctx.Done():
			settle(p.idx, ltp.RunResult{}, "", cancelCause(j.ctx))
			return
		case <-f.done:
		}
		if !f.abandoned {
			if f.err != nil {
				settle(p.idx, ltp.RunResult{}, "", f.err)
			} else {
				settle(p.idx, f.res, "shared", nil)
			}
			return
		}
		if res, ok := c.storeLookup(p.hash); ok {
			settle(p.idx, res, "store", nil)
			return
		}
		nf, owner := c.acquireFlight(p.hash)
		if owner {
			c.dispatchCells(j.ctx, []pendingCell{p}, func(p pendingCell, res ltp.RunResult, outcome string, err error) {
				if err == nil {
					c.bank(p.hash, p.spec, res)
				}
				c.completeFlight(p.hash, res, err, err != nil && isCancel(err))
				settle(p.idx, res, outcome, err)
			})
			return
		}
		f = nf
	}
}

// dispatchCells resolves every given cell across the fleet, calling
// resolve exactly once per cell: with its result, with its terminal
// in-band failure, or — after the attempt budget — with the last
// worker-loss error. Rounds re-place the surviving cells on the
// current healthy ring with exponential backoff between them.
func (c *Coordinator) dispatchCells(ctx context.Context, cells []pendingCell, resolve func(pendingCell, ltp.RunResult, string, error)) {
	if len(cells) == 0 {
		return
	}
	pending := make([]int, len(cells))
	for i := range pending {
		pending[i] = i
	}
	for round := 0; len(pending) > 0; round++ {
		if ctx.Err() != nil {
			for _, k := range pending {
				resolve(cells[k], ltp.RunResult{}, "", cancelCause(ctx))
			}
			return
		}
		if round > 0 {
			backoff := c.retryBackoff << uint(round-1)
			if max := 30 * time.Second; backoff > max {
				backoff = max
			}
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				continue // the loop top resolves the cancellation
			case <-t.C:
			}
		}

		// Fleet LPT: longest estimated cells place first, so expensive
		// work packs onto the least-loaded (or home) workers before the
		// cheap tail fills the gaps.
		ests := make(map[int]float64, len(pending))
		for _, k := range pending {
			ests[k] = c.estimateSecs(cells[k].backend)
		}
		sort.SliceStable(pending, func(a, b int) bool { return ests[pending[a]] > ests[pending[b]] })

		var next []int
		var nextMu sync.Mutex
		fail := func(k int, err error) {
			cells[k].attempts++
			if cells[k].attempts >= c.retryAttempts {
				resolve(cells[k], ltp.RunResult{}, "", fmt.Errorf("fabric: cell %s failed after %d attempts: %w", cells[k].hash, cells[k].attempts, err))
				return
			}
			nextMu.Lock()
			next = append(next, k)
			nextMu.Unlock()
		}

		groups := make(map[*worker][]int)
		for _, k := range pending {
			w := c.place(cells[k].hash, cells[k].backend, ests[k])
			if w == nil {
				fail(k, errNoWorkers)
				continue
			}
			groups[w] = append(groups[w], k)
		}
		var wg sync.WaitGroup
		for w, ks := range groups {
			wg.Add(1)
			go func(w *worker, ks []int) {
				defer wg.Done()
				c.dispatchLane(ctx, w, cells, ks, resolve, fail)
			}(w, ks)
		}
		wg.Wait()
		pending = next
	}
}

// dispatchLane feeds one worker its share of a round in windowed
// /v1/cells batches. A transport failure (connection loss, hang
// timeout, malformed stream) marks the worker down, fails the
// unresolved remainder back to the round loop for re-placement, and
// abandons the lane; in-band cell errors are terminal simulation
// failures and resolve immediately.
func (c *Coordinator) dispatchLane(ctx context.Context, w *worker, cells []pendingCell, ks []int, resolve func(pendingCell, ltp.RunResult, string, error), fail func(int, error)) {
	for start := 0; start < len(ks); start += c.window {
		end := start + c.window
		if end > len(ks) {
			end = len(ks)
		}
		chunk := ks[start:end]
		if err := ctx.Err(); err != nil {
			for _, k := range ks[start:] {
				fail(k, cancelCause(ctx))
			}
			return
		}

		specs := make([]ltp.RunSpec, len(chunk))
		perCell := make([]float64, len(chunk))
		var charged float64
		for ci, k := range chunk {
			specs[ci] = cells[k].spec
			perCell[ci] = c.estimateSecs(cells[k].backend)
			charged += perCell[ci]
		}
		w.addLoad(len(chunk), charged)

		unresolved := make(map[int]int, len(chunk)) // event index -> ks entry
		for ci, k := range chunk {
			unresolved[ci] = k
		}
		err := w.runCells(ctx, specs, c.hangTimeout, func(ev server.CellEvent) error {
			k, ok := unresolved[ev.Index]
			if !ok {
				return fmt.Errorf("cell event index %d out of range or duplicate", ev.Index)
			}
			if ev.Error == "" && ev.Result == nil {
				return fmt.Errorf("cell event %d carries neither result nor error", ev.Index)
			}
			delete(unresolved, ev.Index)
			w.releaseLoad(1, perCell[ev.Index])
			if ev.Error != "" {
				resolve(cells[k], ltp.RunResult{}, "", fmt.Errorf("fabric: cell %s failed on %s: %s", cells[k].hash, w.name, ev.Error))
			} else {
				resolve(cells[k], *ev.Result, normalizeOutcome(ev.Outcome), nil)
			}
			return nil
		})
		if n := len(unresolved); n > 0 {
			var secs float64
			for ci := range unresolved {
				secs += perCell[ci]
			}
			w.releaseLoad(n, secs)
		}
		if err != nil {
			if ctx.Err() == nil {
				w.markDown(err)
				c.logf("worker %s lost mid-batch (%d cells unresolved): %v", w.name, len(unresolved), err)
			}
			for _, k := range unresolved {
				fail(k, err)
			}
			for _, k := range ks[end:] {
				fail(k, err)
			}
			return
		}
		// Clean Done marker with unresolved cells is a protocol
		// violation; retry them elsewhere.
		for _, k := range unresolved {
			fail(k, fmt.Errorf("fabric: %s closed the batch without resolving every cell", w.name))
		}
	}
}

// place picks the worker for one cell: its ring home, unless the home
// is so much more loaded than the best candidate that cache affinity
// stops paying — then the fleet LPT argmin (load over parallelism
// plus the cell's estimated cost, weighted by each worker's reported
// per-backend means) wins.
func (c *Coordinator) place(hash, backend string, est float64) *worker {
	order := c.ring.lookupOrder(hash, 0)
	var home, best *worker
	var homeCost, bestCost float64
	for _, name := range order {
		w := c.workerByName(name)
		if w == nil || !w.isHealthy() {
			continue
		}
		cost := w.queuedSecs() + w.meanFor(backend, est)
		if home == nil {
			home, homeCost = w, cost
		}
		if best == nil || cost < bestCost {
			best, bestCost = w, cost
		}
	}
	if home == nil {
		return nil
	}
	if homeCost <= c.spillFactor*bestCost+1e-9 {
		return home
	}
	return best
}

// estimateSecs is the fleet-wide estimated cost of one cell on the
// given backend: the mean of the workers' reported per-backend EWMAs,
// falling back to a nominal guess before any worker has reported.
func (c *Coordinator) estimateSecs(backend string) float64 {
	var sum float64
	var n int
	for _, w := range c.workerList() {
		if m, ok := w.reportedMean(backend); ok {
			sum += m
			n++
		}
	}
	if n > 0 {
		return sum / float64(n)
	}
	if backend == ltp.BackendModel {
		return 0.001 // analytical estimates are near-free
	}
	return 1.0
}

// normalizeOutcome clamps a worker-reported outcome to the known set
// so arbitrary strings never propagate into client-facing cells.
func normalizeOutcome(outcome string) string {
	switch outcome {
	case "hit", "shared", "store":
		return outcome
	default:
		return "miss"
	}
}

// backendName resolves a run spec's backend label for cell rendering
// and LPT weighting ("cycle" when the spec leaves it implicit).
func backendName(spec ltp.RunSpec) string {
	if spec.Backend != "" {
		return spec.Backend
	}
	if canon, err := spec.Canonical(); err == nil && canon.Backend != "" {
		return canon.Backend
	}
	return ltp.BackendCycle
}

// firstCellError returns the first cell failure, labeled with its
// coordinates.
func firstCellError(runs []ltp.SweepRun, errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("fabric: sweep cell %v: %w", runs[i].Coords, err)
		}
	}
	return nil
}

// bankRecord is the store payload for one banked cell — the same JSON
// shape the single-node engine persists, so a coordinator store and a
// worker store are interchangeable files.
type bankRecord struct {
	Key    string        `json:"key"`
	Spec   ltp.RunSpec   `json:"spec"`
	Result ltp.RunResult `json:"result"`
}

// storeLookup consults the coordinator's result bank for a resolved
// cell. A corrupt or mismatched record degrades to a miss (the cell
// re-simulates), never to a wrong result.
func (c *Coordinator) storeLookup(hash string) (ltp.RunResult, bool) {
	if c.store == nil {
		return ltp.RunResult{}, false
	}
	payload, ok := c.store.Get(hash)
	if !ok {
		return ltp.RunResult{}, false
	}
	var rec bankRecord
	if err := json.Unmarshal(payload, &rec); err != nil || rec.Key != hash {
		return ltp.RunResult{}, false
	}
	return rec.Result, true
}

// bank persists one resolved cell so a restarted coordinator resumes
// an interrupted campaign by store lookups instead of re-dispatching.
// Banking is best-effort: a full disk degrades durability, not the
// running campaign.
func (c *Coordinator) bank(hash string, spec ltp.RunSpec, res ltp.RunResult) {
	if c.store == nil || c.store.Has(hash) {
		return
	}
	canon, err := spec.Canonical()
	if err != nil {
		return
	}
	payload, err := json.Marshal(bankRecord{Key: hash, Spec: canon, Result: res})
	if err != nil {
		return
	}
	if err := c.store.Put(hash, payload); err != nil {
		c.logf("banking cell %s failed: %v", hash, err)
	}
}
