// Package fabric is the sharded campaign fabric: a coordinator that
// fronts a fleet of ltpserved workers and serves the single-node
// client API (/v1/run, /v1/sweep, /v1/jobs, cancellation,
// since_snapshot) unchanged, while sweep cells execute across the
// fleet.
//
// Cells are content-addressed (RunSpec.Hash) and location-independent,
// which is the whole trick: a consistent-hash ring with virtual nodes
// maps each cell hash to a home worker (so repeated campaigns hit that
// worker's cache), a fleet-level LPT heuristic spills cells off
// overloaded homes using the per-backend mean-run-seconds each worker
// reports, a coordinator-wide single-flight table guarantees a cell in
// flight for one job is never re-dispatched for another, and cells
// stranded by a dead or hung worker are re-dispatched to the surviving
// ring with exponential backoff. An optional coordinator-side result
// store banks every resolved cell, so a restarted coordinator resumes
// an interrupted campaign by diffing instead of re-simulating.
//
// See DESIGN.md §13 for the failure model and API.md for the
// coordinator's endpoints (worker registration, fleet stats).
package fabric
