package fabric

// Functional coverage of the coordinator's client surface: the
// acceptance bar is that a coordinator fronting workers is
// indistinguishable from a single node — same hashes, same results,
// same response forms — plus the fleet-only behaviours (tenant
// quotas, worker roster, run proxying).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"ltp/internal/server"
)

// TestCoordinatorMatchesDirectSubmission is the equivalence
// acceptance test: the same sweep submitted to a worker directly and
// through a coordinator fronting that worker must produce the same
// campaign hash and the same aggregated result.
func TestCoordinatorMatchesDirectSubmission(t *testing.T) {
	c := newCluster(t, clusterOpts{workers: 1})

	var direct server.SweepResponse
	resp := postJSON(t, c.workers[0].ts.URL+"/v1/sweep?wait=1", quickSweepBody, &direct)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct submit status %d", resp.StatusCode)
	}
	if direct.Job.Status != server.JobDone || direct.Result == nil {
		t.Fatalf("direct job not done: %+v", direct.Job)
	}

	var viaCoord server.SweepResponse
	resp = postJSON(t, c.front.URL+"/v1/sweep?wait=1", quickSweepBody, &viaCoord)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator submit status %d", resp.StatusCode)
	}
	if viaCoord.Job.Status != server.JobDone || viaCoord.Result == nil {
		t.Fatalf("coordinator job not done: %+v (err %q)", viaCoord.Job, viaCoord.Job.Error)
	}

	if !strings.HasPrefix(direct.Job.Hash, "sw1:") {
		t.Fatalf("unexpected direct hash %q", direct.Job.Hash)
	}
	if viaCoord.Job.Hash != direct.Job.Hash {
		t.Fatalf("hash mismatch: coordinator %q, direct %q", viaCoord.Job.Hash, direct.Job.Hash)
	}
	if !reflect.DeepEqual(viaCoord.Result, direct.Result) {
		t.Fatalf("result mismatch:\ncoordinator: %+v\ndirect: %+v", viaCoord.Result, direct.Result)
	}
	if got, want := viaCoord.Job.Progress.DoneRuns, direct.Job.Progress.TotalRuns; got != want {
		t.Fatalf("coordinator resolved %d runs; want %d", got, want)
	}
}

// TestFleetSweepStreams runs a campaign across three workers with the
// NDJSON stream form and checks the fleet delivered every cell
// exactly once.
func TestFleetSweepStreams(t *testing.T) {
	c := newCluster(t, clusterOpts{workers: 3, cfg: Config{Window: 2}})

	var cells []server.StreamEvent
	resp := streamSweep(t, c.front.URL, chaosSweepBody)
	last := readEvents(t, resp, func(ev server.StreamEvent, n int) { cells = append(cells, ev) })
	if last.Type != "result" {
		t.Fatalf("final event %q (error %q); want result", last.Type, last.Error)
	}
	assertCompleteNoDupes(t, last.Job.Progress.TotalRuns, cells)
	if last.Sweep == nil || len(last.Sweep.Cells) != 4 {
		t.Fatalf("aggregated sweep missing or wrong size: %+v", last.Sweep)
	}
	if last.Job.Progress.CanceledRuns != 0 {
		t.Fatalf("healthy fleet canceled %d runs", last.Job.Progress.CanceledRuns)
	}
}

// TestRunProxiesToRingHome checks /v1/run rides the ring: the second
// identical request lands on the same worker and hits its cache.
func TestRunProxiesToRingHome(t *testing.T) {
	c := newCluster(t, clusterOpts{workers: 3})
	const body = `{"scenario":"branchy","scale":0.05,"max_insts":5000}`

	var first, second server.RunResponse
	if resp := postJSON(t, c.front.URL+"/v1/run", body, &first); resp.StatusCode != http.StatusOK {
		t.Fatalf("first run status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(first.Hash, "rs3:") {
		t.Fatalf("unexpected run hash %q", first.Hash)
	}
	if resp := postJSON(t, c.front.URL+"/v1/run", body, &second); resp.StatusCode != http.StatusOK {
		t.Fatalf("second run status %d", resp.StatusCode)
	}
	if second.Hash != first.Hash {
		t.Fatalf("hash changed between identical runs: %q vs %q", second.Hash, first.Hash)
	}
	if second.Cache != "hit" {
		t.Fatalf("second identical run was %q; want hit (same ring home)", second.Cache)
	}
	if !reflect.DeepEqual(second.Result, first.Result) {
		t.Fatal("identical runs disagree on the result")
	}
}

// TestSinceSnapshotSkipsKnownCells checks the incremental-campaign
// form through the coordinator: hashes listed in since_snapshot
// stream as outcome "cached" without dispatching.
func TestSinceSnapshotSkipsKnownCells(t *testing.T) {
	c := newCluster(t, clusterOpts{workers: 2})

	var hashes []string
	resp := streamSweep(t, c.front.URL, quickSweepBody)
	readEvents(t, resp, func(ev server.StreamEvent, n int) {
		hashes = append(hashes, ev.Cell.Hash)
	})
	if len(hashes) != 4 {
		t.Fatalf("got %d cells; want 4", len(hashes))
	}

	// Resubmit with half the campaign marked already-known.
	snap, _ := json.Marshal(hashes[:2])
	body := strings.TrimSuffix(strings.TrimSpace(quickSweepBody), "}") +
		fmt.Sprintf(`, "since_snapshot": %s}`, snap)
	var out server.SweepResponse
	if resp := postJSON(t, c.front.URL+"/v1/sweep?wait=1", body, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("incremental submit status %d", resp.StatusCode)
	}
	if out.Job.Status != server.JobDone {
		t.Fatalf("incremental job %q: %s", out.Job.Status, out.Job.Error)
	}
	if got := out.Job.Progress.SnapshotSkipped; got != 2 {
		t.Fatalf("snapshot skipped %d runs; want 2", got)
	}
	if got := out.Job.Progress.DoneRuns; got != 4 {
		t.Fatalf("incremental job resolved %d runs; want 4", got)
	}
}

// submitWithTenant posts a sweep with an X-LTP-Tenant header.
func submitWithTenant(t *testing.T, base, tenant, body string) (*http.Response, server.ErrorResponse, server.SweepResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-LTP-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e server.ErrorResponse
	var s server.SweepResponse
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode >= 400 {
		_ = dec.Decode(&e)
	} else {
		_ = dec.Decode(&s)
	}
	return resp, e, s
}

// TestTenantQuota checks the per-tenant admission bound: one tenant's
// active campaigns cannot exceed the quota, and another tenant still
// gets in.
func TestTenantQuota(t *testing.T) {
	c := newCluster(t, clusterOpts{workers: 3, proxied: true, cfg: Config{TenantMaxActive: 1}})
	// Freeze the fleet so campaigns stay active for the duration of the
	// admission checks.
	for _, n := range c.workers {
		n.proxy.Hang()
	}

	resp, _, first := submitWithTenant(t, c.front.URL, "alice", quickSweepBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first alice submit status %d; want 202", resp.StatusCode)
	}
	resp, e, _ := submitWithTenant(t, c.front.URL, "alice", chaosSweepBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second alice submit status %d; want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || e.RetryAfterSeconds < 1 {
		t.Fatalf("429 missing Retry-After guidance: header %q, body %+v", resp.Header.Get("Retry-After"), e)
	}
	resp, _, second := submitWithTenant(t, c.front.URL, "bob", chaosSweepBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bob submit status %d; want 202 (quota is per tenant)", resp.StatusCode)
	}

	// Unfreeze and cancel both so teardown does not wait on hung work.
	for _, n := range c.workers {
		n.proxy.Resume()
	}
	for _, id := range []string{first.Job.ID, second.Job.ID} {
		req, _ := http.NewRequest(http.MethodDelete, c.front.URL+"/v1/jobs/"+id, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
	}
}

// TestCancelFanOut checks DELETE /v1/jobs/{id} settles a campaign as
// canceled with accounting that still adds up to the total.
func TestCancelFanOut(t *testing.T) {
	c := newCluster(t, clusterOpts{workers: 3, proxied: true})
	for _, n := range c.workers {
		n.proxy.Hang()
	}

	var sub server.SweepResponse
	if resp := postJSON(t, c.front.URL+"/v1/sweep", chaosSweepBody, &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, c.front.URL+"/v1/jobs/"+sub.Job.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	for _, n := range c.workers {
		n.proxy.Resume()
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var view server.SweepResponse
		getJSON(t, c.front.URL+"/v1/jobs/"+sub.Job.ID, &view)
		if view.Job.Status == server.JobCanceled {
			p := view.Job.Progress
			if p.DoneRuns+p.CanceledRuns != p.TotalRuns {
				t.Fatalf("canceled job accounting broken: %+v", p)
			}
			if !p.Finished {
				t.Fatalf("canceled job not marked finished: %+v", p)
			}
			break
		}
		if view.Job.Status == server.JobDone || view.Job.Status == server.JobFailed {
			t.Fatalf("job settled %q after cancel", view.Job.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %q after cancel", view.Job.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWorkerRoster exercises /v1/workers join/list/leave and the
// health view's fleet counts.
func TestWorkerRoster(t *testing.T) {
	c := newCluster(t, clusterOpts{workers: 2})

	var roster WorkersResponse
	getJSON(t, c.front.URL+"/v1/workers", &roster)
	if len(roster.Workers) != 2 {
		t.Fatalf("roster has %d workers; want 2", len(roster.Workers))
	}

	// Join a third worker at runtime...
	extra, err := server.New(server.Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ets := httptest.NewServer(extra.Handler())
	t.Cleanup(func() { ets.Close(); extra.Close() })
	join, _ := json.Marshal(WorkerJoinRequest{URL: ets.URL})
	resp := postJSON(t, c.front.URL+"/v1/workers", string(join), &roster)
	if resp.StatusCode != http.StatusOK || len(roster.Workers) != 3 {
		t.Fatalf("join status %d, roster %d; want 200/3", resp.StatusCode, len(roster.Workers))
	}

	var health HealthResponse
	getJSON(t, c.front.URL+"/healthz", &health)
	if health.Status != "ok" || health.Workers != 3 {
		t.Fatalf("health %+v; want ok with 3 workers", health)
	}

	// ...and remove it again.
	req, _ := http.NewRequest(http.MethodDelete, c.front.URL+"/v1/workers?url="+ets.URL, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("leave status %d", dresp.StatusCode)
	}
	getJSON(t, c.front.URL+"/v1/workers", &roster)
	if len(roster.Workers) != 2 {
		t.Fatalf("roster has %d workers after leave; want 2", len(roster.Workers))
	}
}
