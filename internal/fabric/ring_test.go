package fabric

// Property tests for the consistent-hash ring: placement must be a
// pure function of the member set (restart-stable), churn must move
// only the ~K/N keys whose arcs changed hands, and load must spread
// roughly evenly — the properties the fabric's cache-affinity story
// rests on.

import (
	"fmt"
	"testing"
)

// ringKeys fabricates K cell-hash-shaped keys.
func ringKeys(k int) []string {
	keys := make([]string, k)
	for i := range keys {
		keys[i] = fmt.Sprintf("rs2:%08x", i)
	}
	return keys
}

// placements maps every key to its home member.
func placements(r *ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[k] = r.lookup(k)
	}
	return out
}

// TestRingJoinMovesOnlyItsShare checks the rebalance bound: when a
// member joins an N-member ring, only keys that now belong to the
// joiner may move — nothing shuffles between survivors — and the
// moved fraction stays near K/(N+1).
func TestRingJoinMovesOnlyItsShare(t *testing.T) {
	const K = 2000
	keys := ringKeys(K)
	r := newRing(0)
	members := []string{"http://a", "http://b", "http://c", "http://d", "http://e"}
	for _, m := range members {
		r.add(m)
	}
	before := placements(r, keys)

	r.add("http://f")
	after := placements(r, keys)

	moved := 0
	for _, k := range keys {
		if before[k] == after[k] {
			continue
		}
		moved++
		if after[k] != "http://f" {
			t.Fatalf("key %s moved between survivors: %s -> %s", k, before[k], after[k])
		}
	}
	fair := K / (len(members) + 1)
	if moved == 0 || moved > 2*fair {
		t.Fatalf("join moved %d of %d keys; want (0, %d] (~K/N)", moved, K, 2*fair)
	}

	// Leaving must restore the original placement exactly: the ring has
	// no history, only the member set.
	r.remove("http://f")
	restored := placements(r, keys)
	for _, k := range keys {
		if restored[k] != before[k] {
			t.Fatalf("key %s did not return home after leave: %s vs %s", k, restored[k], before[k])
		}
	}
}

// TestRingLeaveMovesOnlyOrphans checks the inverse churn bound: when a
// member leaves, only its own keys move.
func TestRingLeaveMovesOnlyOrphans(t *testing.T) {
	const K = 2000
	keys := ringKeys(K)
	r := newRing(0)
	for _, m := range []string{"http://a", "http://b", "http://c", "http://d"} {
		r.add(m)
	}
	before := placements(r, keys)

	r.remove("http://b")
	after := placements(r, keys)
	for _, k := range keys {
		if before[k] == "http://b" {
			if after[k] == "http://b" {
				t.Fatalf("key %s still placed on the removed member", k)
			}
			continue
		}
		if after[k] != before[k] {
			t.Fatalf("key %s moved although its owner stayed: %s -> %s", k, before[k], after[k])
		}
	}
}

// TestRingPlacementStableAcrossRestart checks placement is a pure
// function of the member set: two rings built independently — in
// different insertion orders — agree on every key, which is what lets
// a restarted coordinator keep worker caches warm.
func TestRingPlacementStableAcrossRestart(t *testing.T) {
	keys := ringKeys(1000)
	a := newRing(0)
	b := newRing(0)
	for _, m := range []string{"http://a", "http://b", "http://c"} {
		a.add(m)
	}
	for _, m := range []string{"http://c", "http://a", "http://b"} {
		b.add(m)
	}
	for _, k := range keys {
		if a.lookup(k) != b.lookup(k) {
			t.Fatalf("rings disagree on %s: %s vs %s", k, a.lookup(k), b.lookup(k))
		}
	}
}

// TestRingLookupOrderWalksEveryMember checks the failover sequence:
// home first, every member exactly once, deterministic.
func TestRingLookupOrderWalksEveryMember(t *testing.T) {
	r := newRing(0)
	members := []string{"http://a", "http://b", "http://c", "http://d"}
	for _, m := range members {
		r.add(m)
	}
	for _, k := range ringKeys(100) {
		order := r.lookupOrder(k, 0)
		if len(order) != len(members) {
			t.Fatalf("lookupOrder(%s) has %d members; want %d", k, len(order), len(members))
		}
		if order[0] != r.lookup(k) {
			t.Fatalf("lookupOrder(%s) does not start at the home", k)
		}
		seen := make(map[string]bool)
		for _, m := range order {
			if seen[m] {
				t.Fatalf("lookupOrder(%s) repeats %s", k, m)
			}
			seen[m] = true
		}
	}
}

// TestRingBalance checks the vnode count spreads load sanely: with
// the default 64 vnodes no member of a 5-member ring strays wildly
// from its fair fifth.
func TestRingBalance(t *testing.T) {
	const K = 5000
	keys := ringKeys(K)
	r := newRing(0)
	members := []string{"http://a", "http://b", "http://c", "http://d", "http://e"}
	for _, m := range members {
		r.add(m)
	}
	counts := make(map[string]int)
	for _, k := range keys {
		counts[r.lookup(k)]++
	}
	fair := K / len(members)
	for _, m := range members {
		if counts[m] < fair/3 || counts[m] > fair*5/2 {
			t.Fatalf("member %s owns %d of %d keys (fair share %d); distribution too skewed: %v",
				m, counts[m], K, fair, counts)
		}
	}
}
