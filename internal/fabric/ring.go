package fabric

// The consistent-hash ring: every worker contributes VirtualNodes
// points hashed from its name, and a cell hash is owned by the first
// point at or after it (wrapping). Placement is therefore a pure
// function of the member set — stable across coordinator restarts —
// and a join or leave moves only the ~K/N cells whose arcs changed
// hands, which is what keeps worker caches warm through fleet churn.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-member vnode count when Config leaves
// it zero: enough points that member loads stay within a few percent
// of even for small fleets.
const DefaultVirtualNodes = 64

// ring is a consistent-hash ring with virtual nodes. Safe for
// concurrent use.
type ring struct {
	vnodes int

	mu      sync.RWMutex
	points  []uint64          // sorted vnode positions
	owner   map[uint64]string // position -> member
	members map[string]bool
}

// newRing builds an empty ring with the given vnode count per member
// (0 = DefaultVirtualNodes).
func newRing(vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &ring{
		vnodes:  vnodes,
		owner:   make(map[uint64]string),
		members: make(map[string]bool),
	}
}

// ringHash maps a string to a ring position.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// add inserts a member's vnodes (a no-op if already present).
func (r *ring) add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		p := ringHash(fmt.Sprintf("%s#%d", member, i))
		// A position collision (astronomically unlikely with 64-bit
		// points) is resolved deterministically in favour of the
		// lexically smaller member, keeping placement a pure function
		// of the member set.
		if prev, taken := r.owner[p]; taken {
			if member >= prev {
				continue
			}
		} else {
			r.points = append(r.points, p)
		}
		r.owner[p] = member
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a] < r.points[b] })
}

// remove deletes a member's vnodes (a no-op if absent).
func (r *ring) remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if r.owner[p] == member {
			delete(r.owner, p)
			continue
		}
		kept = append(kept, p)
	}
	r.points = kept
}

// size returns the member count.
func (r *ring) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// memberList returns the members, sorted.
func (r *ring) memberList() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// lookup returns the key's home member ("" on an empty ring).
func (r *ring) lookup(key string) string {
	order := r.lookupOrder(key, 1)
	if len(order) == 0 {
		return ""
	}
	return order[0]
}

// lookupOrder returns up to n distinct members in ring order starting
// from the key's position: the home first, then the deterministic
// failover sequence a coordinator walks when the home is down. n <= 0
// means every member.
func (r *ring) lookupOrder(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		m := r.owner[r.points[(start+i)%len(r.points)]]
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
