package fabric

// Deterministic chaos suite: every robustness claim in DESIGN.md §13
// exercised in-process with the faultproxy. All of these run under
// `go test -short -race` — fault injection is triggered from the
// test's own stream-reading loop, so there is no wall-clock guessing
// about when the campaign is "mid-flight".

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ltp/internal/server"
)

// TestChaosKillWorkerMidSweep is the headline acceptance test: three
// workers, one severed mid-campaign, and the campaign must still
// complete with exactly the enumerated cell count and no duplicate
// deliveries — the stranded cells re-dispatch to the surviving ring.
func TestChaosKillWorkerMidSweep(t *testing.T) {
	c := newCluster(t, clusterOpts{workers: 3, proxied: true, cfg: Config{
		Window:        2,
		RetryAttempts: 5, // survives a poll racing the kill and re-marking the corpse healthy
	}})

	var cells []server.StreamEvent
	resp := streamSweep(t, c.front.URL, chaosSweepBody)
	last := readEvents(t, resp, func(ev server.StreamEvent, n int) {
		cells = append(cells, ev)
		if n == 2 {
			// Mid-campaign: sever worker 0 with cells still unresolved on
			// it. Every proxied connection resets; new dials are refused.
			c.workers[0].proxy.Kill()
		}
	})
	if last.Type != "result" {
		t.Fatalf("campaign did not survive the worker loss: final event %q (%s)", last.Type, last.Error)
	}
	assertCompleteNoDupes(t, last.Job.Progress.TotalRuns, cells)
	p := last.Job.Progress
	if p.DoneRuns != p.TotalRuns || p.CanceledRuns != 0 {
		t.Fatalf("progress after recovery: %+v; want all %d runs done", p, p.TotalRuns)
	}
}

// TestChaosHangWorkerMidSweep severs via silence instead of a reset:
// the injured worker's connections stay open but stop moving bytes,
// and only the coordinator's hang watchdog can notice.
func TestChaosHangWorkerMidSweep(t *testing.T) {
	c := newCluster(t, clusterOpts{workers: 3, proxied: true, cfg: Config{
		Window:        2,
		RetryAttempts: 5,
		HangTimeout:   300 * time.Millisecond,
	}})

	var cells []server.StreamEvent
	resp := streamSweep(t, c.front.URL, chaosSweepBody)
	last := readEvents(t, resp, func(ev server.StreamEvent, n int) {
		cells = append(cells, ev)
		if n == 2 {
			c.workers[1].proxy.Hang()
		}
	})
	if last.Type != "result" {
		t.Fatalf("campaign did not survive the hang: final event %q (%s)", last.Type, last.Error)
	}
	assertCompleteNoDupes(t, last.Job.Progress.TotalRuns, cells)

	// Unfreeze so teardown does not wait out blocked connections.
	c.workers[1].proxy.Resume()
}

// TestChaosCorruptWorkerMidSweep points the defensive decoders at a
// worker whose response bytes go bad mid-stream: affected batches must
// fail cleanly (never panic, never resolve a cell twice) and the
// campaign still completes on the healthy members.
func TestChaosCorruptWorkerMidSweep(t *testing.T) {
	c := newCluster(t, clusterOpts{workers: 3, proxied: true, cfg: Config{
		Window:        2,
		RetryAttempts: 6,
	}})
	c.workers[2].proxy.Corrupt()

	var cells []server.StreamEvent
	resp := streamSweep(t, c.front.URL, chaosSweepBody)
	last := readEvents(t, resp, func(ev server.StreamEvent, n int) { cells = append(cells, ev) })
	if last.Type != "result" {
		t.Fatalf("campaign did not survive the corruption: final event %q (%s)", last.Type, last.Error)
	}
	assertCompleteNoDupes(t, last.Job.Progress.TotalRuns, cells)
}

// TestCoordinatorRestartServesBank proves restart resume: a
// coordinator with a result bank completes a campaign, dies, and its
// successor — fronting a fleet that is entirely unreachable — serves
// the identical campaign from the bank alone.
func TestCoordinatorRestartServesBank(t *testing.T) {
	bank := filepath.Join(t.TempDir(), "bank.jsonl")
	c := newCluster(t, clusterOpts{workers: 2, cfg: Config{StorePath: bank}})

	var first server.SweepResponse
	if resp := postJSON(t, c.front.URL+"/v1/sweep?wait=1", quickSweepBody, &first); resp.StatusCode != http.StatusOK {
		t.Fatalf("first submit status %d", resp.StatusCode)
	}
	if first.Job.Status != server.JobDone {
		t.Fatalf("first campaign %q: %s", first.Job.Status, first.Job.Error)
	}

	// Coordinator dies (bank file released)...
	c.coord.Close()

	// ...and its successor can only reach the bank: its one worker URL
	// points at a dead port.
	coord2, err := New(Config{
		Workers:      []string{"http://127.0.0.1:1"},
		StorePath:    bank,
		RetryBackoff: 10 * time.Millisecond,
		PollInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front2 := httptest.NewServer(coord2.Handler())
	t.Cleanup(func() { front2.Close(); coord2.Close() })

	var second server.SweepResponse
	if resp := postJSON(t, front2.URL+"/v1/sweep?wait=1", quickSweepBody, &second); resp.StatusCode != http.StatusOK {
		t.Fatalf("resumed submit status %d", resp.StatusCode)
	}
	if second.Job.Status != server.JobDone {
		t.Fatalf("resumed campaign %q: %s (the bank should have answered every cell)", second.Job.Status, second.Job.Error)
	}
	if second.Job.Hash != first.Job.Hash {
		t.Fatalf("hash changed across restart: %q vs %q", second.Job.Hash, first.Job.Hash)
	}
	p := second.Job.Progress
	if int(p.StoreHits) != p.TotalRuns {
		t.Fatalf("resumed campaign store-hit %d of %d runs; want all", p.StoreHits, p.TotalRuns)
	}
	if !reflect.DeepEqual(second.Result, first.Result) {
		t.Fatal("banked result differs from the original")
	}
}
