package sim

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"ltp/internal/core"
	"ltp/internal/mem"
	"ltp/internal/pipeline"
	"ltp/internal/prog"
	"ltp/internal/stats"
	"ltp/internal/trace"
)

// Fidelity grades how faithful a backend's timing is to the reference
// cycle-accurate pipeline.
type Fidelity uint8

const (
	// FidelityEstimate marks an analytical model: CPI and the derived
	// metrics are first-order estimates, orders of magnitude cheaper
	// than detailed simulation and intended for ranking and triage,
	// not for absolute numbers.
	FidelityEstimate Fidelity = iota
	// FidelitySampled marks interval sampling: short cycle-accurate
	// measurement windows stitched into a whole-run estimate with a
	// confidence interval. Cheaper than FidelityCycle by roughly the
	// coverage fraction, statistically faithful rather than exact.
	FidelitySampled
	// FidelityCycle marks the reference cycle-accurate pipeline.
	FidelityCycle
)

var fidelityNames = map[Fidelity]string{
	FidelityEstimate: "estimate",
	FidelitySampled:  "sampled",
	FidelityCycle:    "cycle-accurate",
}

// String returns the fidelity name ("estimate", "sampled",
// "cycle-accurate").
func (f Fidelity) String() string { return fidelityNames[f] }

// Spec is one fully resolved simulation: a µop source plus the
// complete machine configuration and budgets. The public ltp package
// builds it from an ltp.RunSpec (workload/scenario resolution, trace
// plumbing, configuration defaulting all happen there); backends only
// execute it.
type Spec struct {
	// Stream is the resolved µop source (emulator, trace reader, or a
	// recorder wrapping either).
	Stream prog.Stream
	// Reader is the underlying trace reader when Stream replays a
	// recorded trace (nil otherwise); backends must surface its
	// mid-run errors and refuse silently truncated runs.
	Reader *trace.Reader
	// Recorder is the trace capture wrapper when the run is being
	// recorded (nil otherwise); backends must Close it and surface
	// capture errors.
	Recorder *trace.Recorder

	// Pipeline is the resolved core configuration.
	Pipeline pipeline.Config
	// LTP, when non-nil, attaches the parking unit with this resolved
	// configuration (a prebuilt Oracle included when the run wants
	// one).
	LTP *core.Config

	// WarmInsts is the warm-up budget in instructions.
	WarmInsts uint64
	// WarmDetailed selects the full-pipeline warm-up path instead of
	// the fast functional one.
	WarmDetailed bool
	// MaxInsts bounds the measured region (committed instructions).
	MaxInsts uint64
	// MaxCycles is a safety cap relative to the measured region's
	// start (0 = none).
	MaxCycles uint64

	// Corunners are co-runner traffic streams contending for the
	// shared cache levels and DRAM (internal/mem corunner engine).
	// Empty means a solo run.
	Corunners []mem.CorunnerConfig

	// WarmKey, when non-empty, is a content key for the functional
	// stream identity plus everything the warm-up region trains:
	// workload/scenario knobs and seed, warm budget and mode,
	// warm-affecting configuration (hierarchy, branch predictor, UIT
	// geometry, co-runners). Two Specs with equal WarmKeys are
	// guaranteed to reach an identical functionally-warmed state, so a
	// backend may snapshot that state once and reuse it (the model
	// backend's warm-group cache). Empty means "not reusable" and is
	// always safe.
	WarmKey string

	// Intervals is the sampling interval count K for the sampled
	// backend (ignored by the others). K=1 degenerates to a single
	// full-region measurement identical to the cycle backend.
	Intervals int
	// Exec, when non-nil, runs interval subtasks — the sampled backend
	// hands its K measured intervals to it so they can share the
	// process-wide scheduler pool. Nil means sequential in-goroutine
	// execution; either way results are deterministic.
	Exec Executor
}

// Executor runs a batch of independent subtasks to completion,
// possibly concurrently. costs[i] is fns[i]'s relative cost estimate
// for LPT ordering. Implementations must guarantee every fn runs
// exactly once and must tolerate being called from a goroutine that is
// itself a pool worker (the scheduler pool implements this with work
// helping).
type Executor interface {
	RunBatch(ctx context.Context, costs []float64, fns []func(context.Context))
}

// LTPStats summarizes the parking unit's behaviour for one run
// (re-exported as ltp.LTPStats).
type LTPStats struct {
	AvgInsts  float64 // instructions parked, time average
	AvgRegs   float64 // register allocations deferred, time average
	AvgLoads  float64 // LQ allocations deferred, time average
	AvgStores float64 // SQ allocations deferred, time average

	EnabledFrac float64 // DRAM-timer monitor duty cycle

	ParkedTotal   uint64 // instructions ever parked
	WokenTotal    uint64 // instructions woken by the normal policies
	ForcedParks   uint64 // parks forced by resource pressure at rename
	PressureWakes uint64 // wakes forced by reserve-threshold pressure
	Enqueues      uint64 // LTP queue insertions (energy model input)
	Dequeues      uint64 // LTP queue removals (energy model input)

	ClassUrgent   uint64 // instructions classified urgent
	ClassNonReady uint64 // instructions classified non-ready

	UITLen      int     // Urgent Instruction Table population at end
	LLPredAcc   float64 // long-latency predictor accuracy in [0, 1]
	TicketsFull uint64  // NR parks skipped because tickets ran out
}

// SamplingStats describes the estimate quality of an interval-sampled
// run (re-exported as ltp.SamplingStats; nil for exact backends).
type SamplingStats struct {
	// Intervals is K, the number of measured intervals stitched.
	Intervals int
	// SampledInsts is the number of instructions that were actually
	// cycle-simulated (the rest of the run was functionally warmed).
	SampledInsts uint64
	// CPI summarizes the per-interval CPI distribution; CPI.Mean is
	// the whole-run CPI estimate and CPI.CI95 its 95% confidence
	// half-width under the Student-t distribution.
	CPI stats.Summary
}

// Stats is one backend run's outcome: the pipeline metrics snapshot
// plus, when the parking unit was attached, its statistics. Estimate-
// fidelity backends fill the same shape with modelled values.
type Stats struct {
	pipeline.Result
	// LTP holds the parking unit's statistics (nil when no LTP was
	// attached).
	LTP *LTPStats
	// Sampling holds the interval-sampling quality metrics (nil unless
	// the sampled backend produced this result).
	Sampling *SamplingStats
}

// Backend executes resolved simulations at a declared fidelity.
// Implementations must be safe for concurrent use and deterministic:
// equal Specs (same µop stream bytes, configuration and budgets)
// produce equal Stats.
type Backend interface {
	// Name is the backend's registry key ("cycle", "model").
	Name() string
	// Fidelity grades the backend's timing faithfulness.
	Fidelity() Fidelity
	// Run executes one simulation under ctx. Cancellation must be
	// honoured within about a millisecond; a cancelled run returns
	// ctx's error and no result.
	Run(ctx context.Context, spec Spec) (Stats, error)
}

// BatchResult is one lane's outcome from a batched evaluation.
type BatchResult struct {
	// Stats is the lane's measured-region result; zero when Err is set.
	Stats Stats
	// Err is the lane's individual failure; other lanes are unaffected.
	Err error
}

// BatchBackend is an optional extension: a backend that can evaluate
// many Specs sharing one functional µop stream in a single pass,
// amortizing stream generation and warm-up across all of them.
//
// Contract: every spec in the batch must share the µop stream —
// specs[0].Stream is the one driven; the Stream fields of the rest are
// ignored and may be nil — and must agree on WarmInsts, MaxInsts and
// everything that shapes the warm-up (callers group by WarmKey-style
// identity; backends re-verify what they rely on and fail lanes that
// violate it). Results are positionally matched to specs and must be
// bit-identical to what Run would have produced for each spec alone:
// batching is an execution strategy, never an approximation.
type BatchBackend interface {
	Backend
	// RunBatch evaluates all specs in one shared pass. The returned
	// slice always has len(specs) entries; per-lane failures land in
	// their entry's Err rather than failing the batch. A ctx
	// cancellation fails every unfinished lane with the context error.
	RunBatch(ctx context.Context, specs []Spec) []BatchResult
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Backend{}
)

// Register adds a backend under its Name. It panics on duplicates —
// backends register from package init, so a collision is a programming
// error.
func Register(b Backend) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[b.Name()]; dup {
		panic(fmt.Sprintf("sim: backend %q registered twice", b.Name()))
	}
	registry[b.Name()] = b
}

// Lookup returns the named backend; the empty name selects the
// cycle-accurate reference.
func Lookup(name string) (Backend, error) {
	if name == "" {
		name = "cycle"
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("ltp: unknown simulation backend %q (want one of %v)", name, names())
	}
	return b, nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return names()
}

func names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
