// Package sim defines the execution-backend abstraction of the LTP
// reproduction: a Backend turns one resolved simulation Spec into a
// Stats snapshot, and declares its Fidelity so callers can trade
// accuracy for speed. The cycle-accurate pipeline (internal/pipeline
// driven by CycleBackend in this package) is the reference
// implementation; internal/model provides a fast interval-style
// analytical estimate behind the same interface. The public ltp
// package resolves workloads, traces and configuration defaults into a
// Spec and dispatches on the registry here, so every layer above —
// the engine, the sweep machinery, the campaign service and the CLIs —
// selects fidelity with a single string.
package sim
