package sim

import (
	"context"
	"fmt"

	"ltp/internal/bpred"
	"ltp/internal/core"
	"ltp/internal/isa"
	"ltp/internal/mem"
	"ltp/internal/pipeline"
	"ltp/internal/prog"
)

func init() { Register(CycleBackend{}) }

// CycleBackend is the reference execution backend: the cycle-accurate
// out-of-order pipeline (internal/pipeline) with fast or detailed
// warm-up and full trace record/replay support. It is the fidelity
// every other backend is calibrated against.
type CycleBackend struct{}

// Name returns "cycle".
func (CycleBackend) Name() string { return "cycle" }

// Fidelity returns FidelityCycle.
func (CycleBackend) Fidelity() Fidelity { return FidelityCycle }

// About returns the backend's one-line description.
func (CycleBackend) About() string {
	return "cycle-accurate out-of-order pipeline (the reference; supports warm-up modes, traces, oracles)"
}

// CancelErr normalizes a cancellation observed mid-run into the
// context's own error (the cancellation cause when one was supplied).
// It is the single definition every backend and the public package
// share, so cancellation reporting cannot diverge between layers.
func CancelErr(ctx context.Context) error {
	if err := context.Cause(ctx); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// warmCancelChunk bounds how many instructions a fast functional
// warm-up executes between context checks (~a few hundred microseconds
// of emulation).
const warmCancelChunk = 1 << 16

// warmToucher returns the fast-warm touch hook shared by the cycle and
// sampled backends: I-line fetch warming, D-side cache warming, branch
// predictor training and LTP table observation. The closure carries
// the I-line dedup state, so one toucher must warm one contiguous
// region.
func warmToucher(h *mem.Hierarchy, bp bpred.Predictor, unit *core.LTP) func(*isa.Uop) {
	lastILine := ^uint64(0)
	return func(u *isa.Uop) {
		if line := u.PC >> 6; line != lastILine {
			h.WarmFetch(u.PC)
			lastILine = line
		}
		var level mem.Level
		switch {
		case u.IsMem():
			level = h.Warm(u.PC, u.Addr, u.Op == isa.Store)
		case u.IsBranch():
			bp.Lookup(u.PC, u.Taken, u.Target)
		}
		if unit != nil {
			unit.WarmObserve(u, level)
		}
		h.WarmTick() // co-runner credits accrue per warmed µop
	}
}

// Run executes one simulation through the detailed pipeline.
// Cancellation is honoured at every phase boundary and — cheaply,
// every couple of thousand cycles — inside the detailed simulation
// loop and the fast warm-up, so a multi-minute run aborts within about
// a millisecond of cancel.
func (CycleBackend) Run(ctx context.Context, spec Spec) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, CancelErr(ctx)
	}
	pcfg := spec.Pipeline

	var parker pipeline.Parker = pipeline.NullParker{}
	var unit *core.LTP
	if spec.LTP != nil {
		unit = core.New(*spec.LTP, pcfg.Hier.DRAMLatency, pcfg.Hier.TagEarlyLead)
		parker = unit
	}

	p := pipeline.New(pcfg, spec.Stream, parker)
	p.Hier.AttachCorunners(spec.Corunners)
	if done := ctx.Done(); done != nil {
		p.SetCancel(done)
	}

	if spec.WarmInsts > 0 {
		if spec.WarmDetailed {
			// Reference warm-up: run the warm region through the full
			// pipeline, then reset every statistic at the boundary.
			p.Run(spec.WarmInsts, 0)
			if p.Aborted() {
				return Stats{}, CancelErr(ctx)
			}
			p.ResetStats()
		} else {
			// Fast functional warm-up: stream stepping plus cache,
			// I-cache, branch-predictor and LTP-table touch hooks. The
			// emulator, trace readers and recorders all fast-forward.
			ff, ok := spec.Stream.(prog.FastForwarder)
			if !ok {
				return Stats{}, fmt.Errorf("ltp: fast warm-up needs a fast-forwardable stream; use WarmDetailed")
			}
			touch := warmToucher(p.Hier, p.BP, unit)
			// Chunk the fast-forward so a cancelled context aborts the
			// warm-up within ~warmCancelChunk emulated instructions.
			for remaining := spec.WarmInsts; remaining > 0; {
				n := remaining
				if ctx.Done() != nil && n > warmCancelChunk {
					n = warmCancelChunk
				}
				did := ff.FastForward(n, touch)
				remaining -= did
				if err := ctx.Err(); err != nil {
					return Stats{}, CancelErr(ctx)
				}
				if did < n {
					break // stream exhausted; warm what there was
				}
			}
			if unit != nil {
				unit.WarmFinish(p.Now())
			}
			// Warm-up activity must not leak into measured statistics.
			p.BP.ResetStats()
			p.Hier.ResetStats()
		}
	}

	// The measured region: cap cycles relative to its start so both warm
	// modes interpret MaxCycles identically.
	maxCycles := spec.MaxCycles
	if maxCycles > 0 {
		maxCycles += p.Now()
	}
	startCommitted := p.Committed()
	p.Run(startCommitted+spec.MaxInsts, maxCycles)
	if p.Aborted() {
		return Stats{}, CancelErr(ctx)
	}

	// A trace source that went corrupt mid-run, a capture that hit an IO
	// error, or a trace too short for the requested budgets must fail
	// the run rather than return silent partials.
	if spec.Recorder != nil {
		if err := spec.Recorder.Close(); err != nil {
			return Stats{}, fmt.Errorf("ltp: trace capture: %w", err)
		}
	}
	if spec.Reader != nil {
		if spec.Reader.Err() != nil {
			return Stats{}, fmt.Errorf("ltp: trace replay: %w", spec.Reader.Err())
		}
		if done := p.Committed() - startCommitted; done < spec.MaxInsts && (maxCycles == 0 || p.Now() < maxCycles) {
			return Stats{}, fmt.Errorf(
				"ltp: trace ended after %d of %d measured instructions (warm-up %d): replay with the recording run's budgets",
				done, spec.MaxInsts, spec.WarmInsts)
		}
	}

	st := Stats{Result: p.Snapshot()}
	if unit != nil {
		s := snapshotLTP(unit)
		st.LTP = &s
	}
	return st, nil
}

// snapshotLTP collects the parking unit's statistics.
func snapshotLTP(u *core.LTP) LTPStats {
	return LTPStats{
		AvgInsts:      u.OccInsts.Mean(),
		AvgRegs:       u.OccRegs.Mean(),
		AvgLoads:      u.OccLoads.Mean(),
		AvgStores:     u.OccStores.Mean(),
		EnabledFrac:   u.Monitor().EnabledFraction(),
		ParkedTotal:   u.ParkedTotal,
		WokenTotal:    u.WokenTotal,
		ForcedParks:   u.ForcedParks,
		PressureWakes: u.PressureWakes,
		Enqueues:      u.Enqueues,
		Dequeues:      u.Dequeues,
		ClassUrgent:   u.ClassUrgent,
		ClassNonReady: u.ClassNonReady,
		UITLen:        u.UITTable().Len(),
		LLPredAcc:     u.Predictor().Accuracy(),
		TicketsFull:   u.TicketsExhausted,
	}
}
