package sim

import (
	"bytes"
	"context"
	"fmt"

	"ltp/internal/bpred"
	"ltp/internal/core"
	"ltp/internal/mem"
	"ltp/internal/pipeline"
	"ltp/internal/prog"
	"ltp/internal/stats"
	"ltp/internal/trace"
)

func init() { Register(SampledBackend{}) }

// SampledBackend is the interval-sampling fidelity tier between the
// analytical model and the cycle-accurate reference (SMARTS-style).
// One functional pass streams the whole run through the fast-warm
// touch hooks, recording each interval's replayed span as a seekable
// µop trace; at each of K interval boundaries it checkpoints the warm
// state (caches, branch predictor, LTP tables) and the trace position.
// A 1/K slice of each interval — preceded by a short detailed-but-
// unmeasured ramp that keeps the pipeline-fill transient out of the
// sample — is then simulated cycle-accurately from its checkpoint.
// The intervals are independent, so they run concurrently on the
// scheduler pool when Spec.Exec is set, and the per-interval CPIs are
// stitched into a whole-run estimate with a Student-t sampling CI.
//
// Total detailed work is MaxInsts/K instructions plus the ramps, so
// wall-clock approaches the functional-pass floor as K grows. K=1
// measures the entire region from the single warm checkpoint and
// reproduces the cycle backend's result bit-for-bit.
type SampledBackend struct{}

// Name returns "sampled".
func (SampledBackend) Name() string { return "sampled" }

// Fidelity returns FidelitySampled.
func (SampledBackend) Fidelity() Fidelity { return FidelitySampled }

// About returns the backend's one-line description.
func (SampledBackend) About() string {
	return "interval-sampled pipeline: K checkpointed measurement windows under continuous functional warming, CPI reported with a sampling CI"
}

// sampleCheckpoint is one interval boundary's warm-state checkpoint:
// the trace position to reopen at plus deep copies of everything the
// fast warm-up trains.
type sampleCheckpoint struct {
	pos  trace.Pos
	hier *mem.Hierarchy
	bp   bpred.Predictor
	ltp  *core.WarmState

	start  uint64 // interval start within the measured region
	length uint64 // interval length
	sample uint64 // measured sample length
	ramp   uint64 // detailed-but-unmeasured µops run before the sample
}

// Run executes one interval-sampled simulation.
func (SampledBackend) Run(ctx context.Context, spec Spec) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, CancelErr(ctx)
	}
	if spec.Recorder != nil {
		return Stats{}, fmt.Errorf("ltp: the sampled backend cannot capture traces; record with the cycle backend")
	}
	if spec.WarmDetailed {
		return Stats{}, fmt.Errorf("ltp: the sampled backend warms functionally; detailed warm-up needs the cycle backend")
	}
	if spec.LTP != nil && spec.LTP.Oracle != nil {
		return Stats{}, fmt.Errorf("ltp: the sampled backend does not support oracle urgency")
	}
	if spec.MaxInsts == 0 {
		return Stats{}, fmt.Errorf("ltp: the sampled backend needs MaxInsts > 0")
	}
	if _, ok := spec.Stream.(prog.FastForwarder); !ok {
		return Stats{}, fmt.Errorf("ltp: the sampled backend needs a fast-forwardable stream")
	}
	k := spec.Intervals
	if k < 1 {
		k = 1
	}
	if uint64(k) > spec.MaxInsts {
		k = int(spec.MaxInsts)
	}
	pcfg := spec.Pipeline

	// Phase A: one continuous functional pass — warm the touch hooks
	// over the whole region, recording only the spans the intervals
	// replay (each interval's ramp + sample plus fetch-ahead slack) as
	// a seekable trace, and checkpointing at each interval start. The
	// gaps between spans fast-forward without the encoder: they exist
	// only to keep the warm state continuous, and skipping their
	// serialization is what keeps phase A far cheaper than the cycle
	// backend as K grows.
	var buf bytes.Buffer
	rec := trace.NewRecorder(spec.Stream, &buf, "sampled")
	ff := spec.Stream.(prog.FastForwarder) // validated above
	var warmUnit *core.LTP
	if spec.LTP != nil {
		warmUnit = core.New(*spec.LTP, pcfg.Hier.DRAMLatency, pcfg.Hier.TagEarlyLead)
	}
	warmHier := mem.NewHierarchy(pcfg.Hier)
	warmHier.AttachCorunners(spec.Corunners)
	warmBP, err := bpred.New(spec.Pipeline.BranchPred)
	if err != nil {
		return Stats{}, err
	}
	touch := warmToucher(warmHier, warmBP, warmUnit)

	// The pipeline reads at most about a ROB's worth of µops beyond the
	// sample's last committed instruction (the replay buffer bounds
	// fetch-ahead), so a few ROBs of slack per span is generous.
	slack := 4 * uint64(pcfg.ROBSize)

	var pos uint64      // µops pulled from the source so far
	var recUntil uint64 // absolute position recording must reach
	// advance pulls µops through touch up to absolute position to,
	// recording them while inside a replayed span (pos < recUntil) and
	// skipping the encoder otherwise, chunked so cancellation is
	// honoured mid-warm. A short read is left for the callers' position
	// checks.
	advance := func(to uint64) error {
		for pos < to {
			step := to - pos
			src := ff
			if pos < recUntil {
				if m := recUntil - pos; m < step {
					step = m
				}
				src = rec
			}
			if ctx.Done() != nil && step > warmCancelChunk {
				step = warmCancelChunk
			}
			got := src.FastForward(step, touch)
			pos += got
			if err := ctx.Err(); err != nil {
				return CancelErr(ctx)
			}
			if got < step {
				return nil
			}
		}
		return nil
	}

	cks := make([]sampleCheckpoint, k)
	for i := 0; i < k; i++ {
		start := uint64(i) * spec.MaxInsts / uint64(k)
		end := uint64(i+1) * spec.MaxInsts / uint64(k)
		sample := (end - start) / uint64(k)
		if sample == 0 {
			sample = 1
		}
		// A fresh pipeline spends its first couple of ROBs of
		// instructions filling up; running that transient detailed but
		// unmeasured keeps it out of the sample. K=1 has no slack
		// (sample == interval) and stays bit-for-bit cycle-equal.
		ramp := 2 * uint64(pcfg.ROBSize)
		if ramp > end-start-sample {
			ramp = end - start - sample
		}
		abs := spec.WarmInsts + start
		if err := advance(abs); err != nil {
			return Stats{}, err
		}
		if pos < abs {
			return Stats{}, fmt.Errorf(
				"ltp: stream ended after %d µops; the sampled run needs %d (warm-up %d + measured %d)",
				pos, spec.WarmInsts+spec.MaxInsts, spec.WarmInsts, spec.MaxInsts)
		}
		cks[i] = sampleCheckpoint{
			pos:    rec.Pos(),
			hier:   warmHier.Clone(),
			bp:     warmBP.Clone(),
			start:  start,
			length: end - start,
			sample: sample,
			ramp:   ramp,
		}
		if warmUnit != nil {
			cks[i].ltp = warmUnit.WarmSnapshot()
		}
		if seg := abs + ramp + sample + slack; seg > recUntil {
			recUntil = seg
		}
	}
	// Record the last interval's remaining span; a source too short for
	// a sample is caught by the per-interval replay check below.
	if err := advance(recUntil); err != nil {
		return Stats{}, err
	}
	if err := rec.Close(); err != nil {
		return Stats{}, fmt.Errorf("ltp: sampled trace capture: %w", err)
	}

	// Phase B: simulate each interval's sample from its checkpoint.
	// bytes.Reader.ReadAt is stateless, so all intervals share one.
	br := bytes.NewReader(buf.Bytes())
	results := make([]Stats, k)
	errs := make([]error, k)
	runOne := func(ictx context.Context, i int) {
		results[i], errs[i] = runSampledInterval(ictx, spec, &cks[i], br, i)
	}
	if spec.Exec != nil && k > 1 {
		fns := make([]func(context.Context), k)
		costs := make([]float64, k)
		for i := range fns {
			i := i
			costs[i] = float64(cks[i].sample)
			fns[i] = func(ictx context.Context) { runOne(ictx, i) }
		}
		spec.Exec.RunBatch(ctx, costs, fns)
	} else {
		for i := 0; i < k; i++ {
			runOne(ctx, i)
		}
	}
	if err := ctx.Err(); err != nil {
		return Stats{}, CancelErr(ctx)
	}
	for _, err := range errs {
		if err != nil {
			return Stats{}, err
		}
	}

	var sampledInsts uint64
	for i := range results {
		sampledInsts += results[i].Committed
	}
	if k == 1 {
		// The single interval is the whole measured region: pass its
		// stats through untouched (bit-for-bit the cycle backend's
		// result) and attach the sampling annotation.
		st := results[0]
		st.Sampling = &SamplingStats{
			Intervals:    1,
			SampledInsts: sampledInsts,
			CPI:          stats.Summarize([]float64{st.CPI}),
		}
		return st, nil
	}
	return stitchSampled(cks, results, sampledInsts), nil
}

// runSampledInterval replays one interval's measured sample on a fresh
// pipeline seeded with the checkpoint's warm state. The replayed µops
// keep their recording-run sequence numbers, so squash bookkeeping and
// commit-order checks behave exactly as in an unsampled run.
func runSampledInterval(ctx context.Context, spec Spec, ck *sampleCheckpoint, src *bytes.Reader, idx int) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, CancelErr(ctx)
	}
	pcfg := spec.Pipeline
	rd := trace.NewReaderAt(src, ck.pos)
	var parker pipeline.Parker = pipeline.NullParker{}
	var unit *core.LTP
	if spec.LTP != nil {
		unit = core.New(*spec.LTP, pcfg.Hier.DRAMLatency, pcfg.Hier.TagEarlyLead)
		unit.WarmRestore(ck.ltp)
		parker = unit
	}
	p := pipeline.NewShared(pcfg, rd, parker, ck.hier)
	p.BP = ck.bp
	if done := ctx.Done(); done != nil {
		p.SetCancel(done)
	}
	// Mirror the cycle backend's warm/measured boundary: WarmFinish
	// and statistic resets happen whenever any warming preceded this
	// point — the spec's warm region, or earlier intervals functionally
	// warmed during phase A.
	if spec.WarmInsts > 0 || idx > 0 {
		if unit != nil {
			unit.WarmFinish(p.Now())
		}
		p.BP.ResetStats()
		p.Hier.ResetStats()
	}
	maxCycles := uint64(0)
	if spec.MaxCycles > 0 {
		// The interval's proportional share of the whole-run cap
		// (exact for K=1, where sample == MaxInsts).
		maxCycles = (spec.MaxCycles*(ck.ramp+ck.sample) + spec.MaxInsts - 1) / spec.MaxInsts
		maxCycles += p.Now()
	}
	if ck.ramp > 0 {
		// Detailed-but-unmeasured ramp: run the pipeline-fill transient
		// out before the sample, then reset every statistic at the
		// boundary (exactly the cycle backend's detailed-warm reset).
		p.Run(ck.ramp, maxCycles)
		if p.Aborted() {
			return Stats{}, CancelErr(ctx)
		}
		p.ResetStats()
	}
	ramped := p.Committed()
	p.Run(ramped+ck.sample, maxCycles)
	if p.Aborted() {
		return Stats{}, CancelErr(ctx)
	}
	if rd.Err() != nil {
		return Stats{}, fmt.Errorf("ltp: sampled interval %d replay: %w", idx, rd.Err())
	}
	if done := p.Committed() - ramped; done < ck.sample && (maxCycles == 0 || p.Now() < maxCycles) {
		return Stats{}, fmt.Errorf(
			"ltp: sampled interval %d ended after %d of %d instructions", idx, done, ck.sample)
	}
	st := Stats{Result: p.Snapshot()}
	if unit != nil {
		s := snapshotLTP(unit)
		st.LTP = &s
	}
	return st, nil
}

// sampleScale rounds u scaled by w to the nearest integer.
func sampleScale(u uint64, w float64) uint64 {
	return uint64(float64(u)*w + 0.5)
}

// stitchSampled combines per-interval sample measurements into a
// whole-run estimate. The headline CPI is the unweighted mean of the
// per-interval CPIs (each interval represents an equal share of the
// run), with a Student-t 95% CI from their dispersion. Additive
// counters are scaled by each interval's inverse coverage
// (length/measured) and summed; time-averaged occupancies are
// cycle-weighted means; latency and rate metrics are weighted by their
// natural denominators.
func stitchSampled(cks []sampleCheckpoint, sts []Stats, sampledInsts uint64) Stats {
	var out pipeline.Result
	var ltpOut LTPStats
	haveLTP := false

	cpis := make([]float64, 0, len(sts))
	var cycles, committed, loads, memOps float64
	var mlp, avgIQ, avgROB, avgLQ, avgSQ, avgIntRF, avgFPRF, avgWIB float64
	var loadLat, l1dMiss float64
	var ltpInsts, ltpRegs, ltpLoads, ltpStores, ltpEnabled, ltpAcc float64

	for i := range sts {
		r := &sts[i].Result
		if r.Committed == 0 {
			continue
		}
		w := float64(cks[i].length) / float64(r.Committed)
		cpis = append(cpis, r.CPI)

		c := float64(r.Cycles)
		n := float64(r.Committed)
		cycles += c
		committed += n
		loads += float64(r.Loads)
		memOps += float64(r.Loads + r.Stores)

		out.Committed += sampleScale(r.Committed, w)
		out.Fetched += sampleScale(r.Fetched, w)
		out.Squashes += sampleScale(r.Squashes, w)
		out.Loads += sampleScale(r.Loads, w)
		out.Stores += sampleScale(r.Stores, w)
		for lv := range r.LoadLevel {
			out.LoadLevel[lv] += sampleScale(r.LoadLevel[lv], w)
		}
		out.DemandDRAM += sampleScale(r.DemandDRAM, w)
		out.PrefIssued += sampleScale(r.PrefIssued, w)
		out.Branches += sampleScale(r.Branches, w)
		out.Mispredicts += sampleScale(r.Mispredicts, w)
		out.Issues += sampleScale(r.Issues, w)
		out.RFReads += sampleScale(r.RFReads, w)
		out.RFWrites += sampleScale(r.RFWrites, w)
		out.WIBDrains += sampleScale(r.WIBDrains, w)
		out.WIBReinserts += sampleScale(r.WIBReinserts, w)
		out.StallROB += sampleScale(r.StallROB, w)
		out.StallIQ += sampleScale(r.StallIQ, w)
		out.StallRegs += sampleScale(r.StallRegs, w)
		out.StallLQ += sampleScale(r.StallLQ, w)
		out.StallSQ += sampleScale(r.StallSQ, w)
		out.StallLTP += sampleScale(r.StallLTP, w)

		mlp += r.MLP * c
		avgIQ += r.AvgIQ * c
		avgROB += r.AvgROB * c
		avgLQ += r.AvgLQ * c
		avgSQ += r.AvgSQ * c
		avgIntRF += r.AvgIntRF * c
		avgFPRF += r.AvgFPRF * c
		avgWIB += r.AvgWIB * c
		loadLat += r.AvgLoadLatency * float64(r.Loads)
		l1dMiss += r.L1DMissRate * float64(r.Loads+r.Stores)

		if l := sts[i].LTP; l != nil {
			haveLTP = true
			ltpInsts += l.AvgInsts * c
			ltpRegs += l.AvgRegs * c
			ltpLoads += l.AvgLoads * c
			ltpStores += l.AvgStores * c
			ltpEnabled += l.EnabledFrac * c
			ltpAcc += l.LLPredAcc * n
			ltpOut.ParkedTotal += sampleScale(l.ParkedTotal, w)
			ltpOut.WokenTotal += sampleScale(l.WokenTotal, w)
			ltpOut.ForcedParks += sampleScale(l.ForcedParks, w)
			ltpOut.PressureWakes += sampleScale(l.PressureWakes, w)
			ltpOut.Enqueues += sampleScale(l.Enqueues, w)
			ltpOut.Dequeues += sampleScale(l.Dequeues, w)
			ltpOut.ClassUrgent += sampleScale(l.ClassUrgent, w)
			ltpOut.ClassNonReady += sampleScale(l.ClassNonReady, w)
			ltpOut.TicketsFull += sampleScale(l.TicketsFull, w)
			ltpOut.UITLen = l.UITLen
		}
	}

	sum := stats.Summarize(cpis)
	out.CPI = sum.Mean
	if sum.Mean > 0 {
		out.IPC = 1 / sum.Mean
	}
	out.Cycles = sampleScale(out.Committed, sum.Mean)
	if cycles > 0 {
		out.MLP = mlp / cycles
		out.AvgIQ = avgIQ / cycles
		out.AvgROB = avgROB / cycles
		out.AvgLQ = avgLQ / cycles
		out.AvgSQ = avgSQ / cycles
		out.AvgIntRF = avgIntRF / cycles
		out.AvgFPRF = avgFPRF / cycles
		out.AvgWIB = avgWIB / cycles
	}
	if loads > 0 {
		out.AvgLoadLatency = loadLat / loads
	}
	if memOps > 0 {
		out.L1DMissRate = l1dMiss / memOps
	}

	st := Stats{Result: out}
	if haveLTP {
		if cycles > 0 {
			ltpOut.AvgInsts = ltpInsts / cycles
			ltpOut.AvgRegs = ltpRegs / cycles
			ltpOut.AvgLoads = ltpLoads / cycles
			ltpOut.AvgStores = ltpStores / cycles
			ltpOut.EnabledFrac = ltpEnabled / cycles
		}
		if committed > 0 {
			ltpOut.LLPredAcc = ltpAcc / committed
		}
		st.LTP = &ltpOut
	}
	st.Sampling = &SamplingStats{
		Intervals:    len(cks),
		SampledInsts: sampledInsts,
		CPI:          sum,
	}
	return st
}
