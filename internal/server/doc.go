// Package server implements the campaign service's HTTP/JSON surface:
// request validation, the campaign-job registry with backpressure and
// cancellation, and NDJSON cell-result streaming. It is the layer
// between cmd/ltpserved (the binary: flags, listener, graceful
// shutdown) and ltp.Engine (the execution layer: one tiered LPT worker
// pool plus the content-addressed result cache in internal/cache).
//
// Endpoints (API.md documents schemas and curl examples):
//
//	GET  /healthz        liveness
//	GET  /v1/workloads   kernel and scenario-family registries
//	GET  /v1/stats       cache counters, pool occupancy, job counts
//	POST /v1/run         one simulation, synchronous, cached
//	POST /v1/matrix      a matrix campaign: async job by default,
//	                     ?wait=1 synchronous, ?stream=1 NDJSON cells
//	POST /v1/sweep       a generalized sweep campaign (same modes)
//	GET  /v1/jobs        list campaign jobs
//	GET  /v1/jobs/{id}   one campaign job's status/progress/result
//	DELETE /v1/jobs/{id} cancel a campaign (idempotent)
//
// Validation is strict: unknown JSON fields, unknown workload,
// scenario or warm-mode names, out-of-range scales, and budgets above
// the configured Limits are all 400s before any simulation starts.
// Backpressure is a 429 once MaxActiveJobs campaigns are in flight,
// carrying a Retry-After estimate (queue depth × mean cell latency)
// and the campaign hash so clients can poll a running duplicate;
// within an admitted campaign the engine's bounded worker pool is the
// real throttle (DESIGN.md §8; §9 covers cancellation propagation).
package server
