package server

// The coordinator-facing cell batch endpoint: POST /v1/cells accepts a
// batch of canonical run specs from a fabric coordinator
// (internal/fabric) and streams one NDJSON CellEvent per cell as it
// resolves, closing with a Done marker so the coordinator can tell a
// cleanly finished batch from a severed stream. Cells execute at the
// campaign tier — a fleet's sharded campaign traffic never preempts
// this worker's own interactive /v1/run requests — and flow through
// the same content-addressed cache and persistent store as every
// other execution path, so a re-dispatched cell is a cache hit, not a
// second simulation.

import (
	"encoding/json"
	"net/http"
	"sync"

	"ltp"
)

// CellsRequest is the POST /v1/cells body: a coordinator-dispatched
// batch of run specs. Every spec must be canonicalizable (the batch is
// rejected whole before any simulation starts otherwise) and within
// the worker's admission limits.
type CellsRequest struct {
	// Specs are the cells to execute, in dispatch order.
	Specs []ltp.RunSpec `json:"specs"`
}

// CellEvent is one NDJSON line of the POST /v1/cells response stream:
// a resolved cell (completion order, not batch order), or the final
// Done marker.
type CellEvent struct {
	// Index is the cell's position in the request's Specs.
	Index int `json:"index"`
	// Hash is the cell's content address.
	Hash string `json:"hash,omitempty"`
	// Outcome is how the cell was served: "miss", "hit", "shared" or
	// "store".
	Outcome string `json:"outcome,omitempty"`
	// Result is the simulation outcome (nil when Error is set).
	Result *ltp.RunResult `json:"result,omitempty"`
	// Error is the cell's failure, when it has one.
	Error string `json:"error,omitempty"`
	// Done marks the final line: every cell above resolved and no more
	// lines follow. A stream that ends without it was severed.
	Done bool `json:"done,omitempty"`
}

// maxCellBatch bounds one /v1/cells batch (a coordinator dispatches in
// windows far below this; the bound only stops a hostile request from
// allocating an unbounded spec slice).
const maxCellBatch = 1 << 16

// handleCells executes a coordinator's cell batch, streaming NDJSON
// events as cells resolve. The request context bounds every cell: a
// coordinator abandoning the batch (retry elsewhere, job cancel)
// aborts queued cells before they simulate and in-flight ones
// mid-pipeline.
func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	var req CellsRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Specs) == 0 {
		s.writeError(w, badRequest("cells batch is empty"))
		return
	}
	if len(req.Specs) > maxCellBatch {
		s.writeError(w, badRequest("cells batch has %d specs, above the per-batch limit %d", len(req.Specs), maxCellBatch))
		return
	}
	// Validate the whole batch before simulating any of it: a cell the
	// worker would refuse (uncanonicalizable, over-budget) rejects the
	// batch with a 400 the coordinator can surface, instead of failing
	// mid-stream after burning compute.
	for i, spec := range req.Specs {
		canon, err := spec.Canonical()
		if err != nil {
			s.writeError(w, badRequest("specs[%d]: %v", i, err))
			return
		}
		if canon.WarmInsts > s.limits.MaxWarmInsts {
			s.writeError(w, badRequest("specs[%d]: warm_insts = %d above the service limit %d", i, canon.WarmInsts, s.limits.MaxWarmInsts))
			return
		}
		if canon.MaxInsts > s.limits.MaxDetailInsts {
			s.writeError(w, badRequest("specs[%d]: max_insts = %d above the service limit %d", i, canon.MaxInsts, s.limits.MaxDetailInsts))
			return
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out now: the coordinator's hang watchdog
		// covers the header wait, and a batch whose first cell is slow
		// must not look like a silent worker.
		flusher.Flush()
	}
	var wmu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(ev CellEvent) {
		wmu.Lock()
		defer wmu.Unlock()
		_ = enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Bound the batch's outstanding submissions like a local sweep
	// phase does: 2× the pool keeps every worker fed without parking a
	// goroutine per cell.
	sem := make(chan struct{}, 2*s.engine.Parallelism())
	var wg sync.WaitGroup
launch:
	for i := range req.Specs {
		select {
		case <-r.Context().Done():
			break launch // coordinator gone; nobody is reading
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			res, outcome, hash, err := s.engine.RunCellCached(r.Context(), req.Specs[i])
			ev := CellEvent{Index: i, Hash: hash, Outcome: outcome.String()}
			if err != nil {
				ev.Error = err.Error()
			} else {
				ev.Result = &res
			}
			emit(ev)
		}(i)
	}
	wg.Wait()
	if r.Context().Err() == nil {
		emit(CellEvent{Done: true})
	}
}
