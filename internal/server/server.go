package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"ltp"
	"ltp/internal/cache"
)

// Config assembles a Server.
type Config struct {
	// Engine, when non-nil, is used as-is (and not closed by
	// Server.Close); otherwise the server owns a new one sized by
	// Parallelism and CacheEntries.
	Engine *ltp.Engine
	// Parallelism is the concurrent-simulation cap for an owned engine
	// (0 = NumCPU).
	Parallelism int
	// CacheEntries bounds the owned engine's result cache
	// (0 = cache.DefaultEntries).
	CacheEntries int
	// Limits is the request admission policy (zero fields =
	// DefaultLimits).
	Limits Limits
	// Logf, when non-nil, receives one line per request.
	Logf func(format string, args ...any)
}

// Server is the campaign service: an http.Handler over one ltp.Engine.
type Server struct {
	engine    *ltp.Engine
	ownEngine bool
	limits    Limits
	jobs      *registry
	logf      func(format string, args ...any)
	started   time.Time
	mux       *http.ServeMux
}

// New assembles a server (it does not listen; mount Handler on an
// http.Server).
func New(cfg Config) *Server {
	s := &Server{
		engine:    cfg.Engine,
		ownEngine: cfg.Engine == nil,
		limits:    cfg.Limits.withDefaults(),
		logf:      cfg.Logf,
		started:   time.Now(),
	}
	if s.engine == nil {
		s.engine = ltp.NewEngine(ltp.EngineConfig{
			Parallelism:  cfg.Parallelism,
			CacheEntries: cfg.CacheEntries,
		})
	}
	s.jobs = newRegistry(s.limits.MaxActiveJobs)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/matrix", s.handleMatrix)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	return s
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP dispatches to the endpoint handlers with request logging.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.logf != nil {
		s.logf("%s %s", r.Method, r.URL.Path)
	}
	s.mux.ServeHTTP(w, r)
}

// Close releases the engine if the server owns it. In-flight requests
// should be drained first (http.Server.Shutdown).
func (s *Server) Close() {
	if s.ownEngine {
		s.engine.Close()
	}
}

// writeJSON writes v with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	// Error is the human-readable reason.
	Error string `json:"error"`
}

// writeError maps an error to its status (apiError carries one;
// anything else is a 500).
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var ae *apiError
	if errors.As(err, &ae) {
		status = ae.status
	}
	s.writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	// Status is "ok" whenever the server can respond.
	Status string `json:"status"`
	// UptimeSeconds is the server's age.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

// WorkloadInfo describes one fixed kernel (GET /v1/workloads).
type WorkloadInfo struct {
	Name       string `json:"name"`        // registry name (RunRequest.workload)
	About      string `json:"about"`       // one-line description
	Class      string `json:"class"`       // intended MLP class
	SPECAnalog string `json:"spec_analog"` // SPEC2006 behaviour it substitutes
}

// ScenarioInfo describes one scenario family (GET /v1/workloads).
type ScenarioInfo struct {
	Name     string       `json:"name"`     // family name (RunRequest.scenario)
	About    string       `json:"about"`    // shape and knob semantics
	Class    string       `json:"class"`    // intended MLP class of the defaults
	Defaults KnobsRequest `json:"defaults"` // knob values used when absent
}

// WorkloadsResponse is the GET /v1/workloads body.
type WorkloadsResponse struct {
	// Kernels is the fixed registry (RunRequest.workload).
	Kernels []WorkloadInfo `json:"kernels"`
	// Scenarios is the parameterized families (RunRequest.scenario).
	Scenarios []ScenarioInfo `json:"scenarios"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	resp := WorkloadsResponse{}
	for _, k := range ltp.Workloads() {
		resp.Kernels = append(resp.Kernels, WorkloadInfo{
			Name: k.Name, About: k.About, Class: k.Hint.String(), SPECAnalog: k.SPECAnalog,
		})
	}
	for _, f := range ltp.Scenarios() {
		resp.Scenarios = append(resp.Scenarios, ScenarioInfo{
			Name: f.Name, About: f.About, Class: f.Hint.String(),
			Defaults: KnobsRequest{
				FootprintWords: f.Defaults.FootprintWords,
				Stride:         f.Defaults.Stride,
				Chains:         f.Defaults.Chains,
				PayloadOps:     f.Defaults.PayloadOps,
				BranchEntropy:  f.Defaults.BranchEntropy,
				PhaseLen:       f.Defaults.PhaseLen,
			},
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// PoolStats is the worker-pool section of GET /v1/stats.
type PoolStats struct {
	// Parallelism is the worker count (the concurrent-simulation cap).
	Parallelism int `json:"parallelism"`
	// Queued counts submitted simulations not yet started.
	Queued int `json:"queued"`
	// Running counts simulations executing at snapshot time.
	Running int `json:"running"`
}

// JobStats is the campaign-job section of GET /v1/stats.
type JobStats struct {
	// Total counts every campaign this process served.
	Total int `json:"total"`
	// Active counts campaigns still running (bounded by
	// Limits.MaxActiveJobs).
	Active int `json:"active"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	// Cache exposes the content-addressed result cache's counters —
	// the service's proof of reuse.
	Cache cache.Stats `json:"cache"`
	// Pool snapshots the worker pool's occupancy.
	Pool PoolStats `json:"pool"`
	// Jobs counts campaign jobs.
	Jobs JobStats `json:"jobs"`
	// Limits echoes the admission policy.
	Limits Limits `json:"limits"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	total, active := s.jobs.counts()
	s.writeJSON(w, http.StatusOK, StatsResponse{
		Cache: s.engine.CacheStats(),
		Pool: PoolStats{
			Parallelism: s.engine.Parallelism(),
			Queued:      s.engine.QueuedRuns(),
			Running:     s.engine.RunningRuns(),
		},
		Jobs:   JobStats{Total: total, Active: active},
		Limits: s.limits,
	})
}

// RunResponse is the POST /v1/run body: the canonical hash, how the
// cache served the request, and the full simulation result.
type RunResponse struct {
	// Hash is the run's content address; repeat the request and the
	// same hash guarantees the same result.
	Hash string `json:"hash"`
	// Cache is "miss" (simulated now), "hit" (served from cache) or
	// "shared" (joined an identical in-flight simulation).
	Cache string `json:"cache"`
	// Result is the simulation outcome (metrics, LTP stats, energy).
	Result ltp.RunResult `json:"result"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	spec, err := req.runSpec(s.limits)
	if err != nil {
		s.writeError(w, err)
		return
	}
	res, outcome, hash, err := s.engine.RunCached(spec)
	if err != nil {
		s.writeError(w, fmt.Errorf("simulation failed: %w", err))
		return
	}
	s.writeJSON(w, http.StatusOK, RunResponse{
		Hash:   hash,
		Cache:  outcome.String(),
		Result: res,
	})
}

// MatrixResponse is the POST /v1/matrix and GET /v1/jobs/{id} body.
// Result is present only once Job.Status is done.
type MatrixResponse struct {
	// Job describes the campaign's identity and progress.
	Job JobView `json:"job"`
	// Result is the aggregated campaign (status done only).
	Result *ltp.MatrixResult `json:"result,omitempty"`
}

// matrixResponse renders a job, attaching the result when finished.
func matrixResponse(t *trackedJob) MatrixResponse {
	resp := MatrixResponse{Job: t.view()}
	if resp.Job.Status == JobDone {
		res, _ := t.job.Wait()
		resp.Result = res
	}
	return resp
}

// StreamEvent is one NDJSON line of POST /v1/matrix?stream=1: progress
// events while the campaign runs, then one final result (or error)
// event.
type StreamEvent struct {
	// Type is "progress", "result" or "error".
	Type string `json:"type"`
	// Progress is set on progress events.
	Progress *ltp.MatrixProgress `json:"progress,omitempty"`
	// Job and Result are set on the final result event.
	Job    *JobView          `json:"job,omitempty"`
	Result *ltp.MatrixResult `json:"result,omitempty"` // the aggregated campaign
	// Error is set on the final error event.
	Error string `json:"error,omitempty"`
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	var req MatrixRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	spec, err := req.matrixSpec(s.limits)
	if err != nil {
		s.writeError(w, err)
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	id, err := s.jobs.admit(hash)
	if err != nil {
		s.writeError(w, err)
		return
	}
	job, err := s.engine.SubmitMatrix(spec)
	if err != nil {
		s.jobs.release()
		s.writeError(w, badRequest("%v", err))
		return
	}
	t := s.jobs.register(id, job)
	if s.logf != nil {
		s.logf("campaign %s submitted: %d runs, hash %s", id, job.TotalRuns(), job.Hash())
	}

	q := r.URL.Query()
	switch {
	case q.Get("stream") == "1":
		s.streamMatrix(w, r, t)
	case q.Get("wait") == "1":
		_, _ = job.Wait()
		s.writeJSON(w, http.StatusOK, matrixResponse(t))
	default:
		s.writeJSON(w, http.StatusAccepted, matrixResponse(t))
	}
}

// streamProgressInterval paces the NDJSON progress lines.
const streamProgressInterval = 150 * time.Millisecond

// streamMatrix writes chunked JSON lines: a progress event per tick
// (and per change), then the final result or error event. A client
// disconnect stops the stream without stopping the campaign.
func (s *Server) streamMatrix(w http.ResponseWriter, r *http.Request, t *trackedJob) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	emit := func(ev StreamEvent) {
		_ = enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	last := ltp.MatrixProgress{DoneRuns: -1}
	progress := func() {
		p := t.job.Progress()
		if p.DoneRuns != last.DoneRuns {
			last = p
			emit(StreamEvent{Type: "progress", Progress: &p})
		}
	}
	progress()
	ticker := time.NewTicker(streamProgressInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			// Client went away; the campaign itself keeps running and
			// remains fetchable via GET /v1/jobs/{id}.
			return
		case <-ticker.C:
			progress()
		case <-t.job.Done():
			res, err := t.job.Wait()
			if err != nil {
				emit(StreamEvent{Type: "error", Error: err.Error()})
				return
			}
			p := t.job.Progress()
			emit(StreamEvent{Type: "progress", Progress: &p})
			view := t.view()
			emit(StreamEvent{Type: "result", Job: &view, Result: res})
			return
		}
	}
}

// JobsResponse is the GET /v1/jobs body, newest first.
type JobsResponse struct {
	// Jobs lists every campaign this process has served.
	Jobs []JobView `json:"jobs"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	resp := JobsResponse{Jobs: []JobView{}}
	for _, t := range s.jobs.list() {
		resp.Jobs = append(resp.Jobs, t.view())
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	t, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, &apiError{status: http.StatusNotFound, msg: "no such job"})
		return
	}
	s.writeJSON(w, http.StatusOK, matrixResponse(t))
}
