package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"ltp"
	"ltp/internal/cache"
	"ltp/internal/store"
)

// Config assembles a Server.
type Config struct {
	// Engine, when non-nil, is used as-is (and not closed by
	// Server.Close); otherwise the server owns a new one sized by
	// Parallelism and CacheEntries.
	Engine *ltp.Engine
	// Parallelism is the concurrent-simulation cap for an owned engine
	// (0 = NumCPU).
	Parallelism int
	// CacheEntries bounds the owned engine's result cache
	// (0 = cache.DefaultEntries).
	CacheEntries int
	// StorePath, when non-empty, opens a persistent result store behind
	// the owned engine's cache (ltp.EngineConfig.StorePath): results
	// survive restarts, and /v1/stats grows a "store" section. Ignored
	// when Engine is supplied — a caller-owned engine configures its own
	// store.
	StorePath string
	// Limits is the request admission policy (zero fields =
	// DefaultLimits).
	Limits Limits
	// Logf, when non-nil, receives one line per request.
	Logf func(format string, args ...any)
}

// Server is the campaign service: an http.Handler over one ltp.Engine.
type Server struct {
	engine    *ltp.Engine
	ownEngine bool
	limits    Limits
	jobs      *registry
	logf      func(format string, args ...any)
	started   time.Time
	mux       *http.ServeMux
}

// New assembles a server (it does not listen; mount Handler on an
// http.Server). The only error source is opening Config.StorePath.
func New(cfg Config) (*Server, error) {
	s := &Server{
		engine:    cfg.Engine,
		ownEngine: cfg.Engine == nil,
		limits:    cfg.Limits.withDefaults(),
		logf:      cfg.Logf,
		started:   time.Now(),
	}
	if s.engine == nil {
		e, err := ltp.NewEngine(ltp.EngineConfig{
			Parallelism:  cfg.Parallelism,
			CacheEntries: cfg.CacheEntries,
			StorePath:    cfg.StorePath,
		})
		if err != nil {
			return nil, fmt.Errorf("server: opening result store: %w", err)
		}
		s.engine = e
	}
	s.jobs = newRegistry(s.limits.MaxActiveJobs)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/matrix", s.handleMatrix)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/cells", s.handleCells)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	return s, nil
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP dispatches to the endpoint handlers with request logging.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.logf != nil {
		s.logf("%s %s", r.Method, r.URL.Path)
	}
	s.mux.ServeHTTP(w, r)
}

// Close releases the engine if the server owns it, waiting for every
// active campaign to finish first. In-flight requests should be
// drained beforehand (http.Server.Shutdown); for a bounded drain that
// cancels stragglers, use Shutdown.
func (s *Server) Close() {
	if s.ownEngine {
		s.engine.Close()
	}
}

// Shutdown drains the service for process exit: it waits — bounded by
// ctx — for active campaigns to finish on their own, cancels whatever
// is still running when ctx expires (queued cells never simulate;
// in-flight ones abort mid-pipeline), and then releases the engine if
// the server owns it. Stop accepting requests first
// (http.Server.Shutdown).
func (s *Server) Shutdown(ctx context.Context) {
	if !s.jobs.awaitIdle(ctx.Done()) {
		if s.logf != nil {
			s.logf("drain deadline reached; cancelling active campaigns")
		}
		s.jobs.cancelActive()
		s.jobs.awaitIdle(nil)
	}
	s.Close()
}

// writeJSON writes v with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	// Error is the human-readable reason.
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429s: the
	// queue-depth × mean-cell-latency estimate of when a slot frees.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
	// Hash is the rejected campaign's content address (429 only) — the
	// key under which its cells are cached and deduplicated.
	Hash string `json:"hash,omitempty"`
	// DuplicateJobID names a still-running job with the same hash, if
	// any: poll GET /v1/jobs/{id} instead of resubmitting.
	DuplicateJobID string `json:"duplicate_job_id,omitempty"`
}

// writeError maps an error to its status (apiError carries one;
// anything else is a 500).
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var ae *apiError
	if errors.As(err, &ae) {
		status = ae.status
	}
	s.writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// retryAfterSeconds estimates when an active-job slot (or pool
// capacity) frees: outstanding work over parallelism, scaled by the
// engine's per-run latency weighted by the queue's backend mix
// (Engine.PerRunSeconds) — a backlog of near-free model estimates no
// longer prices like one of cycle runs. The backlog is the larger of
// the pool's queue and the active campaigns' unresolved runs — the
// coordinators feed the pool through a bounded window, so the pool
// queue alone understates a deep backlog.
func (s *Server) retryAfterSeconds() int {
	outstanding := s.engine.QueuedRuns() + s.engine.RunningRuns()
	if left := s.jobs.remainingRuns(); left > outstanding {
		outstanding = left
	}
	return retryAfterEstimate(s.engine.PerRunSeconds(), outstanding, s.engine.Parallelism())
}

// retryAfterEstimate converts a mean-cell-seconds EWMA, an outstanding
// backlog and a parallelism cap into a Retry-After value in whole
// seconds: rounded up and clamped to [1, 600]. The lower clamp is
// load-bearing — a sub-second EWMA (cheap cells, an idle engine just
// after start-up) must never emit "Retry-After: 0", which clients read
// as "hammer immediately".
func retryAfterEstimate(mean float64, outstanding, parallelism int) int {
	if mean <= 0 {
		mean = 1 // no simulated cell yet: assume a second each
	}
	if parallelism < 1 {
		parallelism = 1
	}
	secs := int(math.Ceil(mean * float64(outstanding+1) / float64(parallelism)))
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return secs
}

// writeBusy renders a 429 with the Retry-After header and the
// duplicate-job hints (satisfying "poll, don't resubmit").
func (s *Server) writeBusy(w http.ResponseWriter, err error, hash string) {
	retry := s.retryAfterSeconds()
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
	resp := ErrorResponse{
		Error:             err.Error(),
		RetryAfterSeconds: retry,
		Hash:              hash,
	}
	if t, ok := s.jobs.findActiveByHash(hash); ok {
		resp.DuplicateJobID = t.id
	}
	s.writeJSON(w, http.StatusTooManyRequests, resp)
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	// Status is "ok" whenever the server can respond.
	Status string `json:"status"`
	// UptimeSeconds is the server's age.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

// WorkloadInfo describes one fixed kernel (GET /v1/workloads).
type WorkloadInfo struct {
	Name       string `json:"name"`        // registry name (RunRequest.workload)
	About      string `json:"about"`       // one-line description
	Class      string `json:"class"`       // intended MLP class
	SPECAnalog string `json:"spec_analog"` // SPEC2006 behaviour it substitutes
}

// ScenarioInfo describes one scenario family (GET /v1/workloads).
type ScenarioInfo struct {
	Name     string       `json:"name"`     // family name (RunRequest.scenario)
	About    string       `json:"about"`    // shape and knob semantics
	Class    string       `json:"class"`    // intended MLP class of the defaults
	Defaults KnobsRequest `json:"defaults"` // knob values used when absent
}

// WorkloadsResponse is the GET /v1/workloads body.
type WorkloadsResponse struct {
	// Kernels is the fixed registry (RunRequest.workload).
	Kernels []WorkloadInfo `json:"kernels"`
	// Scenarios is the parameterized families (RunRequest.scenario).
	Scenarios []ScenarioInfo `json:"scenarios"`
	// Backends is the execution-backend registry (RunRequest.backend):
	// name, fidelity grade and a one-line description.
	Backends []ltp.BackendInfo `json:"backends"`
	// BranchPredictors is the branch-predictor registry
	// (RunRequest.branch_pred).
	BranchPredictors []string `json:"branch_predictors"`
	// Prefetchers is the prefetch-engine registry
	// (RunRequest.prefetcher).
	Prefetchers []string `json:"prefetchers"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	resp := WorkloadsResponse{
		Backends:         ltp.Backends(),
		BranchPredictors: ltp.BranchPredictors(),
		Prefetchers:      ltp.Prefetchers(),
	}
	for _, k := range ltp.Workloads() {
		resp.Kernels = append(resp.Kernels, WorkloadInfo{
			Name: k.Name, About: k.About, Class: k.Hint.String(), SPECAnalog: k.SPECAnalog,
		})
	}
	for _, f := range ltp.Scenarios() {
		resp.Scenarios = append(resp.Scenarios, ScenarioInfo{
			Name: f.Name, About: f.About, Class: f.Hint.String(),
			Defaults: KnobsRequest{
				FootprintWords: f.Defaults.FootprintWords,
				Stride:         f.Defaults.Stride,
				Chains:         f.Defaults.Chains,
				PayloadOps:     f.Defaults.PayloadOps,
				BranchEntropy:  f.Defaults.BranchEntropy,
				PhaseLen:       f.Defaults.PhaseLen,
			},
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// PoolStats is the worker-pool section of GET /v1/stats.
type PoolStats struct {
	// Parallelism is the worker count (the concurrent-simulation cap).
	Parallelism int `json:"parallelism"`
	// Queued counts submitted simulations not yet started.
	Queued int `json:"queued"`
	// Running counts simulations executing at snapshot time.
	Running int `json:"running"`
	// MeanRunSeconds is the EWMA wall-clock of a simulated
	// cycle-backend cell (0 before the first simulation).
	MeanRunSeconds float64 `json:"mean_run_seconds"`
	// MeanRunSecondsByBackend breaks the EWMA down per backend; mixed
	// with the queue's composition it is the Retry-After input
	// (backends with no completed simulation are absent).
	MeanRunSecondsByBackend map[string]float64 `json:"mean_run_seconds_by_backend,omitempty"`
}

// JobStats is the campaign-job section of GET /v1/stats.
type JobStats struct {
	// Total counts every campaign this process served.
	Total int `json:"total"`
	// Active counts campaigns still running (bounded by
	// Limits.MaxActiveJobs).
	Active int `json:"active"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	// Cache exposes the content-addressed result cache's counters —
	// the service's proof of reuse.
	Cache cache.Stats `json:"cache"`
	// Store exposes the persistent result store's counters (absent
	// without Config.StorePath): record/byte totals plus hit, miss,
	// append and corrupt-skipped counts.
	Store *store.Stats `json:"store,omitempty"`
	// Pool snapshots the worker pool's occupancy.
	Pool PoolStats `json:"pool"`
	// Jobs counts campaign jobs.
	Jobs JobStats `json:"jobs"`
	// Limits echoes the admission policy.
	Limits Limits `json:"limits"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	total, active := s.jobs.counts()
	var storeStats *store.Stats
	if st, ok := s.engine.StoreStats(); ok {
		storeStats = &st
	}
	s.writeJSON(w, http.StatusOK, StatsResponse{
		Cache: s.engine.CacheStats(),
		Store: storeStats,
		Pool: PoolStats{
			Parallelism:             s.engine.Parallelism(),
			Queued:                  s.engine.QueuedRuns(),
			Running:                 s.engine.RunningRuns(),
			MeanRunSeconds:          s.engine.MeanRunSeconds(),
			MeanRunSecondsByBackend: s.engine.MeanRunSecondsByBackend(),
		},
		Jobs:   JobStats{Total: total, Active: active},
		Limits: s.limits,
	})
}

// RunResponse is the POST /v1/run body: the canonical hash, how the
// cache served the request, and the full simulation result.
type RunResponse struct {
	// Hash is the run's content address; repeat the request and the
	// same hash guarantees the same result.
	Hash string `json:"hash"`
	// Cache is "miss" (simulated now), "hit" (served from cache) or
	// "shared" (joined an identical in-flight simulation).
	Cache string `json:"cache"`
	// Result is the simulation outcome (metrics, LTP stats, energy).
	Result ltp.RunResult `json:"result"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	spec, err := req.runSpec(s.limits)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// The request's context bounds the run: a client disconnect
	// cancels this caller (an identical in-flight simulation other
	// waiters share keeps running for them), and the service timeout
	// caps the wall-clock.
	ctx := r.Context()
	if s.limits.RunTimeoutSeconds > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(s.limits.RunTimeoutSeconds*float64(time.Second)))
		defer cancel()
	}
	res, outcome, hash, err := s.engine.RunCached(ctx, spec)
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, &apiError{status: http.StatusGatewayTimeout,
			msg: fmt.Sprintf("simulation exceeded the %gs service timeout", s.limits.RunTimeoutSeconds)})
		return
	case r.Context().Err() != nil:
		// Client went away; nobody is reading the response.
		return
	default:
		s.writeError(w, fmt.Errorf("simulation failed: %w", err))
		return
	}
	s.writeJSON(w, http.StatusOK, RunResponse{
		Hash:   hash,
		Cache:  outcome.String(),
		Result: res,
	})
}

// MatrixResponse is the POST /v1/matrix and (matrix-kind) GET
// /v1/jobs/{id} body. Result is present only once Job.Status is done.
type MatrixResponse struct {
	// Job describes the campaign's identity and progress.
	Job JobView `json:"job"`
	// Result is the aggregated campaign (status done only).
	Result *ltp.MatrixResult `json:"result,omitempty"`
}

// SweepResponse is the POST /v1/sweep and (sweep-kind) GET
// /v1/jobs/{id} body. Result is present only once Job.Status is done.
type SweepResponse struct {
	// Job describes the campaign's identity and progress.
	Job JobView `json:"job"`
	// Result is the aggregated sweep (status done only).
	Result *ltp.SweepResult `json:"result,omitempty"`
}

// jobResponse renders a job in its kind's response shape, attaching
// the result when finished.
func jobResponse(t *trackedJob) any {
	view := t.view()
	if t.kind == KindMatrix {
		resp := MatrixResponse{Job: view}
		if view.Status == JobDone {
			resp.Result, _ = t.mjob.Wait()
		}
		return resp
	}
	resp := SweepResponse{Job: view}
	if view.Status == JobDone {
		resp.Result, _ = t.job.Wait()
	}
	return resp
}

// StreamEvent is one NDJSON line of POST /v1/matrix?stream=1 and POST
// /v1/sweep?stream=1: one "cell" event per resolved cell (in
// completion order), then one final "result" (or "error") event. The
// final event of a cancelled campaign is "error" with the job view's
// status canceled.
type StreamEvent struct {
	// Type is "cell", "result" or "error".
	Type string `json:"type"`
	// Cell is one resolved cell replicate (cell events).
	Cell *ltp.CellResult `json:"cell,omitempty"`
	// Job is the final job view (result and error events).
	Job *JobView `json:"job,omitempty"`
	// Result is the aggregated matrix campaign (matrix result events).
	Result *ltp.MatrixResult `json:"result,omitempty"`
	// Sweep is the aggregated sweep campaign (sweep result events).
	Sweep *ltp.SweepResult `json:"sweep,omitempty"`
	// Error is the failure or cancellation cause (error events).
	Error string `json:"error,omitempty"`
}

// respondSubmitted handles the ?stream=1 / ?wait=1 forms shared by
// the matrix and sweep endpoints.
func (s *Server) respondSubmitted(w http.ResponseWriter, r *http.Request, t *trackedJob) {
	switch {
	case wantsStream(r):
		defer t.streamFinished() // release the submit-time reservation
		s.streamJob(w, r, t)
	case r.URL.Query().Get("wait") == "1":
		select {
		case <-t.job.Done():
		case <-r.Context().Done():
			return // client went away; the campaign keeps running
		}
		s.writeJSON(w, http.StatusOK, jobResponse(t))
	default:
		s.writeJSON(w, http.StatusAccepted, jobResponse(t))
	}
}

// wantsStream reports whether the submission asked for the NDJSON
// cell stream (which reserves the job's cell log at registration).
func wantsStream(r *http.Request) bool { return r.URL.Query().Get("stream") == "1" }

// streamJob writes chunked NDJSON: every resolved cell as it lands
// (served from the job's cell log, which is reserved for this stream
// at submission and released once the job finishes and the stream
// ends), then the final result/error event. A client disconnect stops
// the stream without stopping the campaign — cancel via
// DELETE /v1/jobs/{id} instead.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, t *trackedJob) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	emit := func(ev StreamEvent) {
		_ = enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	next := 0
	for {
		cells, more, done := t.cellsFrom(next)
		for i := range cells {
			c := cells[i]
			emit(StreamEvent{Type: "cell", Cell: &c})
		}
		next += len(cells)
		if done {
			break
		}
		select {
		case <-r.Context().Done():
			return
		case <-more:
		}
	}

	<-t.job.Done()
	view := t.view()
	if _, err := t.job.Wait(); err != nil {
		emit(StreamEvent{Type: "error", Job: &view, Error: err.Error()})
		return
	}
	ev := StreamEvent{Type: "result", Job: &view}
	if t.kind == KindMatrix {
		ev.Result, _ = t.mjob.Wait()
	} else {
		ev.Sweep, _ = t.job.Wait()
	}
	emit(ev)
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	var req MatrixRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	spec, err := req.matrixSpec(s.limits)
	if err != nil {
		s.writeError(w, err)
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	id, err := s.jobs.admit(hash)
	if err != nil {
		if errors.Is(err, errBusy) {
			s.writeBusy(w, err, hash)
			return
		}
		s.writeError(w, err)
		return
	}
	mjob, err := s.engine.SubmitMatrix(spec)
	if err != nil {
		s.jobs.release()
		s.writeError(w, badRequest("%v", err))
		return
	}
	t := s.jobs.register(newTrackedJob(id, KindMatrix, hash, mjob.Job(), mjob, wantsStream(r)))
	if s.logf != nil {
		s.logf("campaign %s submitted: %d runs, hash %s", id, mjob.TotalRuns(), hash)
	}
	s.respondSubmitted(w, r, t)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	spec, err := req.sweepSpec(s.limits)
	if err != nil {
		s.writeError(w, err)
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	id, err := s.jobs.admit(hash)
	if err != nil {
		if errors.Is(err, errBusy) {
			s.writeBusy(w, err, hash)
			return
		}
		s.writeError(w, err)
		return
	}
	// The job deliberately outlives the submitting request (fetch it
	// via /v1/jobs/{id}); Server.Shutdown cancels it at drain time.
	job, err := s.engine.Submit(context.Background(), spec)
	if err != nil {
		s.jobs.release()
		s.writeError(w, badRequest("%v", err))
		return
	}
	t := s.jobs.register(newTrackedJob(id, KindSweep, hash, job, nil, wantsStream(r)))
	if s.logf != nil {
		s.logf("sweep %s submitted: %d runs, hash %s", id, job.TotalRuns(), hash)
	}
	s.respondSubmitted(w, r, t)
}

// JobsResponse is the GET /v1/jobs body, newest first.
type JobsResponse struct {
	// Jobs lists every campaign this process has served.
	Jobs []JobView `json:"jobs"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	resp := JobsResponse{Jobs: []JobView{}}
	for _, t := range s.jobs.list() {
		resp.Jobs = append(resp.Jobs, t.view())
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	t, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, &apiError{status: http.StatusNotFound, msg: "no such job"})
		return
	}
	s.writeJSON(w, http.StatusOK, jobResponse(t))
}

// handleJobDelete cancels a campaign: queued cells never simulate,
// in-flight cells abort mid-pipeline, and the job settles in status
// canceled. Cancelling a finished job is a no-op; either way the
// response is the job's current view (the call is idempotent).
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	t, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, &apiError{status: http.StatusNotFound, msg: "no such job"})
		return
	}
	t.job.Cancel()
	if s.logf != nil {
		s.logf("campaign %s cancel requested", t.id)
	}
	s.writeJSON(w, http.StatusOK, jobResponse(t))
}
