package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer returns a server over a small engine plus its ts.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// post sends a JSON body and decodes the JSON response.
func post(t *testing.T, url string, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

// quickRunBody is a small but real run request.
const quickRunBody = `{"scenario":"branchy","scale":0.05,"max_insts":5000}`

// quickMatrixBody is a 1-scenario, 2-config, 2-seed campaign.
const quickMatrixBody = `{"scenarios":["branchy"],"seeds":2,"scale":0.05,"detail_insts":4000,
  "configs":[{"name":"base"},{"name":"ltp","use_ltp":true,"config":{"iq_size":32}}]}`

func TestHealthAndWorkloads(t *testing.T) {
	_, ts := newTestServer(t)

	var h HealthResponse
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz = %+v, %v", h, err)
	}

	var w WorkloadsResponse
	resp2, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&w); err != nil {
		t.Fatal(err)
	}
	if len(w.Kernels) < 10 || len(w.Scenarios) < 6 {
		t.Fatalf("registries too small: %d kernels, %d scenarios", len(w.Kernels), len(w.Scenarios))
	}
}

func TestRunEndpointCaches(t *testing.T) {
	_, ts := newTestServer(t)

	var r1 RunResponse
	if resp := post(t, ts.URL+"/v1/run", quickRunBody, &r1); resp.StatusCode != 200 {
		t.Fatalf("first run status %d", resp.StatusCode)
	}
	if r1.Cache != "miss" || r1.Hash == "" || r1.Result.Committed == 0 {
		t.Fatalf("first run = cache %q hash %q committed %d", r1.Cache, r1.Hash, r1.Result.Committed)
	}

	var r2 RunResponse
	post(t, ts.URL+"/v1/run", quickRunBody, &r2)
	if r2.Cache != "hit" {
		t.Fatalf("second identical run cache = %q; want hit", r2.Cache)
	}
	if r2.Hash != r1.Hash || r2.Result.Cycles != r1.Result.Cycles {
		t.Fatalf("cached response differs: hash %q vs %q", r2.Hash, r1.Hash)
	}

	// The stats endpoint must show the reuse.
	var st StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("stats cache = %+v; want 1 hit, 1 miss", st.Cache)
	}
}

func TestValidationRejects(t *testing.T) {
	_, ts := newTestServer(t)
	cases := map[string]string{
		"empty":          `{}`,
		"both sources":   `{"workload":"indirect","scenario":"branchy"}`,
		"unknown field":  `{"scenario":"branchy","bogus":1}`,
		"unknown name":   `{"scenario":"nosuch"}`,
		"bad scale":      `{"scenario":"branchy","scale":1.5}`,
		"over budget":    `{"scenario":"branchy","max_insts":999999999}`,
		"bad warm mode":  `{"scenario":"branchy","warm_mode":"turbo"}`,
		"bad ltp mode":   `{"scenario":"branchy","use_ltp":true,"ltp":{"mode":"XX"}}`,
		"bad iq":         `{"scenario":"branchy","config":{"iq_size":-3}}`,
		"ltp sans flag":  `{"scenario":"branchy","ltp":{"mode":"NR"}}`,
		"kernel + knobs": `{"workload":"indirect","knobs":{"stride":2}}`,
		"kernel + seed":  `{"workload":"indirect","seed":5}`,
		"trailing junk":  `{"scenario":"branchy"} junk`,
		"malformed json": `{`,
	}
	for name, body := range cases {
		var e ErrorResponse
		resp := post(t, ts.URL+"/v1/run", body, &e)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d; want 400", name, resp.StatusCode)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error body", name)
		}
	}

	var e ErrorResponse
	if resp := post(t, ts.URL+"/v1/matrix", `{"seeds":100000}`, &e); resp.StatusCode != 400 {
		t.Errorf("matrix seeds over limit: status %d; want 400", resp.StatusCode)
	}
}

func TestMatrixWaitAndResubmitHits(t *testing.T) {
	_, ts := newTestServer(t)

	var m1 MatrixResponse
	if resp := post(t, ts.URL+"/v1/matrix?wait=1", quickMatrixBody, &m1); resp.StatusCode != 200 {
		t.Fatalf("matrix status %d", resp.StatusCode)
	}
	if m1.Job.Status != JobDone || m1.Result == nil {
		t.Fatalf("waited matrix not done: %+v", m1.Job)
	}
	if p := m1.Job.Progress; p.DoneRuns != p.TotalRuns || p.TotalRuns != 4 {
		t.Fatalf("progress = %+v; want 4/4", p)
	}
	if m1.Result.Cell("branchy", "ltp") == nil {
		t.Fatalf("result missing cell: %+v", m1.Result)
	}

	// Identical resubmission: served from cache, zero new simulations.
	var m2 MatrixResponse
	post(t, ts.URL+"/v1/matrix?wait=1", quickMatrixBody, &m2)
	if m2.Job.Hash != m1.Job.Hash {
		t.Fatalf("identical campaigns hash differently")
	}
	p := m2.Job.Progress
	if p.CacheHits != int64(p.TotalRuns) || p.CacheMisses != 0 {
		t.Fatalf("resubmission progress = %+v; want all cache hits", p)
	}

	// The job endpoints must know both campaigns.
	var jobs JobsResponse
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs.Jobs) != 2 {
		t.Fatalf("%d jobs listed; want 2", len(jobs.Jobs))
	}
	var one MatrixResponse
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + m1.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	if one.Job.ID != m1.Job.ID || one.Result == nil {
		t.Fatalf("job fetch = %+v", one.Job)
	}

	if resp, _ := http.Get(ts.URL + "/v1/jobs/nosuch"); resp.StatusCode != 404 {
		t.Fatalf("unknown job status %d; want 404", resp.StatusCode)
	}
}

func TestMatrixAsyncLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	var m MatrixResponse
	if resp := post(t, ts.URL+"/v1/matrix", quickMatrixBody, &m); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async matrix status %d; want 202", resp.StatusCode)
	}
	if m.Job.ID == "" {
		t.Fatal("no job id")
	}
	// Poll until done.
	for i := 0; ; i++ {
		var v MatrixResponse
		resp, err := http.Get(ts.URL + "/v1/jobs/" + m.Job.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if v.Job.Status == JobDone {
			if v.Result == nil {
				t.Fatal("done job has no result")
			}
			break
		}
		if v.Job.Status == JobFailed {
			t.Fatalf("job failed: %s", v.Job.Error)
		}
		if i > 2000 {
			t.Fatal("job never finished")
		}
	}
}

func TestMatrixStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Post(ts.URL+"/v1/matrix?stream=1", "application/json", strings.NewReader(quickMatrixBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// quickMatrixBody enumerates 4 runs: 4 cell events then the result.
	if len(events) != 5 {
		t.Fatalf("%d events; want 4 cells + 1 result", len(events))
	}
	last := events[len(events)-1]
	if last.Type != "result" || last.Result == nil || last.Job == nil || last.Job.Status != JobDone {
		t.Fatalf("final event = %+v; want a done result", last)
	}
	seen := map[int]bool{}
	for _, ev := range events[:len(events)-1] {
		if ev.Type != "cell" || ev.Cell == nil {
			t.Fatalf("non-cell event before the result: %+v", ev)
		}
		if seen[ev.Cell.Index] {
			t.Fatalf("cell %d streamed twice", ev.Cell.Index)
		}
		seen[ev.Cell.Index] = true
		if len(ev.Cell.Coords) != 3 || ev.Cell.Result.Committed == 0 {
			t.Fatalf("malformed cell event: %+v", ev.Cell)
		}
	}
	if p := last.Job.Progress; p.DoneRuns != p.TotalRuns || p.TotalRuns != 4 {
		t.Fatalf("final progress = %+v; want 4/4", p)
	}
}

// TestBackpressure429 fills the active-job bound with slow campaigns
// and checks the next submission is rejected with 429.
func TestBackpressure429(t *testing.T) {
	srv, err := New(Config{Parallelism: 1, Limits: Limits{MaxActiveJobs: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	// Two distinct slow-ish campaigns occupy both slots (parallelism 1
	// keeps them in flight while we probe).
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"scenarios":["ptrchase"],"seeds":3,"scale":0.1,"detail_insts":60000,"base_seed":%d,"configs":[{"name":"c"}]}`, 1000*i)
			post(t, ts.URL+"/v1/matrix?wait=1", body, nil)
		}(i)
	}

	// Probe until both slots are taken, then require the 429 with its
	// v2 decorations: a Retry-After header derived from queue depth and
	// mean cell latency, and the campaign hash in the body so a client
	// can poll a duplicate instead of resubmitting.
	got429 := false
	for i := 0; i < 4000 && !got429; i++ {
		var e ErrorResponse
		resp := post(t, ts.URL+"/v1/matrix", `{"scenarios":["branchy"],"seeds":1,"scale":0.05,"detail_insts":2000,"configs":[{"name":"c"}]}`, &e)
		switch resp.StatusCode {
		case 429:
			got429 = true
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatal("429 without a Retry-After header")
			}
			if e.RetryAfterSeconds < 1 {
				t.Fatalf("retry_after_seconds = %d; want >= 1", e.RetryAfterSeconds)
			}
			if e.Hash == "" {
				t.Fatalf("429 body carries no campaign hash: %+v", e)
			}
		case 202: // slipped in before the slots filled; keep probing
		default:
			t.Fatalf("probe status %d: %s", resp.StatusCode, e.Error)
		}
	}
	wg.Wait()
	if !got429 {
		t.Skip("campaigns finished before the bound was observable (very fast machine)")
	}
}

// do sends a bodyless request with the given method and decodes JSON.
func do(t *testing.T, method, url string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s response: %v", method, url, err)
		}
	}
	return resp
}

// TestDeleteJobCancels covers DELETE /v1/jobs/{id}: the campaign
// settles in status canceled, its queued cells never simulate, and the
// delete is idempotent.
func TestDeleteJobCancels(t *testing.T) {
	srv, err := New(Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	// A slow campaign: 4 runs of 120k pointer-chase instructions behind
	// 1 worker — the first cell alone outlasts the submit+DELETE round
	// trip by orders of magnitude, and the resubmission stays cheap.
	slowBody := `{"scenarios":["ptrchase"],"seeds":4,"scale":0.1,"detail_insts":120000,"configs":[{"name":"c"}]}`
	var m MatrixResponse
	if resp := post(t, ts.URL+"/v1/matrix", slowBody, &m); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	var del MatrixResponse
	if resp := do(t, http.MethodDelete, ts.URL+"/v1/jobs/"+m.Job.ID, &del); resp.StatusCode != 200 {
		t.Fatalf("delete status %d", resp.StatusCode)
	}

	// The job must settle as canceled promptly (the in-flight cell
	// aborts mid-pipeline; queued ones never start).
	var v MatrixResponse
	for i := 0; ; i++ {
		do(t, http.MethodGet, ts.URL+"/v1/jobs/"+m.Job.ID, &v)
		if v.Job.Status == JobCanceled {
			break
		}
		if v.Job.Status == JobDone {
			t.Skip("campaign finished before the cancel landed (very fast machine)")
		}
		if i > 200 {
			t.Fatalf("job stuck in %q after cancel", v.Job.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	p := v.Job.Progress
	if p.CanceledRuns == 0 || p.DoneRuns+p.CanceledRuns != p.TotalRuns {
		t.Fatalf("canceled progress = %+v; want done+canceled == total with canceled > 0", p)
	}
	if v.Result != nil {
		t.Fatal("canceled job carries a result")
	}

	// Idempotent: deleting again returns the same settled view.
	var again MatrixResponse
	if resp := do(t, http.MethodDelete, ts.URL+"/v1/jobs/"+m.Job.ID, &again); resp.StatusCode != 200 || again.Job.Status != JobCanceled {
		t.Fatalf("second delete = %d %q; want 200 canceled", resp.StatusCode, again.Job.Status)
	}
	if resp := do(t, http.MethodDelete, ts.URL+"/v1/jobs/nosuch", nil); resp.StatusCode != 404 {
		t.Fatalf("delete of unknown job = %d; want 404", resp.StatusCode)
	}

	// No stale canceled cells: resubmitting must re-simulate (some
	// cells may legitimately hit — the ones that finished pre-cancel).
	var redo MatrixResponse
	if resp := post(t, ts.URL+"/v1/matrix?wait=1", slowBody, &redo); resp.StatusCode != 200 {
		t.Fatalf("resubmit status %d", resp.StatusCode)
	}
	if redo.Job.Status != JobDone || redo.Job.Progress.CacheMisses == 0 {
		t.Fatalf("resubmit after cancel = %q misses=%d; want done with fresh simulations",
			redo.Job.Status, redo.Job.Progress.CacheMisses)
	}
}

// quickSweepBody exercises POST /v1/sweep: an IQ axis crossed with a
// replicated seed axis — a shape the matrix endpoint cannot express.
const quickSweepBody = `{
  "base": {"scenario":"branchy","scale":0.05,"max_insts":4000},
  "axes": [
    {"name":"iq","points":[
      {"name":"iq64","patch":{"iq_size":64}},
      {"name":"iq24","patch":{"iq_size":24}}]},
    {"name":"seed","replicate":true,"points":[
      {"name":"s0","patch":{"seed":0}},
      {"name":"s1","patch":{"seed":1}}]}
  ]}`

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	var s SweepResponse
	if resp := post(t, ts.URL+"/v1/sweep?wait=1", quickSweepBody, &s); resp.StatusCode != 200 {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	if s.Job.Kind != KindSweep || s.Job.Status != JobDone || s.Result == nil {
		t.Fatalf("sweep response = %+v", s.Job)
	}
	if got := s.Job.Progress.TotalRuns; got != 4 {
		t.Fatalf("total runs = %d; want 4", got)
	}
	if len(s.Result.Cells) != 2 {
		t.Fatalf("%d cells; want 2", len(s.Result.Cells))
	}
	for _, c := range s.Result.Cells {
		if c.Replicates != 2 || c.CPI.N != 2 {
			t.Fatalf("cell %v under-aggregated: %+v", c.Coords, c)
		}
	}

	// The job endpoint serves the sweep shape too.
	var v SweepResponse
	do(t, http.MethodGet, ts.URL+"/v1/jobs/"+s.Job.ID, &v)
	if v.Job.ID != s.Job.ID || v.Result == nil {
		t.Fatalf("job fetch = %+v", v.Job)
	}

	// Identical resubmission: all hits through the same cell cache.
	var s2 SweepResponse
	post(t, ts.URL+"/v1/sweep?wait=1", quickSweepBody, &s2)
	if s2.Job.Hash != s.Job.Hash {
		t.Fatal("identical sweeps hash differently")
	}
	if p := s2.Job.Progress; p.CacheHits != int64(p.TotalRuns) {
		t.Fatalf("resubmission progress = %+v; want all hits", p)
	}
}

// TestCellLogReleasedAfterFinish checks the registry drops a finished
// job's cell log (thousands of full RunResults at scale) once no
// stream can read it, while the job view itself stays addressable.
func TestCellLogReleasedAfterFinish(t *testing.T) {
	srv, ts := newTestServer(t)

	var m MatrixResponse
	if resp := post(t, ts.URL+"/v1/matrix?wait=1", quickMatrixBody, &m); resp.StatusCode != 200 {
		t.Fatalf("matrix status %d", resp.StatusCode)
	}
	tj, ok := srv.jobs.get(m.Job.ID)
	if !ok {
		t.Fatal("job not registered")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		tj.mu.Lock()
		released := tj.cells == nil
		tj.mu.Unlock()
		if released {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cell log never released after the job finished with no stream attached")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The job itself must remain addressable with full progress.
	var v MatrixResponse
	do(t, http.MethodGet, ts.URL+"/v1/jobs/"+m.Job.ID, &v)
	if v.Job.Status != JobDone || v.Result == nil {
		t.Fatalf("job view degraded after log release: %+v", v.Job)
	}
}

func TestSweepValidationRejects(t *testing.T) {
	_, ts := newTestServer(t)
	cases := map[string]string{
		"no axes":       `{"base":{"scenario":"branchy"}}`,
		"unnamed axis":  `{"base":{"scenario":"branchy"},"axes":[{"points":[{"name":"a","patch":{}}]}]}`,
		"empty axis":    `{"base":{"scenario":"branchy"},"axes":[{"name":"x","points":[]}]}`,
		"dup point":     `{"base":{"scenario":"branchy"},"axes":[{"name":"x","points":[{"name":"a","patch":{}},{"name":"a","patch":{}}]}]}`,
		"no source":     `{"base":{},"axes":[{"name":"x","points":[{"name":"a","patch":{}}]}]}`,
		"bad iq":        `{"base":{"scenario":"branchy"},"axes":[{"name":"x","points":[{"name":"a","patch":{"iq_size":-2}}]}]}`,
		"over budget":   `{"base":{"scenario":"branchy"},"axes":[{"name":"x","points":[{"name":"a","patch":{"max_insts":999999999}}]}]}`,
		"unknown field": `{"base":{"scenario":"branchy"},"axes":[{"name":"x","points":[{"name":"a","patch":{"bogus":1}}]}]}`,
		"too many cells": func() string {
			// 300^2 cells: must be rejected by count arithmetic before
			// anything canonicalizes or enumerates the cross-product.
			var pts strings.Builder
			for i := 0; i < 300; i++ {
				if i > 0 {
					pts.WriteByte(',')
				}
				fmt.Fprintf(&pts, `{"name":"p%d","patch":{"seed":%d}}`, i, i)
			}
			return fmt.Sprintf(`{"base":{"scenario":"branchy"},"axes":[{"name":"a","points":[%s]},{"name":"b","points":[%s]}]}`,
				pts.String(), pts.String())
		}(),
	}
	for name, body := range cases {
		var e ErrorResponse
		resp := post(t, ts.URL+"/v1/sweep", body, &e)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d; want 400", name, resp.StatusCode)
		}
	}
}

// TestResponseJSONShape pins the documented field names of API.md.
func TestResponseJSONShape(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(quickRunBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, field := range []string{`"hash"`, `"cache"`, `"result"`, `"CPI"`} {
		if !bytes.Contains(buf.Bytes(), []byte(field)) {
			t.Errorf("run response missing %s field:\n%.400s", field, buf.String())
		}
	}
}

// TestRetryAfterEstimate pins the Retry-After arithmetic: round up,
// clamp to [1, 600], and never emit 0 — a sub-second EWMA (cheap
// model-backend cells, a freshly started engine) must still tell
// clients to wait a full second.
func TestRetryAfterEstimate(t *testing.T) {
	cases := []struct {
		mean        float64
		outstanding int
		parallelism int
		want        int
	}{
		{0, 0, 8, 1},        // no EWMA yet: assume a second
		{0.004, 0, 8, 1},    // sub-second EWMA, idle: still >= 1s
		{0.004, 100, 8, 1},  // sub-second EWMA, backlog: rounds up to 1
		{2.0, 7, 8, 2},      // 2s x 8 runs / 8 workers
		{1.5, 0, 1, 2},      // 1.5s rounds up, never down
		{5, 10_000, 2, 600}, // deep backlog clamps at 10 minutes
		{1, 5, 0, 6},        // degenerate parallelism guarded to 1
	}
	for _, c := range cases {
		if got := retryAfterEstimate(c.mean, c.outstanding, c.parallelism); got != c.want {
			t.Errorf("retryAfterEstimate(%g, %d, %d) = %d, want %d",
				c.mean, c.outstanding, c.parallelism, got, c.want)
		}
		if got := retryAfterEstimate(c.mean, c.outstanding, c.parallelism); got < 1 {
			t.Errorf("retryAfterEstimate(%g, %d, %d) = %d < 1s", c.mean, c.outstanding, c.parallelism, got)
		}
	}
}

// TestBackendSurface drives the backend field across the API: the
// registry on /v1/workloads, a model-backend /v1/run (distinct hash
// from the cycle run of the same spec), and the 400 for unknown names.
func TestBackendSurface(t *testing.T) {
	_, ts := newTestServer(t)

	var w WorkloadsResponse
	resp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&w); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, b := range w.Backends {
		names[b.Name] = true
		if b.Fidelity == "" || b.About == "" {
			t.Fatalf("backend %q missing fidelity/about: %+v", b.Name, b)
		}
	}
	if !names["cycle"] || !names["model"] {
		t.Fatalf("backend registry incomplete: %+v", w.Backends)
	}

	var cycle, model RunResponse
	post(t, ts.URL+"/v1/run", quickRunBody, &cycle)
	if resp := post(t, ts.URL+"/v1/run",
		`{"scenario":"branchy","scale":0.05,"max_insts":5000,"backend":"model"}`, &model); resp.StatusCode != 200 {
		t.Fatalf("model run status %d", resp.StatusCode)
	}
	if model.Hash == cycle.Hash {
		t.Fatalf("model and cycle runs share hash %s: fidelities would collide in the cache", model.Hash)
	}
	if model.Result.CPI <= 0 {
		t.Fatalf("model run returned no estimate: %+v", model.Result)
	}

	var e ErrorResponse
	if resp := post(t, ts.URL+"/v1/run",
		`{"scenario":"branchy","max_insts":5000,"backend":"quantum"}`, &e); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown backend accepted: status %d", resp.StatusCode)
	}
}

// quickTriageBody is a 2-scenario × 2-config sweep with 2-seed
// replication triaged to the single best cell.
const quickTriageBody = `{
 "base": {"scale":0.05,"max_insts":4000},
 "axes": [
  {"name":"scenario","points":[{"name":"branchy","patch":{"scenario":"branchy"}},
                               {"name":"ptrchase","patch":{"scenario":"ptrchase"}}]},
  {"name":"config","points":[{"name":"IQ64","patch":{}},
                             {"name":"IQ32","patch":{"iq_size":32}}]},
  {"name":"seed","replicate":true,"points":[{"name":"s1","patch":{"seed":1}},
                                            {"name":"s2","patch":{"seed":2}}]}
 ],
 "triage": {"top_k": 1}
}`

// TestSweepTriageEndpoint drives a fidelity-triage sweep end to end
// over HTTP: one job, two phases, model estimates for every cell and a
// detailed cycle-accurate aggregate for the selected cell.
func TestSweepTriageEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	var s SweepResponse
	if resp := post(t, ts.URL+"/v1/sweep?wait=1", quickTriageBody, &s); resp.StatusCode != 200 {
		t.Fatalf("triage sweep status %d", resp.StatusCode)
	}
	if s.Job.Status != JobDone || s.Result == nil {
		t.Fatalf("triage sweep = %+v", s.Job)
	}
	// 8 model runs + 1 selected cell × 2 replicates.
	if got := s.Job.Progress.TotalRuns; got != 10 {
		t.Fatalf("total runs = %d; want 10", got)
	}
	if len(s.Result.Cells) != 4 {
		t.Fatalf("%d estimate cells; want 4", len(s.Result.Cells))
	}
	for _, c := range s.Result.Cells {
		if c.Backend != "model" {
			t.Fatalf("estimate cell %v tagged %q", c.Coords, c.Backend)
		}
	}
	if s.Result.Triage == nil || len(s.Result.Triage.Detailed) != 1 {
		t.Fatalf("triage result missing detailed cell: %+v", s.Result.Triage)
	}
	if got := s.Result.Triage.Detailed[0].Backend; got != "cycle" {
		t.Fatalf("detailed cell tagged %q; want cycle", got)
	}

	// A bad top_k is a 400, not a campaign.
	var e ErrorResponse
	bad := strings.Replace(quickTriageBody, `"top_k": 1`, `"top_k": 99`, 1)
	if resp := post(t, ts.URL+"/v1/sweep", bad, &e); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized top_k accepted: status %d", resp.StatusCode)
	}
}

// TestStoreBackedServer covers the persistent tier end to end over
// HTTP: a campaign appends to the store, a restarted server serves the
// identical campaign entirely from it without re-simulating, and
// since_snapshot skips every banked run.
func TestStoreBackedServer(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "results.store")
	boot := func() (*Server, *httptest.Server) {
		t.Helper()
		srv, err := New(Config{Parallelism: 2, StorePath: storePath})
		if err != nil {
			t.Fatal(err)
		}
		return srv, httptest.NewServer(srv.Handler())
	}

	// First life: stream the campaign, collecting each run's content
	// address for the snapshot submission below.
	srv1, ts1 := boot()
	resp, err := http.Post(ts1.URL+"/v1/sweep?stream=1", "application/json", strings.NewReader(quickSweepBody))
	if err != nil {
		t.Fatal(err)
	}
	var hashes []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Type == "cell" {
			hashes = append(hashes, ev.Cell.Hash)
		}
	}
	resp.Body.Close()
	total := len(hashes)
	if total == 0 {
		t.Fatal("stream delivered no cells")
	}
	var st StatsResponse
	do(t, http.MethodGet, ts1.URL+"/v1/stats", &st)
	if st.Store == nil || st.Store.Appends != uint64(total) {
		t.Fatalf("first-life store stats = %+v; want %d appends", st.Store, total)
	}
	ts1.Close()
	srv1.Close()

	// Second life, same store file: the identical campaign must be
	// served entirely from disk — zero simulations.
	srv2, ts2 := boot()
	defer func() {
		ts2.Close()
		srv2.Close()
	}()
	var s SweepResponse
	if resp := post(t, ts2.URL+"/v1/sweep?wait=1", quickSweepBody, &s); resp.StatusCode != 200 {
		t.Fatalf("warm sweep status %d", resp.StatusCode)
	}
	if p := s.Job.Progress; p.StoreHits != int64(total) || p.CacheMisses != 0 {
		t.Fatalf("warm progress = %+v; want all %d runs store hits", p, total)
	}
	do(t, http.MethodGet, ts2.URL+"/v1/stats", &st)
	if st.Store == nil || st.Store.Hits != uint64(total) || st.Store.Appends != 0 {
		t.Fatalf("second-life store stats = %+v; want %d hits, no appends", st.Store, total)
	}

	// Incremental submission: with every run in the snapshot, nothing
	// executes at all — not even store lookups.
	var req map[string]any
	if err := json.Unmarshal([]byte(quickSweepBody), &req); err != nil {
		t.Fatal(err)
	}
	req["since_snapshot"] = hashes
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var sd SweepResponse
	if resp := post(t, ts2.URL+"/v1/sweep?wait=1", string(body), &sd); resp.StatusCode != 200 {
		t.Fatalf("diff sweep status %d", resp.StatusCode)
	}
	if sd.Job.Hash == s.Job.Hash {
		t.Fatal("snapshot submission hashed like the full campaign")
	}
	p := sd.Job.Progress
	if p.SnapshotSkipped != int64(total) || p.StoreHits != 0 || p.CacheMisses != 0 || p.CacheHits != 0 {
		t.Fatalf("diff progress = %+v; want all %d runs snapshot-skipped", p, total)
	}

	// Triage and since_snapshot are mutually exclusive.
	req["triage"] = map[string]any{"top_k": 1}
	body, _ = json.Marshal(req)
	var e ErrorResponse
	if resp := post(t, ts2.URL+"/v1/sweep", string(body), &e); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("triage+since_snapshot accepted: status %d", resp.StatusCode)
	}
}
