package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"ltp"
	"ltp/internal/core"
	"ltp/internal/pipeline"
	"ltp/internal/workload"
)

// Limits bounds what a single request may ask for; everything above is
// rejected with 400 before any simulation starts. The zero value of a
// field means its DefaultLimits entry.
type Limits struct {
	// MaxWarmInsts caps the per-run warm-up budget.
	MaxWarmInsts uint64 `json:"max_warm_insts"`
	// MaxDetailInsts caps the per-run measured budget.
	MaxDetailInsts uint64 `json:"max_detail_insts"`
	// MaxSeeds caps matrix seed replication.
	MaxSeeds int `json:"max_seeds"`
	// MaxCells caps scenarios × configs per campaign.
	MaxCells int `json:"max_cells"`
	// MaxActiveJobs caps concurrently admitted campaigns (the 429
	// backpressure bound; see DESIGN.md §8).
	MaxActiveJobs int `json:"max_active_jobs"`
	// RunTimeoutSeconds bounds one synchronous /v1/run request's
	// wall-clock; the request's context is cancelled at the deadline
	// and the simulation aborts mid-pipeline (504). Negative disables
	// the timeout.
	RunTimeoutSeconds float64 `json:"run_timeout_seconds"`
}

// DefaultLimits is the laptop-scale default policy.
func DefaultLimits() Limits {
	return Limits{
		MaxWarmInsts:      10_000_000,
		MaxDetailInsts:    10_000_000,
		MaxSeeds:          64,
		MaxCells:          256,
		MaxActiveJobs:     16,
		RunTimeoutSeconds: 300,
	}
}

// withDefaults fills zero fields from DefaultLimits.
func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxWarmInsts == 0 {
		l.MaxWarmInsts = d.MaxWarmInsts
	}
	if l.MaxDetailInsts == 0 {
		l.MaxDetailInsts = d.MaxDetailInsts
	}
	if l.MaxSeeds == 0 {
		l.MaxSeeds = d.MaxSeeds
	}
	if l.MaxCells == 0 {
		l.MaxCells = d.MaxCells
	}
	if l.MaxActiveJobs == 0 {
		l.MaxActiveJobs = d.MaxActiveJobs
	}
	if l.RunTimeoutSeconds == 0 {
		l.RunTimeoutSeconds = d.RunTimeoutSeconds
	}
	return l
}

// WithDefaults returns the limits with zero fields filled from
// DefaultLimits — exported so the fabric coordinator (internal/fabric)
// applies the same admission policy the single-node server does.
func (l Limits) WithDefaults() Limits { return l.withDefaults() }

// apiError is a validation or policy failure with its HTTP status.
type apiError struct {
	status int
	msg    string
}

// Error returns the message.
func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// KnobsRequest is the JSON form of workload.Knobs (absent or zero
// fields fall back to the scenario family's defaults).
type KnobsRequest struct {
	FootprintWords int     `json:"footprint_words,omitempty"` // working set in 8-byte words
	Stride         int     `json:"stride,omitempty"`          // streamed-touch distance in words
	Chains         int     `json:"chains,omitempty"`          // dependence chains / consumer lag
	PayloadOps     int     `json:"payload_ops,omitempty"`     // dependent ALU ops per element
	BranchEntropy  float64 `json:"branch_entropy,omitempty"`  // branch unpredictability in (0, 0.5]
	PhaseLen       int     `json:"phase_len,omitempty"`       // iterations per phase (phased family)
}

// knobs converts to the workload type.
func (k *KnobsRequest) knobs() *workload.Knobs {
	if k == nil {
		return nil
	}
	return &workload.Knobs{
		FootprintWords: k.FootprintWords,
		Stride:         k.Stride,
		Chains:         k.Chains,
		PayloadOps:     k.PayloadOps,
		BranchEntropy:  k.BranchEntropy,
		PhaseLen:       k.PhaseLen,
	}
}

// ConfigRequest selects the core sizes a service client may vary;
// absent fields keep the Table 1 baseline value.
type ConfigRequest struct {
	IQSize  int `json:"iq_size,omitempty"`  // instruction queue entries
	ROBSize int `json:"rob_size,omitempty"` // reorder buffer entries
	LQSize  int `json:"lq_size,omitempty"`  // load queue entries
	SQSize  int `json:"sq_size,omitempty"`  // store queue entries
	IntRegs int `json:"int_regs,omitempty"` // available integer rename registers
	FPRegs  int `json:"fp_regs,omitempty"`  // available FP rename registers
}

// pipelineConfig applies the overrides to the Table 1 baseline.
func (c *ConfigRequest) pipelineConfig() (*pipeline.Config, error) {
	if c == nil {
		return nil, nil
	}
	cfg := pipeline.DefaultConfig()
	set := func(dst *int, v int, name string, min int) error {
		if v == 0 {
			return nil
		}
		if v < min || v > pipeline.Inf {
			return badRequest("config.%s = %d out of range [%d, %d]", name, v, min, pipeline.Inf)
		}
		*dst = v
		return nil
	}
	for _, f := range []struct {
		dst  *int
		v    int
		name string
		min  int
	}{
		{&cfg.IQSize, c.IQSize, "iq_size", 4},
		{&cfg.ROBSize, c.ROBSize, "rob_size", 16},
		{&cfg.LQSize, c.LQSize, "lq_size", 4},
		{&cfg.SQSize, c.SQSize, "sq_size", 4},
		{&cfg.IntRegs, c.IntRegs, "int_regs", 8},
		{&cfg.FPRegs, c.FPRegs, "fp_regs", 8},
	} {
		if err := set(f.dst, f.v, f.name, f.min); err != nil {
			return nil, err
		}
	}
	return &cfg, nil
}

// LTPRequest configures the parking unit. Pointer fields distinguish
// "absent = paper default" from "0 = unlimited".
type LTPRequest struct {
	// Mode is "NU" (default), "NR" or "NR+NU".
	Mode string `json:"mode,omitempty"`
	// Ident is the identification policy: "paper" (default, UIT +
	// LL predictor) or "crit" (ChampSim-style criticality tables).
	Ident      string `json:"ident,omitempty"`
	Entries    *int   `json:"entries,omitempty"`     // LTP capacity (0 = unlimited)
	Ports      *int   `json:"ports,omitempty"`       // enqueue/dequeue bandwidth (0 = unlimited)
	UITEntries *int   `json:"uit_entries,omitempty"` // Urgent Instruction Table entries (0 = unlimited)
	Tickets    *int   `json:"tickets,omitempty"`     // NR long-latency tickets, [0, 128]
}

// ltpConfig applies the overrides to the paper's realistic design.
func (l *LTPRequest) ltpConfig() (*core.Config, error) {
	if l == nil {
		return nil, nil
	}
	cfg := core.DefaultConfig()
	switch l.Mode {
	case "", "NU":
		cfg.Mode = core.ModeNU
	case "NR":
		cfg.Mode = core.ModeNR
	case "NR+NU", "NRNU":
		cfg.Mode = core.ModeNRNU
	default:
		return nil, badRequest("ltp.mode %q unknown (want NU, NR or NR+NU)", l.Mode)
	}
	ident, ok := core.ParseIdent(l.Ident)
	if !ok {
		return nil, badRequest("ltp.ident %q unknown (want paper or crit)", l.Ident)
	}
	cfg.Ident = ident
	if l.Entries != nil {
		cfg.Entries = *l.Entries
	}
	if l.Ports != nil {
		cfg.Ports = *l.Ports
	}
	if l.UITEntries != nil {
		cfg.UITEntries = *l.UITEntries
	}
	if l.Tickets != nil {
		if *l.Tickets < 0 || *l.Tickets > 128 {
			return nil, badRequest("ltp.tickets = %d out of range [0, 128]", *l.Tickets)
		}
		cfg.Tickets = *l.Tickets
	}
	return &cfg, nil
}

// CorunnerRequest attaches one co-running workload stream (see
// ltp.Corunner): its traffic contends with the primary core for the
// shared cache levels and DRAM.
type CorunnerRequest struct {
	// Scenario names the family generating the stream (required).
	Scenario string `json:"scenario"`
	// Knobs overrides the family defaults.
	Knobs *KnobsRequest `json:"knobs,omitempty"`
	// Seed varies the family's data layouts.
	Seed int64 `json:"seed,omitempty"`
	// Intensity is the replay rate in accesses per 1024 cycles
	// (0 = the default, 256; at most 4096).
	Intensity int `json:"intensity,omitempty"`
	// Accesses is the captured pattern length (0 = the default, 65536;
	// at most 1048576).
	Accesses int `json:"accesses,omitempty"`
}

// corunners validates and converts a co-runner list.
func corunnersFromRequest(reqs []CorunnerRequest) ([]ltp.Corunner, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if len(reqs) > ltp.MaxCorunners {
		return nil, badRequest("%d corunners above the limit %d", len(reqs), ltp.MaxCorunners)
	}
	out := make([]ltp.Corunner, len(reqs))
	for i, c := range reqs {
		if c.Scenario == "" {
			return nil, badRequest("corunners[%d] names no scenario", i)
		}
		if _, err := ltp.ScenarioByName(c.Scenario); err != nil {
			return nil, badRequest("corunners[%d]: %v", i, err)
		}
		if c.Intensity < 0 || c.Intensity > 4096 {
			return nil, badRequest("corunners[%d].intensity = %d out of range [0, 4096]", i, c.Intensity)
		}
		if c.Accesses < 0 || c.Accesses > 1<<20 {
			return nil, badRequest("corunners[%d].accesses = %d out of range [0, %d]", i, c.Accesses, 1<<20)
		}
		out[i] = ltp.Corunner{
			Scenario:  c.Scenario,
			Knobs:     c.Knobs.knobs(),
			Seed:      c.Seed,
			Intensity: c.Intensity,
			Accesses:  c.Accesses,
		}
	}
	return out, nil
}

// RunRequest is the POST /v1/run body: one simulation. Exactly one of
// workload or scenario must be set.
type RunRequest struct {
	Workload  string         `json:"workload,omitempty"`   // fixed kernel name (see /v1/workloads)
	Scenario  string         `json:"scenario,omitempty"`   // scenario family name
	Knobs     *KnobsRequest  `json:"knobs,omitempty"`      // scenario knob overrides
	Seed      int64          `json:"seed,omitempty"`       // scenario seed (layouts, constants)
	Scale     float64        `json:"scale,omitempty"`      // working-set scale in (0, 1]; 0 = 1.0
	WarmInsts uint64         `json:"warm_insts,omitempty"` // warm-up instructions
	WarmMode  string         `json:"warm_mode,omitempty"`  // "fast" (default) or "detailed"
	MaxInsts  uint64         `json:"max_insts,omitempty"`  // measured instructions; 0 = 1 M
	Config    *ConfigRequest `json:"config,omitempty"`     // core size overrides
	UseLTP    bool           `json:"use_ltp,omitempty"`    // attach the parking unit
	LTP       *LTPRequest    `json:"ltp,omitempty"`        // parking unit overrides
	Backend   string         `json:"backend,omitempty"`    // execution backend: "cycle" (default), "sampled" or "model"
	Intervals int            `json:"intervals,omitempty"`  // sampled backend's interval count K (0 = default)

	// BranchPred selects the branch predictor ("gshare", "tage"; see
	// /v1/workloads for the registry).
	BranchPred string `json:"branch_pred,omitempty"`
	// Prefetcher selects the L2 prefetch engine ("none", "nextline",
	// "stride", "stream").
	Prefetcher string `json:"prefetcher,omitempty"`
	// Corunners attaches co-running workload streams contending for
	// the shared cache levels and DRAM.
	Corunners []CorunnerRequest `json:"corunners,omitempty"`
}

// baseSpec validates the request's fields against the limits and
// converts to an ltp.RunSpec without requiring a µop source or a
// canonical form — the sweep endpoint uses it for base specs whose
// scenario (and canonicalizability) an axis supplies.
func (r *RunRequest) baseSpec(lim Limits) (ltp.RunSpec, error) {
	if r.Workload != "" && r.Scenario != "" {
		return ltp.RunSpec{}, badRequest("request names both a workload and a scenario; pick one")
	}
	// Reject configuration the engine would silently ignore — a request
	// that cannot mean what it says must 400, not burn compute on the
	// wrong configuration.
	if !r.UseLTP && r.LTP != nil {
		return ltp.RunSpec{}, badRequest("ltp overrides given without use_ltp; set use_ltp or drop them")
	}
	if r.Workload != "" && (r.Knobs != nil || r.Seed != 0) {
		return ltp.RunSpec{}, badRequest("knobs/seed apply to scenarios only; fixed kernel %q ignores them", r.Workload)
	}
	if r.Scale < 0 || r.Scale > 1 {
		return ltp.RunSpec{}, badRequest("scale = %g out of range (0, 1]", r.Scale)
	}
	if r.WarmInsts > lim.MaxWarmInsts {
		return ltp.RunSpec{}, badRequest("warm_insts = %d above the service limit %d", r.WarmInsts, lim.MaxWarmInsts)
	}
	if r.MaxInsts > lim.MaxDetailInsts {
		return ltp.RunSpec{}, badRequest("max_insts = %d above the service limit %d", r.MaxInsts, lim.MaxDetailInsts)
	}
	wm, err := ltp.ParseWarmMode(r.WarmMode)
	if err != nil {
		return ltp.RunSpec{}, badRequest("%v", err)
	}
	pcfg, err := r.Config.pipelineConfig()
	if err != nil {
		return ltp.RunSpec{}, err
	}
	lcfg, err := r.LTP.ltpConfig()
	if err != nil {
		return ltp.RunSpec{}, err
	}
	if r.Backend != "" {
		known := false
		for _, b := range ltp.Backends() {
			if b.Name == r.Backend {
				known = true
				break
			}
		}
		if !known {
			return ltp.RunSpec{}, badRequest("backend %q unknown (see /v1/workloads for the registry)", r.Backend)
		}
	}
	if r.Intervals < 0 || r.Intervals > ltp.MaxSampledIntervals {
		return ltp.RunSpec{}, badRequest("intervals = %d out of range [0, %d]", r.Intervals, ltp.MaxSampledIntervals)
	}
	if err := knownName(r.BranchPred, ltp.BranchPredictors(), "branch_pred"); err != nil {
		return ltp.RunSpec{}, err
	}
	if err := knownName(r.Prefetcher, ltp.Prefetchers(), "prefetcher"); err != nil {
		return ltp.RunSpec{}, err
	}
	cors, err := corunnersFromRequest(r.Corunners)
	if err != nil {
		return ltp.RunSpec{}, err
	}
	return ltp.RunSpec{
		Workload:   r.Workload,
		Scenario:   r.Scenario,
		Knobs:      r.Knobs.knobs(),
		Seed:       r.Seed,
		Scale:      r.Scale,
		WarmInsts:  r.WarmInsts,
		WarmMode:   wm,
		MaxInsts:   r.MaxInsts,
		Pipeline:   pcfg,
		UseLTP:     r.UseLTP,
		LTP:        lcfg,
		Backend:    r.Backend,
		Intervals:  r.Intervals,
		BranchPred: r.BranchPred,
		Prefetcher: r.Prefetcher,
		Corunners:  cors,
	}, nil
}

// knownName validates a registry-name field ("" = default, always
// allowed).
func knownName(name string, registry []string, field string) error {
	if name == "" {
		return nil
	}
	for _, n := range registry {
		if n == name {
			return nil
		}
	}
	return badRequest("%s %q unknown (have %v)", field, name, registry)
}

// runSpec validates against the limits and converts to an ltp.RunSpec
// (already canonicalizable: names checked, budgets bounded).
func (r *RunRequest) runSpec(lim Limits) (ltp.RunSpec, error) {
	if r.Workload == "" && r.Scenario == "" {
		return ltp.RunSpec{}, badRequest("request names neither a workload nor a scenario")
	}
	spec, err := r.baseSpec(lim)
	if err != nil {
		return ltp.RunSpec{}, err
	}
	// Canonical re-checks names and resolves knobs; surface its
	// complaints as 400s, not 500s.
	if _, err := spec.Canonical(); err != nil {
		return ltp.RunSpec{}, badRequest("%v", err)
	}
	return spec, nil
}

// Spec validates the request against the limits and converts it to a
// canonicalizable ltp.RunSpec — the exported form of the conversion
// the /v1/run handler performs, reused verbatim by the fabric
// coordinator so a coordinator rejects exactly what a worker would.
func (r *RunRequest) Spec(lim Limits) (ltp.RunSpec, error) { return r.runSpec(lim) }

// MatrixConfigRequest is one configuration column of a matrix request.
type MatrixConfigRequest struct {
	// Name labels the column (required, unique within the request).
	Name   string         `json:"name"`
	Config *ConfigRequest `json:"config,omitempty"`  // core size overrides
	UseLTP bool           `json:"use_ltp,omitempty"` // attach the parking unit
	LTP    *LTPRequest    `json:"ltp,omitempty"`     // parking unit overrides
}

// MatrixRequest is the POST /v1/matrix body: a scenario-matrix
// campaign. Empty scenarios/configs mean every family and the default
// {IQ64, IQ32, IQ32+LTP} comparison.
type MatrixRequest struct {
	Scenarios   []string              `json:"scenarios,omitempty"`    // scenario families (empty = all)
	Knobs       *KnobsRequest         `json:"knobs,omitempty"`        // knob overrides for every cell
	Configs     []MatrixConfigRequest `json:"configs,omitempty"`      // configuration columns (empty = default triple)
	Seeds       int                   `json:"seeds,omitempty"`        // replicates per cell; 0 = 3
	BaseSeed    int64                 `json:"base_seed,omitempty"`    // replicate k runs with seed base+k
	Scale       float64               `json:"scale,omitempty"`        // working-set scale in (0, 1]; 0 = 1.0
	WarmInsts   uint64                `json:"warm_insts,omitempty"`   // warm-up instructions per run
	DetailInsts uint64                `json:"detail_insts,omitempty"` // measured instructions per run; 0 = 1 M
	WarmMode    string                `json:"warm_mode,omitempty"`    // "fast" (default) or "detailed"
}

// matrixSpec validates against the limits and converts to an
// ltp.MatrixSpec.
func (r *MatrixRequest) matrixSpec(lim Limits) (ltp.MatrixSpec, error) {
	if r.Seeds < 0 || r.Seeds > lim.MaxSeeds {
		return ltp.MatrixSpec{}, badRequest("seeds = %d above the service limit %d", r.Seeds, lim.MaxSeeds)
	}
	if r.Scale < 0 || r.Scale > 1 {
		return ltp.MatrixSpec{}, badRequest("scale = %g out of range (0, 1]", r.Scale)
	}
	if r.WarmInsts > lim.MaxWarmInsts {
		return ltp.MatrixSpec{}, badRequest("warm_insts = %d above the service limit %d", r.WarmInsts, lim.MaxWarmInsts)
	}
	if r.DetailInsts > lim.MaxDetailInsts {
		return ltp.MatrixSpec{}, badRequest("detail_insts = %d above the service limit %d", r.DetailInsts, lim.MaxDetailInsts)
	}
	wm, err := ltp.ParseWarmMode(r.WarmMode)
	if err != nil {
		return ltp.MatrixSpec{}, badRequest("%v", err)
	}
	var configs []ltp.MatrixConfig
	seen := map[string]bool{}
	for i, c := range r.Configs {
		if c.Name == "" {
			return ltp.MatrixSpec{}, badRequest("configs[%d] has no name", i)
		}
		if seen[c.Name] {
			return ltp.MatrixSpec{}, badRequest("duplicate config name %q", c.Name)
		}
		seen[c.Name] = true
		if !c.UseLTP && c.LTP != nil {
			return ltp.MatrixSpec{}, badRequest("configs[%d] %q: ltp overrides given without use_ltp", i, c.Name)
		}
		pcfg, err := c.Config.pipelineConfig()
		if err != nil {
			return ltp.MatrixSpec{}, err
		}
		lcfg, err := c.LTP.ltpConfig()
		if err != nil {
			return ltp.MatrixSpec{}, err
		}
		configs = append(configs, ltp.MatrixConfig{
			Name: c.Name, Pipeline: pcfg, UseLTP: c.UseLTP, LTP: lcfg,
		})
	}
	spec := ltp.MatrixSpec{
		Scenarios:   r.Scenarios,
		Knobs:       r.Knobs.knobs(),
		Configs:     configs,
		Seeds:       r.Seeds,
		BaseSeed:    r.BaseSeed,
		Scale:       r.Scale,
		WarmInsts:   r.WarmInsts,
		DetailInsts: r.DetailInsts,
		WarmMode:    wm,
	}
	canon, err := spec.Canonical()
	if err != nil {
		return ltp.MatrixSpec{}, badRequest("%v", err)
	}
	if cells := len(canon.Scenarios) * len(canon.Configs); cells > lim.MaxCells {
		return ltp.MatrixSpec{}, badRequest("campaign has %d cells, above the service limit %d", cells, lim.MaxCells)
	}
	return spec, nil
}

// PatchRequest is the JSON form of ltp.RunPatch: one axis point's
// declarative overrides. Absent fields leave the base (or earlier
// axes' values) untouched.
type PatchRequest struct {
	Workload  *string       `json:"workload,omitempty"`   // fixed kernel name
	Scenario  *string       `json:"scenario,omitempty"`   // scenario family name
	Knobs     *KnobsRequest `json:"knobs,omitempty"`      // scenario knob overrides (replaces)
	Seed      *int64        `json:"seed,omitempty"`       // scenario seed
	Scale     *float64      `json:"scale,omitempty"`      // working-set scale in (0, 1]
	WarmInsts *uint64       `json:"warm_insts,omitempty"` // warm-up instructions
	WarmMode  *string       `json:"warm_mode,omitempty"`  // "fast" or "detailed"
	MaxInsts  *uint64       `json:"max_insts,omitempty"`  // measured instructions
	IQSize    *int          `json:"iq_size,omitempty"`    // instruction queue entries
	ROBSize   *int          `json:"rob_size,omitempty"`   // reorder buffer entries
	LQSize    *int          `json:"lq_size,omitempty"`    // load queue entries
	SQSize    *int          `json:"sq_size,omitempty"`    // store queue entries
	IntRegs   *int          `json:"int_regs,omitempty"`   // integer rename registers
	FPRegs    *int          `json:"fp_regs,omitempty"`    // FP rename registers
	UseLTP    *bool         `json:"use_ltp,omitempty"`    // attach/detach the parking unit
	LTP       *LTPRequest   `json:"ltp,omitempty"`        // parking unit configuration (replaces)
	Backend   *string       `json:"backend,omitempty"`    // execution backend ("cycle", "sampled", "model") — the fidelity axis
	Intervals *int          `json:"intervals,omitempty"`  // sampled backend's interval count K

	// BranchPred selects the branch predictor ("gshare", "tage").
	BranchPred *string `json:"branch_pred,omitempty"`
	// Prefetcher selects the L2 prefetch engine ("none", "nextline",
	// "stride", "stream").
	Prefetcher *string `json:"prefetcher,omitempty"`
	// Ident selects the LTP identification policy ("paper", "crit")
	// on top of whatever LTP configuration the cell has.
	Ident *string `json:"ident,omitempty"`
	// Corunners replaces the co-runner list (empty = detach all).
	Corunners *[]CorunnerRequest `json:"corunners,omitempty"`
}

// patch validates the overrides against the limits and converts to an
// ltp.RunPatch.
func (p *PatchRequest) patch(lim Limits, where string) (ltp.RunPatch, error) {
	out := ltp.RunPatch{
		Workload:  p.Workload,
		Scenario:  p.Scenario,
		Seed:      p.Seed,
		Scale:     p.Scale,
		WarmInsts: p.WarmInsts,
		MaxInsts:  p.MaxInsts,
	}
	if p.Knobs != nil {
		out.Knobs = p.Knobs.knobs()
	}
	if p.Scale != nil && (*p.Scale <= 0 || *p.Scale > 1) {
		return ltp.RunPatch{}, badRequest("%s: scale = %g out of range (0, 1]", where, *p.Scale)
	}
	if p.WarmInsts != nil && *p.WarmInsts > lim.MaxWarmInsts {
		return ltp.RunPatch{}, badRequest("%s: warm_insts = %d above the service limit %d", where, *p.WarmInsts, lim.MaxWarmInsts)
	}
	if p.MaxInsts != nil && *p.MaxInsts > lim.MaxDetailInsts {
		return ltp.RunPatch{}, badRequest("%s: max_insts = %d above the service limit %d", where, *p.MaxInsts, lim.MaxDetailInsts)
	}
	if p.WarmMode != nil {
		wm, err := ltp.ParseWarmMode(*p.WarmMode)
		if err != nil {
			return ltp.RunPatch{}, badRequest("%s: %v", where, err)
		}
		out.WarmMode = &wm
	}
	for _, f := range []struct {
		dst  **int
		v    *int
		name string
		min  int
	}{
		{&out.IQSize, p.IQSize, "iq_size", 4},
		{&out.ROBSize, p.ROBSize, "rob_size", 16},
		{&out.LQSize, p.LQSize, "lq_size", 4},
		{&out.SQSize, p.SQSize, "sq_size", 4},
		{&out.IntRegs, p.IntRegs, "int_regs", 8},
		{&out.FPRegs, p.FPRegs, "fp_regs", 8},
	} {
		if f.v == nil {
			continue
		}
		if *f.v < f.min || *f.v > pipeline.Inf {
			return ltp.RunPatch{}, badRequest("%s: %s = %d out of range [%d, %d]", where, f.name, *f.v, f.min, pipeline.Inf)
		}
		*f.dst = f.v
	}
	out.UseLTP = p.UseLTP
	if p.LTP != nil {
		lcfg, err := p.LTP.ltpConfig()
		if err != nil {
			return ltp.RunPatch{}, err
		}
		out.LTP = lcfg
	}
	out.Backend = p.Backend
	if p.Intervals != nil {
		if *p.Intervals < 0 || *p.Intervals > ltp.MaxSampledIntervals {
			return ltp.RunPatch{}, badRequest("%s: intervals = %d out of range [0, %d]", where, *p.Intervals, ltp.MaxSampledIntervals)
		}
		out.Intervals = p.Intervals
	}
	if p.BranchPred != nil {
		if err := knownName(*p.BranchPred, ltp.BranchPredictors(), where+": branch_pred"); err != nil {
			return ltp.RunPatch{}, err
		}
		out.BranchPred = p.BranchPred
	}
	if p.Prefetcher != nil {
		if err := knownName(*p.Prefetcher, ltp.Prefetchers(), where+": prefetcher"); err != nil {
			return ltp.RunPatch{}, err
		}
		out.Prefetcher = p.Prefetcher
	}
	if p.Ident != nil {
		if _, ok := core.ParseIdent(*p.Ident); !ok {
			return ltp.RunPatch{}, badRequest("%s: ident %q unknown (want paper or crit)", where, *p.Ident)
		}
		out.Ident = p.Ident
	}
	if p.Corunners != nil {
		cors, err := corunnersFromRequest(*p.Corunners)
		if err != nil {
			return ltp.RunPatch{}, err
		}
		if cors == nil {
			cors = []ltp.Corunner{}
		}
		out.Corunners = &cors
	}
	return out, nil
}

// SweepPointRequest is one value along a sweep axis.
type SweepPointRequest struct {
	// Name labels the point in cell coordinates (required, unique
	// within the axis).
	Name string `json:"name"`
	// Patch is the override set the point applies.
	Patch PatchRequest `json:"patch"`
}

// SweepAxisRequest is one dimension of a sweep request.
type SweepAxisRequest struct {
	// Name labels the axis (required, unique within the sweep).
	Name string `json:"name"`
	// Replicate marks a statistical axis whose points aggregate into
	// each cell's mean ± CI instead of forming cells.
	Replicate bool `json:"replicate,omitempty"`
	// Points are the axis values (at least one).
	Points []SweepPointRequest `json:"points"`
}

// TriageRequest turns a sweep into a two-phase fidelity triage: a
// model-backend pre-pass over every cell, then a cycle-accurate re-run
// of the top_k best (lowest model mean CPI) cells.
type TriageRequest struct {
	// TopK is how many cells the detailed phase re-runs (1 ≤ top_k ≤
	// cell count).
	TopK int `json:"top_k"`
}

// SweepRequest is the POST /v1/sweep body: a base run request plus the
// axes whose cross-product forms the campaign.
type SweepRequest struct {
	// Base is the template every cell starts from; it may omit the
	// workload/scenario when an axis supplies it.
	Base RunRequest `json:"base"`
	// Axes are the sweep dimensions, applied in order.
	Axes []SweepAxisRequest `json:"axes"`
	// Triage, when present, runs the sweep as a fidelity triage.
	Triage *TriageRequest `json:"triage,omitempty"`
	// SinceSnapshot makes the campaign incremental: runs whose content
	// address appears in the list (a store snapshot manifest's keys)
	// are not executed — they stream as outcome "cached" cells — so
	// only the work new since the snapshot simulates. Hashes the sweep
	// does not enumerate are ignored. Incompatible with triage.
	SinceSnapshot []string `json:"since_snapshot,omitempty"`
}

// sweepSpec validates against the limits and converts to an
// ltp.SweepSpec.
func (r *SweepRequest) sweepSpec(lim Limits) (ltp.SweepSpec, error) {
	base, err := r.Base.baseSpec(lim)
	if err != nil {
		return ltp.SweepSpec{}, err
	}
	if len(r.Axes) == 0 {
		return ltp.SweepSpec{}, badRequest("sweep has no axes (use /v1/run for a single simulation)")
	}
	// Bound the cross-product from the request's own point counts
	// BEFORE anything canonicalizes or enumerates it: a handful of
	// wide axes multiply into astronomically many runs, and the limit
	// check must come before the allocation it is there to prevent.
	cells, reps := 1, 1
	for _, ax := range r.Axes {
		n := len(ax.Points)
		if n == 0 {
			continue // Canonical reports the empty axis precisely
		}
		if ax.Replicate {
			reps = boundedMul(reps, n)
		} else {
			cells = boundedMul(cells, n)
		}
	}
	if cells > lim.MaxCells {
		return ltp.SweepSpec{}, badRequest("sweep has %d cells, above the service limit %d", cells, lim.MaxCells)
	}
	if reps > lim.MaxSeeds {
		return ltp.SweepSpec{}, badRequest("sweep has %d replicates per cell, above the service limit %d", reps, lim.MaxSeeds)
	}
	spec := ltp.SweepSpec{Base: base, SinceSnapshot: r.SinceSnapshot}
	if r.Triage != nil {
		if len(r.SinceSnapshot) > 0 {
			return ltp.SweepSpec{}, badRequest("triage sweeps cannot use since_snapshot (the pre-pass must estimate every cell)")
		}
		if r.Triage.TopK < 1 || r.Triage.TopK > cells {
			return ltp.SweepSpec{}, badRequest("triage top_k = %d out of range [1, %d] (the sweep's cell count)", r.Triage.TopK, cells)
		}
		spec.Triage = &ltp.TriageSpec{TopK: r.Triage.TopK}
	}
	for ai, ax := range r.Axes {
		axis := ltp.SweepAxis{Name: ax.Name, Replicate: ax.Replicate}
		for pi, pt := range ax.Points {
			where := fmt.Sprintf("axes[%d] %q point[%d] %q", ai, ax.Name, pi, pt.Name)
			patch, err := pt.Patch.patch(lim, where)
			if err != nil {
				return ltp.SweepSpec{}, err
			}
			axis.Points = append(axis.Points, ltp.SweepPoint{Name: pt.Name, Patch: patch})
		}
		spec.Axes = append(spec.Axes, axis)
	}
	// Canonical validates axis/point naming and that every enumerated
	// cell is canonicalizable; surface its complaints as 400s.
	canon, err := spec.Canonical()
	if err != nil {
		return ltp.SweepSpec{}, badRequest("%v", err)
	}
	return canon, nil
}

// Spec validates the request against the limits and converts it to a
// canonical ltp.SweepSpec — the exported form of the conversion the
// /v1/sweep handler performs, reused verbatim by the fabric
// coordinator so both tiers enforce one admission policy.
func (r *SweepRequest) Spec(lim Limits) (ltp.SweepSpec, error) { return r.sweepSpec(lim) }

// DecodeJSON strictly decodes one JSON object from the request body
// (unknown fields and trailing garbage are errors carrying a 400
// status) — exported for the fabric coordinator's request parsing.
func DecodeJSON(r *http.Request, dst any) error { return decodeJSON(r, dst) }

// ErrorStatus maps an error to its HTTP status: validation and policy
// failures carry their own (400, 404, 429, ...); anything else is a
// 500. Exported so the fabric coordinator renders errors exactly like
// a worker.
func ErrorStatus(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status
	}
	return http.StatusInternalServerError
}

// BadRequestf builds a 400-status error in the service's error shape
// (exported for the fabric coordinator's own validation failures).
func BadRequestf(format string, args ...any) error { return badRequest(format, args...) }

// boundedMul multiplies point counts without overflowing (the precise
// value above any service limit does not matter).
func boundedMul(a, b int) int {
	const cap = 1 << 30
	if a > cap/b {
		return cap
	}
	return a * b
}

// decodeJSON strictly decodes one JSON object from the body: unknown
// fields and trailing garbage are 400s.
func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	if dec.More() {
		return badRequest("invalid request body: trailing data after the JSON object")
	}
	_, _ = io.Copy(io.Discard, r.Body)
	return nil
}
