package server

import (
	"fmt"
	"sync"
	"time"

	"ltp"
)

// JobStatus is a campaign job's lifecycle state.
type JobStatus string

// Job lifecycle: running until the engine resolves every cell, then
// done (result available), failed (error available) or canceled
// (DELETE /v1/jobs/{id}, or server drain).
const (
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

// JobKind tells the two campaign shapes apart in listings and
// responses.
type JobKind string

// Campaign shapes: the scenario×config×seed matrix and the
// generalized sweep.
const (
	KindMatrix JobKind = "matrix"
	KindSweep  JobKind = "sweep"
)

// JobView is the JSON shape of one campaign job (GET /v1/jobs).
type JobView struct {
	// ID addresses the job (GET/DELETE /v1/jobs/{id}).
	ID string `json:"id"`
	// Kind is "matrix" or "sweep".
	Kind JobKind `json:"kind"`
	// Hash is the campaign's content address — identical campaigns
	// share it even across jobs.
	Hash string `json:"hash"`
	// Status is running, done, failed or canceled.
	Status JobStatus `json:"status"`
	// Error holds the failure or cancellation cause when Status is
	// failed or canceled.
	Error string `json:"error,omitempty"`
	// Progress snapshots the cell counters at view time.
	Progress ltp.Progress `json:"progress"`
	// SubmittedAt is the server-local submission time (RFC 3339).
	SubmittedAt string `json:"submitted_at"`
}

// trackedJob pairs a sweep job with its registry identity and an
// append-only log of its streamed cell results — the NDJSON stream's
// source. Exactly one stream can exist per job (the submitting
// request's, reserved at registration; there is no reconnect
// endpoint), and the log is dropped once the job finishes and that
// stream — if any — has ended.
type trackedJob struct {
	id        string
	kind      JobKind
	hash      string
	job       *ltp.Job
	mjob      *ltp.MatrixJob // non-nil for matrix-shaped jobs (result conversion)
	submitted time.Time

	mu      sync.Mutex
	cells   []ltp.CellResult
	notify  chan struct{} // closed and replaced on every append
	logDone chan struct{} // closed when the cell stream has fully drained
	streams int           // NDJSON streams reading the log (reserved at submit)
}

// newTrackedJob wraps a submitted job and starts draining its cell
// stream into the log. reserveStream pre-counts the submitting
// request's own NDJSON stream so the log cannot be released between
// registration and that stream's first read; streams are only ever
// created by the submitting request, so once the job finishes and the
// count drops to zero the log — potentially thousands of full
// RunResults — is dropped rather than retained for the registry's
// whole 128-job history.
func newTrackedJob(id string, kind JobKind, hash string, job *ltp.Job, mjob *ltp.MatrixJob, reserveStream bool) *trackedJob {
	t := &trackedJob{
		id: id, kind: kind, hash: hash, job: job, mjob: mjob,
		submitted: time.Now(),
		notify:    make(chan struct{}),
		logDone:   make(chan struct{}),
	}
	if reserveStream {
		t.streams = 1
	}
	go func() {
		for c := range job.Cells() {
			t.mu.Lock()
			t.cells = append(t.cells, c)
			close(t.notify)
			t.notify = make(chan struct{})
			t.mu.Unlock()
		}
		// Mark completion and wake any stream blocked on the current
		// notify channel — without this final wakeup a stream that read
		// the last cell before logDone closed would wait forever.
		t.mu.Lock()
		close(t.logDone)
		close(t.notify)
		t.notify = make(chan struct{})
		t.mu.Unlock()
	}()
	return t
}

// cellsFrom returns the logged cells from index from on, plus a
// channel that signals further appends and whether the log is
// complete.
func (t *trackedJob) cellsFrom(from int) (cells []ltp.CellResult, more <-chan struct{}, done bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if from < len(t.cells) {
		cells = t.cells[from:]
	}
	select {
	case <-t.logDone:
		done = true
	default:
	}
	return cells, t.notify, done
}

// streamFinished releases one reserved/active stream slot and drops
// the log if it was the last and the job is over.
func (t *trackedJob) streamFinished() {
	t.mu.Lock()
	t.streams--
	t.mu.Unlock()
	t.maybeReleaseLog()
}

// maybeReleaseLog drops the cell log once the job has finished, the
// drain goroutine has completed, and no stream is (or can ever be)
// reading it.
func (t *trackedJob) maybeReleaseLog() {
	select {
	case <-t.job.Done():
	default:
		return
	}
	select {
	case <-t.logDone:
	default:
		return
	}
	t.mu.Lock()
	if t.streams == 0 {
		t.cells = nil
	}
	t.mu.Unlock()
}

// view snapshots the job for JSON rendering.
func (t *trackedJob) view() JobView {
	v := JobView{
		ID:          t.id,
		Kind:        t.kind,
		Hash:        t.hash,
		Status:      JobRunning,
		Progress:    t.job.Progress(),
		SubmittedAt: t.submitted.UTC().Format(time.RFC3339),
	}
	select {
	case <-t.job.Done():
		_, err := t.job.Wait()
		switch {
		case err == nil:
			v.Status = JobDone
		case t.job.Canceled():
			v.Status, v.Error = JobCanceled, err.Error()
		default:
			v.Status, v.Error = JobFailed, err.Error()
		}
	default:
	}
	return v
}

// maxRetainedJobs bounds how many finished campaigns the registry
// keeps addressable (oldest finished jobs are evicted first; active
// campaigns are never evicted). The result cache outlives a job's
// registry entry, so re-submitting an evicted campaign is still all
// cache hits.
const maxRetainedJobs = 128

// registry tracks submitted campaigns, enforces the active-job
// backpressure bound, and retains at most maxRetainedJobs finished
// campaigns so a long-running service cannot grow without limit.
type registry struct {
	mu       sync.Mutex
	idle     *sync.Cond // broadcast whenever active drops
	seq      int
	total    int
	jobs     map[string]*trackedJob
	order    []string // submission order, for listing and eviction
	active   int
	max      int
	finished map[string]bool
}

func newRegistry(maxActive int) *registry {
	r := &registry{
		jobs:     make(map[string]*trackedJob),
		finished: make(map[string]bool),
		max:      maxActive,
	}
	r.idle = sync.NewCond(&r.mu)
	return r
}

// errBusy is the 429 the registry returns at the active-job bound (the
// handler decorates it with Retry-After and duplicate-job hints).
var errBusy = &apiError{status: 429, msg: "too many active campaigns; retry after one finishes"}

// admit reserves an active-job slot and returns the new job's id, or
// errBusy at the bound. The caller must call either register (on
// successful submission) or release (on failure).
func (r *registry) admit(hash string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.active >= r.max {
		return "", errBusy
	}
	r.active++
	r.seq++
	short := hash
	if i := len("mx1:"); len(short) > i+8 {
		short = short[i : i+8]
	}
	return fmt.Sprintf("j%04d-%s", r.seq, short), nil
}

// release returns an admitted slot without registering (submission
// failed validation downstream).
func (r *registry) release() {
	r.mu.Lock()
	r.active--
	r.idle.Broadcast()
	r.mu.Unlock()
}

// register records the job and arranges the slot's release (and
// retention pruning) when the campaign finishes.
func (r *registry) register(t *trackedJob) *trackedJob {
	r.mu.Lock()
	r.jobs[t.id] = t
	r.order = append(r.order, t.id)
	r.total++
	r.mu.Unlock()
	go func() {
		<-t.job.Done()
		r.mu.Lock()
		r.active--
		r.finished[t.id] = true
		r.prune()
		r.idle.Broadcast()
		r.mu.Unlock()
		<-t.logDone
		t.maybeReleaseLog()
	}()
	return t
}

// prune evicts the oldest finished jobs beyond maxRetainedJobs
// (caller holds mu). Active campaigns are never evicted and do not
// count against the retention bound.
func (r *registry) prune() {
	for len(r.finished) > maxRetainedJobs {
		evicted := false
		for i, id := range r.order {
			if r.finished[id] {
				delete(r.jobs, id)
				delete(r.finished, id)
				r.order = append(r.order[:i], r.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything retained is still active
		}
	}
}

// get returns the job by id.
func (r *registry) get(id string) (*trackedJob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.jobs[id]
	return t, ok
}

// findActiveByHash returns a still-running job with the given campaign
// hash, if any — the duplicate a 429'd client can poll instead of
// resubmitting.
func (r *registry) findActiveByHash(hash string) (*trackedJob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range r.order {
		if t := r.jobs[id]; t != nil && t.hash == hash && !r.finished[id] {
			return t, true
		}
	}
	return nil, false
}

// list returns every job, newest first.
func (r *registry) list() []*trackedJob {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*trackedJob, 0, len(r.order))
	for i := len(r.order) - 1; i >= 0; i-- {
		out = append(out, r.jobs[r.order[i]])
	}
	return out
}

// counts returns (total ever served, active).
func (r *registry) counts() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total, r.active
}

// live snapshots the still-running campaigns.
func (r *registry) live() []*trackedJob {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*trackedJob
	for _, id := range r.order {
		if !r.finished[id] {
			out = append(out, r.jobs[id])
		}
	}
	return out
}

// remainingRuns sums the not-yet-resolved runs of every active
// campaign — the true backlog behind a 429, which the pool's queue
// depth understates because each job coordinator exposes only a
// bounded window of cells to the pool at a time. A triage job's
// remaining work is capped at its detailed-phase size: the model
// pre-pass runs cost milliseconds, and pricing them at the
// cycle-cell EWMA mean would inflate Retry-After by orders of
// magnitude.
func (r *registry) remainingRuns() int {
	total := 0
	for _, t := range r.live() {
		p := t.job.Progress()
		left := p.TotalRuns - p.DoneRuns - p.CanceledRuns
		if spec := t.job.Spec(); spec.Triage != nil {
			if detail := spec.Triage.TopK * spec.Replicates(); left > detail {
				left = detail
			}
		}
		if left > 0 {
			total += left
		}
	}
	return total
}

// cancelActive cancels every still-running campaign (server drain).
func (r *registry) cancelActive() {
	for _, t := range r.live() {
		t.job.Cancel()
	}
}

// awaitIdle blocks until no campaign is active or stop closes; it
// reports whether the registry went idle.
func (r *registry) awaitIdle(stop <-chan struct{}) bool {
	stopped := make(chan struct{})
	var once sync.Once
	if stop != nil {
		go func() {
			select {
			case <-stop:
				r.mu.Lock()
				r.idle.Broadcast()
				r.mu.Unlock()
			case <-stopped:
			}
		}()
	}
	defer once.Do(func() { close(stopped) })
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.active > 0 {
		select {
		case <-stop:
			return false
		default:
		}
		r.idle.Wait()
	}
	return true
}
