package server

import (
	"fmt"
	"sync"
	"time"

	"ltp"
)

// JobStatus is a campaign job's lifecycle state.
type JobStatus string

// Job lifecycle: running until the engine resolves every cell, then
// done (result available) or failed (error available).
const (
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// JobView is the JSON shape of one campaign job (GET /v1/jobs).
type JobView struct {
	// ID addresses the job (GET /v1/jobs/{id}).
	ID string `json:"id"`
	// Hash is the campaign's content address — identical campaigns
	// share it even across jobs.
	Hash string `json:"hash"`
	// Status is running, done or failed.
	Status JobStatus `json:"status"`
	// Error holds the failure when Status is failed.
	Error string `json:"error,omitempty"`
	// Progress snapshots the cell counters at view time.
	Progress ltp.MatrixProgress `json:"progress"`
	// SubmittedAt is the server-local submission time (RFC 3339).
	SubmittedAt string `json:"submitted_at"`
}

// trackedJob pairs a MatrixJob with its registry identity.
type trackedJob struct {
	id        string
	job       *ltp.MatrixJob
	submitted time.Time
}

// view snapshots the job for JSON rendering.
func (t *trackedJob) view() JobView {
	v := JobView{
		ID:          t.id,
		Hash:        t.job.Hash(),
		Status:      JobRunning,
		Progress:    t.job.Progress(),
		SubmittedAt: t.submitted.UTC().Format(time.RFC3339),
	}
	select {
	case <-t.job.Done():
		if _, err := t.job.Wait(); err != nil {
			v.Status, v.Error = JobFailed, err.Error()
		} else {
			v.Status = JobDone
		}
	default:
	}
	return v
}

// maxRetainedJobs bounds how many finished campaigns the registry
// keeps addressable (oldest finished jobs are evicted first; active
// campaigns are never evicted). The result cache outlives a job's
// registry entry, so re-submitting an evicted campaign is still all
// cache hits.
const maxRetainedJobs = 128

// registry tracks submitted campaigns, enforces the active-job
// backpressure bound, and retains at most maxRetainedJobs finished
// campaigns so a long-running service cannot grow without limit.
type registry struct {
	mu       sync.Mutex
	seq      int
	total    int
	jobs     map[string]*trackedJob
	order    []string // submission order, for listing and eviction
	active   int
	max      int
	finished map[string]bool
}

func newRegistry(maxActive int) *registry {
	return &registry{
		jobs:     make(map[string]*trackedJob),
		finished: make(map[string]bool),
		max:      maxActive,
	}
}

// errBusy is the 429 the registry returns at the active-job bound.
var errBusy = &apiError{status: 429, msg: "too many active campaigns; retry after one finishes"}

// admit reserves an active-job slot and returns the new job's id, or
// errBusy at the bound. The caller must call either register (on
// successful submission) or release (on failure).
func (r *registry) admit(hash string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.active >= r.max {
		return "", errBusy
	}
	r.active++
	r.seq++
	short := hash
	if i := len("mx1:"); len(short) > i+8 {
		short = short[i : i+8]
	}
	return fmt.Sprintf("m%04d-%s", r.seq, short), nil
}

// release returns an admitted slot without registering (submission
// failed validation downstream).
func (r *registry) release() {
	r.mu.Lock()
	r.active--
	r.mu.Unlock()
}

// register records the job and arranges the slot's release (and
// retention pruning) when the campaign finishes.
func (r *registry) register(id string, job *ltp.MatrixJob) *trackedJob {
	t := &trackedJob{id: id, job: job, submitted: time.Now()}
	r.mu.Lock()
	r.jobs[id] = t
	r.order = append(r.order, id)
	r.total++
	r.mu.Unlock()
	go func() {
		<-job.Done()
		r.mu.Lock()
		r.active--
		r.finished[id] = true
		r.prune()
		r.mu.Unlock()
	}()
	return t
}

// prune evicts the oldest finished jobs beyond maxRetainedJobs
// (caller holds mu). Active campaigns are never evicted and do not
// count against the retention bound.
func (r *registry) prune() {
	for len(r.finished) > maxRetainedJobs {
		evicted := false
		for i, id := range r.order {
			if r.finished[id] {
				delete(r.jobs, id)
				delete(r.finished, id)
				r.order = append(r.order[:i], r.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything retained is still active
		}
	}
}

// get returns the job by id.
func (r *registry) get(id string) (*trackedJob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.jobs[id]
	return t, ok
}

// list returns every job, newest first.
func (r *registry) list() []*trackedJob {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*trackedJob, 0, len(r.order))
	for i := len(r.order) - 1; i >= 0; i-- {
		out = append(out, r.jobs[r.order[i]])
	}
	return out
}

// counts returns (total ever served, active).
func (r *registry) counts() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total, r.active
}
