// Package ltp is the public API of the Long Term Parking reproduction: a
// cycle-level out-of-order processor simulator (internal/pipeline +
// internal/mem) with the paper's criticality-aware resource allocation
// mechanism (internal/core) attached, a workload suite standing in for
// SPEC CPU2006 (internal/workload), and an energy model (internal/energy).
//
// Quick start:
//
//	res, err := ltp.Run(ltp.RunSpec{
//		Workload: "indirect",
//		MaxInsts: 200_000,
//		UseLTP:   true,
//	})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every figure and table.
package ltp

import (
	"fmt"

	"ltp/internal/core"
	"ltp/internal/energy"
	"ltp/internal/isa"
	"ltp/internal/pipeline"
	"ltp/internal/prog"
	"ltp/internal/workload"
)

// Inf marks an effectively unlimited structure size in sweeps.
const Inf = pipeline.Inf

// Mode re-exports the LTP parking-class selection.
type Mode = core.Mode

// Parking modes.
const (
	ModeOff  = core.ModeOff
	ModeNU   = core.ModeNU
	ModeNR   = core.ModeNR
	ModeNRNU = core.ModeNRNU
)

// RunSpec describes one simulation.
type RunSpec struct {
	// Workload names a kernel from the registry (Workloads lists them),
	// or use Program to supply one directly.
	Workload string
	// Program, when non-nil, overrides Workload.
	Program *prog.Program
	// Scale shrinks workload working sets for quick runs (default 1.0).
	Scale float64

	// WarmInsts executes this many instructions through a timing-free
	// cache (and branch predictor) warm-up before detailed simulation
	// (the paper warms for 250 M; scale to your budget).
	WarmInsts uint64
	// MaxInsts bounds detailed simulation (committed instructions).
	MaxInsts uint64
	// MaxCycles is a safety cap (0 = none).
	MaxCycles uint64

	// Pipeline configures the core; zero value = Table 1 baseline.
	Pipeline *pipeline.Config

	// UseLTP attaches the parking unit.
	UseLTP bool
	// LTP configures it; zero value = the paper's realistic design
	// (NU-only, 128 entries, 4 ports, 256-entry UIT).
	LTP *core.Config
	// Oracle enables the limit study's perfect classification (builds a
	// trace pre-pass covering warm-up + detailed budget).
	Oracle bool
}

// LTPStats summarizes the parking unit's behaviour for one run (Fig. 7).
type LTPStats struct {
	AvgInsts  float64 // instructions parked, time average
	AvgRegs   float64 // register allocations deferred, time average
	AvgLoads  float64
	AvgStores float64

	EnabledFrac float64 // DRAM-timer monitor duty cycle

	ParkedTotal   uint64
	WokenTotal    uint64
	ForcedParks   uint64
	PressureWakes uint64
	Enqueues      uint64
	Dequeues      uint64

	ClassUrgent   uint64
	ClassNonReady uint64

	UITLen      int
	LLPredAcc   float64
	TicketsFull uint64
}

// RunResult bundles the pipeline metrics, LTP statistics and modelled
// energy for one run.
type RunResult struct {
	pipeline.Result
	LTP    *LTPStats
	Energy energy.Breakdown

	// Design echoes the sized structures for relative-energy math.
	Design energy.Design
}

// Workloads returns the kernel registry.
func Workloads() []workload.Spec { return workload.All() }

// WorkloadByName fetches one kernel spec.
func WorkloadByName(name string) (workload.Spec, error) { return workload.ByName(name) }

// Run executes one simulation.
func Run(spec RunSpec) (RunResult, error) {
	if spec.Scale == 0 {
		spec.Scale = 1.0
	}
	if spec.MaxInsts == 0 {
		spec.MaxInsts = 1_000_000
	}

	program := spec.Program
	if program == nil {
		wl, err := workload.ByName(spec.Workload)
		if err != nil {
			return RunResult{}, err
		}
		program = wl.Build(spec.Scale)
	}

	pcfg := pipeline.DefaultConfig()
	if spec.Pipeline != nil {
		pcfg = *spec.Pipeline
	}

	var parker pipeline.Parker = pipeline.NullParker{}
	var unit *core.LTP
	if spec.UseLTP {
		lcfg := core.DefaultConfig()
		if spec.LTP != nil {
			lcfg = *spec.LTP
		}
		if spec.Oracle && lcfg.Oracle == nil {
			budget := int(spec.WarmInsts + spec.MaxInsts + 65_536)
			lcfg.Oracle = core.BuildOracle(program, budget, pcfg.Hier, pcfg.ROBSize)
		}
		unit = core.New(lcfg, pcfg.Hier.DRAMLatency, pcfg.Hier.TagEarlyLead)
		parker = unit
	}

	em := prog.NewEmulator(program)
	p := pipeline.New(pcfg, em, parker)

	// Timing-free warm-up of caches and the branch predictor.
	var u isa.Uop
	for n := uint64(0); n < spec.WarmInsts; n++ {
		if !em.Next(&u) {
			break
		}
		switch {
		case u.IsMem():
			p.Hier.Warm(u.PC, u.Addr, u.Op == isa.Store)
		case u.IsBranch():
			p.BP.Lookup(u.PC, u.Taken, u.Target)
		}
	}

	p.Run(spec.MaxInsts, spec.MaxCycles)

	res := RunResult{Result: p.Snapshot()}
	res.Design = energy.Design{
		IQEntries:  pcfg.IQSize,
		IssueWidth: pcfg.IssueWidth,
		IntRegs:    pcfg.IntRegs,
		FPRegs:     pcfg.FPRegs,
	}

	act := energy.Activity{
		Cycles:   res.Cycles,
		Issues:   res.Issues,
		RFReads:  res.RFReads,
		RFWrites: res.RFWrites,
	}
	if unit != nil {
		st := snapshotLTP(unit)
		res.LTP = &st
		res.Design.LTPEntries = unit.Cfg().Entries
		res.Design.LTPPorts = unit.Cfg().Ports
		if res.Design.LTPEntries <= 0 {
			res.Design.LTPEntries = pcfg.ROBSize // "unlimited" is ROB-bounded
		}
		act.LTPEnqueues = st.Enqueues
		act.LTPDequeues = st.Dequeues
		act.LTPEnabledCyc = uint64(st.EnabledFrac * float64(res.Cycles))
	}
	res.Energy = energy.Compute(energy.DefaultParams(), res.Design, act)
	return res, nil
}

// MustRun is Run that panics on error (experiment harness convenience).
func MustRun(spec RunSpec) RunResult {
	r, err := Run(spec)
	if err != nil {
		panic(fmt.Sprintf("ltp: %v", err))
	}
	return r
}

func snapshotLTP(u *core.LTP) LTPStats {
	return LTPStats{
		AvgInsts:      u.OccInsts.Mean(),
		AvgRegs:       u.OccRegs.Mean(),
		AvgLoads:      u.OccLoads.Mean(),
		AvgStores:     u.OccStores.Mean(),
		EnabledFrac:   u.Monitor().EnabledFraction(),
		ParkedTotal:   u.ParkedTotal,
		WokenTotal:    u.WokenTotal,
		ForcedParks:   u.ForcedParks,
		PressureWakes: u.PressureWakes,
		Enqueues:      u.Enqueues,
		Dequeues:      u.Dequeues,
		ClassUrgent:   u.ClassUrgent,
		ClassNonReady: u.ClassNonReady,
		UITLen:        u.UITTable().Len(),
		LLPredAcc:     u.Predictor().Accuracy(),
		TicketsFull:   u.TicketsExhausted,
	}
}
