// Package ltp is the public API of the Long Term Parking reproduction: a
// cycle-level out-of-order processor simulator (internal/pipeline +
// internal/mem) with the paper's criticality-aware resource allocation
// mechanism (internal/core) attached, a workload suite standing in for
// SPEC CPU2006 (internal/workload), and an energy model (internal/energy).
//
// Quick start (the v2 API is context-first; a cancelled context aborts
// the simulation mid-pipeline within about a millisecond):
//
//	res, err := ltp.RunContext(ctx, ltp.RunSpec{
//		Workload: "indirect",
//		MaxInsts: 200_000,
//		UseLTP:   true,
//	})
//
// Campaigns are sweeps — a base spec crossed with declarative axes —
// submitted asynchronously with streaming per-cell results:
//
//	job, err := ltp.Submit(ctx, sweep) // or Engine.Submit
//	for cell := range job.Cells() { ... }
//	res, err := job.Wait()             // job.Cancel() aborts the rest
//
// See DESIGN.md for the system inventory (§9: cancellation, priority
// tiers, sweep design) and EXPERIMENTS.md for the paper-versus-
// measured record of every figure and table.
package ltp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"ltp/internal/bpred"
	"ltp/internal/core"
	"ltp/internal/energy"
	"ltp/internal/isa"
	"ltp/internal/mem"
	_ "ltp/internal/model" // registers the "model" interval backend
	"ltp/internal/pipeline"
	"ltp/internal/prog"
	"ltp/internal/sim"
	"ltp/internal/trace"
	"ltp/internal/workload"
)

// Inf marks an effectively unlimited structure size in sweeps.
const Inf = pipeline.Inf

// Mode re-exports the LTP parking-class selection.
type Mode = core.Mode

// Parking modes.
const (
	ModeOff  = core.ModeOff
	ModeNU   = core.ModeNU
	ModeNR   = core.ModeNR
	ModeNRNU = core.ModeNRNU
)

// WarmMode selects how the warm-up region (WarmInsts) is executed before
// detailed simulation.
type WarmMode uint8

const (
	// WarmFast (the default) replays the warm-up region through the
	// functional emulator only, touching the caches, branch predictor and
	// LTP classification tables along the way. It runs at emulation speed
	// — orders of magnitude faster than the pipeline — and reaches the
	// measured region with the same architectural state and warmed
	// microarchitectural tables, so measured-region CPI matches detailed
	// warming within a small tolerance (see TestWarmupEquivalence).
	WarmFast WarmMode = iota
	// WarmDetailed runs the warm-up region through the full out-of-order
	// pipeline and resets all statistics at the boundary. It is the
	// reference warm-up: slow, but byte-for-byte the machine state a
	// single long detailed run would have.
	WarmDetailed
)

var warmModeNames = map[WarmMode]string{WarmFast: "fast", WarmDetailed: "detailed"}

// String returns the mode name ("fast", "detailed").
func (m WarmMode) String() string { return warmModeNames[m] }

// ParseWarmMode converts a flag value into a WarmMode.
func ParseWarmMode(s string) (WarmMode, error) {
	switch s {
	case "fast", "":
		return WarmFast, nil
	case "detailed", "full":
		return WarmDetailed, nil
	}
	return WarmFast, fmt.Errorf("unknown warm mode %q (want fast or detailed)", s)
}

// Execution backend names (RunSpec.Backend). Backends lists the full
// registry with fidelities.
const (
	// BackendCycle is the cycle-accurate reference pipeline (the
	// default).
	BackendCycle = "cycle"
	// BackendModel is the fast interval-style analytical model: CPI
	// and the derived metrics are first-order estimates, orders of
	// magnitude cheaper than detailed simulation and calibrated
	// against it (internal/model) — for ranking and sweep triage, not
	// absolute numbers.
	BackendModel = "model"
	// BackendSampled is the interval-sampling tier between model and
	// cycle: the run is functionally warmed end to end, K checkpointed
	// measurement windows are simulated cycle-accurately (concurrently,
	// when an engine pool is available), and their CPIs are stitched
	// into a whole-run estimate with a sampling confidence interval
	// (RunResult.Sampling). RunSpec.Intervals selects K.
	BackendSampled = "sampled"
)

// Sampled-backend interval bounds (RunSpec.Intervals).
const (
	// DefaultSampledIntervals is the interval count K a sampled run
	// uses when RunSpec.Intervals is unset.
	DefaultSampledIntervals = 8
	// MaxSampledIntervals caps K: beyond this the per-interval samples
	// are too short to ride out checkpoint-restore transients.
	MaxSampledIntervals = 64
)

// sampledIntervals resolves the interval count K for a sampled-backend
// run: default when unset, clamped to [1, MaxSampledIntervals] and to
// at most one interval per measured instruction. Canonical and
// RunContext share it, so the hash always names the K that executes.
func sampledIntervals(k int, maxInsts uint64) int {
	if k <= 0 {
		k = DefaultSampledIntervals
	}
	if k > MaxSampledIntervals {
		k = MaxSampledIntervals
	}
	if maxInsts > 0 && uint64(k) > maxInsts {
		k = int(maxInsts)
	}
	if k < 1 {
		k = 1
	}
	return k
}

// BackendInfo describes one registered execution backend.
type BackendInfo struct {
	// Name is the RunSpec.Backend value selecting it.
	Name string `json:"name"`
	// Fidelity grades its timing faithfulness ("cycle-accurate",
	// "estimate").
	Fidelity string `json:"fidelity"`
	// About is a one-line description.
	About string `json:"about"`
}

// specBackendName resolves a spec's backend selection to its registry
// name ("cycle" for the default). Unknown names come back verbatim —
// validation happens in Canonical, not here.
func specBackendName(s RunSpec) string {
	b, err := sim.Lookup(s.Backend)
	if err != nil {
		return s.Backend
	}
	return b.Name()
}

// specCycleFidelity reports whether the spec executes at cycle
// fidelity (unknown backends count as cycle; Canonical rejects them
// before anything depends on the answer).
func specCycleFidelity(s RunSpec) bool {
	b, err := sim.Lookup(s.Backend)
	if err != nil {
		return true
	}
	return b.Fidelity() == sim.FidelityCycle
}

// Backends returns the registered execution backends, sorted by name.
func Backends() []BackendInfo {
	var out []BackendInfo
	for _, name := range sim.Names() {
		b, err := sim.Lookup(name)
		if err != nil {
			continue
		}
		info := BackendInfo{Name: name, Fidelity: b.Fidelity().String()}
		if a, ok := b.(interface{ About() string }); ok {
			info.About = a.About()
		}
		out = append(out, info)
	}
	return out
}

// Co-runner bounds and defaults.
const (
	// MaxCorunners bounds how many co-runner streams one run may
	// attach (each adds a private L1 and a replayed traffic stream).
	MaxCorunners = 4
	// DefaultCorunnerAccesses is the captured traffic-pattern length
	// when Corunner.Accesses is unset.
	DefaultCorunnerAccesses = 1 << 16
	// DefaultCorunnerIntensity re-exports the replay rate used when
	// Corunner.Intensity is unset (accesses per 1024 cycles).
	DefaultCorunnerIntensity = mem.DefaultCorunnerIntensity
)

// Corunner describes one co-running workload stream contending with
// the primary core for the shared cache levels and DRAM (the SMT-style
// multi-program scenario subsystem). The co-runner's memory traffic is
// captured functionally from its scenario program once, then replayed
// cyclically through a private L1 into the shared hierarchy at the
// configured intensity — deterministic, hashable, and cheap (no second
// pipeline). Its address space is offset so it never aliases the
// primary workload's working set.
type Corunner struct {
	// Scenario names the workload family generating the stream
	// (required; Scenarios lists the families).
	Scenario string
	// Knobs overrides the family defaults (nil = defaults).
	Knobs *workload.Knobs
	// Seed varies the family's data layouts.
	Seed int64
	// Intensity is the replay rate in accesses per 1024 cycles
	// (0 = DefaultCorunnerIntensity; 1024 = one access per cycle).
	Intensity int
	// Accesses is the captured pattern length (0 =
	// DefaultCorunnerAccesses).
	Accesses int
}

// RunSpec describes one simulation.
type RunSpec struct {
	// Workload names a kernel from the registry (Workloads lists them),
	// or use Program to supply one directly.
	Workload string
	// Program, when non-nil, overrides Workload.
	Program *prog.Program
	// Scenario names a parameterized scenario family (Scenarios lists
	// them); the program is generated from Knobs, Seed and Scale. It is
	// used when Program is nil and Workload is empty.
	Scenario string
	// Knobs overrides the scenario family's default parameters (nil =
	// family defaults; zero fields fall back individually).
	Knobs *workload.Knobs
	// Seed selects the scenario's data layouts and constants. Equal
	// (Scenario, Knobs, Scale, Seed) always simulate identically;
	// campaign replication varies Seed.
	Seed int64
	// Scale shrinks workload working sets for quick runs (default 1.0).
	Scale float64

	// ReplayFrom, when non-nil, feeds the pipeline from a recorded
	// binary trace (see internal/trace) instead of building and
	// emulating a program; Workload/Program/Scenario are ignored. A
	// replayed run with the same budgets as its recording run
	// reproduces that run's statistics bit-identically.
	ReplayFrom io.Reader
	// RecordTo, when non-nil, captures the run's full µop stream
	// (warm-up, measured region and pipeline fetch-ahead) as a binary
	// trace while the run executes, without perturbing its statistics.
	RecordTo io.Writer

	// WarmInsts executes this many instructions as warm-up before the
	// detailed, measured region (the paper warms for 250 M; scale to your
	// budget). WarmMode selects how the warm-up runs.
	WarmInsts uint64
	// WarmMode selects the warm-up execution path (default WarmFast).
	WarmMode WarmMode
	// MaxInsts bounds detailed simulation (committed instructions).
	MaxInsts uint64
	// MaxCycles is a safety cap (0 = none).
	MaxCycles uint64

	// Pipeline configures the core; zero value = Table 1 baseline.
	Pipeline *pipeline.Config

	// BranchPred selects the branch predictor from the internal/bpred
	// registry ("gshare", "tage"; "" = whatever Pipeline says, gshare
	// by default). A non-empty value overrides Pipeline.BranchPred —
	// it is the sweepable spelling of the same axis.
	BranchPred string
	// Prefetcher selects the L2 prefetch engine from the internal/mem
	// registry ("none", "nextline", "stride", "stream"; "" = whatever
	// the Pipeline's hierarchy says). A non-empty value overrides
	// Pipeline.Hier.Prefetcher.
	Prefetcher string
	// Corunners attaches co-running workload streams contending for
	// the shared cache levels and DRAM (at most MaxCorunners). Empty
	// means a solo run.
	Corunners []Corunner

	// UseLTP attaches the parking unit.
	UseLTP bool
	// LTP configures it; zero value = the paper's realistic design
	// (NU-only, 128 entries, 4 ports, 256-entry UIT).
	LTP *core.Config
	// Oracle enables the limit study's perfect classification (builds a
	// trace pre-pass covering warm-up + detailed budget). Cycle
	// backend only.
	Oracle bool

	// Backend selects the execution backend: BackendCycle (the
	// default) for the cycle-accurate pipeline, BackendModel for the
	// fast interval-style analytical estimate, BackendSampled for
	// checkpointed interval sampling. The backend is part of the run's
	// identity — results of different fidelities hash (and therefore
	// cache) separately.
	Backend string
	// Intervals is the sampled backend's interval count K (default
	// DefaultSampledIntervals, capped at MaxSampledIntervals). Other
	// backends ignore it, and it is zeroed out of their canonical
	// forms, so varying K never perturbs a cycle or model cell's hash.
	Intervals int
}

// Canonical returns the spec in normal form: every defaulted field
// made explicit (Scale, MaxInsts, Pipeline, LTP) and every ignored
// field zeroed (Scenario/Knobs/Seed under a Workload; LTP/Oracle
// without UseLTP; WarmMode without WarmInsts), with scenario knobs
// resolved against the family defaults. Two specs that simulate
// identically canonicalize identically, which is what makes Hash a
// usable content address for the result cache.
//
// Canonical errors when the spec has no normal form: a caller-supplied
// Program, a ReplayFrom/RecordTo stream, or a prebuilt LTP.Oracle
// (their identity lives outside the spec). Such runs still execute
// through Run; they just cannot be cached.
func (s RunSpec) Canonical() (RunSpec, error) {
	switch {
	case s.Program != nil:
		return RunSpec{}, fmt.Errorf("ltp: spec with an explicit Program has no canonical form")
	case s.ReplayFrom != nil || s.RecordTo != nil:
		return RunSpec{}, fmt.Errorf("ltp: spec with trace streams has no canonical form")
	}

	backend, err := sim.Lookup(s.Backend)
	if err != nil {
		return RunSpec{}, err
	}
	// The default backend is made explicit so two spellings of the same
	// run hash identically, and so the hash can never alias across
	// fidelities.
	s.Backend = backend.Name()

	if s.Scale == 0 {
		s.Scale = 1.0
	}
	if s.MaxInsts == 0 {
		s.MaxInsts = 1_000_000
	}
	switch {
	case s.Workload != "":
		if _, err := workload.ByName(s.Workload); err != nil {
			return RunSpec{}, err
		}
		// Run ignores the scenario fields when a kernel is named.
		s.Scenario, s.Knobs, s.Seed = "", nil, 0
	case s.Scenario != "":
		fam, err := workload.FamilyByName(s.Scenario)
		if err != nil {
			return RunSpec{}, err
		}
		knobs := fam.Resolve(s.Knobs)
		// Resolved entropy 0 must be spelled with the negative
		// sentinel: a literal 0 would re-merge to the family default
		// on the next resolution, so the canonical form would not be
		// a fixed point (running or re-hashing it would silently
		// select a different program).
		if knobs.BranchEntropy == 0 {
			knobs.BranchEntropy = -1
		}
		s.Knobs = &knobs
	default:
		return RunSpec{}, fmt.Errorf("ltp: RunSpec names no workload or scenario")
	}
	if s.WarmInsts == 0 {
		s.WarmMode = WarmFast // no warm region: the mode cannot matter
	}
	if backend.Fidelity() != sim.FidelityCycle {
		// An analytical backend has exactly one (functional) warm-up
		// path, so the mode cannot perturb the result — or the hash.
		s.WarmMode = WarmFast
	}
	if backend.Name() == BackendSampled {
		s.Intervals = sampledIntervals(s.Intervals, s.MaxInsts)
	} else {
		// Only the sampled backend reads K; zeroing it here is what
		// keeps a cycle cell's hash invariant under Intervals noise.
		s.Intervals = 0
	}

	pcfg := pipeline.DefaultConfig()
	if s.Pipeline != nil {
		pcfg = *s.Pipeline
	}
	// The predictor and prefetcher axes fold into the pipeline
	// configuration and are spelled there explicitly — one canonical
	// representation, whichever way the caller selected them.
	if s.BranchPred != "" {
		pcfg.BranchPred = s.BranchPred
	}
	bp, err := bpred.New(pcfg.BranchPred)
	if err != nil {
		return RunSpec{}, err
	}
	pcfg.BranchPred = bp.Name()
	s.BranchPred = ""
	if s.Prefetcher != "" {
		pcfg.Hier.Prefetcher = s.Prefetcher
	}
	pname := pcfg.Hier.PrefetcherName()
	if _, err := mem.NewPrefetcher(pname, pcfg.Hier.PrefetchTable, pcfg.Hier.PrefetchDegree); err != nil {
		return RunSpec{}, err
	}
	pcfg.Hier.Prefetcher = pname
	if pname == "none" {
		// A disabled prefetcher has no degree or table.
		pcfg.Hier.PrefetchDegree, pcfg.Hier.PrefetchTable = 0, 0
	} else {
		if pcfg.Hier.PrefetchDegree <= 0 {
			pcfg.Hier.PrefetchDegree = 4
		}
		if pcfg.Hier.PrefetchTable == 0 {
			pcfg.Hier.PrefetchTable = 256
		}
	}
	s.Prefetcher = ""
	s.Pipeline = &pcfg

	cors, err := canonicalCorunners(s.Corunners)
	if err != nil {
		return RunSpec{}, err
	}
	s.Corunners = cors

	if s.UseLTP {
		lcfg := core.DefaultConfig()
		if s.LTP != nil {
			lcfg = *s.LTP
		}
		if lcfg.Oracle != nil {
			return RunSpec{}, fmt.Errorf("ltp: spec with a prebuilt oracle has no canonical form (set RunSpec.Oracle instead)")
		}
		if lcfg.Ident.String() == "" {
			return RunSpec{}, fmt.Errorf("ltp: unknown LTP identification policy %d", lcfg.Ident)
		}
		s.LTP = &lcfg
	} else {
		// Run never reads these without UseLTP.
		s.LTP, s.Oracle = nil, false
	}
	if s.Oracle && backend.Fidelity() != sim.FidelityCycle {
		return RunSpec{}, fmt.Errorf("ltp: oracle classification requires the cycle backend, not %q", s.Backend)
	}
	return s, nil
}

// runSpecHashVersion is bumped whenever the canonical serialization
// changes meaning, so stale cache keys can never alias new ones
// ("rs2": the execution backend joined the canonical form; "rs3": the
// branch predictor, prefetcher and co-runner axes joined it, and the
// predictor/prefetcher selections canonicalize to explicit names).
const runSpecHashVersion = "rs3"

// Hash returns a stable content address for the run: the SHA-256 of
// the canonical spec's deterministic serialization, prefixed with a
// format version ("rs1:<hex>"). Equal hashes mean the runs simulate
// identically (same workload bytes, budgets, configuration and seed),
// so a cached RunResult can be shared; field order, nil-versus-default
// pointers, and zero-versus-explicit defaults do not perturb it. Specs
// without a canonical form return Canonical's error.
func (s RunSpec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	return hashJSON(runSpecHashVersion, c)
}

// hashJSON content-addresses v via deterministic JSON (struct fields
// marshal in declaration order; map keys sort).
func hashJSON(version string, v interface{}) (string, error) {
	h := sha256.New()
	if err := json.NewEncoder(h).Encode(v); err != nil {
		return "", fmt.Errorf("ltp: hashing spec: %w", err)
	}
	return version + ":" + hex.EncodeToString(h.Sum(nil)), nil
}

// LTPStats summarizes the parking unit's behaviour for one run (Fig. 7).
// It is the backend-layer type (internal/sim), re-exported so existing
// callers keep compiling.
type LTPStats = sim.LTPStats

// SamplingStats describes the estimate quality of an interval-sampled
// run: K, the instructions actually cycle-simulated, and the
// per-interval CPI summary whose CI95 bounds the whole-run estimate.
// It is the backend-layer type (internal/sim), re-exported.
type SamplingStats = sim.SamplingStats

// RunResult bundles the pipeline metrics, LTP statistics and modelled
// energy for one run.
type RunResult struct {
	pipeline.Result
	// LTP holds the parking unit's statistics (nil without UseLTP).
	LTP *LTPStats
	// Energy is the modelled IQ/RF/LTP energy for the run.
	Energy energy.Breakdown

	// Design echoes the sized structures for relative-energy math.
	Design energy.Design

	// Sampling holds the interval-sampling quality metrics (nil unless
	// BackendSampled produced the result).
	Sampling *SamplingStats
}

// canonicalCorunners validates and normalizes the co-runner list:
// scenario families must exist, knobs resolve against the family
// defaults (with the entropy-zero sentinel, as the primary scenario's
// canonicalization does), and the intensity and pattern-length
// defaults are made explicit. An empty list normalizes to nil.
func canonicalCorunners(cors []Corunner) ([]Corunner, error) {
	if len(cors) == 0 {
		return nil, nil
	}
	if len(cors) > MaxCorunners {
		return nil, fmt.Errorf("ltp: %d co-runners exceeds the limit of %d", len(cors), MaxCorunners)
	}
	out := make([]Corunner, len(cors))
	for i, c := range cors {
		if c.Scenario == "" {
			return nil, fmt.Errorf("ltp: co-runner %d names no scenario family", i)
		}
		fam, err := workload.FamilyByName(c.Scenario)
		if err != nil {
			return nil, fmt.Errorf("ltp: co-runner %d: %w", i, err)
		}
		knobs := fam.Resolve(c.Knobs)
		if knobs.BranchEntropy == 0 {
			knobs.BranchEntropy = -1 // see RunSpec.Canonical's sentinel note
		}
		c.Knobs = &knobs
		if c.Intensity <= 0 {
			c.Intensity = DefaultCorunnerIntensity
		}
		if c.Accesses <= 0 {
			c.Accesses = DefaultCorunnerAccesses
		}
		out[i] = c
	}
	return out, nil
}

// captureTraffic runs the program functionally and captures its first
// `accesses` memory accesses as an immutable traffic pattern, with
// every address offset into the co-runner's private region. instCap
// bounds the emulated instructions so a memory-free program cannot
// spin forever.
func captureTraffic(p *prog.Program, accesses int, offset uint64) (*mem.TrafficPattern, error) {
	e := prog.NewEmulator(p)
	t := &mem.TrafficPattern{
		PC:    make([]uint64, 0, accesses),
		Addr:  make([]uint64, 0, accesses),
		Store: make([]bool, 0, accesses),
	}
	instCap := uint64(accesses) * 128
	var u isa.Uop
	for insts := uint64(0); len(t.Addr) < accesses && insts < instCap; insts++ {
		if !e.Next(&u) {
			break
		}
		if u.IsMem() {
			t.PC = append(t.PC, u.PC)
			t.Addr = append(t.Addr, u.Addr+offset)
			t.Store = append(t.Store, u.Op == isa.Store)
		}
	}
	if len(t.Addr) == 0 {
		return nil, fmt.Errorf("ltp: co-runner program %q performs no memory accesses", p.Name)
	}
	return t, nil
}

// buildCorunners resolves the co-runner specs into attachable traffic
// streams: each family program is generated at the run's scale and
// captured functionally, its addresses offset by a per-co-runner
// constant so streams alias neither the primary workload nor each
// other.
func buildCorunners(cors []Corunner, scale float64) ([]mem.CorunnerConfig, error) {
	norm, err := canonicalCorunners(cors)
	if err != nil || len(norm) == 0 {
		return nil, err
	}
	out := make([]mem.CorunnerConfig, len(norm))
	for i, c := range norm {
		fam, err := workload.FamilyByName(c.Scenario)
		if err != nil {
			return nil, fmt.Errorf("ltp: co-runner %d: %w", i, err)
		}
		program := fam.Build(c.Knobs, scale, c.Seed)
		pattern, err := captureTraffic(program, c.Accesses, (uint64(i)+1)<<40)
		if err != nil {
			return nil, err
		}
		out[i] = mem.CorunnerConfig{Pattern: pattern, Intensity: c.Intensity}
	}
	return out, nil
}

// programBuilder validates the spec's workload/scenario selection and
// returns a deferred program constructor plus the stream name. The
// build itself can be expensive (scenario generation is rand-heavy),
// so callers that may never need the stream — a model run whose warm
// group is cached — defer it behind a lazyStream.
func programBuilder(spec RunSpec) (func() *prog.Program, string, error) {
	switch {
	case spec.Workload != "":
		wl, err := workload.ByName(spec.Workload)
		if err != nil {
			return nil, "", err
		}
		return func() *prog.Program { return wl.Build(spec.Scale) }, spec.Workload, nil
	case spec.Scenario != "":
		fam, err := workload.FamilyByName(spec.Scenario)
		if err != nil {
			return nil, "", err
		}
		return func() *prog.Program { return fam.Build(spec.Knobs, spec.Scale, spec.Seed) }, spec.Scenario, nil
	}
	return nil, "", fmt.Errorf("ltp: RunSpec names no workload, scenario, program or trace")
}

// lazyStream defers program generation and emulator construction until
// the first µop is actually pulled. The model backend's warm-group
// cache checks sim.Spec.WarmKey before touching the stream, so a
// warm-cache hit skips the build entirely.
type lazyStream struct {
	build func() prog.Stream
	s     prog.Stream
}

func newLazyStream(build func() prog.Stream) *lazyStream { return &lazyStream{build: build} }

func (l *lazyStream) get() prog.Stream {
	if l.s == nil {
		l.s = l.build()
	}
	return l.s
}

// Next implements prog.Stream.
func (l *lazyStream) Next(u *isa.Uop) bool { return l.get().Next(u) }

// CloneStream implements prog.StreamCloner when the underlying stream
// does (the emulator always does), which is what lets the model
// backend snapshot a warmed lazy stream into its warm-group cache.
func (l *lazyStream) CloneStream() prog.Stream {
	if sc, ok := l.get().(prog.StreamCloner); ok {
		return sc.CloneStream()
	}
	return nil
}

// warmKeyVersion prefixes model warm-group keys; bump it whenever the
// key's field set changes meaning.
const warmKeyVersion = "wk1"

// modelWarmKey content-addresses everything the model backend's warm
// pass depends on — stream identity, warm budget, and the
// warm-affecting configuration (hierarchy + prefetcher, branch
// predictor, UIT geometry, co-runners) — for a canonical model-backend
// spec. Timing-only axes (IQ/ROB/LSQ sizes, LTP mode and capacity,
// MaxInsts, MaxCycles) are deliberately absent: sweep cells that vary
// only those share one functionally-warmed snapshot.
func modelWarmKey(c RunSpec) (string, error) {
	uitEntries, uitWays := core.DefaultConfig().UITEntries, core.DefaultConfig().UITWays
	if c.LTP != nil {
		uitEntries, uitWays = c.LTP.UITEntries, c.LTP.UITWays
	}
	return hashJSON(warmKeyVersion, struct {
		Workload   string
		Scenario   string
		Knobs      *workload.Knobs
		Seed       int64
		Scale      float64
		WarmInsts  uint64
		Hier       mem.Config
		BranchPred string
		UITEntries int
		UITWays    int
		Corunners  []Corunner
	}{
		Workload:   c.Workload,
		Scenario:   c.Scenario,
		Knobs:      c.Knobs,
		Seed:       c.Seed,
		Scale:      c.Scale,
		WarmInsts:  c.WarmInsts,
		Hier:       c.Pipeline.Hier,
		BranchPred: c.Pipeline.BranchPred,
		UITEntries: uitEntries,
		UITWays:    uitWays,
		Corunners:  c.Corunners,
	})
}

// specWarmKey computes the warm-group key for a spec when it qualifies
// (model backend, canonicalizable); every other spec gets "" (no warm
// reuse), which is always safe.
func specWarmKey(spec RunSpec) string {
	if specBackendName(spec) != BackendModel ||
		spec.Program != nil || spec.ReplayFrom != nil || spec.RecordTo != nil {
		return ""
	}
	c, err := spec.Canonical()
	if err != nil {
		return ""
	}
	key, err := modelWarmKey(c)
	if err != nil {
		return ""
	}
	return key
}

// Workloads returns the kernel registry.
func Workloads() []workload.Spec { return workload.All() }

// BranchPredictors returns the registered branch predictor names
// (RunSpec.BranchPred values), sorted.
func BranchPredictors() []string { return bpred.Names() }

// Prefetchers returns the registered prefetcher names
// (RunSpec.Prefetcher values; "none" disables prefetching), sorted.
func Prefetchers() []string { return mem.PrefetcherNames() }

// WorkloadByName fetches one kernel spec.
func WorkloadByName(name string) (workload.Spec, error) { return workload.ByName(name) }

// Scenarios returns the scenario-family registry.
func Scenarios() []workload.Family { return workload.Families() }

// ScenarioByName fetches one scenario family.
func ScenarioByName(name string) (workload.Family, error) { return workload.FamilyByName(name) }

// Run executes one simulation to completion, without cancellation.
//
// Deprecated: use RunContext, which can be cancelled or given a
// deadline. Run is RunContext with a background context.
func Run(spec RunSpec) (RunResult, error) {
	return RunContext(context.Background(), spec)
}

// cancelErr normalizes a cancellation observed mid-run into the
// context's own error (the cancellation cause when one was supplied).
func cancelErr(ctx context.Context) error { return sim.CancelErr(ctx) }

// execContextKey carries a sim.Executor through a context so a sampled
// run launched from the engine fans its intervals onto the engine's
// scheduler pool. Plain RunContext callers have no executor and run
// intervals sequentially.
type execContextKey struct{}

// withExecutor returns ctx carrying the interval executor for sampled
// runs (engine-internal; see execContextKey).
func withExecutor(ctx context.Context, ex sim.Executor) context.Context {
	return context.WithValue(ctx, execContextKey{}, ex)
}

// RunContext executes one simulation under ctx on the spec's execution
// backend (BackendCycle unless the spec says otherwise). Cancellation
// is honoured at every phase boundary and — cheaply, every couple of
// thousand cycles — inside the detailed simulation loop and the fast
// warm-up, so a multi-minute run aborts within about a millisecond of
// cancel. A cancelled run returns ctx's error (its cause, when one was
// set) and no result.
func RunContext(ctx context.Context, spec RunSpec) (RunResult, error) {
	if err := ctx.Err(); err != nil {
		return RunResult{}, cancelErr(ctx)
	}
	backend, err := sim.Lookup(spec.Backend)
	if err != nil {
		return RunResult{}, err
	}
	cycleFidelity := backend.Fidelity() == sim.FidelityCycle
	if spec.Scale == 0 {
		spec.Scale = 1.0
	}
	if spec.MaxInsts == 0 {
		spec.MaxInsts = 1_000_000
	}

	// A model run that can be content-addressed carries a warm-group
	// key: the backend may then serve the whole warm-up (and the
	// program build, via the lazy stream) from its warm cache.
	warmKey := specWarmKey(spec)

	// Resolve the µop source: a replayed trace, or a program (explicit,
	// scenario-generated, or registry kernel) through the emulator.
	var stream prog.Stream
	var program *prog.Program
	var streamName string
	var reader *trace.Reader
	if spec.ReplayFrom != nil {
		r, err := trace.NewReader(spec.ReplayFrom)
		if err != nil {
			return RunResult{}, err
		}
		reader = r
		stream = r
		streamName = r.Name()
	} else if program = spec.Program; program != nil {
		stream = prog.NewEmulator(program)
		streamName = program.Name
	} else {
		build, name, err := programBuilder(spec)
		if err != nil {
			return RunResult{}, err
		}
		streamName = name
		if warmKey != "" {
			// Deferred: a warm-cache hit in the model backend never
			// builds the program or the emulator at all.
			stream = newLazyStream(func() prog.Stream { return prog.NewEmulator(build()) })
		} else {
			program = build()
			stream = prog.NewEmulator(program)
			streamName = program.Name
		}
	}
	var recorder *trace.Recorder
	if spec.RecordTo != nil {
		if !cycleFidelity {
			return RunResult{}, fmt.Errorf("ltp: trace capture requires the cycle backend, not %q", backend.Name())
		}
		recorder = trace.NewRecorder(stream, spec.RecordTo, streamName)
		stream = recorder
	}

	pcfg := pipeline.DefaultConfig()
	if spec.Pipeline != nil {
		pcfg = *spec.Pipeline
	}
	if spec.BranchPred != "" {
		pcfg.BranchPred = spec.BranchPred
	}
	if _, err := bpred.New(pcfg.BranchPred); err != nil {
		return RunResult{}, err
	}
	if spec.Prefetcher != "" {
		pcfg.Hier.Prefetcher = spec.Prefetcher
	}
	if _, err := mem.NewPrefetcher(pcfg.Hier.PrefetcherName(),
		pcfg.Hier.PrefetchTable, pcfg.Hier.PrefetchDegree); err != nil {
		return RunResult{}, err
	}
	cors, err := buildCorunners(spec.Corunners, spec.Scale)
	if err != nil {
		return RunResult{}, err
	}

	var lcfg *core.Config
	if spec.UseLTP {
		c := core.DefaultConfig()
		if spec.LTP != nil {
			c = *spec.LTP
		}
		// Oracle classification is a cycle-pipeline concept: an
		// analytical backend would silently substitute its own
		// urgency heuristic for the perfect pre-pass, so both the
		// request flag and a prebuilt oracle must refuse loudly.
		if (spec.Oracle || c.Oracle != nil) && !cycleFidelity {
			return RunResult{}, fmt.Errorf("ltp: oracle classification requires the cycle backend, not %q", backend.Name())
		}
		if spec.Oracle && c.Oracle == nil {
			if program == nil {
				return RunResult{}, fmt.Errorf("ltp: oracle classification needs a program, not a replayed trace")
			}
			budget := int(spec.WarmInsts + spec.MaxInsts + 65_536)
			c.Oracle = core.BuildOracle(program, budget, pcfg.Hier, pcfg.ROBSize)
		}
		lcfg = &c
	}

	intervals := 0
	if backend.Name() == BackendSampled {
		// The same resolution Canonical applies, so the K that runs is
		// always the K the cache key names.
		intervals = sampledIntervals(spec.Intervals, spec.MaxInsts)
	}
	ex, _ := ctx.Value(execContextKey{}).(sim.Executor)

	st, err := backend.Run(ctx, sim.Spec{
		Stream:       stream,
		Reader:       reader,
		Recorder:     recorder,
		Pipeline:     pcfg,
		LTP:          lcfg,
		WarmInsts:    spec.WarmInsts,
		WarmDetailed: spec.WarmMode == WarmDetailed,
		MaxInsts:     spec.MaxInsts,
		MaxCycles:    spec.MaxCycles,
		Corunners:    cors,
		WarmKey:      warmKey,
		Intervals:    intervals,
		Exec:         ex,
	})
	if err != nil {
		return RunResult{}, err
	}
	return finishResult(st, pcfg, lcfg), nil
}

// finishResult folds backend stats into the public RunResult shape and
// attaches the modelled energy — the single exit path for both
// single-cell runs and batched lanes, so the two are byte-identical by
// construction.
func finishResult(st sim.Stats, pcfg pipeline.Config, lcfg *core.Config) RunResult {
	res := RunResult{Result: st.Result, LTP: st.LTP, Sampling: st.Sampling}
	res.Design = energy.Design{
		IQEntries:  pcfg.IQSize,
		IssueWidth: pcfg.IssueWidth,
		IntRegs:    pcfg.IntRegs,
		FPRegs:     pcfg.FPRegs,
	}

	act := energy.Activity{
		Cycles:   res.Cycles,
		Issues:   res.Issues,
		RFReads:  res.RFReads,
		RFWrites: res.RFWrites,
	}
	if lcfg != nil && res.LTP != nil {
		res.Design.LTPEntries = lcfg.Entries
		res.Design.LTPPorts = lcfg.Ports
		if res.Design.LTPEntries <= 0 {
			res.Design.LTPEntries = pcfg.ROBSize // "unlimited" is ROB-bounded
		}
		act.LTPEnqueues = res.LTP.Enqueues
		act.LTPDequeues = res.LTP.Dequeues
		act.LTPEnabledCyc = uint64(res.LTP.EnabledFrac * float64(res.Cycles))
	}
	res.Energy = energy.Compute(energy.DefaultParams(), res.Design, act)
	return res
}

// Submit asynchronously submits a sweep campaign to the process-wide
// DefaultEngine and returns immediately with a Job handle (streaming
// cell results, progress counters, cancellation). Cells are
// deduplicated through the engine's content-addressed cache: a cell
// another in-flight or finished campaign already computed is shared,
// not re-simulated. ctx bounds the whole job (see Engine.Submit).
func Submit(ctx context.Context, spec SweepSpec) (*Job, error) {
	return DefaultEngine().Submit(ctx, spec)
}

// SubmitMatrix asynchronously submits a scenario-matrix campaign to
// the process-wide DefaultEngine and returns immediately with a
// MatrixJob handle (progress counters, Done channel, Wait).
//
// Deprecated: use Submit with NewMatrixSweep, which threads a context
// and streams per-cell results. For a synchronous, uncached campaign
// on a transient pool use RunMatrix.
func SubmitMatrix(spec MatrixSpec) (*MatrixJob, error) {
	return DefaultEngine().SubmitMatrix(spec)
}

// MustRun is Run that panics on error (experiment harness convenience).
func MustRun(spec RunSpec) RunResult {
	r, err := Run(spec)
	if err != nil {
		panic(fmt.Sprintf("ltp: %v", err))
	}
	return r
}
