package ltp_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ltp"
	"ltp/internal/pipeline"
	"ltp/internal/prog"
)

// quickSweepMatrix is a small real campaign both campaign paths run.
func quickSweepMatrix() ltp.MatrixSpec {
	return ltp.MatrixSpec{
		Scenarios: []string{"branchy", "hashjoin"},
		Configs: []ltp.MatrixConfig{
			{Name: "IQ64"},
			{Name: "IQ32+LTP", UseLTP: true},
		},
		Seeds:       2,
		Scale:       0.05,
		DetailInsts: 4_000,
	}
}

// TestNewMatrixSweepHashFixedPoint holds the acceptance criterion: the
// matrix→sweep mapping is a fixed point of MatrixSpec.Canonical —
// equivalent matrices (defaults spelled implicitly or explicitly,
// pre-canonicalized or not) map to equal sweep hashes, and actually
// different campaigns do not.
func TestNewMatrixSweepHashFixedPoint(t *testing.T) {
	m := quickSweepMatrix()
	canon, err := m.Canonical()
	if err != nil {
		t.Fatal(err)
	}

	s1, err := ltp.NewMatrixSweep(m)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ltp.NewMatrixSweep(canon)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := s1.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("sweep hash not a fixed point of Canonical: %s vs %s", h1, h2)
	}

	// Spelling the defaults explicitly must not perturb the hash.
	explicit := m
	explicit.Scale = 0.05
	explicit.BaseSeed = 0
	cfg := pipeline.DefaultConfig()
	explicit.Configs = []ltp.MatrixConfig{
		{Name: "IQ64", Pipeline: &cfg},
		{Name: "IQ32+LTP", UseLTP: true},
	}
	s3, err := ltp.NewMatrixSweep(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if h3, _ := s3.Hash(); h3 != h1 {
		t.Fatalf("explicit defaults changed the sweep hash: %s vs %s", h3, h1)
	}

	// A genuinely different campaign must hash differently.
	other := m
	other.BaseSeed = 99
	s4, err := ltp.NewMatrixSweep(other)
	if err != nil {
		t.Fatal(err)
	}
	if h4, _ := s4.Hash(); h4 == h1 {
		t.Fatal("different base seed produced the same sweep hash")
	}
}

// summariesEqual compares two matrix cells field-for-field (exact
// float equality: both paths fold the identical deterministic results
// in the identical order).
func summariesEqual(a, b *ltp.MatrixCell) bool {
	return a.CPI == b.CPI && a.IPC == b.IPC && a.MLP == b.MLP &&
		a.AvgLoadLat == b.AvgLoadLat && a.Parked == b.Parked
}

// TestSweepMatrixDifferential holds the acceptance criterion: the old
// synchronous RunMatrix shim and the new Engine.Submit sweep path
// produce identical aggregated results for the same campaign.
func TestSweepMatrixDifferential(t *testing.T) {
	spec := quickSweepMatrix()

	old, err := ltp.RunMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}

	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 4})
	defer e.Close()
	sweep, err := ltp.NewMatrixSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	job, err := e.Submit(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}

	for _, scn := range old.Scenarios {
		for _, cfg := range old.Configs {
			oc := old.Cell(scn, cfg)
			sc := sres.Cell(scn, cfg)
			if oc == nil || sc == nil {
				t.Fatalf("missing cell %s/%s on one path", scn, cfg)
			}
			nc := ltp.MatrixCell{
				Scenario: scn, Config: cfg,
				CPI: sc.CPI, IPC: sc.IPC, MLP: sc.MLP,
				AvgLoadLat: sc.AvgLoadLat, Parked: sc.Parked,
			}
			if !summariesEqual(oc, &nc) {
				t.Fatalf("cell %s/%s differs:\nRunMatrix: %+v\nSubmit:    %+v", scn, cfg, *oc, nc)
			}
			if sc.Replicates != old.Seeds {
				t.Fatalf("cell %s/%s replicates = %d; want %d", scn, cfg, sc.Replicates, old.Seeds)
			}
		}
	}

	// The MatrixJob shim must agree with both.
	mjob, err := e.SubmitMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := mjob.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for _, scn := range old.Scenarios {
		for _, cfg := range old.Configs {
			if !summariesEqual(old.Cell(scn, cfg), mres.Cell(scn, cfg)) {
				t.Fatalf("shim cell %s/%s differs from RunMatrix", scn, cfg)
			}
		}
	}
}

// TestSweepCellsStream checks the streaming channel delivers every
// run with coherent coordinates and cache outcomes.
func TestSweepCellsStream(t *testing.T) {
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 4})
	defer e.Close()

	sweep, err := ltp.NewMatrixSweep(quickSweepMatrix())
	if err != nil {
		t.Fatal(err)
	}
	job, err := e.Submit(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for c := range job.Cells() {
		if seen[c.Index] {
			t.Fatalf("cell %d delivered twice", c.Index)
		}
		seen[c.Index] = true
		if len(c.Coords) != 3 || c.Hash == "" || c.Err != nil {
			t.Fatalf("bad cell result: %+v", c)
		}
		if c.Outcome != "miss" && c.Outcome != "hit" && c.Outcome != "shared" {
			t.Fatalf("cell %d outcome %q", c.Index, c.Outcome)
		}
		if c.Result.Committed == 0 {
			t.Fatalf("cell %d has an empty result", c.Index)
		}
	}
	if len(seen) != job.TotalRuns() {
		t.Fatalf("stream delivered %d cells; want %d", len(seen), job.TotalRuns())
	}
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepGeneralizedAxes exercises what the matrix could not
// express: an IQ-size axis crossed with an LTP on/off axis over a
// replicated seed axis.
func TestSweepGeneralizedAxes(t *testing.T) {
	e := newTestEngine(t, ltp.EngineConfig{Parallelism: 4})
	defer e.Close()

	iq64, iq24 := 64, 24
	ltpOn, ltpOff := true, false
	s0, s1 := int64(0), int64(1)
	sweep := ltp.SweepSpec{
		Base: ltp.RunSpec{Scenario: "ptrchase", Scale: 0.05, MaxInsts: 4_000},
		Axes: []ltp.SweepAxis{
			{Name: "iq", Points: []ltp.SweepPoint{
				{Name: "iq64", Patch: ltp.RunPatch{IQSize: &iq64}},
				{Name: "iq24", Patch: ltp.RunPatch{IQSize: &iq24}},
			}},
			{Name: "ltp", Points: []ltp.SweepPoint{
				{Name: "off", Patch: ltp.RunPatch{UseLTP: &ltpOff}},
				{Name: "on", Patch: ltp.RunPatch{UseLTP: &ltpOn}},
			}},
			{Name: "seed", Replicate: true, Points: []ltp.SweepPoint{
				{Name: "s0", Patch: ltp.RunPatch{Seed: &s0}},
				{Name: "s1", Patch: ltp.RunPatch{Seed: &s1}},
			}},
		},
	}
	if got := sweep.TotalRuns(); got != 8 {
		t.Fatalf("TotalRuns = %d; want 8", got)
	}
	job, err := e.Submit(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("%d cells; want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Replicates != 2 || c.CPI.N != 2 || c.CPI.Mean <= 0 {
			t.Fatalf("cell %v under-aggregated: %+v", c.Coords, c)
		}
	}
	small := res.Cell("iq24", "off")
	big := res.Cell("iq64", "off")
	if small == nil || big == nil {
		t.Fatalf("missing cells: %+v", res.Cells)
	}
	if small.CPI.Mean <= big.CPI.Mean {
		t.Fatalf("IQ24 CPI %.3f not worse than IQ64 %.3f; the axis had no effect",
			small.CPI.Mean, big.CPI.Mean)
	}
	withLTP := res.Cell("iq24", "on")
	if withLTP == nil || withLTP.Parked.N == 0 {
		t.Fatal("LTP axis point did not attach the parking unit")
	}
}

// TestSweepValidation checks the campaign-shape errors all reject
// before any simulation.
func TestSweepValidation(t *testing.T) {
	pt := func(name string) ltp.SweepPoint { return ltp.SweepPoint{Name: name} }
	cases := map[string]ltp.SweepSpec{
		"unnamed axis": {Axes: []ltp.SweepAxis{{Points: []ltp.SweepPoint{pt("a")}}}},
		"empty axis":   {Axes: []ltp.SweepAxis{{Name: "x"}}},
		"dup axis": {Axes: []ltp.SweepAxis{
			{Name: "x", Points: []ltp.SweepPoint{pt("a")}},
			{Name: "x", Points: []ltp.SweepPoint{pt("b")}},
		}},
		"dup point":     {Axes: []ltp.SweepAxis{{Name: "x", Points: []ltp.SweepPoint{pt("a"), pt("a")}}}},
		"unnamed point": {Axes: []ltp.SweepAxis{{Name: "x", Points: []ltp.SweepPoint{{}}}}},
		"no source":     {Axes: []ltp.SweepAxis{{Name: "x", Points: []ltp.SweepPoint{pt("a")}}}},
		"uncacheable base": {
			Base: ltp.RunSpec{Program: &prog.Program{Name: "p"}},
			Axes: []ltp.SweepAxis{{Name: "x", Points: []ltp.SweepPoint{pt("a")}}},
		},
	}
	for name, spec := range cases {
		if name != "no source" && name != "uncacheable base" && spec.Base.Scenario == "" {
			spec.Base.Scenario = "branchy"
		}
		if _, err := spec.Canonical(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestSweepRejectsNoOpAxis checks the distinctness rule: an axis
// whose patches cannot affect the cell (seeds over a fixed kernel,
// which RunSpec.Canonical zeroes) must be rejected rather than
// producing N copies of one simulation dressed up as replicates.
func TestSweepRejectsNoOpAxis(t *testing.T) {
	s0, s1 := int64(0), int64(1)
	spec := ltp.SweepSpec{
		Base: ltp.RunSpec{Workload: "indirect", Scale: 0.05, MaxInsts: 4_000},
		Axes: []ltp.SweepAxis{{Name: "seed", Replicate: true, Points: []ltp.SweepPoint{
			{Name: "s0", Patch: ltp.RunPatch{Seed: &s0}},
			{Name: "s1", Patch: ltp.RunPatch{Seed: &s1}},
		}}},
	}
	if _, err := spec.Canonical(); err == nil {
		t.Fatal("seed axis over a fixed kernel accepted; replicates would be identical simulations")
	}
}

// TestSweepRunBoundRejectsBeforeEnumerating checks an astronomically
// wide cross-product is rejected by point-count arithmetic alone —
// never materialized (a 200^4 sweep would OOM if enumerated).
func TestSweepRunBoundRejectsBeforeEnumerating(t *testing.T) {
	wide := func(axis string) ltp.SweepAxis {
		ax := ltp.SweepAxis{Name: axis}
		for i := 0; i < 200; i++ {
			seed := int64(i)
			ax.Points = append(ax.Points, ltp.SweepPoint{
				Name: fmt.Sprintf("p%d", i), Patch: ltp.RunPatch{Seed: &seed},
			})
		}
		return ax
	}
	spec := ltp.SweepSpec{
		Base: ltp.RunSpec{Scenario: "branchy"},
		Axes: []ltp.SweepAxis{wide("a"), wide("b"), wide("c"), wide("d")},
	}
	start := time.Now()
	if _, err := spec.Canonical(); err == nil {
		t.Fatal("1.6 billion-run sweep accepted")
	}
	if _, err := spec.Hash(); err == nil {
		t.Fatal("1.6 billion-run sweep hashed")
	}
	if time.Since(start) > time.Second {
		t.Fatal("rejection enumerated the cross-product")
	}
}

// TestRunContextCancelPrompt holds the pipeline-cancellation
// acceptance criterion: a long simulation aborts promptly after
// cancel, returning the context's error and no result.
func TestRunContextCancelPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// A run that would take tens of seconds uncancelled.
		_, err := ltp.RunContext(ctx, ltp.RunSpec{
			Scenario: "ptrchase", Scale: 0.5, MaxInsts: 50_000_000,
		})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let it get deep into the cycle loop
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v; want context.Canceled", err)
		}
		// The design target is ~1ms (a 2048-cycle poll interval);
		// 500ms is the generous CI bound that still rules out "ran to
		// completion".
		if lat := time.Since(start); lat > 500*time.Millisecond {
			t.Fatalf("abort latency %v; want prompt", lat)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run never returned")
	}
}

// TestRunContextPreCancelled checks a dead context never simulates.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := ltp.RunContext(ctx, ltp.RunSpec{Scenario: "branchy", MaxInsts: 10_000_000}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("pre-cancelled run did work")
	}
}

// TestRunContextCancelDuringWarmup checks the fast functional warm-up
// honours cancellation between chunks.
func TestRunContextCancelDuringWarmup(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ltp.RunContext(ctx, ltp.RunSpec{
			Scenario: "gemmblock", Scale: 0.5,
			WarmInsts: 200_000_000, MaxInsts: 1_000,
		})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v; want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled warm-up never returned")
	}
}
