package ltp

// The generalized sweep: a campaign is a base RunSpec plus a list of
// axes, each axis a list of named declarative patches, and the
// campaign's cell population is the cross-product of the axes applied
// to the base. The scenario×config×seed matrix (MatrixSpec) is exactly
// one shape of sweep — NewMatrixSweep constructs it — but a sweep can
// vary anything a canonicalizable RunSpec can express: structure sizes
// (IQ/ROB/LQ/SQ, rename registers), the LTP mode, warm-up modes and
// budgets, scenario knobs, seeds. Axes are declarative (patches, not
// functions) precisely so every cell canonicalizes and hashes: the
// sweep's identity is its labeled cell population, which is what keeps
// arbitrary axes content-addressable in the result cache.

import (
	"fmt"
	"sort"

	"ltp/internal/core"
	"ltp/internal/pipeline"
	"ltp/internal/stats"
	"ltp/internal/workload"
)

// RunPatch is one declarative override set applied to a base RunSpec.
// Nil fields leave the base untouched; the structure-size fields
// (IQSize … FPRegs) tweak individual pipeline.Config fields on top of
// whatever Pipeline the spec has at that point (base default, or an
// earlier axis's full-config override), and Mode tweaks the LTP
// configuration the same way. Patches compose: axes apply in spec
// order, later axes seeing earlier axes' effects.
type RunPatch struct {
	// Workload selects a fixed kernel (RunSpec.Canonical resolves a
	// workload/scenario overlap in the kernel's favour, as Run does).
	Workload *string `json:"workload,omitempty"`
	// Scenario selects a scenario family.
	Scenario *string `json:"scenario,omitempty"`
	// Knobs replaces the scenario knob overrides.
	Knobs *workload.Knobs `json:"knobs,omitempty"`
	// Seed sets the scenario seed (the matrix's replicate axis).
	Seed *int64 `json:"seed,omitempty"`
	// Scale sets the working-set scale.
	Scale *float64 `json:"scale,omitempty"`
	// WarmInsts sets the warm-up budget.
	WarmInsts *uint64 `json:"warm_insts,omitempty"`
	// WarmMode sets the warm-up execution path.
	WarmMode *WarmMode `json:"warm_mode,omitempty"`
	// MaxInsts sets the measured budget.
	MaxInsts *uint64 `json:"max_insts,omitempty"`
	// Pipeline replaces the whole core configuration.
	Pipeline *pipeline.Config `json:"pipeline,omitempty"`
	// IQSize tweaks the instruction-queue size.
	IQSize *int `json:"iq_size,omitempty"`
	// ROBSize tweaks the reorder-buffer size.
	ROBSize *int `json:"rob_size,omitempty"`
	// LQSize tweaks the load-queue size.
	LQSize *int `json:"lq_size,omitempty"`
	// SQSize tweaks the store-queue size.
	SQSize *int `json:"sq_size,omitempty"`
	// IntRegs tweaks the available integer rename registers.
	IntRegs *int `json:"int_regs,omitempty"`
	// FPRegs tweaks the available FP rename registers.
	FPRegs *int `json:"fp_regs,omitempty"`
	// BranchPred selects the branch predictor ("gshare", "tage").
	BranchPred *string `json:"branch_pred,omitempty"`
	// Prefetcher selects the L2 prefetch engine ("none", "nextline",
	// "stride", "stream").
	Prefetcher *string `json:"prefetcher,omitempty"`
	// Corunners replaces the co-runner stream list (empty slice =
	// detach all co-runners).
	Corunners *[]Corunner `json:"corunners,omitempty"`
	// UseLTP attaches or detaches the parking unit.
	UseLTP *bool `json:"use_ltp,omitempty"`
	// LTP replaces the whole parking-unit configuration.
	LTP *core.Config `json:"ltp,omitempty"`
	// Mode tweaks the parking-class selection on the LTP configuration
	// (paper default when the spec has none yet).
	Mode *Mode `json:"mode,omitempty"`
	// Ident tweaks the LTP identification policy ("paper", "crit") on
	// the LTP configuration, like Mode.
	Ident *string `json:"ident,omitempty"`
	// Backend selects the execution backend ("cycle", "sampled",
	// "model") — the sweep's fidelity axis. Replicate axes may not
	// patch it: each cell's mean ± CI must aggregate runs of a single
	// fidelity.
	Backend *string `json:"backend,omitempty"`
	// Intervals sets the sampled backend's interval count K
	// (RunSpec.Intervals); the other backends ignore it.
	Intervals *int `json:"intervals,omitempty"`
}

// apply returns the base spec with the patch's overrides applied.
func (p RunPatch) apply(s RunSpec) RunSpec {
	if p.Workload != nil {
		s.Workload = *p.Workload
	}
	if p.Scenario != nil {
		s.Scenario = *p.Scenario
	}
	if p.Knobs != nil {
		k := *p.Knobs
		s.Knobs = &k
	}
	if p.Seed != nil {
		s.Seed = *p.Seed
	}
	if p.Scale != nil {
		s.Scale = *p.Scale
	}
	if p.WarmInsts != nil {
		s.WarmInsts = *p.WarmInsts
	}
	if p.WarmMode != nil {
		s.WarmMode = *p.WarmMode
	}
	if p.MaxInsts != nil {
		s.MaxInsts = *p.MaxInsts
	}
	if p.Pipeline != nil {
		cfg := *p.Pipeline
		s.Pipeline = &cfg
	}
	if p.IQSize != nil || p.ROBSize != nil || p.LQSize != nil ||
		p.SQSize != nil || p.IntRegs != nil || p.FPRegs != nil {
		cfg := pipeline.DefaultConfig()
		if s.Pipeline != nil {
			cfg = *s.Pipeline
		}
		set := func(dst *int, v *int) {
			if v != nil {
				*dst = *v
			}
		}
		set(&cfg.IQSize, p.IQSize)
		set(&cfg.ROBSize, p.ROBSize)
		set(&cfg.LQSize, p.LQSize)
		set(&cfg.SQSize, p.SQSize)
		set(&cfg.IntRegs, p.IntRegs)
		set(&cfg.FPRegs, p.FPRegs)
		s.Pipeline = &cfg
	}
	if p.BranchPred != nil {
		s.BranchPred = *p.BranchPred
	}
	if p.Prefetcher != nil {
		s.Prefetcher = *p.Prefetcher
	}
	if p.Corunners != nil {
		s.Corunners = append([]Corunner(nil), (*p.Corunners)...)
	}
	if p.UseLTP != nil {
		s.UseLTP = *p.UseLTP
	}
	if p.LTP != nil {
		cfg := *p.LTP
		s.LTP = &cfg
	}
	if p.Mode != nil {
		cfg := core.DefaultConfig()
		if s.LTP != nil {
			cfg = *s.LTP
		}
		cfg.Mode = *p.Mode
		s.LTP = &cfg
	}
	if p.Ident != nil {
		cfg := core.DefaultConfig()
		if s.LTP != nil {
			cfg = *s.LTP
		}
		// Unknown names surface in RunSpec.Canonical's LTP validation
		// path; parse best-effort here so patches stay total functions.
		if id, ok := core.ParseIdent(*p.Ident); ok {
			cfg.Ident = id
		}
		s.LTP = &cfg
	}
	if p.Backend != nil {
		s.Backend = *p.Backend
	}
	if p.Intervals != nil {
		s.Intervals = *p.Intervals
	}
	return s
}

// SweepPoint is one value along an axis: a table label plus the patch
// that realizes it.
type SweepPoint struct {
	// Name labels the point in cell coordinates and tables.
	Name string `json:"name"`
	// Patch is the override set this point applies.
	Patch RunPatch `json:"patch"`
}

// SweepAxis is one dimension of the cross-product.
type SweepAxis struct {
	// Name labels the axis (unique within the sweep).
	Name string `json:"name"`
	// Points are the axis's values, in sweep order (at least one).
	Points []SweepPoint `json:"points"`
	// Replicate marks a statistical axis: its points do not form cells
	// of their own but are aggregated into each cell's mean ± 95% CI
	// summaries (the matrix's seed axis).
	Replicate bool `json:"replicate,omitempty"`
}

// TriageSpec turns a sweep into a two-phase fidelity-triage campaign:
// every enumerated run first executes on the fast "model" backend, the
// cells are ranked by their model-estimated mean CPI, and the TopK
// best (lowest-CPI) cells are re-run cycle-accurately. One job, two
// phases: the job streams the model pre-pass and the detailed re-runs
// as distinct cell events (CellResult.Phase "triage" and "detail"),
// and the detailed runs are hashed exactly like directly submitted
// cycle-backend cells, so their cached results are shared either way.
type TriageSpec struct {
	// TopK is how many cells (by ascending model-estimated mean CPI)
	// are re-run on the cycle-accurate backend. It must be at least 1
	// and at most the sweep's cell count.
	TopK int `json:"top_k"`
}

// SweepSpec describes a generalized sweep campaign: Base patched by
// the cross-product of Axes. The zero Axes sweep is a single cell
// (just Base). Submit it with Engine.Submit; RunMatrix-style matrices
// are one constructor away (NewMatrixSweep).
type SweepSpec struct {
	// Base is the template spec every cell starts from. It need not be
	// runnable on its own (an axis may supply the scenario), but every
	// patched cell must canonicalize — Canonical rejects sweeps whose
	// cells cannot be content-addressed.
	Base RunSpec `json:"base"`
	// Axes are the sweep dimensions, applied in order.
	Axes []SweepAxis `json:"axes"`
	// Triage, when non-nil, runs the sweep as a two-phase fidelity
	// triage (model pre-pass, then TopK cells cycle-accurately). The
	// enumerated cells must all be cycle-backend cells.
	Triage *TriageSpec `json:"triage,omitempty"`
	// SinceSnapshot turns the sweep into an incremental campaign: runs
	// whose content address (RunSpec.Hash) appears in this set are not
	// executed — they stream immediately as Outcome "cached" cells and
	// count into Progress.SnapshotSkipped — so only the cells new since
	// a store snapshot simulate. Populate it from a store manifest
	// (store.ReadManifest) or a live store (Engine.StoreKeys). Canonical
	// normalizes it to the sorted intersection with the sweep's own run
	// addresses: hashes the sweep never enumerates are discarded, so
	// equal effective diffs hash equally. Incompatible with Triage,
	// whose ranking needs every cell's model estimate.
	SinceSnapshot []string `json:"since_snapshot,omitempty"`

	// canonical marks a value returned by Canonical, letting Hash and
	// Engine.Submit skip re-validating (and re-enumerating) an
	// already-normalized sweep; hash carries the content address
	// computed during that validation. Zero on every caller-
	// constructed spec.
	canonical bool
	hash      string
}

// MaxSweepRuns bounds how many simulations one sweep may enumerate.
// Canonical rejects larger (or point-count-overflowing) sweeps before
// any cross-product is materialized, so a hostile or typo'd axis list
// cannot allocate the enumeration. The service applies far tighter
// limits (internal/server Limits) on top.
const MaxSweepRuns = 1 << 20

// Canonical validates the sweep and returns it in normal form: axis
// and point names must be present and unique (per sweep and per axis
// respectively), every axis needs at least one point, every enumerated
// cell spec must have a canonical form (see RunSpec.Canonical — this
// is what keeps arbitrary axes cache-keyable, and it is checked here,
// once, rather than cell-by-cell at run time), and the enumerated runs
// must be pairwise distinct. The distinctness rule catches axes whose
// patches have no effect — e.g. a seed axis over a fixed-kernel base,
// which RunSpec.Canonical would silently zero: every "replicate" would
// be the same simulation, and the resulting zero-variance mean ± CI
// would masquerade as real replication.
//
// Canonical also computes the sweep's content address as a by-product,
// so a later Hash (or Engine.Submit) on the returned value is free.
func (s SweepSpec) Canonical() (SweepSpec, error) {
	if s.canonical {
		return s, nil
	}
	seenAxis := map[string]bool{}
	total := 1
	for ai, ax := range s.Axes {
		// Bound the cross-product before anything enumerates it: the
		// product of point counts must stay within MaxSweepRuns (this
		// also rules out int overflow, since every factor is >= 1).
		if len(ax.Points) > 0 {
			total *= len(ax.Points)
			if total > MaxSweepRuns {
				return SweepSpec{}, fmt.Errorf("ltp: sweep enumerates more than %d runs", MaxSweepRuns)
			}
		}
		if ax.Name == "" {
			return SweepSpec{}, fmt.Errorf("ltp: sweep axis %d has no name", ai)
		}
		if seenAxis[ax.Name] {
			return SweepSpec{}, fmt.Errorf("ltp: duplicate sweep axis %q", ax.Name)
		}
		seenAxis[ax.Name] = true
		if len(ax.Points) == 0 {
			return SweepSpec{}, fmt.Errorf("ltp: sweep axis %q has no points", ax.Name)
		}
		seenPoint := map[string]bool{}
		for pi, pt := range ax.Points {
			if pt.Name == "" {
				return SweepSpec{}, fmt.Errorf("ltp: axis %q point %d has no name", ax.Name, pi)
			}
			if seenPoint[pt.Name] {
				return SweepSpec{}, fmt.Errorf("ltp: axis %q has duplicate point %q", ax.Name, pt.Name)
			}
			seenPoint[pt.Name] = true
			// Replicates aggregate into one mean ± CI; pooling samples
			// of different fidelities there would launder estimates
			// into measurements.
			if ax.Replicate && pt.Patch.Backend != nil {
				return SweepSpec{}, fmt.Errorf(
					"ltp: replicate axis %q patches the backend; replicates must aggregate a single fidelity (make %q a non-replicate axis)",
					ax.Name, ax.Name)
			}
			if ax.Replicate && pt.Patch.Intervals != nil {
				return SweepSpec{}, fmt.Errorf(
					"ltp: replicate axis %q patches intervals; replicates must aggregate one estimator, not a mix of sampling depths (make %q a non-replicate axis)",
					ax.Name, ax.Name)
			}
		}
	}
	if s.Triage != nil {
		t := *s.Triage
		if cells := s.CellCount(); t.TopK < 1 || t.TopK > cells {
			return SweepSpec{}, fmt.Errorf("ltp: triage top_k = %d out of range [1, %d] (the sweep's cell count)", t.TopK, s.CellCount())
		}
		if len(s.SinceSnapshot) > 0 {
			// Triage ranks cells by their model estimates; skipping runs
			// would rank a partial population.
			return SweepSpec{}, fmt.Errorf("ltp: triage sweeps cannot use since_snapshot (the pre-pass must estimate every cell)")
		}
		s.Triage = &t
	}
	hash, snapshot, err := s.computeHash()
	if err != nil {
		return SweepSpec{}, err
	}
	s.SinceSnapshot = snapshot
	s.canonical = true
	s.hash = hash
	return s, nil
}

// TotalRuns returns the number of simulations the sweep enumerates
// (the product of every axis's point count).
func (s SweepSpec) TotalRuns() int {
	total := 1
	for _, ax := range s.Axes {
		total *= len(ax.Points)
	}
	return total
}

// CellCount returns the number of result cells (the product of the
// non-replicate axes' point counts).
func (s SweepSpec) CellCount() int {
	cells := 1
	for _, ax := range s.Axes {
		if !ax.Replicate {
			cells *= len(ax.Points)
		}
	}
	return cells
}

// Replicates returns the number of runs aggregated into each cell (the
// product of the replicate axes' point counts).
func (s SweepSpec) Replicates() int {
	reps := 1
	for _, ax := range s.Axes {
		if ax.Replicate {
			reps *= len(ax.Points)
		}
	}
	return reps
}

// sweepRun is one enumerated simulation of a sweep.
type sweepRun struct {
	idx    int // enumeration index in the sweep's cross-product
	spec   RunSpec
	coords []string // one point name per axis, spec order
	cell   int      // index into the row-major cell array
	rep    int      // replicate index within the cell
}

// runs enumerates the sweep's cross-product in row-major order (last
// axis varies fastest — for NewMatrixSweep that is scenario-major,
// then config, then seed, matching the matrix's own enumeration).
func (s SweepSpec) runs() []sweepRun {
	total := s.TotalRuns()
	out := make([]sweepRun, 0, total)
	idx := make([]int, len(s.Axes))
	for n := 0; n < total; n++ {
		spec := s.Base
		coords := make([]string, len(s.Axes))
		cell, rep := 0, 0
		for ai, ax := range s.Axes {
			pt := ax.Points[idx[ai]]
			spec = pt.Patch.apply(spec)
			coords[ai] = pt.Name
			if ax.Replicate {
				rep = rep*len(ax.Points) + idx[ai]
			} else {
				cell = cell*len(ax.Points) + idx[ai]
			}
		}
		out = append(out, sweepRun{idx: n, spec: spec, coords: coords, cell: cell, rep: rep})
		for ai := len(s.Axes) - 1; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(s.Axes[ai].Points) {
				break
			}
			idx[ai] = 0
		}
	}
	return out
}

// sweepSpecHashVersion versions the sweep hash serialization (see
// runSpecHashVersion).
const sweepSpecHashVersion = "sw1"

// Hash returns a stable content address ("sw1:<hex>") of the sweep's
// labeled cell population: the axis structure plus, per enumerated
// run, its coordinates and its cell's RunSpec.Hash. Two sweeps that
// enumerate identical cells under identical labels hash identically,
// however their patches spelled those cells — in particular
// NewMatrixSweep's hash is a fixed point of MatrixSpec.Canonical
// (equivalent matrices map to equal sweep hashes). On a value returned
// by Canonical the hash is precomputed and Hash is free.
func (s SweepSpec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	return c.hash, nil
}

// computeHash canonicalizes and hashes every enumerated run (checking
// pairwise distinctness along the way) and folds the labeled cell
// population into the sweep's content address. It also normalizes the
// snapshot set to the sorted intersection with the run addresses it
// just computed — the normalized set is part of the hash (a diffed
// sweep is a different campaign: it executes, and therefore means,
// something else), but via an omitempty field, so snapshot-free sweeps
// keep their pre-snapshot "sw1" addresses. Called once, by Canonical,
// after the structural axis checks bounded the enumeration.
func (s SweepSpec) computeHash() (string, []string, error) {
	type axisID struct {
		Name      string   `json:"name"`
		Replicate bool     `json:"replicate"`
		Points    []string `json:"points"`
	}
	type runID struct {
		Coords []string `json:"coords"`
		Hash   string   `json:"hash"`
	}
	id := struct {
		Axes     []axisID    `json:"axes"`
		Runs     []runID     `json:"runs"`
		Triage   *TriageSpec `json:"triage,omitempty"`
		Snapshot []string    `json:"snapshot,omitempty"`
	}{Triage: s.Triage}
	for _, ax := range s.Axes {
		a := axisID{Name: ax.Name, Replicate: ax.Replicate}
		for _, pt := range ax.Points {
			a.Points = append(a.Points, pt.Name)
		}
		id.Axes = append(id.Axes, a)
	}
	seen := make(map[string][]string)
	for _, r := range s.runs() {
		canon, err := r.spec.Canonical()
		if err != nil {
			return "", nil, fmt.Errorf("ltp: sweep cell %v: %w", r.coords, err)
		}
		if s.Triage != nil && canon.Backend != BackendCycle && canon.Backend != BackendSampled {
			return "", nil, fmt.Errorf(
				"ltp: triage sweep cell %v selects backend %q; triage itself schedules the model pre-pass, so every cell must be a cycle- or sampled-backend cell",
				r.coords, canon.Backend)
		}
		// The pre-pass runs every cell on the model backend, which has
		// no oracle — admitting an oracle cell would guarantee a
		// post-admission phase-1 failure.
		if s.Triage != nil && canon.Oracle {
			return "", nil, fmt.Errorf(
				"ltp: triage sweep cell %v requests oracle classification, which the model pre-pass cannot execute",
				r.coords)
		}
		h, err := hashJSON(runSpecHashVersion, canon)
		if err != nil {
			return "", nil, fmt.Errorf("ltp: sweep cell %v: %w", r.coords, err)
		}
		if prev, dup := seen[h]; dup {
			return "", nil, fmt.Errorf(
				"ltp: sweep cells %v and %v are the same simulation (an axis patch has no effect on that cell)",
				prev, r.coords)
		}
		seen[h] = r.coords
		id.Runs = append(id.Runs, runID{Coords: r.coords, Hash: h})
	}
	// Normalize the snapshot: keep only addresses this sweep enumerates,
	// deduplicated and sorted. A snapshot of foreign or stale hashes
	// diffs to nothing — identical to no snapshot at all — and hashes
	// identically too.
	var snapshot []string
	if len(s.SinceSnapshot) > 0 {
		keep := map[string]bool{}
		for _, h := range s.SinceSnapshot {
			if _, ok := seen[h]; ok && !keep[h] {
				keep[h] = true
				snapshot = append(snapshot, h)
			}
		}
		sort.Strings(snapshot)
	}
	id.Snapshot = snapshot
	hash, err := hashJSON(sweepSpecHashVersion, id)
	if err != nil {
		return "", nil, err
	}
	return hash, snapshot, nil
}

// RunHashes returns the content address (RunSpec.Hash) of every run
// the sweep enumerates, in enumeration order. This is the set campaign
// diffing works over: intersect it with a store snapshot's manifest to
// see which runs are already banked, or feed the banked side into
// SinceSnapshot to submit only the rest.
func (s SweepSpec) RunHashes() ([]string, error) {
	c, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	runs := c.runs()
	out := make([]string, 0, len(runs))
	for _, r := range runs {
		h, err := r.spec.Hash()
		if err != nil {
			return nil, fmt.Errorf("ltp: sweep cell %v: %w", r.coords, err)
		}
		out = append(out, h)
	}
	return out, nil
}

// SweepRun is one enumerated simulation of a sweep's cross-product,
// in the exported shape a distributed coordinator needs to dispatch
// cells individually: the resolved (patched) spec plus the indices
// that place its result back into the SweepResult grid.
type SweepRun struct {
	// Index is the run's enumeration index (row-major, last axis
	// fastest).
	Index int `json:"index"`
	// Spec is the fully patched run (canonicalizable by construction —
	// Runs enumerates only validated sweeps).
	Spec RunSpec `json:"spec"`
	// Coords is the run's point name per axis, in axis order.
	Coords []string `json:"coords"`
	// Cell is the index of the run's cell in SweepResult.Cells.
	Cell int `json:"cell"`
	// Replicate is the run's replicate slot within its cell.
	Replicate int `json:"replicate"`
}

// Runs validates the sweep and enumerates its cross-product in
// enumeration order (the same order RunHashes reports). This is the
// unit a sharded coordinator places onto workers: each SweepRun's spec
// hashes independently (RunSpec.Hash), and AggregateSweep folds any
// subset of resolved runs back into the sweep's cell grid.
func (s SweepSpec) Runs() ([]SweepRun, error) {
	c, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	runs := c.runs()
	out := make([]SweepRun, len(runs))
	for i, r := range runs {
		out[i] = SweepRun{Index: r.idx, Spec: r.spec, Coords: r.coords, Cell: r.cell, Replicate: r.rep}
	}
	return out, nil
}

// AggregateSweep folds per-run results into the sweep's cell
// summaries, exactly as a locally executed campaign would (Engine
// jobs use the same fold). runs and results must be parallel slices;
// they may cover any subset of the sweep's enumeration — cells with
// no resolved replicates keep their coordinates and a zero summary,
// matching an incremental (SinceSnapshot-diffed) local job.
func AggregateSweep(spec SweepSpec, runs []SweepRun, results []RunResult) (*SweepResult, error) {
	c, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	if len(runs) != len(results) {
		return nil, fmt.Errorf("ltp: AggregateSweep: %d runs but %d results", len(runs), len(results))
	}
	internal := make([]sweepRun, len(runs))
	for i, r := range runs {
		internal[i] = sweepRun{idx: r.Index, spec: r.Spec, coords: r.Coords, cell: r.Cell, rep: r.Replicate}
	}
	return aggregateSweep(c, internal, results), nil
}

// SweepCell aggregates one cell's replicates.
type SweepCell struct {
	// Coords is the cell's point name per non-replicate axis, in axis
	// order.
	Coords []string `json:"coords"`
	// Backend is the execution backend every replicate of this cell
	// ran on ("cycle", "model") — summaries are never pooled across
	// fidelities.
	Backend string `json:"backend,omitempty"`
	// Replicates is the number of runs aggregated into the summaries.
	Replicates int `json:"replicates"`

	// CPI summarizes the replicates' cycles per instruction.
	CPI stats.Summary `json:"cpi"`
	// IPC summarizes instructions per cycle.
	IPC stats.Summary `json:"ipc"`
	// MLP summarizes the average outstanding DRAM requests.
	MLP stats.Summary `json:"mlp"`
	// AvgLoadLat summarizes the average load latency in cycles.
	AvgLoadLat stats.Summary `json:"avg_load_lat"`
	// Parked is the time-average number of parked instructions (zero
	// summary when no replicate had the LTP attached).
	Parked stats.Summary `json:"parked"`
}

// SweepAxisInfo echoes one axis of a finished sweep.
type SweepAxisInfo struct {
	// Name is the axis name.
	Name string `json:"name"`
	// Points lists the axis's point names, in sweep order.
	Points []string `json:"points"`
	// Replicate marks a statistical (aggregated) axis.
	Replicate bool `json:"replicate,omitempty"`
}

// TriageResult is the detailed phase of a finished triage sweep.
type TriageResult struct {
	// TopK echoes the triage spec.
	TopK int `json:"top_k"`
	// Detailed holds the cycle-accurate aggregates of the TopK cells
	// the model pre-pass selected (ascending model mean CPI), in cell
	// order.
	Detailed []SweepCell `json:"detailed"`
}

// SweepResult is a finished sweep campaign: one cell per non-replicate
// coordinate combination, row-major in axis order (last non-replicate
// axis varies fastest).
type SweepResult struct {
	// Axes echoes the sweep's axes.
	Axes []SweepAxisInfo `json:"axes"`
	// Cells holds the aggregates. For a triage sweep these are the
	// model pre-pass estimates (Backend "model"); the selected cells'
	// cycle-accurate aggregates are in Triage.Detailed.
	Cells []SweepCell `json:"cells"`
	// Triage holds the detailed phase of a triage sweep (nil
	// otherwise).
	Triage *TriageResult `json:"triage,omitempty"`
}

// Cell returns the cell with the given non-replicate coordinates, or
// nil.
func (r *SweepResult) Cell(coords ...string) *SweepCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if len(c.Coords) != len(coords) {
			continue
		}
		match := true
		for k := range coords {
			if c.Coords[k] != coords[k] {
				match = false
				break
			}
		}
		if match {
			return c
		}
	}
	return nil
}

// aggregateSweep folds per-run results (indexed like runs' output)
// into the sweep's cell summaries.
func aggregateSweep(spec SweepSpec, runs []sweepRun, results []RunResult) *SweepResult {
	out := &SweepResult{}
	for _, ax := range spec.Axes {
		info := SweepAxisInfo{Name: ax.Name, Replicate: ax.Replicate}
		for _, pt := range ax.Points {
			info.Points = append(info.Points, pt.Name)
		}
		out.Axes = append(out.Axes, info)
	}
	out.Cells = make([]SweepCell, spec.CellCount())
	// Every cell's coordinates come from the axis structure up front: a
	// snapshot-diffed sweep may execute none of a cell's replicates (or
	// none at all), and downstream consumers index Coords
	// unconditionally.
	fillCellCoords(spec, out.Cells)
	samples := make([][]RunResult, len(out.Cells))
	ltpSeen := make([]bool, len(out.Cells))
	for i, r := range runs {
		samples[r.cell] = append(samples[r.cell], results[i])
		if results[i].LTP != nil {
			ltpSeen[r.cell] = true
		}
		if out.Cells[r.cell].Backend == "" {
			out.Cells[r.cell].Backend = specBackendName(r.spec)
		}
	}
	for ci := range out.Cells {
		cellRuns := samples[ci]
		pull := func(f func(RunResult) float64) stats.Summary {
			vals := make([]float64, len(cellRuns))
			for i, r := range cellRuns {
				vals[i] = f(r)
			}
			return stats.Summarize(vals)
		}
		cell := &out.Cells[ci]
		cell.Replicates = len(cellRuns)
		cell.CPI = pull(func(r RunResult) float64 { return r.CPI })
		cell.IPC = pull(func(r RunResult) float64 { return r.IPC })
		cell.MLP = pull(func(r RunResult) float64 { return r.MLP })
		cell.AvgLoadLat = pull(func(r RunResult) float64 { return r.AvgLoadLatency })
		if ltpSeen[ci] {
			cell.Parked = pull(func(r RunResult) float64 {
				if r.LTP == nil {
					return 0
				}
				return r.LTP.AvgInsts
			})
		}
	}
	return out
}

// fillCellCoords writes each cell's non-replicate coordinates, row-
// major in axis order (last non-replicate axis varies fastest —
// matching sweepRun.cell's encoding in runs).
func fillCellCoords(spec SweepSpec, cells []SweepCell) {
	var axes []SweepAxis
	for _, ax := range spec.Axes {
		if !ax.Replicate {
			axes = append(axes, ax)
		}
	}
	if len(axes) == 0 {
		return // single-cell sweep: coordinates stay nil, as always
	}
	idx := make([]int, len(axes))
	for ci := range cells {
		coords := make([]string, len(axes))
		for ai := range axes {
			coords[ai] = axes[ai].Points[idx[ai]].Name
		}
		cells[ci].Coords = coords
		for ai := len(axes) - 1; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(axes[ai].Points) {
				break
			}
			idx[ai] = 0
		}
	}
}

// NewMatrixSweep maps a scenario-matrix campaign onto the generalized
// sweep: a "scenario" axis, a "config" axis, and a replicated "seed"
// axis over the matrix's budget/scale base. The enumeration order and
// the aggregation are exactly the matrix's, so submitting the sweep
// yields cell summaries identical to RunMatrix on the same spec, and
// the sweep hash is a fixed point of MatrixSpec.Canonical (equivalent
// matrices map to equal sweep hashes).
func NewMatrixSweep(m MatrixSpec) (SweepSpec, error) {
	c, err := m.Canonical()
	if err != nil {
		return SweepSpec{}, err
	}
	scnAxis := SweepAxis{Name: "scenario"}
	for _, name := range c.Scenarios {
		name := name
		scnAxis.Points = append(scnAxis.Points, SweepPoint{
			Name: name, Patch: RunPatch{Scenario: &name},
		})
	}
	cfgAxis := SweepAxis{Name: "config"}
	for _, cfg := range c.Configs {
		use := cfg.UseLTP
		cfgAxis.Points = append(cfgAxis.Points, SweepPoint{
			Name:  cfg.Name,
			Patch: RunPatch{Pipeline: cfg.Pipeline, UseLTP: &use, LTP: cfg.LTP},
		})
	}
	seedAxis := SweepAxis{Name: "seed", Replicate: true}
	for k := 0; k < c.Seeds; k++ {
		seed := c.BaseSeed + int64(k)
		seedAxis.Points = append(seedAxis.Points, SweepPoint{
			Name: fmt.Sprintf("seed%d", seed), Patch: RunPatch{Seed: &seed},
		})
	}
	return SweepSpec{
		Base: RunSpec{
			Knobs:     c.Knobs,
			Scale:     c.Scale,
			WarmInsts: c.WarmInsts,
			WarmMode:  c.WarmMode,
			MaxInsts:  c.DetailInsts,
			Backend:   c.Backend,
		},
		Axes: []SweepAxis{scnAxis, cfgAxis, seedAxis},
	}, nil
}

// matrixResultFromSweep reassembles a MatrixResult from a finished
// NewMatrixSweep campaign (axes scenario, config, seed).
func matrixResultFromSweep(m MatrixSpec, sr *SweepResult) *MatrixResult {
	out := &MatrixResult{Scenarios: m.Scenarios, Seeds: m.Seeds}
	for _, c := range m.Configs {
		out.Configs = append(out.Configs, c.Name)
	}
	out.Cells = make([]MatrixCell, len(sr.Cells))
	for i, sc := range sr.Cells {
		out.Cells[i] = MatrixCell{
			Scenario:   sc.Coords[0],
			Config:     sc.Coords[1],
			CPI:        sc.CPI,
			IPC:        sc.IPC,
			MLP:        sc.MLP,
			AvgLoadLat: sc.AvgLoadLat,
			Parked:     sc.Parked,
		}
	}
	return out
}
