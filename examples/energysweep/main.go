// Energy sweep (the paper's Fig. 10 story): vary LTP size and ports for
// the IQ:32/RF:96 design and report performance and IQ/RF ED²P relative to
// the IQ:64/RF:128 baseline, using the first-order energy model from §5.5.
package main

import (
	"fmt"

	"ltp"
	"ltp/internal/core"
	"ltp/internal/energy"
	"ltp/internal/pipeline"
)

func main() {
	const kernel = "gather"
	const warm, insts = 50_000, 150_000

	baseCfg := pipeline.DefaultConfig() // IQ 64 / RF 128
	base := ltp.MustRun(ltp.RunSpec{Workload: kernel, Scale: 0.25,
		WarmInsts: warm, MaxInsts: insts, Pipeline: &baseCfg})

	smallCfg := pipeline.DefaultConfig()
	smallCfg.IQSize = 32
	smallCfg.IntRegs, smallCfg.FPRegs = 96, 96

	fmt.Printf("workload %q: LTP size/port sweep at IQ:32/RF:96 vs base IQ:64/RF:128\n\n", kernel)
	fmt.Printf("%10s %6s | %8s %10s\n", "entries", "ports", "perf %", "ED2P %")

	noLTP := ltp.MustRun(ltp.RunSpec{Workload: kernel, Scale: 0.25,
		WarmInsts: warm, MaxInsts: insts, Pipeline: &smallCfg})
	fmt.Printf("%10s %6s | %8.1f %10.1f   <- just shrinking the IQ/RF\n", "-", "-",
		energy.RelativePerf(noLTP.Cycles, base.Cycles),
		energy.RelativeED2P(noLTP.Energy.IQRF, noLTP.Cycles, base.Energy.IQRF, base.Cycles))

	for _, entries := range []int{128, 64, 32} {
		for _, ports := range []int{1, 4} {
			lcfg := core.DefaultConfig()
			lcfg.Entries = entries
			lcfg.Ports = ports
			r := ltp.MustRun(ltp.RunSpec{Workload: kernel, Scale: 0.25,
				WarmInsts: warm, MaxInsts: insts, Pipeline: &smallCfg,
				UseLTP: true, LTP: &lcfg})
			fmt.Printf("%10d %6d | %8.1f %10.1f\n", entries, ports,
				energy.RelativePerf(r.Cycles, base.Cycles),
				energy.RelativeED2P(r.Energy.IQRF, r.Cycles, base.Energy.IQRF, base.Cycles))
		}
	}
	fmt.Println("\nA 128-entry 4-port LTP restores the big core's performance while the")
	fmt.Println("IQ/RF energy-delay² drops — the queue costs far less than IQ CAM entries (§5.5).")
}
