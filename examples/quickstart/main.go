// Quickstart: simulate the paper's Fig. 2 example loop on the baseline
// core and on the LTP design, and print the classification the UIT
// learned for each static instruction — reproducing the paper's Fig. 2
// table and its headline claim (a half-size IQ + LTP keeps the MLP).
package main

import (
	"fmt"

	"ltp"
	"ltp/internal/core"
	"ltp/internal/pipeline"
	"ltp/internal/prog"
)

func main() {
	// The `indirect` workload is the paper's Fig. 2 loop:
	//   loop: A addrA = baseA + j    E j = j - 8     I i = i + 8
	//         B t1 = load addrA      F d = d + 5     J t2 = j
	//         C addrB = baseB + t1   G addrC = ...   K bge t2, loop
	//         D d = load addrB       H store d
	wl, err := ltp.WorkloadByName("indirect")
	if err != nil {
		panic(err)
	}
	program := wl.Build(0.25)
	fmt.Println("The paper's Fig. 2 loop in the micro-ISA:")
	fmt.Println(program.Listing())

	// Baseline big core (Table 1): IQ 64, 128 registers.
	base := ltp.MustRun(ltp.RunSpec{
		Workload: "indirect", Scale: 0.25,
		WarmInsts: 100_000, MaxInsts: 200_000,
	})

	// The paper's proposal: IQ 32, 96 registers, 128-entry 4-port LTP.
	small := pipeline.DefaultConfig()
	small.IQSize = 32
	small.IntRegs, small.FPRegs = 96, 96
	withLTP := ltp.MustRun(ltp.RunSpec{
		Workload: "indirect", Scale: 0.25,
		WarmInsts: 100_000, MaxInsts: 200_000,
		Pipeline: &small, UseLTP: true,
	})
	// And the same small core without LTP, to see what parking buys.
	noLTP := ltp.MustRun(ltp.RunSpec{
		Workload: "indirect", Scale: 0.25,
		WarmInsts: 100_000, MaxInsts: 200_000,
		Pipeline: &small,
	})

	fmt.Printf("%-28s %8s %8s %10s\n", "configuration", "CPI", "MLP", "IQ in use")
	fmt.Printf("%-28s %8.3f %8.2f %10.1f\n", "baseline IQ:64 RF:128", base.CPI, base.MLP, base.AvgIQ)
	fmt.Printf("%-28s %8.3f %8.2f %10.1f\n", "small IQ:32 RF:96", noLTP.CPI, noLTP.MLP, noLTP.AvgIQ)
	fmt.Printf("%-28s %8.3f %8.2f %10.1f\n", "small + LTP (128, 4p)", withLTP.CPI, withLTP.MLP, withLTP.AvgIQ)
	if withLTP.LTP != nil {
		fmt.Printf("\nLTP parked %.1f instructions on average (%.1f deferred registers), enabled %.0f%% of the time\n",
			withLTP.LTP.AvgInsts, withLTP.LTP.AvgRegs, withLTP.LTP.EnabledFrac*100)
	}

	// Show what the UIT learned: run a dedicated pipeline so we can
	// inspect the unit afterwards (the classification of Fig. 2).
	fmt.Println("\nUIT classification after 50k instructions (paper Fig. 2):")
	lcfg := core.DefaultConfig()
	unit := core.New(lcfg, small.Hier.DRAMLatency, small.Hier.TagEarlyLead)
	pipe := pipeline.New(small, prog.NewEmulator(program), unit)
	for pipe.Committed() < 50_000 {
		pipe.Cycle()
	}
	for i, in := range program.Insts {
		if in.Label == "" {
			continue
		}
		class := "Non-Urgent (parked)"
		if unit.UITTable().Urgent(prog.PCOf(i)) {
			class = "Urgent     (to IQ)"
		}
		fmt.Printf("  %s  %-24s %s\n", in.Label, in.String(), class)
	}
}
