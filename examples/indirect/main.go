// Indirect-access sweep (the paper's Fig. 1/Fig. 6 story): sweep the IQ
// size on the indirect-with-payload kernel and show that a small IQ plus
// LTP keeps the memory-level parallelism of a large IQ.
package main

import (
	"fmt"

	"ltp"
	"ltp/internal/pipeline"
)

func main() {
	const (
		warm   = 100_000
		insts  = 200_000
		scale  = 0.25
		kernel = "indirectwork"
	)

	fmt.Printf("IQ sweep on %q (others at Table 1 sizes)\n\n", kernel)
	fmt.Printf("%6s | %18s | %18s\n", "IQ", "NoLTP  CPI / MLP", "LTP    CPI / MLP")

	for _, iq := range []int{64, 48, 32, 16} {
		cfg := pipeline.DefaultConfig()
		cfg.IQSize = iq
		cfg.IntRegs, cfg.FPRegs = 96, 96

		noltp := ltp.MustRun(ltp.RunSpec{
			Workload: kernel, Scale: scale,
			WarmInsts: warm, MaxInsts: insts, Pipeline: &cfg,
		})
		withltp := ltp.MustRun(ltp.RunSpec{
			Workload: kernel, Scale: scale,
			WarmInsts: warm, MaxInsts: insts, Pipeline: &cfg, UseLTP: true,
		})
		fmt.Printf("%6d | %8.3f / %7.2f | %8.3f / %7.2f\n",
			iq, noltp.CPI, noltp.MLP, withltp.CPI, withltp.MLP)
	}

	fmt.Println("\nWith LTP the CPI and MLP stay near the big-IQ level as the IQ shrinks;")
	fmt.Println("without it, the IQ fills with instructions waiting on misses (paper §1, Fig. 1).")
}
