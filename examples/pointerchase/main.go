// Pointer chasing: the paper's hard case. A single dependent chain
// (ptrchase1) cannot overlap misses no matter the window — LTP "can do
// little to hide the full DRAM latency" (§4.2) — while many parallel
// chains (chains, astar-like) recover their MLP with LTP on a small core.
// This example also shows the Non-Ready (ticket) design from the Appendix.
package main

import (
	"fmt"

	"ltp"
	"ltp/internal/core"
	"ltp/internal/pipeline"
)

func run(kernel string, useLTP bool, mode core.Mode) ltp.RunResult {
	cfg := pipeline.DefaultConfig()
	cfg.IQSize = 32
	cfg.IntRegs, cfg.FPRegs = 96, 96
	lcfg := core.DefaultConfig()
	lcfg.Mode = mode
	return ltp.MustRun(ltp.RunSpec{
		Workload: kernel, Scale: 0.25,
		WarmInsts: 50_000, MaxInsts: 150_000,
		Pipeline: &cfg, UseLTP: useLTP, LTP: &lcfg,
	})
}

func main() {
	fmt.Println("Small core (IQ:32 RF:96); NU = queue-based LTP, NR+NU = with tickets")
	fmt.Printf("%-12s %-14s %8s %8s %9s\n", "kernel", "config", "CPI", "MLP", "parked")

	for _, kernel := range []string{"ptrchase1", "chains"} {
		base := run(kernel, false, core.ModeOff)
		nu := run(kernel, true, core.ModeNU)
		nrnu := run(kernel, true, core.ModeNRNU)
		fmt.Printf("%-12s %-14s %8.2f %8.2f %9s\n", kernel, "no LTP", base.CPI, base.MLP, "-")
		fmt.Printf("%-12s %-14s %8.2f %8.2f %9.1f\n", kernel, "LTP (NU)", nu.CPI, nu.MLP, nu.LTP.AvgInsts)
		fmt.Printf("%-12s %-14s %8.2f %8.2f %9.1f\n", kernel, "LTP (NR+NU)", nrnu.CPI, nrnu.MLP, nrnu.LTP.AvgInsts)
	}

	fmt.Println("\nptrchase1: one dependent chain, MLP pinned near 1 — parking cannot help;")
	fmt.Println("chains: ten independent chains — LTP keeps them all in flight on a small core.")
}
