// Command ltptrace prints a per-instruction pipeline timeline (in the
// spirit of gem5's O3 pipeview) for a window of committed instructions,
// showing where each instruction spent its life — and, with -ltp, which
// instructions were parked and for how long.
//
// Example:
//
//	ltptrace -workload indirect -skip 50000 -count 40 -ltp
//
// Columns: F fetch, R rename, I issue, D execution done, C commit. The
// bar renders one character per -res cycles: 'p' parked, '.' waiting in
// the IQ, '=' executing, '-' done but waiting to commit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ltp/internal/core"
	"ltp/internal/isa"
	"ltp/internal/pipeline"
	"ltp/internal/prog"
	"ltp/internal/workload"
)

type rec struct {
	seq                      uint64
	label, op                string
	fetched, renamed, issued uint64
	done, committed          uint64
	parked                   bool
	urgent                   bool
}

func main() {
	var (
		name   = flag.String("workload", "indirect", "workload name")
		scale  = flag.Float64("scale", 0.25, "working-set scale")
		skip   = flag.Uint64("skip", 50_000, "instructions to skip before tracing")
		count  = flag.Int("count", 33, "instructions to trace")
		useLTP = flag.Bool("ltp", false, "attach the LTP (IQ:32/RF:96 design)")
		res    = flag.Int("res", 8, "cycles per bar character")
	)
	flag.Parse()

	wl, err := workload.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ltptrace:", err)
		os.Exit(1)
	}
	program := wl.Build(*scale)

	pcfg := pipeline.DefaultConfig()
	var parker pipeline.Parker = pipeline.NullParker{}
	if *useLTP {
		pcfg.IQSize = 32
		pcfg.IntRegs, pcfg.FPRegs = 96, 96
		parker = core.New(core.DefaultConfig(), pcfg.Hier.DRAMLatency, pcfg.Hier.TagEarlyLead)
	}
	em := prog.NewEmulator(program)
	pipe := pipeline.New(pcfg, em, parker)

	// Warm caches so the trace shows steady state.
	var u isa.Uop
	for n := uint64(0); n < 50_000; n++ {
		if !em.Next(&u) {
			break
		}
		if u.IsMem() {
			pipe.Hier.Warm(u.PC, u.Addr, u.Op == isa.Store)
		}
	}

	var recs []rec
	pipe.TraceSink = func(f *pipeline.Inflight) {
		if pipe.Committed() < *skip || len(recs) >= *count {
			return
		}
		label := f.U.Label
		if label == "" {
			label = "-"
		}
		recs = append(recs, rec{
			seq: f.Seq(), label: label, op: f.U.Op.String(),
			fetched: f.FetchedAt, renamed: f.RenamedAt, issued: f.IssuedAt,
			done: f.DoneAt, committed: f.CommitAt,
			parked: f.WasParked, urgent: f.Urgent,
		})
	}
	pipe.Run(*skip+uint64(*count)+64, 0)

	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "ltptrace: nothing traced (program too short?)")
		os.Exit(1)
	}
	base := recs[0].fetched
	fmt.Printf("workload=%s ltp=%v cycles are relative to the first traced fetch\n", *name, *useLTP)
	fmt.Printf("%5s %3s %-6s %7s %7s %7s %7s %7s %6s  timeline (1 char = %d cycles)\n",
		"seq", "tag", "op", "F", "R", "I", "D", "C", "class", *res)
	for _, r := range recs {
		class := " "
		if r.parked {
			class = "parked"
		} else if r.urgent {
			class = "urgent"
		}
		fmt.Printf("%5d %3s %-6s %7d %7d %7d %7d %7d %6s  %s\n",
			r.seq, r.label, r.op,
			r.fetched-base, r.renamed-base, r.issued-base, r.done-base, r.committed-base,
			class, bar(r, base, *res))
	}
}

// bar renders the instruction's lifetime as one character per res cycles.
func bar(r rec, base uint64, res int) string {
	div := uint64(res)
	cell := func(c uint64) int { return int((c - base) / div) }
	var b strings.Builder
	start, issue, done, commit := cell(r.fetched), cell(r.issued), cell(r.done), cell(r.committed)
	if r.issued == 0 { // never issued through the IQ path (e.g. nop)
		issue = done
	}
	b.WriteString(strings.Repeat(" ", start))
	wait := byte('.')
	if r.parked {
		wait = 'p'
	}
	for i := start; i <= commit; i++ {
		switch {
		case i < issue:
			b.WriteByte(wait)
		case i <= done:
			b.WriteByte('=')
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}
