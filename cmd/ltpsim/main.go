// Command ltpsim runs one workload through the simulated out-of-order core,
// with or without Long Term Parking, and prints the headline metrics.
//
// Examples:
//
//	ltpsim -workload indirect -insts 500000
//	ltpsim -workload indirect -insts 500000 -ltp -mode NU -iq 32 -regs 96
//	ltpsim -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ltp"
	"ltp/internal/core"
	"ltp/internal/pipeline"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list workloads and scenario families, then exit")
		name      = flag.String("workload", "indirect", "workload name")
		scenario  = flag.String("scenario", "", "scenario family name (overrides -workload; see -list)")
		seed      = flag.Int64("seed", 0, "scenario seed (data layouts and constants)")
		record    = flag.String("record", "", "capture the run's µop stream to this trace file")
		replay    = flag.String("replay", "", "replay a recorded trace file instead of a workload")
		insts     = flag.Uint64("insts", 500_000, "detailed instructions to simulate")
		warm      = flag.Uint64("warm", 200_000, "cache warm-up instructions")
		warmMd    = flag.String("warmmode", "fast", "warm-up mode: fast (functional) or detailed (full pipeline)")
		scale     = flag.Float64("scale", 1.0, "working-set scale (0..1]")
		useLTP    = flag.Bool("ltp", false, "enable Long Term Parking")
		mode      = flag.String("mode", "NU", "LTP mode: NU, NR, NR+NU")
		entries   = flag.Int("entries", 128, "LTP entries (<=0 unlimited)")
		ports     = flag.Int("ports", 4, "LTP ports (<=0 unlimited)")
		uit       = flag.Int("uit", 256, "UIT entries (<=0 unlimited)")
		tickets   = flag.Int("tickets", 64, "NR tickets (max 128)")
		oracle    = flag.Bool("oracle", false, "oracle classification (limit study)")
		backend   = flag.String("backend", "cycle", "execution backend: cycle (reference), sampled (checkpointed intervals) or model (fast interval estimate)")
		intervals = flag.Int("intervals", 0, "sampled backend: measured interval count K (0 = default)")
		bpredN    = flag.String("bpred", "", "branch predictor: gshare (default) or tage")
		prefN     = flag.String("prefetcher", "", "L2 prefetcher: none, nextline, stride (default) or stream")
		identN    = flag.String("ltp-ident", "", "LTP identification policy: paper (default) or crit")
		corunner  = flag.String("corunner", "", "comma-separated co-runner scenario families (e.g. memhog,memhog) sharing L2/L3/DRAM")
		iq        = flag.Int("iq", 64, "IQ size")
		regs      = flag.Int("regs", 128, "available int/fp registers (each)")
		lq        = flag.Int("lq", 64, "LQ size")
		sq        = flag.Int("sq", 32, "SQ size")
		verbose   = flag.Bool("v", false, "verbose statistics")
		jsonOut   = flag.Bool("json", false, "emit the full result as JSON (for scripting)")
	)
	flag.Parse()

	if *list {
		for _, s := range ltp.Workloads() {
			fmt.Printf("%-11s %-16s %s\n", s.Name, s.Hint, s.About)
			fmt.Printf("%-11s stands in for: %s\n", "", s.SPECAnalog)
		}
		fmt.Println("\nscenario families (-scenario, seed-replicated; knobs via ltp.RunSpec.Knobs):")
		for _, f := range ltp.Scenarios() {
			fmt.Printf("%-11s %-16s %s\n", f.Name, f.Hint, f.About)
		}
		fmt.Println("\nexecution backends (-backend):")
		for _, b := range ltp.Backends() {
			fmt.Printf("%-11s %-16s %s\n", b.Name, b.Fidelity, b.About)
		}
		fmt.Printf("\nbranch predictors (-bpred): %v\n", ltp.BranchPredictors())
		fmt.Printf("prefetchers (-prefetcher):  %v\n", ltp.Prefetchers())
		return
	}

	wm, err := ltp.ParseWarmMode(*warmMd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ltpsim:", err)
		os.Exit(2)
	}

	pcfg := pipeline.DefaultConfig()
	pcfg.IQSize = *iq
	pcfg.IntRegs = *regs
	pcfg.FPRegs = *regs
	pcfg.LQSize = *lq
	pcfg.SQSize = *sq

	var m core.Mode
	switch *mode {
	case "NU":
		m = core.ModeNU
	case "NR":
		m = core.ModeNR
	case "NR+NU", "NRNU":
		m = core.ModeNRNU
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	lcfg := core.DefaultConfig()
	lcfg.Mode = m
	lcfg.Entries = *entries
	lcfg.Ports = *ports
	lcfg.UITEntries = *uit
	lcfg.Tickets = *tickets
	ident, ok := core.ParseIdent(*identN)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown LTP ident policy %q (want paper or crit)\n", *identN)
		os.Exit(2)
	}
	lcfg.Ident = ident

	spec := ltp.RunSpec{
		Workload:  *name,
		Scale:     *scale,
		Seed:      *seed,
		WarmInsts: *warm,
		WarmMode:  wm,
		MaxInsts:  *insts,
		Pipeline:  &pcfg,
		UseLTP:    *useLTP,
		LTP:       &lcfg,
		Oracle:    *oracle,
		Backend:   *backend,
		Intervals: *intervals,

		BranchPred: *bpredN,
		Prefetcher: *prefN,
	}
	if *corunner != "" {
		for _, scn := range strings.Split(*corunner, ",") {
			scn = strings.TrimSpace(scn)
			if scn == "" {
				continue
			}
			spec.Corunners = append(spec.Corunners, ltp.Corunner{Scenario: scn})
		}
	}
	if *scenario != "" {
		spec.Workload = ""
		spec.Scenario = *scenario
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ltpsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		spec.Workload, spec.Scenario = "", ""
		spec.ReplayFrom = f
	}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ltpsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		spec.RecordTo = f
	}

	// Ctrl-C / SIGTERM cancels the simulation mid-pipeline (within a
	// few thousand cycles) instead of leaving it to run out the budget.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	defer shutdownEngine()

	res, err := ltp.RunContext(ctx, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ltpsim:", err)
		os.Exit(1)
	}
	if *record != "" {
		fmt.Fprintf(os.Stderr, "trace recorded to %s\n", *record)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "ltpsim:", err)
			os.Exit(1)
		}
		return
	}

	printResult(res, *name, *scenario, *seed, *replay, *verbose)
}

// shutdownEngine drains the process-wide engine (a no-op unless some
// code path touched DefaultEngine) so worker goroutines and the cache
// release cleanly on exit.
func shutdownEngine() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ltp.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "ltpsim:", err)
	}
}

// printResult renders the headline metrics.
func printResult(res ltp.RunResult, name, scenario string, seed int64, replay string, verbose bool) {
	label := name
	switch {
	case replay != "":
		label = "replay:" + replay
	case scenario != "":
		label = fmt.Sprintf("%s(seed=%d)", scenario, seed)
	}
	fmt.Printf("workload=%s insts=%d cycles=%d\n", label, res.Committed, res.Cycles)
	fmt.Printf("CPI=%.3f IPC=%.3f MLP=%.2f avgLoadLat=%.1f\n", res.CPI, res.IPC, res.MLP, res.AvgLoadLatency)
	fmt.Printf("occupancy: IQ=%.1f ROB=%.1f LQ=%.1f SQ=%.1f intRF=%.1f fpRF=%.1f\n",
		res.AvgIQ, res.AvgROB, res.AvgLQ, res.AvgSQ, res.AvgIntRF, res.AvgFPRF)
	if res.LTP != nil {
		fmt.Printf("ltp: parked=%.1f regs=%.1f loads=%.1f stores=%.1f enabled=%.0f%% (total parked %d, forced %d)\n",
			res.LTP.AvgInsts, res.LTP.AvgRegs, res.LTP.AvgLoads, res.LTP.AvgStores,
			res.LTP.EnabledFrac*100, res.LTP.ParkedTotal, res.LTP.ForcedParks)
	}
	if s := res.Sampling; s != nil {
		fmt.Printf("sampling: K=%d measured=%d/%d insts (%.1f%%) CPI=%.3f ±%.3f (95%% CI)\n",
			s.Intervals, s.SampledInsts, res.Committed,
			100*float64(s.SampledInsts)/float64(res.Committed),
			s.CPI.Mean, s.CPI.CI95)
	}
	if verbose {
		fmt.Printf("loads=%d (L1 %d / L2 %d / L3 %d / DRAM %d) stores=%d\n",
			res.Loads, res.LoadLevel[0], res.LoadLevel[1], res.LoadLevel[2], res.LoadLevel[3], res.Stores)
		fmt.Printf("branches=%d mispredicts=%d squashes=%d prefetches=%d\n",
			res.Branches, res.Mispredicts, res.Squashes, res.PrefIssued)
		fmt.Printf("stalls: rob=%d iq=%d regs=%d lq=%d sq=%d ltp=%d\n",
			res.StallROB, res.StallIQ, res.StallRegs, res.StallLQ, res.StallSQ, res.StallLTP)
		fmt.Printf("energy: IQ=%.3g RF=%.3g LTP=%.3g (IQRF=%.3g)\n",
			res.Energy.IQ, res.Energy.RF, res.Energy.LTP, res.Energy.IQRF)
		if res.LTP != nil {
			fmt.Printf("ltp detail: urgent=%d nonready=%d uitLen=%d llpredAcc=%.2f pressureWakes=%d\n",
				res.LTP.ClassUrgent, res.LTP.ClassNonReady, res.LTP.UITLen, res.LTP.LLPredAcc, res.LTP.PressureWakes)
		}
	}
}
